#pragma once
/// \file checkpoint.hpp
/// \brief Atomic, checksummed snapshots of iterative-solver state.
///
/// A Checkpoint is a driver-agnostic bag of state: an iteration counter, a
/// recovery-RNG state, named scalars, named double series (fit history,
/// lambda, the CCD++ residual, ...), the primary factor matrices, and an
/// optional auxiliary factor set (completion's best-validation model).
/// Values serialize as text with max_digits10, so doubles round-trip
/// exactly — restoring a checkpoint and continuing reproduces the
/// uninterrupted f64 run bitwise.
///
/// File layout (text):
///   sptd-checkpoint 1 <kind>
///   checksum <16 hex digits>        (FNV-1a 64 over the payload below)
///   iteration <n>
///   rng <s0> <s1> <s2> <s3>
///   scalars <count>                 then `<name> <value>` lines
///   series <count>                  then `<name> <len>` + values
///   factors <count>                 then `<rows> <cols>` + row values
///   aux_factors <count>             same encoding as factors
///
/// Scalar and series values are parsed with strtod, so inf/nan round-trip
/// (completion's best-validation RMSE starts at +inf).

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "la/matrix.hpp"
#include "resilience/resilience.hpp"

namespace sptd {

class FaultInjector;  // resilience/fault.hpp

/// Thrown by CheckpointManager::load_latest when snapshots of the
/// requested kind exist but *every* one of them fails validation (torn
/// write, checksum mismatch, malformed payload). Distinct from the
/// fresh-start nullopt: state was saved and is now unrecoverable, which a
/// caller must surface rather than silently restart from scratch.
class CheckpointCorruptError : public Error {
 public:
  CheckpointCorruptError(const std::string& dir, const std::string& kind,
                         int files_rejected)
      : Error("checkpoint: all " + std::to_string(files_rejected) + " '" +
              kind + "' snapshots in " + dir +
              " failed validation (corrupt or truncated); refusing to "
              "silently start fresh"),
        files_rejected_(files_rejected) {}

  [[nodiscard]] int files_rejected() const { return files_rejected_; }

 private:
  int files_rejected_;
};

/// Snapshot of one driver's restartable state.
struct Checkpoint {
  /// "cpals" | "tucker" | "completion" | "dist" | "dist-rank<r>"
  std::string kind;
  int iteration = 0;  ///< completed iterations at snapshot time
  std::array<std::uint64_t, 4> rng_state{};  ///< recovery RNG words

  std::vector<std::pair<std::string, double>> scalars;
  std::vector<std::pair<std::string, std::vector<double>>> series;
  std::vector<la::Matrix> factors;
  std::vector<la::Matrix> aux_factors;

  void set_scalar(const std::string& name, double value);
  /// Returns the named scalar or \p fallback when absent.
  double scalar(const std::string& name, double fallback) const;
  /// True if the named scalar is present.
  bool has_scalar(const std::string& name) const;

  void set_series(const std::string& name, std::vector<double> values);
  /// Returns the named series, or nullptr when absent.
  const std::vector<double>* find_series(const std::string& name) const;

  /// Serializes to the on-disk text format (header + checksum + payload).
  std::string serialize() const;
  /// Parses a serialized checkpoint; verifies the checksum. Throws
  /// sptd::Error on malformed or corrupt input.
  static Checkpoint deserialize(const std::string& text);
};

/// Writes, rotates, and locates checkpoint files inside one directory.
/// Files are named `<kind>-<iteration>.ckpt`; writes are atomic
/// (tmp + fsync + rename) and the last \p keep snapshots are retained.
class CheckpointManager {
 public:
  /// Disabled manager: due() is always false, save() refuses.
  CheckpointManager() = default;

  CheckpointManager(std::string dir, std::string kind, int every,
                    int keep = 2);

  [[nodiscard]] bool enabled() const {
    return every_ > 0 && !dir_.empty();
  }

  /// True when a snapshot is owed after \p completed iterations.
  [[nodiscard]] bool due(int completed) const {
    return enabled() && completed > 0 && completed % every_ == 0;
  }

  /// Serializes and writes \p ck. Returns false (after updating
  /// \p counters.checkpoint_failures) when the write fails — injected via
  /// \p injector's io-fail budget or a real IO error. Checkpoint failures
  /// are non-fatal by design: the run continues and retries at the next
  /// interval, it just has an older restart point.
  bool save(const Checkpoint& ck, FaultInjector* injector,
            ResilienceCounters& counters);

  /// Newest checkpoint of \p kind in \p dir that parses and passes its
  /// checksum; corrupt or torn files are skipped with a warning and the
  /// loader falls back to the next-older snapshot. Returns nullopt when no
  /// files of the kind exist (fresh start); throws CheckpointCorruptError
  /// when files exist but all of them fail validation.
  static std::optional<Checkpoint> load_latest(const std::string& dir,
                                               const std::string& kind);

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::string kind_;
  int every_ = 0;
  int keep_ = 2;
  std::vector<std::pair<int, std::string>> written_;
};

/// Loads one explicit checkpoint file (the distributed rejoin path, where
/// the launcher already selected the rollback snapshot by name). Returns
/// nullopt when the file is missing or unreadable; throws sptd::Error when
/// it exists but fails validation.
std::optional<Checkpoint> load_checkpoint_file(const std::string& path);

}  // namespace sptd
