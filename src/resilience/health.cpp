#include "resilience/health.hpp"

#include <cmath>

namespace sptd {

namespace {

bool all_finite(const la::Matrix& m) {
  for (idx_t i = 0; i < m.rows(); ++i) {
    const val_t* row = m.row_ptr(i);
    for (idx_t j = 0; j < m.cols(); ++j) {
      if (!std::isfinite(row[j])) return false;
    }
  }
  return true;
}

}  // namespace

HealthIssue HealthMonitor::inspect(const std::vector<la::Matrix>& factors,
                                   const std::vector<val_t>& lambda,
                                   double loss) {
  if (!enabled_) return HealthIssue::kNone;

  for (const val_t l : lambda) {
    if (!std::isfinite(l)) return HealthIssue::kNonFiniteFactor;
  }
  for (const la::Matrix& f : factors) {
    if (!all_finite(f)) return HealthIssue::kNonFiniteFactor;
  }

  if (loss == kNoLoss) return HealthIssue::kNone;
  if (!std::isfinite(loss)) return HealthIssue::kNonFiniteLoss;

  if (loss < best_loss_) {
    best_loss_ = loss;
    bad_streak_ = 0;
    return HealthIssue::kNone;
  }
  // "Clearly regressing": 50% worse than the best loss seen, plus an
  // absolute slack so a loss hovering at machine-epsilon scale never trips.
  const double threshold = best_loss_ * 1.5 + 1e-6;
  if (loss > threshold) {
    if (++bad_streak_ >= patience_) return HealthIssue::kDivergence;
  } else {
    bad_streak_ = 0;
  }
  return HealthIssue::kNone;
}

void HealthMonitor::seed_trend(double best_loss) {
  if (std::isfinite(best_loss) && best_loss < best_loss_) {
    best_loss_ = best_loss;
  }
  bad_streak_ = 0;
}

void HealthMonitor::reset_streak() { bad_streak_ = 0; }

void perturb_factors(std::vector<la::Matrix>& factors, Rng& rng,
                     double scale) {
  for (la::Matrix& f : factors) {
    for (idx_t i = 0; i < f.rows(); ++i) {
      val_t* row = f.row_ptr(i);
      for (idx_t j = 0; j < f.cols(); ++j) {
        row[j] *= static_cast<val_t>(
            1.0 + scale * (2.0 * rng.next_double() - 1.0));
      }
    }
  }
}

}  // namespace sptd
