#pragma once
/// \file health.hpp
/// \brief Cheap per-iteration numeric-health checks with a rollback trend.
///
/// The monitor answers one question after each solver iteration: is this
/// state worth keeping? It scans factors/lambda for non-finite entries
/// (O(sum of factor entries), the same order as the normalize pass the
/// solvers already run), rejects non-finite fit/RMSE, and tracks a
/// loss trend: an iteration that regresses clearly past the best loss seen
/// counts against a patience budget, and exhausting it flags divergence.
/// ALS-family sweeps are monotone in exact arithmetic, so the "clearly"
/// margin (50% worse residual than the best) never fires on a healthy run —
/// guards are on by default and must not perturb bit-identical f64 output.

#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "la/matrix.hpp"
#include "resilience/resilience.hpp"

namespace sptd {

class HealthMonitor {
 public:
  HealthMonitor() = default;
  HealthMonitor(bool enabled, int patience)
      : enabled_(enabled), patience_(patience) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Inspects one completed iteration. \p loss is a lower-is-better score
  /// (1 - fit for decompositions, train RMSE for completion); pass NaN-free
  /// +inf semantics by simply not calling observe_loss — use kNoLoss when
  /// the run computes no fit. Returns the first issue found.
  HealthIssue inspect(const std::vector<la::Matrix>& factors,
                      const std::vector<val_t>& lambda, double loss);

  /// Sentinel loss for runs that skip fit computation.
  static constexpr double kNoLoss = -1.0;

  /// Seeds the loss trend from a restored history of losses (resume path),
  /// so divergence patience carries over a restart.
  void seed_trend(double best_loss);

  /// Forgets the regression streak after a rollback (the restored state
  /// predates the bad steps), keeping the best loss seen.
  void reset_streak();

  /// Forgets everything (best loss and streak). The distributed rejoin
  /// path calls this on *every* rank and reseeds the trend from the
  /// restored fit history, so survivors (with stale pre-crash trend state)
  /// and a freshly respawned rank make identical health decisions during
  /// replay — a divergent decision would desynchronize the collectives.
  void reset() {
    best_loss_ = std::numeric_limits<double>::infinity();
    bad_streak_ = 0;
  }

 private:
  bool enabled_ = true;
  int patience_ = 3;
  double best_loss_ = std::numeric_limits<double>::infinity();
  int bad_streak_ = 0;
};

/// Multiplicatively jitters every factor entry by up to \p scale, drawing
/// from \p rng — the "perturb" half of rollback-and-perturb, nudging a
/// restored iterate off the trajectory that just failed.
void perturb_factors(std::vector<la::Matrix>& factors, Rng& rng,
                     double scale = 1e-3);

}  // namespace sptd
