#pragma once
/// \file context.hpp
/// \brief ResilienceContext — the one object an iterative driver wires in.
///
/// Bundles the checkpoint manager, health monitor, fault injector, recovery
/// RNG, and counters behind a small surface:
///
///   ResilienceContext ctx(options.resilience, "cpals", options.seed);
///   if (auto ck = ctx.try_resume()) { ...restore state... }
///   while (it < max_iterations) {
///     ...iteration...
///     if (ctx.injector()) ctx.injector()->corrupt_factors(...);
///     HealthIssue issue = ctx.health().inspect(...);
///     if (issue != HealthIssue::kNone) {
///       ctx.fail_or_retry(issue, it);     // throws when budget exhausted
///       ...restore last good state, perturb, rewind it...
///       continue;
///     }
///     ctx.note_healthy();
///     if (ctx.checkpoint_due(it + 1)) ctx.save_checkpoint(...);
///   }
///   ctx.finish(result.resilience);
///
/// The retry budget is per incident: consecutive failed recoveries count
/// against --max-retries, and one healthy iteration resets the streak.

#include <optional>
#include <string>

#include "common/rng.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault.hpp"
#include "resilience/health.hpp"
#include "resilience/resilience.hpp"

namespace sptd {

class ResilienceContext {
 public:
  /// \p kind names the driver ("cpals", "tucker", "completion", "dist") and
  /// keys checkpoint filenames; \p seed derives the recovery-jitter RNG.
  ResilienceContext(const ResilienceOptions& opts, const char* kind,
                    std::uint64_t seed);

  /// Loads the newest valid checkpoint when --resume is set; records
  /// counters.resumed_from and restores the recovery RNG. Returns nullopt
  /// on a fresh start (resume with an empty dir is a fresh start, not an
  /// error, so "always pass --resume" is a safe operational habit).
  std::optional<Checkpoint> try_resume();

  [[nodiscard]] bool checkpointing() const { return manager_.enabled(); }
  [[nodiscard]] bool checkpoint_due(int completed) const {
    return manager_.due(completed);
  }

  /// Stamps kind + RNG state into \p ck and writes it (failures counted,
  /// non-fatal).
  void save_checkpoint(Checkpoint ck);

  /// Handles a detected health issue: consumes one retry and returns when
  /// the caller should roll back; throws ResilienceError once the
  /// consecutive-retry budget is exhausted. \p iteration is the 0-based
  /// iteration that failed.
  void fail_or_retry(HealthIssue issue, int iteration);

  /// Marks an iteration that passed inspection; resets the retry streak.
  void note_healthy();

  /// Samples the Tikhonov bump delta and copies counters into \p out.
  void finish(ResilienceCounters& out);

  HealthMonitor& health() { return health_; }
  FaultInjector* injector() {
    return injector_ ? &*injector_ : nullptr;
  }
  Rng& recovery_rng() { return recovery_rng_; }
  ResilienceCounters& counters() { return counters_; }
  const ResilienceOptions& options() const { return opts_; }

 private:
  ResilienceOptions opts_;
  std::string kind_;
  CheckpointManager manager_;
  HealthMonitor health_;
  std::optional<FaultInjector> injector_;
  Rng recovery_rng_;
  ResilienceCounters counters_;
  int consecutive_retries_ = 0;
  std::uint64_t bumps_at_start_ = 0;
};

}  // namespace sptd
