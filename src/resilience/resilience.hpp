#pragma once
/// \file resilience.hpp
/// \brief Shared vocabulary for the resilience layer: per-run options,
///        observable counters, health-issue taxonomy, and the structured
///        error thrown when recovery is exhausted.
///
/// Every iterative driver (CP-ALS, Tucker HOOI, completion, simulated dist)
/// embeds a ResilienceOptions in its options struct and a ResilienceCounters
/// in its result struct. The heavier machinery (CheckpointManager,
/// HealthMonitor, FaultInjector, ResilienceContext) lives in sibling headers
/// so that driver option headers stay light.

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace sptd {

class Options;  // common/options.hpp

/// Knobs for checkpointing, health guards, and fault injection. Defaults
/// leave checkpointing and injection off and guards on; a default-constructed
/// struct changes no arithmetic, so `--precision f64` stays bit-identical.
struct ResilienceOptions {
  /// Directory for checkpoint files; empty disables checkpointing.
  std::string checkpoint_dir;
  /// Snapshot every N completed iterations; 0 disables checkpointing.
  int checkpoint_every = 0;
  /// Resume from the newest valid checkpoint in checkpoint_dir.
  bool resume = false;
  /// Rollback-and-perturb attempts per incident before giving up.
  int max_retries = 2;
  /// Enables the per-iteration numeric-health scan (non-finite factors/fit,
  /// fit-divergence patience). Off means failures surface as garbage output
  /// or downstream throws, exactly as before this layer existed.
  bool health_checks = true;
  /// Consecutive clearly-regressing iterations tolerated before the run is
  /// declared divergent and rolled back.
  int divergence_patience = 3;
  /// Fault-injection plan, e.g. "nan-values:0.3,corrupt-factor:4,io-fail:2,
  /// locale-fail:1". Empty disables injection.
  std::string inject;
  /// Seed for the injection draw stream (deterministic per seed).
  std::uint64_t inject_seed = 1337;
};

/// Counters a run reports back; none participate in bench identity.
struct ResilienceCounters {
  /// Rollback-and-perturb attempts consumed (consecutive per incident).
  int retries = 0;
  /// Successful rollback recoveries performed.
  int rollbacks = 0;
  /// Checkpoint files written.
  int checkpoints = 0;
  /// Checkpoint writes that failed (injected or real IO errors).
  int checkpoint_failures = 0;
  /// Bytes of checkpoint payload written.
  std::uint64_t checkpoint_bytes = 0;
  /// Wall seconds spent serializing + writing checkpoints.
  double checkpoint_seconds = 0.0;
  /// Individual faults the injector fired (entries NaN'd, writes failed,
  /// locales killed).
  std::uint64_t faults_injected = 0;
  /// Tikhonov diagonal bumps the normal-equation solver applied during the
  /// run (delta of la::tikhonov_bump_count()).
  std::uint64_t gram_bumps = 0;
  /// Simulated locales rebuilt after an injected kill (dist only).
  int locale_restarts = 0;
  /// Iteration the run resumed from, or -1 for a fresh start.
  int resumed_from = -1;
};

/// What the health monitor found wrong with an iteration.
enum class HealthIssue {
  kNone,
  kNonFiniteFactor,  ///< NaN/Inf in a factor matrix or lambda
  kNonFiniteLoss,    ///< fit / RMSE came out NaN or Inf
  kDivergence,       ///< loss clearly regressing past the patience window
};

/// Human-readable name for a HealthIssue.
const char* health_issue_name(HealthIssue issue);

/// Thrown when a driver exhausts its retry budget: carries the failing
/// iteration, the issue class, and how many recoveries were attempted, so
/// callers (and tests) can dispatch on structure rather than message text.
class ResilienceError : public Error {
 public:
  ResilienceError(const std::string& kind, int iteration, HealthIssue issue,
                  int retries);

  int iteration() const { return iteration_; }
  HealthIssue issue() const { return issue_; }
  int retries() const { return retries_; }

 private:
  int iteration_;
  HealthIssue issue_;
  int retries_;
};

/// Registers the shared resilience CLI flags on \p opts
/// (--checkpoint-dir, --checkpoint-every, --resume, --max-retries,
/// --patience, --no-health-guards, --inject, --inject-seed).
void add_resilience_flags(Options& opts);

/// Builds a ResilienceOptions from flags registered by add_resilience_flags.
ResilienceOptions resilience_from_flags(const Options& opts);

/// One-line summary of a run's resilience activity for CLI output; empty
/// when nothing noteworthy happened (no resume, faults, retries, or
/// checkpoints).
std::string resilience_summary(const ResilienceCounters& c);

}  // namespace sptd
