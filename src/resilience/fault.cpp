#include "resilience/fault.hpp"

#include <cstdlib>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"

namespace sptd {

namespace {

constexpr val_t kNaN = std::numeric_limits<val_t>::quiet_NaN();

double parse_number(const std::string& clause, const std::string& arg) {
  char* end = nullptr;
  const double v = std::strtod(arg.c_str(), &end);
  SPTD_CHECK(!arg.empty() && end == arg.c_str() + arg.size(),
             "FaultPlan: bad argument in clause '" + clause + "'");
  return v;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (clause.empty()) continue;

    const std::size_t colon = clause.find(':');
    SPTD_CHECK(colon != std::string::npos && colon + 1 < clause.size(),
               "FaultPlan: clause '" + clause + "' is not kind:arg");
    const std::string kind = clause.substr(0, colon);
    const std::string arg = clause.substr(colon + 1);

    if (kind == "nan-values") {
      const double p = parse_number(clause, arg);
      SPTD_CHECK(p >= 0.0 && p <= 1.0,
                 "FaultPlan: nan-values probability must be in [0,1]");
      plan.nan_values_p = p;
    } else if (kind == "corrupt-factor") {
      const double it = parse_number(clause, arg);
      SPTD_CHECK(it >= 1.0 && it == static_cast<double>(
                                        static_cast<int>(it)),
                 "FaultPlan: corrupt-factor iteration must be a positive "
                 "integer");
      plan.corrupt_factor_iter = static_cast<int>(it);
    } else if (kind == "io-fail") {
      const double n = parse_number(clause, arg);
      SPTD_CHECK(n >= 0.0 && n == static_cast<double>(static_cast<int>(n)),
                 "FaultPlan: io-fail count must be a non-negative integer");
      plan.io_fail_count = static_cast<int>(n);
    } else if (kind == "locale-fail" || kind == "rank-kill") {
      // `k` or `k@iter`; the bare spelling keeps the original halfway-
      // iteration behavior, and rank-kill is an alias (the transport
      // decides whether the kill is simulated or a real SIGKILL).
      std::string id_arg = arg;
      const std::size_t at = arg.find('@');
      if (at != std::string::npos) {
        id_arg = arg.substr(0, at);
        const std::string iter_arg = arg.substr(at + 1);
        const double i = parse_number(clause, iter_arg);
        SPTD_CHECK(i >= 0.0 && i == static_cast<double>(static_cast<int>(i)),
                   "FaultPlan: " + kind +
                       " iteration must be a non-negative integer");
        plan.locale_fail_iter = static_cast<int>(i);
      }
      const double k = parse_number(clause, id_arg);
      SPTD_CHECK(k >= 0.0 && k == static_cast<double>(static_cast<int>(k)),
                 "FaultPlan: " + kind + " id must be a non-negative integer");
      plan.locale_fail = static_cast<int>(k);
    } else {
      throw Error("FaultPlan: unknown fault kind '" + kind +
                  "' (expected nan-values, corrupt-factor, io-fail, "
                  "locale-fail, or rank-kill)");
    }
  }
  return plan;
}

int FaultInjector::corrupt_factors(std::vector<la::Matrix>& factors, int it) {
  if (factors.empty()) return 0;
  int corrupted = 0;

  if (plan_.nan_values_p > 0.0 && rng_.next_double() < plan_.nan_values_p) {
    la::Matrix& f =
        factors[rng_.next_below(factors.size())];
    const idx_t i = rng_.next_index(f.rows());
    const idx_t j = rng_.next_index(f.cols());
    f(i, j) = kNaN;
    ++corrupted;
    log_warn("fault: injected NaN into factor entry at iteration " +
             std::to_string(it));
  }

  if (plan_.corrupt_factor_iter > 0 && !corrupt_factor_done_ &&
      it + 1 == plan_.corrupt_factor_iter) {
    corrupt_factor_done_ = true;
    la::Matrix& f =
        factors[rng_.next_below(factors.size())];
    const idx_t i = rng_.next_index(f.rows());
    val_t* row = f.row_ptr(i);
    for (idx_t j = 0; j < f.cols(); ++j) {
      row[j] = kNaN;
    }
    corrupted += static_cast<int>(f.cols());
    log_warn("fault: corrupted one factor row after iteration " +
             std::to_string(it + 1));
  }

  faults_injected_ += static_cast<std::uint64_t>(corrupted);
  return corrupted;
}

bool FaultInjector::fail_checkpoint_write() {
  if (io_failures_left_ <= 0) return false;
  --io_failures_left_;
  ++faults_injected_;
  return true;
}

bool FaultInjector::kill_locale(std::size_t locale, std::size_t nlocales,
                                int it, int max_iterations) {
  if (plan_.locale_fail < 0 || locale_kill_done_ || nlocales == 0) {
    return false;
  }
  if (!rank_kill_due(locale, nlocales, it, max_iterations)) return false;
  locale_kill_done_ = true;
  ++faults_injected_;
  log_warn("fault: killed simulated locale " + std::to_string(locale) +
           " at iteration " + std::to_string(it));
  return true;
}

bool FaultInjector::rank_kill_due(std::size_t locale, std::size_t nlocales,
                                  int it, int max_iterations) const {
  if (plan_.locale_fail < 0 || nlocales == 0) return false;
  const std::size_t victim =
      static_cast<std::size_t>(plan_.locale_fail) % nlocales;
  const int kill_iter = plan_.locale_fail_iter >= 0
                            ? plan_.locale_fail_iter
                            : max_iterations / 2;
  return locale == victim && it == kill_iter;
}

}  // namespace sptd
