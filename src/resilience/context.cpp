#include "resilience/context.hpp"

#include "common/log.hpp"
#include "la/cholesky.hpp"

namespace sptd {

namespace {

// Decorrelates the recovery-jitter stream from the factor-init stream that
// shares the user's seed (arbitrary odd constant, xor-mixed).
constexpr std::uint64_t kRecoverySalt = 0x9e3779b97f4a7c15ULL;

}  // namespace

ResilienceContext::ResilienceContext(const ResilienceOptions& opts,
                                     const char* kind, std::uint64_t seed)
    : opts_(opts),
      kind_(kind),
      manager_(opts.checkpoint_dir, kind, opts.checkpoint_every),
      health_(opts.health_checks, opts.divergence_patience),
      recovery_rng_(seed ^ kRecoverySalt),
      bumps_at_start_(la::tikhonov_bump_count()) {
  if (!opts.inject.empty()) {
    const FaultPlan plan = FaultPlan::parse(opts.inject);
    if (!plan.empty()) {
      injector_.emplace(plan, opts.inject_seed);
    }
  }
}

std::optional<Checkpoint> ResilienceContext::try_resume() {
  if (!opts_.resume) return std::nullopt;
  SPTD_CHECK(!opts_.checkpoint_dir.empty(),
             "--resume requires --checkpoint-dir");
  std::optional<Checkpoint> ck =
      CheckpointManager::load_latest(opts_.checkpoint_dir, kind_);
  if (!ck) {
    log_info("resilience: no valid " + kind_ + " checkpoint in " +
             opts_.checkpoint_dir + ", starting fresh");
    return std::nullopt;
  }
  counters_.resumed_from = ck->iteration;
  recovery_rng_.set_state(ck->rng_state);
  log_info("resilience: resuming " + kind_ + " from iteration " +
           std::to_string(ck->iteration));
  return ck;
}

void ResilienceContext::save_checkpoint(Checkpoint ck) {
  ck.kind = kind_;
  ck.rng_state = recovery_rng_.state();
  manager_.save(ck, injector(), counters_);
}

void ResilienceContext::fail_or_retry(HealthIssue issue, int iteration) {
  if (consecutive_retries_ >= opts_.max_retries) {
    throw ResilienceError(kind_, iteration, issue, consecutive_retries_);
  }
  ++consecutive_retries_;
  ++counters_.retries;
  ++counters_.rollbacks;
  health_.reset_streak();
  log_warn("resilience: " + kind_ + " detected " +
           health_issue_name(issue) + " at iteration " +
           std::to_string(iteration) + "; rolling back (attempt " +
           std::to_string(consecutive_retries_) + "/" +
           std::to_string(opts_.max_retries) + ")");
}

void ResilienceContext::note_healthy() { consecutive_retries_ = 0; }

void ResilienceContext::finish(ResilienceCounters& out) {
  if (injector_) {
    counters_.faults_injected = injector_->faults_injected();
  }
  counters_.gram_bumps = la::tikhonov_bump_count() - bumps_at_start_;
  out = counters_;
}

}  // namespace sptd
