#pragma once
/// \file fault.hpp
/// \brief Deterministic fault injection for exercising recovery paths.
///
/// A FaultPlan parses the `--inject` grammar and a FaultInjector executes
/// it against a running solver. Everything is driven by one seeded RNG
/// stream, so a given (plan, seed) pair injects the identical fault sequence
/// on every run — the ctest suite proves detection + recovery per fault
/// class instead of trusting the code paths on faith.
///
/// Grammar: comma-separated `kind:arg` clauses
///   nan-values:p       each iteration, with probability p, flip one random
///                      factor entry to NaN
///   corrupt-factor:it  after completed iteration `it` (1-based), overwrite
///                      one random factor row with NaN (one-shot)
///   io-fail:n          fail the first n checkpoint writes, leaving a torn
///                      file for the loader to reject
///   locale-fail:k      kill locale k (mod nlocales) halfway through a dist
///                      run (one-shot)
///   locale-fail:k@it   same, at 0-based iteration `it` instead of halfway
///   rank-kill:k@it     alias of locale-fail:k@it. Under the sim transport
///                      the locale's CSF set + plan are dropped and rebuilt
///                      in-process; under the shm transport the victim rank
///                      raises SIGKILL on itself mid-iteration and the
///                      launcher respawns it from checkpoint (the `@it`
///                      part is optional there too)

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "la/matrix.hpp"

namespace sptd {

/// Parsed `--inject` specification.
struct FaultPlan {
  double nan_values_p = 0.0;  ///< per-iteration NaN-flip probability
  int corrupt_factor_iter = 0;  ///< 1-based iteration; 0 = off
  int io_fail_count = 0;  ///< checkpoint writes to fail
  int locale_fail = -1;  ///< locale id to kill; -1 = off
  /// 0-based iteration the locale/rank kill fires at; -1 = the halfway
  /// iteration (max_iterations / 2), the pre-`@iter` behavior.
  int locale_fail_iter = -1;

  [[nodiscard]] bool empty() const {
    return nan_values_p == 0.0 && corrupt_factor_iter == 0 &&
           io_fail_count == 0 && locale_fail < 0;
  }

  /// Parses the grammar above. Throws sptd::Error on malformed clauses.
  static FaultPlan parse(const std::string& spec);
};

/// Executes a FaultPlan deterministically from a seeded draw stream.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::uint64_t seed)
      : plan_(plan), rng_(seed), io_failures_left_(plan.io_fail_count) {}

  /// Applies nan-values / corrupt-factor clauses after completed iteration
  /// \p it (0-based). Returns the number of entries corrupted.
  int corrupt_factors(std::vector<la::Matrix>& factors, int it);

  /// Consumes one unit of the io-fail budget; true = fail this write.
  bool fail_checkpoint_write();

  /// True when simulated locale \p locale should be killed at the start of
  /// iteration \p it (0-based) of a \p max_iterations-long dist run. Fires
  /// once, at the configured (default: halfway) iteration, for locale
  /// `locale-fail % nlocales`.
  bool kill_locale(std::size_t locale, std::size_t nlocales, int it,
                   int max_iterations);

  /// Pure predicate form of the kill schedule for the shm transport: true
  /// when rank \p locale is the victim and \p it is the kill iteration.
  /// Deliberately does not mutate injector state or count the fault — the
  /// one-shot guarantee lives in the shared-memory kill token (so a
  /// respawned victim replaying the kill iteration survives) and the
  /// launcher accounts the fault exactly once from that token.
  [[nodiscard]] bool rank_kill_due(std::size_t locale, std::size_t nlocales,
                                   int it, int max_iterations) const;

  [[nodiscard]] std::uint64_t faults_injected() const {
    return faults_injected_;
  }

 private:
  FaultPlan plan_;
  Rng rng_;
  int io_failures_left_ = 0;
  bool corrupt_factor_done_ = false;
  bool locale_kill_done_ = false;
  std::uint64_t faults_injected_ = 0;
};

}  // namespace sptd
