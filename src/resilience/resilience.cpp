#include "resilience/resilience.hpp"

#include <sstream>

#include "common/options.hpp"

namespace sptd {

const char* health_issue_name(HealthIssue issue) {
  switch (issue) {
    case HealthIssue::kNone:
      return "none";
    case HealthIssue::kNonFiniteFactor:
      return "non-finite factor entries";
    case HealthIssue::kNonFiniteLoss:
      return "non-finite fit/loss";
    case HealthIssue::kDivergence:
      return "divergent fit/loss trend";
  }
  return "unknown";
}

namespace {

std::string format_resilience_error(const std::string& kind, int iteration,
                                    HealthIssue issue, int retries) {
  std::ostringstream os;
  os << "[resilience] " << kind << ": " << health_issue_name(issue)
     << " at iteration " << iteration << " after " << retries
     << (retries == 1 ? " recovery attempt" : " recovery attempts")
     << " (--max-retries exhausted)";
  return os.str();
}

}  // namespace

ResilienceError::ResilienceError(const std::string& kind, int iteration,
                                 HealthIssue issue, int retries)
    : Error(format_resilience_error(kind, iteration, issue, retries)),
      iteration_(iteration),
      issue_(issue),
      retries_(retries) {}

void add_resilience_flags(Options& opts) {
  opts.add("checkpoint-dir", "",
           "directory for checkpoint files (empty disables checkpointing)");
  opts.add("checkpoint-every", "0",
           "write a checkpoint every N completed iterations (0 = off)");
  opts.add_flag("resume",
                "resume from the newest valid checkpoint in --checkpoint-dir");
  opts.add("max-retries", "2",
           "rollback-and-perturb attempts per incident before failing");
  opts.add("patience", "3",
           "consecutive regressing iterations before declaring divergence");
  opts.add_flag("no-health-guards",
                "disable the per-iteration numeric-health scan");
  opts.add("inject", "",
           "deterministic fault plan: nan-values:p,corrupt-factor:iter,"
           "io-fail:n,locale-fail:k");
  opts.add("inject-seed", "1337", "seed for the fault-injection draw stream");
}

ResilienceOptions resilience_from_flags(const Options& opts) {
  ResilienceOptions r;
  r.checkpoint_dir = opts.get_string("checkpoint-dir");
  r.checkpoint_every = static_cast<int>(opts.get_int("checkpoint-every"));
  r.resume = opts.get_bool("resume");
  r.max_retries = static_cast<int>(opts.get_int("max-retries"));
  r.divergence_patience = static_cast<int>(opts.get_int("patience"));
  r.health_checks = !opts.get_bool("no-health-guards");
  r.inject = opts.get_string("inject");
  r.inject_seed = static_cast<std::uint64_t>(opts.get_int("inject-seed"));
  return r;
}

std::string resilience_summary(const ResilienceCounters& c) {
  const bool noteworthy = c.resumed_from >= 0 || c.checkpoints > 0 ||
                          c.checkpoint_failures > 0 || c.retries > 0 ||
                          c.rollbacks > 0 || c.faults_injected > 0 ||
                          c.gram_bumps > 0 || c.locale_restarts > 0;
  if (!noteworthy) return {};
  std::ostringstream os;
  os << "resilience:";
  if (c.resumed_from >= 0) {
    os << " resumed from iteration " << c.resumed_from << ";";
  }
  os << " " << c.checkpoints << " checkpoints (" << c.checkpoint_bytes
     << " bytes, " << c.checkpoint_seconds << " s";
  if (c.checkpoint_failures > 0) {
    os << ", " << c.checkpoint_failures << " failed writes";
  }
  os << "); " << c.retries << " retries, " << c.rollbacks << " rollbacks, "
     << c.faults_injected << " faults injected";
  if (c.gram_bumps > 0) {
    os << ", " << c.gram_bumps << " gram bumps";
  }
  if (c.locale_restarts > 0) {
    os << ", " << c.locale_restarts << " locale restarts";
  }
  return os.str();
}

}  // namespace sptd
