#include "resilience/checkpoint.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/fileio.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "resilience/fault.hpp"

namespace sptd {

namespace {

namespace fs = std::filesystem;

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

/// Bulk doubles are stored as raw bytes ("bin <nbytes>\n<bytes>\n"), not
/// text: %.17g formatting costs ~0.5 us per value, which made a snapshot
/// of a real factor set cost tens of milliseconds — far past the <= 5%
/// overhead contract the ci.sh fig5 gate enforces. Raw doubles are
/// bitwise-exact by construction and checkpoints are machine-local
/// restart artifacts, so native endianness is fine.
void append_raw(std::string& out, const double* data, std::size_t n) {
  out += "bin ";
  append_u64(out, n * sizeof(double));
  out += '\n';
  out.append(reinterpret_cast<const char*>(data), n * sizeof(double));
  out += '\n';
}

void append_matrix(std::string& out, const la::Matrix& m) {
  append_u64(out, m.rows());
  out += ' ';
  append_u64(out, m.cols());
  out += '\n';
  // One raw block per matrix: logical lanes only (cols, not the padded
  // leading dimension), row-major.
  out += "bin ";
  append_u64(out, static_cast<std::uint64_t>(m.rows()) * m.cols() *
                      sizeof(double));
  out += '\n';
  for (idx_t i = 0; i < m.rows(); ++i) {
    out.append(reinterpret_cast<const char*>(m.row_ptr(i)),
               static_cast<std::size_t>(m.cols()) * sizeof(double));
  }
  out += '\n';
}

/// Whitespace tokenizer over the payload; strtod/strtoull based so inf and
/// nan parse, unlike iostream extraction.
class Tokenizer {
 public:
  explicit Tokenizer(const std::string& text) : text_(text) {}

  std::string next_token() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    SPTD_CHECK(pos_ < text_.size(), "checkpoint: truncated payload");
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  void expect(const char* keyword) {
    const std::string tok = next_token();
    SPTD_CHECK(tok == keyword, "checkpoint: expected '" +
                                   std::string(keyword) + "', got '" + tok +
                                   "'");
  }

  double next_double() {
    const std::string tok = next_token();
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    SPTD_CHECK(end == tok.c_str() + tok.size(),
               "checkpoint: bad number '" + tok + "'");
    return v;
  }

  std::uint64_t next_u64() {
    const std::string tok = next_token();
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(tok.c_str(), &end, 10);
    SPTD_CHECK(end == tok.c_str() + tok.size() && tok[0] != '-',
               "checkpoint: bad integer '" + tok + "'");
    return v;
  }

  /// Reads a "bin <nbytes>" block into \p n doubles. The byte count is
  /// followed by exactly one '\n', then the raw bytes, then '\n' — raw
  /// bytes are never tokenized, so whitespace-valued bytes are safe.
  void read_raw(double* dst, std::size_t n) {
    expect("bin");
    const std::uint64_t nbytes = next_u64();
    SPTD_CHECK(nbytes == n * sizeof(double),
               "checkpoint: raw block length mismatch");
    SPTD_CHECK(pos_ < text_.size() && text_[pos_] == '\n',
               "checkpoint: malformed raw block");
    ++pos_;
    SPTD_CHECK(text_.size() - pos_ >= nbytes,
               "checkpoint: truncated raw block");
    std::memcpy(dst, text_.data() + pos_, nbytes);
    pos_ += nbytes;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

la::Matrix read_matrix(Tokenizer& tok) {
  const auto rows = static_cast<idx_t>(tok.next_u64());
  const auto cols = static_cast<idx_t>(tok.next_u64());
  SPTD_CHECK(rows >= 1 && cols >= 1, "checkpoint: bad matrix shape");
  la::Matrix m(rows, cols);
  std::vector<double> flat(static_cast<std::size_t>(rows) * cols);
  tok.read_raw(flat.data(), flat.size());
  for (idx_t i = 0; i < rows; ++i) {
    std::memcpy(m.row_ptr(i),
                flat.data() + static_cast<std::size_t>(i) * cols,
                static_cast<std::size_t>(cols) * sizeof(double));
  }
  return m;
}

void append_factor_section(std::string& out, const char* keyword,
                           const std::vector<la::Matrix>& factors) {
  out += keyword;
  out += ' ';
  append_u64(out, factors.size());
  out += '\n';
  for (const la::Matrix& f : factors) {
    append_matrix(out, f);
  }
}

std::vector<la::Matrix> read_factor_section(Tokenizer& tok,
                                            const char* keyword) {
  tok.expect(keyword);
  const std::uint64_t count = tok.next_u64();
  SPTD_CHECK(count <= static_cast<std::uint64_t>(kMaxOrder),
             "checkpoint: implausible factor count");
  std::vector<la::Matrix> factors;
  factors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    factors.push_back(read_matrix(tok));
  }
  return factors;
}

std::string checkpoint_filename(const std::string& kind, int iteration) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "-%08d.ckpt", iteration);
  return kind + buf;
}

}  // namespace

void Checkpoint::set_scalar(const std::string& name, double value) {
  for (auto& [n, v] : scalars) {
    if (n == name) {
      v = value;
      return;
    }
  }
  scalars.emplace_back(name, value);
}

double Checkpoint::scalar(const std::string& name, double fallback) const {
  for (const auto& [n, v] : scalars) {
    if (n == name) return v;
  }
  return fallback;
}

bool Checkpoint::has_scalar(const std::string& name) const {
  for (const auto& [n, v] : scalars) {
    if (n == name) return true;
  }
  return false;
}

void Checkpoint::set_series(const std::string& name,
                            std::vector<double> values) {
  for (auto& [n, v] : series) {
    if (n == name) {
      v = std::move(values);
      return;
    }
  }
  series.emplace_back(name, std::move(values));
}

const std::vector<double>* Checkpoint::find_series(
    const std::string& name) const {
  for (const auto& [n, v] : series) {
    if (n == name) return &v;
  }
  return nullptr;
}

std::string Checkpoint::serialize() const {
  std::string body;
  body += "iteration ";
  append_u64(body, static_cast<std::uint64_t>(iteration));
  body += "\nrng";
  for (const std::uint64_t s : rng_state) {
    body += ' ';
    append_u64(body, s);
  }
  body += "\nscalars ";
  append_u64(body, scalars.size());
  body += '\n';
  for (const auto& [name, value] : scalars) {
    body += name;
    body += ' ';
    append_double(body, value);
    body += '\n';
  }
  body += "series ";
  append_u64(body, series.size());
  body += '\n';
  for (const auto& [name, values] : series) {
    body += name;
    body += ' ';
    append_u64(body, values.size());
    body += '\n';
    append_raw(body, values.data(), values.size());
  }
  append_factor_section(body, "factors", factors);
  append_factor_section(body, "aux_factors", aux_factors);

  std::string out = "sptd-checkpoint 2 " + kind + "\nchecksum ";
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016" PRIx64, fnv1a64(body));
  out += hex;
  out += '\n';
  out += body;
  return out;
}

Checkpoint Checkpoint::deserialize(const std::string& text) {
  // Header and checksum occupy the first two lines; the payload is the
  // remaining raw bytes, checksummed verbatim.
  const std::size_t first_nl = text.find('\n');
  SPTD_CHECK(first_nl != std::string::npos, "checkpoint: missing header");
  const std::size_t second_nl = text.find('\n', first_nl + 1);
  SPTD_CHECK(second_nl != std::string::npos, "checkpoint: missing checksum");

  Checkpoint ck;
  {
    Tokenizer head(text);
    head.expect("sptd-checkpoint");
    const std::uint64_t version = head.next_u64();
    SPTD_CHECK(version == 2, "checkpoint: unsupported version " +
                                 std::to_string(version));
    ck.kind = head.next_token();
    head.expect("checksum");
    const std::string hex = head.next_token();
    SPTD_CHECK(hex.size() == 16, "checkpoint: malformed checksum");
    char* end = nullptr;
    const std::uint64_t expected = std::strtoull(hex.c_str(), &end, 16);
    SPTD_CHECK(end == hex.c_str() + hex.size(),
               "checkpoint: malformed checksum");
    const std::string_view payload(text.data() + second_nl + 1,
                                   text.size() - second_nl - 1);
    SPTD_CHECK(fnv1a64(payload) == expected,
               "checkpoint: checksum mismatch (file corrupt or truncated)");
  }

  const std::string payload = text.substr(second_nl + 1);
  Tokenizer tok(payload);
  tok.expect("iteration");
  ck.iteration = static_cast<int>(tok.next_u64());
  tok.expect("rng");
  for (std::uint64_t& s : ck.rng_state) {
    s = tok.next_u64();
  }
  tok.expect("scalars");
  const std::uint64_t nscalars = tok.next_u64();
  for (std::uint64_t i = 0; i < nscalars; ++i) {
    const std::string name = tok.next_token();
    ck.scalars.emplace_back(name, tok.next_double());
  }
  tok.expect("series");
  const std::uint64_t nseries = tok.next_u64();
  for (std::uint64_t i = 0; i < nseries; ++i) {
    const std::string name = tok.next_token();
    const std::uint64_t len = tok.next_u64();
    std::vector<double> values(len);
    tok.read_raw(values.data(), values.size());
    ck.series.emplace_back(name, std::move(values));
  }
  ck.factors = read_factor_section(tok, "factors");
  ck.aux_factors = read_factor_section(tok, "aux_factors");
  return ck;
}

CheckpointManager::CheckpointManager(std::string dir, std::string kind,
                                     int every, int keep)
    : dir_(std::move(dir)), kind_(std::move(kind)), every_(every),
      keep_(keep) {}

bool CheckpointManager::save(const Checkpoint& ck, FaultInjector* injector,
                             ResilienceCounters& counters) {
  if (!enabled()) return false;
  WallTimer timer;
  timer.start();
  const std::string text = ck.serialize();
  const std::string path =
      (fs::path(dir_) / checkpoint_filename(kind_, ck.iteration)).string();
  if (injector != nullptr && injector->fail_checkpoint_write()) {
    // Simulate a torn write: a truncated file lands at the target path
    // non-atomically. load_latest must reject it by checksum and fall back
    // to the previous snapshot — exactly what a real torn write looks like
    // to a reader without the atomic-rename discipline.
    std::error_code ec;
    fs::create_directories(dir_, ec);
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn << text.substr(0, text.size() / 2);
    ++counters.checkpoint_failures;
    timer.stop();
    counters.checkpoint_seconds += timer.seconds();
    log_warn("checkpoint: injected IO failure writing " + path);
    return false;
  }
  try {
    std::error_code ec;
    fs::create_directories(dir_, ec);
    // kRelaxed: a crash that loses the rename just resumes from the
    // previous snapshot, so the directory fsync buys nothing here.
    atomic_write_file(path, text, RenameDurability::kRelaxed);
  } catch (const Error& e) {
    ++counters.checkpoint_failures;
    timer.stop();
    counters.checkpoint_seconds += timer.seconds();
    log_warn(std::string("checkpoint: write failed: ") + e.what());
    return false;
  }
  timer.stop();
  ++counters.checkpoints;
  counters.checkpoint_bytes += text.size();
  counters.checkpoint_seconds += timer.seconds();

  written_.emplace_back(ck.iteration, path);
  std::sort(written_.begin(), written_.end());
  while (written_.size() > static_cast<std::size_t>(keep_)) {
    std::error_code ec;
    fs::remove(written_.front().second, ec);
    written_.erase(written_.begin());
  }
  return true;
}

std::optional<Checkpoint> CheckpointManager::load_latest(
    const std::string& dir, const std::string& kind) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return std::nullopt;

  const std::string prefix = kind + "-";
  std::vector<std::pair<int, std::string>> candidates;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + 5 || name.rfind(prefix, 0) != 0 ||
        name.substr(name.size() - 5) != ".ckpt") {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - 5);
    char* end = nullptr;
    const long iter = std::strtol(digits.c_str(), &end, 10);
    if (end != digits.c_str() + digits.size()) continue;
    candidates.emplace_back(static_cast<int>(iter), entry.path().string());
  }
  std::sort(candidates.rbegin(), candidates.rend());

  int rejected = 0;
  for (const auto& [iter, path] : candidates) {
    const std::optional<std::string> text = read_file_to_string(path);
    if (!text) {
      ++rejected;
      continue;
    }
    try {
      Checkpoint ck = Checkpoint::deserialize(*text);
      SPTD_CHECK(ck.kind == kind, "checkpoint: kind mismatch");
      SPTD_CHECK(ck.iteration == iter, "checkpoint: iteration mismatch");
      return ck;
    } catch (const Error& e) {
      ++rejected;
      log_warn("checkpoint: skipping invalid " + path + ": " + e.what());
    }
  }
  if (rejected > 0) {
    // Snapshots were written and every one is now unreadable — both
    // keep-N rotation files failed checksum. Starting fresh here would
    // silently discard converged work, so refuse with structure.
    throw CheckpointCorruptError(dir, kind, rejected);
  }
  return std::nullopt;
}

std::optional<Checkpoint> load_checkpoint_file(const std::string& path) {
  const std::optional<std::string> text = read_file_to_string(path);
  if (!text) return std::nullopt;
  return Checkpoint::deserialize(*text);
}

}  // namespace sptd
