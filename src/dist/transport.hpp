#pragma once
/// \file transport.hpp
/// \brief DistTransport — the communication seam of the distributed
///        CP-ALS driver.
///
/// The driver (dist_cpals.cpp) runs one replicated ALS loop per process:
/// every rank holds the full factor set, executes the MTTKRP of its own
/// tensor block, and hands the per-rank partials to a DistTransport whose
/// only job is the locale-order all-reduce. Three implementations share
/// the seam:
///
///   SimTransport  in-process sum over all ranks (the original simulation;
///                 the unit-testable default — zero real bytes move)
///   ShmTransport  one process per locale over a shared-memory ring
///                 (fork launcher, heartbeats, rank-death recovery)
///   MpiTransport  one MPI rank per locale (built only when find_package
///                 (MPI) succeeds at configure time)
///
/// All three sum the partials in locale order 0..P-1, so the fit
/// trajectory is bitwise-identical across transports at f64 with one
/// thread per locale — the determinism contract the recovery tests and
/// the ci.sh bitwise `cmp` gates rely on.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "la/matrix.hpp"

namespace sptd {

/// Which communication backend a distributed run uses.
enum class TransportKind { kSim, kShm, kMpi };

/// Parses "sim" | "shm" | "mpi". Throws sptd::Error otherwise.
TransportKind parse_transport(const std::string& name);
const char* transport_name(TransportKind kind);

/// True when MpiTransport was compiled in (find_package(MPI) succeeded).
bool mpi_transport_available();

/// World rank once MpiTransport has initialized MPI; 0 in every other
/// configuration. Lets the CLI print and write output from one rank only.
int mpi_world_rank();

/// Bytes and wall-clock seconds the transport *actually* moved/spent, per
/// collective phase, accumulated over the whole run (including recovery
/// replay). SimTransport leaves this zero — it moves nothing real; the
/// modeled volume lives in DistResult::comm. Shm/Mpi account physical
/// buffers (rows * padded ld), so measured >= model even before replay.
struct CommMeasured {
  std::uint64_t reduce_bytes = 0;
  std::uint64_t broadcast_bytes = 0;
  double reduce_seconds = 0.0;
  double broadcast_seconds = 0.0;

  [[nodiscard]] std::uint64_t total_bytes() const {
    return reduce_bytes + broadcast_bytes;
  }
};

/// Where a rank re-enters the iteration space after adopting a recovery
/// epoch: restore from \p checkpoint_path when non-empty, otherwise
/// re-initialize from the seed and replay from \p iteration (then 0).
struct RejoinPoint {
  int iteration = 0;
  std::string checkpoint_path;
};

/// Thrown inside a transport wait when a recovery epoch begins (a peer
/// rank died and the launcher bumped the epoch). Not an error: the driver
/// catches it, calls rejoin(), restores state, and continues. Deliberately
/// not derived from sptd::Error so generic error handling never swallows
/// a recovery in progress.
struct RecoveryInterrupt {};

/// A transport operation failed structurally: a per-operation deadline
/// expired after exponential-backoff retries, or a peer reported a fatal
/// error. Carries enough context to tell *which* collective died.
class TransportError : public Error {
 public:
  TransportError(TransportKind kind, std::size_t rank, std::uint64_t op,
                 const std::string& what_happened)
      : Error(std::string("dist transport (") + transport_name(kind) +
              ", rank " + std::to_string(rank) + ", op " +
              std::to_string(op) + "): " + what_happened) {}
};

/// The communication seam. One instance per process; `allreduce` is the
/// layer reduce + broadcast of one mode's MTTKRP partials, summed in
/// locale order into \p out on every rank.
class DistTransport {
 public:
  virtual ~DistTransport() = default;

  [[nodiscard]] virtual TransportKind kind() const = 0;
  [[nodiscard]] virtual std::size_t nranks() const = 0;

  /// Locale-order all-reduce of operation \p op (globally increasing per
  /// rank: iteration * order + mode). \p partials has one slot per rank;
  /// non-null exactly for the ranks this process computed (all of them
  /// under sim, one under shm/mpi; null for empty locales everywhere).
  /// On return \p out holds sum of all ranks' partials, identical bytes
  /// on every rank. May throw RecoveryInterrupt (shm) or TransportError.
  virtual void allreduce(std::uint64_t op, int mode,
                         const std::vector<const la::Matrix*>& partials,
                         la::Matrix& out) = 0;

  /// Adopts the current recovery epoch and reports where to resume.
  /// nullopt = fresh start (sim/mpi always; shm at epoch 0 with no
  /// preset resume point). Called by the driver at startup and after
  /// every RecoveryInterrupt.
  virtual std::optional<RejoinPoint> rejoin() { return std::nullopt; }

  /// One-shot claim of the rank-kill fault token. The shm transport backs
  /// this with shared memory so a respawned victim replaying the kill
  /// iteration does not kill itself again; elsewhere the FaultInjector's
  /// own one-shot state suffices.
  virtual bool claim_kill_token() { return true; }

  /// Liveness signal for heartbeat-based death detection; called by the
  /// driver between compute phases, and by shm waits on every poll.
  virtual void beat() {}

  /// Completion barrier: returns only when every rank has finished the
  /// final iteration in the same epoch (shm); no-op elsewhere. May throw
  /// RecoveryInterrupt if a rank dies while the barrier forms.
  virtual void finalize() {}

  [[nodiscard]] const CommMeasured& measured() const { return measured_; }

 protected:
  CommMeasured measured_;
};

}  // namespace sptd
