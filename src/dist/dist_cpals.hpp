#pragma once
/// \file dist_cpals.hpp
/// \brief Simulated medium-grained distributed CP-ALS — the paper's stated
///        future work (Section VI), runnable on one machine.
///
/// SPLATT's medium-grained distributed algorithm (Smith & Karypis, IPDPS
/// 2016) lays an N-dimensional grid of "locales" over the tensor: locale
/// (g_0, ..., g_{N-1}) owns the nonzeros whose mode-m coordinates fall in
/// the g_m-th block of mode m. A mode-m MTTKRP then needs communication
/// only within mode-m "layers" (locales sharing g_m): each layer reduces
/// its partial MTTKRP rows and broadcasts the updated factor rows back.
///
/// The driver runs the algorithm over a pluggable communication seam
/// (dist/transport.hpp): every rank executes the identical replicated ALS
/// loop and only the locale-order all-reduce of MTTKRP partials is
/// transport-specific. `--transport sim` (the default) keeps the original
/// in-process byte-accounting simulation — the tensor is really
/// partitioned per locale (each with its own CSF set and execution plan)
/// and every inter-locale transfer the real algorithm would make is
/// accounted in bytes, so grid-shape trade-offs (the 1-D vs N-D volume
/// gap) are measurable without a cluster. `--transport shm` forks one real
/// process per locale over a shared-memory ring (heartbeat death
/// detection, SIGKILL recovery from checkpoint); `--transport mpi` runs
/// one MPI rank per locale when built with MPI. All transports sum in
/// locale order, so fits match across transports bitwise at f64 with one
/// thread per locale, and match the shared-memory driver exactly for one
/// locale.

#include <vector>

#include "common/precision.hpp"
#include "common/types.hpp"
#include "cpd/kruskal.hpp"
#include "csf/csf.hpp"
#include "dist/transport.hpp"
#include "parallel/backend.hpp"
#include "parallel/schedule.hpp"
#include "resilience/resilience.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// Knobs of a simulated distributed run.
struct DistOptions {
  /// Locale grid, one extent per tensor mode (e.g. {2, 2, 2} = 8 locales).
  dims_t grid;
  idx_t rank = 10;
  int max_iterations = 10;
  std::uint64_t seed = 23;  ///< factor initialization seed (as CP-ALS)
  /// Balance block boundaries by slice nonzero counts instead of equal
  /// index ranges (the same weighted-vs-uniform choice as tiling).
  bool weighted_blocks = true;
  /// Slice scheduling inside each locale's MTTKRP plan
  /// (static | weighted | dynamic | workstealing).
  SchedulePolicy schedule = SchedulePolicy::kWeighted;
  /// Dynamic/workstealing claims-per-thread target inside each locale's
  /// plan (MttkrpOptions::chunk_target).
  int chunk_target = 16;
  /// Rank-specialized SIMD inner loops inside each locale's plan
  /// (MttkrpOptions::use_fixed_kernels).
  bool use_fixed_kernels = true;
  /// CSF index-stream widths of each locale's representations
  /// (compressed = narrowest per level; wide = u32/u64 baseline).
  CsfLayout csf_layout = CsfLayout::kCompressed;
  /// Value-stream precision inside each locale's MTTKRP plan
  /// (MttkrpOptions::precision); the reductions, solves, and fit always
  /// run fp64 — only the local kernels change what they stream.
  Precision precision = Precision::kF64;
  /// Parallel backend (parallel/backend.hpp): omp (default) or pool.
  /// Applied process-wide by the dist driver via set_parallel_backend()
  /// before locale plans are built; defaults from SPTD_BACKEND. Under the
  /// shm transport each forked locale is strictly single-threaded (the
  /// runtime is never initialized in children — fork and thread pools
  /// don't mix).
  ParallelBackendKind backend = default_parallel_backend();

  /// Communication backend: sim (in-process simulation, the default),
  /// shm (fork-per-locale over a shared-memory ring), or mpi (one MPI
  /// rank per locale; requires an MPI build).
  TransportKind transport = TransportKind::kSim;
  /// Per-operation deadline for shm collective waits, in seconds. A wait
  /// that exhausts its exponential-backoff retries past this bound throws
  /// TransportError. Must cover a respawned rank's CSF rebuild + replay
  /// lag, not just one reduce.
  double comm_deadline_s = 60.0;
  /// Launcher-side rank-death threshold: a child whose heartbeat counter
  /// stalls this long is declared dead and SIGKILLed into recovery.
  double heartbeat_timeout_s = 30.0;

  /// Checkpoint/restart, numeric-health guards, and fault injection
  /// (inert by default). `--inject locale-fail:k` kills locale k's CSF set
  /// and plan at the halfway iteration; the driver detects the dead locale
  /// (owns nonzeros, has no plan) and rebuilds it from its block —
  /// deterministically, so the recovered run matches the clean run bitwise.
  ResilienceOptions resilience;
};

/// Per-mode communication volume of one CP-ALS iteration, in bytes, both
/// collective directions (partial-MTTKRP reduce, factor-row broadcast).
struct CommVolume {
  std::vector<std::uint64_t> reduce_bytes;     ///< one entry per mode
  std::vector<std::uint64_t> broadcast_bytes;  ///< one entry per mode

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t acc = 0;
    for (const std::uint64_t b : reduce_bytes) acc += b;
    for (const std::uint64_t b : broadcast_bytes) acc += b;
    return acc;
  }
};

/// Result of a simulated distributed run.
struct DistResult {
  KruskalModel model;
  std::vector<double> fit_history;  ///< fit after each iteration
  int iterations = 0;
  std::vector<nnz_t> locale_nnz;    ///< nonzeros owned per locale
  CommVolume comm;                  ///< modeled total bytes, all iterations
  /// Bytes/seconds the transport actually moved/spent per collective
  /// phase. Zero under sim (nothing real moves); under shm/mpi it counts
  /// physical buffers and recovery replay, so it can exceed the model.
  CommMeasured comm_measured;
  /// Checkpoint/recovery activity observed during the run (including
  /// locale_restarts: simulated rebuilds under sim, real respawns under
  /// shm).
  ResilienceCounters resilience;
};

/// Bytes one CP-ALS iteration moves under the medium-grained algorithm:
/// for mode m, every layer of P/grid[m] locales all-reduces dims[m]*rank
/// partial rows and broadcasts the updated rows back, i.e.
/// (P/grid[m] - 1) * dims[m] * rank * sizeof(val_t) bytes per direction
/// (zero when the layer is a single locale).
CommVolume predict_comm_volume(const dims_t& dims, const dims_t& grid,
                               idx_t rank);

/// Runs CP-ALS over a locale grid. \p opts.grid must have one extent per
/// mode, each in [1, dims[m]]. Runs exactly max_iterations iterations;
/// the fit trajectory matches cp_als (1 thread, same seed) up to partial-
/// sum reduction order — bitwise for a single locale, and bitwise across
/// transports for any grid (all transports reduce in locale order).
DistResult dist_cp_als(const SparseTensor& x, const DistOptions& opts);

}  // namespace sptd
