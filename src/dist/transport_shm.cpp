/// \file transport_shm.cpp
/// \brief ShmTransport and Doorbells implementation. See
///        transport_shm.hpp for the protocol description.

#include "dist/transport_shm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#ifdef __linux__
#include <poll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#endif

namespace sptd {

Doorbells::Doorbells(std::size_t n) : fds_(n, -1) {
#ifdef __linux__
  for (int& fd : fds_) {
    fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  }
#endif
}

Doorbells::~Doorbells() {
#ifdef __linux__
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
#endif
}

void Doorbells::kick_all() {
#ifdef __linux__
  const std::uint64_t one = 1;
  for (int fd : fds_) {
    if (fd < 0) continue;
    // EAGAIN means the counter is already nonzero — the waiter will wake
    // regardless, so every failure mode here is ignorable.
    [[maybe_unused]] ssize_t rc = ::write(fd, &one, sizeof(one));
  }
#endif
}

void Doorbells::wait(std::size_t r, int timeout_us) {
#ifdef __linux__
  if (r < fds_.size() && fds_[r] >= 0) {
    struct pollfd p;
    p.fd = fds_[r];
    p.events = POLLIN;
    p.revents = 0;
    const int ms = std::max(1, timeout_us / 1000);
    (void)::poll(&p, 1, ms);
    std::uint64_t drain = 0;
    while (::read(fds_[r], &drain, sizeof(drain)) > 0) {
    }
    return;
  }
#endif
  std::this_thread::sleep_for(std::chrono::microseconds(timeout_us));
}

namespace dist {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

ShmTransport::ShmTransport(ShmRing ring, std::size_t rank,
                           std::vector<nnz_t> locale_nnz,
                           std::uint64_t finish_op, double deadline_s,
                           Doorbells* bells)
    : ring_(ring),
      rank_(rank),
      locale_nnz_(std::move(locale_nnz)),
      finish_op_(finish_op),
      deadline_s_(deadline_s),
      bells_(bells) {
  SPTD_CHECK(rank_ < ring_.nranks(), "ShmTransport: rank out of range");
  SPTD_CHECK(locale_nnz_.size() == ring_.nranks(),
             "ShmTransport: locale_nnz size mismatch");
  SPTD_CHECK(finish_op_ <= ShmRing::kMaxOp,
             "ShmTransport: too many operations for the tag space");
  beat();  // first liveness signal before any compute
}

void ShmTransport::beat() {
  ring_.heartbeat(rank_).fetch_add(1, std::memory_order_relaxed);
}

bool ShmTransport::claim_kill_token() {
  // fetch_add, not exchange: the token doubles as a claim-attempt counter
  // the launcher reads to account the injected fault exactly once.
  return ring_.header().kill_token.fetch_add(1, std::memory_order_acq_rel) ==
         0;
}

template <typename Pred>
ShmTransport::WaitState ShmTransport::wait_for(Pred&& ready,
                                               std::uint64_t epoch,
                                               std::uint64_t op,
                                               const char* phase) {
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(deadline_s_);
  int polls = 0;
  for (;;) {
    if (ready()) return WaitState::kReady;
    beat();
    if (ring_.header().epoch.load(std::memory_order_acquire) != epoch) {
      return WaitState::kEpochChanged;
    }
    if (ring_.header().abort.load(std::memory_order_acquire) != 0) {
      throw TransportError(TransportKind::kShm, rank_, op,
                           std::string(phase) +
                               ": aborted, a peer rank reported a fatal "
                               "error");
    }
    if (Clock::now() > deadline) {
      throw TransportError(
          TransportKind::kShm, rank_, op,
          std::string(phase) + ": deadline of " +
              std::to_string(deadline_s_) +
              "s expired after exponential-backoff retries");
    }
    ++polls;
    if (polls < 256) {
      std::this_thread::yield();
    } else {
      // Exponential backoff 1us..1ms; sleep on the doorbell when we have
      // one so a publisher's kick ends the wait early.
      const int shift = std::min(polls - 256, 10);
      const int us = std::min(1 << shift, 1000);
      if (bells_ != nullptr) {
        bells_->wait(rank_, us);
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(us));
      }
    }
  }
}

void ShmTransport::await_tag(std::atomic<std::uint64_t>& word,
                             std::uint64_t want, std::uint64_t op,
                             const char* phase) {
  const WaitState st = wait_for(
      [&] { return word.load(std::memory_order_acquire) == want; }, epoch_,
      op, phase);
  if (st == WaitState::kEpochChanged) throw RecoveryInterrupt{};
}

void ShmTransport::allreduce(std::uint64_t op, int /*mode*/,
                             const std::vector<const la::Matrix*>& partials,
                             la::Matrix& out) {
  const std::size_t nranks = ring_.nranks();
  SPTD_CHECK(op <= ShmRing::kMaxOp,
             "ShmTransport: operation id exceeds tag space");
  SPTD_CHECK(partials.size() == nranks,
             "ShmTransport: partial count does not match rank count");
  const std::size_t n = out.size();
  SPTD_CHECK(n <= ring_.slot_doubles(),
             "ShmTransport: ring slot too small for mode output");
  const std::uint64_t t = ShmRing::tag(epoch_, op);

  if (rank_ == 0) {
    const auto reduce_t0 = Clock::now();
    out.fill(0);
    val_t* dst = out.data();
    if (partials[0] != nullptr) {
      const val_t* src = partials[0]->data();
      for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
    }
    // Locale-order sum — identical to SimTransport's, which is the
    // cross-transport bitwise contract. Every rank publishes its tag each
    // op (empty locales publish the tag with no payload); awaiting all of
    // them doubles as the guarantee that everyone consumed the previous
    // broadcast before we overwrite the broadcast buffer below.
    for (std::size_t q = 1; q < nranks; ++q) {
      await_tag(ring_.seq(q), t, op, "layer reduce");
      if (locale_nnz_[q] == 0) continue;
      const double* src = ring_.slot(q);
      for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
      measured_.reduce_bytes += n * sizeof(double);
    }
    // A recovery that began mid-sum may have mixed payload epochs into
    // dst; discard it and let the driver rejoin.
    if (ring_.header().epoch.load(std::memory_order_acquire) != epoch_) {
      throw RecoveryInterrupt{};
    }
    measured_.reduce_seconds += seconds_since(reduce_t0);

    const auto bcast_t0 = Clock::now();
    std::memcpy(ring_.bcast(), dst, n * sizeof(double));
    ring_.bcast_seq().store(t, std::memory_order_release);
    if (bells_ != nullptr) bells_->kick_all();
    measured_.broadcast_bytes += (nranks - 1) * n * sizeof(double);
    measured_.broadcast_seconds += seconds_since(bcast_t0);
  } else {
    const auto reduce_t0 = Clock::now();
    if (partials[rank_] != nullptr) {
      std::memcpy(ring_.slot(rank_), partials[rank_]->data(),
                  n * sizeof(double));
      measured_.reduce_bytes += n * sizeof(double);
    }
    ring_.seq(rank_).store(t, std::memory_order_release);
    if (bells_ != nullptr) bells_->kick_all();
    measured_.reduce_seconds += seconds_since(reduce_t0);

    const auto bcast_t0 = Clock::now();
    await_tag(ring_.bcast_seq(), t, op, "layer broadcast");
    std::memcpy(out.data(), ring_.bcast(), n * sizeof(double));
    // Seqlock re-check: if a recovery replaced the broadcast mid-copy the
    // tag no longer matches and the torn copy is discarded.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (ring_.bcast_seq().load(std::memory_order_relaxed) != t) {
      throw RecoveryInterrupt{};
    }
    measured_.broadcast_bytes += n * sizeof(double);
    measured_.broadcast_seconds += seconds_since(bcast_t0);
  }
}

std::optional<RejoinPoint> ShmTransport::rejoin() {
  for (;;) {
    const std::uint64_t e =
        ring_.header().epoch.load(std::memory_order_acquire);
    const bool have =
        ring_.header().have_rollback.load(std::memory_order_acquire) != 0;
    RejoinPoint rp;
    if (have) {
      rp.iteration = static_cast<int>(
          ring_.header().rollback_iter.load(std::memory_order_acquire));
      char buf[ShmRing::kPathMax];
      std::memcpy(buf, ring_.header().rollback_path, ShmRing::kPathMax);
      buf[ShmRing::kPathMax - 1] = '\0';
      rp.checkpoint_path = buf;
    }
    // The launcher writes the rollback point before bumping the epoch; a
    // stable epoch across the copy means we read a consistent pair.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (ring_.header().epoch.load(std::memory_order_relaxed) != e) continue;

    epoch_ = e;
    ring_.rank_epoch(rank_).store(e, std::memory_order_release);
    if (bells_ != nullptr) bells_->kick_all();

    // Quiesce: the epoch is live once every rank (survivors and the
    // respawned victim alike) has adopted it. If another rank dies while
    // the barrier forms, start over in the newer epoch.
    bool superseded = false;
    for (std::size_t q = 0; q < ring_.nranks() && !superseded; ++q) {
      const WaitState st = wait_for(
          [&] {
            return ring_.rank_epoch(q).load(std::memory_order_acquire) >= e;
          },
          e, /*op=*/0, "recovery quiesce");
      superseded = (st == WaitState::kEpochChanged);
    }
    if (superseded) continue;

    if (!have) return std::nullopt;
    return rp;
  }
}

void ShmTransport::finalize() {
  const std::uint64_t t = ShmRing::tag(epoch_, finish_op_);
  ring_.finished(rank_).store(t, std::memory_order_release);
  if (bells_ != nullptr) bells_->kick_all();
  for (std::size_t q = 0; q < ring_.nranks(); ++q) {
    const WaitState st = wait_for(
        [&] { return ring_.finished(q).load(std::memory_order_acquire) == t; },
        epoch_, finish_op_, "completion barrier");
    // A rank died after we finished: rejoin and replay so the respawned
    // rank has peers to reduce with.
    if (st == WaitState::kEpochChanged) throw RecoveryInterrupt{};
  }
}

}  // namespace dist
}  // namespace sptd
