#pragma once
/// \file transport_shm.hpp
/// \brief ShmTransport — the shared-memory-ring transport.
///
/// One instance per participant (a fork'd child under the launcher; a
/// plain thread under the stress harness — the ring protocol is
/// process-agnostic, which is what lets TSan see the whole thing).
///
/// Reduce+broadcast of operation `op`:
///   rank != 0  copy partial into own slot, release-store tag(epoch, op)
///              into seq[rank], kick; acquire-poll bcast_seq for the same
///              tag, copy the broadcast buffer, re-check bcast_seq
///              (seqlock) to reject torn cross-epoch reads.
///   rank == 0  sum own partial plus every non-empty rank's slot in
///              locale order (awaiting each slot's tag), re-check the
///              epoch (a torn sum across a recovery is discarded), copy
///              the sum into the broadcast buffer, release-store
///              bcast_seq, kick.
///
/// Within one epoch a rank cannot start op N+1 before consuming the op N
/// broadcast, so slot reuse cannot race; across epochs stale tags are
/// unmatchable (tags pack the epoch) and the seqlock re-check plus rank
/// 0's pre-publish epoch check reject anything torn.
///
/// Every wait polls with exponential backoff (spin, then doorbell sleeps
/// of 1us..1ms), bumps this rank's heartbeat, and gives up with a
/// TransportError once the per-operation deadline expires; an epoch bump
/// observed mid-wait throws RecoveryInterrupt instead, sending the driver
/// to rejoin().

#include <cstdint>
#include <optional>
#include <vector>

#include "dist/shm_ring.hpp"
#include "dist/transport.hpp"
#include "common/types.hpp"

namespace sptd::dist {

class ShmTransport final : public DistTransport {
 public:
  /// \p finish_op is the operation id of the completion barrier — one past
  /// every loop operation (max_iterations * order). \p bells may be null
  /// (pure polling). \p locale_nnz tells which ranks are empty locales
  /// (they publish no partials and are skipped in the sum).
  ShmTransport(ShmRing ring, std::size_t rank,
               std::vector<nnz_t> locale_nnz, std::uint64_t finish_op,
               double deadline_s, Doorbells* bells);

  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kShm;
  }
  [[nodiscard]] std::size_t nranks() const override {
    return ring_.nranks();
  }

  void allreduce(std::uint64_t op, int mode,
                 const std::vector<const la::Matrix*>& partials,
                 la::Matrix& out) override;
  std::optional<RejoinPoint> rejoin() override;
  bool claim_kill_token() override;
  void beat() override;
  void finalize() override;

  /// The epoch this rank last adopted via rejoin().
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  enum class WaitState { kReady, kEpochChanged };

  /// Polls \p ready with heartbeat + backoff until it returns true
  /// (kReady), the epoch leaves \p epoch (kEpochChanged), a peer sets the
  /// abort flag, or the deadline expires (both TransportError).
  template <typename Pred>
  WaitState wait_for(Pred&& ready, std::uint64_t epoch, std::uint64_t op,
                     const char* phase);

  /// wait_for an exact tag in \p word under the adopted epoch; translates
  /// kEpochChanged into RecoveryInterrupt.
  void await_tag(std::atomic<std::uint64_t>& word, std::uint64_t want,
                 std::uint64_t op, const char* phase);

  ShmRing ring_;
  std::size_t rank_;
  std::vector<nnz_t> locale_nnz_;
  std::uint64_t finish_op_;
  double deadline_s_;
  Doorbells* bells_;
  std::uint64_t epoch_ = 0;
};

}  // namespace sptd::dist
