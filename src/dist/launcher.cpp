/// \file launcher.cpp
/// \brief Fork-per-locale launcher for the shm transport.
///
/// The parent never computes: it forks one child per locale over the
/// shared-memory ring, then monitors. Death detection is two-pronged:
/// waitpid(WNOHANG) catches a child that died (the injected SIGKILL, a
/// crash), and a stalled heartbeat counter catches a child that hung —
/// which the monitor escalates to SIGKILL, funneling both cases into one
/// recovery path: pick a rollback point (newest valid per-rank
/// checkpoint, any rank — the replicated loop makes them interchangeable),
/// publish it in the ring header, bump the recovery epoch (survivors'
/// waits throw RecoveryInterrupt and rejoin), and respawn the dead locale.
/// Replay is deterministic, so the recovered run's final model is
/// bitwise-identical to an uninjected run's.
///
/// Rank 0 ships its finished result to the parent as a checkpoint-format
/// file in a private temp dir (written before the completion barrier, so
/// the parent only reads it after every rank finished the same epoch).

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "common/error.hpp"
#include "common/fileio.hpp"
#include "common/log.hpp"
#include "dist/internal.hpp"
#include "dist/recovery.hpp"
#include "dist/shm_ring.hpp"
#include "dist/transport_shm.hpp"
#include "resilience/checkpoint.hpp"

namespace sptd::dist {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr int kMaxRestarts = 8;
constexpr auto kPollInterval = std::chrono::milliseconds(2);

struct ChildSlot {
  pid_t pid = -1;
  bool running = false;
  std::uint64_t last_beat = 0;
  Clock::time_point last_change{};
};

struct MmapGuard {
  void* mem = nullptr;
  std::size_t len = 0;
  ~MmapGuard() {
    if (mem != nullptr) ::munmap(mem, len);
  }
};

struct TempDirGuard {
  std::string path;
  ~TempDirGuard() {
    if (!path.empty()) {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  }
};

bool run_complete(ShmRing& ring, std::uint64_t finish_op) {
  const std::uint64_t e = ring.header().epoch.load(std::memory_order_acquire);
  const std::uint64_t t = ShmRing::tag(e, finish_op);
  for (std::size_t r = 0; r < ring.nranks(); ++r) {
    if (ring.finished(r).load(std::memory_order_acquire) != t) return false;
  }
  return true;
}

/// Writes the rollback point into the ring header. Must precede the epoch
/// bump (release) that makes it visible; readers re-check the epoch after
/// copying, so a concurrent read of a half-written path is discarded.
void publish_rollback(ShmRing& ring, const RollbackPlan& rb) {
  SPTD_CHECK(rb.checkpoint_path.size() < ShmRing::kPathMax,
             "dist shm: rollback checkpoint path too long for ring header");
  ShmRing::Header& h = ring.header();
  h.rollback_iter.store(rb.iteration, std::memory_order_relaxed);
  std::memset(h.rollback_path, 0, ShmRing::kPathMax);
  std::memcpy(h.rollback_path, rb.checkpoint_path.c_str(),
              rb.checkpoint_path.size());
  h.have_rollback.store(1, std::memory_order_release);
}

[[noreturn]] void child_main(ShmRing ring, Doorbells* bells,
                             std::size_t rank_id, const DistOptions& options,
                             DistPartition& part, const dims_t& dims,
                             val_t tensor_norm_sq, std::uint64_t finish_op,
                             const std::string& result_path) {
  int code = 0;
  try {
    ShmTransport tr(ring, rank_id, part.locale_nnz, finish_op,
                    options.comm_deadline_s, bells);
    LoopConfig cfg;
    cfg.options = &options;
    cfg.dims = &dims;
    cfg.tensor_norm_sq = tensor_norm_sq;
    cfg.part = &part;
    cfg.owned = {rank_id};
    cfg.checkpoint_kind = dist_rank_kind(rank_id);
    if (rank_id == 0) {
      cfg.on_complete = [&](const DistResult& res) {
        Checkpoint out;
        out.kind = "dist-result";
        out.iteration = res.iterations;
        out.factors = res.model.factors;
        out.set_series("lambda",
                       std::vector<double>(res.model.lambda.begin(),
                                           res.model.lambda.end()));
        out.set_series("fit_history", res.fit_history);
        const CommMeasured& cm = tr.measured();
        out.set_scalar("reduce_bytes_measured",
                       static_cast<double>(cm.reduce_bytes));
        out.set_scalar("broadcast_bytes_measured",
                       static_cast<double>(cm.broadcast_bytes));
        out.set_scalar("reduce_seconds_measured", cm.reduce_seconds);
        out.set_scalar("broadcast_seconds_measured", cm.broadcast_seconds);
        const ResilienceCounters& rc = res.resilience;
        out.set_scalar("retries", rc.retries);
        out.set_scalar("rollbacks", rc.rollbacks);
        out.set_scalar("checkpoints", rc.checkpoints);
        out.set_scalar("checkpoint_failures", rc.checkpoint_failures);
        out.set_scalar("checkpoint_bytes",
                       static_cast<double>(rc.checkpoint_bytes));
        out.set_scalar("checkpoint_seconds", rc.checkpoint_seconds);
        out.set_scalar("faults_injected",
                       static_cast<double>(rc.faults_injected));
        out.set_scalar("gram_bumps", static_cast<double>(rc.gram_bumps));
        out.set_scalar("resumed_from", rc.resumed_from);
        atomic_write_file(result_path, out.serialize(),
                          RenameDurability::kRelaxed);
      };
    }
    run_dist_loop(cfg, tr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[dist shm] rank %zu (pid %d): fatal: %s\n",
                 rank_id, static_cast<int>(::getpid()), e.what());
    ring.header().abort.store(1, std::memory_order_release);
    if (bells != nullptr) bells->kick_all();
    code = 1;
  }
  std::fflush(nullptr);
  ::_exit(code);  // skip atexit/static destructors in the forked child
}

DistResult parse_result(const std::string& path, const DistOptions& options,
                        const DistPartition& part, const dims_t& dims) {
  std::optional<Checkpoint> ck = load_checkpoint_file(path);
  SPTD_CHECK(ck.has_value(), "dist shm: rank 0 produced no result file");
  SPTD_CHECK(ck->kind == "dist-result",
             "dist shm: unexpected result file kind '" + ck->kind + "'");
  DistResult res;
  res.model.factors = std::move(ck->factors);
  const std::vector<double>* lam = ck->find_series("lambda");
  SPTD_CHECK(lam != nullptr, "dist shm: result file missing lambda");
  res.model.lambda.assign(lam->begin(), lam->end());
  if (const std::vector<double>* fh = ck->find_series("fit_history")) {
    res.fit_history = *fh;
  }
  res.iterations = ck->iteration;
  res.locale_nnz = part.locale_nnz;

  const std::size_t order = dims.size();
  const CommVolume per_iteration =
      predict_comm_volume(dims, options.grid, options.rank);
  res.comm.reduce_bytes.assign(order, 0);
  res.comm.broadcast_bytes.assign(order, 0);
  for (std::size_t m = 0; m < order; ++m) {
    res.comm.reduce_bytes[m] =
        per_iteration.reduce_bytes[m] *
        static_cast<std::uint64_t>(res.iterations);
    res.comm.broadcast_bytes[m] =
        per_iteration.broadcast_bytes[m] *
        static_cast<std::uint64_t>(res.iterations);
  }
  res.comm_measured.reduce_bytes =
      static_cast<std::uint64_t>(ck->scalar("reduce_bytes_measured", 0));
  res.comm_measured.broadcast_bytes =
      static_cast<std::uint64_t>(ck->scalar("broadcast_bytes_measured", 0));
  res.comm_measured.reduce_seconds = ck->scalar("reduce_seconds_measured", 0);
  res.comm_measured.broadcast_seconds =
      ck->scalar("broadcast_seconds_measured", 0);

  ResilienceCounters& rc = res.resilience;
  rc.retries = static_cast<int>(ck->scalar("retries", 0));
  rc.rollbacks = static_cast<int>(ck->scalar("rollbacks", 0));
  rc.checkpoints = static_cast<int>(ck->scalar("checkpoints", 0));
  rc.checkpoint_failures =
      static_cast<int>(ck->scalar("checkpoint_failures", 0));
  rc.checkpoint_bytes =
      static_cast<std::uint64_t>(ck->scalar("checkpoint_bytes", 0));
  rc.checkpoint_seconds = ck->scalar("checkpoint_seconds", 0);
  rc.faults_injected =
      static_cast<std::uint64_t>(ck->scalar("faults_injected", 0));
  rc.gram_bumps = static_cast<std::uint64_t>(ck->scalar("gram_bumps", 0));
  rc.resumed_from = static_cast<int>(ck->scalar("resumed_from", -1));
  return res;
}

}  // namespace

DistResult run_shm_dist(const SparseTensor& x, const DistOptions& options,
                        DistPartition& part) {
  const std::size_t nranks = part.nlocales;
  const dims_t& dims = x.dims();
  const int order = static_cast<int>(dims.size());
  const val_t tensor_norm_sq = x.norm_sq();
  const std::uint64_t finish_op = static_cast<std::uint64_t>(
                                      options.max_iterations) *
                                  static_cast<std::uint64_t>(order);
  SPTD_CHECK(finish_op < ShmRing::kMaxOp,
             "dist shm: iteration count exceeds the tag space");

  DistOptions childopts = options;
  // Resume is the launcher's job: the rollback preset below feeds every
  // child the same restore point through rejoin(), instead of each child
  // racing its own load_latest.
  childopts.resilience.resume = false;

  // Ring slots hold one mode's physical MTTKRP output (rows * padded
  // stride); size them for the largest mode.
  idx_t max_dim = 0;
  for (const idx_t d : dims) max_dim = std::max(max_dim, d);
  const la::Matrix probe(1, options.rank);
  const std::size_t slot_doubles =
      static_cast<std::size_t>(max_dim) * probe.ld();

  const std::size_t ring_bytes = ShmRing::bytes_needed(nranks, slot_doubles);
  void* mem = ::mmap(nullptr, ring_bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  SPTD_CHECK(mem != MAP_FAILED, "dist shm: mmap of ring failed");
  MmapGuard mguard{mem, ring_bytes};
  ShmRing ring(mem, nranks, slot_doubles, /*init=*/true);
  Doorbells bells(nranks);

  if (options.resilience.resume) {
    SPTD_CHECK(!options.resilience.checkpoint_dir.empty(),
               "--resume requires --checkpoint-dir");
    const RollbackPlan rb =
        select_rollback(options.resilience.checkpoint_dir, nranks);
    if (!rb.checkpoint_path.empty()) {
      publish_rollback(ring, rb);
      log_info("resilience: resuming dist from iteration " +
               std::to_string(rb.iteration));
    } else {
      log_info("resilience: no valid dist checkpoint in " +
               options.resilience.checkpoint_dir + ", starting fresh");
    }
  }

  std::string tmpl =
      (fs::temp_directory_path() / "sptd-dist-XXXXXX").string();
  std::vector<char> tbuf(tmpl.begin(), tmpl.end());
  tbuf.push_back('\0');
  SPTD_CHECK(::mkdtemp(tbuf.data()) != nullptr,
             "dist shm: mkdtemp for result handoff failed");
  TempDirGuard tdir{std::string(tbuf.data())};
  const std::string result_path = tdir.path + "/result.ckpt";

  std::vector<ChildSlot> kids(nranks);
  auto spawn = [&](std::size_t r) {
    std::fflush(nullptr);  // no duplicated stdio buffers in the child
    const pid_t pid = ::fork();
    SPTD_CHECK(pid >= 0, "dist shm: fork failed");
    if (pid == 0) {
#ifdef __linux__
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);  // die with the launcher
#endif
      child_main(ring, &bells, r, childopts, part, dims, tensor_norm_sq,
                 finish_op, result_path);
    }
    kids[r].pid = pid;
    kids[r].running = true;
    kids[r].last_beat = ring.heartbeat(r).load(std::memory_order_relaxed);
    kids[r].last_change = Clock::now();
  };

  auto kill_all = [&] {
    for (ChildSlot& k : kids) {
      if (k.running && k.pid > 0) ::kill(k.pid, SIGKILL);
    }
    for (ChildSlot& k : kids) {
      if (!k.running || k.pid <= 0) continue;
      int st = 0;
      ::waitpid(k.pid, &st, 0);
      k.running = false;
    }
  };

  for (std::size_t r = 0; r < nranks; ++r) spawn(r);

  int restarts = 0;
  try {
    for (;;) {
      if (ring.header().abort.load(std::memory_order_acquire) != 0) {
        kill_all();
        throw Error(
            "dist shm: a rank reported a fatal error (see its log line "
            "above)");
      }
      if (run_complete(ring, finish_op)) break;

      bool any_running = false;
      for (std::size_t r = 0; r < nranks; ++r) {
        ChildSlot& k = kids[r];
        if (!k.running) continue;
        int st = 0;
        const pid_t w = ::waitpid(k.pid, &st, WNOHANG);
        if (w == k.pid) {
          k.running = false;
          if (WIFEXITED(st)) {
            if (WEXITSTATUS(st) == 0) continue;  // done, post-barrier
            kill_all();
            throw Error("dist shm: rank " + std::to_string(r) +
                        " exited with status " +
                        std::to_string(WEXITSTATUS(st)));
          }
          // Signaled: the injected SIGKILL, a crash, or our hang-kill
          // below. Recover: rollback point -> header -> epoch bump ->
          // respawn; survivors' waits observe the bump and rejoin.
          ++restarts;
          if (restarts > kMaxRestarts) {
            kill_all();
            throw Error("dist shm: rank restart budget exhausted (" +
                        std::to_string(kMaxRestarts) + ")");
          }
          RollbackPlan rb;
          if (!options.resilience.checkpoint_dir.empty()) {
            rb = select_rollback(options.resilience.checkpoint_dir, nranks);
          }
          ring.header().restarts.fetch_add(1, std::memory_order_relaxed);
          publish_rollback(ring, rb);
          ring.header().epoch.fetch_add(1, std::memory_order_release);
          bells.kick_all();
          log_warn("[resilience] dist shm: rank " + std::to_string(r) +
                   " died (signal " + std::to_string(WTERMSIG(st)) +
                   "); restarted locale " + std::to_string(r) +
                   ", rolling everyone back to iteration " +
                   std::to_string(rb.iteration));
          spawn(r);
          any_running = true;
        } else {
          any_running = true;
          const std::uint64_t hb =
              ring.heartbeat(r).load(std::memory_order_relaxed);
          if (hb != k.last_beat) {
            k.last_beat = hb;
            k.last_change = Clock::now();
          } else if (std::chrono::duration<double>(Clock::now() -
                                                   k.last_change)
                         .count() > options.heartbeat_timeout_s) {
            log_warn("dist shm: rank " + std::to_string(r) +
                     " heartbeat stalled for " +
                     std::to_string(options.heartbeat_timeout_s) +
                     "s; killing it into recovery");
            ::kill(k.pid, SIGKILL);
            k.last_change = Clock::now();  // one kill per stall window
          }
        }
      }
      if (!any_running) {
        if (run_complete(ring, finish_op)) break;
        kill_all();
        throw Error("dist shm: all ranks exited but the run never "
                    "completed");
      }
      std::this_thread::sleep_for(kPollInterval);
    }
  } catch (...) {
    kill_all();
    throw;
  }

  // Post-barrier teardown is just _exit; give stragglers a grace window.
  const auto reap_deadline = Clock::now() + std::chrono::seconds(10);
  for (ChildSlot& k : kids) {
    while (k.running) {
      int st = 0;
      const pid_t w = ::waitpid(k.pid, &st, WNOHANG);
      if (w == k.pid) {
        k.running = false;
        break;
      }
      if (Clock::now() > reap_deadline) {
        ::kill(k.pid, SIGKILL);
        ::waitpid(k.pid, &st, 0);
        k.running = false;
        break;
      }
      std::this_thread::sleep_for(kPollInterval);
    }
  }

  DistResult res = parse_result(result_path, options, part, dims);
  res.resilience.locale_restarts += static_cast<int>(
      ring.header().restarts.load(std::memory_order_relaxed));
  if (ring.header().kill_token.load(std::memory_order_relaxed) != 0) {
    // The rank-kill fired (the victim claimed the token before raising
    // SIGKILL); count it here — the predicate on the rank side is
    // deliberately non-mutating so a respawned victim can't double-count.
    res.resilience.faults_injected += 1;
  }
  return res;
}

}  // namespace sptd::dist
