#include "dist/dist_cpals.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "cpd/cpals.hpp"
#include "csf/csf.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/norms.hpp"
#include "mttkrp/plan.hpp"
#include "parallel/partition.hpp"
#include "parallel/team.hpp"
#include "resilience/context.hpp"

namespace sptd {

CommVolume predict_comm_volume(const dims_t& dims, const dims_t& grid,
                               idx_t rank) {
  const std::size_t order = dims.size();
  SPTD_CHECK(grid.size() == order,
             "predict_comm_volume: grid order mismatch");
  std::uint64_t locales = 1;
  for (const idx_t g : grid) {
    SPTD_CHECK(g >= 1, "predict_comm_volume: grid extents must be >= 1");
    locales *= g;
  }
  CommVolume cv;
  cv.reduce_bytes.assign(order, 0);
  cv.broadcast_bytes.assign(order, 0);
  for (std::size_t m = 0; m < order; ++m) {
    const std::uint64_t layer = locales / grid[m];
    if (layer <= 1) {
      continue;  // the layer is one locale: its rows never leave it
    }
    const std::uint64_t bytes = (layer - 1) *
                                static_cast<std::uint64_t>(dims[m]) *
                                static_cast<std::uint64_t>(rank) *
                                sizeof(val_t);
    cv.reduce_bytes[m] = bytes;
    cv.broadcast_bytes[m] = bytes;
  }
  return cv;
}

namespace {

/// Block boundaries of one mode's index space over grid[mode] locales:
/// grid[m]+1 monotone row indices, either equal ranges or balanced by
/// slice nonzero count.
std::vector<idx_t> block_boundaries(const SparseTensor& x, int mode,
                                    idx_t parts, bool weighted) {
  const idx_t dim = x.dim(mode);
  std::vector<idx_t> bounds(static_cast<std::size_t>(parts) + 1);
  if (!weighted) {
    for (idx_t p = 0; p < parts; ++p) {
      bounds[p] = static_cast<idx_t>(
          block_partition(dim, static_cast<int>(parts),
                          static_cast<int>(p)).begin);
    }
    bounds[parts] = dim;
    return bounds;
  }
  const std::vector<nnz_t> wb = weighted_partition(
      slice_nnz_prefix(x.ind(mode), dim), static_cast<int>(parts));
  for (std::size_t p = 0; p < wb.size(); ++p) {
    bounds[p] = static_cast<idx_t>(wb[p]);
  }
  return bounds;
}

}  // namespace

DistResult dist_cp_als(const SparseTensor& x, const DistOptions& options) {
  const int order = x.order();
  SPTD_CHECK(x.nnz() > 0, "dist_cp_als: empty tensor");
  SPTD_CHECK(static_cast<int>(options.grid.size()) == order,
             "dist_cp_als: grid must have one extent per mode");
  for (int m = 0; m < order; ++m) {
    const idx_t g = options.grid[static_cast<std::size_t>(m)];
    SPTD_CHECK(g >= 1 && g <= x.dim(m),
               "dist_cp_als: grid extent out of [1, dims[m]]");
  }
  SPTD_CHECK(options.rank >= 1, "dist_cp_als: rank must be >= 1");
  SPTD_CHECK(options.max_iterations >= 1,
             "dist_cp_als: need >= 1 iteration");
  set_parallel_backend(options.backend);
  init_parallel_runtime();

  const idx_t rank = options.rank;
  const dims_t& dims = x.dims();
  std::size_t nlocales = 1;
  for (const idx_t g : options.grid) {
    nlocales *= g;
  }

  // Locale of a nonzero: mixed-radix over per-mode block ids (mode 0
  // slowest). The per-mode row -> block maps make assignment O(order).
  std::vector<std::vector<idx_t>> block_of(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) {
    const idx_t parts = options.grid[static_cast<std::size_t>(m)];
    const std::vector<idx_t> bounds =
        block_boundaries(x, m, parts, options.weighted_blocks);
    auto& map = block_of[static_cast<std::size_t>(m)];
    map.assign(x.dim(m), 0);
    for (idx_t p = 0; p < parts; ++p) {
      for (idx_t i = bounds[p]; i < bounds[static_cast<std::size_t>(p) + 1];
           ++i) {
        map[i] = p;
      }
    }
  }

  std::vector<SparseTensor> blocks;
  blocks.reserve(nlocales);
  for (std::size_t l = 0; l < nlocales; ++l) {
    blocks.emplace_back(x.dims());
  }
  std::array<idx_t, kMaxOrder> coord{};
  for (nnz_t n = 0; n < x.nnz(); ++n) {
    std::size_t locale = 0;
    for (int m = 0; m < order; ++m) {
      const idx_t i = x.ind(m)[n];
      coord[static_cast<std::size_t>(m)] = i;
      locale = locale * options.grid[static_cast<std::size_t>(m)] +
               block_of[static_cast<std::size_t>(m)][i];
    }
    blocks[locale].push_back(
        {coord.data(), static_cast<std::size_t>(order)}, x.vals()[n]);
  }

  DistResult result;
  result.locale_nnz.reserve(nlocales);
  for (const SparseTensor& b : blocks) {
    result.locale_nnz.push_back(b.nnz());
  }

  // Each locale is serial (the simulation models locale-level parallelism,
  // not intra-locale threading), with its own CSF set and execution plan.
  MttkrpOptions mopts;
  mopts.nthreads = 1;
  mopts.schedule = options.schedule;
  mopts.chunk_target = options.chunk_target;
  mopts.use_fixed_kernels = options.use_fixed_kernels;
  mopts.csf_layout = options.csf_layout;
  mopts.precision = options.precision;
  mopts.backend = options.backend;
  std::vector<std::unique_ptr<CsfSet>> sets(nlocales);
  std::vector<std::unique_ptr<MttkrpPlan>> plans(nlocales);
  for (std::size_t l = 0; l < nlocales; ++l) {
    if (blocks[l].nnz() == 0) {
      continue;  // empty locale: contributes nothing, moves nothing real
    }
    sets[l] = std::make_unique<CsfSet>(blocks[l], CsfPolicy::kTwoMode, 1,
                                       nullptr, SortVariant::kAllOpts,
                                       options.csf_layout);
    plans[l] = std::make_unique<MttkrpPlan>(*sets[l], rank, mopts);
  }

  // Factor initialization and ALS updates mirror cp_als_csf with one
  // thread exactly; only the MTTKRP is assembled from locale partials.
  const val_t tensor_norm_sq = x.norm_sq();
  Rng rng(options.seed);
  KruskalModel& model = result.model;
  model.lambda.assign(rank, val_t{1});
  model.factors.reserve(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) {
    model.factors.push_back(
        la::Matrix::random(dims[static_cast<std::size_t>(m)], rank, rng));
  }
  result.comm.reduce_bytes.assign(static_cast<std::size_t>(order), 0);
  result.comm.broadcast_bytes.assign(static_cast<std::size_t>(order), 0);
  const CommVolume per_iteration =
      predict_comm_volume(dims, options.grid, rank);

  ResilienceContext rctx(options.resilience, "dist", options.seed);
  int it = 0;
  if (std::optional<Checkpoint> ck = rctx.try_resume()) {
    SPTD_CHECK(ck->factors.size() == static_cast<std::size_t>(order),
               "dist resume: checkpoint order mismatch");
    for (int m = 0; m < order; ++m) {
      const la::Matrix& f = ck->factors[static_cast<std::size_t>(m)];
      SPTD_CHECK(f.rows() == dims[static_cast<std::size_t>(m)] &&
                     f.cols() == rank,
                 "dist resume: checkpoint factor shape mismatch");
    }
    const std::vector<double>* lam = ck->find_series("lambda");
    SPTD_CHECK(lam != nullptr &&
                   lam->size() == static_cast<std::size_t>(rank),
               "dist resume: checkpoint lambda missing or wrong rank");
    model.factors = std::move(ck->factors);
    for (idx_t r = 0; r < rank; ++r) {
      model.lambda[static_cast<std::size_t>(r)] =
          static_cast<val_t>((*lam)[static_cast<std::size_t>(r)]);
    }
    if (const std::vector<double>* fh = ck->find_series("fit_history")) {
      result.fit_history = *fh;
      double best_loss = std::numeric_limits<double>::infinity();
      for (const double f : *fh) best_loss = std::min(best_loss, 1.0 - f);
      rctx.health().seed_trend(best_loss);
    }
    it = ck->iteration;
    result.iterations = it;
    // The comm counters are an invariant of the iteration count (every
    // iteration moves the same predicted volume), so the resumed totals
    // are reconstructed rather than serialized.
    for (std::size_t m = 0; m < static_cast<std::size_t>(order); ++m) {
      result.comm.reduce_bytes[m] =
          per_iteration.reduce_bytes[m] * static_cast<std::uint64_t>(it);
      result.comm.broadcast_bytes[m] =
          per_iteration.broadcast_bytes[m] * static_cast<std::uint64_t>(it);
    }
  }

  // Grams are recomputed (deterministic serial la::ata), not serialized:
  // a resumed run rebuilds bitwise-identical grams from the factors.
  std::vector<la::Matrix> grams;
  grams.reserve(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) {
    grams.emplace_back(rank, rank);
    la::ata(model.factors[static_cast<std::size_t>(m)],
            grams[static_cast<std::size_t>(m)], 1);
  }

  const bool guard = rctx.health().enabled();
  struct GoodState {
    std::vector<la::Matrix> factors;
    std::vector<val_t> lambda;
    std::vector<double> fit_history;
    CommVolume comm;
    int iteration = 0;
  } good;
  if (guard) {
    good = {model.factors, model.lambda, result.fit_history, result.comm,
            it};
  }

  la::Matrix v(rank, rank);
  la::Matrix fit_m;  // last mode's assembled MTTKRP, kept for the fit
  PrivateBuffers fit_partials(1, static_cast<nnz_t>(rank));
  while (it < options.max_iterations) {
    if (FaultInjector* inj = rctx.injector()) {
      // A killed locale loses its in-memory CSF set and execution plan —
      // the analogue of a node dropping out of the grid.
      for (std::size_t l = 0; l < nlocales; ++l) {
        if (inj->kill_locale(l, nlocales, it, options.max_iterations)) {
          sets[l].reset();
          plans[l].reset();
        }
      }
    }
    // Failure detection + restart: a locale that owns nonzeros but has no
    // plan is down. Its block is still resident (the simulated analogue of
    // re-reading the locale's partition from durable storage), so the CSF
    // set and plan rebuild deterministically and the recovered run matches
    // the clean run bitwise.
    for (std::size_t l = 0; l < nlocales; ++l) {
      if (!plans[l] && blocks[l].nnz() > 0) {
        sets[l] = std::make_unique<CsfSet>(blocks[l], CsfPolicy::kTwoMode,
                                           1, nullptr, SortVariant::kAllOpts,
                                           options.csf_layout);
        plans[l] = std::make_unique<MttkrpPlan>(*sets[l], rank, mopts);
        ++rctx.counters().locale_restarts;
        log_warn("[resilience] dist: restarted locale " +
                 std::to_string(l) + " at iteration " + std::to_string(it));
      }
    }

    for (int m = 0; m < order; ++m) {
      const idx_t m_dim = dims[static_cast<std::size_t>(m)];
      la::Matrix out_view(m_dim, rank);

      // Layer-wise all-reduce of partial MTTKRPs, simulated as a sum in
      // locale order (one locale executes straight into the output).
      if (nlocales == 1) {
        plans[0]->execute(model.factors, m, out_view);
      } else {
        out_view.fill(val_t{0});
        la::Matrix partial(m_dim, rank);
        for (std::size_t l = 0; l < nlocales; ++l) {
          if (!plans[l]) continue;
          plans[l]->execute(model.factors, m, partial);
          // Same shape implies the same padded stride; padding lanes are
          // zero, so summing the physical buffers is the logical sum.
          val_t* dst = out_view.data();
          const val_t* src = partial.data();
          const std::size_t n = out_view.size();
          for (std::size_t i = 0; i < n; ++i) {
            dst[i] += src[i];
          }
        }
      }
      result.comm.reduce_bytes[static_cast<std::size_t>(m)] +=
          per_iteration.reduce_bytes[static_cast<std::size_t>(m)];
      result.comm.broadcast_bytes[static_cast<std::size_t>(m)] +=
          per_iteration.broadcast_bytes[static_cast<std::size_t>(m)];

      if (m == order - 1) {
        fit_m = out_view;
      }
      la::gram_hadamard(grams, m, v);
      la::solve_normal_equations(v, out_view, 1);
      la::Matrix& factor = model.factors[static_cast<std::size_t>(m)];
      factor = std::move(out_view);
      la::normalize_columns(factor, model.lambda,
                            it == 0 ? la::MatNorm::kTwo : la::MatNorm::kMax,
                            1);
      la::ata(factor, grams[static_cast<std::size_t>(m)], 1);
    }

    if (FaultInjector* inj = rctx.injector()) {
      inj->corrupt_factors(model.factors, it);
    }

    const val_t inner = detail::fit_inner_product(
        fit_m, model.factors[static_cast<std::size_t>(order - 1)],
        model.lambda, 1, fit_partials);
    const val_t norm_z = detail::model_norm_sq(grams, model.lambda);
    val_t residual_sq = tensor_norm_sq + norm_z - 2 * inner;
    if (residual_sq < val_t{0}) residual_sq = 0;
    const double fit =
        (tensor_norm_sq > val_t{0})
            ? 1.0 - std::sqrt(static_cast<double>(residual_sq)) /
                        std::sqrt(static_cast<double>(tensor_norm_sq))
            : 0.0;

    if (guard) {
      const HealthIssue issue =
          rctx.health().inspect(model.factors, model.lambda, 1.0 - fit);
      if (issue != HealthIssue::kNone) {
        rctx.fail_or_retry(issue, it);  // throws when retries are exhausted
        model.factors = good.factors;
        model.lambda = good.lambda;
        result.fit_history = good.fit_history;
        result.comm = good.comm;
        it = good.iteration;
        perturb_factors(model.factors, rctx.recovery_rng());
        for (int m = 0; m < order; ++m) {
          la::ata(model.factors[static_cast<std::size_t>(m)],
                  grams[static_cast<std::size_t>(m)], 1);
        }
        continue;
      }
      rctx.note_healthy();
    }

    result.fit_history.push_back(fit);
    ++it;
    result.iterations = it;
    if (guard) {
      good.factors = model.factors;
      good.lambda = model.lambda;
      good.fit_history = result.fit_history;
      good.comm = result.comm;
      good.iteration = it;
    }

    if (it < options.max_iterations && rctx.checkpoint_due(it)) {
      Checkpoint ck;
      ck.iteration = it;
      ck.factors = model.factors;
      ck.set_series("lambda", std::vector<double>(model.lambda.begin(),
                                                  model.lambda.end()));
      ck.set_series("fit_history", result.fit_history);
      rctx.save_checkpoint(std::move(ck));
    }
  }
  rctx.finish(result.resilience);
  return result;
}

}  // namespace sptd
