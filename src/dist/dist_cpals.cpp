/// \file dist_cpals.cpp
/// \brief Distributed CP-ALS driver: tensor partitioning, the replicated
///        ALS loop over a DistTransport, and the transport dispatch.
///
/// The fork launcher lives in launcher.cpp, the shared-memory transport in
/// transport_shm.cpp, rollback selection in recovery.cpp, and the MPI
/// transport (configure-gated) in transport_mpi.cpp; internal.hpp is the
/// seam between them.

#include "dist/dist_cpals.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <csignal>
#include <limits>
#include <memory>
#include <optional>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "cpd/cpals.hpp"
#include "csf/csf.hpp"
#include "dist/internal.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/norms.hpp"
#include "mttkrp/plan.hpp"
#include "parallel/partition.hpp"
#include "parallel/team.hpp"
#include "resilience/context.hpp"

namespace sptd {

CommVolume predict_comm_volume(const dims_t& dims, const dims_t& grid,
                               idx_t rank) {
  const std::size_t order = dims.size();
  SPTD_CHECK(grid.size() == order,
             "predict_comm_volume: grid order mismatch");
  std::uint64_t locales = 1;
  for (const idx_t g : grid) {
    SPTD_CHECK(g >= 1, "predict_comm_volume: grid extents must be >= 1");
    locales *= g;
  }
  CommVolume cv;
  cv.reduce_bytes.assign(order, 0);
  cv.broadcast_bytes.assign(order, 0);
  for (std::size_t m = 0; m < order; ++m) {
    const std::uint64_t layer = locales / grid[m];
    if (layer <= 1) {
      continue;  // the layer is one locale: its rows never leave it
    }
    const std::uint64_t bytes = (layer - 1) *
                                static_cast<std::uint64_t>(dims[m]) *
                                static_cast<std::uint64_t>(rank) *
                                sizeof(val_t);
    cv.reduce_bytes[m] = bytes;
    cv.broadcast_bytes[m] = bytes;
  }
  return cv;
}

namespace {

/// Block boundaries of one mode's index space over grid[mode] locales:
/// grid[m]+1 monotone row indices, either equal ranges or balanced by
/// slice nonzero count.
std::vector<idx_t> block_boundaries(const SparseTensor& x, int mode,
                                    idx_t parts, bool weighted) {
  const idx_t dim = x.dim(mode);
  std::vector<idx_t> bounds(static_cast<std::size_t>(parts) + 1);
  if (!weighted) {
    for (idx_t p = 0; p < parts; ++p) {
      bounds[p] = static_cast<idx_t>(
          block_partition(dim, static_cast<int>(parts),
                          static_cast<int>(p)).begin);
    }
    bounds[parts] = dim;
    return bounds;
  }
  const std::vector<nnz_t> wb = weighted_partition(
      slice_nnz_prefix(x.ind(mode), dim), static_cast<int>(parts));
  for (std::size_t p = 0; p < wb.size(); ++p) {
    bounds[p] = static_cast<idx_t>(wb[p]);
  }
  return bounds;
}

}  // namespace

namespace dist {

std::string dist_rank_kind(std::size_t rank) {
  return "dist-rank" + std::to_string(rank);
}

DistPartition partition_tensor(const SparseTensor& x,
                               const DistOptions& options) {
  const int order = x.order();
  DistPartition part;
  part.nlocales = 1;
  for (const idx_t g : options.grid) {
    part.nlocales *= g;
  }

  // Locale of a nonzero: mixed-radix over per-mode block ids (mode 0
  // slowest). The per-mode row -> block maps make assignment O(order).
  std::vector<std::vector<idx_t>> block_of(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) {
    const idx_t parts = options.grid[static_cast<std::size_t>(m)];
    const std::vector<idx_t> bounds =
        block_boundaries(x, m, parts, options.weighted_blocks);
    auto& map = block_of[static_cast<std::size_t>(m)];
    map.assign(x.dim(m), 0);
    for (idx_t p = 0; p < parts; ++p) {
      for (idx_t i = bounds[p]; i < bounds[static_cast<std::size_t>(p) + 1];
           ++i) {
        map[i] = p;
      }
    }
  }

  part.blocks.reserve(part.nlocales);
  for (std::size_t l = 0; l < part.nlocales; ++l) {
    part.blocks.emplace_back(x.dims());
  }
  std::array<idx_t, kMaxOrder> coord{};
  for (nnz_t n = 0; n < x.nnz(); ++n) {
    std::size_t locale = 0;
    for (int m = 0; m < order; ++m) {
      const idx_t i = x.ind(m)[n];
      coord[static_cast<std::size_t>(m)] = i;
      locale = locale * options.grid[static_cast<std::size_t>(m)] +
               block_of[static_cast<std::size_t>(m)][i];
    }
    part.blocks[locale].push_back(
        {coord.data(), static_cast<std::size_t>(order)}, x.vals()[n]);
  }

  part.locale_nnz.reserve(part.nlocales);
  for (const SparseTensor& b : part.blocks) {
    part.locale_nnz.push_back(b.nnz());
  }
  return part;
}

DistResult run_dist_loop(const LoopConfig& cfg, DistTransport& tr) {
  const DistOptions& options = *cfg.options;
  const dims_t& dims = *cfg.dims;
  DistPartition& part = *cfg.part;
  const int order = static_cast<int>(dims.size());
  const idx_t rank = options.rank;
  const std::size_t nlocales = part.nlocales;

  // Each locale is serial (locale-level parallelism is the process/locale
  // grid itself, not intra-locale threading), with its own CSF set and
  // execution plan.
  MttkrpOptions mopts;
  mopts.nthreads = 1;
  mopts.schedule = options.schedule;
  mopts.chunk_target = options.chunk_target;
  mopts.use_fixed_kernels = options.use_fixed_kernels;
  mopts.csf_layout = options.csf_layout;
  mopts.precision = options.precision;
  mopts.backend = options.backend;
  std::vector<std::unique_ptr<CsfSet>> sets(nlocales);
  std::vector<std::unique_ptr<MttkrpPlan>> plans(nlocales);
  auto build_plan = [&](std::size_t l) {
    sets[l] = std::make_unique<CsfSet>(part.blocks[l], CsfPolicy::kTwoMode,
                                       1, nullptr, SortVariant::kAllOpts,
                                       options.csf_layout);
    plans[l] = std::make_unique<MttkrpPlan>(*sets[l], rank, mopts);
  };
  for (const std::size_t l : cfg.owned) {
    if (part.blocks[l].nnz() == 0) {
      continue;  // empty locale: contributes nothing, moves nothing real
    }
    build_plan(l);
    tr.beat();
  }

  DistResult result;
  result.locale_nnz = part.locale_nnz;
  KruskalModel& model = result.model;
  const CommVolume per_iteration =
      predict_comm_volume(dims, options.grid, rank);

  ResilienceContext rctx(options.resilience, cfg.checkpoint_kind.c_str(),
                         options.seed);
  int it = 0;

  // Factor initialization and ALS updates mirror cp_als_csf with one
  // thread exactly; only the MTTKRP is assembled from locale partials.
  auto init_state = [&] {
    Rng rng(options.seed);
    model.lambda.assign(rank, val_t{1});
    model.factors.clear();
    model.factors.reserve(static_cast<std::size_t>(order));
    for (int m = 0; m < order; ++m) {
      model.factors.push_back(
          la::Matrix::random(dims[static_cast<std::size_t>(m)], rank, rng));
    }
    result.fit_history.clear();
    result.comm.reduce_bytes.assign(static_cast<std::size_t>(order), 0);
    result.comm.broadcast_bytes.assign(static_cast<std::size_t>(order), 0);
    result.iterations = 0;
    it = 0;
  };
  init_state();

  // The comm counters are an invariant of the iteration count (every
  // iteration moves the same predicted volume), so restored totals are
  // reconstructed rather than serialized.
  auto reconstruct_comm = [&] {
    for (std::size_t m = 0; m < static_cast<std::size_t>(order); ++m) {
      result.comm.reduce_bytes[m] =
          per_iteration.reduce_bytes[m] * static_cast<std::uint64_t>(it);
      result.comm.broadcast_bytes[m] =
          per_iteration.broadcast_bytes[m] * static_cast<std::uint64_t>(it);
    }
  };

  auto apply_checkpoint = [&](Checkpoint&& ck) {
    SPTD_CHECK(ck.factors.size() == static_cast<std::size_t>(order),
               "dist restore: checkpoint order mismatch");
    for (int m = 0; m < order; ++m) {
      const la::Matrix& f = ck.factors[static_cast<std::size_t>(m)];
      SPTD_CHECK(f.rows() == dims[static_cast<std::size_t>(m)] &&
                     f.cols() == rank,
                 "dist restore: checkpoint factor shape mismatch");
    }
    const std::vector<double>* lam = ck.find_series("lambda");
    SPTD_CHECK(lam != nullptr &&
                   lam->size() == static_cast<std::size_t>(rank),
               "dist restore: checkpoint lambda missing or wrong rank");
    model.factors = std::move(ck.factors);
    for (idx_t r = 0; r < rank; ++r) {
      model.lambda[static_cast<std::size_t>(r)] =
          static_cast<val_t>((*lam)[static_cast<std::size_t>(r)]);
    }
    if (const std::vector<double>* fh = ck.find_series("fit_history")) {
      result.fit_history = *fh;
    } else {
      result.fit_history.clear();
    }
    it = ck.iteration;
    result.iterations = it;
    reconstruct_comm();
  };

  // Rebuild the loss trend identically on every rank from the restored
  // history — survivors carrying stale pre-crash trend state would
  // otherwise make different rollback decisions than a respawned rank
  // during replay and desynchronize the collectives.
  auto reseed_health = [&] {
    rctx.health().reset();
    if (!result.fit_history.empty()) {
      double best_loss = std::numeric_limits<double>::infinity();
      for (const double f : result.fit_history) {
        best_loss = std::min(best_loss, 1.0 - f);
      }
      rctx.health().seed_trend(best_loss);
    }
  };

  auto apply_rejoin = [&](const RejoinPoint& rp) {
    bool restored = false;
    if (!rp.checkpoint_path.empty()) {
      try {
        if (std::optional<Checkpoint> ck =
                load_checkpoint_file(rp.checkpoint_path)) {
          SPTD_CHECK(ck->iteration == rp.iteration,
                     "dist rejoin: rollback iteration mismatch");
          rctx.recovery_rng().set_state(ck->rng_state);
          apply_checkpoint(std::move(*ck));
          rctx.counters().resumed_from = it;
          restored = true;
          log_info("resilience: " + cfg.checkpoint_kind +
                   " rejoined from iteration " + std::to_string(it));
        }
      } catch (const Error& e) {
        log_warn("dist rejoin: rollback checkpoint unusable: " +
                 std::string(e.what()));
      }
    }
    if (!restored && rp.iteration == 0 && rp.checkpoint_path.empty()) {
      // No snapshot existed (checkpointing off or nothing written yet):
      // deterministic reinit from the seed, replay from iteration 0.
      init_state();
      restored = true;
    }
    if (!restored) {
      // The launcher validated the file before publishing it; losing it
      // here means this rank's view diverged from its peers' — replaying
      // from scratch would desynchronize the collectives, so fail loudly.
      throw Error("dist rejoin: rollback checkpoint " + rp.checkpoint_path +
                  " disappeared or failed validation");
    }
    reseed_health();
  };

  // Adopt the current epoch. shm: returns the launcher's rollback preset
  // after a recovery (and for --resume, preset pre-fork); sim/mpi: none.
  if (std::optional<RejoinPoint> rp = tr.rejoin()) {
    apply_rejoin(*rp);
  } else if (std::optional<Checkpoint> ck = rctx.try_resume()) {
    apply_checkpoint(std::move(*ck));
    reseed_health();
  }

  // Grams are recomputed (deterministic serial la::ata), not serialized:
  // a resumed run rebuilds bitwise-identical grams from the factors.
  std::vector<la::Matrix> grams;
  grams.reserve(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) {
    grams.emplace_back(rank, rank);
  }
  auto refresh_grams = [&] {
    for (int m = 0; m < order; ++m) {
      la::ata(model.factors[static_cast<std::size_t>(m)],
              grams[static_cast<std::size_t>(m)], 1);
    }
  };
  refresh_grams();

  const bool guard = rctx.health().enabled();
  struct GoodState {
    std::vector<la::Matrix> factors;
    std::vector<val_t> lambda;
    std::vector<double> fit_history;
    CommVolume comm;
    int iteration = 0;
  } good;
  auto snapshot_good = [&] {
    good = {model.factors, model.lambda, result.fit_history, result.comm,
            it};
  };
  if (guard) snapshot_good();

  la::Matrix v(rank, rank);
  la::Matrix fit_m;  // last mode's assembled MTTKRP, kept for the fit
  PrivateBuffers fit_partials(1, static_cast<nnz_t>(rank));
  bool finished = false;
  while (!finished) {
    try {
      while (it < options.max_iterations) {
        tr.beat();
        if (FaultInjector* inj = rctx.injector()) {
          if (tr.kind() == TransportKind::kShm) {
            // Real rank death: SIGKILL ourselves mid-iteration. The
            // shared-memory token claim is one-shot across respawns, so
            // the victim replaying this iteration after recovery lives.
            for (const std::size_t l : cfg.owned) {
              if (inj->rank_kill_due(l, nlocales, it,
                                     options.max_iterations) &&
                  tr.claim_kill_token()) {
                log_warn("fault: rank-kill of rank " + std::to_string(l) +
                         " at iteration " + std::to_string(it));
                std::raise(SIGKILL);
              }
            }
          } else {
            // A killed locale loses its in-memory CSF set and execution
            // plan — the analogue of a node dropping out of the grid.
            for (const std::size_t l : cfg.owned) {
              if (inj->kill_locale(l, nlocales, it,
                                   options.max_iterations)) {
                sets[l].reset();
                plans[l].reset();
              }
            }
          }
        }
        // Failure detection + restart: a locale that owns nonzeros but has
        // no plan is down. Its block is still resident (the simulated
        // analogue of re-reading the locale's partition from durable
        // storage), so the CSF set and plan rebuild deterministically and
        // the recovered run matches the clean run bitwise.
        for (const std::size_t l : cfg.owned) {
          if (!plans[l] && part.blocks[l].nnz() > 0) {
            build_plan(l);
            ++rctx.counters().locale_restarts;
            log_warn("[resilience] dist: restarted locale " +
                     std::to_string(l) + " at iteration " +
                     std::to_string(it));
          }
        }

        for (int m = 0; m < order; ++m) {
          const idx_t m_dim = dims[static_cast<std::size_t>(m)];
          la::Matrix out_view(m_dim, rank);

          // Layer-wise all-reduce of partial MTTKRPs, summed in locale
          // order by the transport (one locale executes straight into the
          // output — nothing moves on any transport).
          if (nlocales == 1) {
            plans[0]->execute(model.factors, m, out_view);
          } else {
            std::vector<la::Matrix> partial_store;
            partial_store.reserve(cfg.owned.size());
            std::vector<const la::Matrix*> partials(nlocales, nullptr);
            for (const std::size_t l : cfg.owned) {
              if (!plans[l]) continue;
              partial_store.emplace_back(m_dim, rank);
              plans[l]->execute(model.factors, m, partial_store.back());
              // Same shape implies the same padded stride; padding lanes
              // are zero, so summing physical buffers is the logical sum.
              partials[l] = &partial_store.back();
            }
            tr.allreduce(
                static_cast<std::uint64_t>(it) *
                        static_cast<std::uint64_t>(order) +
                    static_cast<std::uint64_t>(m),
                m, partials, out_view);
          }
          result.comm.reduce_bytes[static_cast<std::size_t>(m)] +=
              per_iteration.reduce_bytes[static_cast<std::size_t>(m)];
          result.comm.broadcast_bytes[static_cast<std::size_t>(m)] +=
              per_iteration.broadcast_bytes[static_cast<std::size_t>(m)];

          if (m == order - 1) {
            fit_m = out_view;
          }
          la::gram_hadamard(grams, m, v);
          la::solve_normal_equations(v, out_view, 1);
          la::Matrix& factor = model.factors[static_cast<std::size_t>(m)];
          factor = std::move(out_view);
          la::normalize_columns(
              factor, model.lambda,
              it == 0 ? la::MatNorm::kTwo : la::MatNorm::kMax, 1);
          la::ata(factor, grams[static_cast<std::size_t>(m)], 1);
          tr.beat();
        }

        if (FaultInjector* inj = rctx.injector()) {
          inj->corrupt_factors(model.factors, it);
        }

        const val_t inner = detail::fit_inner_product(
            fit_m, model.factors[static_cast<std::size_t>(order - 1)],
            model.lambda, 1, fit_partials);
        const val_t norm_z = detail::model_norm_sq(grams, model.lambda);
        val_t residual_sq = cfg.tensor_norm_sq + norm_z - 2 * inner;
        if (residual_sq < val_t{0}) residual_sq = 0;
        const double fit =
            (cfg.tensor_norm_sq > val_t{0})
                ? 1.0 - std::sqrt(static_cast<double>(residual_sq)) /
                            std::sqrt(static_cast<double>(
                                cfg.tensor_norm_sq))
                : 0.0;

        if (guard) {
          const HealthIssue issue =
              rctx.health().inspect(model.factors, model.lambda, 1.0 - fit);
          if (issue != HealthIssue::kNone) {
            rctx.fail_or_retry(issue, it);  // throws when out of retries
            model.factors = good.factors;
            model.lambda = good.lambda;
            result.fit_history = good.fit_history;
            result.comm = good.comm;
            it = good.iteration;
            perturb_factors(model.factors, rctx.recovery_rng());
            refresh_grams();
            continue;
          }
          rctx.note_healthy();
        }

        result.fit_history.push_back(fit);
        ++it;
        result.iterations = it;
        if (guard) snapshot_good();

        if (it < options.max_iterations && rctx.checkpoint_due(it)) {
          Checkpoint ck;
          ck.iteration = it;
          ck.factors = model.factors;
          ck.set_series("lambda",
                        std::vector<double>(model.lambda.begin(),
                                            model.lambda.end()));
          ck.set_series("fit_history", result.fit_history);
          rctx.save_checkpoint(std::move(ck));
        }
      }
      rctx.finish(result.resilience);
      if (cfg.on_complete) cfg.on_complete(result);
      tr.finalize();
      finished = true;
    } catch (const RecoveryInterrupt&) {
      // A peer died; the launcher bumped the epoch and published a
      // rollback point. Adopt it, quiesce with the other survivors and
      // the respawned rank, restore, and replay.
      if (std::optional<RejoinPoint> rp = tr.rejoin()) {
        apply_rejoin(*rp);
      } else {
        init_state();
        reseed_health();
      }
      refresh_grams();
      if (guard) snapshot_good();
    }
  }
  return result;
}

}  // namespace dist

DistResult dist_cp_als(const SparseTensor& x, const DistOptions& options) {
  const int order = x.order();
  SPTD_CHECK(x.nnz() > 0, "dist_cp_als: empty tensor");
  SPTD_CHECK(static_cast<int>(options.grid.size()) == order,
             "dist_cp_als: grid must have one extent per mode");
  for (int m = 0; m < order; ++m) {
    const idx_t g = options.grid[static_cast<std::size_t>(m)];
    SPTD_CHECK(g >= 1 && g <= x.dim(m),
               "dist_cp_als: grid extent out of [1, dims[m]]");
  }
  SPTD_CHECK(options.rank >= 1, "dist_cp_als: rank must be >= 1");
  SPTD_CHECK(options.max_iterations >= 1,
             "dist_cp_als: need >= 1 iteration");
  if (options.transport == TransportKind::kMpi) {
    SPTD_CHECK(mpi_transport_available(),
               "dist_cp_als: this build has no MPI transport (configure "
               "with MPI available)");
  }
  set_parallel_backend(options.backend);
  if (options.transport != TransportKind::kShm) {
    // The shm launcher forks; a live thread pool does not survive fork,
    // and every locale is single-threaded anyway, so the runtime is only
    // initialized for the in-process transports.
    init_parallel_runtime();
  }

  dist::DistPartition part = dist::partition_tensor(x, options);

  switch (options.transport) {
    case TransportKind::kShm:
      return dist::run_shm_dist(x, options, part);
    case TransportKind::kMpi:
#ifdef SPTD_HAVE_MPI
      return dist::run_mpi_dist(x, options, part);
#else
      throw Error("dist_cp_als: MPI transport not built");  // unreachable
#endif
    case TransportKind::kSim:
      break;
  }

  dist::SimTransport tr(part.nlocales);
  dist::LoopConfig cfg;
  cfg.options = &options;
  cfg.dims = &x.dims();
  cfg.tensor_norm_sq = x.norm_sq();
  cfg.part = &part;
  cfg.owned.resize(part.nlocales);
  for (std::size_t l = 0; l < part.nlocales; ++l) {
    cfg.owned[l] = l;
  }
  return dist::run_dist_loop(cfg, tr);
}

}  // namespace sptd
