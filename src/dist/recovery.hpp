#pragma once
/// \file recovery.hpp
/// \brief Rollback-point selection for distributed recovery.
///
/// The replicated-loop design makes any rank's checkpoint a valid global
/// restart point: every rank snapshots the identical factor state (only
/// the MTTKRP partials are local, and those are never checkpointed). So
/// the launcher recovers by scanning all per-rank snapshot files
/// ("dist-rank<r>-<iteration>.ckpt") and picking the newest one that
/// passes validation — typically the dead rank's own latest file, but a
/// survivor's equally good copy covers a victim whose disk state is torn.

#include <cstddef>
#include <string>

namespace sptd::dist {

/// Where the launcher rolls the grid back to after a rank death: restore
/// every rank from \p checkpoint_path when non-empty; otherwise replay
/// from scratch (deterministic reinit from the seed, iteration 0).
struct RollbackPlan {
  int iteration = 0;
  std::string checkpoint_path;
};

/// Scans \p dir for per-rank dist checkpoints of ranks 0..nranks-1 and
/// returns the newest (highest iteration) file that deserializes and
/// passes its checksum; invalid files are skipped with a warning. Returns
/// {0, ""} when no usable snapshot exists (including when \p dir is
/// empty/missing — a run without checkpointing still recovers, it just
/// replays everything).
RollbackPlan select_rollback(const std::string& dir, std::size_t nranks);

}  // namespace sptd::dist
