/// \file transport.cpp
/// \brief Transport-kind helpers, SimTransport, and the no-MPI stubs.

#include "dist/transport.hpp"

#include "dist/internal.hpp"

namespace sptd {

TransportKind parse_transport(const std::string& name) {
  if (name == "sim") return TransportKind::kSim;
  if (name == "shm") return TransportKind::kShm;
  if (name == "mpi") return TransportKind::kMpi;
  throw Error("unknown transport '" + name + "' (expected sim|shm|mpi)");
}

const char* transport_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSim:
      return "sim";
    case TransportKind::kShm:
      return "shm";
    case TransportKind::kMpi:
      return "mpi";
  }
  return "?";
}

#ifndef SPTD_HAVE_MPI
bool mpi_transport_available() { return false; }
int mpi_world_rank() { return 0; }
#endif

namespace dist {

void SimTransport::allreduce(std::uint64_t /*op*/, int /*mode*/,
                             const std::vector<const la::Matrix*>& partials,
                             la::Matrix& out) {
  SPTD_CHECK(partials.size() == nranks_,
             "SimTransport: partial count does not match rank count");
  out.fill(0);
  // Locale-order sum over physical buffers (padding lanes are zero), the
  // same order every transport uses — this is the determinism contract.
  val_t* dst = out.data();
  const std::size_t n = out.size();
  for (std::size_t r = 0; r < nranks_; ++r) {
    if (partials[r] == nullptr) continue;  // empty locale
    const val_t* src = partials[r]->data();
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] += src[i];
    }
  }
}

}  // namespace dist
}  // namespace sptd
