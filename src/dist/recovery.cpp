/// \file recovery.cpp
/// \brief Rollback-point selection: newest valid per-rank checkpoint.

#include "dist/recovery.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "dist/internal.hpp"
#include "resilience/checkpoint.hpp"

namespace sptd::dist {

namespace {

namespace fs = std::filesystem;

/// Parses "<kind>-<digits>.ckpt" for one of the per-rank kinds; returns
/// the (iteration, rank) on match. Mirrors load_latest's digits-only rule,
/// which is also what keeps plain "dist-..." sim files and
/// "dist-rank<r>-..." files from ever colliding.
bool parse_rank_checkpoint(const std::string& name, std::size_t nranks,
                           int& iteration, std::size_t& rank) {
  for (std::size_t r = 0; r < nranks; ++r) {
    const std::string prefix = dist_rank_kind(r) + "-";
    if (name.size() <= prefix.size() + 5 || name.rfind(prefix, 0) != 0 ||
        name.substr(name.size() - 5) != ".ckpt") {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - 5);
    char* end = nullptr;
    const long iter = std::strtol(digits.c_str(), &end, 10);
    if (end != digits.c_str() + digits.size()) continue;
    iteration = static_cast<int>(iter);
    rank = r;
    return true;
  }
  return false;
}

}  // namespace

RollbackPlan select_rollback(const std::string& dir, std::size_t nranks) {
  RollbackPlan plan;
  if (dir.empty()) return plan;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return plan;

  // All ranks' candidates in one pile, newest iteration first; rank as a
  // deterministic tie-break so every recovery of the same on-disk state
  // picks the same file.
  std::vector<std::pair<std::pair<int, std::size_t>, std::string>>
      candidates;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    int iteration = 0;
    std::size_t rank = 0;
    if (!parse_rank_checkpoint(name, nranks, iteration, rank)) continue;
    candidates.emplace_back(std::make_pair(iteration, rank),
                            entry.path().string());
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.first.first != b.first.first) {
                return a.first.first > b.first.first;  // newest iteration
              }
              if (a.first.second != b.first.second) {
                return a.first.second < b.first.second;  // lowest rank
              }
              return a.second < b.second;
            });

  for (const auto& [key, path] : candidates) {
    try {
      if (std::optional<Checkpoint> ck = load_checkpoint_file(path)) {
        if (ck->iteration != key.first) {
          log_warn("dist recovery: skipping " + path +
                   ": iteration mismatch");
          continue;
        }
        plan.iteration = key.first;
        plan.checkpoint_path = path;
        return plan;
      }
    } catch (const Error& e) {
      log_warn("dist recovery: skipping invalid " + path + ": " + e.what());
    }
  }
  if (!candidates.empty()) {
    log_warn("dist recovery: no usable snapshot among " +
             std::to_string(candidates.size()) +
             " checkpoint files; replaying from scratch");
  }
  return plan;
}

}  // namespace sptd::dist
