#pragma once
/// \file internal.hpp
/// \brief Internal seams between the dist driver, transports, and the
///        fork launcher. Not part of the public dist_cpals.hpp surface —
///        the pieces the tentpole split dist_cpals.cpp into wire together
///        here.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "dist/dist_cpals.hpp"
#include "dist/transport.hpp"
#include "tensor/coo.hpp"

namespace sptd::dist {

/// The medium-grained tensor partition: one block per locale of the
/// mixed-radix grid (mode 0 slowest), built once per run — in-process for
/// sim, pre-fork for shm (children inherit their block copy-on-write),
/// identically on every rank for mpi.
struct DistPartition {
  std::size_t nlocales = 1;
  std::vector<SparseTensor> blocks;
  std::vector<nnz_t> locale_nnz;
};

DistPartition partition_tensor(const SparseTensor& x,
                               const DistOptions& options);

/// Everything the replicated ALS loop needs besides the transport. One
/// process runs the loop for the ranks in \p owned: all of them under
/// sim, exactly one under shm (a forked child) and mpi (an MPI rank).
struct LoopConfig {
  const DistOptions* options = nullptr;
  const dims_t* dims = nullptr;
  val_t tensor_norm_sq = 0;
  /// Mutable: CsfSet construction sorts each block in place.
  DistPartition* part = nullptr;
  std::vector<std::size_t> owned;
  /// Checkpoint kind: "dist" for sim (one writer), per-rank
  /// "dist-rank<r>" under shm/mpi so concurrent writers never collide.
  std::string checkpoint_kind = "dist";
  /// Invoked with the finished result just before the transport's
  /// completion barrier — the shm rank-0 child ships its result file here.
  std::function<void(const DistResult&)> on_complete;
};

/// The replicated CP-ALS loop over a transport: every rank executes the
/// identical solve/normalize/fit path on identical state; only the MTTKRP
/// partials are local, and only the transport's locale-order all-reduce
/// moves data. Handles resume, checkpointing, health rollback, fault
/// injection, and (under shm) RecoveryInterrupt rejoin.
DistResult run_dist_loop(const LoopConfig& cfg, DistTransport& tr);

/// The in-process byte-accounting simulation (the original dist backend
/// and still the default): all ranks live in one process and the
/// all-reduce is a plain locale-order sum.
class SimTransport final : public DistTransport {
 public:
  explicit SimTransport(std::size_t nranks) : nranks_(nranks) {}

  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kSim;
  }
  [[nodiscard]] std::size_t nranks() const override { return nranks_; }

  void allreduce(std::uint64_t op, int mode,
                 const std::vector<const la::Matrix*>& partials,
                 la::Matrix& out) override;

 private:
  std::size_t nranks_;
};

/// Fork-per-locale run over the shared-memory ring (launcher.cpp): forks
/// one child per locale, monitors heartbeats and exits, drives
/// kill/respawn recovery, and collects rank 0's result.
DistResult run_shm_dist(const SparseTensor& x, const DistOptions& options,
                        DistPartition& part);

/// One-MPI-rank-per-locale run (transport_mpi.cpp; only linked when
/// find_package(MPI) succeeded — callers gate on
/// mpi_transport_available()).
DistResult run_mpi_dist(const SparseTensor& x, const DistOptions& options,
                        DistPartition& part);

/// Checkpoint kind (and so filename prefix) of one rank's snapshots:
/// "dist-rank<r>" -> files "dist-rank<r>-<iteration>.ckpt".
std::string dist_rank_kind(std::size_t rank);

}  // namespace sptd::dist
