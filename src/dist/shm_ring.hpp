#pragma once
/// \file shm_ring.hpp
/// \brief The shared-memory ring ShmTransport synchronizes over.
///
/// A ring is a flat byte region (an anonymous MAP_SHARED mapping under the
/// fork launcher; plain heap memory under the threaded stress harness —
/// the protocol is process-agnostic) holding:
///
///   * a control header: recovery epoch, rollback point, abort flag, the
///     one-shot rank-kill token, and the launcher's respawn counter;
///   * per-rank cache-line-aligned atomics: publish sequence, heartbeat,
///     adopted epoch, finished flag;
///   * one broadcast sequence word;
///   * per-rank reduce slots and one broadcast buffer of `slot_doubles`
///     doubles each.
///
/// Publication protocol: a writer fills its buffer, then release-stores a
/// tag into its sequence word; readers acquire-poll for the exact tag.
/// Tags pack (epoch, operation id), so a publish from before a recovery
/// epoch can never satisfy a waiter from after it — stale data is
/// unmatchable by construction, and a torn read during an epoch change is
/// caught by re-checking the sequence word (seqlock style) after copying.
///
/// Every atomic here is a lock-free std::atomic<uint64_t> (address-free on
/// the targets we build for), which is what makes the same words valid
/// across fork'd processes and across threads alike.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace sptd {

/// One cache-line-isolated atomic word (avoids false sharing between
/// ranks' publish/heartbeat words during concurrent layer reduces).
struct alignas(64) RingWord {
  std::atomic<std::uint64_t> v;
};

class ShmRing {
 public:
  /// Longest rollback checkpoint path the control header can carry.
  static constexpr std::size_t kPathMax = 512;
  /// Operation ids must stay below 2^40 so (epoch, op) packs into a tag
  /// word (24 bits of epoch above 40 bits of op — both absurdly generous).
  static constexpr std::uint64_t kMaxOp = (1ULL << 40) - 2;

  struct Header {
    std::atomic<std::uint64_t> epoch;       ///< recovery generation
    std::atomic<std::uint64_t> abort;       ///< a rank hit a fatal error
    std::atomic<std::uint64_t> kill_token;  ///< rank-kill one-shot claim
    std::atomic<std::uint64_t> restarts;    ///< launcher respawn count
    std::atomic<std::int64_t> rollback_iter;
    std::atomic<std::uint64_t> have_rollback;
    /// Written by the launcher before it bumps the epoch; readers copy it
    /// and re-check the epoch afterwards for consistency.
    char rollback_path[kPathMax];
  };

  static std::size_t bytes_needed(std::size_t nranks,
                                  std::size_t slot_doubles) {
    return header_bytes() + words_bytes(nranks) +
           (nranks + 1) * slot_doubles * sizeof(double);
  }

  /// Wraps \p mem (at least bytes_needed() bytes, 64-byte aligned). With
  /// \p init, placement-constructs every atomic to zero — call exactly
  /// once, before any other party touches the region (pre-fork, or before
  /// threads launch).
  ShmRing(void* mem, std::size_t nranks, std::size_t slot_doubles,
          bool init)
      : nranks_(nranks), slot_doubles_(slot_doubles) {
    auto* base = static_cast<unsigned char*>(mem);
    SPTD_CHECK((reinterpret_cast<std::uintptr_t>(base) % 64) == 0,
               "ShmRing: region must be 64-byte aligned");
    hdr_ = reinterpret_cast<Header*>(base);
    words_ = reinterpret_cast<RingWord*>(base + header_bytes());
    data_ = reinterpret_cast<double*>(base + header_bytes() +
                                      words_bytes(nranks));
    if (init) {
      new (hdr_) Header{};
      std::memset(hdr_->rollback_path, 0, kPathMax);
      const std::size_t nwords = word_count(nranks);
      for (std::size_t i = 0; i < nwords; ++i) {
        new (&words_[i]) RingWord{};
      }
    }
  }

  [[nodiscard]] std::size_t nranks() const { return nranks_; }
  [[nodiscard]] std::size_t slot_doubles() const { return slot_doubles_; }

  Header& header() { return *hdr_; }

  /// Packs (epoch, op) into one tag word; +1 keeps a zero-initialized
  /// sequence word from ever matching a real operation.
  static std::uint64_t tag(std::uint64_t epoch, std::uint64_t op) {
    return (epoch << 40) | (op + 1);
  }

  std::atomic<std::uint64_t>& seq(std::size_t r) { return word(0, r); }
  std::atomic<std::uint64_t>& heartbeat(std::size_t r) {
    return word(1, r);
  }
  std::atomic<std::uint64_t>& rank_epoch(std::size_t r) {
    return word(2, r);
  }
  std::atomic<std::uint64_t>& finished(std::size_t r) { return word(3, r); }
  std::atomic<std::uint64_t>& bcast_seq() {
    return words_[4 * nranks_].v;
  }

  double* slot(std::size_t r) { return data_ + r * slot_doubles_; }
  double* bcast() { return data_ + nranks_ * slot_doubles_; }

 private:
  static std::size_t header_bytes() {
    return (sizeof(Header) + 63) / 64 * 64;
  }
  static std::size_t word_count(std::size_t nranks) {
    return 4 * nranks + 1;  // seq, heartbeat, rank_epoch, finished; bcast
  }
  static std::size_t words_bytes(std::size_t nranks) {
    return word_count(nranks) * sizeof(RingWord);
  }
  std::atomic<std::uint64_t>& word(std::size_t kind, std::size_t r) {
    return words_[kind * nranks_ + r].v;
  }

  std::size_t nranks_;
  std::size_t slot_doubles_;
  Header* hdr_ = nullptr;
  RingWord* words_ = nullptr;
  double* data_ = nullptr;
};

/// Best-effort wakeup doorbells (one eventfd per rank) layered under the
/// ring's polling waits: publishers kick after every release-store so
/// waiters sleep in poll(2) instead of burning exponential-backoff
/// nanosleeps. Purely an optimization — correctness lives entirely in the
/// sequence tags, so a missed or spurious kick only costs one poll
/// timeout. Falls back to plain sleeping when eventfd is unavailable.
class Doorbells {
 public:
  explicit Doorbells(std::size_t n);
  ~Doorbells();
  Doorbells(const Doorbells&) = delete;
  Doorbells& operator=(const Doorbells&) = delete;

  /// Wakes every rank (write 1 to each doorbell; EAGAIN ignored).
  void kick_all();
  /// Blocks rank \p r for up to \p timeout_us or until kicked; drains the
  /// doorbell so the next wait actually sleeps.
  void wait(std::size_t r, int timeout_us);

 private:
  std::vector<int> fds_;
};

}  // namespace sptd
