/// \file transport_mpi.cpp
/// \brief One-MPI-rank-per-locale transport. Compiled only when the build
///        found MPI (SPTD_HAVE_MPI); every other build uses the stubs in
///        transport.cpp and dist_cp_als refuses `--transport mpi` upfront.
///
/// The collective keeps the same determinism contract as sim and shm: the
/// partial MTTKRP buffers are gathered to rank 0, summed there in locale
/// order 0..P-1 (skipping empty locales), and the result broadcast back —
/// NOT MPI_Allreduce, whose reduction order is implementation-defined and
/// would break the bitwise cross-transport guarantee.
///
/// Rank death is not survivable here (a failed rank aborts the MPI job, as
/// plain MPI semantics dictate); the shm transport is the one that
/// exercises kill/respawn recovery. Resume works: every rank runs the same
/// deterministic rollback selection against the shared checkpoint
/// directory, so all ranks restore the same snapshot.

#ifdef SPTD_HAVE_MPI

#include <mpi.h>

#include <chrono>
#include <cstring>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "dist/internal.hpp"
#include "dist/recovery.hpp"
#include "dist/transport.hpp"

namespace sptd {

bool mpi_transport_available() { return true; }

int mpi_world_rank() {
  int inited = 0;
  MPI_Initialized(&inited);
  if (inited == 0) return 0;
  int rank = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  return rank;
}

namespace dist {

namespace {

using Clock = std::chrono::steady_clock;

void mpi_check(int rc, const char* what) {
  SPTD_CHECK(rc == MPI_SUCCESS,
             std::string("dist mpi: ") + what + " failed");
}

class MpiTransport final : public DistTransport {
 public:
  MpiTransport(int rank, int nranks, std::vector<nnz_t> locale_nnz,
               std::optional<RejoinPoint> preset)
      : rank_(rank),
        nranks_(nranks),
        locale_nnz_(std::move(locale_nnz)),
        preset_(std::move(preset)) {}

  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kMpi;
  }
  [[nodiscard]] std::size_t nranks() const override {
    return static_cast<std::size_t>(nranks_);
  }

  /// The launcher-style rollback preset: consumed once at loop startup so
  /// `--resume` restores every rank from the same snapshot.
  std::optional<RejoinPoint> rejoin() override {
    std::optional<RejoinPoint> rp = std::move(preset_);
    preset_.reset();
    return rp;
  }

  void allreduce(std::uint64_t op, int mode,
                 const std::vector<const la::Matrix*>& partials,
                 la::Matrix& out) override {
    (void)op;
    (void)mode;
    SPTD_CHECK(partials.size() == 1,
               "dist mpi: one partial per process expected");
    const std::size_t n = out.size();  // physical doubles, padding zeroed
    sendbuf_.assign(n, 0.0);
    if (partials[0] != nullptr) {
      std::memcpy(sendbuf_.data(), partials[0]->data(),
                  n * sizeof(double));
    }

    const auto t0 = Clock::now();
    if (rank_ == 0) gatherbuf_.resize(n * static_cast<std::size_t>(nranks_));
    mpi_check(MPI_Gather(sendbuf_.data(), static_cast<int>(n), MPI_DOUBLE,
                         gatherbuf_.data(), static_cast<int>(n), MPI_DOUBLE,
                         0, MPI_COMM_WORLD),
              "MPI_Gather");
    if (rank_ != 0 && partials[0] != nullptr) {
      measured_.reduce_bytes += n * sizeof(double);
    }
    if (rank_ == 0) {
      out.fill(0);
      double* dst = out.data();
      for (int q = 0; q < nranks_; ++q) {  // locale order: bitwise contract
        if (locale_nnz_[static_cast<std::size_t>(q)] == 0) continue;
        const double* src = gatherbuf_.data() + static_cast<std::size_t>(q) * n;
        for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
        if (q != 0) measured_.reduce_bytes += n * sizeof(double);
      }
    }
    measured_.reduce_seconds +=
        std::chrono::duration<double>(Clock::now() - t0).count();

    const auto t1 = Clock::now();
    mpi_check(MPI_Bcast(out.data(), static_cast<int>(n), MPI_DOUBLE, 0,
                        MPI_COMM_WORLD),
              "MPI_Bcast");
    measured_.broadcast_bytes +=
        (rank_ == 0 ? static_cast<std::size_t>(nranks_ - 1) : 1) * n *
        sizeof(double);
    measured_.broadcast_seconds +=
        std::chrono::duration<double>(Clock::now() - t1).count();
  }

  void finalize() override {
    mpi_check(MPI_Barrier(MPI_COMM_WORLD), "MPI_Barrier");
  }

 private:
  int rank_;
  int nranks_;
  std::vector<nnz_t> locale_nnz_;
  std::optional<RejoinPoint> preset_;
  std::vector<double> sendbuf_;
  std::vector<double> gatherbuf_;
};

}  // namespace

DistResult run_mpi_dist(const SparseTensor& x, const DistOptions& options,
                        DistPartition& part) {
  int inited = 0;
  MPI_Initialized(&inited);
  static bool we_initialized = false;
  if (inited == 0) {
    mpi_check(MPI_Init(nullptr, nullptr), "MPI_Init");
    we_initialized = true;
    std::atexit([] {
      if (we_initialized) {
        int fin = 0;
        MPI_Finalized(&fin);
        if (fin == 0) MPI_Finalize();
      }
    });
  }
  int world = 0;
  int rank = 0;
  MPI_Comm_size(MPI_COMM_WORLD, &world);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  SPTD_CHECK(static_cast<std::size_t>(world) == part.nlocales,
             "dist mpi: world size " + std::to_string(world) +
                 " != locale grid size " + std::to_string(part.nlocales) +
                 " (launch with mpirun -n <grid product>)");

  std::optional<RejoinPoint> preset;
  DistOptions loopopts = options;
  if (options.resilience.resume) {
    SPTD_CHECK(!options.resilience.checkpoint_dir.empty(),
               "--resume requires --checkpoint-dir");
    const RollbackPlan rb =
        select_rollback(options.resilience.checkpoint_dir, part.nlocales);
    if (!rb.checkpoint_path.empty()) {
      preset = RejoinPoint{rb.iteration, rb.checkpoint_path};
      if (rank == 0) {
        log_info("resilience: resuming dist from iteration " +
                 std::to_string(rb.iteration));
      }
    }
    // The preset replaces per-rank load_latest (which could disagree
    // across ranks when a write raced a crash).
    loopopts.resilience.resume = false;
  }

  MpiTransport tr(rank, world, part.locale_nnz, std::move(preset));
  LoopConfig cfg;
  cfg.options = &loopopts;
  cfg.dims = &x.dims();
  cfg.tensor_norm_sq = x.norm_sq();
  cfg.part = &part;
  cfg.owned = {static_cast<std::size_t>(rank)};
  cfg.checkpoint_kind = dist_rank_kind(static_cast<std::size_t>(rank));
  DistResult res = run_dist_loop(cfg, tr);
  res.comm_measured = tr.measured();
  return res;
}

}  // namespace dist
}  // namespace sptd
