#pragma once
/// \file row_access.hpp
/// \brief The three factor-matrix row-access idioms whose costs the paper
///        quantifies (Section V-D1, Figures 2-3).
///
/// The MTTKRP's inner loops fetch a length-R row of a factor matrix and
/// multiply/accumulate across it. The Chapel port went through three
/// implementations:
///
///  * **Slice** — `A[i, ..]`-style array views. Chapel materializes a
///    domain + array descriptor per slice (heap allocation, setup), which
///    dwarfs the O(R) arithmetic on the row (R = 35). Reproduced with a
///    real heap-allocated view descriptor (base/extent/stride) and
///    bounds-checked accesses through it.
///  * **Index2D** — direct `A[i, j]` indexing: the flat offset `i*R + j`
///    is recomputed at each access. (An optimizing C++ compiler hoists the
///    row offset, so the measured Index2D→Pointer gap here is smaller than
///    Chapel's 1.26x; the Slice→Index2D cliff is the effect that matters.)
///  * **Pointer** — `c_ptrTo` + pointer arithmetic, the C idiom and the
///    port's final form.
///
/// Kernels are templated on one of these policies; all three compute
/// identical results (tests assert this).

#include <atomic>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"
#include "la/matrix.hpp"

namespace sptd {

/// Row-access policy selector (figure legend names: slice, 2d, pointer).
enum class RowAccess : int { kSlice = 0, kIndex2D, kPointer };

/// Parses "slice" / "2d" / "pointer".
RowAccess parse_row_access(const std::string& name);

/// Legend name of a policy.
const char* row_access_name(RowAccess ra);

/// Pointer policy: raw row base pointer, unchecked accesses. The handle
/// is templated on the matrix element type so the precision axis's fp32
/// factor shadows read through the identical idiom (T defaults to val_t
/// everywhere the precision is f64).
struct PointerAccess {
  template <typename T>
  class RowT {
   public:
    explicit RowT(T* p) : p_(p) {}
    [[nodiscard]] T get(idx_t j) const { return p_[j]; }
    void add(idx_t j, T v) const { p_[j] += v; }
    void set(idx_t j, T v) const { p_[j] = v; }

   private:
    T* p_;
  };
  using Row = RowT<val_t>;

  template <typename T>
  static RowT<T> row(la::MatrixT<T>& a, idx_t i) {
    return RowT<T>{a.data() + static_cast<std::size_t>(i) * a.ld()};
  }
  template <typename T>
  static RowT<T> row(const la::MatrixT<T>& a, idx_t i) {
    // MTTKRP only writes to the output matrix; const factor rows are read
    // through the same handle type for simplicity.
    return RowT<T>{const_cast<T*>(a.data()) +
                   static_cast<std::size_t>(i) * a.ld()};
  }
};

/// 2D-index policy: offset recomputed per access.
struct Index2DAccess {
  template <typename T>
  class RowT {
   public:
    RowT(T* base, idx_t i, idx_t cols) : base_(base), i_(i), cols_(cols) {}
    [[nodiscard]] T get(idx_t j) const {
      return base_[static_cast<std::size_t>(i_) * cols_ + j];
    }
    void add(idx_t j, T v) const {
      base_[static_cast<std::size_t>(i_) * cols_ + j] += v;
    }
    void set(idx_t j, T v) const {
      base_[static_cast<std::size_t>(i_) * cols_ + j] = v;
    }

   private:
    T* base_;
    idx_t i_;
    idx_t cols_;
  };
  using Row = RowT<val_t>;

  // The flat offset is recomputed per access against the padded leading
  // dimension (the stride a 2D array with padded rows indexes by).
  template <typename T>
  static RowT<T> row(la::MatrixT<T>& a, idx_t i) {
    return RowT<T>{a.data(), i, a.ld()};
  }
  template <typename T>
  static RowT<T> row(const la::MatrixT<T>& a, idx_t i) {
    return RowT<T>{const_cast<T*>(a.data()), i, a.ld()};
  }
};

/// Slice policy: every row fetch materializes what Chapel 1.16 built for
/// an array view — a *domain* object describing the index set and an
/// *array descriptor* referring to it, both heap-allocated and reference
/// counted (Chapel arrays/domains are runtime classes; see the Chapel
/// issue the paper cites on slice overhead). Element accesses go through
/// the descriptor with a bounds check against the domain and a strided
/// address computation.
struct SliceAccess {
  /// Chapel domain record: the index set {lo..hi by stride} of the view.
  struct Domain {
    idx_t lo;
    idx_t hi;       ///< inclusive upper bound
    idx_t stride;
    std::atomic<int> refcount;
  };

  /// Chapel array-view descriptor: data pointer + owning domain.
  template <typename T>
  struct ViewDescT {
    T* base;
    Domain* dom;
    std::atomic<int> refcount;
  };

  template <typename T>
  class RowT {
   public:
    explicit RowT(ViewDescT<T>* d) : d_(d) {}
    ~RowT() {
      // View teardown: drop both refcounts, free when last (always here).
      if (d_->refcount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (d_->dom->refcount.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          delete d_->dom;
        }
        delete d_;
      }
    }
    RowT(const RowT&) = delete;
    RowT& operator=(const RowT&) = delete;
    RowT(RowT&&) = delete;

    [[nodiscard]] T get(idx_t j) const {
      return d_->base[offset(j)];
    }
    void add(idx_t j, T v) const { d_->base[offset(j)] += v; }
    void set(idx_t j, T v) const { d_->base[offset(j)] = v; }

   private:
    [[nodiscard]] std::size_t offset(idx_t j) const {
      const Domain& dom = *d_->dom;
      const idx_t idx = dom.lo + j;
      SPTD_CHECK(idx <= dom.hi, "slice access out of bounds");
      return static_cast<std::size_t>(idx) * dom.stride;
    }
    ViewDescT<T>* d_;
  };
  using Row = RowT<val_t>;

  template <typename T>
  static RowT<T> make(T* base, idx_t cols) {
    auto* dom = new Domain{0, static_cast<idx_t>(cols - 1), 1, {1}};
    auto* view = new ViewDescT<T>{base, dom, {1}};
    // Chapel bumps the domain's refcount when an array is declared over it.
    dom->refcount.fetch_add(1, std::memory_order_relaxed);
    view->dom->refcount.fetch_sub(1, std::memory_order_relaxed);
    return RowT<T>{view};
  }

  template <typename T>
  static RowT<T> row(la::MatrixT<T>& a, idx_t i) {
    return make(a.data() + static_cast<std::size_t>(i) * a.ld(), a.cols());
  }
  template <typename T>
  static RowT<T> row(const la::MatrixT<T>& a, idx_t i) {
    return make(const_cast<T*>(a.data()) +
                    static_cast<std::size_t>(i) * a.ld(),
                a.cols());
  }
};

}  // namespace sptd
