#pragma once
/// \file mttkrp.hpp
/// \brief MTTKRP — the matricized tensor times Khatri-Rao product, the
///        critical kernel of CP-ALS (lines 5/8/11 of Algorithm 1).
///
/// Given a tensor X and factor matrices A(0..N-1), the mode-m MTTKRP is
///   M(i, r) = sum over nonzeros X(c) with c[m] == i of
///             X(c) * prod_{n != m} A(n)(c[n], r).
///
/// SPLATT evaluates it over CSF trees with three kernels selected by the
/// output mode's tree level:
///   * root     — each tree writes a distinct output row: no synchronization
///   * internal — conflicting writes: mutex pool or privatized buffers
///   * leaf     — conflicting writes at the deepest level: same choice
///
/// The privatize-or-lock decision is SPLATT's heuristic: privatize mode m
/// iff dims[m] * nthreads <= privatization_threshold * nnz (default 0.02).
/// This is what makes the paper's YELP runs lock beyond 2 threads while
/// NELL-2 never locks (Section V-D2).

#include <memory>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/precision.hpp"
#include "common/types.hpp"
#include "csf/csf.hpp"
#include "la/kernels.hpp"
#include "la/matrix.hpp"
#include "mttkrp/row_access.hpp"
#include "parallel/backend.hpp"
#include "parallel/locks.hpp"
#include "parallel/reduce.hpp"
#include "parallel/schedule.hpp"

namespace sptd {

/// How a kernel synchronizes conflicting output-row writes.
enum class SyncStrategy : int {
  kNone = 0,    ///< no conflicts possible (root kernel or 1 thread)
  kLock,        ///< mutex pool keyed by output row
  kPrivatize,   ///< per-thread output copies + reduction
  kTile,        ///< leaf-mode tiling: threads own disjoint output tiles
};

/// Name for logs/benches: "none" / "lock" / "privatize" / "tile".
const char* sync_strategy_name(SyncStrategy s);

/// MTTKRP tuning knobs (the paper's studied axes).
struct MttkrpOptions {
  int nthreads = 1;
  RowAccess row_access = RowAccess::kPointer;
  LockKind lock_kind = LockKind::kOmp;
  /// How kernel slice loops are distributed over the team (the tasking
  /// axis the paper studies); weighted is SPLATT's nnz-balanced blocking,
  /// workstealing adds per-thread deques on top of the weighted seed.
  SchedulePolicy schedule = SchedulePolicy::kWeighted;
  /// SPLATT's privatization threshold: privatize mode m iff
  /// dims[m] * nthreads <= privatization_threshold * nnz.
  double privatization_threshold = 0.02;
  /// Force lock use even where privatization would be chosen (Figure 4
  /// sweeps lock kinds and needs the locked path exercised).
  bool force_locks = false;
  /// Disable privatization AND locks is invalid; disabling privatization
  /// alone falls back to locks.
  bool allow_privatization = true;
  /// SPLATT's tiling alternative (the feature the paper's port omitted):
  /// for *leaf* kernels, partition the output mode into per-thread tiles;
  /// each thread re-walks the whole forest but deposits only leaves in
  /// its tile — lock-free and reduction-free at the cost of replicated
  /// upper-level work. Takes precedence over locks/privatization where
  /// applicable (leaf level, >1 thread).
  bool use_tiling = false;
  /// Dynamic/workstealing chunk heuristic: target number of claims per
  /// thread. Dynamic sizes chunks total / (nthreads * chunk_target);
  /// workstealing subdivides each thread's seeded block into up to
  /// chunk_target chunks (the steal granularity). Larger targets mean
  /// finer chunks (better skew smoothing, more claim traffic). Exposed as
  /// --chunk on the CLI and benches.
  int chunk_target = 16;
  /// Dispatch rank-specialized SIMD inner loops (la/kernels.hpp) when the
  /// rank has a compile-time instantiation and the row-access policy is
  /// pointer. Disable to force the generic runtime-rank loops — the
  /// baseline the kernel benches compare against.
  bool use_fixed_kernels = true;
  /// CSF index-stream widths for the representations this run builds
  /// (compressed = narrowest per level, the default; wide = the fixed
  /// u32/u64 baseline). The kernels themselves read the widths off each
  /// CsfTensor, so this knob matters to whoever constructs the CsfSet —
  /// cp_als, tucker_hooi, the benches — and is recorded in bench JSON.
  CsfLayout csf_layout = CsfLayout::kCompressed;
  /// Value-stream precision (common/precision.hpp): f64 runs the exact
  /// pre-precision code paths; f32/mixed stream fp32 factor-row shadows
  /// and an fp32 copy of the CSF values, with fp32 (f32) or fp64 (mixed)
  /// register accumulation. Applies to the pointer row-access kernels —
  /// the production path; the slice/2d ablation policies always run f64
  /// (they exist to measure access idioms, not bandwidth). The output
  /// matrix is fp64 under every precision (deposits widen).
  Precision precision = Precision::kF64;
  /// Which parallel backend executes the team regions (parallel/
  /// backend.hpp): omp (the default; behavior-identical to the
  /// pre-backend tree) or pool (persistent worker threads that compose
  /// across concurrent decompositions in one process). Applied
  /// process-wide by MttkrpPlan / the drivers via set_parallel_backend()
  /// before workspaces build their lock pools. Defaults from the
  /// SPTD_BACKEND environment variable.
  ParallelBackendKind backend = default_parallel_backend();
};

/// The compile-time kernel width an MTTKRP plan will select for \p rank
/// under \p opts: la::kern::fixed_width_for(rank) — the rank itself when
/// an instantiation exists (4, 8, 16, 32, 40, 64), the rank's padded row
/// stride when *that* width is instantiated (rank 35, the paper's
/// default, runs the R=40 kernels over its zero-filled padding lanes) —
/// provided the row access is pointer and specialization is not disabled;
/// else 0 (generic runtime-rank loops).
idx_t selected_kernel_width(idx_t rank, const MttkrpOptions& opts);

/// Decides the sync strategy SPLATT would use for an MTTKRP writing
/// \p out_mode at tree level \p level of a CSF with \p nnz nonzeros.
SyncStrategy choose_sync_strategy(const dims_t& dims, int out_mode, int level,
                                  nnz_t nnz, const MttkrpOptions& opts);

/// Process-wide count of choose_sync_strategy() calls (monotonic). Like
/// weighted_partition_calls(): strategy choice is plan-construction work,
/// and tests assert the ALS hot loop performs none of it.
std::uint64_t choose_sync_strategy_calls();

/// Output-row tile boundaries for the tiled leaf kernel: a leaf-occurrence
/// weighted partition of the leaf mode's index space (nthreads+1 bounds).
/// Plan-construction work; cached by MttkrpPlan for the kTile strategy.
std::vector<nnz_t> leaf_tile_bounds(const CsfTensor& csf, int nthreads);

/// Reusable scratch for MTTKRP calls: per-thread accumulators, the mutex
/// pool, and (lazily) privatized output buffers. Thread-count and rank are
/// fixed at construction; privatized buffers grow to the largest mode used.
class MttkrpWorkspace {
 public:
  MttkrpWorkspace(const MttkrpOptions& opts, idx_t rank, int order);

  [[nodiscard]] const MttkrpOptions& options() const { return opts_; }
  [[nodiscard]] idx_t rank() const { return rank_; }

  /// Stride (in values) of every length-rank scratch row and of the
  /// privatized buffers: rank rounded up to a cache line, matching
  /// la::Matrix::ld() for a rank-column matrix.
  [[nodiscard]] idx_t rank_stride() const {
    return static_cast<idx_t>(slot_stride_);
  }

  /// Per-thread scratch row (length rank). Slots 0..order-1 hold path
  /// products, order..2*order-1 children sums, and two extra scratch rows
  /// follow; kernels address them through the slot helpers in mttkrp.cpp.
  [[nodiscard]] val_t* accum(int tid, int slot);

  /// The same scratch row reinterpreted at the kernel's accumulator type:
  /// slot bases are 64-byte aligned and rank_stride() doubles hold at
  /// least rank_stride() lanes of any narrower type, so the fp32 kernels
  /// address the identical storage as float rows.
  template <typename A>
  [[nodiscard]] A* accum_as(int tid, int slot) {
    return reinterpret_cast<A*>(accum(tid, slot));
  }

  /// fp32 shadows of the factor matrices for the f32/mixed kernels, one
  /// per mode, refreshed (converted from the fp64 masters) at each launch
  /// by mttkrp_csf_exec for every mode the kernel reads. Entry \p mode
  /// may be stale for the launch's output mode — kernels never read the
  /// output mode's factor.
  std::vector<la::MatrixT<float>>& factor_shadows() { return shadows_; }

  /// The lock pool (constructed with options().lock_kind).
  [[nodiscard]] AnyMutexPool& pool() { return pool_; }

  /// Privatized output buffers sized for >= rows*rank values per thread;
  /// reallocated only when a larger mode is requested. Buffers are zeroed
  /// on each call.
  PrivateBuffers& privatized(idx_t rows);

  /// The strategy chosen by the most recent mttkrp() call (bench
  /// introspection).
  SyncStrategy last_strategy = SyncStrategy::kNone;

 private:
  MttkrpOptions opts_;
  idx_t rank_;
  int order_;
  std::size_t slot_stride_ = 0;       ///< rank rounded up to a cache line
  std::size_t slots_per_thread_ = 0;  ///< 2*order + 2
  aligned_vector<val_t> accum_storage_;
  std::vector<la::MatrixT<float>> shadows_;  ///< f32/mixed factor copies
  AnyMutexPool pool_;
  std::unique_ptr<PrivateBuffers> priv_;
  nnz_t priv_capacity_ = 0;
};

/// Computes the mode-\p mode MTTKRP over a CSF set into \p out
/// (dims[mode] x rank). Selects representation, kernel level, and sync
/// strategy exactly as SPLATT does; applies the workspace's row-access
/// policy inside the kernels. \p out is zeroed first.
void mttkrp(const CsfSet& csf_set, const std::vector<la::Matrix>& factors,
            int mode, la::Matrix& out, MttkrpWorkspace& ws);

/// Single-representation entry point used by tests/benches that want to
/// exercise a specific kernel level: computes the MTTKRP for \p mode which
/// must live at some level of \p csf. Re-derives level, sync strategy, and
/// slice schedule on every call — the planless path; hot loops build an
/// MttkrpPlan (mttkrp/plan.hpp) instead.
void mttkrp_csf(const CsfTensor& csf, const std::vector<la::Matrix>& factors,
                int mode, la::Matrix& out, MttkrpWorkspace& ws);

/// Pure-execution entry point: every decision (kernel level, sync
/// strategy, slice schedule, tile boundaries, kernel width) is precomputed
/// by the caller. This is what MttkrpPlan::execute dispatches to;
/// \p tile_bounds is consulted only by the kTile strategy, and
/// \p kernel_width must be 0 (generic loops) or the value
/// selected_kernel_width() returns for the workspace's rank and options.
void mttkrp_csf_exec(const CsfTensor& csf,
                     const std::vector<la::Matrix>& factors, int mode,
                     int level, SyncStrategy strategy,
                     const SliceSchedule& slices,
                     std::span<const nnz_t> tile_bounds, idx_t kernel_width,
                     la::Matrix& out, MttkrpWorkspace& ws);

/// Reference COO MTTKRP (no CSF), parallelized over nonzero blocks with a
/// mutex pool. The correctness oracle for mid-size inputs and the
/// "no data structure" baseline.
void mttkrp_coo(const SparseTensor& coo,
                const std::vector<la::Matrix>& factors, int mode,
                la::Matrix& out, const MttkrpOptions& opts);

}  // namespace sptd
