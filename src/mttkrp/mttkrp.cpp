#include "mttkrp/mttkrp.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/aligned.hpp"
#include "parallel/partition.hpp"
#include "parallel/team.hpp"

namespace sptd {

namespace {
std::atomic<std::uint64_t> g_choose_sync_strategy_calls{0};
}  // namespace

std::uint64_t choose_sync_strategy_calls() {
  return g_choose_sync_strategy_calls.load(std::memory_order_relaxed);
}

const char* sync_strategy_name(SyncStrategy s) {
  switch (s) {
    case SyncStrategy::kNone:      return "none";
    case SyncStrategy::kLock:      return "lock";
    case SyncStrategy::kPrivatize: return "privatize";
    case SyncStrategy::kTile:      return "tile";
  }
  return "?";
}

RowAccess parse_row_access(const std::string& name) {
  if (name == "slice") return RowAccess::kSlice;
  if (name == "2d" || name == "index2d") return RowAccess::kIndex2D;
  if (name == "pointer") return RowAccess::kPointer;
  throw Error("unknown row access '" + name + "' (expected slice|2d|pointer)");
}

const char* row_access_name(RowAccess ra) {
  switch (ra) {
    case RowAccess::kSlice:   return "slice";
    case RowAccess::kIndex2D: return "2d";
    case RowAccess::kPointer: return "pointer";
  }
  return "?";
}

idx_t selected_kernel_width(idx_t rank, const MttkrpOptions& opts) {
  if (!opts.use_fixed_kernels || opts.row_access != RowAccess::kPointer) {
    return 0;
  }
  return la::kern::fixed_width_for(rank);
}

SyncStrategy choose_sync_strategy(const dims_t& dims, int out_mode, int level,
                                  nnz_t nnz, const MttkrpOptions& opts) {
  g_choose_sync_strategy_calls.fetch_add(1, std::memory_order_relaxed);
  if (level == 0 || opts.nthreads == 1) {
    return SyncStrategy::kNone;
  }
  if (opts.force_locks) {
    return SyncStrategy::kLock;
  }
  // Tiling applies to leaf kernels only: upper levels would need 2-D
  // tiling to keep both the walk and the writes partitioned.
  if (opts.use_tiling &&
      level == static_cast<int>(dims.size()) - 1) {
    return SyncStrategy::kTile;
  }
  if (opts.allow_privatization) {
    const double replicated =
        static_cast<double>(dims[static_cast<std::size_t>(out_mode)]) *
        static_cast<double>(opts.nthreads);
    if (replicated <= opts.privatization_threshold *
                          static_cast<double>(nnz)) {
      return SyncStrategy::kPrivatize;
    }
  }
  return SyncStrategy::kLock;
}

MttkrpWorkspace::MttkrpWorkspace(const MttkrpOptions& opts, idx_t rank,
                                 int order)
    : opts_(opts), rank_(rank), order_(order), pool_(opts.lock_kind) {
  SPTD_CHECK(opts.nthreads >= 1, "MttkrpWorkspace: nthreads must be >= 1");
  SPTD_CHECK(rank >= 1, "MttkrpWorkspace: rank must be >= 1");
  // Checked here, before the unsigned cast at the SliceSchedule call
  // sites, so a negative value cannot wrap into a huge chunk target.
  SPTD_CHECK(opts.chunk_target >= 1,
             "MttkrpWorkspace: chunk_target must be >= 1");
  // Slots per thread: path products (order), children sums (order), plus
  // two scratch rows; each slot padded to a cache line boundary. The
  // storage itself is cache-line aligned, so every slot satisfies the
  // fixed-width kernels' alignment contract.
  slot_stride_ = static_cast<std::size_t>(la::kern::padded_cols(rank));
  slots_per_thread_ = 2 * static_cast<std::size_t>(order) + 2;
  accum_storage_.assign(static_cast<std::size_t>(opts.nthreads) *
                            slots_per_thread_ * slot_stride_,
                        val_t{0});
}

val_t* MttkrpWorkspace::accum(int tid, int slot) {
  SPTD_DCHECK(tid >= 0 && tid < opts_.nthreads, "accum: bad tid");
  SPTD_DCHECK(slot >= 0 &&
                  static_cast<std::size_t>(slot) < slots_per_thread_,
              "accum: bad slot");
  return accum_storage_.data() +
         (static_cast<std::size_t>(tid) * slots_per_thread_ +
          static_cast<std::size_t>(slot)) *
             slot_stride_;
}

PrivateBuffers& MttkrpWorkspace::privatized(idx_t rows) {
  // Rows are laid out at the padded rank stride so replicated rows share
  // the output matrix's leading dimension (and its alignment).
  const nnz_t need = static_cast<nnz_t>(rows) * rank_stride();
  if (!priv_ || priv_capacity_ < need) {
    priv_ = std::make_unique<PrivateBuffers>(opts_.nthreads, need);
    priv_capacity_ = need;
  }
  return *priv_;
}

namespace {

// ---------------------------------------------------------------------
// CSF index views: which integer types the kernels stream.
//
// The compressed CSF stores each level's index streams at the narrowest
// width that covers it (csf.hpp). The kernels below are templated on a
// view V so the per-nonzero streams — the leaf fid array and the deepest
// fptr array, which together carry nearly all index bytes — are walked at
// their stored width with typed loads. The small upper-level streams (one
// read per fiber or per root slice) go through the width-erased stream
// refs, whose predictable 3-way switch is noise next to the factor-row
// gathers. mttkrp_csf_exec selects the view instantiation once per kernel
// launch, exactly like it selects the kernel width and sync strategy.
// ---------------------------------------------------------------------

template <typename LeafFids, typename DeepFptr>
struct CsfView {
  LeafFids leaf{};          ///< fids at level order-1, one entry per nnz
  DeepFptr deep_fptr{};     ///< fptr at level order-2 (indexes nonzeros)
  std::array<FidStreamRef, kMaxOrder> fids{};   ///< width-erased, per level
  std::array<PtrStreamRef, kMaxOrder> fptr{};   ///< width-erased, 0..order-2
};

template <typename T>
const T* typed_fid_stream(const CsfTensor& csf, int level) {
  const FidStreamRef s = csf.fid_stream(level);
  SPTD_CHECK(s.width == sizeof(T), "typed_fid_stream: width mismatch");
  return static_cast<const T*>(s.base);
}

template <typename T>
const T* typed_ptr_stream(const CsfTensor& csf, int level) {
  const PtrStreamRef s = csf.ptr_stream(level);
  SPTD_CHECK(s.width == sizeof(T), "typed_ptr_stream: width mismatch");
  return static_cast<const T*>(s.base);
}

template <typename FidT, typename PtrT>
CsfView<const FidT*, const PtrT*> make_typed_view(const CsfTensor& csf) {
  CsfView<const FidT*, const PtrT*> view;
  const int order = csf.order();
  view.leaf = typed_fid_stream<FidT>(csf, order - 1);
  view.deep_fptr = typed_ptr_stream<PtrT>(csf, order - 2);
  const CsfStreamRefs refs = csf.stream_refs();
  view.fids = refs.fids;
  view.fptr = refs.fptr;
  return view;
}

CsfView<FidStreamRef, PtrStreamRef> make_erased_view(const CsfTensor& csf) {
  CsfView<FidStreamRef, PtrStreamRef> view;
  const int order = csf.order();
  const CsfStreamRefs refs = csf.stream_refs();
  view.fids = refs.fids;
  view.fptr = refs.fptr;
  view.leaf = view.fids[static_cast<std::size_t>(order - 1)];
  view.deep_fptr = view.fptr[static_cast<std::size_t>(order - 2)];
  return view;
}

/// lower_bound over an index stream (the tiled kernel's tile narrowing).
template <typename S>
nnz_t stream_lower_bound(S s, nnz_t lo, nnz_t hi, idx_t value) {
  while (lo < hi) {
    const nnz_t mid = lo + (hi - lo) / 2;
    if (s[mid] < value) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// ---------------------------------------------------------------------
// Kernel bundles: the arithmetic of every length-R inner loop.
//
// The CSF kernels below are templated on a bundle K instead of a raw
// row-access policy. GenericKern<RA> reproduces the per-element semantics
// of the paper's three row-access idioms (slice / 2d / pointer) with a
// runtime trip count — the ablation benches depend on those access costs
// staying visible. FixedKern<R> is the optimized path: pointer access,
// compile-time trip count, restrict + 64-byte-aligned primitives from
// la/kernels.hpp. selected_kernel_width() decides which bundle runs.
// Index-stream parameters (Fids / the view V) are generic indexables so
// one bundle serves every storage width.
//
// Both bundles carry the precision axis as (StoreT, AccumT) template
// parameters, defaulted to (val_t, val_t) so f64 runs see the identical
// instantiations as before the axis existed. StoreT is the streamed side
// (factor rows and CSF values — fp32 shadows under f32/mixed); AccumT is
// every scratch accumulator's type (fp64 under mixed, fp32 under f32).
// Products widen to AccumT before accumulating; deposits into the fp64
// output widen at the sink. Sinks read the types off the bundle as
// K::Store / K::Accum.
// ---------------------------------------------------------------------

/// Runtime-rank bundle over a row-access policy's handles.
template <typename RA, typename StoreT = val_t, typename AccumT = val_t>
struct GenericKern {
  static constexpr idx_t kWidth = 0;
  using Store = StoreT;
  using Accum = AccumT;
  using StoreMat = la::MatrixT<StoreT>;

  /// cs[r] += v * f(i, r)
  static void leaf_accum(AccumT* cs, const StoreMat& f, idx_t i, StoreT v,
                         idx_t rank) {
    const auto row = RA::row(f, i);
    for (idx_t r = 0; r < rank; ++r) {
      cs[r] += static_cast<AccumT>(v) * static_cast<AccumT>(row.get(r));
    }
  }

  /// cs += sum over x in [begin, end) of vals[x] * F(fids[x], :)
  template <typename Fids>
  static void fiber_accum(AccumT* cs, std::span<const StoreT> vals,
                          Fids fids, nnz_t begin,
                          nnz_t end, const StoreMat& f, idx_t rank) {
    for (nnz_t x = begin; x < end; ++x) {
      leaf_accum(cs, f, fids[x], vals[x], rank);
    }
  }

  /// dst[r] += f(i, r) * cs[r]
  static void hadamard_accum_row(AccumT* dst, const StoreMat& f, idx_t i,
                                 const AccumT* cs, idx_t rank) {
    const auto row = RA::row(f, i);
    for (idx_t r = 0; r < rank; ++r) {
      dst[r] += static_cast<AccumT>(row.get(r)) * cs[r];
    }
  }

  /// mine[r] = parent[r] * f(i, r)
  static void path_mul(AccumT* mine, const AccumT* parent,
                       const StoreMat& f, idx_t i, idx_t rank) {
    const auto row = RA::row(f, i);
    for (idx_t r = 0; r < rank; ++r) {
      mine[r] = parent[r] * static_cast<AccumT>(row.get(r));
    }
  }

  /// p0[r] = f(i, r)
  static void path_load(AccumT* p0, const StoreMat& f, idx_t i,
                        idx_t rank) {
    const auto row = RA::row(f, i);
    for (idx_t r = 0; r < rank; ++r) {
      p0[r] = static_cast<AccumT>(row.get(r));
    }
  }

  /// dst[r] = v * src[r]
  static void scale(AccumT* dst, StoreT v, const AccumT* src, idx_t rank) {
    for (idx_t r = 0; r < rank; ++r) {
      dst[r] = static_cast<AccumT>(v) * src[r];
    }
  }

  /// dst[r] = a[r] * b[r]
  static void mul(AccumT* dst, const AccumT* a, const AccumT* b,
                  idx_t rank) {
    for (idx_t r = 0; r < rank; ++r) {
      dst[r] = a[r] * b[r];
    }
  }

  /// out(i, :) += vec — the sink deposit, through the RA handle so the
  /// access idiom under study is charged on writes too. The output is
  /// always fp64: fp32 accumulators widen here.
  static void row_add(la::Matrix& out, idx_t i, const AccumT* vec,
                      idx_t rank) {
    const auto handle = RA::row(out, i);
    for (idx_t r = 0; r < rank; ++r) {
      handle.add(r, static_cast<val_t>(vec[r]));
    }
  }

  /// dst[r] += vec[r] (privatized deposit; raw fp64 rows, no RA handle).
  static void vec_add(val_t* dst, const AccumT* vec, idx_t rank) {
    for (idx_t r = 0; r < rank; ++r) {
      dst[r] += static_cast<val_t>(vec[r]);
    }
  }

  /// dst += fl(i, :) ⊙ (sum of the bottom fiber [begin, end)) — the seed
  /// sequence: zero the scratch row, accumulate the fiber into it,
  /// multiply-accumulate into dst.
  template <typename Fids>
  static void pullup_hadamard(AccumT* dst, const StoreMat& fl, idx_t i,
                              std::span<const StoreT> vals,
                              Fids fids, nnz_t begin,
                              nnz_t end, const StoreMat& leaf, AccumT* cs,
                              idx_t rank) {
    std::memset(cs, 0, static_cast<std::size_t>(rank) * sizeof(AccumT));
    fiber_accum(cs, vals, fids, begin, end, leaf, rank);
    hadamard_accum_row(dst, fl, i, cs, rank);
  }

  /// dst = path ⊙ (sum of the bottom fiber [begin, end)) — the internal
  /// kernel's leaf case, seed sequence.
  template <typename Fids>
  static void pullup_mul(AccumT* dst, const AccumT* path,
                         std::span<const StoreT> vals,
                         Fids fids, nnz_t begin, nnz_t end,
                         const StoreMat& leaf, AccumT* cs, idx_t rank) {
    std::memset(cs, 0, static_cast<std::size_t>(rank) * sizeof(AccumT));
    fiber_accum(cs, vals, fids, begin, end, leaf, rank);
    mul(dst, path, cs, rank);
  }

  /// out(i, :) += v * vec — through the scratch row then the RA handle
  /// (the seed's two-pass deposit, kept as the ablation baseline).
  static void deposit_scaled(la::Matrix& out, idx_t i, StoreT v,
                             const AccumT* vec, AccumT* tmp, idx_t rank) {
    scale(tmp, v, vec, rank);
    row_add(out, i, tmp, rank);
  }

  /// dst[r] += v * vec[r] into a raw (privatized) row, seed sequence.
  static void vec_deposit_scaled(val_t* dst, StoreT v, const AccumT* vec,
                                 AccumT* tmp, idx_t rank) {
    scale(tmp, v, vec, rank);
    vec_add(dst, tmp, rank);
  }

  /// fiber[r] = sum of the bottom fiber [begin, end) — the internal
  /// kernel's pull-up half, seed sequence (zero + accumulate in memory).
  template <typename Fids>
  static void fiber_sum(AccumT* fiber, std::span<const StoreT> vals,
                        Fids fids, nnz_t begin, nnz_t end,
                        const StoreMat& leaf, idx_t rank) {
    std::memset(fiber, 0, static_cast<std::size_t>(rank) * sizeof(AccumT));
    fiber_accum(fiber, vals, fids, begin, end, leaf, rank);
  }

  /// out(i, :) += a ⊙ b — through the scratch row then the RA handle
  /// (seed sequence).
  static void deposit_mul(la::Matrix& out, idx_t i, const AccumT* a,
                          const AccumT* b, AccumT* tmp, idx_t rank) {
    mul(tmp, a, b, rank);
    row_add(out, i, tmp, rank);
  }

  /// dst[r] += a[r] * b[r] into a raw (privatized) row, seed sequence.
  static void vec_deposit_mul(val_t* dst, const AccumT* a, const AccumT* b,
                              AccumT* tmp, idx_t rank) {
    mul(tmp, a, b, rank);
    vec_add(dst, tmp, rank);
  }

  /// One third-order internal-kernel fiber: sum the bottom fiber into the
  /// scratch row, multiply by the path, deposit through the sink — the
  /// seed sequence.
  template <typename Sink, typename Fids>
  static void internal_fiber3(const Sink& sink, idx_t out_row,
                              const AccumT* path,
                              std::span<const StoreT> vals,
                              Fids fids, nnz_t begin,
                              nnz_t end, nnz_t /*prefetch_horizon*/,
                              const StoreMat& leaf, AccumT* cs,
                              AccumT* tmp, idx_t rank) {
    fiber_sum(cs, vals, fids, begin, end, leaf, rank);
    sink.add_mul(out_row, path, cs, tmp, rank);
  }

  /// Output-row prefetch ahead of a deposit loop: a no-op on the seed
  /// path (the baseline stays untouched).
  template <typename Sink>
  static void sink_prefetch(const Sink&, idx_t) {}

  /// One third-order root slice into the acc row: seed sequence, one
  /// pull-up per child fiber with the accumulator in memory.
  template <typename V>
  static void root_slice3(AccumT* acc, const V& view,
                          std::span<const StoreT> vals,
                          const StoreMat& f1, const StoreMat& f2,
                          nnz_t c0, nnz_t c1, AccumT* cs, idx_t rank) {
    std::memset(acc, 0, static_cast<std::size_t>(rank) * sizeof(AccumT));
    const auto fids1 = view.fids[1];
    for (nnz_t c = c0; c < c1; ++c) {
      pullup_hadamard(acc, f1, fids1[c], vals, view.leaf,
                      view.deep_fptr[c], view.deep_fptr[c + 1], f2, cs,
                      rank);
    }
  }
};

/// Compile-time-rank bundle: pointer row access over the aligned padded
/// layout, dispatching to the la::kern fixed-width primitives. The
/// (StoreT, AccumT) axis mirrors GenericKern: (val_t, val_t) is the exact
/// pre-precision instantiation, (float, val_t) the mixed bundle (fp32
/// streams, fp64 registers), (float, float) the f32 bundle. Float factor
/// matrices pad rows to 16-lane (64-byte) multiples, which is never less
/// than the 8-lane double padding the width R was chosen from, so the
/// R-wide loops always stay inside a shadow row.
template <idx_t R, typename StoreT = val_t, typename AccumT = val_t>
struct FixedKern {
  static constexpr idx_t kWidth = R;
  using Store = StoreT;
  using Accum = AccumT;
  using StoreMat = la::MatrixT<StoreT>;

  static void leaf_accum(AccumT* cs, const StoreMat& f, idx_t i, StoreT v,
                         idx_t) {
    la::kern::axpy_r<R>(cs, f.row_ptr(i), static_cast<AccumT>(v));
  }

  template <typename Fids>
  static void fiber_accum(AccumT* cs, std::span<const StoreT> vals,
                          Fids fids, nnz_t begin,
                          nnz_t end, const StoreMat& f, idx_t) {
    la::kern::fiber_accum_r<R>(cs, vals.data(), fids, begin, end,
                               f.data(), f.ld());
  }

  static void hadamard_accum_row(AccumT* dst, const StoreMat& f, idx_t i,
                                 const AccumT* cs, idx_t) {
    la::kern::hadamard_accum_r<R>(dst, f.row_ptr(i), cs);
  }

  static void path_mul(AccumT* mine, const AccumT* parent,
                       const StoreMat& f, idx_t i, idx_t) {
    la::kern::mul_r<R>(mine, parent, f.row_ptr(i));
  }

  static void path_load(AccumT* p0, const StoreMat& f, idx_t i, idx_t) {
    la::kern::copy_r<R>(p0, f.row_ptr(i));
  }

  static void scale(AccumT* dst, StoreT v, const AccumT* src, idx_t) {
    la::kern::scale_r<R>(dst, src, static_cast<AccumT>(v));
  }

  static void mul(AccumT* dst, const AccumT* a, const AccumT* b, idx_t) {
    la::kern::mul_r<R>(dst, a, b);
  }

  static void row_add(la::Matrix& out, idx_t i, const AccumT* vec, idx_t) {
    la::kern::add_r<R>(out.row_ptr(i), vec);
  }

  static void vec_add(val_t* dst, const AccumT* vec, idx_t) {
    la::kern::add_r<R>(dst, vec);
  }

  template <typename Fids>
  static void pullup_hadamard(AccumT* dst, const StoreMat& fl, idx_t i,
                              std::span<const StoreT> vals,
                              Fids fids, nnz_t begin,
                              nnz_t end, const StoreMat& leaf, AccumT*,
                              idx_t) {
    la::kern::fiber_pullup_hadamard_r<R, AccumT>(
        dst, fl.row_ptr(i), vals.data(), fids, begin, end, leaf.data(),
        leaf.ld(), end);
  }

  template <typename Fids>
  static void pullup_mul(AccumT* dst, const AccumT* path,
                         std::span<const StoreT> vals,
                         Fids fids, nnz_t begin, nnz_t end,
                         const StoreMat& leaf, AccumT*, idx_t) {
    la::kern::fiber_pullup_mul_r<R, AccumT>(dst, path, vals.data(), fids,
                                            begin, end, leaf.data(),
                                            leaf.ld(), end);
  }

  /// Fused deposit: no scratch-row round trip.
  static void deposit_scaled(la::Matrix& out, idx_t i, StoreT v,
                             const AccumT* vec, AccumT*, idx_t) {
    la::kern::axpy_r<R>(out.row_ptr(i), vec, static_cast<AccumT>(v));
  }

  static void vec_deposit_scaled(val_t* dst, StoreT v, const AccumT* vec,
                                 AccumT*, idx_t) {
    la::kern::axpy_r<R>(dst, vec, static_cast<AccumT>(v));
  }

  template <typename Fids>
  static void fiber_sum(AccumT* fiber, std::span<const StoreT> vals,
                        Fids fids, nnz_t begin, nnz_t end,
                        const StoreMat& leaf, idx_t) {
    std::memset(fiber, 0, R * sizeof(AccumT));
    la::kern::fiber_accum_r<R>(fiber, vals.data(), fids, begin, end,
                               leaf.data(), leaf.ld());
  }

  /// Fused deposit: out(i, :) += a ⊙ b, no scratch-row round trip.
  static void deposit_mul(la::Matrix& out, idx_t i, const AccumT* a,
                          const AccumT* b, AccumT*, idx_t) {
    la::kern::hadamard_accum_r<R>(out.row_ptr(i), a, b);
  }

  static void vec_deposit_mul(val_t* dst, const AccumT* a, const AccumT* b,
                              AccumT*, idx_t) {
    la::kern::hadamard_accum_r<R>(dst, a, b);
  }

  /// Fused third-order internal fiber: the fiber sum stays in registers
  /// and lands directly on the (sink-resolved) output row — no scratch
  /// traffic at all.
  template <typename Sink, typename Fids>
  static void internal_fiber3(const Sink& sink, idx_t out_row,
                              const AccumT* path,
                              std::span<const StoreT> vals,
                              Fids fids, nnz_t begin,
                              nnz_t end, nnz_t prefetch_horizon,
                              const StoreMat& leaf, AccumT* cs,
                              AccumT* /*tmp*/, idx_t rank) {
    if constexpr (requires { sink.with_row(out_row, [](val_t*) {}); }) {
      // Unsynchronized destination: fuse the fiber sum straight into the
      // (always-fp64) output row, no scratch traffic.
      sink.with_row(out_row, [&](val_t* dst) {
        la::kern::fiber_pullup_hadamard_r<R, AccumT>(
            dst, path, vals.data(), fids, begin, end, leaf.data(),
            leaf.ld(), prefetch_horizon);
      });
    } else {
      // Locked destination: compute outside the critical section and
      // hand the sink a finished row (keeps the lock hold time at the
      // seed's length-R add).
      la::kern::fiber_pullup_mul_r<R, AccumT>(cs, path, vals.data(), fids,
                                              begin, end, leaf.data(),
                                              leaf.ld(), prefetch_horizon);
      sink.add(out_row, cs, rank);
    }
  }

  /// Prefetch the sink's destination row for an upcoming deposit.
  template <typename Sink>
  static void sink_prefetch(const Sink& sink, idx_t row) {
    sink.prefetch(row);
  }

  /// Fully register-blocked third-order root slice.
  template <typename V>
  static void root_slice3(AccumT* acc, const V& view,
                          std::span<const StoreT> vals,
                          const StoreMat& f1, const StoreMat& f2,
                          nnz_t c0, nnz_t c1, AccumT*, idx_t) {
    la::kern::root_slice3_r<R, AccumT>(acc, view.fids[1], vals.data(),
                                       view.leaf, view.deep_fptr, c0, c1,
                                       f1.data(), f1.ld(), f2.data(),
                                       f2.ld());
  }
};

// ---------------------------------------------------------------------
// Output sinks: how a kernel deposits a length-R contribution row.
// ---------------------------------------------------------------------

/// Unsynchronized write into the real output matrix (root kernel, or any
/// kernel on one thread). Sinks take the kernel bundle's accumulator type
/// on their vector arguments and widen to the fp64 output inside the
/// bundle's deposit primitives; the output matrix itself is always fp64.
template <typename K>
struct DirectSink {
  using A = typename K::Accum;
  using S = typename K::Store;
  la::Matrix* out;
  void add(idx_t row, const A* vec, idx_t rank) const {
    K::row_add(*out, row, vec, rank);
  }
  void add_scaled(idx_t row, S v, const A* vec, A* tmp,
                  idx_t rank) const {
    K::deposit_scaled(*out, row, v, vec, tmp, rank);
  }
  void add_mul(idx_t row, const A* a, const A* b, A* tmp,
               idx_t rank) const {
    K::deposit_mul(*out, row, a, b, tmp, rank);
  }
  /// Runs fn(dst) on output row \p row under this sink's synchronization
  /// (none here). dst is the raw 64-byte-aligned row base.
  template <typename Fn>
  void with_row(idx_t row, Fn&& fn) const {
    fn(out->row_ptr(row));
  }
  /// Hints an upcoming deposit to row \p row (write intent).
  void prefetch(idx_t row) const {
    __builtin_prefetch(out->row_ptr(row), 1, 3);
  }
};

/// Mutex-pool-guarded write (the paper's lock study).
template <typename K>
struct LockedSink {
  using A = typename K::Accum;
  using S = typename K::Store;
  la::Matrix* out;
  AnyMutexPool* pool;
  void add(idx_t row, const A* vec, idx_t rank) const {
    pool->lock(row);
    K::row_add(*out, row, vec, rank);
    pool->unlock(row);
  }
  // The fused deposits compute into the scratch row OUTSIDE the lock so
  // the critical section stays the seed's length-R add — the paper's
  // lock study measures deposit cost, not upstream arithmetic. For the
  // same reason this sink does not expose with_row (which would drag the
  // caller's whole computation into the critical section).
  void add_scaled(idx_t row, S v, const A* vec, A* tmp,
                  idx_t rank) const {
    K::scale(tmp, v, vec, rank);
    add(row, tmp, rank);
  }
  void add_mul(idx_t row, const A* a, const A* b, A* tmp,
               idx_t rank) const {
    K::mul(tmp, a, b, rank);
    add(row, tmp, rank);
  }
  void prefetch(idx_t row) const {
    __builtin_prefetch(out->row_ptr(row), 1, 3);
  }
};

/// Per-thread privatized replica write: each thread's sink resolves its
/// own buffer, laid out at the output's padded stride. The kernels hand
/// one sink to every thread, so resolution happens per call.
template <typename K>
struct ThreadPrivSink {
  using A = typename K::Accum;
  using S = typename K::Store;
  PrivateBuffers* priv;
  idx_t stride;
  void add(idx_t row, const A* vec, idx_t rank) const {
    K::vec_add(resolve(row), vec, rank);
  }
  void add_scaled(idx_t row, S v, const A* vec, A* tmp,
                  idx_t rank) const {
    K::vec_deposit_scaled(resolve(row), v, vec, tmp, rank);
  }
  void add_mul(idx_t row, const A* a, const A* b, A* tmp,
               idx_t rank) const {
    K::vec_deposit_mul(resolve(row), a, b, tmp, rank);
  }
  template <typename Fn>
  void with_row(idx_t row, Fn&& fn) const {
    fn(resolve(row));
  }
  /// No-op: resolving the replica costs a TLS lookup per call, and the
  /// thread's own recently-written rows are usually cache-resident
  /// anyway — a prefetch here is all overhead.
  void prefetch(idx_t) const {}

 private:
  val_t* resolve(idx_t row) const {
    return priv->buffer(current_thread_id()).data() +
           static_cast<std::size_t>(row) * stride;
  }
};

// ---------------------------------------------------------------------
// Kernel context: CSF arrays + factors arranged by tree level.
// ---------------------------------------------------------------------

template <typename V, typename StoreT = val_t>
struct KernelCtx {
  const CsfTensor* csf;
  V view;
  /// The value stream the kernels read: csf->vals() under f64, the fp32
  /// copy under f32/mixed. Kernels never touch csf->vals() directly.
  std::span<const StoreT> vals;
  std::vector<const la::MatrixT<StoreT>*> factor_at_level;
  idx_t rank;
  MttkrpWorkspace* ws;
};

/// Slot layout inside the workspace accumulators.
inline int path_slot(int level) { return level; }
template <typename Ctx>
inline int cs_slot(const Ctx& ctx, int level) {
  return ctx.csf->order() + level;
}
template <typename Ctx>
inline int extra_slot(const Ctx& ctx, int which) {
  return 2 * ctx.csf->order() + which;
}

/// Accumulates G(f, l) into dst, where
///   G(leaf x)    = vals[x] * F_leaf(fids[x], :)
///   G(fiber f,l) = F_l(fids_l[f], :) ⊙ sum_children G(child, l+1).
/// This is the "pull up" half of the CSF MTTKRP (Smith & Karypis).
template <typename K, typename Ctx>
void accumulate_g(const Ctx& ctx, int l, nnz_t f, typename K::Accum* dst,
                  int tid) {
  using A = typename K::Accum;
  const CsfTensor& csf = *ctx.csf;
  const idx_t rank = ctx.rank;
  const int order = csf.order();

  if (l == order - 1) {
    // f is a nonzero.
    K::leaf_accum(dst, *ctx.factor_at_level[static_cast<std::size_t>(l)],
                  ctx.view.leaf[f], ctx.vals[f], rank);
    return;
  }

  const auto fids = ctx.view.fids[static_cast<std::size_t>(l)];
  A* cs = ctx.ws->template accum_as<A>(tid, cs_slot(ctx, l));

  if (l == order - 2) {
    // Children are nonzeros: fuse the leaf loop (the hot inner loop) with
    // the Hadamard deposit; the fixed-width path keeps the fiber sum in
    // registers and never touches the cs scratch row.
    K::pullup_hadamard(dst, *ctx.factor_at_level[static_cast<std::size_t>(l)],
                       fids[f], ctx.vals, ctx.view.leaf,
                       ctx.view.deep_fptr[f], ctx.view.deep_fptr[f + 1],
                       *ctx.factor_at_level[static_cast<std::size_t>(order - 1)],
                       cs, rank);
    return;
  }

  const auto fptr = ctx.view.fptr[static_cast<std::size_t>(l)];
  std::memset(cs, 0, static_cast<std::size_t>(rank) * sizeof(A));
  for (nnz_t c = fptr[f]; c < fptr[f + 1]; ++c) {
    accumulate_g<K>(ctx, l + 1, c, cs, tid);
  }
  K::hadamard_accum_row(dst,
                        *ctx.factor_at_level[static_cast<std::size_t>(l)],
                        fids[f], cs, rank);
}

/// Root kernel: out(fids0[s], :) += sum_children G(child, 1). Trees are
/// distributed across threads by the precomputed slice schedule; no write
/// conflicts.
template <typename K, typename Ctx, typename Sink>
void kernel_root(const Ctx& ctx, const Sink& sink,
                 const SliceSchedule& slices, int nthreads) {
  using A = typename K::Accum;
  const CsfTensor& csf = *ctx.csf;
  const idx_t rank = ctx.rank;
  const int order = csf.order();

  if (order == 3) {
    // Dedicated third-order kernel (the paper's datasets are all 3-mode,
    // like SPLATT's specialized 3-mode code path): non-recursive, with
    // the CSF arrays and factors hoisted out of the per-fiber work.
    parallel_region(nthreads, [&](int tid, int) {
      const auto fids0 = ctx.view.fids[0];
      const auto fptr0 = ctx.view.fptr[0];
      const auto vals = ctx.vals;
      const auto& f1 = *ctx.factor_at_level[1];
      const auto& f2 = *ctx.factor_at_level[2];
      A* acc = ctx.ws->template accum_as<A>(tid, extra_slot(ctx, 0));
      A* cs = ctx.ws->template accum_as<A>(tid, cs_slot(ctx, 1));
      slices.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
        for (nnz_t s = begin; s < end; ++s) {
          K::root_slice3(acc, ctx.view, vals, f1, f2, fptr0[s],
                         fptr0[s + 1], cs, rank);
          sink.add(fids0[s], acc, rank);
        }
      });
    });
    return;
  }

  parallel_region(nthreads, [&](int tid, int) {
    const auto fids0 = ctx.view.fids[0];
    const auto fptr0 = ctx.view.fptr[0];
    A* acc = ctx.ws->template accum_as<A>(tid, extra_slot(ctx, 0));
    slices.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
      for (nnz_t s = begin; s < end; ++s) {
        std::memset(acc, 0, static_cast<std::size_t>(rank) * sizeof(A));
        for (nnz_t c = fptr0[s]; c < fptr0[s + 1]; ++c) {
          accumulate_g<K>(ctx, 1, c, acc, tid);
        }
        sink.add(fids0[s], acc, rank);
      }
    });
  });
}

/// Leaf kernel: push path products down, deposit at nonzeros:
///   out(leaf_fid, :) += val * (F_0 row ⊙ ... ⊙ F_{N-2} row).
template <typename K, typename Ctx, typename Sink>
void kernel_leaf(const Ctx& ctx, const Sink& sink,
                 const SliceSchedule& slices, int nthreads) {
  using A = typename K::Accum;
  const CsfTensor& csf = *ctx.csf;
  const idx_t rank = ctx.rank;
  const int order = csf.order();

  if (order == 3) {
    // Dedicated third-order kernel: push the two-level path product down
    // and deposit per nonzero, no recursion.
    parallel_region(nthreads, [&](int tid, int) {
      const auto fids0 = ctx.view.fids[0];
      const auto fids1 = ctx.view.fids[1];
      const auto leaf_fids = ctx.view.leaf;
      const auto fptr0 = ctx.view.fptr[0];
      const auto fptr1 = ctx.view.deep_fptr;
      const auto vals = ctx.vals;
      const auto& f0 = *ctx.factor_at_level[0];
      const auto& f1 = *ctx.factor_at_level[1];
      A* p0 = ctx.ws->template accum_as<A>(tid, path_slot(0));
      A* mine = ctx.ws->template accum_as<A>(tid, path_slot(1));
      A* tmp = ctx.ws->template accum_as<A>(tid, extra_slot(ctx, 1));
      slices.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
        for (nnz_t s = begin; s < end; ++s) {
          K::path_load(p0, f0, fids0[s], rank);
          // The slice's nonzeros are contiguous: run output-row
          // prefetches ahead of the deposits (no-op on the seed path).
          const nnz_t x_horizon = fptr1[fptr0[s + 1]];
          for (nnz_t c = fptr0[s]; c < fptr0[s + 1]; ++c) {
            K::path_mul(mine, p0, f1, fids1[c], rank);
            for (nnz_t x = fptr1[c]; x < fptr1[c + 1]; ++x) {
              if (x + la::kern::kGatherPrefetch < x_horizon) {
                K::sink_prefetch(
                    sink, leaf_fids[x + la::kern::kGatherPrefetch]);
              }
              sink.add_scaled(leaf_fids[x], vals[x], mine, tmp, rank);
            }
          }
        }
      });
    });
    return;
  }

  // Recursive descent writing path products into per-level slots.
  struct Walker {
    const Ctx& ctx;
    const Sink& sink;
    int tid;

    void descend(int l, nnz_t f) const {
      const CsfTensor& csf = *ctx.csf;
      const idx_t rank = ctx.rank;
      const int order = csf.order();
      const A* parent = ctx.ws->template accum_as<A>(tid, path_slot(l - 1));
      A* mine = ctx.ws->template accum_as<A>(tid, path_slot(l));
      K::path_mul(mine, parent,
                  *ctx.factor_at_level[static_cast<std::size_t>(l)],
                  ctx.view.fids[static_cast<std::size_t>(l)][f], rank);
      if (l == order - 2) {
        // Children are the nonzeros: deposit.
        const auto vals = ctx.vals;
        A* tmp = ctx.ws->template accum_as<A>(tid, extra_slot(ctx, 1));
        for (nnz_t x = ctx.view.deep_fptr[f]; x < ctx.view.deep_fptr[f + 1];
             ++x) {
          sink.add_scaled(ctx.view.leaf[x], vals[x], mine, tmp, rank);
        }
      } else {
        const auto fptr = ctx.view.fptr[static_cast<std::size_t>(l)];
        for (nnz_t c = fptr[f]; c < fptr[f + 1]; ++c) {
          descend(l + 1, c);
        }
      }
    }
  };

  parallel_region(nthreads, [&](int tid, int) {
    const auto fids0 = ctx.view.fids[0];
    const Walker walker{ctx, sink, tid};
    A* p0 = ctx.ws->template accum_as<A>(tid, path_slot(0));
    slices.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
      for (nnz_t s = begin; s < end; ++s) {
        K::path_load(p0, *ctx.factor_at_level[0], fids0[s], rank);
        if (order == 2) {
          // Root's children are the nonzeros.
          const auto vals = ctx.vals;
          A* tmp = ctx.ws->template accum_as<A>(tid, extra_slot(ctx, 1));
          for (nnz_t x = ctx.view.deep_fptr[s]; x < ctx.view.deep_fptr[s + 1];
               ++x) {
            sink.add_scaled(ctx.view.leaf[x], vals[x], p0, tmp, rank);
          }
        } else {
          const auto fptr0 = ctx.view.fptr[0];
          for (nnz_t c = fptr0[s]; c < fptr0[s + 1]; ++c) {
            walker.descend(1, c);
          }
        }
      }
    });
  });
}

/// Tiled leaf kernel (SPLATT's tiling alternative): the leaf-mode index
/// space is split into per-thread tiles weighted by leaf frequency; every
/// thread walks the whole forest but deposits only leaves inside its own
/// tile. Writes are conflict-free (DirectSink); the price is replicated
/// path-product work at the upper levels.
template <typename K, typename Ctx>
void kernel_leaf_tiled(const Ctx& ctx, la::Matrix& out,
                       std::span<const nnz_t> tile_bounds, int nthreads) {
  using A = typename K::Accum;
  const CsfTensor& csf = *ctx.csf;
  const idx_t rank = ctx.rank;
  const int order = csf.order();
  const auto leaf_fids = ctx.view.leaf;

  const DirectSink<K> sink{&out};
  parallel_region(nthreads, [&](int tid, int) {
    const auto lo = static_cast<idx_t>(tile_bounds[
        static_cast<std::size_t>(tid)]);
    const auto hi = static_cast<idx_t>(tile_bounds[
        static_cast<std::size_t>(tid) + 1]);
    if (lo == hi) {
      return;  // empty tile (more threads than occupied leaf ids)
    }

    // Deposit the in-tile leaves of the bottom fiber [first, last) whose
    // path product lives in `path`.
    const auto vals = ctx.vals;
    A* tmp = ctx.ws->template accum_as<A>(tid, extra_slot(ctx, 1));
    const auto deposit = [&](nnz_t first, nnz_t last, const A* path) {
      // Leaves are sorted within a fiber: narrow to the tile subrange.
      const nnz_t begin = stream_lower_bound(leaf_fids, first, last, lo);
      const nnz_t end = stream_lower_bound(leaf_fids, begin, last, hi);
      for (nnz_t x = begin; x < end; ++x) {
        sink.add_scaled(leaf_fids[x], vals[x], path, tmp, rank);
      }
    };

    struct Walker {
      const Ctx& ctx;
      const decltype(deposit)& leaf_fn;
      int tid;

      void descend(int l, nnz_t f) const {
        const CsfTensor& csf = *ctx.csf;
        const idx_t rank = ctx.rank;
        const int order = csf.order();
        const A* parent =
            ctx.ws->template accum_as<A>(tid, path_slot(l - 1));
        A* mine = ctx.ws->template accum_as<A>(tid, path_slot(l));
        K::path_mul(mine, parent,
                    *ctx.factor_at_level[static_cast<std::size_t>(l)],
                    ctx.view.fids[static_cast<std::size_t>(l)][f], rank);
        if (l == order - 2) {
          leaf_fn(ctx.view.deep_fptr[f], ctx.view.deep_fptr[f + 1], mine);
        } else {
          const auto fptr = ctx.view.fptr[static_cast<std::size_t>(l)];
          for (nnz_t c = fptr[f]; c < fptr[f + 1]; ++c) {
            descend(l + 1, c);
          }
        }
      }
    };

    const auto fids0 = ctx.view.fids[0];
    const Walker walker{ctx, deposit, tid};
    A* p0 = ctx.ws->template accum_as<A>(tid, path_slot(0));
    for (nnz_t s = 0; s < csf.nfibers(0); ++s) {
      K::path_load(p0, *ctx.factor_at_level[0], fids0[s], rank);
      if (order == 2) {
        deposit(ctx.view.deep_fptr[s], ctx.view.deep_fptr[s + 1], p0);
      } else {
        const auto fptr0 = ctx.view.fptr[0];
        for (nnz_t c = fptr0[s]; c < fptr0[s + 1]; ++c) {
          walker.descend(1, c);
        }
      }
    }
  });
}

/// Internal kernel at level L (0 < L < order-1):
///   out(fids_L[f], :) += (F_0 ⊙ ... ⊙ F_{L-1} path) ⊙ sum_children G.
template <typename K, typename Ctx, typename Sink>
void kernel_internal(const Ctx& ctx, const Sink& sink,
                     int out_level, const SliceSchedule& slices,
                     int nthreads) {
  using A = typename K::Accum;
  const CsfTensor& csf = *ctx.csf;
  const idx_t rank = ctx.rank;

  if (csf.order() == 3) {
    // Dedicated third-order kernel (out_level is necessarily 1): root row
    // times bottom-fiber sum, deposited per level-1 fiber, no recursion.
    parallel_region(nthreads, [&](int tid, int) {
      const auto fids0 = ctx.view.fids[0];
      const auto fids1 = ctx.view.fids[1];
      const auto leaf_fids = ctx.view.leaf;
      const auto fptr0 = ctx.view.fptr[0];
      const auto fptr1 = ctx.view.deep_fptr;
      const auto vals = ctx.vals;
      const auto& f0 = *ctx.factor_at_level[0];
      const auto& f2 = *ctx.factor_at_level[2];
      A* p0 = ctx.ws->template accum_as<A>(tid, path_slot(0));
      A* tmp = ctx.ws->template accum_as<A>(tid, extra_slot(ctx, 1));
      A* cs = ctx.ws->template accum_as<A>(tid, cs_slot(ctx, 1));
      slices.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
        for (nnz_t s = begin; s < end; ++s) {
          K::path_load(p0, f0, fids0[s], rank);
          const nnz_t x_horizon = fptr1[fptr0[s + 1]];
          for (nnz_t c = fptr0[s]; c < fptr0[s + 1]; ++c) {
            K::internal_fiber3(sink, fids1[c], p0, vals, leaf_fids,
                               fptr1[c], fptr1[c + 1], x_horizon, f2, cs,
                               tmp, rank);
          }
        }
      });
    });
    return;
  }

  struct Walker {
    const Ctx& ctx;
    const Sink& sink;
    int out_level;
    int tid;

    void descend(int l, nnz_t f) const {
      const CsfTensor& csf = *ctx.csf;
      const idx_t rank = ctx.rank;
      const int order = csf.order();
      if (l == out_level) {
        // Children sum (the pull-up half), excluding F_L itself.
        const A* path = ctx.ws->template accum_as<A>(tid, path_slot(l - 1));
        A* tmp = ctx.ws->template accum_as<A>(tid, extra_slot(ctx, 1));
        A* cs = ctx.ws->template accum_as<A>(tid, cs_slot(ctx, l));
        if (l == order - 2) {
          K::pullup_mul(
              tmp, path, ctx.vals, ctx.view.leaf, ctx.view.deep_fptr[f],
              ctx.view.deep_fptr[f + 1],
              *ctx.factor_at_level[static_cast<std::size_t>(order - 1)],
              cs, rank);
        } else {
          const auto fptr = ctx.view.fptr[static_cast<std::size_t>(l)];
          std::memset(cs, 0,
                      static_cast<std::size_t>(rank) * sizeof(A));
          for (nnz_t c = fptr[f]; c < fptr[f + 1]; ++c) {
            accumulate_g<K>(ctx, l + 1, c, cs, tid);
          }
          K::mul(tmp, path, cs, rank);
        }
        sink.add(ctx.view.fids[static_cast<std::size_t>(l)][f], tmp, rank);
        return;
      }
      // Extend the path product and keep descending.
      const A* parent = ctx.ws->template accum_as<A>(tid, path_slot(l - 1));
      A* mine = ctx.ws->template accum_as<A>(tid, path_slot(l));
      K::path_mul(mine, parent,
                  *ctx.factor_at_level[static_cast<std::size_t>(l)],
                  ctx.view.fids[static_cast<std::size_t>(l)][f], rank);
      const auto fptr = ctx.view.fptr[static_cast<std::size_t>(l)];
      for (nnz_t c = fptr[f]; c < fptr[f + 1]; ++c) {
        descend(l + 1, c);
      }
    }
  };

  parallel_region(nthreads, [&](int tid, int) {
    const auto fids0 = ctx.view.fids[0];
    const auto fptr0 = ctx.view.fptr[0];
    const Walker walker{ctx, sink, out_level, tid};
    A* p0 = ctx.ws->template accum_as<A>(tid, path_slot(0));
    slices.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
      for (nnz_t s = begin; s < end; ++s) {
        K::path_load(p0, *ctx.factor_at_level[0], fids0[s], rank);
        for (nnz_t c = fptr0[s]; c < fptr0[s + 1]; ++c) {
          walker.descend(1, c);
        }
      }
    });
  });
}

/// Runs the level-appropriate kernel with the given sink.
template <typename K, typename Ctx, typename Sink>
void run_kernel(const Ctx& ctx, const Sink& sink, int out_level,
                const SliceSchedule& slices, int nthreads) {
  const int order = ctx.csf->order();
  if (out_level == 0) {
    kernel_root<K>(ctx, sink, slices, nthreads);
  } else if (out_level == order - 1) {
    kernel_leaf<K>(ctx, sink, slices, nthreads);
  } else {
    kernel_internal<K>(ctx, sink, out_level, slices, nthreads);
  }
}

/// Strategy dispatch for one kernel bundle + view.
template <typename K, typename Ctx>
void dispatch_strategy(const Ctx& ctx, la::Matrix& out,
                       int out_mode, int out_level, SyncStrategy strategy,
                       const SliceSchedule& slices,
                       std::span<const nnz_t> tile_bounds,
                       MttkrpWorkspace& ws) {
  const int nthreads = ws.options().nthreads;
  switch (strategy) {
    case SyncStrategy::kNone: {
      out.zero_parallel(nthreads);
      run_kernel<K>(ctx, DirectSink<K>{&out}, out_level, slices, nthreads);
      break;
    }
    case SyncStrategy::kLock: {
      out.zero_parallel(nthreads);
      run_kernel<K>(ctx, LockedSink<K>{&out, &ws.pool()}, out_level,
                    slices, nthreads);
      break;
    }
    case SyncStrategy::kTile: {
      out.zero_parallel(nthreads);
      kernel_leaf_tiled<K>(ctx, out, tile_bounds, nthreads);
      break;
    }
    case SyncStrategy::kPrivatize: {
      const idx_t rows =
          ctx.csf->dims()[static_cast<std::size_t>(out_mode)];
      PrivateBuffers& priv = ws.privatized(rows);
      priv.clear(nthreads);
      run_kernel<K>(ctx, ThreadPrivSink<K>{&priv, ws.rank_stride()},
                    out_level, slices, nthreads);
      out.zero_parallel(nthreads);
      SPTD_DCHECK(out.ld() == ws.rank_stride(),
                  "privatize: output stride mismatch");
      priv.reduce_into(
          {out.data(),
           static_cast<std::size_t>(rows) * out.ld()},
          nthreads);
      break;
    }
  }
}

/// Index-width dispatch for one kernel bundle: selects the typed view the
/// CSF's stored widths admit, once per kernel launch. The per-nonzero
/// streams (leaf fids, deepest fptr) are the dispatch key; every other
/// stream rides the width-erased refs. kNarrowViews gates the narrow
/// instantiations: the fast bundles (FixedKern, generic pointer) get
/// them, the slice/2d ablation bundles run wide-typed or erased to keep
/// their instantiation count (and compile time) down.
template <typename K, bool kNarrowViews, typename StoreT>
void dispatch_views(const CsfTensor& csf,
                    std::span<const StoreT> vals,
                    std::vector<const la::MatrixT<StoreT>*> factor_at_level,
                    idx_t rank, la::Matrix& out, int out_mode,
                    int out_level, SyncStrategy strategy,
                    const SliceSchedule& slices,
                    std::span<const nnz_t> tile_bounds,
                    MttkrpWorkspace& ws) {
  const auto run = [&](auto view) {
    KernelCtx<decltype(view), StoreT> ctx{&csf, std::move(view), vals,
                                          std::move(factor_at_level), rank,
                                          &ws};
    dispatch_strategy<K>(ctx, out, out_mode, out_level, strategy, slices,
                         tile_bounds, ws);
  };
  const int order = csf.order();
  const int fw = csf.fid_width(order - 1);
  const int pw = csf.ptr_width(order - 2);
  if constexpr (kNarrowViews) {
    if (fw == 1 && pw == 2) {
      run(make_typed_view<std::uint8_t, std::uint16_t>(csf));
      return;
    }
    if (fw == 2 && pw == 2) {
      run(make_typed_view<std::uint16_t, std::uint16_t>(csf));
      return;
    }
    if (fw == 2 && pw == 4) {
      run(make_typed_view<std::uint16_t, std::uint32_t>(csf));
      return;
    }
    if (fw == 4 && pw == 4) {
      run(make_typed_view<std::uint32_t, std::uint32_t>(csf));
      return;
    }
  }
  if (fw == 4 && pw == 8) {
    // The wide layout always lands here; compressed tensors whose leaf
    // streams happen to be full-width do too.
    run(make_typed_view<std::uint32_t, std::uint64_t>(csf));
    return;
  }
  // Remaining width pairs (mixed-tier leaves/fptrs that no typed view
  // covers, e.g. u8 leaves with u32 fptrs) run the erased view — correct
  // for every combination, with a predictable per-access width switch.
  run(make_erased_view(csf));
}

/// Refreshes one fp32 factor shadow from its fp64 master (parallel row
/// copy through kern::copy — the sanctioned narrowing conversion). The
/// shadow keeps its own (wider) float padding; kernels read (data, ld)
/// pairs so the stride difference is invisible to them.
void refresh_shadow(const la::Matrix& src, la::MatrixT<float>& dst,
                    int nthreads) {
  if (dst.rows() != src.rows() || dst.cols() != src.cols()) {
    dst = la::MatrixT<float>(src.rows(), src.cols());
  }
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range r =
        block_partition(static_cast<nnz_t>(src.rows()), nt, tid);
    for (idx_t i = static_cast<idx_t>(r.begin);
         i < static_cast<idx_t>(r.end); ++i) {
      la::kern::copy(dst.row_ptr(i), src.row_ptr(i), src.cols());
    }
  });
}

}  // namespace

std::vector<nnz_t> leaf_tile_bounds(const CsfTensor& csf, int nthreads) {
  const int order = csf.order();
  const int leaf_mode = csf.mode_at_level(order - 1);
  const idx_t leaf_dim = csf.dims()[static_cast<std::size_t>(leaf_mode)];
  // Tile boundaries balanced by leaf occurrences.
  return weighted_partition(
      slice_nnz_prefix(csf.fid_stream(order - 1), csf.nnz(), leaf_dim),
      nthreads);
}

void mttkrp_csf_exec(const CsfTensor& csf,
                     const std::vector<la::Matrix>& factors, int mode,
                     int level, SyncStrategy strategy,
                     const SliceSchedule& slices,
                     std::span<const nnz_t> tile_bounds, idx_t kernel_width,
                     la::Matrix& out, MttkrpWorkspace& ws) {
  const int order = csf.order();
  SPTD_CHECK(static_cast<int>(factors.size()) == order,
             "mttkrp_csf: factor count mismatch");
  const idx_t rank = ws.rank();
  for (int m = 0; m < order; ++m) {
    SPTD_CHECK(factors[static_cast<std::size_t>(m)].cols() == rank,
               "mttkrp_csf: factor rank mismatch");
    SPTD_CHECK(factors[static_cast<std::size_t>(m)].rows() ==
                   csf.dims()[static_cast<std::size_t>(m)],
               "mttkrp_csf: factor rows mismatch");
  }
  SPTD_CHECK(out.rows() == csf.dims()[static_cast<std::size_t>(mode)] &&
                 out.cols() == rank,
             "mttkrp_csf: bad output shape");
  SPTD_CHECK(strategy != SyncStrategy::kTile ||
                 tile_bounds.size() ==
                     static_cast<std::size_t>(ws.options().nthreads) + 1,
             "mttkrp_csf: tile bounds missing for the tiled strategy");
  SPTD_CHECK(kernel_width == 0 ||
                 kernel_width == la::kern::fixed_width_for(rank),
             "mttkrp_csf: kernel width must be 0 or the rank's "
             "instantiated (possibly padded) width");

  ws.last_strategy = strategy;
  // Rewind the runtime schedules for this kernel launch: the dynamic
  // cursor restarts and every work-stealing deque is reseeded with its
  // owner's chunks (a cached plan reuses one schedule across the whole
  // ALS sweep, so each launch must begin from the full seed).
  slices.reset();

  std::vector<const la::Matrix*> factor_at_level(
      static_cast<std::size_t>(order));
  for (int l = 0; l < order; ++l) {
    factor_at_level[static_cast<std::size_t>(l)] =
        &factors[static_cast<std::size_t>(csf.mode_at_level(l))];
  }

  // Precision axis setup. The axis applies only to the pointer row-access
  // kernels (the production path); slice/2d exist to measure access
  // idioms and always run f64. Under f32/mixed the kernels stream fp32
  // factor shadows, refreshed here from the fp64 masters for every mode
  // the launch reads, plus the fp32 CSF value copy (built lazily on this
  // orchestrating thread, before any parallel region).
  const Precision prec = ws.options().precision;
  const bool narrow_streams =
      prec != Precision::kF64 &&
      ws.options().row_access == RowAccess::kPointer;
  std::vector<const la::MatrixT<float>*> shadow_at_level;
  std::span<const float> vals32;
  if (narrow_streams) {
    auto& shadows = ws.factor_shadows();
    shadows.resize(factors.size());
    for (int m = 0; m < order; ++m) {
      if (m == mode) continue;  // never read; left stale
      refresh_shadow(factors[static_cast<std::size_t>(m)],
                     shadows[static_cast<std::size_t>(m)],
                     ws.options().nthreads);
    }
    vals32 = csf.vals_f32();
    shadow_at_level.resize(static_cast<std::size_t>(order));
    for (int l = 0; l < order; ++l) {
      shadow_at_level[static_cast<std::size_t>(l)] =
          &shadows[static_cast<std::size_t>(csf.mode_at_level(l))];
    }
  }

  const auto dispatch = [&]<typename K, bool kNarrow, typename StoreT>(
                            std::vector<const la::MatrixT<StoreT>*> fal,
                            std::span<const StoreT> vals) {
    dispatch_views<K, kNarrow>(csf, vals, std::move(fal), rank, out, mode,
                               level, strategy, slices, tile_bounds, ws);
  };
  const auto dispatch_f64 = [&]<typename K, bool kNarrow>() {
    dispatch.operator()<K, kNarrow>(std::move(factor_at_level),
                                    csf.vals());
  };
  const auto dispatch_f32 = [&]<typename K, bool kNarrow>() {
    dispatch.operator()<K, kNarrow>(std::move(shadow_at_level), vals32);
  };

  switch (ws.options().row_access) {
    case RowAccess::kSlice:
      dispatch_f64.operator()<GenericKern<SliceAccess>, false>();
      break;
    case RowAccess::kIndex2D:
      dispatch_f64.operator()<GenericKern<Index2DAccess>, false>();
      break;
    case RowAccess::kPointer:
      if (prec == Precision::kMixed) {
        // fp32 streams, fp64 accumulators. The fixed-width bundles keep
        // their narrow-index instantiations (this is the production
        // bandwidth-saving mode); the generic fallback runs erased/wide.
        switch (kernel_width) {
          case 4:
            dispatch_f32.operator()<FixedKern<4, float, val_t>, true>();
            break;
          case 8:
            dispatch_f32.operator()<FixedKern<8, float, val_t>, true>();
            break;
          case 16:
            dispatch_f32.operator()<FixedKern<16, float, val_t>, true>();
            break;
          case 32:
            dispatch_f32.operator()<FixedKern<32, float, val_t>, true>();
            break;
          case 40:
            dispatch_f32.operator()<FixedKern<40, float, val_t>, true>();
            break;
          case 64:
            dispatch_f32.operator()<FixedKern<64, float, val_t>, true>();
            break;
          default:
            dispatch_f32
                .operator()<GenericKern<PointerAccess, float, val_t>,
                            false>();
            break;
        }
        break;
      }
      if (prec == Precision::kF32) {
        // fp32 streams AND fp32 accumulators — the ablation endpoint.
        // Runs erased/wide index views to bound the instantiation count
        // (the FixedKern fast paths still engage; only the narrow-index
        // variants are skipped).
        switch (kernel_width) {
          case 4:
            dispatch_f32.operator()<FixedKern<4, float, float>, false>();
            break;
          case 8:
            dispatch_f32.operator()<FixedKern<8, float, float>, false>();
            break;
          case 16:
            dispatch_f32.operator()<FixedKern<16, float, float>, false>();
            break;
          case 32:
            dispatch_f32.operator()<FixedKern<32, float, float>, false>();
            break;
          case 40:
            dispatch_f32.operator()<FixedKern<40, float, float>, false>();
            break;
          case 64:
            dispatch_f32.operator()<FixedKern<64, float, float>, false>();
            break;
          default:
            dispatch_f32
                .operator()<GenericKern<PointerAccess, float, float>,
                            false>();
            break;
        }
        break;
      }
      switch (kernel_width) {
        case 4:
          dispatch_f64.operator()<FixedKern<4>, true>();
          break;
        case 8:
          dispatch_f64.operator()<FixedKern<8>, true>();
          break;
        case 16:
          dispatch_f64.operator()<FixedKern<16>, true>();
          break;
        case 32:
          dispatch_f64.operator()<FixedKern<32>, true>();
          break;
        case 40:
          // The padded width for ranks 33-39 (the paper's default rank 35
          // lands here): rows span exactly 40 lanes with zero padding.
          dispatch_f64.operator()<FixedKern<40>, true>();
          break;
        case 64:
          dispatch_f64.operator()<FixedKern<64>, true>();
          break;
        default:
          dispatch_f64.operator()<GenericKern<PointerAccess>, true>();
          break;
      }
      break;
  }
}

void mttkrp_csf(const CsfTensor& csf, const std::vector<la::Matrix>& factors,
                int mode, la::Matrix& out, MttkrpWorkspace& ws) {
  const MttkrpOptions& opts = ws.options();
  const int level = csf.level_of_mode(mode);
  const SyncStrategy strategy = choose_sync_strategy(
      csf.dims(), mode, level, csf.nnz(), opts);
  const SliceSchedule slices(opts.schedule, csf.nfibers(0),
                             csf.root_nnz_prefix(), opts.nthreads,
                             static_cast<nnz_t>(opts.chunk_target));
  std::vector<nnz_t> tiles;
  if (strategy == SyncStrategy::kTile) {
    tiles = leaf_tile_bounds(csf, opts.nthreads);
  }
  mttkrp_csf_exec(csf, factors, mode, level, strategy, slices, tiles,
                  selected_kernel_width(ws.rank(), opts), out, ws);
}

void mttkrp(const CsfSet& csf_set, const std::vector<la::Matrix>& factors,
            int mode, la::Matrix& out, MttkrpWorkspace& ws) {
  int level = 0;
  const CsfTensor& csf = csf_set.csf_for_mode(mode, level);
  mttkrp_csf(csf, factors, mode, out, ws);
}

void mttkrp_coo(const SparseTensor& coo,
                const std::vector<la::Matrix>& factors, int mode,
                la::Matrix& out, const MttkrpOptions& opts) {
  const int order = coo.order();
  SPTD_CHECK(static_cast<int>(factors.size()) == order,
             "mttkrp_coo: factor count mismatch");
  const idx_t rank = factors[0].cols();
  SPTD_CHECK(out.rows() == coo.dim(mode) && out.cols() == rank,
             "mttkrp_coo: bad output shape");

  const int nthreads = opts.nthreads;
  set_parallel_backend(opts.backend);  // before the pool captures a flavor
  out.zero_parallel(nthreads);
  AnyMutexPool pool(opts.lock_kind);
  const auto out_ind = coo.ind(mode);

  parallel_region(nthreads, [&](int tid, int nt) {
    const Range r = block_partition(coo.nnz(), nt, tid);
    aligned_vector<val_t> tmp(rank);
    for (nnz_t x = r.begin; x < r.end; ++x) {
      const val_t v = coo.vals()[x];
      for (idx_t j = 0; j < rank; ++j) {
        tmp[j] = v;
      }
      for (int m = 0; m < order; ++m) {
        if (m == mode) continue;
        const val_t* row =
            factors[static_cast<std::size_t>(m)].row_ptr(coo.ind(m)[x]);
        for (idx_t j = 0; j < rank; ++j) {
          tmp[j] *= row[j];
        }
      }
      const idx_t out_row = out_ind[x];
      if (nt > 1) {
        pool.lock(out_row);
      }
      val_t* dst = out.row_ptr(out_row);
      for (idx_t j = 0; j < rank; ++j) {
        dst[j] += tmp[j];
      }
      if (nt > 1) {
        pool.unlock(out_row);
      }
    }
  });
}

}  // namespace sptd
