#include "mttkrp/mttkrp.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "parallel/partition.hpp"
#include "parallel/team.hpp"

namespace sptd {

namespace {
std::atomic<std::uint64_t> g_choose_sync_strategy_calls{0};
}  // namespace

std::uint64_t choose_sync_strategy_calls() {
  return g_choose_sync_strategy_calls.load(std::memory_order_relaxed);
}

const char* sync_strategy_name(SyncStrategy s) {
  switch (s) {
    case SyncStrategy::kNone:      return "none";
    case SyncStrategy::kLock:      return "lock";
    case SyncStrategy::kPrivatize: return "privatize";
    case SyncStrategy::kTile:      return "tile";
  }
  return "?";
}

RowAccess parse_row_access(const std::string& name) {
  if (name == "slice") return RowAccess::kSlice;
  if (name == "2d" || name == "index2d") return RowAccess::kIndex2D;
  if (name == "pointer") return RowAccess::kPointer;
  throw Error("unknown row access '" + name + "' (expected slice|2d|pointer)");
}

const char* row_access_name(RowAccess ra) {
  switch (ra) {
    case RowAccess::kSlice:   return "slice";
    case RowAccess::kIndex2D: return "2d";
    case RowAccess::kPointer: return "pointer";
  }
  return "?";
}

SyncStrategy choose_sync_strategy(const dims_t& dims, int out_mode, int level,
                                  nnz_t nnz, const MttkrpOptions& opts) {
  g_choose_sync_strategy_calls.fetch_add(1, std::memory_order_relaxed);
  if (level == 0 || opts.nthreads == 1) {
    return SyncStrategy::kNone;
  }
  if (opts.force_locks) {
    return SyncStrategy::kLock;
  }
  // Tiling applies to leaf kernels only: upper levels would need 2-D
  // tiling to keep both the walk and the writes partitioned.
  if (opts.use_tiling &&
      level == static_cast<int>(dims.size()) - 1) {
    return SyncStrategy::kTile;
  }
  if (opts.allow_privatization) {
    const double replicated =
        static_cast<double>(dims[static_cast<std::size_t>(out_mode)]) *
        static_cast<double>(opts.nthreads);
    if (replicated <= opts.privatization_threshold *
                          static_cast<double>(nnz)) {
      return SyncStrategy::kPrivatize;
    }
  }
  return SyncStrategy::kLock;
}

MttkrpWorkspace::MttkrpWorkspace(const MttkrpOptions& opts, idx_t rank,
                                 int order)
    : opts_(opts), rank_(rank), order_(order), pool_(opts.lock_kind) {
  SPTD_CHECK(opts.nthreads >= 1, "MttkrpWorkspace: nthreads must be >= 1");
  SPTD_CHECK(rank >= 1, "MttkrpWorkspace: rank must be >= 1");
  // Slots per thread: path products (order), children sums (order), plus
  // two scratch rows; each slot padded to a cache line boundary.
  slot_stride_ = ((static_cast<std::size_t>(rank) * sizeof(val_t) +
                   kCacheLineBytes - 1) /
                  kCacheLineBytes) *
                 kCacheLineBytes / sizeof(val_t);
  slots_per_thread_ = 2 * static_cast<std::size_t>(order) + 2;
  accum_storage_.assign(static_cast<std::size_t>(opts.nthreads) *
                            slots_per_thread_ * slot_stride_,
                        val_t{0});
}

val_t* MttkrpWorkspace::accum(int tid, int slot) {
  SPTD_DCHECK(tid >= 0 && tid < opts_.nthreads, "accum: bad tid");
  SPTD_DCHECK(slot >= 0 &&
                  static_cast<std::size_t>(slot) < slots_per_thread_,
              "accum: bad slot");
  return accum_storage_.data() +
         (static_cast<std::size_t>(tid) * slots_per_thread_ +
          static_cast<std::size_t>(slot)) *
             slot_stride_;
}

PrivateBuffers& MttkrpWorkspace::privatized(idx_t rows) {
  const nnz_t need = static_cast<nnz_t>(rows) * rank_;
  if (!priv_ || priv_capacity_ < need) {
    priv_ = std::make_unique<PrivateBuffers>(opts_.nthreads, need);
    priv_capacity_ = need;
  }
  return *priv_;
}

namespace {

// ---------------------------------------------------------------------
// Output sinks: how a kernel deposits a length-R contribution row.
// ---------------------------------------------------------------------

/// Unsynchronized write into the real output matrix (root kernel, or any
/// kernel on one thread).
template <typename RA>
struct DirectSink {
  la::Matrix* out;
  void add(idx_t row, const val_t* vec, idx_t rank) const {
    const auto handle = RA::row(*out, row);
    for (idx_t j = 0; j < rank; ++j) {
      handle.add(j, vec[j]);
    }
  }
};

/// Mutex-pool-guarded write (the paper's lock study).
template <typename RA>
struct LockedSink {
  la::Matrix* out;
  AnyMutexPool* pool;
  void add(idx_t row, const val_t* vec, idx_t rank) const {
    pool->lock(row);
    const auto handle = RA::row(*out, row);
    for (idx_t j = 0; j < rank; ++j) {
      handle.add(j, vec[j]);
    }
    pool->unlock(row);
  }
};

// ---------------------------------------------------------------------
// Kernel context: CSF arrays + factors arranged by tree level.
// ---------------------------------------------------------------------

struct KernelCtx {
  const CsfTensor* csf;
  std::vector<const la::Matrix*> factor_at_level;
  idx_t rank;
  MttkrpWorkspace* ws;
};

/// Slot layout inside the workspace accumulators.
inline int path_slot(int level) { return level; }
inline int cs_slot(const KernelCtx& ctx, int level) {
  return ctx.csf->order() + level;
}
inline int extra_slot(const KernelCtx& ctx, int which) {
  return 2 * ctx.csf->order() + which;
}

/// Accumulates G(f, l) into dst, where
///   G(leaf x)    = vals[x] * F_leaf(fids[x], :)
///   G(fiber f,l) = F_l(fids_l[f], :) ⊙ sum_children G(child, l+1).
/// This is the "pull up" half of the CSF MTTKRP (Smith & Karypis).
template <typename RA>
void accumulate_g(const KernelCtx& ctx, int l, nnz_t f, val_t* dst,
                  int tid) {
  const CsfTensor& csf = *ctx.csf;
  const idx_t rank = ctx.rank;
  const int order = csf.order();
  const auto fids = csf.fids(l);

  if (l == order - 1) {
    // f is a nonzero.
    const auto row = RA::row(*ctx.factor_at_level[static_cast<std::size_t>(l)],
                             fids[f]);
    const val_t v = csf.vals()[f];
    for (idx_t r = 0; r < rank; ++r) {
      dst[r] += v * row.get(r);
    }
    return;
  }

  val_t* cs = ctx.ws->accum(tid, cs_slot(ctx, l));
  std::memset(cs, 0, static_cast<std::size_t>(rank) * sizeof(val_t));
  const auto fptr = csf.fptr(l);

  if (l == order - 2) {
    // Children are nonzeros: fuse the leaf loop (the hot inner loop).
    const auto leaf_fids = csf.fids(order - 1);
    const auto vals = csf.vals();
    const la::Matrix& leaf_factor =
        *ctx.factor_at_level[static_cast<std::size_t>(order - 1)];
    for (nnz_t x = fptr[f]; x < fptr[f + 1]; ++x) {
      const auto row = RA::row(leaf_factor, leaf_fids[x]);
      const val_t v = vals[x];
      for (idx_t r = 0; r < rank; ++r) {
        cs[r] += v * row.get(r);
      }
    }
  } else {
    for (nnz_t c = fptr[f]; c < fptr[f + 1]; ++c) {
      accumulate_g<RA>(ctx, l + 1, c, cs, tid);
    }
  }

  const auto row = RA::row(*ctx.factor_at_level[static_cast<std::size_t>(l)],
                           fids[f]);
  for (idx_t r = 0; r < rank; ++r) {
    dst[r] += row.get(r) * cs[r];
  }
}

/// Root kernel: out(fids0[s], :) += sum_children G(child, 1). Trees are
/// distributed across threads by the precomputed slice schedule; no write
/// conflicts.
template <typename RA, typename Sink>
void kernel_root(const KernelCtx& ctx, const Sink& sink,
                 const SliceSchedule& slices, int nthreads) {
  const CsfTensor& csf = *ctx.csf;
  const idx_t rank = ctx.rank;
  parallel_region(nthreads, [&](int tid, int) {
    const auto fids0 = csf.fids(0);
    const auto fptr0 = csf.fptr(0);
    val_t* acc = ctx.ws->accum(tid, extra_slot(ctx, 0));
    slices.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
      for (nnz_t s = begin; s < end; ++s) {
        std::memset(acc, 0, static_cast<std::size_t>(rank) * sizeof(val_t));
        for (nnz_t c = fptr0[s]; c < fptr0[s + 1]; ++c) {
          accumulate_g<RA>(ctx, 1, c, acc, tid);
        }
        sink.add(fids0[s], acc, rank);
      }
    });
  });
}

/// Leaf kernel: push path products down, deposit at nonzeros:
///   out(leaf_fid, :) += val * (F_0 row ⊙ ... ⊙ F_{N-2} row).
template <typename RA, typename Sink>
void kernel_leaf(const KernelCtx& ctx, const Sink& sink,
                 const SliceSchedule& slices, int nthreads) {
  const CsfTensor& csf = *ctx.csf;
  const idx_t rank = ctx.rank;
  const int order = csf.order();

  // Recursive descent writing path products into per-level slots.
  struct Walker {
    const KernelCtx& ctx;
    const Sink& sink;
    int tid;

    void descend(int l, nnz_t f) const {
      const CsfTensor& csf = *ctx.csf;
      const idx_t rank = ctx.rank;
      const int order = csf.order();
      const val_t* parent = ctx.ws->accum(tid, path_slot(l - 1));
      val_t* mine = ctx.ws->accum(tid, path_slot(l));
      const auto row = RA::row(
          *ctx.factor_at_level[static_cast<std::size_t>(l)], csf.fids(l)[f]);
      for (idx_t r = 0; r < rank; ++r) {
        mine[r] = parent[r] * row.get(r);
      }
      const auto fptr = csf.fptr(l);
      if (l == order - 2) {
        // Children are the nonzeros: deposit.
        const auto leaf_fids = csf.fids(order - 1);
        const auto vals = csf.vals();
        val_t* tmp = ctx.ws->accum(tid, extra_slot(ctx, 1));
        for (nnz_t x = fptr[f]; x < fptr[f + 1]; ++x) {
          const val_t v = vals[x];
          for (idx_t r = 0; r < rank; ++r) {
            tmp[r] = v * mine[r];
          }
          sink.add(leaf_fids[x], tmp, rank);
        }
      } else {
        for (nnz_t c = fptr[f]; c < fptr[f + 1]; ++c) {
          descend(l + 1, c);
        }
      }
    }
  };

  parallel_region(nthreads, [&](int tid, int) {
    const auto fids0 = csf.fids(0);
    const auto fptr0 = csf.fptr(0);
    const Walker walker{ctx, sink, tid};
    val_t* p0 = ctx.ws->accum(tid, path_slot(0));
    slices.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
      for (nnz_t s = begin; s < end; ++s) {
        const auto row = RA::row(*ctx.factor_at_level[0], fids0[s]);
        for (idx_t r = 0; r < rank; ++r) {
          p0[r] = row.get(r);
        }
        if (order == 2) {
          // Root's children are the nonzeros.
          const auto leaf_fids = csf.fids(1);
          const auto vals = csf.vals();
          val_t* tmp = ctx.ws->accum(tid, extra_slot(ctx, 1));
          for (nnz_t x = fptr0[s]; x < fptr0[s + 1]; ++x) {
            const val_t v = vals[x];
            for (idx_t r = 0; r < rank; ++r) {
              tmp[r] = v * p0[r];
            }
            sink.add(leaf_fids[x], tmp, rank);
          }
        } else {
          for (nnz_t c = fptr0[s]; c < fptr0[s + 1]; ++c) {
            walker.descend(1, c);
          }
        }
      }
    });
  });
}

/// Tiled leaf kernel (SPLATT's tiling alternative): the leaf-mode index
/// space is split into per-thread tiles weighted by leaf frequency; every
/// thread walks the whole forest but deposits only leaves inside its own
/// tile. Writes are conflict-free (DirectSink); the price is replicated
/// path-product work at the upper levels.
template <typename RA>
void kernel_leaf_tiled(const KernelCtx& ctx, la::Matrix& out,
                       std::span<const nnz_t> tile_bounds, int nthreads) {
  const CsfTensor& csf = *ctx.csf;
  const idx_t rank = ctx.rank;
  const int order = csf.order();
  const auto leaf_fids = csf.fids(order - 1);

  const DirectSink<RA> sink{&out};
  parallel_region(nthreads, [&](int tid, int) {
    const auto lo = static_cast<idx_t>(tile_bounds[
        static_cast<std::size_t>(tid)]);
    const auto hi = static_cast<idx_t>(tile_bounds[
        static_cast<std::size_t>(tid) + 1]);
    if (lo == hi) {
      return;  // empty tile (more threads than occupied leaf ids)
    }

    // Deposit the in-tile leaves of the bottom fiber [first, last) whose
    // path product lives in `path`.
    const auto vals = csf.vals();
    val_t* tmp = ctx.ws->accum(tid, extra_slot(ctx, 1));
    const auto deposit = [&](nnz_t first, nnz_t last, const val_t* path) {
      // Leaves are sorted within a fiber: narrow to the tile subrange.
      const auto begin = std::lower_bound(leaf_fids.begin() + first,
                                          leaf_fids.begin() + last, lo);
      const auto end = std::lower_bound(begin, leaf_fids.begin() + last,
                                        hi);
      for (auto it = begin; it != end; ++it) {
        const auto x = static_cast<nnz_t>(it - leaf_fids.begin());
        const val_t v = vals[x];
        for (idx_t r = 0; r < rank; ++r) {
          tmp[r] = v * path[r];
        }
        sink.add(*it, tmp, rank);
      }
    };

    struct Walker {
      const KernelCtx& ctx;
      const decltype(deposit)& leaf_fn;
      int tid;

      void descend(int l, nnz_t f) const {
        const CsfTensor& csf = *ctx.csf;
        const idx_t rank = ctx.rank;
        const int order = csf.order();
        const val_t* parent = ctx.ws->accum(tid, path_slot(l - 1));
        val_t* mine = ctx.ws->accum(tid, path_slot(l));
        const auto row =
            RA::row(*ctx.factor_at_level[static_cast<std::size_t>(l)],
                    csf.fids(l)[f]);
        for (idx_t r = 0; r < rank; ++r) {
          mine[r] = parent[r] * row.get(r);
        }
        const auto fptr = csf.fptr(l);
        if (l == order - 2) {
          leaf_fn(fptr[f], fptr[f + 1], mine);
        } else {
          for (nnz_t c = fptr[f]; c < fptr[f + 1]; ++c) {
            descend(l + 1, c);
          }
        }
      }
    };

    const auto fids0 = csf.fids(0);
    const auto fptr0 = csf.fptr(0);
    const Walker walker{ctx, deposit, tid};
    val_t* p0 = ctx.ws->accum(tid, path_slot(0));
    for (nnz_t s = 0; s < csf.nfibers(0); ++s) {
      const auto row = RA::row(*ctx.factor_at_level[0], fids0[s]);
      for (idx_t r = 0; r < rank; ++r) {
        p0[r] = row.get(r);
      }
      if (order == 2) {
        deposit(fptr0[s], fptr0[s + 1], p0);
      } else {
        for (nnz_t c = fptr0[s]; c < fptr0[s + 1]; ++c) {
          walker.descend(1, c);
        }
      }
    }
  });
}

/// Internal kernel at level L (0 < L < order-1):
///   out(fids_L[f], :) += (F_0 ⊙ ... ⊙ F_{L-1} path) ⊙ sum_children G.
template <typename RA, typename Sink>
void kernel_internal(const KernelCtx& ctx, const Sink& sink, int out_level,
                     const SliceSchedule& slices, int nthreads) {
  const CsfTensor& csf = *ctx.csf;
  const idx_t rank = ctx.rank;

  struct Walker {
    const KernelCtx& ctx;
    const Sink& sink;
    int out_level;
    int tid;

    void descend(int l, nnz_t f) const {
      const CsfTensor& csf = *ctx.csf;
      const idx_t rank = ctx.rank;
      const int order = csf.order();
      if (l == out_level) {
        // Children sum (the pull-up half), excluding F_L itself.
        val_t* cs = ctx.ws->accum(tid, cs_slot(ctx, l));
        std::memset(cs, 0, static_cast<std::size_t>(rank) * sizeof(val_t));
        const auto fptr = csf.fptr(l);
        if (l == order - 2) {
          const auto leaf_fids = csf.fids(order - 1);
          const auto vals = csf.vals();
          const la::Matrix& leaf_factor =
              *ctx.factor_at_level[static_cast<std::size_t>(order - 1)];
          for (nnz_t x = fptr[f]; x < fptr[f + 1]; ++x) {
            const auto row = RA::row(leaf_factor, leaf_fids[x]);
            const val_t v = vals[x];
            for (idx_t r = 0; r < rank; ++r) {
              cs[r] += v * row.get(r);
            }
          }
        } else {
          for (nnz_t c = fptr[f]; c < fptr[f + 1]; ++c) {
            accumulate_g<RA>(ctx, l + 1, c, cs, tid);
          }
        }
        const val_t* path = ctx.ws->accum(tid, path_slot(l - 1));
        val_t* tmp = ctx.ws->accum(tid, extra_slot(ctx, 1));
        for (idx_t r = 0; r < rank; ++r) {
          tmp[r] = path[r] * cs[r];
        }
        sink.add(csf.fids(l)[f], tmp, rank);
        return;
      }
      // Extend the path product and keep descending.
      const val_t* parent = ctx.ws->accum(tid, path_slot(l - 1));
      val_t* mine = ctx.ws->accum(tid, path_slot(l));
      const auto row = RA::row(
          *ctx.factor_at_level[static_cast<std::size_t>(l)], csf.fids(l)[f]);
      for (idx_t r = 0; r < rank; ++r) {
        mine[r] = parent[r] * row.get(r);
      }
      const auto fptr = csf.fptr(l);
      for (nnz_t c = fptr[f]; c < fptr[f + 1]; ++c) {
        descend(l + 1, c);
      }
    }
  };

  parallel_region(nthreads, [&](int tid, int) {
    const auto fids0 = csf.fids(0);
    const auto fptr0 = csf.fptr(0);
    const Walker walker{ctx, sink, out_level, tid};
    val_t* p0 = ctx.ws->accum(tid, path_slot(0));
    slices.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
      for (nnz_t s = begin; s < end; ++s) {
        const auto row = RA::row(*ctx.factor_at_level[0], fids0[s]);
        for (idx_t r = 0; r < rank; ++r) {
          p0[r] = row.get(r);
        }
        for (nnz_t c = fptr0[s]; c < fptr0[s + 1]; ++c) {
          walker.descend(1, c);
        }
      }
    });
  });
}

/// Runs the level-appropriate kernel with the given sink.
template <typename RA, typename Sink>
void run_kernel(const KernelCtx& ctx, const Sink& sink, int out_level,
                const SliceSchedule& slices, int nthreads) {
  const int order = ctx.csf->order();
  if (out_level == 0) {
    kernel_root<RA>(ctx, sink, slices, nthreads);
  } else if (out_level == order - 1) {
    kernel_leaf<RA>(ctx, sink, slices, nthreads);
  } else {
    kernel_internal<RA>(ctx, sink, out_level, slices, nthreads);
  }
}

/// Strategy dispatch for one row-access policy.
template <typename RA>
void dispatch_strategy(const KernelCtx& ctx, la::Matrix& out, int out_mode,
                       int out_level, SyncStrategy strategy,
                       const SliceSchedule& slices,
                       std::span<const nnz_t> tile_bounds,
                       MttkrpWorkspace& ws) {
  const int nthreads = ws.options().nthreads;
  switch (strategy) {
    case SyncStrategy::kNone: {
      out.zero_parallel(nthreads);
      run_kernel<RA>(ctx, DirectSink<RA>{&out}, out_level, slices, nthreads);
      break;
    }
    case SyncStrategy::kLock: {
      out.zero_parallel(nthreads);
      run_kernel<RA>(ctx, LockedSink<RA>{&out, &ws.pool()}, out_level,
                     slices, nthreads);
      break;
    }
    case SyncStrategy::kTile: {
      out.zero_parallel(nthreads);
      kernel_leaf_tiled<RA>(ctx, out, tile_bounds, nthreads);
      break;
    }
    case SyncStrategy::kPrivatize: {
      const idx_t rows =
          ctx.csf->dims()[static_cast<std::size_t>(out_mode)];
      PrivateBuffers& priv = ws.privatized(rows);
      priv.clear(nthreads);
      // Each thread's sink points at its own replica. The kernels hand the
      // sink to every thread, so the sink must resolve per-thread storage
      // itself.
      struct ThreadPrivSink {
        PrivateBuffers* priv;
        void add(idx_t row, const val_t* vec, idx_t rank) const {
          val_t* p = priv->buffer(current_thread_id()).data() +
                     static_cast<std::size_t>(row) * rank;
          for (idx_t j = 0; j < rank; ++j) {
            p[j] += vec[j];
          }
        }
      };
      run_kernel<RA>(ctx, ThreadPrivSink{&priv}, out_level, slices,
                     nthreads);
      out.zero_parallel(nthreads);
      priv.reduce_into(
          {out.data(),
           static_cast<std::size_t>(rows) * ctx.rank},
          nthreads);
      break;
    }
  }
}

}  // namespace

std::vector<nnz_t> leaf_tile_bounds(const CsfTensor& csf, int nthreads) {
  const int order = csf.order();
  const int leaf_mode = csf.mode_at_level(order - 1);
  const idx_t leaf_dim = csf.dims()[static_cast<std::size_t>(leaf_mode)];
  // Tile boundaries balanced by leaf occurrences.
  return weighted_partition(
      slice_nnz_prefix(csf.fids(order - 1), leaf_dim), nthreads);
}

void mttkrp_csf_exec(const CsfTensor& csf,
                     const std::vector<la::Matrix>& factors, int mode,
                     int level, SyncStrategy strategy,
                     const SliceSchedule& slices,
                     std::span<const nnz_t> tile_bounds, la::Matrix& out,
                     MttkrpWorkspace& ws) {
  const int order = csf.order();
  SPTD_CHECK(static_cast<int>(factors.size()) == order,
             "mttkrp_csf: factor count mismatch");
  const idx_t rank = ws.rank();
  for (int m = 0; m < order; ++m) {
    SPTD_CHECK(factors[static_cast<std::size_t>(m)].cols() == rank,
               "mttkrp_csf: factor rank mismatch");
    SPTD_CHECK(factors[static_cast<std::size_t>(m)].rows() ==
                   csf.dims()[static_cast<std::size_t>(m)],
               "mttkrp_csf: factor rows mismatch");
  }
  SPTD_CHECK(out.rows() == csf.dims()[static_cast<std::size_t>(mode)] &&
                 out.cols() == rank,
             "mttkrp_csf: bad output shape");
  SPTD_CHECK(strategy != SyncStrategy::kTile ||
                 tile_bounds.size() ==
                     static_cast<std::size_t>(ws.options().nthreads) + 1,
             "mttkrp_csf: tile bounds missing for the tiled strategy");

  ws.last_strategy = strategy;
  slices.reset();  // rewind the dynamic cursor for this kernel launch

  KernelCtx ctx;
  ctx.csf = &csf;
  ctx.rank = rank;
  ctx.ws = &ws;
  ctx.factor_at_level.resize(static_cast<std::size_t>(order));
  for (int l = 0; l < order; ++l) {
    ctx.factor_at_level[static_cast<std::size_t>(l)] =
        &factors[static_cast<std::size_t>(csf.mode_at_level(l))];
  }

  switch (ws.options().row_access) {
    case RowAccess::kSlice:
      dispatch_strategy<SliceAccess>(ctx, out, mode, level, strategy,
                                     slices, tile_bounds, ws);
      break;
    case RowAccess::kIndex2D:
      dispatch_strategy<Index2DAccess>(ctx, out, mode, level, strategy,
                                       slices, tile_bounds, ws);
      break;
    case RowAccess::kPointer:
      dispatch_strategy<PointerAccess>(ctx, out, mode, level, strategy,
                                       slices, tile_bounds, ws);
      break;
  }
}

void mttkrp_csf(const CsfTensor& csf, const std::vector<la::Matrix>& factors,
                int mode, la::Matrix& out, MttkrpWorkspace& ws) {
  const MttkrpOptions& opts = ws.options();
  const int level = csf.level_of_mode(mode);
  const SyncStrategy strategy = choose_sync_strategy(
      csf.dims(), mode, level, csf.nnz(), opts);
  const SliceSchedule slices(opts.schedule, csf.nfibers(0),
                             csf.root_nnz_prefix(), opts.nthreads);
  std::vector<nnz_t> tiles;
  if (strategy == SyncStrategy::kTile) {
    tiles = leaf_tile_bounds(csf, opts.nthreads);
  }
  mttkrp_csf_exec(csf, factors, mode, level, strategy, slices, tiles, out,
                  ws);
}

void mttkrp(const CsfSet& csf_set, const std::vector<la::Matrix>& factors,
            int mode, la::Matrix& out, MttkrpWorkspace& ws) {
  int level = 0;
  const CsfTensor& csf = csf_set.csf_for_mode(mode, level);
  mttkrp_csf(csf, factors, mode, out, ws);
}

void mttkrp_coo(const SparseTensor& coo,
                const std::vector<la::Matrix>& factors, int mode,
                la::Matrix& out, const MttkrpOptions& opts) {
  const int order = coo.order();
  SPTD_CHECK(static_cast<int>(factors.size()) == order,
             "mttkrp_coo: factor count mismatch");
  const idx_t rank = factors[0].cols();
  SPTD_CHECK(out.rows() == coo.dim(mode) && out.cols() == rank,
             "mttkrp_coo: bad output shape");

  const int nthreads = opts.nthreads;
  out.zero_parallel(nthreads);
  AnyMutexPool pool(opts.lock_kind);
  const auto out_ind = coo.ind(mode);

  parallel_region(nthreads, [&](int tid, int nt) {
    const Range r = block_partition(coo.nnz(), nt, tid);
    std::vector<val_t> tmp(rank);
    for (nnz_t x = r.begin; x < r.end; ++x) {
      const val_t v = coo.vals()[x];
      for (idx_t j = 0; j < rank; ++j) {
        tmp[j] = v;
      }
      for (int m = 0; m < order; ++m) {
        if (m == mode) continue;
        const val_t* row =
            factors[static_cast<std::size_t>(m)].row_ptr(coo.ind(m)[x]);
        for (idx_t j = 0; j < rank; ++j) {
          tmp[j] *= row[j];
        }
      }
      const idx_t out_row = out_ind[x];
      if (nt > 1) {
        pool.lock(out_row);
      }
      val_t* dst = out.row_ptr(out_row);
      for (idx_t j = 0; j < rank; ++j) {
        dst[j] += tmp[j];
      }
      if (nt > 1) {
        pool.unlock(out_row);
      }
    }
  });
}

}  // namespace sptd
