#pragma once
/// \file tiled.hpp
/// \brief Mode-tiled MTTKRP: the lock-free alternative to mutex pools and
///        privatization.
///
/// SPLATT's optional tensor tiling (the feature the paper's port omits,
/// Section V-A) rearranges nonzeros so that concurrent writers never touch
/// the same output rows. This module implements the 1-D form of that idea:
/// the output mode's index space is split into `ntiles` contiguous row
/// blocks, nonzeros are bucketed by their output-row block, and thread t
/// processes bucket t — every write lands in rows owned exclusively by the
/// writer, so the kernel needs neither locks nor per-thread replicas.
///
/// Trade-offs mirror SPLATT's: zero synchronization and no reduction
/// memory, but load balance now depends on how evenly the nonzeros spread
/// across output-row blocks (skewed tensors tile badly) and the layout is
/// fixed per (mode, ntiles). The ablation bench quantifies exactly this
/// against locks and privatization.

#include <vector>

#include "la/matrix.hpp"
#include "parallel/schedule.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// Nonzeros of a tensor bucketed by output-row block of one mode.
class TiledTensor {
 public:
  /// Buckets \p t's nonzeros by mode-\p mode row blocks into \p ntiles
  /// tiles. Under the default (weighted) policy tile boundaries are
  /// balanced by *nonzero count* (weighted partition over slice
  /// histograms), which keeps skewed tensors usable; the static policy
  /// uses equal row ranges (the ablation's "uniform tiles" baseline).
  /// Tiling is a fixed ownership structure, so the runtime policies
  /// (dynamic, workstealing) cannot apply: requesting one logs a one-time
  /// warning and runs weighted — effective_policy() reports what actually
  /// shaped the tiles (benches record it instead of the request).
  TiledTensor(const SparseTensor& t, int mode, int ntiles,
              SchedulePolicy policy = SchedulePolicy::kWeighted);

  [[nodiscard]] int mode() const { return mode_; }
  [[nodiscard]] int ntiles() const { return ntiles_; }

  /// The policy that actually shaped the tile boundaries: the request,
  /// except dynamic/workstealing which coerce to weighted.
  [[nodiscard]] SchedulePolicy effective_policy() const {
    return effective_policy_;
  }
  [[nodiscard]] nnz_t nnz() const { return tensor_.nnz(); }
  [[nodiscard]] const SparseTensor& tensor() const { return tensor_; }

  /// Nonzero extent of tile \p tile.
  [[nodiscard]] std::pair<nnz_t, nnz_t> tile_extent(int tile) const {
    return {tile_ptr_[static_cast<std::size_t>(tile)],
            tile_ptr_[static_cast<std::size_t>(tile) + 1]};
  }

  /// First output row owned by each tile (ntiles+1 boundaries).
  [[nodiscard]] const std::vector<idx_t>& row_bounds() const {
    return row_bounds_;
  }

 private:
  int mode_;
  int ntiles_;
  SchedulePolicy effective_policy_;
  SparseTensor tensor_;            ///< nonzeros permuted tile-contiguously
  std::vector<nnz_t> tile_ptr_;    ///< tile extents into tensor_
  std::vector<idx_t> row_bounds_;  ///< output-row ownership boundaries
};

/// Lock-free MTTKRP over a tiled tensor: thread t processes tile t.
/// \p out is zeroed first. Uses exactly \p tiled.ntiles() threads.
void mttkrp_tiled(const TiledTensor& tiled,
                  const std::vector<la::Matrix>& factors, la::Matrix& out);

}  // namespace sptd
