#include "mttkrp/plan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sptd {

MttkrpPlan::MttkrpPlan(const CsfSet& set, idx_t rank,
                       const MttkrpOptions& opts)
    // The backend must be applied before ws_ builds its lock pool (the
    // BackendLock flavor is captured at pool construction), hence the
    // comma expression in the first initializer.
    : set_((set_parallel_backend(opts.backend), &set)),
      ws_(opts, rank, set.order()),
      kernel_width_(selected_kernel_width(rank, opts)) {
  const int order = set.order();
  modes_.resize(static_cast<std::size_t>(order));
  idx_t max_privatized_rows = 0;
  for (int m = 0; m < order; ++m) {
    ModePlan& mp = modes_[static_cast<std::size_t>(m)];
    int level = 0;
    mp.csf = &set.csf_for_mode(m, level);
    mp.level = level;
    mp.strategy = choose_sync_strategy(mp.csf->dims(), m, level,
                                       mp.csf->nnz(), opts);
    mp.slices = SliceSchedule(opts.schedule, mp.csf->nfibers(0),
                              mp.csf->root_nnz_prefix(), opts.nthreads,
                              static_cast<nnz_t>(opts.chunk_target));
    if (mp.strategy == SyncStrategy::kTile) {
      mp.tile_bounds = leaf_tile_bounds(*mp.csf, opts.nthreads);
    }
    if (mp.strategy == SyncStrategy::kPrivatize) {
      max_privatized_rows = std::max(
          max_privatized_rows,
          mp.csf->dims()[static_cast<std::size_t>(m)]);
    }
  }
  // Pre-size the privatized reduction bank so execute() never allocates.
  if (max_privatized_rows > 0) {
    ws_.privatized(max_privatized_rows);
  }
}

void MttkrpPlan::execute(const std::vector<la::Matrix>& factors, int mode,
                         la::Matrix& out) {
  SPTD_CHECK(mode >= 0 && mode < order(), "MttkrpPlan: mode out of range");
  const ModePlan& mp = modes_[static_cast<std::size_t>(mode)];
  mttkrp_csf_exec(*mp.csf, factors, mode, mp.level, mp.strategy, mp.slices,
                  mp.tile_bounds, kernel_width_, out, ws_);
}

}  // namespace sptd
