#pragma once
/// \file plan.hpp
/// \brief Cached MTTKRP execution plans: decide once, execute many.
///
/// The seed re-derived every scheduling decision — which CSF representation
/// serves a mode, which kernel level, lock vs privatize vs tile, and the
/// nnz-weighted loop bounds — inside every mttkrp() call, i.e. order x
/// iterations times per CP-ALS run. An MttkrpPlan hoists all of it to one
/// construction pass per (CsfSet, options, rank) triple, mirroring how
/// SPLATT precomputes per-CSF execution metadata and reuses it across the
/// ALS sweep. execute() is pure execution: the hot loop performs zero
/// weighted_partition() or choose_sync_strategy() calls (asserted by
/// tests/test_schedule.cpp via the planning counters).
///
/// The plan also owns the MttkrpWorkspace, with privatized reduction
/// buffers pre-sized for the largest privatized mode, so no allocation
/// happens mid-loop either.

#include <vector>

#include "csf/csf.hpp"
#include "la/matrix.hpp"
#include "mttkrp/mttkrp.hpp"
#include "parallel/schedule.hpp"

namespace sptd {

/// One CsfSet's MTTKRP decisions, frozen. The CsfSet must outlive the
/// plan; factor shapes are validated on every execute().
class MttkrpPlan {
 public:
  /// Per-output-mode decisions.
  struct ModePlan {
    const CsfTensor* csf = nullptr;   ///< representation serving this mode
    int level = 0;                    ///< the mode's tree level in it
    SyncStrategy strategy = SyncStrategy::kNone;
    SliceSchedule slices;             ///< root-slice distribution
    std::vector<nnz_t> tile_bounds;   ///< kTile only: output-row tiles
  };

  MttkrpPlan(const CsfSet& set, idx_t rank, const MttkrpOptions& opts);

  /// Computes the mode-\p mode MTTKRP into \p out (dims[mode] x rank)
  /// using the cached decisions. Semantically identical to mttkrp() with
  /// the construction-time options.
  void execute(const std::vector<la::Matrix>& factors, int mode,
               la::Matrix& out);

  [[nodiscard]] const MttkrpOptions& options() const {
    return ws_.options();
  }
  [[nodiscard]] idx_t rank() const { return ws_.rank(); }
  [[nodiscard]] int order() const { return static_cast<int>(modes_.size()); }
  [[nodiscard]] MttkrpWorkspace& workspace() { return ws_; }

  /// The rank-specialized kernel width frozen at plan time:
  /// selected_kernel_width() — under pointer access, the rank itself when
  /// an instantiation exists (4, 8, 16, 32, 40, 64) or the rank's padded
  /// row stride when that width is instantiated (rank 35, the paper's
  /// default, reports 40); 0 when execution runs the generic runtime-rank
  /// loops. Reported in every bench --json record.
  [[nodiscard]] idx_t kernel_width() const { return kernel_width_; }

  /// Introspection for benches/tests: the frozen decisions for one mode.
  [[nodiscard]] const ModePlan& mode_plan(int mode) const {
    return modes_[static_cast<std::size_t>(mode)];
  }

  /// Successful work-steal claims across every mode's schedule, cumulative
  /// over all execute() calls (0 unless the plan was built with the
  /// workstealing policy). Difference around a run for per-run counts.
  [[nodiscard]] std::uint64_t steals() const {
    std::uint64_t total = 0;
    for (const ModePlan& mp : modes_) {
      total += mp.slices.steals();
    }
    return total;
  }

 private:
  const CsfSet* set_;
  MttkrpWorkspace ws_;
  std::vector<ModePlan> modes_;
  idx_t kernel_width_ = 0;
};

}  // namespace sptd
