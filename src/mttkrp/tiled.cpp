#include "mttkrp/tiled.hpp"

#include <array>
#include <atomic>
#include <string>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "parallel/partition.hpp"
#include "parallel/team.hpp"

namespace sptd {

TiledTensor::TiledTensor(const SparseTensor& t, int mode, int ntiles,
                         SchedulePolicy policy)
    : mode_(mode), ntiles_(ntiles),
      effective_policy_(policy == SchedulePolicy::kStatic
                            ? SchedulePolicy::kStatic
                            : SchedulePolicy::kWeighted),
      tensor_(t.dims()) {
  SPTD_CHECK(mode >= 0 && mode < t.order(), "TiledTensor: bad mode");
  SPTD_CHECK(ntiles >= 1, "TiledTensor: ntiles must be >= 1");
  if (policy != effective_policy_) {
    // Tile ownership is fixed at construction; the runtime policies have
    // nothing to schedule here. Warn once per process instead of
    // silently honoring only part of the request.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      log_warn(std::string("TiledTensor: schedule policy '") +
               schedule_policy_name(policy) +
               "' is not applicable to fixed tile ownership; using "
               "'weighted' tile boundaries (reported as the effective "
               "policy)");
    }
  }

  // Histogram of nonzeros per output row, then weight-balanced row
  // boundaries so each tile owns roughly nnz/ntiles nonzeros (static
  // policy: equal row ranges regardless of occupancy).
  const idx_t dim = t.dim(mode);
  const std::vector<nnz_t> slice_prefix = slice_nnz_prefix(t.ind(mode), dim);
  const SliceSchedule tiles(effective_policy_, dim, slice_prefix, ntiles);
  const auto bounds = tiles.bounds();
  row_bounds_.resize(bounds.size());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    row_bounds_[i] = static_cast<idx_t>(bounds[i]);
  }

  // Tile id of an output row via binary search over the boundaries.
  const auto tile_of = [&](idx_t row) {
    int lo = 0;
    int hi = ntiles_ - 1;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (row < row_bounds_[static_cast<std::size_t>(mid) + 1]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  };

  // Counting sort of nonzeros into tiles (stable).
  tile_ptr_.assign(static_cast<std::size_t>(ntiles) + 1, 0);
  const auto ind = t.ind(mode);
  std::vector<int> tile_id(t.nnz());
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    const int tile = tile_of(ind[x]);
    tile_id[x] = tile;
    ++tile_ptr_[static_cast<std::size_t>(tile) + 1];
  }
  for (int tile = 0; tile < ntiles; ++tile) {
    tile_ptr_[static_cast<std::size_t>(tile) + 1] +=
        tile_ptr_[static_cast<std::size_t>(tile)];
  }
  std::vector<nnz_t> cursor(tile_ptr_.begin(), tile_ptr_.end() - 1);
  tensor_.resize_nnz(t.nnz());
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    const nnz_t dst = cursor[static_cast<std::size_t>(tile_id[x])]++;
    for (int m = 0; m < t.order(); ++m) {
      tensor_.ind(m)[dst] = t.ind(m)[x];
    }
    tensor_.vals()[dst] = t.vals()[x];
  }
}

void mttkrp_tiled(const TiledTensor& tiled,
                  const std::vector<la::Matrix>& factors, la::Matrix& out) {
  const SparseTensor& t = tiled.tensor();
  const int order = t.order();
  const int mode = tiled.mode();
  SPTD_CHECK(static_cast<int>(factors.size()) == order,
             "mttkrp_tiled: factor count mismatch");
  const idx_t rank = factors[0].cols();
  SPTD_CHECK(out.rows() == t.dim(mode) && out.cols() == rank,
             "mttkrp_tiled: bad output shape");

  const int nthreads = tiled.ntiles();
  out.zero_parallel(nthreads);
  const auto out_ind = t.ind(mode);

  parallel_region(nthreads, [&](int tid, int) {
    const auto [lo, hi] = tiled.tile_extent(tid);
    aligned_vector<val_t> tmp(rank);
    for (nnz_t x = lo; x < hi; ++x) {
      const val_t v = t.vals()[x];
      for (idx_t j = 0; j < rank; ++j) {
        tmp[j] = v;
      }
      for (int m = 0; m < order; ++m) {
        if (m == mode) continue;
        const val_t* row =
            factors[static_cast<std::size_t>(m)].row_ptr(t.ind(m)[x]);
        for (idx_t j = 0; j < rank; ++j) {
          tmp[j] *= row[j];
        }
      }
      // Rows in this tile are owned exclusively by this thread.
      val_t* dst = out.row_ptr(out_ind[x]);
      for (idx_t j = 0; j < rank; ++j) {
        dst[j] += tmp[j];
      }
    }
  });
}

}  // namespace sptd
