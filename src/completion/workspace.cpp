#include "completion/workspace.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "la/kernels.hpp"
#include "parallel/partition.hpp"

namespace sptd {

namespace {

/// Stable counting sort of \p t's nonzeros by their mode-\p mode
/// coordinate: O(nnz), no comparison sort needed (solvers only require
/// slice grouping, not lexicographic order), and the permutation it runs
/// through is exactly the canon map the CCD++ residual needs.
ModeSlices build_mode_slices(const SparseTensor& t, int mode,
                             const CompletionOptions& options) {
  const idx_t dim = t.dim(mode);
  const nnz_t nnz = t.nnz();
  ModeSlices ms;
  ms.slice_ptr = slice_nnz_prefix(t.ind(mode), dim);
  ms.canon.resize(nnz);
  {
    std::vector<nnz_t> cursor(ms.slice_ptr.begin(),
                              ms.slice_ptr.end() - 1);
    const auto ids = t.ind(mode);
    for (nnz_t x = 0; x < nnz; ++x) {
      ms.canon[cursor[ids[x]]++] = x;
    }
  }
  SparseTensor grouped(t.dims());
  grouped.resize_nnz(nnz);
  for (int m = 0; m < t.order(); ++m) {
    const auto src = t.ind(m);
    const auto dst = grouped.ind(m);
    for (nnz_t p = 0; p < nnz; ++p) {
      dst[p] = src[ms.canon[p]];
    }
  }
  {
    const auto src = t.vals();
    const auto dst = grouped.vals();
    for (nnz_t p = 0; p < nnz; ++p) {
      dst[p] = src[ms.canon[p]];
    }
  }
  ms.grouped = std::move(grouped);
  if (options.precision != Precision::kF64) {
    const auto vals = ms.grouped.vals();
    ms.vals_f32.resize(nnz);
    for (nnz_t p = 0; p < nnz; ++p) {
      ms.vals_f32[p] = static_cast<float>(vals[p]);
    }
  }
  ms.schedule = SliceSchedule(options.schedule, dim, ms.slice_ptr,
                              options.nthreads,
                              static_cast<nnz_t>(options.chunk_target));
  return ms;
}

/// Builds the SGD stratum grid. Boundaries reuse the execution-plan
/// layer's partitioners: a throwaway SliceSchedule per mode under the
/// *static prediction* of the run's policy (kStatic keeps equal slice
/// counts, everything else balances by observation count) — stratum
/// ownership cannot move at run time, so the runtime policies fall back
/// to their weighted seed.
StratumGrid build_strata(const SparseTensor& t,
                         const std::vector<ModeSlices>& slices,
                         const CompletionOptions& options) {
  const int order = t.order();
  const nnz_t nnz = t.nnz();
  StratumGrid grid;

  // Side length: one block row per thread, capped so the cell table stays
  // O(nnz) even for high orders / large teams (extra threads beyond the
  // side simply idle during SGD sub-epochs).
  const nnz_t cell_limit = std::max<nnz_t>(4 * nnz, 4096);
  const auto cells_for = [&](int side) {
    nnz_t c = 1;
    for (int m = 0; m < order; ++m) {
      c *= static_cast<nnz_t>(side);
      if (c > cell_limit) {
        return cell_limit + 1;
      }
    }
    return c;
  };
  int side = std::max(1, options.nthreads);
  while (side > 1 && cells_for(side) > cell_limit) {
    --side;
  }
  grid.side = side;

  const SchedulePolicy bound_policy =
      options.schedule == SchedulePolicy::kStatic ? SchedulePolicy::kStatic
                                                  : SchedulePolicy::kWeighted;
  grid.mode_bounds.reserve(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) {
    const SliceSchedule cut(bound_policy, t.dim(m),
                            slices[static_cast<std::size_t>(m)].slice_ptr,
                            side);
    grid.mode_bounds.emplace_back(cut.bounds().begin(), cut.bounds().end());
  }

  // Bucket nonzeros by cell (mode-major cell id), CSR form, stable in the
  // original nonzero order so the grid is deterministic.
  const nnz_t cells = cells_for(side);
  std::vector<nnz_t> cell_of(nnz);
  for (nnz_t x = 0; x < nnz; ++x) {
    nnz_t cell = 0;
    for (int m = 0; m < order; ++m) {
      const auto& bounds = grid.mode_bounds[static_cast<std::size_t>(m)];
      const auto it = std::upper_bound(
          bounds.begin(), bounds.end(),
          static_cast<nnz_t>(t.ind(m)[x]));
      const auto block =
          static_cast<nnz_t>(it - bounds.begin()) - 1;
      cell = cell * static_cast<nnz_t>(side) + block;
    }
    cell_of[x] = cell;
  }
  grid.cell_ptr.assign(static_cast<std::size_t>(cells) + 1, 0);
  for (nnz_t x = 0; x < nnz; ++x) {
    ++grid.cell_ptr[static_cast<std::size_t>(cell_of[x]) + 1];
  }
  for (std::size_t c = 1; c < grid.cell_ptr.size(); ++c) {
    grid.cell_ptr[c] += grid.cell_ptr[c - 1];
  }
  grid.cell_ids.resize(nnz);
  {
    std::vector<nnz_t> cursor(grid.cell_ptr.begin(),
                              grid.cell_ptr.end() - 1);
    for (nnz_t x = 0; x < nnz; ++x) {
      grid.cell_ids[cursor[static_cast<std::size_t>(cell_of[x])]++] = x;
    }
  }
  return grid;
}

/// Scratch rows each solver's per-thread workspace needs (see the row
/// layouts in solver_sgd.cpp / solver_als.cpp; 2 covers the Hadamard
/// ping-pong every prediction loop uses).
idx_t scratch_rows_for(CompletionAlgorithm alg, int order) {
  switch (alg) {
    case CompletionAlgorithm::kSgd:
      return static_cast<idx_t>(3 * order + 3);
    case CompletionAlgorithm::kAls:
    case CompletionAlgorithm::kCcd:
      return 3;
  }
  return 3;
}

}  // namespace

CompletionWorkspace::CompletionWorkspace(const SparseTensor& train,
                                         const CompletionOptions& options)
    : train_(&train), options_(&options) {
  SPTD_CHECK(train.nnz() > 0, "CompletionWorkspace: empty training set");
  kernel_width_ = options.use_fixed_kernels
                      ? la::kern::fixed_width_for(options.rank)
                      : 0;
  const int order = train.order();
  slices_.reserve(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) {
    slices_.push_back(build_mode_slices(train, m, options));
  }
  nnz_schedule_ = SliceSchedule(options.schedule, train.nnz(), {},
                                options.nthreads,
                                static_cast<nnz_t>(options.chunk_target));
  if (options.precision != Precision::kF64) {
    const auto vals = train.vals();
    train_vals_f32_.resize(train.nnz());
    for (nnz_t x = 0; x < train.nnz(); ++x) {
      train_vals_f32_[x] = static_cast<float>(vals[x]);
    }
  }
  if (options.algorithm == CompletionAlgorithm::kSgd) {
    strata_ = build_strata(train, slices_, options);
  }
  if (options.algorithm == CompletionAlgorithm::kCcd) {
    residual_.resize(train.nnz());
    slice_buffers_.resize(static_cast<std::size_t>(options.nthreads));
  }
  const idx_t rows = scratch_rows_for(options.algorithm, order);
  scratch_.reserve(static_cast<std::size_t>(options.nthreads));
  for (int t = 0; t < options.nthreads; ++t) {
    scratch_.emplace_back(rows, options.rank);
  }
}

}  // namespace sptd
