/// \file solver_als.cpp
/// \brief Alternating least squares for tensor completion.
///
/// One ALS pass over mode m updates every row i independently:
///   (Σ_{x ∈ slice i} c_x c_x^T + λI) a_i = Σ_{x ∈ slice i} X_x c_x
/// where c_x is the Hadamard product of the other factors' rows at x.
/// Rows are independent, so the pass parallelizes over the cached
/// per-mode `SliceSchedule` with no locks, and the length-R inner loops
/// (Hadamard build-up, rhs/normal accumulation) run through the
/// rank-specialized `RowOps<W>` primitives: the normal matrix is
/// assembled with full-row `axpy` deposits — symmetric by construction,
/// no mirror pass — which vectorizes where the seed's triangular scalar
/// loop could not.

#include <algorithm>

#include "completion/solver.hpp"
#include "la/cholesky.hpp"
#include "la/kernels.hpp"
#include "parallel/team.hpp"

namespace sptd {
namespace {

namespace kern = la::kern;

/// \p vals is the mode's grouped value stream — fp64 under f64 precision,
/// the workspace's fp32 copy under f32/mixed; each value widens to val_t
/// at the read, so the normal equations accumulate fp64 regardless.
template <idx_t W, typename StoreT>
void als_update_mode(CompletionWorkspace& ws, int mode,
                     const StoreT* SPTD_RESTRICT vals,
                     std::vector<la::Matrix>& factors,
                     std::vector<la::Matrix>& normals,
                     std::vector<la::Matrix>& rhs) {
  using Ops = kern::RowOps<W>;
  const ModeSlices& ms = ws.mode_slices(mode);
  const SparseTensor& t = ms.grouped;
  const int order = t.order();
  const idx_t rank = factors[0].cols();
  const auto reg = static_cast<val_t>(ws.options().regularization);
  la::Matrix& target = factors[static_cast<std::size_t>(mode)];

  ms.schedule.reset();
  parallel_region(ws.nthreads(), [&](int tid, int) {
    la::Matrix& scratch = ws.scratch(tid);
    val_t* SPTD_RESTRICT c = scratch.row_ptr(0);
    val_t* SPTD_RESTRICT b = scratch.row_ptr(1);
    la::Matrix& normal = normals[static_cast<std::size_t>(tid)];
    la::Matrix& solution = rhs[static_cast<std::size_t>(tid)];

    const auto update_row = [&](idx_t i) {
      const nnz_t lo = ms.slice_ptr[i];
      const nnz_t hi = ms.slice_ptr[static_cast<std::size_t>(i) + 1];
      if (lo == hi) {
        return;  // unobserved row keeps its current value
      }
      normal.fill(val_t{0});
      std::fill_n(b, rank, val_t{0});
      for (nnz_t x = lo; x < hi; ++x) {
        // c = Hadamard of the other factors' rows.
        bool first = true;
        for (int m = 0; m < order; ++m) {
          if (m == mode) continue;
          const val_t* row =
              factors[static_cast<std::size_t>(m)].row_ptr(t.ind(m)[x]);
          if (first) {
            Ops::copy(c, row, rank);
            first = false;
          } else {
            Ops::hadamard(c, row, rank);
          }
        }
        Ops::axpy(b, c, static_cast<val_t>(vals[x]), rank);
        // Full-row deposits build the whole symmetric normal matrix in
        // one vectorized sweep (padding lanes of c are zero, so the
        // padded columns of `normal` stay zero).
        for (idx_t r = 0; r < rank; ++r) {
          Ops::axpy(normal.row_ptr(r), c, c[r], rank);
        }
      }
      for (idx_t r = 0; r < rank; ++r) {
        normal(r, r) += reg;
      }
      Ops::copy(solution.row_ptr(0), b, rank);
      la::solve_normal_equations(normal, solution, 1);
      Ops::copy(target.row_ptr(i), solution.row_ptr(0), rank);
    };

    ms.schedule.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
      for (nnz_t i = begin; i < end; ++i) {
        update_row(static_cast<idx_t>(i));
      }
    });
  });
}

class AlsSolver final : public CompletionSolver {
 public:
  explicit AlsSolver(CompletionWorkspace& ws) : ws_(ws) {
    const idx_t rank = ws.options().rank;
    normals_.reserve(static_cast<std::size_t>(ws.nthreads()));
    rhs_.reserve(static_cast<std::size_t>(ws.nthreads()));
    for (int t = 0; t < ws.nthreads(); ++t) {
      normals_.emplace_back(rank, rank);
      rhs_.emplace_back(1, rank);
    }
  }

  [[nodiscard]] const char* name() const override { return "als"; }

  void run_epoch(KruskalModel& model, int /*epoch*/) override {
    const bool narrow = ws_.options().precision != Precision::kF64;
    for (int m = 0; m < ws_.order(); ++m) {
      const ModeSlices& ms = ws_.mode_slices(m);
      kern::dispatch_width(ws_.kernel_width(), [&](auto wc) {
        if (narrow) {
          als_update_mode<decltype(wc)::value>(
              ws_, m, ms.vals_f32.data(), model.factors, normals_, rhs_);
        } else {
          als_update_mode<decltype(wc)::value>(
              ws_, m, ms.grouped.vals().data(), model.factors, normals_,
              rhs_);
        }
      });
    }
  }

 private:
  CompletionWorkspace& ws_;
  std::vector<la::Matrix> normals_;  ///< per-thread R×R normal equations
  std::vector<la::Matrix> rhs_;      ///< per-thread 1×R solve buffer
};

}  // namespace

namespace detail {

std::unique_ptr<CompletionSolver> make_als_solver(CompletionWorkspace& ws) {
  return std::make_unique<AlsSolver>(ws);
}

}  // namespace detail
}  // namespace sptd
