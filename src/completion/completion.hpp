#pragma once
/// \file completion.hpp
/// \brief Sparse tensor completion: CP decomposition with missing values,
///        behind a pluggable solver subsystem.
///
/// SPLATT's completion command exposes six optimizers (gd/cg/lbfgs/sgd/
/// ccd/als) behind one interface; this module ports the three that cover
/// the design space — direct row solves (ALS), stochastic first-order
/// updates (SGD), and scalar coordinate descent (CCD++) — as
/// `CompletionSolver` implementations over a shared `CompletionWorkspace`
/// (completion/workspace.hpp). Unlike CP-ALS — which treats unobserved
/// coordinates as zeros — every solver fits ONLY the observed entries:
///
///   min_{A(0..N-1)} Σ_{x ∈ Ω} (X_x - Σ_r Π_m A(m)(x_m, r))² +
///                   λ Σ_m ||A(m)||²_F
///
/// All solvers route their slice/row distribution through the
/// execution-plan layer (`SchedulePolicy` / `SliceSchedule`) and their
/// length-R inner loops through the rank-specialized primitives in
/// la/kernels.hpp (`RowOps<W>` over `dot_r`/`axpy_r`/`hadamard_r`).

#include <string>
#include <vector>

#include "common/precision.hpp"
#include "common/types.hpp"
#include "cpd/kruskal.hpp"
#include "parallel/backend.hpp"
#include "parallel/schedule.hpp"
#include "resilience/resilience.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// Which completion optimizer runs (the `--alg` flag).
enum class CompletionAlgorithm : int {
  kAls = 0,  ///< alternating least squares: per-row R×R normal equations
  kSgd,      ///< stratified stochastic gradient descent
  kCcd,      ///< CCD++: rank-one column sweeps with residual maintenance
};

/// Parses "als" / "sgd" / "ccd"; throws sptd::Error otherwise.
CompletionAlgorithm parse_completion_algorithm(const std::string& name);

/// Flag/log name of an algorithm.
const char* completion_algorithm_name(CompletionAlgorithm alg);

/// Knobs for tensor completion (all solvers).
struct CompletionOptions {
  idx_t rank = 10;
  /// Which solver runs (`--alg als|sgd|ccd`).
  CompletionAlgorithm algorithm = CompletionAlgorithm::kAls;
  int max_iterations = 50;
  /// Tikhonov regularization on every row's update. Also keeps rows with
  /// very few observations well-posed.
  double regularization = 1e-2;
  /// Stop when validation RMSE fails to improve by this much between
  /// iterations (0 disables; training then runs max_iterations).
  double tolerance = 1e-4;
  /// SGD step size (`--lr`). Ignored by ALS and CCD++.
  double learn_rate = 0.02;
  /// SGD learning-rate decay (`--decay`): epoch e runs at
  /// learn_rate / (1 + decay * e). Ignored by ALS and CCD++.
  double decay = 0.01;
  std::uint64_t seed = 31;
  int nthreads = 1;
  /// Slice scheduling for the per-mode row/column passes (static |
  /// weighted | dynamic | workstealing); the schedules are built once per
  /// mode in the workspace and reused across all iterations (reset() per
  /// pass rewinds the dynamic cursor / reseeds the work-stealing deques).
  /// SGD stratum boundaries always come from a *static* prediction (the
  /// weighted partition, or equal slice counts under kStatic) because
  /// stratum ownership must not move at run time.
  SchedulePolicy schedule = SchedulePolicy::kWeighted;
  /// Dynamic/work-stealing claims-per-thread target (the --chunk flag).
  int chunk_target = static_cast<int>(SliceSchedule::kDefaultChunkTarget);
  /// Route inner loops through the rank-specialized fixed-width kernels
  /// where the rank has one (la/kernels.hpp); false forces the generic
  /// runtime-length loops (the scalar reference path).
  bool use_fixed_kernels = true;
  /// Value-stream precision (common/precision.hpp). f64 is the exact
  /// pre-precision pipeline. f32/mixed read the observed training values
  /// through an fp32 copy (the per-epoch value stream of every solver) —
  /// widened at the read, so errors, gradients, row solves, the CCD++
  /// residual, and all RMSEs still accumulate fp64. f32 additionally
  /// rounds every factor through fp32 after each epoch (the pure-fp32
  /// ablation endpoint mixed is judged against).
  Precision precision = Precision::kF64;
  /// Parallel backend (parallel/backend.hpp): omp (default) or pool.
  /// The completion driver applies this process-wide via
  /// set_parallel_backend() before building the workspace; defaults from
  /// SPTD_BACKEND.
  ParallelBackendKind backend = default_parallel_backend();

  /// Checkpoint/restart, numeric-health guards, and fault injection
  /// (inert by default). Checkpoints carry the best-validation model and
  /// the CCD++ residual, so resume reproduces the uninterrupted run
  /// bitwise for every solver.
  ResilienceOptions resilience;
};

/// Result of a completion run.
struct CompletionResult {
  /// The returned model: when a validation set was given, the factors are
  /// restored from the iteration with the *best* validation RMSE (SPLATT's
  /// best-model behavior), not the last iteration's.
  KruskalModel model;
  std::vector<double> train_rmse;  ///< per-iteration RMSE on train set
  std::vector<double> val_rmse;    ///< per-iteration RMSE on val set
                                   ///< (empty when no val set given)
  int iterations = 0;              ///< iterations actually run
  /// 1-based iteration whose factors `model` holds: argmin of val_rmse
  /// when validation was given, else the last iteration.
  int best_iteration = 0;
  /// Checkpoint/recovery activity observed during the run.
  ResilienceCounters resilience;
};

/// Root-mean-square error of the model on a set of observed entries.
/// \p use_fixed_kernels routes the per-entry prediction loop through the
/// rank-specialized primitives (false = the scalar reference loops, the
/// same escape hatch as CompletionOptions::use_fixed_kernels).
double rmse(const SparseTensor& observed, const KruskalModel& model,
            int nthreads, bool use_fixed_kernels = true);

/// Runs tensor completion on the observed entries of \p train with the
/// solver named by options.algorithm.
/// \p validation may be empty (pass nullptr) — then no early stopping and
/// the last iteration's factors are returned.
CompletionResult complete_tensor(const SparseTensor& train,
                                 const SparseTensor* validation,
                                 const CompletionOptions& options);

/// Randomly splits a tensor's nonzeros into train/holdout parts
/// (holdout_fraction in (0,1)). Deterministic in the seed. Both outputs
/// keep the input's dims, so indices stay comparable. The split is
/// slice-aware: every slice of every mode that is nonempty in \p t keeps
/// at least one *training* entry (a random holdout that would orphan a
/// slice is repaired by returning its first entry to the train side), so
/// no row of any factor is ever determined purely by regularization.
std::pair<SparseTensor, SparseTensor> split_train_test(
    const SparseTensor& t, double holdout_fraction, std::uint64_t seed);

}  // namespace sptd
