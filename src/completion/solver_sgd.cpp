/// \file solver_sgd.cpp
/// \brief Stratified stochastic gradient descent for tensor completion.
///
/// Per observed entry x with error e = X_x - Σ_r Π_m A(m)(x_m, r), every
/// touched factor row steps along its gradient:
///   a_m ← a_m + lr · (e · h_m - λ a_m),   h_m = ⊙_{m'≠m} a_{m'}
/// with lr decayed per epoch as learn_rate / (1 + decay · epoch).
///
/// Parallelism is stratified (no hogwild races, bitwise deterministic at
/// a fixed thread count): the workspace cuts every mode into S blocks
/// with the weighted nnz partition and buckets nonzeros by the resulting
/// cell. A sub-epoch hands thread t cell (t, t+s_1, ..., t+s_{N-1}) mod
/// S — distinct blocks in EVERY mode across threads, so no factor row is
/// ever shared — and the S^(N-1) sub-epochs of an epoch cover all cells
/// exactly once. Each cell's entries are reshuffled once per epoch by a
/// generator seeded from (seed, epoch, cell), so trajectories are
/// reproducible from the seed alone.

#include <algorithm>
#include <utility>

#include "common/rng.hpp"
#include "completion/solver.hpp"
#include "la/kernels.hpp"
#include "parallel/team.hpp"

namespace sptd {
namespace {

namespace kern = la::kern;

/// Scratch-row layout inside the per-thread workspace matrix
/// (3 * order + 3 rows, see CompletionWorkspace):
///   [0, order)          copies of the touched rows (the gradient point)
///   [order, 2*order)    h_m — products of the *other* modes' rows
///   [2*order, 3*order)  suffix products
///   3*order, 3*order+1  prefix ping-pong
///   3*order + 2         the all-ones row (padding lanes zero)
/// \p vals is the canonical-order value stream (\p x indexes original
/// nnz ids) — fp64 under f64 precision, the workspace's fp32 copy under
/// f32/mixed; the error term widens at the read and stays fp64.
template <idx_t W, typename StoreT>
void sgd_update(const SparseTensor& t, const StoreT* SPTD_RESTRICT vals,
                nnz_t x, std::vector<la::Matrix>& factors,
                la::Matrix& scratch, idx_t rank, int order, val_t lr,
                val_t reg) {
  using Ops = kern::RowOps<W>;
  const auto old_row = [&](int m) {
    return scratch.row_ptr(static_cast<idx_t>(m));
  };
  const auto other_row = [&](int m) {
    return scratch.row_ptr(static_cast<idx_t>(order + m));
  };
  const auto suffix_row = [&](int m) {
    return scratch.row_ptr(static_cast<idx_t>(2 * order + m));
  };
  const val_t* ones = scratch.row_ptr(static_cast<idx_t>(3 * order + 2));

  for (int m = 0; m < order; ++m) {
    Ops::copy(old_row(m),
              factors[static_cast<std::size_t>(m)].row_ptr(t.ind(m)[x]),
              rank);
  }
  // Suffix products: suf[m] = old[m+1] ⊙ ... ⊙ old[order-1].
  const val_t* suf[kMaxOrder];
  suf[order - 1] = ones;
  for (int m = order - 2; m >= 0; --m) {
    Ops::mul(suffix_row(m), old_row(m + 1), suf[m + 1], rank);
    suf[m] = suffix_row(m);
  }
  // Prefix sweep: h_m = pre ⊙ suf[m], pre accumulating old rows through a
  // ping-pong pair (the RowOps primitives never alias in with out).
  const val_t* pre = ones;
  val_t* ping = scratch.row_ptr(static_cast<idx_t>(3 * order));
  val_t* pong = scratch.row_ptr(static_cast<idx_t>(3 * order + 1));
  for (int m = 0; m < order; ++m) {
    Ops::mul(other_row(m), pre, suf[m], rank);
    if (m + 1 < order) {
      Ops::mul(ping, pre, old_row(m), rank);
      pre = ping;
      std::swap(ping, pong);
    }
  }

  const val_t e =
      static_cast<val_t>(vals[x]) - Ops::dot(other_row(0), old_row(0), rank);
  for (int m = 0; m < order; ++m) {
    val_t* row = factors[static_cast<std::size_t>(m)].row_ptr(t.ind(m)[x]);
    Ops::axpy(row, other_row(m), lr * e, rank);
    Ops::axpy(row, old_row(m), -lr * reg, rank);
  }
}

class SgdSolver final : public CompletionSolver {
 public:
  explicit SgdSolver(CompletionWorkspace& ws) : ws_(ws) {
    // Seed every thread's all-ones scratch row once (logical lanes only;
    // the padding stays zero so fixed-width products stay exact).
    const idx_t rank = ws.options().rank;
    const auto ones_row = static_cast<idx_t>(3 * ws.order() + 2);
    for (int t = 0; t < ws.nthreads(); ++t) {
      std::fill_n(ws.scratch(t).row_ptr(ones_row), rank, val_t{1});
    }
  }

  [[nodiscard]] const char* name() const override { return "sgd"; }

  /// The per-epoch Fisher-Yates shuffles below permute cell_ids in place,
  /// so every epoch's visit order depends on all earlier epochs' shuffles.
  /// That permutation is therefore solver state: a resume must restore it,
  /// or the first recomputed epoch shuffles from the canonical bucketed
  /// order and the trajectory silently diverges from the unkilled run.
  [[nodiscard]] std::vector<double> serialize_state() const override {
    const std::vector<nnz_t>& ids = ws_.strata().cell_ids;
    return std::vector<double>(ids.begin(), ids.end());
  }

  void restore_state(const std::vector<double>& state) override {
    std::vector<nnz_t>& ids = ws_.strata().cell_ids;
    SPTD_CHECK(state.size() == ids.size(),
               "sgd restore_state: permutation length mismatch");
    for (std::size_t i = 0; i < state.size(); ++i) {
      ids[i] = static_cast<nnz_t>(state[i]);
    }
  }

  void run_epoch(KruskalModel& model, int epoch) override {
    const CompletionOptions& opts = ws_.options();
    const SparseTensor& t = ws_.train();
    StratumGrid& grid = ws_.strata();
    const int order = ws_.order();
    const idx_t rank = opts.rank;
    const auto side = static_cast<nnz_t>(grid.side);
    const auto lr = static_cast<val_t>(
        opts.learn_rate /
        (1.0 + opts.decay * static_cast<double>(epoch)));
    const auto reg = static_cast<val_t>(opts.regularization);

    nnz_t sub_epochs = 1;
    for (int m = 1; m < order; ++m) {
      sub_epochs *= side;
    }
    for (nnz_t s = 0; s < sub_epochs; ++s) {
      parallel_region(ws_.nthreads(), [&](int tid, int) {
        if (static_cast<nnz_t>(tid) >= side) {
          return;  // threads beyond the stratum side idle this pass
        }
        // Cell for this (thread, sub-epoch): block_0 = tid and
        // block_m = (tid + digit_m(s)) mod S, folded mode-major exactly
        // as the grid encoded it.
        nnz_t cell = static_cast<nnz_t>(tid);
        nnz_t rem = s;
        for (int m = 1; m < order; ++m) {
          const nnz_t offset = rem % side;
          rem /= side;
          cell = cell * side + (static_cast<nnz_t>(tid) + offset) % side;
        }
        const nnz_t lo = grid.cell_ptr[static_cast<std::size_t>(cell)];
        const nnz_t hi = grid.cell_ptr[static_cast<std::size_t>(cell) + 1];
        if (lo == hi) {
          return;
        }
        // Every cell is visited exactly once per epoch, so shuffling at
        // visit time is the per-epoch shuffle — seeded per (seed, epoch,
        // cell), independent of which thread runs it.
        Rng shuffle(opts.seed +
                    0x9E3779B97F4A7C15ULL *
                        (static_cast<std::uint64_t>(epoch) + 1) +
                    cell);
        nnz_t* ids = grid.cell_ids.data() + lo;
        const nnz_t n = hi - lo;
        for (nnz_t i = n - 1; i > 0; --i) {
          std::swap(ids[i], ids[shuffle.next_below(i + 1)]);
        }
        la::Matrix& scratch = ws_.scratch(tid);
        const bool narrow = opts.precision != Precision::kF64;
        kern::dispatch_width(ws_.kernel_width(), [&](auto wc) {
          const auto run = [&](const auto* SPTD_RESTRICT vals) {
            for (nnz_t i = 0; i < n; ++i) {
              sgd_update<decltype(wc)::value>(t, vals, ids[i],
                                              model.factors, scratch, rank,
                                              order, lr, reg);
            }
          };
          if (narrow) {
            run(ws_.train_vals_f32().data());
          } else {
            run(t.vals().data());
          }
        });
      });
    }
  }

 private:
  CompletionWorkspace& ws_;
};

}  // namespace

namespace detail {

std::unique_ptr<CompletionSolver> make_sgd_solver(CompletionWorkspace& ws) {
  return std::make_unique<SgdSolver>(ws);
}

}  // namespace detail
}  // namespace sptd
