#pragma once
/// \file solver.hpp
/// \brief The pluggable completion-solver interface.
///
/// `complete_tensor` owns the epoch loop (RMSE tracking, early stopping,
/// best-model restore); a `CompletionSolver` owns one training pass. The
/// three shipped solvers — ALS, stratified SGD, CCD++ — live in
/// solver_als.cpp / solver_sgd.cpp / solver_ccd.cpp and share a
/// `CompletionWorkspace`. Future optimizers (streaming, distributed
/// completion) plug in here: implement run_epoch() over the workspace's
/// slice views and register in make_completion_solver().

#include <memory>
#include <vector>

#include "completion/completion.hpp"
#include "completion/workspace.hpp"
#include "cpd/kruskal.hpp"

namespace sptd {

/// One completion optimizer: stateless between runs except what it keeps
/// in the shared workspace.
class CompletionSolver {
 public:
  virtual ~CompletionSolver() = default;

  /// Flag/log name ("als" / "sgd" / "ccd").
  [[nodiscard]] virtual const char* name() const = 0;

  /// Called once with the initialized model before the first epoch
  /// (CCD++ computes its residual here).
  virtual void begin(const KruskalModel& model) { (void)model; }

  /// One pass over the training data, updating \p model in place.
  /// \p epoch counts from 0 (SGD derives its decayed step size and its
  /// per-epoch shuffle seeds from it).
  virtual void run_epoch(KruskalModel& model, int epoch) = 0;

  /// Solver-private state that must ride a checkpoint for bitwise resume.
  /// ALS and SGD are stateless between epochs (SGD reshuffles per
  /// (seed, epoch)); CCD++ returns its incrementally maintained residual,
  /// which a recompute would only match to rounding error. Default: none.
  [[nodiscard]] virtual std::vector<double> serialize_state() const {
    return {};
  }

  /// Restores state captured by serialize_state(). Called after begin().
  virtual void restore_state(const std::vector<double>& state) {
    (void)state;
  }
};

/// Instantiates the solver options.algorithm names over \p workspace.
/// The workspace (and the training tensor it references) must outlive the
/// returned solver.
std::unique_ptr<CompletionSolver> make_completion_solver(
    CompletionWorkspace& workspace);

namespace detail {

/// The solver registry: one factory per solver_*.cpp translation unit.
std::unique_ptr<CompletionSolver> make_als_solver(CompletionWorkspace& ws);
std::unique_ptr<CompletionSolver> make_sgd_solver(CompletionWorkspace& ws);
std::unique_ptr<CompletionSolver> make_ccd_solver(CompletionWorkspace& ws);

}  // namespace detail

}  // namespace sptd
