#pragma once
/// \file workspace.hpp
/// \brief Shared per-run state for the completion solvers.
///
/// Every completion solver walks "all observed entries whose mode-m
/// coordinate is i" and distributes that walk over a thread team. The
/// workspace builds this once per run — per-mode slice views with cached
/// `SliceSchedule`s from the execution-plan layer — plus the
/// solver-specific state that must outlive an epoch: the SGD stratum grid
/// (built from the same weighted partition machinery, so no two threads
/// ever touch the same factor rows) and the CCD++ residual array. Solvers
/// hold a reference to one workspace and carry no state of their own
/// beyond scalars.

#include <memory>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "completion/completion.hpp"
#include "la/matrix.hpp"
#include "parallel/schedule.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// Observed entries grouped by slice of one mode: a CSR-like view used to
/// walk "all nonzeros whose mode-m coordinate is i" during a row/column
/// update, with the row distribution over the team cached alongside it.
/// Built by a stable counting sort on the single mode coordinate, which
/// also yields `canon` — the permutation back to the training tensor's
/// original nonzero order — so per-nonzero state shared across modes (the
/// CCD++ residual) can live in one canonical array.
struct ModeSlices {
  SparseTensor grouped;          ///< copy grouped by mode-m coordinate
  std::vector<nnz_t> slice_ptr;  ///< per-slice extents (dims[m]+1)
  std::vector<nnz_t> canon;      ///< grouped position -> original nnz id
  SliceSchedule schedule;        ///< row distribution over the team
  /// fp32 copy of grouped.vals(), built only under f32/mixed precision
  /// (empty under f64): the value stream the ALS row passes read.
  aligned_vector<float> vals_f32;
};

/// The SGD stratum grid: each mode's index space is cut into S blocks by
/// the weighted nnz partition (equal slice counts under kStatic), a cell
/// is one block per mode, and nonzeros are bucketed by cell in CSR form.
/// In sub-epoch (s_1..s_{N-1}) thread t owns cell
/// (t, (t+s_1) mod S, ..., (t+s_{N-1}) mod S): any two threads differ in
/// EVERY mode's block, so no factor row is ever shared, and over the
/// S^(N-1) sub-epochs of an epoch every cell is visited exactly once.
struct StratumGrid {
  int side = 0;                   ///< S: blocks per mode (<= nthreads)
  std::vector<std::vector<nnz_t>> mode_bounds;  ///< per mode, S+1 bounds
  std::vector<nnz_t> cell_ptr;    ///< CSR extents, length S^order + 1
  std::vector<nnz_t> cell_ids;    ///< original nnz ids, bucketed by cell
  [[nodiscard]] nnz_t cells() const {
    return cell_ptr.empty() ? 0 : static_cast<nnz_t>(cell_ptr.size()) - 1;
  }
};

/// Everything the solvers share across epochs for one training tensor.
class CompletionWorkspace {
 public:
  /// Builds the per-mode slice views and schedules; the SGD/CCD state is
  /// built only when \p options.algorithm needs it.
  CompletionWorkspace(const SparseTensor& train,
                      const CompletionOptions& options);

  [[nodiscard]] const SparseTensor& train() const { return *train_; }
  [[nodiscard]] const CompletionOptions& options() const {
    return *options_;
  }
  [[nodiscard]] int order() const { return train_->order(); }
  [[nodiscard]] int nthreads() const { return options_->nthreads; }

  /// The kernel width the run's rank and --kernels flag select
  /// (0 = generic runtime-length loops).
  [[nodiscard]] idx_t kernel_width() const { return kernel_width_; }

  [[nodiscard]] const ModeSlices& mode_slices(int m) const {
    return slices_[static_cast<std::size_t>(m)];
  }

  /// Distribution of [0, nnz) over the team under the run's policy, for
  /// whole-nonzero passes (CCD++ residual initialization).
  [[nodiscard]] const SliceSchedule& nnz_schedule() const {
    return nnz_schedule_;
  }

  /// fp32 copy of the training values in canonical (original) nonzero
  /// order, built only under f32/mixed precision — the value stream of
  /// the passes that index original nnz ids (SGD updates, the CCD++
  /// residual initialization).
  [[nodiscard]] std::span<const float> train_vals_f32() const {
    return train_vals_f32_;
  }

  /// SGD stratum grid (empty unless algorithm == kSgd).
  [[nodiscard]] StratumGrid& strata() { return strata_; }
  [[nodiscard]] const StratumGrid& strata() const { return strata_; }

  /// CCD++ residual, canonical nonzero order (empty unless kCcd).
  [[nodiscard]] aligned_vector<val_t>& residual() { return residual_; }

  /// Per-thread aligned scratch rows (ld()-padded, padding lanes zero):
  /// thread \p tid gets its own matrix, sized by the solver's needs at
  /// construction, so hot passes never allocate.
  [[nodiscard]] la::Matrix& scratch(int tid) {
    return scratch_[static_cast<std::size_t>(tid)];
  }

  /// Per-thread spill buffer for slice-length temporaries (CCD++ caches
  /// the "other factors" products of a slice between its two passes).
  [[nodiscard]] aligned_vector<val_t>& slice_buffer(int tid) {
    return slice_buffers_[static_cast<std::size_t>(tid)];
  }

 private:
  const SparseTensor* train_;
  const CompletionOptions* options_;
  idx_t kernel_width_ = 0;
  std::vector<ModeSlices> slices_;
  SliceSchedule nnz_schedule_;
  aligned_vector<float> train_vals_f32_;
  StratumGrid strata_;
  aligned_vector<val_t> residual_;
  std::vector<la::Matrix> scratch_;
  std::vector<aligned_vector<val_t>> slice_buffers_;
};

}  // namespace sptd
