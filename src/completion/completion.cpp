#include "completion/completion.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <optional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "completion/solver.hpp"
#include "completion/workspace.hpp"
#include "la/kernels.hpp"
#include "la/matrix.hpp"
#include "parallel/partition.hpp"
#include "parallel/team.hpp"
#include "resilience/context.hpp"

namespace sptd {

namespace kern = la::kern;

CompletionAlgorithm parse_completion_algorithm(const std::string& name) {
  if (name == "als") return CompletionAlgorithm::kAls;
  if (name == "sgd") return CompletionAlgorithm::kSgd;
  if (name == "ccd" || name == "ccd++") return CompletionAlgorithm::kCcd;
  throw Error("unknown completion algorithm '" + name +
              "' (expected als|sgd|ccd)");
}

const char* completion_algorithm_name(CompletionAlgorithm alg) {
  switch (alg) {
    case CompletionAlgorithm::kAls: return "als";
    case CompletionAlgorithm::kSgd: return "sgd";
    case CompletionAlgorithm::kCcd: return "ccd";
  }
  return "?";
}

std::unique_ptr<CompletionSolver> make_completion_solver(
    CompletionWorkspace& workspace) {
  switch (workspace.options().algorithm) {
    case CompletionAlgorithm::kAls: return detail::make_als_solver(workspace);
    case CompletionAlgorithm::kSgd: return detail::make_sgd_solver(workspace);
    case CompletionAlgorithm::kCcd: return detail::make_ccd_solver(workspace);
  }
  throw Error("complete_tensor: unknown algorithm");
}

double rmse(const SparseTensor& observed, const KruskalModel& model,
            int nthreads, bool use_fixed_kernels) {
  SPTD_CHECK(observed.order() == model.order(), "rmse: order mismatch");
  if (observed.nnz() == 0) {
    return 0.0;
  }
  const int order = observed.order();
  const idx_t rank = model.rank();
  const idx_t width = use_fixed_kernels ? kern::fixed_width_for(rank) : 0;
  std::vector<double> partials(static_cast<std::size_t>(nthreads), 0.0);
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range range = block_partition(observed.nnz(), nt, tid);
    la::Matrix scratch(1, rank);
    val_t* SPTD_RESTRICT h = scratch.row_ptr(0);
    double acc = 0.0;
    kern::dispatch_width(width, [&](auto wc) {
      using Ops = kern::RowOps<decltype(wc)::value>;
      for (nnz_t x = range.begin; x < range.end; ++x) {
        Ops::copy(h, model.factors[0].row_ptr(observed.ind(0)[x]), rank);
        for (int m = 1; m < order; ++m) {
          Ops::hadamard(h,
                        model.factors[static_cast<std::size_t>(m)].row_ptr(
                            observed.ind(m)[x]),
                        rank);
        }
        // λ is a plain vector (no alignment guarantee) — the generic dot
        // closes the prediction.
        const val_t pred = kern::dot(h, model.lambda.data(), rank);
        const double err = static_cast<double>(observed.vals()[x] - pred);
        acc += err * err;
      }
    });
    partials[static_cast<std::size_t>(tid)] = acc;
  });
  double total = 0.0;
  for (const double p : partials) total += p;
  return std::sqrt(total / static_cast<double>(observed.nnz()));
}

CompletionResult complete_tensor(const SparseTensor& train,
                                 const SparseTensor* validation,
                                 const CompletionOptions& options) {
  SPTD_CHECK(train.nnz() > 0, "complete_tensor: empty training set");
  SPTD_CHECK(train.order() >= 2, "complete_tensor: order must be >= 2");
  SPTD_CHECK(options.rank >= 1, "complete_tensor: rank must be >= 1");
  SPTD_CHECK(options.max_iterations >= 1,
             "complete_tensor: need >= 1 iteration");
  SPTD_CHECK(options.nthreads >= 1,
             "complete_tensor: nthreads must be >= 1");
  if (options.algorithm == CompletionAlgorithm::kSgd) {
    SPTD_CHECK(options.learn_rate > 0.0,
               "complete_tensor: SGD needs --lr > 0");
    SPTD_CHECK(options.decay >= 0.0,
               "complete_tensor: --decay must be >= 0");
  }
  if (validation != nullptr) {
    SPTD_CHECK(validation->order() == train.order(),
               "complete_tensor: validation order mismatch");
  }
  set_parallel_backend(options.backend);
  init_parallel_runtime();

  const int order = train.order();
  const int nthreads = options.nthreads;

  // Per-mode slice views + schedules + solver state, built once (the
  // memory trade — one grouped copy per mode — is the same one SPLATT's
  // completion code makes).
  CompletionWorkspace workspace(train, options);

  CompletionResult result;
  KruskalModel& model = result.model;
  model.lambda.assign(options.rank, val_t{1});
  Rng rng(options.seed);
  for (int m = 0; m < order; ++m) {
    // Small random init keeps early predictions near zero, which is the
    // right prior for sparse ratings-style data (and a stable starting
    // step for SGD). Identical across solvers so runs are comparable.
    model.factors.push_back(
        la::Matrix::random(train.dim(m), options.rank, rng));
    for (val_t& v : model.factors.back().values()) {
      v *= val_t{0.5};
    }
  }

  ResilienceContext rctx(options.resilience, "completion", options.seed);
  int it = 0;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<la::Matrix> best_factors;
  std::optional<Checkpoint> resume_ck = rctx.try_resume();
  if (resume_ck) {
    SPTD_CHECK(resume_ck->factors.size() == static_cast<std::size_t>(order),
               "completion resume: checkpoint order mismatch");
    for (int m = 0; m < order; ++m) {
      const la::Matrix& f = resume_ck->factors[static_cast<std::size_t>(m)];
      SPTD_CHECK(f.rows() == train.dim(m) && f.cols() == options.rank,
                 "completion resume: checkpoint factor shape mismatch");
    }
    model.factors = std::move(resume_ck->factors);
    best_factors = std::move(resume_ck->aux_factors);
    if (const std::vector<double>* tr = resume_ck->find_series("train_rmse")) {
      result.train_rmse = *tr;
      double best_loss = std::numeric_limits<double>::infinity();
      for (const double r : *tr) best_loss = std::min(best_loss, r);
      rctx.health().seed_trend(best_loss);
    }
    if (const std::vector<double>* vr = resume_ck->find_series("val_rmse")) {
      result.val_rmse = *vr;
    }
    best_val = resume_ck->scalar("best_val",
                                 std::numeric_limits<double>::infinity());
    result.best_iteration =
        static_cast<int>(resume_ck->scalar("best_iteration", 0.0));
    it = resume_ck->iteration;
    result.iterations = it;
  }

  const std::unique_ptr<CompletionSolver> solver =
      make_completion_solver(workspace);
  solver->begin(model);
  if (resume_ck) {
    if (const std::vector<double>* st =
            resume_ck->find_series("solver_state")) {
      solver->restore_state(*st);
    }
  }

  const bool guard = rctx.health().enabled();
  struct GoodState {
    std::vector<la::Matrix> factors;
    std::vector<double> train_rmse;
    std::vector<double> val_rmse;
    std::vector<la::Matrix> best_factors;
    double best_val = std::numeric_limits<double>::infinity();
    int best_iteration = 0;
    int iteration = 0;
  } good;
  if (guard) {
    good = {model.factors, result.train_rmse, result.val_rmse,
            best_factors, best_val, result.best_iteration, it};
  }

  bool stopped = false;
  while (it < options.max_iterations && !stopped) {
    solver->run_epoch(model, it);
    if (options.precision == Precision::kF32) {
      // Pure-f32 ablation endpoint: the factors carry only fp32
      // information between epochs (RMSE bookkeeping stays fp64). The
      // rounding moves the model under CCD++'s incrementally maintained
      // residual, so that solver's residual is rebuilt from the rounded
      // factors before the next epoch.
      for (la::Matrix& factor : model.factors) {
        la::round_through_f32(factor);
      }
      if (options.algorithm == CompletionAlgorithm::kCcd) {
        solver->begin(model);
      }
    }

    if (FaultInjector* inj = rctx.injector()) {
      if (inj->corrupt_factors(model.factors, it) > 0 &&
          options.algorithm == CompletionAlgorithm::kCcd) {
        // Keep the residual consistent with the (now corrupt) model, as a
        // real soft error would: the health scan below must still catch it.
        solver->begin(model);
      }
    }

    const double train_err =
        rmse(train, model, nthreads, options.use_fixed_kernels);

    if (guard) {
      const HealthIssue issue =
          rctx.health().inspect(model.factors, model.lambda, train_err);
      if (issue != HealthIssue::kNone) {
        rctx.fail_or_retry(issue, it);  // throws when retries are exhausted
        model.factors = good.factors;
        result.train_rmse = good.train_rmse;
        result.val_rmse = good.val_rmse;
        best_factors = good.best_factors;
        best_val = good.best_val;
        result.best_iteration = good.best_iteration;
        it = good.iteration;
        perturb_factors(model.factors, rctx.recovery_rng());
        if (options.precision == Precision::kF32) {
          for (la::Matrix& factor : model.factors) {
            la::round_through_f32(factor);
          }
        }
        // Rebuild solver state (CCD++'s residual) from the restored model.
        solver->begin(model);
        continue;
      }
      rctx.note_healthy();
    }

    result.train_rmse.push_back(train_err);
    result.iterations = it + 1;
    if (validation != nullptr && validation->nnz() > 0) {
      const double v =
          rmse(*validation, model, nthreads, options.use_fixed_kernels);
      result.val_rmse.push_back(v);
      const double prev_best = best_val;
      if (v < best_val) {
        // Track the best-validation model (SPLATT's ws->best_model): the
        // returned factors must come from the argmin iteration, not from
        // whatever iteration the stopping rule happens to exit on.
        best_val = v;
        result.best_iteration = it + 1;
        best_factors = model.factors;
      }
      if (options.tolerance > 0.0 && it > 0 &&
          v > prev_best - options.tolerance) {
        stopped = true;  // validation error stopped improving
      }
    }
    ++it;

    if (guard) {
      good.factors = model.factors;
      good.train_rmse = result.train_rmse;
      good.val_rmse = result.val_rmse;
      good.best_factors = best_factors;
      good.best_val = best_val;
      good.best_iteration = result.best_iteration;
      good.iteration = it;
    }

    if (!stopped && it < options.max_iterations && rctx.checkpoint_due(it)) {
      Checkpoint ck;
      ck.iteration = it;
      ck.factors = model.factors;
      ck.aux_factors = best_factors;
      ck.set_series("train_rmse", result.train_rmse);
      ck.set_series("val_rmse", result.val_rmse);
      ck.set_scalar("best_val", best_val);
      ck.set_scalar("best_iteration", result.best_iteration);
      ck.set_series("solver_state", solver->serialize_state());
      rctx.save_checkpoint(std::move(ck));
    }
  }
  if (!best_factors.empty()) {
    model.factors = std::move(best_factors);
  } else {
    result.best_iteration = result.iterations;
  }
  rctx.finish(result.resilience);
  return result;
}

std::pair<SparseTensor, SparseTensor> split_train_test(
    const SparseTensor& t, double holdout_fraction, std::uint64_t seed) {
  SPTD_CHECK(holdout_fraction > 0.0 && holdout_fraction < 1.0,
             "split_train_test: fraction must be in (0,1)");
  Rng rng(seed);
  const nnz_t nnz = t.nnz();
  std::vector<char> holdout(nnz);
  for (nnz_t x = 0; x < nnz; ++x) {
    holdout[x] = rng.next_double() < holdout_fraction ? 1 : 0;
  }
  // Slice-aware repair: a slice whose every observation went to the
  // holdout side would leave its factor row determined purely by
  // regularization. For each mode, return the first held-out entry of any
  // fully-held-out slice to the train side. Modes are repaired in order;
  // repairs only ever ADD train entries, so earlier modes stay covered.
  for (int m = 0; m < t.order(); ++m) {
    const auto ids = t.ind(m);
    std::vector<nnz_t> train_in_slice(t.dim(m), 0);
    for (nnz_t x = 0; x < nnz; ++x) {
      if (!holdout[x]) {
        ++train_in_slice[ids[x]];
      }
    }
    for (nnz_t x = 0; x < nnz; ++x) {
      if (holdout[x] && train_in_slice[ids[x]] == 0) {
        holdout[x] = 0;
        ++train_in_slice[ids[x]];
      }
    }
  }
  SparseTensor train(t.dims());
  SparseTensor test(t.dims());
  const auto order = static_cast<std::size_t>(t.order());
  std::array<idx_t, kMaxOrder> c{};
  for (nnz_t x = 0; x < nnz; ++x) {
    for (std::size_t m = 0; m < order; ++m) {
      c[m] = t.ind(static_cast<int>(m))[x];
    }
    auto& dst = holdout[x] ? test : train;
    dst.push_back({c.data(), order}, t.vals()[x]);
  }
  return {std::move(train), std::move(test)};
}

}  // namespace sptd
