/// \file solver_ccd.cpp
/// \brief CCD++ (cyclic coordinate descent) for tensor completion.
///
/// CCD++ (Yu et al., scaled from matrix to tensor completion as in
/// SPLATT) sweeps the model one rank-one component at a time: for each
/// column r, each mode m in turn updates every row's scalar coordinate
/// in closed form,
///   a_ir ← (Σ_{x ∈ slice i} (res_x + a_ir·h_x) · h_x) / (λ + Σ h_x²),
/// where h_x is the product of the *other* modes' r-column entries and
/// res is the full residual X_x - model(x), maintained incrementally: a
/// row update folds its own delta into the residuals of its slice, whose
/// entries no other row of the pass touches — so the per-mode passes run
/// over the cached `SliceSchedule`s with no locks and residuals never
/// need a separate synchronization sweep. The residual lives in ONE
/// canonical-order array; each mode view reaches it through its `canon`
/// permutation.
///
/// The per-rank inner loops are scalar by nature (stride-R column
/// gathers); the O(nnz·R) residual initialization is where the rank-wide
/// work lives, and it runs through the `RowOps<W>` primitives.

#include <algorithm>

#include "completion/solver.hpp"
#include "la/kernels.hpp"
#include "parallel/team.hpp"

namespace sptd {
namespace {

namespace kern = la::kern;

class CcdSolver final : public CompletionSolver {
 public:
  explicit CcdSolver(CompletionWorkspace& ws) : ws_(ws) {
    // All-ones scratch row (row 2): reduces a Hadamard product row to its
    // lane sum through the same dot primitive the other solvers use.
    const idx_t rank = ws.options().rank;
    for (int t = 0; t < ws.nthreads(); ++t) {
      std::fill_n(ws.scratch(t).row_ptr(2), rank, val_t{1});
    }
  }

  [[nodiscard]] const char* name() const override { return "ccd"; }

  /// The incrementally maintained residual IS the solver state: a resumed
  /// run must see the exact array the interrupted run carried, not a
  /// recompute (which differs in the low bits and would break bitwise
  /// resume).
  [[nodiscard]] std::vector<double> serialize_state() const override {
    const aligned_vector<val_t>& res = ws_.residual();
    return std::vector<double>(res.begin(), res.end());
  }

  void restore_state(const std::vector<double>& state) override {
    aligned_vector<val_t>& res = ws_.residual();
    SPTD_CHECK(state.size() == res.size(),
               "ccd restore_state: residual length mismatch");
    for (std::size_t i = 0; i < state.size(); ++i) {
      res[i] = static_cast<val_t>(state[i]);
    }
  }

  /// res_x = X_x - model(x) over the canonical nonzero order, distributed
  /// by the workspace's whole-nonzero schedule. Under f32/mixed precision
  /// the observed values come from the workspace's fp32 canonical copy
  /// (widened at the read); the residual itself is always fp64.
  void begin(const KruskalModel& model) override {
    const SparseTensor& t = ws_.train();
    const idx_t rank = ws_.options().rank;
    const int order = ws_.order();
    aligned_vector<val_t>& res = ws_.residual();
    const SliceSchedule& schedule = ws_.nnz_schedule();
    schedule.reset();
    const auto init_pass = [&](const auto* SPTD_RESTRICT vals) {
      parallel_region(ws_.nthreads(), [&](int tid, int) {
        la::Matrix& scratch = ws_.scratch(tid);
        val_t* SPTD_RESTRICT h = scratch.row_ptr(0);
        const val_t* ones = scratch.row_ptr(2);
        kern::dispatch_width(ws_.kernel_width(), [&](auto wc) {
          using Ops = kern::RowOps<decltype(wc)::value>;
          schedule.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
            for (nnz_t x = begin; x < end; ++x) {
              Ops::copy(h, model.factors[0].row_ptr(t.ind(0)[x]), rank);
              for (int m = 1; m < order; ++m) {
                Ops::hadamard(
                    h,
                    model.factors[static_cast<std::size_t>(m)].row_ptr(
                        t.ind(m)[x]),
                    rank);
              }
              res[x] =
                  static_cast<val_t>(vals[x]) - Ops::dot(h, ones, rank);
            }
          });
        });
      });
    };
    if (ws_.options().precision != Precision::kF64) {
      init_pass(ws_.train_vals_f32().data());
    } else {
      init_pass(t.vals().data());
    }
  }

  void run_epoch(KruskalModel& model, int /*epoch*/) override {
    const idx_t rank = ws_.options().rank;
    for (idx_t r = 0; r < rank; ++r) {
      for (int m = 0; m < ws_.order(); ++m) {
        column_pass(model, m, r);
      }
    }
  }

 private:
  /// One closed-form update of column \p r of mode \p m, rows distributed
  /// by the cached schedule; folds the deltas into the shared residual.
  void column_pass(KruskalModel& model, int mode, idx_t r) {
    const ModeSlices& ms = ws_.mode_slices(mode);
    const SparseTensor& t = ms.grouped;
    const int order = ws_.order();
    const auto reg = static_cast<val_t>(ws_.options().regularization);
    la::Matrix& target = model.factors[static_cast<std::size_t>(mode)];
    aligned_vector<val_t>& res = ws_.residual();

    ms.schedule.reset();
    parallel_region(ws_.nthreads(), [&](int tid, int) {
      aligned_vector<val_t>& buf = ws_.slice_buffer(tid);
      ms.schedule.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
        for (nnz_t i = begin; i < end; ++i) {
          const nnz_t lo = ms.slice_ptr[i];
          const nnz_t hi = ms.slice_ptr[static_cast<std::size_t>(i) + 1];
          if (lo == hi) {
            continue;  // unobserved row keeps its current value
          }
          if (buf.size() < hi - lo) {
            buf.resize(hi - lo);
          }
          const val_t a = target.row_ptr(static_cast<idx_t>(i))[r];
          val_t num = 0;  // Σ res·h (h cached for the writeback pass)
          val_t den = 0;  // Σ h²
          for (nnz_t x = lo; x < hi; ++x) {
            val_t h = 1;
            for (int m = 0; m < order; ++m) {
              if (m == mode) continue;
              h *= model.factors[static_cast<std::size_t>(m)].row_ptr(
                  t.ind(m)[x])[r];
            }
            buf[x - lo] = h;
            num += res[ms.canon[x]] * h;
            den += h * h;
          }
          const val_t full_den = reg + den;
          if (!(full_den > 0)) {
            continue;  // λ = 0 and no signal: keep the current value
          }
          const val_t a_new = (num + a * den) / full_den;
          const val_t delta = a_new - a;
          target.row_ptr(static_cast<idx_t>(i))[r] = a_new;
          for (nnz_t x = lo; x < hi; ++x) {
            res[ms.canon[x]] -= delta * buf[x - lo];
          }
        }
      });
    });
  }

  CompletionWorkspace& ws_;
};

}  // namespace

namespace detail {

std::unique_ptr<CompletionSolver> make_ccd_solver(CompletionWorkspace& ws) {
  return std::make_unique<CcdSolver>(ws);
}

}  // namespace detail
}  // namespace sptd
