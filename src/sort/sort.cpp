#include "sort/sort.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "parallel/partition.hpp"
#include "parallel/team.hpp"

namespace sptd {

namespace {
std::atomic<std::uint64_t> g_sort_fastpath_hits{0};
}  // namespace

std::uint64_t sort_fastpath_hits() {
  return g_sort_fastpath_hits.load(std::memory_order_relaxed);
}

SortVariant parse_sort_variant(const std::string& name) {
  if (name == "initial") return SortVariant::kInitial;
  if (name == "array-opt") return SortVariant::kArrayOpt;
  if (name == "slices-opt") return SortVariant::kSlicesOpt;
  if (name == "all-opts") return SortVariant::kAllOpts;
  throw Error("unknown sort variant '" + name +
              "' (expected initial|array-opt|slices-opt|all-opts)");
}

const char* sort_variant_name(SortVariant variant) {
  switch (variant) {
    case SortVariant::kInitial:   return "initial";
    case SortVariant::kArrayOpt:  return "array-opt";
    case SortVariant::kSlicesOpt: return "slices-opt";
    case SortVariant::kAllOpts:   return "all-opts";
  }
  return "?";
}

std::vector<int> sort_mode_order(int order, int primary_mode) {
  std::vector<int> perm(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) {
    perm[static_cast<std::size_t>(m)] = (primary_mode + m) % order;
  }
  return perm;
}

namespace {

/// Per-element copy through emulated Chapel array views: both sides are
/// accessed via a heap-allocated descriptor with a strided, bounds-checked
/// address computation per element — the cost profile of the initial
/// port's slice-based sub-array reassignment. The descriptor fields are
/// reloaded through a pointer each iteration (Chapel's view indirection),
/// which also keeps the loop from collapsing into a memcpy.
template <typename T>
void chapel_slice_copy(T* dst_base, const T* src_base, nnz_t n) {
  struct View {
    nnz_t lo;
    nnz_t hi;  // inclusive
    nnz_t stride;
  };
  if (n == 0) return;
  const auto dst_view = std::make_unique<View>(View{0, n - 1, 1});
  const auto src_view = std::make_unique<View>(View{0, n - 1, 1});
  for (nnz_t i = 0; i < n; ++i) {
    const nnz_t si = src_view->lo + i;
    const nnz_t di = dst_view->lo + i;
    SPTD_CHECK(si <= src_view->hi && di <= dst_view->hi,
               "slice copy out of bounds");
    dst_base[di * dst_view->stride] = src_base[si * src_view->stride];
  }
}

/// Sorter over the secondary keys of one primary-mode slice. Works directly
/// on the tensor's struct-of-arrays storage (index arrays + values swapped
/// together), like SPLATT's p_tt_quicksort.
class SliceSorter {
 public:
  SliceSorter(SparseTensor& t, std::span<const int> secondary_modes,
              bool heap_pivot)
      : t_(t), modes_(secondary_modes), heap_pivot_(heap_pivot) {}

  void sort(nnz_t lo, nnz_t hi) { quicksort(lo, hi); }

 private:
  // SPLATT's MIN_QUICKSORT_SIZE: partitions recurse down to this size,
  // which is what makes the per-call pivot allocation of the initial port
  // visible (46M calls on full NELL-2, ~10% of sort time).
  static constexpr nnz_t kInsertionThreshold = 8;

  [[nodiscard]] bool less(nnz_t a, nnz_t b) const {
    for (const int m : modes_) {
      const auto ind = t_.ind(m);
      if (ind[a] != ind[b]) return ind[a] < ind[b];
    }
    return false;
  }

  /// nonzero a < pivot key held in \p pivot (one idx per secondary mode).
  [[nodiscard]] bool less_than_pivot(nnz_t a, const idx_t* pivot) const {
    for (std::size_t k = 0; k < modes_.size(); ++k) {
      const idx_t ia = t_.ind(modes_[k])[a];
      if (ia != pivot[k]) return ia < pivot[k];
    }
    return false;
  }

  [[nodiscard]] bool greater_than_pivot(nnz_t a, const idx_t* pivot) const {
    for (std::size_t k = 0; k < modes_.size(); ++k) {
      const idx_t ia = t_.ind(modes_[k])[a];
      if (ia != pivot[k]) return ia > pivot[k];
    }
    return false;
  }

  void load_pivot(nnz_t p, idx_t* pivot) const {
    for (std::size_t k = 0; k < modes_.size(); ++k) {
      pivot[k] = t_.ind(modes_[k])[p];
    }
  }

  void insertion_sort(nnz_t lo, nnz_t hi) {
    for (nnz_t i = lo + 1; i < hi; ++i) {
      nnz_t j = i;
      while (j > lo && less(j, j - 1)) {
        t_.swap_nonzeros(j, j - 1);
        --j;
      }
    }
  }

  void quicksort(nnz_t lo, nnz_t hi) {
    while (hi - lo > kInsertionThreshold) {
      // Median-of-3 pivot: move it to lo, partition around its key.
      const nnz_t mid = lo + (hi - lo) / 2;
      if (less(mid, lo)) t_.swap_nonzeros(mid, lo);
      if (less(hi - 1, lo)) t_.swap_nonzeros(hi - 1, lo);
      if (less(hi - 1, mid)) t_.swap_nonzeros(hi - 1, mid);
      t_.swap_nonzeros(lo, mid);

      nnz_t cut;
      if (heap_pivot_) {
        // The paper's *initial* Chapel code: a local array declared inside
        // the recursive routine — one heap allocation per call (46M calls
        // on NELL-2). Reproduced with a real heap-allocated vector.
        std::vector<idx_t> pivot(modes_.size());
        load_pivot(lo, pivot.data());
        cut = partition(lo, hi, pivot.data());
      } else {
        // Array-opt: plain scalar locals (fixed-size stack buffer).
        idx_t pivot[kMaxOrder];
        load_pivot(lo, pivot);
        cut = partition(lo, hi, pivot);
      }

      // Recurse on the smaller side, iterate on the larger (O(log n) depth).
      if (cut - lo < hi - cut) {
        quicksort(lo, cut);
        lo = cut;
      } else {
        quicksort(cut, hi);
        hi = cut;
      }
    }
    insertion_sort(lo, hi);
  }

  /// Hoare-style partition around the pivot key; returns the split point.
  /// Elements equal to the pivot may land on either side, which is fine
  /// for sorting.
  nnz_t partition(nnz_t lo, nnz_t hi, const idx_t* pivot) {
    nnz_t i = lo;
    nnz_t j = hi;
    while (true) {
      do {
        ++i;
      } while (i < hi && less_than_pivot(i, pivot));
      do {
        --j;
      } while (j > lo && greater_than_pivot(j, pivot));
      if (i >= j) break;
      t_.swap_nonzeros(i, j);
    }
    // Place the pivot (at lo) into its final slot j.
    t_.swap_nonzeros(lo, j);
    // Everything in [lo, j) is <= pivot, [j+1, hi) is >= pivot. Return a
    // cut that always shrinks: skip the pivot element itself.
    return (j == lo) ? j + 1 : j;
  }

  SparseTensor& t_;
  std::span<const int> modes_;
  bool heap_pivot_;
};

}  // namespace

void sort_tensor(SparseTensor& t, int primary_mode, int nthreads,
                 SortVariant variant) {
  SPTD_CHECK(primary_mode >= 0 && primary_mode < t.order(),
             "sort_tensor: primary mode out of range");
  const std::vector<int> perm = sort_mode_order(t.order(), primary_mode);
  sort_tensor_perm(t, perm, nthreads, variant);
}

void sort_tensor_perm(SparseTensor& t, std::span<const int> perm,
                      int nthreads, SortVariant variant) {
  SPTD_CHECK(static_cast<int>(perm.size()) == t.order(),
             "sort_tensor_perm: permutation length mismatch");
  const int primary_mode = perm[0];
  SPTD_CHECK(primary_mode >= 0 && primary_mode < t.order(),
             "sort_tensor: primary mode out of range");
  SPTD_CHECK(nthreads >= 1, "sort_tensor: nthreads must be >= 1");
  const nnz_t nnz = t.nnz();
  if (nnz <= 1) return;

  // Already-sorted fast path: one comparison pass over the nonzeros
  // (cheap next to the counting sort + per-slice quicksorts it skips).
  // Building a second CSF representation over a COO that a previous
  // build already ordered the same way — the CsfSet one/two/all-mode
  // policies, or repeated builds on the same tensor — exits here.
  if (is_sorted_perm(t, perm)) {
    g_sort_fastpath_hits.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const int order = t.order();
  const idx_t nslices = t.dim(primary_mode);
  const bool heap_pivot = (variant == SortVariant::kInitial ||
                           variant == SortVariant::kSlicesOpt);
  const bool copy_reassign = (variant == SortVariant::kInitial ||
                              variant == SortVariant::kArrayOpt);

  // ---- Phase 1: stable parallel counting sort on the primary mode. ----
  // Per-thread histograms -> global slice offsets -> scatter into scratch.
  const auto nt_sz = static_cast<std::size_t>(nthreads);
  std::vector<std::vector<nnz_t>> hist(nt_sz);
  parallel_region(nthreads, [&](int tid, int nt) {
    auto& h = hist[static_cast<std::size_t>(tid)];
    h.assign(nslices, 0);
    const Range r = block_partition(nnz, nt, tid);
    const auto ind = t.ind(primary_mode);
    for (nnz_t x = r.begin; x < r.end; ++x) {
      ++h[ind[x]];
    }
  });

  // Exclusive scan over (slice, thread) pairs: scatter offset for thread t
  // within slice s is slice_start[s] + sum_{t'<t} hist[t'][s].
  std::vector<nnz_t> slice_start(static_cast<std::size_t>(nslices) + 1, 0);
  for (idx_t s = 0; s < nslices; ++s) {
    nnz_t total = 0;
    for (std::size_t th = 0; th < nt_sz; ++th) {
      const nnz_t c = hist[th][s];
      hist[th][s] = total;  // becomes the within-slice offset for thread th
      total += c;
    }
    slice_start[s + 1] = slice_start[s] + total;
  }

  // Scratch buffers for the permuted tensor.
  std::vector<std::vector<idx_t>> scratch_ind(static_cast<std::size_t>(order));
  for (auto& v : scratch_ind) {
    v.resize(nnz);
  }
  std::vector<val_t> scratch_val(nnz);

  parallel_region(nthreads, [&](int tid, int nt) {
    const Range r = block_partition(nnz, nt, tid);
    const auto ind = t.ind(primary_mode);
    auto& my_offsets = hist[static_cast<std::size_t>(tid)];
    for (nnz_t x = r.begin; x < r.end; ++x) {
      const idx_t s = ind[x];
      const nnz_t dst = slice_start[s] + my_offsets[s]++;
      for (int m = 0; m < order; ++m) {
        scratch_ind[static_cast<std::size_t>(m)][dst] = t.ind(m)[x];
      }
      scratch_val[dst] = t.vals()[x];
    }
  });

  // ---- Phase 2: reassign scratch back into the tensor. ----
  if (copy_reassign) {
    // Initial Chapel behaviour (Section V-C): the port stored the index
    // set as a 2D matrix and reassigned each nnz-length sub-array by
    // *slicing*, so every element moved through an array-view descriptor
    // (strided address computation + bounds check) instead of a flat
    // memcpy. Reproduced with the same descriptor-mediated element copy.
    for (int m = 0; m < order; ++m) {
      chapel_slice_copy(t.ind(m).data(),
                        scratch_ind[static_cast<std::size_t>(m)].data(),
                        nnz);
    }
    chapel_slice_copy(t.vals().data(), scratch_val.data(), nnz);
  } else {
    // Reference/optimized behaviour: O(1) pointer swap (the port's c_ptrTo
    // fix) — the permuted buffers become the tensor's storage.
    t.swap_storage(scratch_ind, scratch_val);
  }

  // ---- Phase 3: per-slice quicksort on the secondary modes. ----
  const std::vector<int> secondary(perm.begin() + 1, perm.end());

  // Balance slices across threads by nonzero weight.
  const std::vector<nnz_t> bounds =
      weighted_partition(slice_start, nthreads);
  parallel_region(nthreads, [&](int tid, int) {
    SliceSorter sorter(t, secondary, heap_pivot);
    const auto s_begin = static_cast<idx_t>(bounds[
        static_cast<std::size_t>(tid)]);
    const auto s_end = static_cast<idx_t>(bounds[
        static_cast<std::size_t>(tid) + 1]);
    for (idx_t s = s_begin; s < s_end; ++s) {
      const nnz_t lo = slice_start[s];
      const nnz_t hi = slice_start[s + 1];
      if (hi - lo > 1) {
        sorter.sort(lo, hi);
      }
    }
  });
}

bool is_sorted(const SparseTensor& t, int primary_mode) {
  const std::vector<int> perm = sort_mode_order(t.order(), primary_mode);
  return is_sorted_perm(t, perm);
}

bool is_sorted_perm(const SparseTensor& t, std::span<const int> perm) {
  for (nnz_t x = 1; x < t.nnz(); ++x) {
    if (t.coord_less(x, x - 1, perm)) {
      return false;
    }
  }
  return true;
}

}  // namespace sptd
