#pragma once
/// \file sort.hpp
/// \brief SPLATT-style nonzero sorting: a parallel counting sort on the
///        primary mode followed by per-slice quicksort on the remaining
///        modes. CSF construction requires the tensor sorted this way.
///
/// This module also reproduces the paper's sorting performance study
/// (Section V-C, Figure 1). The Chapel port's sort was ~8.7x slower than C
/// for two concrete reasons, each individually toggleable here:
///
///  * Per-call temporary array: the recursive quicksort declared a local
///    2-element array each invocation — trivial in C, a heap-managed
///    high-level construct in Chapel (46M allocations on NELL-2).
///    `ArrayOpt` replaces it with scalar locals.
///  * Sub-array reassignment by copy: after the counting-sort pass the C
///    code swaps buffer *pointers*; naive Chapel array assignment deep-
///    copies nnz-length arrays. `SlicesOpt` swaps; the initial code copies.
///
/// Variants: Initial (neither fix), ArrayOpt, SlicesOpt, AllOpts (both,
/// equivalent to the reference C behaviour).

#include <string>

#include "tensor/coo.hpp"

namespace sptd {

/// Which of the paper's sorting optimizations are applied (Figure 1).
enum class SortVariant : int {
  kInitial = 0,  ///< per-call heap pivot array + copy reassignment
  kArrayOpt,     ///< scalar pivots, still copy reassignment
  kSlicesOpt,    ///< per-call heap pivots, pointer-swap reassignment
  kAllOpts,      ///< both optimizations (reference behaviour)
};

/// Parses "initial" / "array-opt" / "slices-opt" / "all-opts".
SortVariant parse_sort_variant(const std::string& name);

/// Figure-legend name of a variant.
const char* sort_variant_name(SortVariant variant);

/// Sorts the tensor's nonzeros lexicographically with \p primary_mode as
/// the most significant key and the remaining modes in cyclic order
/// (SPLATT's tt_sort convention: mode, mode+1, ..., wrapping).
/// Parallelized over \p nthreads.
void sort_tensor(SparseTensor& t, int primary_mode, int nthreads,
                 SortVariant variant = SortVariant::kAllOpts);

/// Sorts by an arbitrary mode permutation (\p perm[0] most significant).
/// CSF construction sorts with csf_mode_order() through this entry point.
/// A pre-scan skips the sort entirely when the nonzeros are already in
/// \p perm order (e.g. re-building a CSF representation over a COO a
/// previous build ordered); sort_fastpath_hits() counts those skips.
void sort_tensor_perm(SparseTensor& t, std::span<const int> perm,
                      int nthreads,
                      SortVariant variant = SortVariant::kAllOpts);

/// Process-wide count of sort_tensor_perm() calls that exited through the
/// already-sorted fast path (monotonic, relaxed).
std::uint64_t sort_fastpath_hits();

/// The cyclic mode permutation sort_tensor uses: {m, m+1, ..., m-1}.
std::vector<int> sort_mode_order(int order, int primary_mode);

/// True if the tensor is sorted per sort_tensor(primary_mode).
bool is_sorted(const SparseTensor& t, int primary_mode);

/// True if the tensor is sorted lexicographically by \p perm.
bool is_sorted_perm(const SparseTensor& t, std::span<const int> perm);

}  // namespace sptd
