#pragma once
/// \file blas.hpp
/// \brief The small set of BLAS-like kernels CP-ALS needs.
///
/// The paper's codes call OpenBLAS syrk for the Gram matrices; we provide
/// hand-written equivalents (R is small — 35 in the paper — so these are
/// O(I R^2) streaming kernels that OpenBLAS would not meaningfully beat at
/// this size). Each kernel takes an explicit thread count because the
/// benches sweep team sizes.
///
/// The register-blocked panel kernels (ata / matmul / matmul_at_b) are
/// templated on the *input* element type — the StoreT side of the
/// `--precision` axis — while the output and the panel accumulators stay
/// fp64 (AccumT = val_t): fp32 factor streams are widened inside the
/// fused 4-row panels, never accumulated in fp32. Instantiated for double
/// (the default everywhere) and float (the f32/mixed shadow path).

#include "la/matrix.hpp"

namespace sptd::la {

/// out = A^T * A (cols x cols), the `syrk` the paper's "Mat A^TA" routine
/// performs on each factor matrix. Parallelized over row blocks with
/// per-thread fp64 accumulators regardless of T. Only the upper triangle
/// is computed, then mirrored (matching LAPACK syrk + symmetrization).
template <typename T>
void ata(const MatrixT<T>& a, Matrix& out, int nthreads);

extern template void ata(const MatrixT<double>& a, Matrix& out,
                         int nthreads);
extern template void ata(const MatrixT<float>& a, Matrix& out,
                         int nthreads);

/// out ∗= b elementwise (Hadamard). Shapes must match.
void hadamard_inplace(Matrix& out, const Matrix& b);

/// out = elementwise product of every gram[i] with i != skip.
/// This is lines 4/7/10 of Algorithm 1: V = ∏_{n≠skip} A(n)^T A(n).
/// All matrices must be square with identical shape.
void gram_hadamard(const std::vector<Matrix>& grams, int skip, Matrix& out);

/// c = a * b (general dense, small sizes; used by tests and fit checks).
/// Inputs of element type T stream through fp64 panels into an fp64 c.
template <typename T>
void matmul(const MatrixT<T>& a, const MatrixT<T>& b, Matrix& c);

extern template void matmul(const MatrixT<double>& a,
                            const MatrixT<double>& b, Matrix& c);
extern template void matmul(const MatrixT<float>& a,
                            const MatrixT<float>& b, Matrix& c);

/// c = a^T * b.
template <typename T>
void matmul_at_b(const MatrixT<T>& a, const MatrixT<T>& b, Matrix& c);

extern template void matmul_at_b(const MatrixT<double>& a,
                                 const MatrixT<double>& b, Matrix& c);
extern template void matmul_at_b(const MatrixT<float>& a,
                                 const MatrixT<float>& b, Matrix& c);

/// Sum over all i,j of a(i,j)*b(i,j) — the Frobenius inner product.
/// Parallelized; used by the CPD fit computation.
val_t fro_inner(const Matrix& a, const Matrix& b, int nthreads);

}  // namespace sptd::la
