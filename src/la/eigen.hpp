#pragma once
/// \file eigen.hpp
/// \brief Symmetric eigendecomposition (cyclic Jacobi) for the small
///        Gram matrices HOOI needs.
///
/// Tucker/HOOI updates each factor with the leading left singular vectors
/// of the I_m x K TTMc output, obtained from the eigenvectors of its
/// K x K Gram matrix (K = prod of the other core dimensions, small).
/// Jacobi is exact, simple and plenty fast at K <= a few hundred — the
/// same role LAPACK's syev plays for SPLATT's Tucker code.

#include <span>

#include "la/matrix.hpp"

namespace sptd::la {

/// Eigendecomposition of a symmetric matrix \p a (n x n):
/// fills \p eigenvalues (descending) and \p eigenvectors (columns match
/// eigenvalue order). \p a is not modified.
/// Uses cyclic Jacobi sweeps until off-diagonal mass is ~machine-eps.
void symmetric_eigen(const Matrix& a, std::span<val_t> eigenvalues,
                     Matrix& eigenvectors);

}  // namespace sptd::la
