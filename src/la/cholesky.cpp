#include "la/cholesky.hpp"

#include <atomic>
#include <cmath>

#include "parallel/partition.hpp"
#include "parallel/team.hpp"

namespace sptd::la {

namespace {
std::atomic<std::uint64_t> g_tikhonov_bumps{0};
}

std::uint64_t tikhonov_bump_count() {
  return g_tikhonov_bumps.load(std::memory_order_relaxed);
}

bool potrf(Matrix& a) {
  SPTD_CHECK(a.rows() == a.cols(), "potrf: matrix must be square");
  const idx_t n = a.rows();
  for (idx_t j = 0; j < n; ++j) {
    val_t diag = a(j, j);
    for (idx_t k = 0; k < j; ++k) {
      diag -= a(j, k) * a(j, k);
    }
    if (!(diag > val_t{0})) {
      return false;
    }
    const val_t ljj = std::sqrt(diag);
    a(j, j) = ljj;
    const val_t inv = val_t{1} / ljj;
    for (idx_t i = j + 1; i < n; ++i) {
      val_t sum = a(i, j);
      const val_t* irow = a.row_ptr(i);
      const val_t* jrow = a.row_ptr(j);
      for (idx_t k = 0; k < j; ++k) {
        sum -= irow[k] * jrow[k];
      }
      a(i, j) = sum * inv;
    }
  }
  return true;
}

namespace {

/// Solves L L^T x = rhs for one row-vector rhs (length n), in place.
void solve_one(const Matrix& chol, val_t* rhs) {
  const idx_t n = chol.rows();
  // Forward substitution: L y = rhs.
  for (idx_t i = 0; i < n; ++i) {
    val_t sum = rhs[i];
    const val_t* lrow = chol.row_ptr(i);
    for (idx_t k = 0; k < i; ++k) {
      sum -= lrow[k] * rhs[k];
    }
    rhs[i] = sum / lrow[i];
  }
  // Back substitution: L^T x = y. Column-order traversal of L.
  for (idx_t ii = n; ii-- > 0;) {
    val_t sum = rhs[ii];
    for (idx_t k = ii + 1; k < n; ++k) {
      sum -= chol(k, ii) * rhs[k];
    }
    rhs[ii] = sum / chol(ii, ii);
  }
}

}  // namespace

void potrs(const Matrix& chol, Matrix& b, int nthreads) {
  SPTD_CHECK(chol.rows() == chol.cols(), "potrs: factor must be square");
  SPTD_CHECK(b.cols() == chol.rows(), "potrs: rhs width mismatch");
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range rows = block_partition(b.rows(), nt, tid);
    for (nnz_t i = rows.begin; i < rows.end; ++i) {
      solve_one(chol, b.row_ptr(static_cast<idx_t>(i)));
    }
  });
}

void solve_normal_equations(Matrix v, Matrix& m, int nthreads) {
  SPTD_CHECK(v.rows() == v.cols(), "solve_normal_equations: V not square");
  SPTD_CHECK(m.cols() == v.rows(), "solve_normal_equations: width mismatch");

  // Average diagonal magnitude scales the regularization.
  val_t diag_scale = 0;
  for (idx_t i = 0; i < v.rows(); ++i) {
    diag_scale += std::abs(v(i, i));
  }
  diag_scale = (v.rows() > 0) ? diag_scale / static_cast<val_t>(v.rows())
                              : val_t{1};
  if (diag_scale == val_t{0}) diag_scale = val_t{1};

  Matrix attempt = v;
  val_t reg = val_t{0};
  for (int tries = 0; tries < 40; ++tries) {
    if (potrf(attempt)) {
      potrs(attempt, m, nthreads);
      return;
    }
    // Not SPD: add eps·scale·I and retry with growing eps.
    g_tikhonov_bumps.fetch_add(1, std::memory_order_relaxed);
    reg = (reg == val_t{0}) ? val_t{1e-12} * diag_scale : reg * val_t{10};
    attempt = v;
    for (idx_t i = 0; i < attempt.rows(); ++i) {
      attempt(i, i) += reg;
    }
  }
  throw Error("solve_normal_equations: matrix could not be regularized");
}

}  // namespace sptd::la
