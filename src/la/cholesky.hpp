#pragma once
/// \file cholesky.hpp
/// \brief Cholesky factorization and triangular solves — the `potrf` /
///        `potrs` pair both codes in the paper obtain from OpenBLAS/LAPACK.
///
/// CP-ALS solves A(n) ← M V† where V is the R×R Hadamard product of Gram
/// matrices (symmetric positive semi-definite, R = rank, small). SPLATT
/// factors V with potrf and back-solves the MTTKRP output M with potrs;
/// we do exactly that, with a diagonally-regularized retry when V is
/// numerically singular (SPLATT falls back to a pseudo-inverse; Tikhonov
/// regularization on the normal equations is the standard equivalent).

#include <cstdint>

#include "la/matrix.hpp"

namespace sptd::la {

/// In-place lower Cholesky factorization: overwrites the lower triangle of
/// \p a with L where a = L L^T (upper triangle left untouched).
/// Returns false if a non-positive pivot is met (matrix not SPD).
[[nodiscard]] bool potrf(Matrix& a);

/// Solves L L^T x = b for each *row* of \p b in place, where \p chol holds
/// the factor from potrf in its lower triangle. b has shape N x R and is
/// treated as N independent right-hand sides (this matches SPLATT's
/// row-major potrs call: it solves V X^T = M^T, i.e. each row of M).
/// Parallelized over rows of b.
void potrs(const Matrix& chol, Matrix& b, int nthreads);

/// The paper's "Inverse" routine: solves M ← M V^{-1} through Cholesky,
/// retrying with progressively larger diagonal regularization if V is not
/// SPD. \p v is consumed (overwritten by its factor).
void solve_normal_equations(Matrix v, Matrix& m, int nthreads);

/// Process-wide count of Tikhonov diagonal bumps applied by
/// solve_normal_equations when a Gram product was not SPD. The resilience
/// layer samples this before/after a run to surface "the normal equations
/// went singular and were regularized" in results and bench records
/// (mirrors mttkrp's work_steal_count()).
std::uint64_t tikhonov_bump_count();

}  // namespace sptd::la
