#include "la/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace sptd::la {

void symmetric_eigen(const Matrix& a, std::span<val_t> eigenvalues,
                     Matrix& eigenvectors) {
  const idx_t n = a.rows();
  SPTD_CHECK(a.cols() == n, "symmetric_eigen: matrix must be square");
  SPTD_CHECK(eigenvalues.size() == n, "symmetric_eigen: eigenvalue size");
  SPTD_CHECK(eigenvectors.rows() == n && eigenvectors.cols() == n,
             "symmetric_eigen: eigenvector shape");

  Matrix work = a;
  eigenvectors = Matrix::identity(n);
  if (n == 1) {
    eigenvalues[0] = work(0, 0);
    return;
  }

  const int max_sweeps = 64;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius mass.
    val_t off = 0;
    for (idx_t p = 0; p < n; ++p) {
      for (idx_t q = p + 1; q < n; ++q) {
        off += work(p, q) * work(p, q);
      }
    }
    if (off < val_t{1e-26} * std::max(val_t{1}, work.fro_norm_sq())) {
      break;
    }
    for (idx_t p = 0; p < n; ++p) {
      for (idx_t q = p + 1; q < n; ++q) {
        const val_t apq = work(p, q);
        if (apq == val_t{0}) continue;
        const val_t app = work(p, p);
        const val_t aqq = work(q, q);
        // Rotation angle zeroing (p,q).
        const val_t theta = (aqq - app) / (2 * apq);
        const val_t t = (theta >= 0 ? val_t{1} : val_t{-1}) /
                        (std::abs(theta) +
                         std::sqrt(theta * theta + val_t{1}));
        const val_t c = val_t{1} / std::sqrt(t * t + val_t{1});
        const val_t s = t * c;
        // A <- J^T A J applied to rows/cols p and q.
        for (idx_t k = 0; k < n; ++k) {
          const val_t akp = work(k, p);
          const val_t akq = work(k, q);
          work(k, p) = c * akp - s * akq;
          work(k, q) = s * akp + c * akq;
        }
        for (idx_t k = 0; k < n; ++k) {
          const val_t apk = work(p, k);
          const val_t aqk = work(q, k);
          work(p, k) = c * apk - s * aqk;
          work(q, k) = s * apk + c * aqk;
        }
        // Accumulate the rotation into the eigenvector matrix.
        for (idx_t k = 0; k < n; ++k) {
          const val_t vkp = eigenvectors(k, p);
          const val_t vkq = eigenvectors(k, q);
          eigenvectors(k, p) = c * vkp - s * vkq;
          eigenvectors(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by descending eigenvalue, permuting eigenvector columns.
  std::vector<idx_t> order(n);
  std::iota(order.begin(), order.end(), idx_t{0});
  std::stable_sort(order.begin(), order.end(), [&](idx_t x, idx_t y) {
    return work(x, x) > work(y, y);
  });
  Matrix sorted_vectors(n, n);
  for (idx_t j = 0; j < n; ++j) {
    eigenvalues[j] = work(order[j], order[j]);
    for (idx_t i = 0; i < n; ++i) {
      sorted_vectors(i, j) = eigenvectors(i, order[j]);
    }
  }
  eigenvectors = std::move(sorted_vectors);
}

}  // namespace sptd::la
