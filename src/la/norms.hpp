#pragma once
/// \file norms.hpp
/// \brief Factor-matrix column normalization — the paper's "Mat norm"
///        routine (lines 6/9/12 of Algorithm 1).
///
/// SPLATT normalizes factor columns with the 2-norm on the first CP-ALS
/// iteration and the max-norm (largest entry, clamped at >= 1) on later
/// iterations; the column norms are stored in lambda. We reproduce both.

#include <span>

#include "la/matrix.hpp"

namespace sptd::la {

/// Which column norm to apply.
enum class MatNorm { kTwo, kMax };

/// Normalizes every column of \p a by the chosen norm, writing the norms to
/// \p lambda (length a.cols()). Zero-norm columns get lambda 1 and are left
/// unchanged. Parallelized over row blocks with per-thread partials.
void normalize_columns(Matrix& a, std::span<val_t> lambda, MatNorm which,
                       int nthreads);

/// Column 2-norms without modifying the matrix (testing/diagnostics).
void column_two_norms(const Matrix& a, std::span<val_t> out);

}  // namespace sptd::la
