#include "la/blas.hpp"

#include <cstring>
#include <vector>

#include "common/aligned.hpp"
#include "la/kernels.hpp"
#include "parallel/partition.hpp"
#include "parallel/reduce.hpp"
#include "parallel/team.hpp"

namespace sptd::la {

namespace {

/// dst[j] += a0*x0[j] + a1*x1[j] + a2*x2[j] + a3*x3[j] — the fused 4-row
/// axpy panel the register-blocked Gram/matmul loops are built from. Four
/// accumulating streams share one pass over dst, so the store traffic of
/// four plain axpy calls collapses into one. The streamed rows and
/// coefficients may be fp32 (StoreT); the destination is always the fp64
/// accumulator, and products are widened before the adds.
template <typename S>
inline void axpy4(val_t* SPTD_RESTRICT dst, const S* SPTD_RESTRICT x0,
                  const S* SPTD_RESTRICT x1, const S* SPTD_RESTRICT x2,
                  const S* SPTD_RESTRICT x3, S a0, S a1, S a2, S a3,
                  idx_t begin, idx_t n) {
#pragma omp simd
  for (idx_t j = begin; j < n; ++j) {
    dst[j] += static_cast<val_t>(a0) * static_cast<val_t>(x0[j]) +
              static_cast<val_t>(a1) * static_cast<val_t>(x1[j]) +
              static_cast<val_t>(a2) * static_cast<val_t>(x2[j]) +
              static_cast<val_t>(a3) * static_cast<val_t>(x3[j]);
  }
}

}  // namespace

template <typename T>
void ata(const MatrixT<T>& a, Matrix& out, int nthreads) {
  const idx_t rank = a.cols();
  SPTD_CHECK(out.rows() == rank && out.cols() == rank, "ata: bad out shape");
  const auto rank_sz = static_cast<std::size_t>(rank);

  // Per-thread upper-triangular accumulators (compact rank x rank), filled
  // by 4-row panels so each pass over the accumulator retires four rows of
  // A, then reduce + mirror.
  PrivateBuffers partials(nthreads, static_cast<nnz_t>(rank_sz * rank_sz));
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range rows = block_partition(a.rows(), nt, tid);
    val_t* acc = partials.buffer(tid).data();
    nnz_t i = rows.begin;
    for (; i + 4 <= rows.end; i += 4) {
      const T* SPTD_RESTRICT r0 = a.row_ptr(static_cast<idx_t>(i));
      const T* SPTD_RESTRICT r1 = a.row_ptr(static_cast<idx_t>(i + 1));
      const T* SPTD_RESTRICT r2 = a.row_ptr(static_cast<idx_t>(i + 2));
      const T* SPTD_RESTRICT r3 = a.row_ptr(static_cast<idx_t>(i + 3));
      for (idx_t j = 0; j < rank; ++j) {
        axpy4(acc + static_cast<std::size_t>(j) * rank_sz, r0, r1, r2, r3,
              r0[j], r1[j], r2[j], r3[j], j, rank);
      }
    }
    for (; i < rows.end; ++i) {
      const T* SPTD_RESTRICT row = a.row_ptr(static_cast<idx_t>(i));
      for (idx_t j = 0; j < rank; ++j) {
        kern::axpy(acc + static_cast<std::size_t>(j) * rank_sz + j, row + j,
                   row[j], rank - j);
      }
    }
  });

  // Reduce the compact accumulators, then scatter rows into the (padded)
  // output and mirror the strictly-upper triangle into the lower.
  aligned_vector<val_t> reduced(rank_sz * rank_sz, val_t{0});
  partials.reduce_into(reduced, nthreads);
  for (idx_t j = 0; j < rank; ++j) {
    std::memcpy(out.row_ptr(j), reduced.data() + static_cast<std::size_t>(j) * rank_sz,
                rank_sz * sizeof(val_t));
  }
  for (idx_t j = 0; j < rank; ++j) {
    for (idx_t k = j + 1; k < rank; ++k) {
      out(k, j) = out(j, k);
    }
  }
}

template void ata(const MatrixT<double>& a, Matrix& out, int nthreads);
template void ata(const MatrixT<float>& a, Matrix& out, int nthreads);

void hadamard_inplace(Matrix& out, const Matrix& b) {
  SPTD_CHECK(out.rows() == b.rows() && out.cols() == b.cols(),
             "hadamard: shape mismatch");
  // Same shape means same leading dimension; padding lanes are zero on
  // both sides, so the physical buffers multiply elementwise.
  val_t* SPTD_RESTRICT o = out.data();
  const val_t* SPTD_RESTRICT p = b.data();
  const std::size_t n = out.size();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    o[i] *= p[i];
  }
}

void gram_hadamard(const std::vector<Matrix>& grams, int skip, Matrix& out) {
  SPTD_CHECK(!grams.empty(), "gram_hadamard: no gram matrices");
  const idx_t rank = grams.front().rows();
  SPTD_CHECK(out.rows() == rank && out.cols() == rank,
             "gram_hadamard: bad out shape");
  out.fill(val_t{1});
  for (int n = 0; n < static_cast<int>(grams.size()); ++n) {
    if (n == skip) continue;
    hadamard_inplace(out, grams[static_cast<std::size_t>(n)]);
  }
}

template <typename T>
void matmul(const MatrixT<T>& a, const MatrixT<T>& b, Matrix& c) {
  SPTD_CHECK(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  SPTD_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
             "matmul: bad out shape");
  c.fill(val_t{0});
  const idx_t n = b.cols();
  // 4xR-panel register blocking over the k (inner) dimension: each pass
  // over c's row absorbs four rows of B.
  for (idx_t i = 0; i < a.rows(); ++i) {
    val_t* SPTD_RESTRICT crow = c.row_ptr(i);
    const T* SPTD_RESTRICT arow = a.row_ptr(i);
    idx_t k = 0;
    for (; k + 4 <= a.cols(); k += 4) {
      axpy4(crow, b.row_ptr(k), b.row_ptr(k + 1), b.row_ptr(k + 2),
            b.row_ptr(k + 3), arow[k], arow[k + 1], arow[k + 2],
            arow[k + 3], 0, n);
    }
    for (; k < a.cols(); ++k) {
      kern::axpy(crow, b.row_ptr(k), arow[k], n);
    }
  }
}

template void matmul(const MatrixT<double>& a, const MatrixT<double>& b,
                     Matrix& c);
template void matmul(const MatrixT<float>& a, const MatrixT<float>& b,
                     Matrix& c);

template <typename T>
void matmul_at_b(const MatrixT<T>& a, const MatrixT<T>& b, Matrix& c) {
  SPTD_CHECK(a.rows() == b.rows(), "matmul_at_b: row mismatch");
  SPTD_CHECK(c.rows() == a.cols() && c.cols() == b.cols(),
             "matmul_at_b: bad out shape");
  c.fill(val_t{0});
  const idx_t n = b.cols();
  // 4xR-panel register blocking over the shared row dimension: each pass
  // over c retires four rows of A and B.
  idx_t i = 0;
  for (; i + 4 <= a.rows(); i += 4) {
    const T* SPTD_RESTRICT a0 = a.row_ptr(i);
    const T* SPTD_RESTRICT a1 = a.row_ptr(i + 1);
    const T* SPTD_RESTRICT a2 = a.row_ptr(i + 2);
    const T* SPTD_RESTRICT a3 = a.row_ptr(i + 3);
    for (idx_t k = 0; k < a.cols(); ++k) {
      axpy4(c.row_ptr(k), b.row_ptr(i), b.row_ptr(i + 1), b.row_ptr(i + 2),
            b.row_ptr(i + 3), a0[k], a1[k], a2[k], a3[k], 0, n);
    }
  }
  for (; i < a.rows(); ++i) {
    const T* SPTD_RESTRICT arow = a.row_ptr(i);
    const T* SPTD_RESTRICT brow = b.row_ptr(i);
    for (idx_t k = 0; k < a.cols(); ++k) {
      kern::axpy(c.row_ptr(k), brow, arow[k], n);
    }
  }
}

template void matmul_at_b(const MatrixT<double>& a, const MatrixT<double>& b,
                          Matrix& c);
template void matmul_at_b(const MatrixT<float>& a, const MatrixT<float>& b,
                          Matrix& c);

val_t fro_inner(const Matrix& a, const Matrix& b, int nthreads) {
  SPTD_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "fro_inner: shape mismatch");
  // Identical shapes share a leading dimension and zero padding, so the
  // physical buffers' inner product equals the logical one.
  aligned_vector<val_t> partials(static_cast<std::size_t>(nthreads), val_t{0});
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range r = block_partition(a.size(), nt, tid);
    const val_t* SPTD_RESTRICT pa = a.data();
    const val_t* SPTD_RESTRICT pb = b.data();
    val_t acc = 0;
#pragma omp simd reduction(+ : acc)
    for (nnz_t i = r.begin; i < r.end; ++i) {
      acc += pa[i] * pb[i];
    }
    partials[static_cast<std::size_t>(tid)] = acc;
  });
  val_t total = 0;
  for (const val_t v : partials) total += v;
  return total;
}

}  // namespace sptd::la
