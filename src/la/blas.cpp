#include "la/blas.hpp"

#include <vector>

#include "parallel/partition.hpp"
#include "parallel/reduce.hpp"
#include "parallel/team.hpp"

namespace sptd::la {

void ata(const Matrix& a, Matrix& out, int nthreads) {
  const idx_t rank = a.cols();
  SPTD_CHECK(out.rows() == rank && out.cols() == rank, "ata: bad out shape");
  const auto rank_sz = static_cast<std::size_t>(rank);

  // Per-thread upper-triangular accumulators, then reduce + mirror.
  PrivateBuffers partials(nthreads, static_cast<nnz_t>(rank_sz * rank_sz));
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range rows = block_partition(a.rows(), nt, tid);
    val_t* acc = partials.buffer(tid).data();
    for (nnz_t i = rows.begin; i < rows.end; ++i) {
      const val_t* row = a.row_ptr(static_cast<idx_t>(i));
      for (idx_t j = 0; j < rank; ++j) {
        const val_t aij = row[j];
        val_t* acc_row = acc + static_cast<std::size_t>(j) * rank_sz;
        for (idx_t k = j; k < rank; ++k) {
          acc_row[k] += aij * row[k];
        }
      }
    }
  });

  out.fill(val_t{0});
  partials.reduce_into(out.values(), nthreads);

  // Mirror the strictly-upper triangle into the lower.
  for (idx_t j = 0; j < rank; ++j) {
    for (idx_t k = j + 1; k < rank; ++k) {
      out(k, j) = out(j, k);
    }
  }
}

void hadamard_inplace(Matrix& out, const Matrix& b) {
  SPTD_CHECK(out.rows() == b.rows() && out.cols() == b.cols(),
             "hadamard: shape mismatch");
  val_t* o = out.data();
  const val_t* p = b.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    o[i] *= p[i];
  }
}

void gram_hadamard(const std::vector<Matrix>& grams, int skip, Matrix& out) {
  SPTD_CHECK(!grams.empty(), "gram_hadamard: no gram matrices");
  const idx_t rank = grams.front().rows();
  SPTD_CHECK(out.rows() == rank && out.cols() == rank,
             "gram_hadamard: bad out shape");
  out.fill(val_t{1});
  for (int n = 0; n < static_cast<int>(grams.size()); ++n) {
    if (n == skip) continue;
    hadamard_inplace(out, grams[static_cast<std::size_t>(n)]);
  }
}

void matmul(const Matrix& a, const Matrix& b, Matrix& c) {
  SPTD_CHECK(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  SPTD_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
             "matmul: bad out shape");
  c.fill(val_t{0});
  for (idx_t i = 0; i < a.rows(); ++i) {
    val_t* crow = c.row_ptr(i);
    const val_t* arow = a.row_ptr(i);
    for (idx_t k = 0; k < a.cols(); ++k) {
      const val_t aik = arow[k];
      const val_t* brow = b.row_ptr(k);
      for (idx_t j = 0; j < b.cols(); ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& c) {
  SPTD_CHECK(a.rows() == b.rows(), "matmul_at_b: row mismatch");
  SPTD_CHECK(c.rows() == a.cols() && c.cols() == b.cols(),
             "matmul_at_b: bad out shape");
  c.fill(val_t{0});
  for (idx_t i = 0; i < a.rows(); ++i) {
    const val_t* arow = a.row_ptr(i);
    const val_t* brow = b.row_ptr(i);
    for (idx_t k = 0; k < a.cols(); ++k) {
      const val_t aik = arow[k];
      val_t* crow = c.row_ptr(k);
      for (idx_t j = 0; j < b.cols(); ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

val_t fro_inner(const Matrix& a, const Matrix& b, int nthreads) {
  SPTD_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "fro_inner: shape mismatch");
  std::vector<val_t> partials(static_cast<std::size_t>(nthreads), val_t{0});
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range r = block_partition(a.size(), nt, tid);
    const val_t* pa = a.data();
    const val_t* pb = b.data();
    val_t acc = 0;
    for (nnz_t i = r.begin; i < r.end; ++i) {
      acc += pa[i] * pb[i];
    }
    partials[static_cast<std::size_t>(tid)] = acc;
  });
  val_t total = 0;
  for (const val_t v : partials) total += v;
  return total;
}

}  // namespace sptd::la
