#pragma once
/// \file matrix.hpp
/// \brief Dense row-major matrix used for CP factor matrices and Gram
///        matrices.
///
/// Both SPLATT and the paper's Chapel port store factor matrices densely
/// with R (rank) columns. SPLATT keeps them as flat 1D arrays in row-major
/// order and reaches rows by pointer arithmetic; the Chapel port's
/// row-access policies (slice / 2D index / pointer — Figures 2-3) are
/// implemented against this same class in mttkrp/row_access.hpp, so the
/// layout never changes, only the access idiom.
///
/// Storage is 64-byte aligned and the leading dimension is padded to a
/// cache line (`ld() = kern::padded_cols(cols())`), so every row starts on
/// a cache-line boundary — the alignment contract the rank-specialized
/// kernels in la/kernels.hpp rely on. Padding lanes (columns cols()..ld())
/// are always zero: the constructor zeroes them, fill()/random() write
/// only the logical columns, and every library kernel writes rows through
/// row_ptr()/operator(). Flat whole-buffer operations (values(), size())
/// therefore see deterministic zeros in the padding.

#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "la/kernels.hpp"

namespace sptd::la {

/// Dense row-major matrix of val_t with a cache-line-padded leading
/// dimension.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, all entries \p init (padding lanes stay zero).
  Matrix(idx_t rows, idx_t cols, val_t init = val_t{0})
      : rows_(rows), cols_(cols), ld_(kern::padded_cols(cols)),
        data_(static_cast<std::size_t>(rows) * ld_, val_t{0}) {
    if (init != val_t{0}) {
      fill(init);
    }
  }

  /// Matrix with entries drawn uniformly from [0, 1), like SPLATT's
  /// mat_rand factor initialization.
  static Matrix random(idx_t rows, idx_t cols, Rng& rng);

  /// Identity matrix of size n.
  static Matrix identity(idx_t n);

  [[nodiscard]] idx_t rows() const { return rows_; }
  [[nodiscard]] idx_t cols() const { return cols_; }
  /// Leading dimension: distance in values between consecutive row bases.
  /// A cache-line multiple >= cols(); equal to cols() only when the rank
  /// is itself a multiple of 8.
  [[nodiscard]] idx_t ld() const { return ld_; }
  /// Physical buffer length (rows * ld), padding included.
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Element access (debug-checked).
  val_t& operator()(idx_t i, idx_t j) {
    SPTD_DCHECK(i < rows_ && j < cols_, "Matrix index out of range");
    return data_[static_cast<std::size_t>(i) * ld_ + j];
  }
  val_t operator()(idx_t i, idx_t j) const {
    SPTD_DCHECK(i < rows_ && j < cols_, "Matrix index out of range");
    return data_[static_cast<std::size_t>(i) * ld_ + j];
  }

  /// Raw pointer to row \p i (the reference implementation's idiom).
  /// Always 64-byte aligned.
  [[nodiscard]] val_t* row_ptr(idx_t i) {
    SPTD_DCHECK(i < rows_, "row_ptr out of range");
    return data_.data() + static_cast<std::size_t>(i) * ld_;
  }
  [[nodiscard]] const val_t* row_ptr(idx_t i) const {
    SPTD_DCHECK(i < rows_, "row_ptr out of range");
    return data_.data() + static_cast<std::size_t>(i) * ld_;
  }

  /// Row \p i as a span over the logical columns.
  [[nodiscard]] std::span<val_t> row(idx_t i) { return {row_ptr(i), cols_}; }
  [[nodiscard]] std::span<const val_t> row(idx_t i) const {
    return {row_ptr(i), cols_};
  }

  /// Whole physical buffer (row-major with stride ld(); padding lanes are
  /// zero).
  [[nodiscard]] val_t* data() { return data_.data(); }
  [[nodiscard]] const val_t* data() const { return data_.data(); }
  [[nodiscard]] std::span<val_t> values() { return data_; }
  [[nodiscard]] std::span<const val_t> values() const { return data_; }

  /// Sets every logical entry to \p v (padding lanes stay zero).
  void fill(val_t v);

  /// Sets every entry to zero in parallel (used between MTTKRP calls).
  void zero_parallel(int nthreads);

  /// Maximum absolute elementwise difference against \p other
  /// (shapes must match).
  [[nodiscard]] val_t max_abs_diff(const Matrix& other) const;

  /// Frobenius norm squared.
  [[nodiscard]] val_t fro_norm_sq() const;

  bool operator==(const Matrix&) const = default;

 private:
  idx_t rows_ = 0;
  idx_t cols_ = 0;
  idx_t ld_ = 0;
  aligned_vector<val_t> data_;
};

}  // namespace sptd::la
