#pragma once
/// \file matrix.hpp
/// \brief Dense row-major matrix used for CP factor matrices and Gram
///        matrices.
///
/// Both SPLATT and the paper's Chapel port store factor matrices densely
/// with R (rank) columns. SPLATT keeps them as flat 1D arrays in row-major
/// order and reaches rows by pointer arithmetic; the Chapel port's
/// row-access policies (slice / 2D index / pointer — Figures 2-3) are
/// implemented against this same class in mttkrp/row_access.hpp, so the
/// layout never changes, only the access idiom.
///
/// Storage is width-parameterized (`MatrixT<double>` masters — the
/// `Matrix` alias — and `MatrixT<float>` shadows for the `--precision`
/// f32/mixed value streams), 64-byte aligned, and the leading dimension is
/// padded to a cache line (`ld() = kern::padded_cols_for<T>(cols())` — 8
/// doubles or 16 floats per line), so every row starts on a cache-line
/// boundary — the alignment contract the rank-specialized kernels in
/// la/kernels.hpp rely on. Padding lanes (columns cols()..ld()) are always
/// zero: the constructor zeroes them, fill()/random() write only the
/// logical columns, and every library kernel writes rows through
/// row_ptr()/operator(). Flat whole-buffer operations (values(), size())
/// therefore see deterministic zeros in the padding.

#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "la/kernels.hpp"

namespace sptd::la {

/// Dense row-major matrix of element type T with a cache-line-padded
/// leading dimension.
template <typename T>
class MatrixT {
 public:
  using value_type = T;

  /// Empty 0x0 matrix.
  MatrixT() = default;

  /// rows x cols matrix, all entries \p init (padding lanes stay zero).
  MatrixT(idx_t rows, idx_t cols, T init = T{0})
      : rows_(rows), cols_(cols), ld_(kern::padded_cols_for<T>(cols)),
        data_(static_cast<std::size_t>(rows) * ld_, T{0}) {
    if (init != T{0}) {
      fill(init);
    }
  }

  /// Matrix with entries drawn uniformly from [0, 1), like SPLATT's
  /// mat_rand factor initialization. The RNG stream is drawn in double
  /// regardless of T, so a float matrix is the rounded image of the
  /// double one seeded identically.
  static MatrixT random(idx_t rows, idx_t cols, Rng& rng);

  /// Identity matrix of size n.
  static MatrixT identity(idx_t n);

  [[nodiscard]] idx_t rows() const { return rows_; }
  [[nodiscard]] idx_t cols() const { return cols_; }
  /// Leading dimension: distance in values between consecutive row bases.
  /// A cache-line multiple >= cols(); equal to cols() only when the rank
  /// is itself a multiple of the per-line lane count (8 doubles / 16
  /// floats). A float shadow's ld() may therefore differ from its double
  /// master's (rank 35: 48 vs 40).
  [[nodiscard]] idx_t ld() const { return ld_; }
  /// Physical buffer length (rows * ld), padding included.
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Element access (debug-checked).
  T& operator()(idx_t i, idx_t j) {
    SPTD_DCHECK(i < rows_ && j < cols_, "Matrix index out of range");
    return data_[static_cast<std::size_t>(i) * ld_ + j];
  }
  T operator()(idx_t i, idx_t j) const {
    SPTD_DCHECK(i < rows_ && j < cols_, "Matrix index out of range");
    return data_[static_cast<std::size_t>(i) * ld_ + j];
  }

  /// Raw pointer to row \p i (the reference implementation's idiom).
  /// Always 64-byte aligned.
  [[nodiscard]] T* row_ptr(idx_t i) {
    SPTD_DCHECK(i < rows_, "row_ptr out of range");
    return data_.data() + static_cast<std::size_t>(i) * ld_;
  }
  [[nodiscard]] const T* row_ptr(idx_t i) const {
    SPTD_DCHECK(i < rows_, "row_ptr out of range");
    return data_.data() + static_cast<std::size_t>(i) * ld_;
  }

  /// Row \p i as a span over the logical columns.
  [[nodiscard]] std::span<T> row(idx_t i) { return {row_ptr(i), cols_}; }
  [[nodiscard]] std::span<const T> row(idx_t i) const {
    return {row_ptr(i), cols_};
  }

  /// Whole physical buffer (row-major with stride ld(); padding lanes are
  /// zero).
  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::span<T> values() { return data_; }
  [[nodiscard]] std::span<const T> values() const { return data_; }

  /// Sets every logical entry to \p v (padding lanes stay zero).
  void fill(T v);

  /// Sets every entry to zero in parallel (used between MTTKRP calls).
  void zero_parallel(int nthreads);

  /// Reshapes (if needed) to \p src's logical shape and copies its
  /// entries, converting element type — the sanctioned fp64 -> fp32
  /// shadow-refresh conversion point (and the widening direction too).
  /// Padding lanes of the destination are zeroed, so a float shadow obeys
  /// the same zero-padding contract as its master even when their ld()
  /// differ.
  template <typename U>
  void assign_converted(const MatrixT<U>& src) {
    if (rows_ != src.rows() || cols_ != src.cols()) {
      *this = MatrixT(src.rows(), src.cols());
    }
    for (idx_t i = 0; i < rows_; ++i) {
      T* d = row_ptr(i);
      const U* s = src.row_ptr(i);
      for (idx_t j = 0; j < cols_; ++j) {
        d[j] = static_cast<T>(s[j]);
      }
    }
  }

  /// Maximum absolute elementwise difference against \p other
  /// (shapes must match).
  [[nodiscard]] T max_abs_diff(const MatrixT& other) const;

  /// Frobenius norm squared.
  [[nodiscard]] T fro_norm_sq() const;

  bool operator==(const MatrixT&) const = default;

 private:
  idx_t rows_ = 0;
  idx_t cols_ = 0;
  idx_t ld_ = 0;
  aligned_vector<T> data_;
};

extern template class MatrixT<double>;
extern template class MatrixT<float>;

/// The fp64 master matrix type — all library APIs that are not explicitly
/// precision-parameterized take this.
using Matrix = MatrixT<val_t>;

/// Rounds every logical entry of an fp64 matrix through fp32 and back —
/// the `--precision f32` quantization step applied to factor masters
/// after each update (the model itself is then representable in fp32, so
/// the f32 kernels' streams are exact images of the master).
inline void round_through_f32(Matrix& m) {
  for (idx_t i = 0; i < m.rows(); ++i) {
    val_t* row = m.row_ptr(i);
    for (idx_t j = 0; j < m.cols(); ++j) {
      row[j] = static_cast<val_t>(static_cast<float>(row[j]));
    }
  }
}

}  // namespace sptd::la
