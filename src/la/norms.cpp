#include "la/norms.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/aligned.hpp"
#include "parallel/partition.hpp"
#include "parallel/reduce.hpp"
#include "parallel/team.hpp"

namespace sptd::la {

void normalize_columns(Matrix& a, std::span<val_t> lambda, MatNorm which,
                       int nthreads) {
  const idx_t rank = a.cols();
  SPTD_CHECK(lambda.size() == rank, "normalize_columns: lambda size");

  // Phase 1: per-thread partial column statistics.
  PrivateBuffers partials(nthreads, rank);
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range rows = block_partition(a.rows(), nt, tid);
    val_t* part = partials.buffer(tid).data();
    for (nnz_t i = rows.begin; i < rows.end; ++i) {
      const val_t* row = a.row_ptr(static_cast<idx_t>(i));
      if (which == MatNorm::kTwo) {
        for (idx_t j = 0; j < rank; ++j) {
          part[j] += row[j] * row[j];
        }
      } else {
        for (idx_t j = 0; j < rank; ++j) {
          part[j] = std::max(part[j], std::abs(row[j]));
        }
      }
    }
  });

  // Phase 2: combine partials into lambda.
  for (idx_t j = 0; j < rank; ++j) {
    lambda[j] = val_t{0};
  }
  for (int t = 0; t < nthreads; ++t) {
    const val_t* part = partials.buffer(t).data();
    for (idx_t j = 0; j < rank; ++j) {
      lambda[j] = (which == MatNorm::kTwo) ? lambda[j] + part[j]
                                           : std::max(lambda[j], part[j]);
    }
  }
  for (idx_t j = 0; j < rank; ++j) {
    if (which == MatNorm::kTwo) {
      lambda[j] = std::sqrt(lambda[j]);
    } else {
      // SPLATT's max-norm clamps at 1 so later iterations only shrink
      // columns that grew, never inflate small ones.
      lambda[j] = std::max(lambda[j], val_t{1});
    }
    if (lambda[j] == val_t{0}) {
      lambda[j] = val_t{1};
    }
  }

  // Phase 3: scale columns.
  aligned_vector<val_t> inv(rank);
  for (idx_t j = 0; j < rank; ++j) {
    inv[j] = val_t{1} / lambda[j];
  }
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range rows = block_partition(a.rows(), nt, tid);
    for (nnz_t i = rows.begin; i < rows.end; ++i) {
      val_t* row = a.row_ptr(static_cast<idx_t>(i));
      for (idx_t j = 0; j < rank; ++j) {
        row[j] *= inv[j];
      }
    }
  });
}

void column_two_norms(const Matrix& a, std::span<val_t> out) {
  SPTD_CHECK(out.size() == a.cols(), "column_two_norms: out size");
  for (idx_t j = 0; j < a.cols(); ++j) {
    out[j] = val_t{0};
  }
  for (idx_t i = 0; i < a.rows(); ++i) {
    const val_t* row = a.row_ptr(i);
    for (idx_t j = 0; j < a.cols(); ++j) {
      out[j] += row[j] * row[j];
    }
  }
  for (idx_t j = 0; j < a.cols(); ++j) {
    out[j] = std::sqrt(out[j]);
  }
}

}  // namespace sptd::la
