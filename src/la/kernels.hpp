#pragma once
/// \file kernels.hpp
/// \brief Rank-specialized SIMD primitives for every length-R inner loop.
///
/// The MTTKRP, Gram, and fit kernels all reduce to a handful of length-R
/// vector operations (R = decomposition rank, 35 in the paper). Run with a
/// runtime trip count over arbitrary pointers the compiler must assume
/// aliasing and cannot unroll, so the hot loops execute scalar adds. This
/// header provides the same operations three ways:
///
///  * generic runtime-length loops (`axpy`, `hadamard_accum`, ...) over
///    `restrict`-qualified pointers — the fallback for any rank;
///  * compile-time-width instantiations (`axpy_r<R>`, `hadamard_accum_r<R>`,
///    `dot_r<R>`, `scale_r<R>`, ...) for R in {4, 8, 16, 32, 40, 64}, which
///    the compiler fully unrolls and vectorizes;
///  * `fixed_width_for(rank)` — the dispatch map from a runtime rank to the
///    specialized width (0 = no specialization, use the generic loops).
///    Ranks without an exact instantiation run the instantiation of their
///    *padded* width when one exists (e.g. rank 35 — the paper's default —
///    runs R=40): rows are `ld()` values apart with the padding lanes kept
///    zero by the Matrix contract, so the extra lanes compute zeros and
///    deposit zeros, lane-for-lane, at full SIMD width.
///
/// Precision: every primitive is templated on the element types of its
/// operands (the `--precision` axis). Streamed inputs may be fp32 while
/// the accumulator stays fp64 (`mixed`): products are formed in the
/// accumulator's type — `acc += AccumT(v) * AccumT(row[i])` — so with
/// uniform fp64 operands the casts are no-ops and codegen is unchanged,
/// while fp32 streams are widened on load and accumulated exactly as the
/// mixed-precision contract requires. The fused fiber primitives take
/// `AccumT` as an explicit (defaulted to `val_t`) template parameter
/// because their register blocks do not appear in any argument.
///
/// Alignment contract: every pointer handed to a `_r<R>` primitive is
/// 64-byte aligned. `la::MatrixT<T>` pads its leading dimension to a cache
/// line (`padded_cols_for<T>` — 8 doubles or 16 floats) and allocates
/// through `AlignedAllocator`, and the MTTKRP workspace rounds its
/// per-thread slots the same way, so factor rows, output rows, and
/// accumulator rows all satisfy the contract regardless of element width.
/// The primitives encode it with `std::assume_aligned`, which is undefined
/// behaviour on unaligned input — callers that cannot guarantee alignment
/// must use the generic loops.

#include <memory>
#include <type_traits>

#include "common/aligned.hpp"
#include "common/types.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define SPTD_RESTRICT __restrict__
#else
#define SPTD_RESTRICT
#endif

namespace sptd::la::kern {

/// val_t lanes per cache line (8 doubles on x86-64).
inline constexpr idx_t kValsPerLine =
    static_cast<idx_t>(kCacheLineBytes / sizeof(val_t));

/// Leading dimension for a row-major matrix of element type T with \p cols
/// logical columns: the smallest cache-line multiple >= cols, so
/// consecutive rows never share a line and every row base is 64-byte
/// aligned. fp32 rows pad to multiples of 16 lanes, fp64 to 8 — a float
/// shadow of a matrix may therefore have a different ld() than its fp64
/// master (rank 35: 48 vs 40); kernels parameterize on (data, ld) so the
/// widths compose freely.
template <typename T>
constexpr idx_t padded_cols_for(idx_t cols) {
  constexpr idx_t lanes = static_cast<idx_t>(kCacheLineBytes / sizeof(T));
  return ((cols + lanes - 1) / lanes) * lanes;
}

/// Leading dimension for the default (fp64) element type.
constexpr idx_t padded_cols(idx_t cols) {
  return padded_cols_for<val_t>(cols);
}

/// True for the widths the kernel layer instantiates. 40 exists for the
/// paper's default rank 35 (padded_cols(35) == 40); the remaining widths
/// are the power-of-two sweep of the kernel benches.
constexpr bool is_instantiated_width(idx_t width) {
  switch (width) {
    case 4:
    case 8:
    case 16:
    case 32:
    case 40:
    case 64:
      return true;
    default:
      return false;
  }
}

/// The compile-time kernel width serving a runtime rank: the rank itself
/// when instantiated, else the rank's padded width (its row stride) when
/// *that* is instantiated — every input and output row then spans exactly
/// one kernel width with zero-filled padding lanes, so running the wider
/// kernel is exact — else 0 (generic runtime-rank fallback).
/// The map is computed against fp64 padding; fp32 rows pad at least as
/// wide (16-lane lines), so a width valid for the fp64 master is always
/// within its fp32 shadow's row stride too.
constexpr idx_t fixed_width_for(idx_t rank) {
  if (is_instantiated_width(rank)) {
    return rank;
  }
  const idx_t padded = padded_cols(rank);
  return is_instantiated_width(padded) ? padded : 0;
}

namespace detail {
template <typename T>
inline T* assume_line_aligned(T* p) {
  return std::assume_aligned<kCacheLineBytes>(p);
}
}  // namespace detail

/// Nonzeros to run ahead of the gather loops with software prefetch: the
/// factor-row gathers are the latency chain of every CSF kernel (rows are
/// random, typically L2-resident), and the nonzero range of a slice is
/// contiguous, so the upcoming rows' indices are always at hand.
inline constexpr nnz_t kGatherPrefetch = 8;

// ---------------------------------------------------------------------
// Generic runtime-length primitives (any rank, any alignment).
// ---------------------------------------------------------------------

/// dst[i] += a * x[i]
template <typename D, typename S, typename A>
inline void axpy(D* SPTD_RESTRICT dst, const S* SPTD_RESTRICT x, A a,
                 idx_t n) {
  for (idx_t i = 0; i < n; ++i) {
    dst[i] += static_cast<D>(a) * static_cast<D>(x[i]);
  }
}

/// dst[i] += a[i] * b[i]
template <typename D, typename S1, typename S2>
inline void hadamard_accum(D* SPTD_RESTRICT dst, const S1* SPTD_RESTRICT a,
                           const S2* SPTD_RESTRICT b, idx_t n) {
  for (idx_t i = 0; i < n; ++i) {
    dst[i] += static_cast<D>(a[i]) * static_cast<D>(b[i]);
  }
}

/// dst[i] *= a[i] — in-place Hadamard product, the building block of the
/// "product of the other factors' rows" loops in completion solvers.
template <typename D, typename S>
inline void hadamard(D* SPTD_RESTRICT dst, const S* SPTD_RESTRICT a,
                     idx_t n) {
  for (idx_t i = 0; i < n; ++i) {
    dst[i] *= static_cast<D>(a[i]);
  }
}

/// dst[i] = x[i] — row copy (converting when D != S) through the same
/// restrict/width machinery; the sanctioned fp64 -> fp32 shadow-refresh
/// conversion point.
template <typename D, typename S>
inline void copy(D* SPTD_RESTRICT dst, const S* SPTD_RESTRICT x, idx_t n) {
  for (idx_t i = 0; i < n; ++i) {
    dst[i] = static_cast<D>(x[i]);
  }
}

/// sum over i of a[i] * b[i], accumulated in the wider operand type.
template <typename S1, typename S2>
inline auto dot(const S1* SPTD_RESTRICT a, const S2* SPTD_RESTRICT b,
                idx_t n) {
  using A = decltype(S1{} * S2{});
  A acc = 0;
  for (idx_t i = 0; i < n; ++i) {
    acc += static_cast<A>(a[i]) * static_cast<A>(b[i]);
  }
  return acc;
}

/// dst[i] = a * x[i]
template <typename D, typename S, typename A>
inline void scale(D* SPTD_RESTRICT dst, const S* SPTD_RESTRICT x, A a,
                  idx_t n) {
  for (idx_t i = 0; i < n; ++i) {
    dst[i] = static_cast<D>(a) * static_cast<D>(x[i]);
  }
}

/// dst[i] = a[i] * b[i]
template <typename D, typename S1, typename S2>
inline void mul(D* SPTD_RESTRICT dst, const S1* SPTD_RESTRICT a,
                const S2* SPTD_RESTRICT b, idx_t n) {
  for (idx_t i = 0; i < n; ++i) {
    dst[i] = static_cast<D>(a[i]) * static_cast<D>(b[i]);
  }
}

/// dst[i] += x[i]
template <typename D, typename S>
inline void add(D* SPTD_RESTRICT dst, const S* SPTD_RESTRICT x, idx_t n) {
  for (idx_t i = 0; i < n; ++i) {
    dst[i] += static_cast<D>(x[i]);
  }
}

// ---------------------------------------------------------------------
// Fixed-width primitives (compile-time trip count, 64-byte aligned).
// ---------------------------------------------------------------------

/// dst[i] += a * x[i], i < R
template <idx_t R, typename D, typename S, typename A>
inline void axpy_r(D* SPTD_RESTRICT dst, const S* SPTD_RESTRICT x, A a) {
  D* SPTD_RESTRICT d = detail::assume_line_aligned(dst);
  const S* SPTD_RESTRICT s = detail::assume_line_aligned(x);
#pragma omp simd
  for (idx_t i = 0; i < R; ++i) {
    d[i] += static_cast<D>(a) * static_cast<D>(s[i]);
  }
}

/// dst[i] += a[i] * b[i], i < R
template <idx_t R, typename D, typename S1, typename S2>
inline void hadamard_accum_r(D* SPTD_RESTRICT dst,
                             const S1* SPTD_RESTRICT a,
                             const S2* SPTD_RESTRICT b) {
  D* SPTD_RESTRICT d = detail::assume_line_aligned(dst);
  const S1* SPTD_RESTRICT pa = detail::assume_line_aligned(a);
  const S2* SPTD_RESTRICT pb = detail::assume_line_aligned(b);
#pragma omp simd
  for (idx_t i = 0; i < R; ++i) {
    d[i] += static_cast<D>(pa[i]) * static_cast<D>(pb[i]);
  }
}

/// sum over i < R of a[i] * b[i], accumulated in the wider operand type.
template <idx_t R, typename S1, typename S2>
inline auto dot_r(const S1* SPTD_RESTRICT a, const S2* SPTD_RESTRICT b) {
  using A = decltype(S1{} * S2{});
  const S1* SPTD_RESTRICT pa = detail::assume_line_aligned(a);
  const S2* SPTD_RESTRICT pb = detail::assume_line_aligned(b);
  A acc = 0;
#pragma omp simd reduction(+ : acc)
  for (idx_t i = 0; i < R; ++i) {
    acc += static_cast<A>(pa[i]) * static_cast<A>(pb[i]);
  }
  return acc;
}

/// dst[i] = a * x[i], i < R
template <idx_t R, typename D, typename S, typename A>
inline void scale_r(D* SPTD_RESTRICT dst, const S* SPTD_RESTRICT x, A a) {
  D* SPTD_RESTRICT d = detail::assume_line_aligned(dst);
  const S* SPTD_RESTRICT s = detail::assume_line_aligned(x);
#pragma omp simd
  for (idx_t i = 0; i < R; ++i) {
    d[i] = static_cast<D>(a) * static_cast<D>(s[i]);
  }
}

/// dst[i] = a[i] * b[i], i < R
template <idx_t R, typename D, typename S1, typename S2>
inline void mul_r(D* SPTD_RESTRICT dst, const S1* SPTD_RESTRICT a,
                  const S2* SPTD_RESTRICT b) {
  D* SPTD_RESTRICT d = detail::assume_line_aligned(dst);
  const S1* SPTD_RESTRICT pa = detail::assume_line_aligned(a);
  const S2* SPTD_RESTRICT pb = detail::assume_line_aligned(b);
#pragma omp simd
  for (idx_t i = 0; i < R; ++i) {
    d[i] = static_cast<D>(pa[i]) * static_cast<D>(pb[i]);
  }
}

/// dst[i] += x[i], i < R
template <idx_t R, typename D, typename S>
inline void add_r(D* SPTD_RESTRICT dst, const S* SPTD_RESTRICT x) {
  D* SPTD_RESTRICT d = detail::assume_line_aligned(dst);
  const S* SPTD_RESTRICT s = detail::assume_line_aligned(x);
#pragma omp simd
  for (idx_t i = 0; i < R; ++i) {
    d[i] += static_cast<D>(s[i]);
  }
}

/// dst[i] *= a[i], i < R
template <idx_t R, typename D, typename S>
inline void hadamard_r(D* SPTD_RESTRICT dst, const S* SPTD_RESTRICT a) {
  D* SPTD_RESTRICT d = detail::assume_line_aligned(dst);
  const S* SPTD_RESTRICT pa = detail::assume_line_aligned(a);
#pragma omp simd
  for (idx_t i = 0; i < R; ++i) {
    d[i] *= static_cast<D>(pa[i]);
  }
}

/// dst[i] = x[i], i < R (converting copy when D != S)
template <idx_t R, typename D, typename S>
inline void copy_r(D* SPTD_RESTRICT dst, const S* SPTD_RESTRICT x) {
  D* SPTD_RESTRICT d = detail::assume_line_aligned(dst);
  const S* SPTD_RESTRICT s = detail::assume_line_aligned(x);
#pragma omp simd
  for (idx_t i = 0; i < R; ++i) {
    d[i] = static_cast<D>(s[i]);
  }
}

// ---------------------------------------------------------------------
// Width-dispatched row-operation bundle.
// ---------------------------------------------------------------------

/// One set of length-R row primitives behind a compile-time width: W > 0
/// selects the fixed-width instantiations (alignment contract applies,
/// logical rank <= W, padding lanes zero), W == 0 the generic runtime
/// loops. Callers template their hot loop over RowOps<W> and switch once
/// per pass via dispatch_width() instead of branching per element — the
/// completion solvers (ALS / SGD / CCD++ inner loops) are built on this.
/// Factor rows in the completion solvers stay fp64; only the tensor value
/// scalars fed into axpy() widen from the selected precision's stream.
template <idx_t W>
struct RowOps {
  static constexpr bool kFixed = (W > 0);

  static void axpy(val_t* SPTD_RESTRICT dst, const val_t* SPTD_RESTRICT x,
                   val_t a, idx_t n) {
    if constexpr (kFixed) {
      axpy_r<W>(dst, x, a);
    } else {
      kern::axpy(dst, x, a, n);
    }
  }
  static void hadamard_accum(val_t* SPTD_RESTRICT dst,
                             const val_t* SPTD_RESTRICT a,
                             const val_t* SPTD_RESTRICT b, idx_t n) {
    if constexpr (kFixed) {
      hadamard_accum_r<W>(dst, a, b);
    } else {
      kern::hadamard_accum(dst, a, b, n);
    }
  }
  static val_t dot(const val_t* SPTD_RESTRICT a,
                   const val_t* SPTD_RESTRICT b, idx_t n) {
    if constexpr (kFixed) {
      return dot_r<W>(a, b);
    } else {
      return kern::dot(a, b, n);
    }
  }
  static void hadamard(val_t* SPTD_RESTRICT dst,
                       const val_t* SPTD_RESTRICT a, idx_t n) {
    if constexpr (kFixed) {
      hadamard_r<W>(dst, a);
    } else {
      kern::hadamard(dst, a, n);
    }
  }
  static void mul(val_t* SPTD_RESTRICT dst, const val_t* SPTD_RESTRICT a,
                  const val_t* SPTD_RESTRICT b, idx_t n) {
    if constexpr (kFixed) {
      mul_r<W>(dst, a, b);
    } else {
      kern::mul(dst, a, b, n);
    }
  }
  static void scale(val_t* SPTD_RESTRICT dst, const val_t* SPTD_RESTRICT x,
                    val_t a, idx_t n) {
    if constexpr (kFixed) {
      scale_r<W>(dst, x, a);
    } else {
      kern::scale(dst, x, a, n);
    }
  }
  static void copy(val_t* SPTD_RESTRICT dst, const val_t* SPTD_RESTRICT x,
                   idx_t n) {
    if constexpr (kFixed) {
      copy_r<W>(dst, x);
    } else {
      kern::copy(dst, x, n);
    }
  }
};

/// Invokes fn(std::integral_constant<idx_t, W>{}) with W the instantiated
/// width serving \p width (one of the is_instantiated_width() set), or
/// W = 0 for the generic fallback. The single runtime switch every
/// RowOps-templated pass performs.
template <typename Fn>
decltype(auto) dispatch_width(idx_t width, Fn&& fn) {
  switch (width) {
    case 4:
      return fn(std::integral_constant<idx_t, 4>{});
    case 8:
      return fn(std::integral_constant<idx_t, 8>{});
    case 16:
      return fn(std::integral_constant<idx_t, 16>{});
    case 32:
      return fn(std::integral_constant<idx_t, 32>{});
    case 40:
      return fn(std::integral_constant<idx_t, 40>{});
    case 64:
      return fn(std::integral_constant<idx_t, 64>{});
    default:
      return fn(std::integral_constant<idx_t, 0>{});
  }
}

/// The fused order-2 leaf loop of the CSF MTTKRP with the whole fiber
/// visible to the compiler: cs[r] += vals[x] * F(fids[x], r) for x in
/// [begin, end). With a compile-time R the accumulator row stays in
/// registers across the fiber — this is the single hottest loop of CP-ALS.
///
/// The index streams of every fiber loop below are generic indexables
/// (`Fids fids` with fids[x] -> integer): a raw pointer of any width from
/// a compressed-CSF level view, or a width-erased stream ref. Passing the
/// stored narrow type is what halves the index bandwidth of these loops
/// on compressed tensors. The value stream (`vals`) and factor rows are
/// the StoreT side of the precision axis; the accumulator row `cs` is the
/// AccumT side (products are widened to AccumT before accumulating).
template <idx_t R, typename AccumT, typename S, typename Fids>
inline void fiber_accum_r(AccumT* SPTD_RESTRICT cs,
                          const S* SPTD_RESTRICT vals,
                          Fids fids,
                          nnz_t begin, nnz_t end,
                          const S* SPTD_RESTRICT factor, idx_t ld) {
  AccumT* SPTD_RESTRICT acc = detail::assume_line_aligned(cs);
  for (nnz_t x = begin; x < end; ++x) {
    const S v = vals[x];
    const S* SPTD_RESTRICT row = detail::assume_line_aligned(
        factor + static_cast<std::size_t>(fids[x]) * ld);
#pragma omp simd
    for (idx_t i = 0; i < R; ++i) {
      acc[i] += static_cast<AccumT>(v) * static_cast<AccumT>(row[i]);
    }
  }
}

/// Fused bottom-fiber pull-up with Hadamard deposit:
///   dst[i] += fl[i] * sum over x in [begin, end) of vals[x]*F(fids[x], i).
/// The fiber sum lives in a register block instead of a scratch row, so
/// short fibers (the common case in the paper's datasets) pay no
/// memset / store / reload round trip. AccumT (explicit, defaults to
/// val_t) is the register block's type — the precision axis's accumulator
/// side; it does not appear in a deduced argument position.
/// \p prefetch_horizon bounds how far past `end` the fids array may be
/// read for software prefetch: callers walking a contiguous nonzero range
/// (a whole slice) pass the range's end so gathers run ahead across fiber
/// boundaries; fiber-local callers pass `end`.
template <idx_t R, typename AccumT = val_t, typename D, typename P,
          typename S, typename Fids>
inline void fiber_pullup_hadamard_r(D* SPTD_RESTRICT dst,
                                    const P* SPTD_RESTRICT fl,
                                    const S* SPTD_RESTRICT vals,
                                    Fids fids,
                                    nnz_t begin, nnz_t end,
                                    const S* SPTD_RESTRICT factor,
                                    idx_t ld, nnz_t prefetch_horizon) {
  alignas(kCacheLineBytes) AccumT acc[R] = {};
  for (nnz_t x = begin; x < end; ++x) {
    if (x + kGatherPrefetch < prefetch_horizon) {
      __builtin_prefetch(
          factor +
              static_cast<std::size_t>(fids[x + kGatherPrefetch]) * ld,
          0, 3);
    }
    const S v = vals[x];
    const S* SPTD_RESTRICT row = detail::assume_line_aligned(
        factor + static_cast<std::size_t>(fids[x]) * ld);
#pragma omp simd
    for (idx_t i = 0; i < R; ++i) {
      acc[i] += static_cast<AccumT>(v) * static_cast<AccumT>(row[i]);
    }
  }
  D* SPTD_RESTRICT d = detail::assume_line_aligned(dst);
  const P* SPTD_RESTRICT f = detail::assume_line_aligned(fl);
#pragma omp simd
  for (idx_t i = 0; i < R; ++i) {
    d[i] += static_cast<D>(f[i]) * static_cast<D>(acc[i]);
  }
}

/// Fused third-order root slice: for every child fiber c in [c0, c1),
///   acc[i] += F1(fids1[c], i) * sum_x vals[x]*F2(leaf_fids[x], i),
/// with BOTH accumulators register-blocked in AccumT — the slice
/// accumulator never round-trips through memory between fibers (slices
/// average hundreds of fibers on the paper's tensors, so this is the root
/// kernel's whole inner phase).
template <idx_t R, typename AccumT = val_t, typename D, typename S,
          typename Fids1, typename LeafFids, typename Fptr1>
inline void root_slice3_r(D* SPTD_RESTRICT dst,
                          Fids1 fids1,
                          const S* SPTD_RESTRICT vals,
                          LeafFids leaf_fids,
                          Fptr1 fptr1,
                          nnz_t c0, nnz_t c1,
                          const S* SPTD_RESTRICT f1, idx_t ld1,
                          const S* SPTD_RESTRICT f2, idx_t ld2) {
  alignas(kCacheLineBytes) AccumT acc[R] = {};
  // Prefetch horizon: the slice's nonzeros are contiguous in
  // [fptr1[c0], fptr1[c1]), so rows up to the slice end can be fetched
  // ahead regardless of fiber boundaries.
  const nnz_t x_end = fptr1[c1];
  for (nnz_t c = c0; c < c1; ++c) {
    alignas(kCacheLineBytes) AccumT fiber[R] = {};
    for (nnz_t x = fptr1[c]; x < fptr1[c + 1]; ++x) {
      if (x + kGatherPrefetch < x_end) {
        __builtin_prefetch(
            f2 + static_cast<std::size_t>(leaf_fids[x + kGatherPrefetch]) *
                     ld2,
            0, 3);
      }
      const S v = vals[x];
      const S* SPTD_RESTRICT row = detail::assume_line_aligned(
          f2 + static_cast<std::size_t>(leaf_fids[x]) * ld2);
#pragma omp simd
      for (idx_t i = 0; i < R; ++i) {
        fiber[i] += static_cast<AccumT>(v) * static_cast<AccumT>(row[i]);
      }
    }
    const S* SPTD_RESTRICT row1 = detail::assume_line_aligned(
        f1 + static_cast<std::size_t>(fids1[c]) * ld1);
#pragma omp simd
    for (idx_t i = 0; i < R; ++i) {
      acc[i] += static_cast<AccumT>(row1[i]) * fiber[i];
    }
  }
  D* SPTD_RESTRICT d = detail::assume_line_aligned(dst);
#pragma omp simd
  for (idx_t i = 0; i < R; ++i) {
    d[i] = static_cast<D>(acc[i]);
  }
}

/// Fused bottom-fiber pull-up with path multiply:
///   dst[i] = path[i] * sum over x in [begin, end) of vals[x]*F(fids[x], i).
/// The internal kernel's leaf case, register-blocked like the above.
template <idx_t R, typename AccumT = val_t, typename D, typename P,
          typename S, typename Fids>
inline void fiber_pullup_mul_r(D* SPTD_RESTRICT dst,
                               const P* SPTD_RESTRICT path,
                               const S* SPTD_RESTRICT vals,
                               Fids fids,
                               nnz_t begin, nnz_t end,
                               const S* SPTD_RESTRICT factor,
                               idx_t ld, nnz_t prefetch_horizon) {
  alignas(kCacheLineBytes) AccumT acc[R] = {};
  for (nnz_t x = begin; x < end; ++x) {
    if (x + kGatherPrefetch < prefetch_horizon) {
      __builtin_prefetch(
          factor +
              static_cast<std::size_t>(fids[x + kGatherPrefetch]) * ld,
          0, 3);
    }
    const S v = vals[x];
    const S* SPTD_RESTRICT row = detail::assume_line_aligned(
        factor + static_cast<std::size_t>(fids[x]) * ld);
#pragma omp simd
    for (idx_t i = 0; i < R; ++i) {
      acc[i] += static_cast<AccumT>(v) * static_cast<AccumT>(row[i]);
    }
  }
  D* SPTD_RESTRICT d = detail::assume_line_aligned(dst);
  const P* SPTD_RESTRICT p = detail::assume_line_aligned(path);
#pragma omp simd
  for (idx_t i = 0; i < R; ++i) {
    d[i] = static_cast<D>(p[i]) * static_cast<D>(acc[i]);
  }
}

}  // namespace sptd::la::kern
