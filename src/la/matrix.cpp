#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "parallel/partition.hpp"
#include "parallel/team.hpp"

namespace sptd::la {

template <typename T>
MatrixT<T> MatrixT<T>::random(idx_t rows, idx_t cols, Rng& rng) {
  MatrixT m(rows, cols);
  // Draw logical entries only, row-major, so the RNG stream is identical
  // to an unpadded layout and padding lanes stay zero. The stream is
  // always drawn in double (then cast), so equal seeds produce float
  // matrices that are the rounded images of the double ones.
  for (idx_t i = 0; i < rows; ++i) {
    T* row = m.row_ptr(i);
    for (idx_t j = 0; j < cols; ++j) {
      row[j] = static_cast<T>(rng.next_double());
    }
  }
  return m;
}

template <typename T>
MatrixT<T> MatrixT<T>::identity(idx_t n) {
  MatrixT m(n, n);
  for (idx_t i = 0; i < n; ++i) {
    m(i, i) = T{1};
  }
  return m;
}

template <typename T>
void MatrixT<T>::fill(T v) {
  for (idx_t i = 0; i < rows_; ++i) {
    T* row = row_ptr(i);
    std::fill(row, row + cols_, v);
  }
}

template <typename T>
void MatrixT<T>::zero_parallel(int nthreads) {
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range r = block_partition(data_.size(), nt, tid);
    std::memset(data_.data() + r.begin, 0,
                static_cast<std::size_t>(r.size()) * sizeof(T));
  });
}

template <typename T>
T MatrixT<T>::max_abs_diff(const MatrixT& other) const {
  SPTD_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "max_abs_diff: shape mismatch");
  T worst = 0;
  for (idx_t i = 0; i < rows_; ++i) {
    const T* a = row_ptr(i);
    const T* b = other.row_ptr(i);
    for (idx_t j = 0; j < cols_; ++j) {
      worst = std::max(worst, std::abs(a[j] - b[j]));
    }
  }
  return worst;
}

template <typename T>
T MatrixT<T>::fro_norm_sq() const {
  T acc = 0;
  for (idx_t i = 0; i < rows_; ++i) {
    const T* row = row_ptr(i);
    for (idx_t j = 0; j < cols_; ++j) {
      acc += row[j] * row[j];
    }
  }
  return acc;
}

template class MatrixT<double>;
template class MatrixT<float>;

}  // namespace sptd::la
