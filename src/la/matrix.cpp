#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "parallel/partition.hpp"
#include "parallel/team.hpp"

namespace sptd::la {

Matrix Matrix::random(idx_t rows, idx_t cols, Rng& rng) {
  Matrix m(rows, cols);
  // Draw logical entries only, row-major, so the RNG stream is identical
  // to an unpadded layout and padding lanes stay zero.
  for (idx_t i = 0; i < rows; ++i) {
    val_t* row = m.row_ptr(i);
    for (idx_t j = 0; j < cols; ++j) {
      row[j] = rng.next_double();
    }
  }
  return m;
}

Matrix Matrix::identity(idx_t n) {
  Matrix m(n, n);
  for (idx_t i = 0; i < n; ++i) {
    m(i, i) = val_t{1};
  }
  return m;
}

void Matrix::fill(val_t v) {
  for (idx_t i = 0; i < rows_; ++i) {
    val_t* row = row_ptr(i);
    std::fill(row, row + cols_, v);
  }
}

void Matrix::zero_parallel(int nthreads) {
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range r = block_partition(data_.size(), nt, tid);
    std::memset(data_.data() + r.begin, 0,
                static_cast<std::size_t>(r.size()) * sizeof(val_t));
  });
}

val_t Matrix::max_abs_diff(const Matrix& other) const {
  SPTD_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "max_abs_diff: shape mismatch");
  val_t worst = 0;
  for (idx_t i = 0; i < rows_; ++i) {
    const val_t* a = row_ptr(i);
    const val_t* b = other.row_ptr(i);
    for (idx_t j = 0; j < cols_; ++j) {
      worst = std::max(worst, std::abs(a[j] - b[j]));
    }
  }
  return worst;
}

val_t Matrix::fro_norm_sq() const {
  val_t acc = 0;
  for (idx_t i = 0; i < rows_; ++i) {
    const val_t* row = row_ptr(i);
    for (idx_t j = 0; j < cols_; ++j) {
      acc += row[j] * row[j];
    }
  }
  return acc;
}

}  // namespace sptd::la
