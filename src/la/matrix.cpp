#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "parallel/partition.hpp"
#include "parallel/team.hpp"

namespace sptd::la {

Matrix Matrix::random(idx_t rows, idx_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) {
    v = rng.next_double();
  }
  return m;
}

Matrix Matrix::identity(idx_t n) {
  Matrix m(n, n);
  for (idx_t i = 0; i < n; ++i) {
    m(i, i) = val_t{1};
  }
  return m;
}

void Matrix::fill(val_t v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::zero_parallel(int nthreads) {
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range r = block_partition(data_.size(), nt, tid);
    std::memset(data_.data() + r.begin, 0,
                static_cast<std::size_t>(r.size()) * sizeof(val_t));
  });
}

val_t Matrix::max_abs_diff(const Matrix& other) const {
  SPTD_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "max_abs_diff: shape mismatch");
  val_t worst = 0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

val_t Matrix::fro_norm_sq() const {
  val_t acc = 0;
  for (const val_t v : data_) {
    acc += v * v;
  }
  return acc;
}

}  // namespace sptd::la
