#pragma once
/// \file sptd.hpp
/// \brief Umbrella header for the sptd library — sparse parallel tensor
///        decomposition (C++ reproduction of "Parallel Sparse Tensor
///        Decomposition in Chapel", Rolinger et al. 2018).
///
/// Typical use:
/// \code
///   #include "sptd.hpp"
///   sptd::SparseTensor x = sptd::read_tns_file("data.tns");
///   sptd::CpalsOptions opts;
///   opts.rank = 35;
///   opts.nthreads = 8;
///   sptd::CpalsResult r = sptd::cp_als(x, opts);
///   double fit = r.fit_history.back();
/// \endcode

#include "common/log.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "completion/completion.hpp"
#include "completion/solver.hpp"
#include "completion/workspace.hpp"
#include "cpd/cpals.hpp"
#include "cpd/kruskal.hpp"
#include "cpd/model_io.hpp"
#include "csf/csf.hpp"
#include "dist/dist_cpals.hpp"
#include "mttkrp/plan.hpp"
#include "mttkrp/tiled.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/eigen.hpp"
#include "la/matrix.hpp"
#include "la/norms.hpp"
#include "mttkrp/mttkrp.hpp"
#include "parallel/backend.hpp"
#include "parallel/schedule.hpp"
#include "parallel/team.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/context.hpp"
#include "resilience/fault.hpp"
#include "resilience/health.hpp"
#include "resilience/resilience.hpp"
#include "sort/sort.hpp"
#include "tensor/coo.hpp"
#include "tensor/dense.hpp"
#include "tensor/io.hpp"
#include "tensor/reorder.hpp"
#include "tensor/stats.hpp"
#include "tensor/synthetic.hpp"
#include "tucker/tucker.hpp"
