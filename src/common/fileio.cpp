#include "common/fileio.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define SPTD_HAVE_POSIX_IO 1
#else
#define SPTD_HAVE_POSIX_IO 0
#endif

namespace sptd {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw Error("atomic_write_file: " + what + " failed for " + path + ": " +
              std::strerror(errno));
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& contents,
                       RenameDurability durability) {
#if SPTD_HAVE_POSIX_IO
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open", tmp);
  std::size_t off = 0;
  while (off < contents.size()) {
    const ::ssize_t n = ::write(fd, contents.data() + off,
                                contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename", path);
  }
  if (durability == RenameDurability::kRelaxed) {
    return;
  }
  // Make the rename itself durable: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = (slash == std::string::npos)
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    // Some filesystems reject directory fsync; the rename already landed,
    // so a failure here only weakens durability, not atomicity.
    (void)::fsync(dfd);
    ::close(dfd);
  }
#else
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    SPTD_CHECK(out.good(), "atomic_write_file: cannot open " + tmp);
    out << contents;
    out.flush();
    SPTD_CHECK(out.good(), "atomic_write_file: write failed for " + tmp);
  }
  SPTD_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
             "atomic_write_file: rename failed for " + path);
#endif
}

std::optional<std::string> read_file_to_string(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  SPTD_CHECK(!in.bad(), "read_file_to_string: read failed for " + path);
  return buf.str();
}

}  // namespace sptd
