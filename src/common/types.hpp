#pragma once
/// \file types.hpp
/// \brief Fundamental index/value types shared by every sptd module.
///
/// SPLATT builds with 64-bit indices by default (IDX_TYPEWIDTH=64); we use
/// 32-bit per-mode slice indices (safe to 4.29G slices per mode, half the
/// memory traffic in CSF id arrays) and 64-bit nonzero counters/offsets.
/// Values are IEEE double, matching both SPLATT and the Chapel port.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace sptd {

/// Per-mode slice index (a coordinate along one tensor mode).
using idx_t = std::uint32_t;

/// Nonzero count / offset into nonzero-length arrays.
using nnz_t = std::uint64_t;

/// Floating-point value type for tensor entries and factor matrices.
using val_t = double;

/// Maximum representable slice index, used as a sentinel.
inline constexpr idx_t kIdxMax = std::numeric_limits<idx_t>::max();

/// Maximum supported tensor order. SPLATT's compile-time MAX_NMODES is 8;
/// we keep the same bound so fixed-size coordinate buffers stay tiny.
inline constexpr int kMaxOrder = 8;

/// Convenience alias for a list of mode lengths.
using dims_t = std::vector<idx_t>;

}  // namespace sptd
