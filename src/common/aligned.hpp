#pragma once
/// \file aligned.hpp
/// \brief Cache-line aligned storage helpers.
///
/// Hot shared arrays (mutex pools, per-thread accumulators) are padded to
/// cache-line boundaries to avoid false sharing between OpenMP threads.

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace sptd {

/// Size of a destructive-interference-free block. 64 bytes on x86-64.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal aligned allocator for std::vector.
template <typename T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;

  // allocator_traits cannot rebind through the non-type Alignment
  // parameter automatically; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Alignment));
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// Vector whose buffer starts on a cache-line boundary.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// A T padded out to its own cache line — element i of an array of these
/// never false-shares with element i+1.
template <typename T>
struct alignas(kCacheLineBytes) CachePadded {
  T value{};
};

}  // namespace sptd
