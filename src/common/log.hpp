#pragma once
/// \file log.hpp
/// \brief Minimal leveled logging to stderr.
///
/// Benches and examples print their tables to stdout; diagnostics go through
/// this logger so they can be silenced (`set_log_level(LogLevel::kError)`).

#include <sstream>
#include <string>

namespace sptd {

enum class LogLevel : int { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Sets the global minimum level that is actually emitted.
void set_log_level(LogLevel level);

/// Current global log level.
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Logs \p msg at \p level if it passes the global filter.
inline void log(LogLevel level, const std::string& msg) {
  if (level >= log_level()) {
    detail::log_emit(level, msg);
  }
}

inline void log_debug(const std::string& msg) { log(LogLevel::kDebug, msg); }
inline void log_info(const std::string& msg) { log(LogLevel::kInfo, msg); }
inline void log_warn(const std::string& msg) { log(LogLevel::kWarn, msg); }
inline void log_error(const std::string& msg) { log(LogLevel::kError, msg); }

}  // namespace sptd
