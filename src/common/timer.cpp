#include "common/timer.hpp"

namespace sptd {

const char* routine_name(Routine r) {
  switch (r) {
    case Routine::kMttkrp:  return "MTTKRP";
    case Routine::kInverse: return "INVERSE";
    case Routine::kMatAtA:  return "MAT A^TA";
    case Routine::kMatNorm: return "MAT NORM";
    case Routine::kFit:     return "CPD FIT";
    case Routine::kSort:    return "SORT";
    case Routine::kCount:   break;
  }
  return "?";
}

double RoutineTimers::total_seconds() const {
  double t = 0.0;
  for (const auto& w : timers_) {
    t += w.seconds();
  }
  return t;
}

void RoutineTimers::reset() {
  for (auto& w : timers_) {
    w.reset();
  }
}

void RoutineTimers::accumulate(const RoutineTimers& other) {
  for (int i = 0; i < kNumRoutines; ++i) {
    timers_[i].add_seconds(other.timers_[i].seconds());
  }
}

void RoutineTimers::scale(double factor) {
  for (auto& w : timers_) {
    const double scaled = w.seconds() * factor;
    w.reset();
    w.add_seconds(scaled);
  }
}

}  // namespace sptd
