#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sptd {

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.next();
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SPTD_DCHECK(bound != 0, "next_below(0)");
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

idx_t Rng::next_index(idx_t bound) {
  return static_cast<idx_t>(next_below(bound));
}

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = next_double(-1.0, 1.0);
    v = next_double(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * mul;
  has_cached_gaussian_ = true;
  return u * mul;
}

Rng Rng::split() { return Rng(next_u64()); }

std::array<std::uint64_t, 4> Rng::state() const {
  return {s_[0], s_[1], s_[2], s_[3]};
}

void Rng::set_state(const std::array<std::uint64_t, 4>& s) {
  for (int i = 0; i < 4; ++i) {
    s_[i] = s[i];
  }
  has_cached_gaussian_ = false;
  cached_gaussian_ = 0.0;
}

}  // namespace sptd
