#include "common/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace sptd {

Options::Options(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void Options::add(const std::string& name, const std::string& default_value,
                  const std::string& help) {
  SPTD_CHECK(opts_.find(name) == opts_.end(), "duplicate option: " + name);
  opts_[name] = Opt{default_value, help, /*is_flag=*/false, std::nullopt};
  order_.push_back(name);
}

void Options::add_flag(const std::string& name, const std::string& help) {
  SPTD_CHECK(opts_.find(name) == opts_.end(), "duplicate option: " + name);
  opts_[name] = Opt{"false", help, /*is_flag=*/true, std::nullopt};
  order_.push_back(name);
}

bool Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = opts_.find(name);
    SPTD_CHECK(it != opts_.end(), "unknown option --" + name);
    Opt& opt = it->second;
    if (opt.is_flag) {
      opt.value = inline_value.value_or("true");
    } else if (inline_value) {
      opt.value = *inline_value;
    } else {
      SPTD_CHECK(i + 1 < argc, "option --" + name + " requires a value");
      opt.value = argv[++i];
    }
  }
  return true;
}

const Options::Opt& Options::find(const std::string& name) const {
  auto it = opts_.find(name);
  SPTD_CHECK(it != opts_.end(), "option not registered: " + name);
  return it->second;
}

bool Options::given(const std::string& name) const {
  return find(name).value.has_value();
}

std::string Options::get_string(const std::string& name) const {
  const Opt& opt = find(name);
  return opt.value.value_or(opt.default_value);
}

std::int64_t Options::get_int(const std::string& name) const {
  const std::string s = get_string(name);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  SPTD_CHECK(end != s.c_str() && *end == '\0',
             "option --" + name + " expects an integer, got '" + s + "'");
  return v;
}

double Options::get_double(const std::string& name) const {
  const std::string s = get_string(name);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  SPTD_CHECK(end != s.c_str() && *end == '\0',
             "option --" + name + " expects a number, got '" + s + "'");
  return v;
}

bool Options::get_bool(const std::string& name) const {
  const std::string s = get_string(name);
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw Error("option --" + name + " expects a boolean, got '" + s + "'");
}

std::vector<int> Options::get_int_list(const std::string& name) const {
  const std::string s = get_string(name);
  std::vector<int> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    SPTD_CHECK(end != tok.c_str() && *end == '\0',
               "option --" + name + " expects integers, got '" + tok + "'");
    out.push_back(static_cast<int>(v));
  }
  SPTD_CHECK(!out.empty(), "option --" + name + " list is empty");
  return out;
}

std::string Options::help() const {
  std::ostringstream os;
  os << program_ << " — " << summary_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Opt& opt = opts_.at(name);
    os << "  --" << name;
    if (!opt.is_flag) {
      os << " <value>  (default: " << opt.default_value << ")";
    }
    os << "\n      " << opt.help << "\n";
  }
  os << "  --help\n      Print this message.\n";
  return os.str();
}

}  // namespace sptd
