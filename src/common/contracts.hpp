#pragma once
/// \file contracts.hpp
/// \brief Concurrency-contract annotations for ThreadSanitizer builds.
///
/// The racy-by-design parallel paths (privatized accumulators, mutex
/// pools, the work-stealing CAS deques, CCD's in-place residual folds)
/// are validated under `SPTD_SANITIZE=thread` by tests/stress_concurrency
/// — a raw-thread harness, because TSan cannot model libgomp's barriers
/// and team synchronization (see tools/tsan.supp for the policy). Two
/// kinds of sites need help from the source side:
///
///  * Synchronization TSan cannot see. `omp_set_lock`/`omp_unset_lock`
///    order memory through libgomp internals that are invisible to the
///    instrumented build, so data protected *correctly* by an OmpLock
///    would still be reported. `SPTD_TSAN_ACQUIRE`/`SPTD_TSAN_RELEASE`
///    teach TSan the acquire/release edge explicitly (they expand to the
///    libtsan dynamic annotations under TSan and to nothing otherwise).
///    Every use must cite why the underlying synchronization is real.
///    OmpLock is the only lock that needs this: the pool parallel
///    backend (src/parallel/backend.cpp) and its FutexLock synchronize
///    entirely through std::atomic wait/notify, std::mutex, and
///    std::condition_variable — primitives TSan models natively — so the
///    pool's parking/wakeup and task hand-off edges carry no annotations
///    by design, and stress_concurrency drives the pool backend's
///    parallel_region directly under TSan (unlike the omp backend's,
///    which TSan cannot follow through libgomp).
///
///  * Intentionally benign races. `SPTD_TSAN_BENIGN_RACE` documents a
///    location where unsynchronized concurrent access is part of the
///    design AND tolerating a stale read is proven harmless (e.g. a
///    monotonic diagnostic counter read while workers still run). There
///    are deliberately no such sites in the library today: the counters
///    (work_steal_count, sort_fastpath_hits, SliceSchedule::steals) are
///    all relaxed atomics — ordinary C++ atomics TSan models natively —
///    and are only *differenced* from serial code around a launch. The
///    macro exists so a future benign race is annotated and inventoried
///    here instead of silently suppressed in tools/tsan.supp.
///
/// Detection: gcc defines __SANITIZE_THREAD__; clang exposes
/// __has_feature(thread_sanitizer). `SPTD_TSAN_ENABLED` is 1 in exactly
/// those builds (the CMake side additionally rejects combining thread
/// with address/leak sanitizers, which are runtime-incompatible).

#if defined(__SANITIZE_THREAD__)
#define SPTD_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPTD_TSAN_ENABLED 1
#endif
#endif
#ifndef SPTD_TSAN_ENABLED
#define SPTD_TSAN_ENABLED 0
#endif

#if SPTD_TSAN_ENABLED

// The dynamic-annotation entry points exported by libtsan. Declared here
// instead of including a sanitizer header so non-sanitizer builds never
// see sanitizer-specific includes.
extern "C" {
void AnnotateHappensBefore(const char* file, int line, const void* addr);
void AnnotateHappensAfter(const char* file, int line, const void* addr);
void AnnotateBenignRaceSized(const char* file, int line, const void* addr,
                             unsigned long size, const char* description);
}

/// Release edge on \p addr: everything written before this point is
/// visible to the thread that performs SPTD_TSAN_ACQUIRE(addr) next.
#define SPTD_TSAN_RELEASE(addr) \
  AnnotateHappensBefore(__FILE__, __LINE__, (addr))

/// Acquire edge on \p addr (pairs with SPTD_TSAN_RELEASE).
#define SPTD_TSAN_ACQUIRE(addr) \
  AnnotateHappensAfter(__FILE__, __LINE__, (addr))

/// Declares [addr, addr+size) intentionally racy; \p why is mandatory
/// prose shown in would-be reports. Use only for documented-benign races
/// — never to silence a finding that has not been argued harmless.
#define SPTD_TSAN_BENIGN_RACE(addr, size, why) \
  AnnotateBenignRaceSized(__FILE__, __LINE__, (addr), (size), (why))

/// Marks a function whose body TSan must not instrument. Reserved for
/// cases where annotation cannot express the contract; cite why.
#define SPTD_NO_SANITIZE_THREAD __attribute__((no_sanitize_thread))

#else  // !SPTD_TSAN_ENABLED

#define SPTD_TSAN_RELEASE(addr) ((void)0)
#define SPTD_TSAN_ACQUIRE(addr) ((void)0)
#define SPTD_TSAN_BENIGN_RACE(addr, size, why) ((void)0)
#define SPTD_NO_SANITIZE_THREAD

#endif  // SPTD_TSAN_ENABLED
