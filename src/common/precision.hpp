#pragma once
/// \file precision.hpp
/// \brief Value-stream precision selection (`--precision f64|f32|mixed`).
///
/// MTTKRP is memory-bandwidth-bound; once the index stream is compressed
/// the fp64 factor rows and nonzero values dominate the bytes per launch.
/// The precision axis controls how those value streams are stored and
/// accumulated:
///
///   f64    fp64 streams, fp64 accumulation — the baseline. Selecting it
///          runs the exact pre-precision code paths (bit-identical).
///   f32    fp32 streams AND fp32 register accumulation; factor matrices
///          are rounded through fp32 after every update. Maximum
///          bandwidth win, loosest accuracy.
///   mixed  fp32 streams (factor-row shadows + an fp32 copy of the CSF
///          values), fp64 register accumulation and fp64 master factors.
///          Near-f32 bandwidth at near-f64 accuracy.
///
/// Per-precision accuracy contracts (tested in tests/test_precision.cpp,
/// next to the standing 1e-12 fixed-vs-generic contract): mixed CP-ALS
/// fits match f64 within 1e-6, f32 within 1e-3 on the smoke fixtures.

#include <string>

#include "common/error.hpp"

namespace sptd {

enum class Precision : int {
  kF64 = 0,
  kF32,
  kMixed,
};

inline const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kF64:   return "f64";
    case Precision::kF32:   return "f32";
    case Precision::kMixed: return "mixed";
  }
  return "?";
}

inline Precision parse_precision(const std::string& name) {
  if (name == "f64") return Precision::kF64;
  if (name == "f32") return Precision::kF32;
  if (name == "mixed") return Precision::kMixed;
  throw Error("unknown precision '" + name + "' (expected f64|f32|mixed)");
}

/// Bytes per stored value under a precision (f32 and mixed both stream
/// 4-byte values; f64 streams 8).
inline std::size_t precision_value_width(Precision p) {
  return p == Precision::kF64 ? sizeof(double) : sizeof(float);
}

}  // namespace sptd
