#pragma once
/// \file rng.hpp
/// \brief Deterministic, splittable random number generation.
///
/// Everything stochastic in sptd (synthetic tensors, factor-matrix
/// initialization) flows through these generators so that experiments and
/// tests are reproducible bit-for-bit from a seed, and so that parallel
/// generation can hand each thread an independently-seeded stream.

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace sptd {

/// SplitMix64: tiny, fast seeding/stream-splitting generator
/// (Steele et al., "Fast splittable pseudorandom number generators").
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator.
/// Passes BigCrush; 2^256-1 period; trivially seedable from SplitMix64.
class Rng {
 public:
  /// Seeds the generator; identical seeds produce identical streams.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// \p bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform index in [0, bound) narrowed to idx_t.
  idx_t next_index(idx_t bound);

  /// Standard normal via Marsaglia polar method (caches the pair).
  double next_gaussian();

  /// Returns a generator seeded independently from this one's stream,
  /// for handing to worker threads.
  Rng split();

  /// The four xoshiro256** state words, for checkpointing. The cached
  /// gaussian pair is intentionally not part of the persisted state: a
  /// restored generator restarts at the next uniform draw, and every
  /// checkpointed consumer (recovery jitter) uses uniform draws only.
  std::array<std::uint64_t, 4> state() const;

  /// Restores state saved by state(); drops any cached gaussian.
  void set_state(const std::array<std::uint64_t, 4>& s);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace sptd
