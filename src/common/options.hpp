#pragma once
/// \file options.hpp
/// \brief Tiny command-line option parser shared by examples and benches.
///
/// Accepts `--key value`, `--key=value` and boolean `--flag` forms. Typed
/// getters with defaults; `--help` text is assembled from the registered
/// descriptions. Unknown options are an error so typos fail loudly.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sptd {

/// Declarative CLI options. Register options, then parse(argc, argv),
/// then read typed values.
class Options {
 public:
  /// \p program and \p summary appear at the top of --help output.
  Options(std::string program, std::string summary);

  /// Registers an option taking a value, with a default shown in help.
  void add(const std::string& name, const std::string& default_value,
           const std::string& help);

  /// Registers a boolean flag (present => true).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Throws sptd::Error on unknown options or missing values.
  /// Returns false if --help was requested (help text already printed).
  bool parse(int argc, const char* const* argv);

  /// True if the option was given on the command line (not just defaulted).
  [[nodiscard]] bool given(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Parses a comma-separated integer list, e.g. "1,2,4,8,16,32".
  [[nodiscard]] std::vector<int> get_int_list(const std::string& name) const;

  /// Positional arguments (everything not starting with --).
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Renders the help text.
  [[nodiscard]] std::string help() const;

 private:
  struct Opt {
    std::string default_value;
    std::string help;
    bool is_flag = false;
    std::optional<std::string> value;
  };
  const Opt& find(const std::string& name) const;

  std::string program_;
  std::string summary_;
  std::map<std::string, Opt> opts_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace sptd
