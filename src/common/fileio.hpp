#pragma once
/// \file fileio.hpp
/// \brief Durable file primitives shared by model_io and the checkpointer.
///
/// A checkpoint that can itself be torn by the crash it guards against is
/// worthless, so every persisted artifact goes through atomic_write_file:
/// write to a sibling temporary, fsync, then rename over the target. POSIX
/// rename is atomic within a filesystem, so readers observe either the old
/// complete file or the new complete file, never a prefix.

#include <optional>
#include <string>

namespace sptd {

/// Controls whether the rename itself is made durable with a directory
/// fsync. kDurable is the default and right for user-facing artifacts
/// (model files): after return, a crash cannot lose the new file. kRelaxed
/// skips the directory fsync — a crash straddling the rename may leave the
/// *old* directory entry, but never a torn file (the data fsync still
/// happens before rename). Checkpoints use kRelaxed: falling back to the
/// previous snapshot is always correct there, and the skipped fsync is a
/// milliseconds-per-snapshot saving the 5% overhead gate counts.
enum class RenameDurability { kDurable, kRelaxed };

/// Atomically replaces \p path with \p contents (tmp + fsync + rename).
/// Throws sptd::Error on any IO failure; on throw the target is untouched
/// (a stray "<path>.tmp.*" sibling may remain and is ignored by readers).
void atomic_write_file(const std::string& path, const std::string& contents,
                       RenameDurability durability =
                           RenameDurability::kDurable);

/// Reads an entire file into a string. Returns nullopt if the file cannot
/// be opened; throws sptd::Error on a read error after a successful open.
std::optional<std::string> read_file_to_string(const std::string& path);

}  // namespace sptd
