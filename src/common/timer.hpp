#pragma once
/// \file timer.hpp
/// \brief Wall-clock timers and the per-routine timer table used to report
///        the paper's six CP-ALS routine timings (MTTKRP, Inverse, Mat A^TA,
///        Mat norm, CPD fit, Sort).

#include <array>
#include <chrono>

namespace sptd {

/// Accumulating monotonic wall-clock timer.
class WallTimer {
 public:
  /// Starts (or restarts) an interval.
  void start() {
    start_ = Clock::now();
    running_ = true;
  }

  /// Stops the current interval and adds it to the accumulated total.
  void stop() {
    if (running_) {
      total_ += std::chrono::duration<double>(Clock::now() - start_).count();
      running_ = false;
    }
  }

  /// Accumulated seconds across all intervals (including a running one).
  [[nodiscard]] double seconds() const {
    double t = total_;
    if (running_) {
      t += std::chrono::duration<double>(Clock::now() - start_).count();
    }
    return t;
  }

  /// Adds \p s seconds to the accumulated total directly (used when merging
  /// or averaging timer tables).
  void add_seconds(double s) { total_ += s; }

  /// Resets the accumulated total to zero and stops any running interval.
  void reset() {
    total_ = 0.0;
    running_ = false;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_{};
  double total_ = 0.0;
  bool running_ = false;
};

/// The CP-ALS routines whose runtimes the paper reports (Table III,
/// Figures 5-8). Order matches the paper's column order.
enum class Routine : int {
  kMttkrp = 0,
  kInverse,
  kMatAtA,
  kMatNorm,
  kFit,
  kSort,
  kCount  ///< number of routines; not a routine itself
};

/// Number of timed routines.
inline constexpr int kNumRoutines = static_cast<int>(Routine::kCount);

/// Human-readable routine name as printed by the bench harnesses
/// ("MTTKRP", "INVERSE", "MAT A^TA", "MAT NORM", "CPD FIT", "SORT").
const char* routine_name(Routine r);

/// Accumulating per-routine timer table. CP-ALS and the preprocessing
/// pipeline record into one of these; benches print it as a table row.
class RoutineTimers {
 public:
  /// Starts timing routine \p r (nestable across different routines,
  /// not reentrant for the same routine).
  void start(Routine r) { timers_[index(r)].start(); }

  /// Stops timing routine \p r, accumulating elapsed time.
  void stop(Routine r) { timers_[index(r)].stop(); }

  /// Accumulated seconds for routine \p r.
  [[nodiscard]] double seconds(Routine r) const {
    return timers_[index(r)].seconds();
  }

  /// Adds externally measured seconds to routine \p r (e.g. sort time
  /// measured inside CSF construction).
  void add_seconds(Routine r, double s) { timers_[index(r)].add_seconds(s); }

  /// Sum of all routine timers (approximately the CP-ALS total).
  [[nodiscard]] double total_seconds() const;

  /// Resets every routine timer.
  void reset();

  /// Adds another table's per-routine seconds into this one.
  /// Used to aggregate over trials.
  void accumulate(const RoutineTimers& other);

  /// Multiplies every accumulated time by \p factor (e.g. 1/trials).
  void scale(double factor);

 private:
  static int index(Routine r) { return static_cast<int>(r); }
  std::array<WallTimer, kNumRoutines> timers_{};
};

/// RAII guard that times routine \p r for the lifetime of the scope.
class ScopedRoutineTimer {
 public:
  ScopedRoutineTimer(RoutineTimers& table, Routine r) : table_(table), r_(r) {
    table_.start(r_);
  }
  ~ScopedRoutineTimer() { table_.stop(r_); }
  ScopedRoutineTimer(const ScopedRoutineTimer&) = delete;
  ScopedRoutineTimer& operator=(const ScopedRoutineTimer&) = delete;

 private:
  RoutineTimers& table_;
  Routine r_;
};

}  // namespace sptd
