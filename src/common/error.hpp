#pragma once
/// \file error.hpp
/// \brief Error type and runtime-check macros used across the library.

#include <sstream>
#include <stdexcept>
#include <string>

namespace sptd {

/// Exception thrown by sptd on invalid arguments, malformed files and
/// violated invariants. Carries a formatted human-readable message.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "sptd check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw Error(os.str());
}
}  // namespace detail

}  // namespace sptd

/// Runtime check that is always on (argument validation, file parsing).
/// Throws sptd::Error with location info when \p expr is false.
#define SPTD_CHECK(expr, msg)                                       \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::sptd::detail::throw_error(#expr, __FILE__, __LINE__, msg);  \
    }                                                               \
  } while (0)

/// Debug-only invariant check (compiled out in release hot paths).
#ifndef NDEBUG
#define SPTD_DCHECK(expr, msg) SPTD_CHECK(expr, msg)
#else
#define SPTD_DCHECK(expr, msg) ((void)0)
#endif
