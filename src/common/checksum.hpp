#pragma once
/// \file checksum.hpp
/// \brief FNV-1a 64-bit checksums for persisted artifacts.
///
/// Checkpoints and versioned model files carry a checksum over their payload
/// bytes so a truncated or corrupted file is rejected with a clear error
/// instead of being parsed into garbage factors. FNV-1a is not cryptographic;
/// it only needs to catch torn writes and bit rot, and it is fast enough to
/// run over every checkpoint without showing up in the overhead budget.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sptd {

inline constexpr std::uint64_t kFnv1a64Offset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ULL;

/// FNV-1a over \p n bytes, continuing from \p seed (chainable).
inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                             std::uint64_t seed = kFnv1a64Offset) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= kFnv1a64Prime;
  }
  return h;
}

/// FNV-1a over a string payload.
inline std::uint64_t fnv1a64(std::string_view s,
                             std::uint64_t seed = kFnv1a64Offset) {
  return fnv1a64(s.data(), s.size(), seed);
}

}  // namespace sptd
