#pragma once
/// \file completion.hpp
/// \brief Sparse tensor completion: CP decomposition with missing values.
///
/// SPLATT ships tensor-completion kernels alongside least-squares CP
/// (Smith et al., "HPC formulations of optimization algorithms for tensor
/// completion"); the paper notes them as part of the toolbox the port
/// covers. Here: the ALS formulation. Unlike CP-ALS — which treats
/// unobserved coordinates as zeros — completion fits ONLY the observed
/// entries:
///
///   min_{A(0..N-1)} Σ_{x ∈ Ω} (X_x - Σ_r Π_m A(m)(x_m, r))² +
///                   λ Σ_m ||A(m)||²_F
///
/// Each mode-m row i has its own R×R normal equation assembled from the
/// observed entries of slice i and solved by Cholesky; rows are
/// independent, so updates parallelize over slices with no locks.

#include <vector>

#include "common/types.hpp"
#include "cpd/kruskal.hpp"
#include "parallel/schedule.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// Knobs for ALS tensor completion.
struct CompletionOptions {
  idx_t rank = 10;
  int max_iterations = 50;
  /// Tikhonov regularization on every row's normal equations. Also keeps
  /// rows with very few observations well-posed.
  double regularization = 1e-2;
  /// Stop when validation RMSE fails to improve by this much between
  /// iterations (0 disables; training then runs max_iterations).
  double tolerance = 1e-4;
  std::uint64_t seed = 31;
  int nthreads = 1;
  /// Slice scheduling for the per-mode row updates (static | weighted |
  /// dynamic | workstealing); the schedules are built once per mode and
  /// reused across all iterations (reset() per pass rewinds the dynamic
  /// cursor / reseeds the work-stealing deques).
  SchedulePolicy schedule = SchedulePolicy::kWeighted;
};

/// Result of a completion run.
struct CompletionResult {
  KruskalModel model;                 ///< lambda all ones; raw factors
  std::vector<double> train_rmse;     ///< per-iteration RMSE on train set
  std::vector<double> val_rmse;       ///< per-iteration RMSE on val set
                                      ///< (empty when no val set given)
  int iterations = 0;
};

/// Root-mean-square error of the model on a set of observed entries.
double rmse(const SparseTensor& observed, const KruskalModel& model,
            int nthreads);

/// Runs ALS tensor completion on the observed entries of \p train.
/// \p validation may be empty (pass nullptr) — then no early stopping.
CompletionResult complete_tensor(const SparseTensor& train,
                                 const SparseTensor* validation,
                                 const CompletionOptions& options);

/// Randomly splits a tensor's nonzeros into train/holdout parts
/// (holdout_fraction in (0,1)). Deterministic in the seed. Both outputs
/// keep the input's dims, so indices stay comparable.
std::pair<SparseTensor, SparseTensor> split_train_test(
    const SparseTensor& t, double holdout_fraction, std::uint64_t seed);

}  // namespace sptd
