#pragma once
/// \file completion.hpp
/// \brief Compatibility shim: tensor completion moved to the pluggable
///        solver subsystem under src/completion/ (ALS / SGD / CCD++
///        behind the CompletionSolver interface). Include
///        "completion/completion.hpp" directly in new code.

#include "completion/completion.hpp"
