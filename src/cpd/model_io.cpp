#include "cpd/model_io.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace sptd {

void write_model(const KruskalModel& model, std::ostream& out) {
  std::ostringstream os;
  os.precision(std::numeric_limits<val_t>::max_digits10);
  os << "sptd-kruskal 1\n";
  os << "order " << model.order() << " rank " << model.rank() << "\n";
  os << "lambda\n";
  for (idx_t r = 0; r < model.rank(); ++r) {
    if (r) os << ' ';
    os << model.lambda[r];
  }
  os << "\n";
  for (int m = 0; m < model.order(); ++m) {
    const la::Matrix& f = model.factors[static_cast<std::size_t>(m)];
    os << "factor " << m << ' ' << f.rows() << ' ' << f.cols() << "\n";
    for (idx_t i = 0; i < f.rows(); ++i) {
      const val_t* row = f.row_ptr(i);
      for (idx_t j = 0; j < f.cols(); ++j) {
        if (j) os << ' ';
        os << row[j];
      }
      os << "\n";
    }
  }
  out << os.str();
}

void write_model_file(const KruskalModel& model, const std::string& path) {
  std::ofstream out(path);
  SPTD_CHECK(out.good(), "write_model_file: cannot open " + path);
  write_model(model, out);
  SPTD_CHECK(out.good(), "write_model_file: write failed for " + path);
}

KruskalModel read_model(std::istream& in) {
  std::string token;
  int version = 0;
  SPTD_CHECK(static_cast<bool>(in >> token >> version) &&
                 token == "sptd-kruskal" && version == 1,
             "read_model: bad header");
  int order = 0;
  idx_t rank = 0;
  std::string order_kw, rank_kw;
  SPTD_CHECK(static_cast<bool>(in >> order_kw >> order >> rank_kw >> rank) &&
                 order_kw == "order" && rank_kw == "rank" && order >= 1 &&
                 order <= kMaxOrder && rank >= 1,
             "read_model: bad order/rank line");

  KruskalModel model;
  SPTD_CHECK(static_cast<bool>(in >> token) && token == "lambda",
             "read_model: missing lambda section");
  model.lambda.resize(rank);
  for (idx_t r = 0; r < rank; ++r) {
    SPTD_CHECK(static_cast<bool>(in >> model.lambda[r]),
               "read_model: truncated lambda");
  }

  for (int m = 0; m < order; ++m) {
    int mode = -1;
    idx_t rows = 0, cols = 0;
    SPTD_CHECK(static_cast<bool>(in >> token >> mode >> rows >> cols) &&
                   token == "factor" && mode == m && rows >= 1 &&
                   cols == rank,
               "read_model: bad factor header for mode " +
                   std::to_string(m));
    la::Matrix f(rows, cols);
    for (idx_t i = 0; i < rows; ++i) {
      val_t* row = f.row_ptr(i);
      for (idx_t j = 0; j < cols; ++j) {
        SPTD_CHECK(static_cast<bool>(in >> row[j]),
                   "read_model: truncated factor " + std::to_string(m));
      }
    }
    model.factors.push_back(std::move(f));
  }
  return model;
}

KruskalModel read_model_file(const std::string& path) {
  std::ifstream in(path);
  SPTD_CHECK(in.good(), "read_model_file: cannot open " + path);
  return read_model(in);
}

}  // namespace sptd
