#include "cpd/model_io.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/fileio.hpp"

namespace sptd {

namespace {

/// Serializes the version-independent body (everything after the header
/// and checksum lines). The v1 format was exactly this body behind a bare
/// "sptd-kruskal 1" line; v2 checksums these bytes verbatim.
std::string model_body(const KruskalModel& model) {
  std::ostringstream os;
  os.precision(std::numeric_limits<val_t>::max_digits10);
  os << "order " << model.order() << " rank " << model.rank() << "\n";
  os << "lambda\n";
  for (idx_t r = 0; r < model.rank(); ++r) {
    if (r) os << ' ';
    os << model.lambda[r];
  }
  os << "\n";
  for (int m = 0; m < model.order(); ++m) {
    const la::Matrix& f = model.factors[static_cast<std::size_t>(m)];
    os << "factor " << m << ' ' << f.rows() << ' ' << f.cols() << "\n";
    for (idx_t i = 0; i < f.rows(); ++i) {
      const val_t* row = f.row_ptr(i);
      for (idx_t j = 0; j < f.cols(); ++j) {
        if (j) os << ' ';
        os << row[j];
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string checksum_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

/// Parses the body shared by v1 and v2 from a token stream.
KruskalModel read_model_body(std::istream& in) {
  std::string token;
  int order = 0;
  idx_t rank = 0;
  std::string order_kw, rank_kw;
  SPTD_CHECK(static_cast<bool>(in >> order_kw >> order >> rank_kw >> rank) &&
                 order_kw == "order" && rank_kw == "rank" && order >= 1 &&
                 order <= kMaxOrder && rank >= 1,
             "read_model: bad order/rank line");

  KruskalModel model;
  SPTD_CHECK(static_cast<bool>(in >> token) && token == "lambda",
             "read_model: missing lambda section");
  model.lambda.resize(rank);
  for (idx_t r = 0; r < rank; ++r) {
    SPTD_CHECK(static_cast<bool>(in >> model.lambda[r]),
               "read_model: truncated lambda");
  }

  for (int m = 0; m < order; ++m) {
    int mode = -1;
    idx_t rows = 0, cols = 0;
    SPTD_CHECK(static_cast<bool>(in >> token >> mode >> rows >> cols) &&
                   token == "factor" && mode == m && rows >= 1 &&
                   cols == rank,
               "read_model: bad factor header for mode " +
                   std::to_string(m));
    la::Matrix f(rows, cols);
    for (idx_t i = 0; i < rows; ++i) {
      val_t* row = f.row_ptr(i);
      for (idx_t j = 0; j < cols; ++j) {
        SPTD_CHECK(static_cast<bool>(in >> row[j]),
                   "read_model: truncated factor " + std::to_string(m));
      }
    }
    model.factors.push_back(std::move(f));
  }
  return model;
}

}  // namespace

std::string serialize_model(const KruskalModel& model) {
  const std::string body = model_body(model);
  std::string out = "sptd-kruskal 2\nchecksum ";
  out += checksum_hex(fnv1a64(body));
  out += "\n";
  out += body;
  return out;
}

void write_model(const KruskalModel& model, std::ostream& out) {
  out << serialize_model(model);
}

void write_model_file(const KruskalModel& model, const std::string& path) {
  atomic_write_file(path, serialize_model(model));
}

KruskalModel read_model(std::istream& in) {
  std::string token;
  int version = 0;
  SPTD_CHECK(static_cast<bool>(in >> token >> version) &&
                 token == "sptd-kruskal",
             "read_model: bad header (not an sptd-kruskal file)");
  if (version == 1) {
    // Legacy files: no checksum line, body follows directly.
    return read_model_body(in);
  }
  SPTD_CHECK(version == 2,
             "read_model: unsupported version " + std::to_string(version));
  std::uint64_t expected = 0;
  SPTD_CHECK(static_cast<bool>(in >> token) && token == "checksum",
             "read_model: missing checksum line");
  std::string hex;
  SPTD_CHECK(static_cast<bool>(in >> hex) && hex.size() == 16,
             "read_model: malformed checksum");
  try {
    expected = std::stoull(hex, nullptr, 16);
  } catch (const std::exception&) {
    throw Error("read_model: malformed checksum");
  }
  // The payload is everything after the checksum line, to end of stream.
  std::string line;
  std::getline(in, line);
  std::ostringstream payload;
  payload << in.rdbuf();
  const std::string body = payload.str();
  SPTD_CHECK(fnv1a64(body) == expected,
             "read_model: checksum mismatch (file corrupt or truncated)");
  std::istringstream body_in(body);
  return read_model_body(body_in);
}

KruskalModel read_model_file(const std::string& path) {
  std::ifstream in(path);
  SPTD_CHECK(in.good(), "read_model_file: cannot open " + path);
  return read_model(in);
}

}  // namespace sptd
