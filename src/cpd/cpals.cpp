#include "cpd/cpals.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/error.hpp"
#include "common/log.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/kernels.hpp"
#include "la/norms.hpp"
#include "mttkrp/plan.hpp"
#include "parallel/partition.hpp"
#include "parallel/team.hpp"
#include "resilience/context.hpp"

namespace sptd {

const std::vector<ImplVariant>& impl_variants() {
  static const std::vector<ImplVariant> variants = {
      // The reference C/OpenMP SPLATT code paths.
      {"c", RowAccess::kPointer, LockKind::kOmp, SortVariant::kAllOpts},
      // The port before any optimization: slices, sync vars, naive sort.
      {"chapel-initial", RowAccess::kSlice, LockKind::kSync,
       SortVariant::kInitial},
      // The port after the paper's optimization campaign.
      {"chapel-optimize", RowAccess::kPointer, LockKind::kAtomic,
       SortVariant::kAllOpts},
  };
  return variants;
}

const ImplVariant& find_impl_variant(const std::string& name) {
  for (const auto& v : impl_variants()) {
    if (v.name == name) {
      return v;
    }
  }
  throw Error("unknown implementation variant '" + name +
              "' (expected c|chapel-initial|chapel-optimize)");
}

void apply_impl_variant(const ImplVariant& variant, CpalsOptions& opts) {
  opts.row_access = variant.row_access;
  opts.lock_kind = variant.lock_kind;
  opts.sort_variant = variant.sort_variant;
}

namespace detail {

/// <X, Z> via the MTTKRP identity: Σ_r λ_r Σ_i M(i,r)·A(i,r), where M is
/// the final mode's MTTKRP output (computed against the other updated
/// factors) and A the updated, normalized final factor.
val_t fit_inner_product(const la::Matrix& mttkrp_out, const la::Matrix& a,
                        std::span<const val_t> lambda, int nthreads,
                        PrivateBuffers& partials) {
  const idx_t rank = a.cols();
  SPTD_CHECK(partials.nthreads() >= nthreads &&
                 partials.length() >= static_cast<nnz_t>(rank),
             "fit_inner_product: scratch too small");
  // Column-wise Frobenius products, parallel over rows; the per-thread
  // partial rows live in caller-owned scratch reused across iterations.
  partials.clear(nthreads);
  parallel_region(nthreads, [&](int tid, int nt) {
    val_t* part = partials.buffer(tid).data();
    const Range rows = block_partition(a.rows(), nt, tid);
    for (nnz_t i = rows.begin; i < rows.end; ++i) {
      const val_t* mrow = mttkrp_out.row_ptr(static_cast<idx_t>(i));
      const val_t* arow = a.row_ptr(static_cast<idx_t>(i));
      la::kern::hadamard_accum(part, mrow, arow, rank);
    }
  });
  std::vector<val_t> col_sums(rank, val_t{0});
  for (int t = 0; t < nthreads; ++t) {
    const val_t* part = partials.buffer(t).data();
    for (idx_t r = 0; r < rank; ++r) {
      col_sums[r] += part[r];
    }
  }
  val_t inner = 0;
  for (idx_t r = 0; r < rank; ++r) {
    inner += lambda[r] * col_sums[r];
  }
  return inner;
}

/// λ^T (⊙ grams) λ.
val_t model_norm_sq(const std::vector<la::Matrix>& grams,
                    std::span<const val_t> lambda) {
  const idx_t rank = grams.front().rows();
  la::Matrix had(rank, rank);
  la::gram_hadamard(grams, /*skip=*/-1, had);
  val_t acc = 0;
  for (idx_t i = 0; i < rank; ++i) {
    for (idx_t j = 0; j < rank; ++j) {
      acc += lambda[i] * lambda[j] * had(i, j);
    }
  }
  return acc < val_t{0} ? val_t{0} : acc;
}

}  // namespace detail

CpalsResult cp_als_csf(const CsfSet& csf_set, val_t tensor_norm_sq,
                       const CpalsOptions& options) {
  SPTD_CHECK(options.rank >= 1, "cp_als: rank must be >= 1");
  SPTD_CHECK(options.max_iterations >= 1, "cp_als: need >= 1 iteration");
  SPTD_CHECK(options.nthreads >= 1, "cp_als: nthreads must be >= 1");
  set_parallel_backend(options.backend);
  init_parallel_runtime();

  const CsfTensor& first = csf_set.csfs().front();
  const dims_t& dims = first.dims();
  const int order = first.order();
  const idx_t rank = options.rank;
  const int nthreads = options.nthreads;

  CpalsResult result;
  result.csf_bytes = csf_set.memory_bytes();
  result.value_bytes = csf_set.value_bytes(options.precision);
  RoutineTimers& timers = result.timers;

  // Factor initialization: uniform [0,1), deterministic in the seed.
  Rng rng(options.seed);
  KruskalModel& model = result.model;
  model.lambda.assign(rank, val_t{1});
  model.factors.reserve(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) {
    model.factors.push_back(
        la::Matrix::random(dims[static_cast<std::size_t>(m)], rank, rng));
  }

  ResilienceContext rctx(options.resilience, "cpals", options.seed);
  int it = 0;
  double prev_fit = 0.0;
  if (std::optional<Checkpoint> ck = rctx.try_resume()) {
    SPTD_CHECK(ck->factors.size() == static_cast<std::size_t>(order),
               "cpals resume: checkpoint order mismatch");
    for (int m = 0; m < order; ++m) {
      const la::Matrix& f = ck->factors[static_cast<std::size_t>(m)];
      SPTD_CHECK(f.rows() == dims[static_cast<std::size_t>(m)] &&
                     f.cols() == rank,
                 "cpals resume: checkpoint factor shape mismatch");
    }
    const std::vector<double>* lam = ck->find_series("lambda");
    SPTD_CHECK(lam != nullptr && lam->size() == rank,
               "cpals resume: checkpoint lambda mismatch");
    model.factors = std::move(ck->factors);
    for (idx_t r = 0; r < rank; ++r) {
      model.lambda[r] = static_cast<val_t>((*lam)[r]);
    }
    if (const std::vector<double>* fh = ck->find_series("fit_history")) {
      result.fit_history = *fh;
      double best_loss = std::numeric_limits<double>::infinity();
      for (const double f : *fh) {
        best_loss = std::min(best_loss, 1.0 - f);
      }
      rctx.health().seed_trend(best_loss);
    }
    prev_fit = ck->scalar("prev_fit", 0.0);
    it = ck->iteration;
    result.iterations = it;
  }

  // Gram matrices A^T A for every mode. On resume these are recomputed
  // from the restored factors — la::ata is deterministic, so they match
  // the uninterrupted run's Grams bitwise.
  std::vector<la::Matrix> grams;
  grams.reserve(static_cast<std::size_t>(order));
  timers.start(Routine::kMatAtA);
  for (int m = 0; m < order; ++m) {
    grams.emplace_back(rank, rank);
    la::ata(model.factors[static_cast<std::size_t>(m)],
            grams[static_cast<std::size_t>(m)], nthreads);
  }
  timers.stop(Routine::kMatAtA);

  MttkrpOptions mopts;
  mopts.nthreads = nthreads;
  mopts.row_access = options.row_access;
  mopts.lock_kind = options.lock_kind;
  mopts.schedule = options.schedule;
  mopts.chunk_target = options.chunk_target;
  mopts.privatization_threshold = options.privatization_threshold;
  mopts.force_locks = options.force_locks;
  mopts.allow_privatization = options.allow_privatization;
  mopts.use_fixed_kernels = options.use_fixed_kernels;
  mopts.csf_layout = options.csf_layout;
  mopts.precision = options.precision;
  mopts.backend = options.backend;
  // All scheduling decisions — representation/level per mode, sync
  // strategy, slice bounds, tile boundaries, reduction buffers — are
  // frozen here; the iteration loop below is pure execution.
  MttkrpPlan plan(csf_set, rank, mopts);

  la::Matrix v(rank, rank);
  la::Matrix fit_m;  // last mode's MTTKRP output, kept for the fit
  // Per-thread fit scratch, allocated once for the whole run (the fit is
  // computed every iteration; its reduction buffers must not be).
  PrivateBuffers fit_partials(nthreads, static_cast<nnz_t>(rank));

  // Last state that passed the health scan, for rollback-and-perturb.
  // Only maintained while guards are on (one extra model copy per
  // iteration, O(sum dims · R) — noise next to the MTTKRP).
  const bool guard = rctx.health().enabled();
  struct GoodState {
    std::vector<la::Matrix> factors;
    std::vector<val_t> lambda;
    std::vector<double> fit_history;
    double prev_fit = 0.0;
    int iteration = 0;
  } good;
  if (guard) {
    good = {model.factors, model.lambda, result.fit_history, prev_fit, it};
  }

  bool stopped = false;
  while (it < options.max_iterations && !stopped) {
    for (int m = 0; m < order; ++m) {
      la::Matrix& factor = model.factors[static_cast<std::size_t>(m)];
      const idx_t m_dim = dims[static_cast<std::size_t>(m)];

      // M = X_(m) (A_{N-1} ⊙ ... ⊙ A_{m+1} ⊙ A_{m-1} ⊙ ... ) — MTTKRP.
      la::Matrix out_view(m_dim, rank);
      timers.start(Routine::kMttkrp);
      plan.execute(model.factors, m, out_view);
      timers.stop(Routine::kMttkrp);

      // The fit consumes the final mode's MTTKRP result; keep a copy
      // before the in-place solve overwrites it (M never involves the
      // mode's own factor, so the post-update fit identity still holds).
      if (m == order - 1 && options.compute_fit) {
        timers.start(Routine::kFit);
        fit_m = out_view;
        timers.stop(Routine::kFit);
      }

      // V = ⊙_{n != m} grams[n]  (lines 4/7/10).
      timers.start(Routine::kMatAtA);
      la::gram_hadamard(grams, m, v);
      timers.stop(Routine::kMatAtA);

      // A(m) = M V^{-1}  (Moore–Penrose via Cholesky; lines 5/8/11).
      timers.start(Routine::kInverse);
      la::solve_normal_equations(v, out_view, nthreads);
      timers.stop(Routine::kInverse);

      if (options.nonnegative) {
        // Projected ALS: clamp to the non-negative orthant.
        parallel_region(nthreads, [&](int tid, int nt) {
          const Range rows = block_partition(out_view.size(), nt, tid);
          val_t* data = out_view.data();
          for (nnz_t i = rows.begin; i < rows.end; ++i) {
            if (data[i] < val_t{0}) {
              data[i] = val_t{0};
            }
          }
        });
      }
      factor = std::move(out_view);

      // Column normalization (lines 6/9/12): 2-norm first iteration,
      // max-norm afterwards (SPLATT's scheme).
      timers.start(Routine::kMatNorm);
      la::normalize_columns(factor, model.lambda,
                            it == 0 ? la::MatNorm::kTwo : la::MatNorm::kMax,
                            nthreads);
      timers.stop(Routine::kMatNorm);

      // Pure-f32 mode: the factor master itself carries only fp32
      // information (the ablation endpoint the mixed mode is judged
      // against). Rounding after normalization keeps λ and the Grams
      // consistent with what the next MTTKRP streams.
      if (options.precision == Precision::kF32) {
        la::round_through_f32(factor);
      }

      // Refresh this mode's Gram matrix.
      timers.start(Routine::kMatAtA);
      la::ata(factor, grams[static_cast<std::size_t>(m)], nthreads);
      timers.stop(Routine::kMatAtA);
    }

    // Fault injection lands between the factor updates and the health
    // scan, exactly where a soft error would corrupt an iterate.
    if (FaultInjector* inj = rctx.injector()) {
      inj->corrupt_factors(model.factors, it);
    }

    // Fit (line 13): 1 - ||X - Z||_F / ||X||_F via the sparse identity.
    double fit = 0.0;
    double loss = HealthMonitor::kNoLoss;
    if (options.compute_fit) {
      timers.start(Routine::kFit);
      const int last = order - 1;
      const val_t inner = detail::fit_inner_product(
          fit_m, model.factors[static_cast<std::size_t>(last)],
          model.lambda, nthreads, fit_partials);
      const val_t norm_z = detail::model_norm_sq(grams, model.lambda);
      val_t residual_sq = tensor_norm_sq + norm_z - 2 * inner;
      if (residual_sq < val_t{0}) residual_sq = 0;
      fit = (tensor_norm_sq > val_t{0})
                ? 1.0 - std::sqrt(static_cast<double>(residual_sq)) /
                            std::sqrt(static_cast<double>(tensor_norm_sq))
                : 0.0;
      timers.stop(Routine::kFit);
      loss = 1.0 - fit;
    }

    if (guard) {
      const HealthIssue issue =
          rctx.health().inspect(model.factors, model.lambda, loss);
      if (issue != HealthIssue::kNone) {
        rctx.fail_or_retry(issue, it);  // throws when retries are exhausted
        // Rollback-and-perturb: restore the last healthy state, jitter it
        // off the failing trajectory, and rebuild the Grams.
        model.factors = good.factors;
        model.lambda = good.lambda;
        result.fit_history = good.fit_history;
        prev_fit = good.prev_fit;
        it = good.iteration;
        perturb_factors(model.factors, rctx.recovery_rng());
        if (options.precision == Precision::kF32) {
          for (la::Matrix& f : model.factors) {
            la::round_through_f32(f);
          }
        }
        timers.start(Routine::kMatAtA);
        for (int m = 0; m < order; ++m) {
          la::ata(model.factors[static_cast<std::size_t>(m)],
                  grams[static_cast<std::size_t>(m)], nthreads);
        }
        timers.stop(Routine::kMatAtA);
        continue;
      }
      rctx.note_healthy();
    }

    if (options.compute_fit) {
      result.fit_history.push_back(fit);
      if (options.tolerance > 0.0 && it > 0 &&
          std::abs(fit - prev_fit) < options.tolerance) {
        stopped = true;
      }
      prev_fit = fit;
    }
    ++it;
    result.iterations = it;

    if (guard) {
      good.factors = model.factors;
      good.lambda = model.lambda;
      good.fit_history = result.fit_history;
      good.prev_fit = prev_fit;
      good.iteration = it;
    }

    // Mid-run snapshots only: a run that is about to return rebuilds
    // nothing on resume, and the final model is the caller's to persist.
    if (!stopped && it < options.max_iterations && rctx.checkpoint_due(it)) {
      Checkpoint ck;
      ck.iteration = it;
      ck.factors = model.factors;
      ck.set_series("lambda", std::vector<double>(model.lambda.begin(),
                                                  model.lambda.end()));
      ck.set_series("fit_history", result.fit_history);
      ck.set_scalar("prev_fit", prev_fit);
      rctx.save_checkpoint(std::move(ck));
    }
  }
  rctx.finish(result.resilience);
  return result;
}

CpalsResult cp_als(SparseTensor& tensor, const CpalsOptions& options) {
  SPTD_CHECK(tensor.nnz() > 0, "cp_als: empty tensor");
  // Backend first: CSF sorting below already runs parallel regions.
  set_parallel_backend(options.backend);
  init_parallel_runtime();
  const val_t norm_sq = tensor.norm_sq();

  // Sort + CSF construction. Sorting is the paper's "Sort" routine and is
  // charged to the result's timer table.
  double sort_seconds = 0.0;
  CsfSet csf_set(tensor, options.csf_policy, options.nthreads,
                 &sort_seconds, options.sort_variant, options.csf_layout);

  CpalsResult result = cp_als_csf(csf_set, norm_sq, options);
  result.timers.add_seconds(Routine::kSort, sort_seconds);
  return result;
}

}  // namespace sptd
