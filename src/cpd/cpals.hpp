#pragma once
/// \file cpals.hpp
/// \brief CP-ALS (Algorithm 1 of the paper): rank-R canonical polyadic
///        decomposition of a sparse tensor by alternating least squares,
///        with the per-routine timing breakdown the paper reports.

#include <string>
#include <vector>

#include "common/timer.hpp"
#include "cpd/kruskal.hpp"
#include "csf/csf.hpp"
#include "mttkrp/mttkrp.hpp"
#include "resilience/resilience.hpp"
#include "sort/sort.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// All knobs of a CP-ALS run. Defaults match SPLATT's defaults and the
/// reference implementation's code paths.
struct CpalsOptions {
  idx_t rank = 10;
  int max_iterations = 50;
  /// Stop when the fit improves by less than this between iterations.
  /// Set to 0 to always run max_iterations (the paper runs a fixed 20).
  double tolerance = 1e-5;
  std::uint64_t seed = 23;  ///< factor initialization seed
  int nthreads = 1;

  CsfPolicy csf_policy = CsfPolicy::kTwoMode;
  /// CSF index-stream widths (compressed = narrowest per level; wide =
  /// the fixed u32/u64 ablation baseline).
  CsfLayout csf_layout = CsfLayout::kCompressed;
  SortVariant sort_variant = SortVariant::kAllOpts;
  RowAccess row_access = RowAccess::kPointer;
  LockKind lock_kind = LockKind::kOmp;
  /// Slice scheduling policy for the MTTKRP execution plan
  /// (static | weighted | dynamic | workstealing).
  SchedulePolicy schedule = SchedulePolicy::kWeighted;
  /// Dynamic/workstealing claims-per-thread target
  /// (MttkrpOptions::chunk_target).
  int chunk_target = 16;
  double privatization_threshold = 0.02;
  bool force_locks = false;
  bool allow_privatization = true;
  /// Rank-specialized SIMD kernels (MttkrpOptions::use_fixed_kernels);
  /// disable to benchmark the generic runtime-rank loops.
  bool use_fixed_kernels = true;
  /// Value-stream precision (common/precision.hpp). f64 is the exact
  /// pre-precision pipeline; mixed streams fp32 factor shadows + fp32 CSF
  /// values through the MTTKRP with fp64 accumulation (factor masters
  /// stay fp64 — fits match f64 within 1e-6 on the smoke fixtures); f32
  /// additionally accumulates in fp32 and rounds each updated factor
  /// through fp32 (fits within 1e-3). Solves, norms, Grams, and the fit
  /// always run fp64.
  Precision precision = Precision::kF64;
  /// Parallel backend (parallel/backend.hpp): omp (default) or pool.
  /// cp_als applies this process-wide via set_parallel_backend() before
  /// building CSF/plan state; defaults from SPTD_BACKEND.
  ParallelBackendKind backend = default_parallel_backend();

  /// Compute the fit every iteration even when tolerance == 0 (the fit is
  /// one of the paper's timed routines, so the default keeps it on).
  bool compute_fit = true;

  /// Non-negative CP (SPLATT's constrained CP): after each least-squares
  /// solve, project the factor onto the non-negative orthant before
  /// normalization. With non-negative data this yields parts-based,
  /// interpretable components.
  bool nonnegative = false;

  /// Checkpoint/restart, numeric-health guards, and fault injection.
  /// Defaults are inert (no checkpoints, no injection, guards that only
  /// observe), so f64 runs stay bit-identical.
  ResilienceOptions resilience;
};

/// Result of a CP-ALS run.
struct CpalsResult {
  KruskalModel model;
  std::vector<double> fit_history;  ///< fit after each iteration
  int iterations = 0;               ///< iterations actually performed
  RoutineTimers timers;             ///< the paper's six routine timings
  std::uint64_t csf_bytes = 0;      ///< CSF memory footprint
  /// Bytes of tensor values streamed per MTTKRP launch under the run's
  /// precision: nnz * value width, summed over the CSF set's
  /// representations (8 B/value for f64, 4 B for f32/mixed).
  std::uint64_t value_bytes = 0;
  /// Checkpoint/recovery activity observed during the run.
  ResilienceCounters resilience;
};

/// Named implementation presets matching the paper's legend entries:
/// how the reference C code, the initial Chapel port, and the optimized
/// Chapel port differ in this reproduction.
struct ImplVariant {
  std::string name;
  RowAccess row_access;
  LockKind lock_kind;
  SortVariant sort_variant;
};

/// "c" (pointer/omp/all-opts), "chapel-initial" (slice/sync/initial),
/// "chapel-optimize" (pointer/atomic/all-opts).
const std::vector<ImplVariant>& impl_variants();

/// Finds a variant by name; throws sptd::Error if unknown.
const ImplVariant& find_impl_variant(const std::string& name);

/// Applies a variant's fields onto \p opts.
void apply_impl_variant(const ImplVariant& variant, CpalsOptions& opts);

/// Runs CP-ALS. \p tensor is re-sorted in place during CSF construction
/// (the paper's "Sort" routine, charged to the timers).
CpalsResult cp_als(SparseTensor& tensor, const CpalsOptions& options);

/// Runs CP-ALS on a pre-built CSF set (skips the sort/build; its timers
/// then cover only the iteration routines).
CpalsResult cp_als_csf(const CsfSet& csf_set, val_t tensor_norm_sq,
                       const CpalsOptions& options);

namespace detail {

/// Fit helpers shared with the simulated distributed driver
/// (dist/dist_cpals.cpp), which must reproduce the shared-memory fit with
/// bit-identical arithmetic. \p partials is caller-owned scratch of at
/// least rank values per thread, allocated once per ALS run instead of
/// per iteration; only the first rank values of each buffer are used.
val_t fit_inner_product(const la::Matrix& mttkrp_out, const la::Matrix& a,
                        std::span<const val_t> lambda, int nthreads,
                        PrivateBuffers& partials);
val_t model_norm_sq(const std::vector<la::Matrix>& grams,
                    std::span<const val_t> lambda);

}  // namespace detail

}  // namespace sptd
