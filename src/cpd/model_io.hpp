#pragma once
/// \file model_io.hpp
/// \brief Persistence for Kruskal models — the analogue of SPLATT's
///        factor-matrix output files, so a decomposition can be computed
///        once and analyzed elsewhere.
///
/// Text format (versioned):
///   sptd-kruskal 1
///   order <N> rank <R>
///   lambda
///   <R values on one line>
///   factor <m> <rows> <cols>      (N times)
///   <rows lines of cols values>

#include <iosfwd>
#include <string>

#include "cpd/kruskal.hpp"

namespace sptd {

/// Writes a Kruskal model (full double precision).
void write_model(const KruskalModel& model, std::ostream& out);

/// Writes a Kruskal model to a file path.
void write_model_file(const KruskalModel& model, const std::string& path);

/// Reads a model written by write_model. Throws sptd::Error on malformed
/// input.
KruskalModel read_model(std::istream& in);

/// Reads a model from a file path.
KruskalModel read_model_file(const std::string& path);

}  // namespace sptd
