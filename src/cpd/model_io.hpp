#pragma once
/// \file model_io.hpp
/// \brief Persistence for Kruskal models — the analogue of SPLATT's
///        factor-matrix output files, so a decomposition can be computed
///        once and analyzed elsewhere.
///
/// Text format (versioned):
///   sptd-kruskal 2
///   checksum <16 hex digits>      (FNV-1a 64 over the payload below)
///   order <N> rank <R>
///   lambda
///   <R values on one line>
///   factor <m> <rows> <cols>      (N times)
///   <rows lines of cols values>
///
/// Values print with max_digits10, so doubles round-trip exactly — a model
/// written, read, and rewritten is byte-identical, which is what lets the
/// resume path promise bitwise-equal output files. Version 1 files (no
/// checksum line) remain readable; writes always emit version 2 and land
/// atomically (tmp + fsync + rename).

#include <iosfwd>
#include <string>

#include "cpd/kruskal.hpp"

namespace sptd {

/// Serializes a model to the version-2 text format (header + checksum +
/// payload), full double precision.
std::string serialize_model(const KruskalModel& model);

/// Writes a Kruskal model (full double precision).
void write_model(const KruskalModel& model, std::ostream& out);

/// Writes a Kruskal model to a file path, atomically.
void write_model_file(const KruskalModel& model, const std::string& path);

/// Reads a model written by write_model. Throws sptd::Error on malformed
/// input.
KruskalModel read_model(std::istream& in);

/// Reads a model from a file path.
KruskalModel read_model_file(const std::string& path);

}  // namespace sptd
