#pragma once
/// \file kruskal.hpp
/// \brief Kruskal-form tensor model: the output of CP decomposition —
///        column-normalized factor matrices plus per-component weights λ
///        (Algorithm 1's return value).

#include <span>
#include <vector>

#include "common/types.hpp"
#include "la/matrix.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// Rank-R Kruskal model: X ≈ Σ_r λ_r · a_r^(0) ∘ a_r^(1) ∘ ... (outer
/// products of factor columns).
struct KruskalModel {
  std::vector<val_t> lambda;       ///< component weights (length rank)
  std::vector<la::Matrix> factors; ///< one I_m x R matrix per mode

  [[nodiscard]] int order() const { return static_cast<int>(factors.size()); }
  [[nodiscard]] idx_t rank() const {
    return static_cast<idx_t>(lambda.size());
  }

  /// Model value at one coordinate: Σ_r λ_r ∏_m A(m)(c_m, r).
  [[nodiscard]] val_t value_at(std::span<const idx_t> coords) const;

  /// ||Z||_F^2 of the modeled tensor, computed from the factor Gram
  /// matrices: λ^T (⊙_m A(m)^T A(m)) λ. O(N·I·R^2), never densifies.
  [[nodiscard]] val_t norm_sq(int nthreads) const;

  /// Relative fit against \p x: 1 - ||X - Z||_F / ||X||_F, using the
  /// standard sparse identity ||X - Z||^2 = ||X||^2 + ||Z||^2 - 2<X, Z>.
  /// O(nnz·N·R).
  [[nodiscard]] double fit_to(const SparseTensor& x, int nthreads) const;
};

/// <X, Z> between a sparse tensor and a Kruskal model, parallel over
/// nonzeros.
val_t kruskal_inner(const SparseTensor& x, const KruskalModel& model,
                    int nthreads);

}  // namespace sptd
