#include "cpd/completion.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/cholesky.hpp"
#include "la/matrix.hpp"
#include "parallel/partition.hpp"
#include "parallel/team.hpp"
#include "sort/sort.hpp"

namespace sptd {

double rmse(const SparseTensor& observed, const KruskalModel& model,
            int nthreads) {
  SPTD_CHECK(observed.order() == model.order(), "rmse: order mismatch");
  if (observed.nnz() == 0) {
    return 0.0;
  }
  const int order = observed.order();
  const idx_t rank = model.rank();
  std::vector<double> partials(static_cast<std::size_t>(nthreads), 0.0);
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range r = block_partition(observed.nnz(), nt, tid);
    double acc = 0.0;
    for (nnz_t x = r.begin; x < r.end; ++x) {
      val_t pred = 0;
      for (idx_t k = 0; k < rank; ++k) {
        val_t prod = model.lambda[k];
        for (int m = 0; m < order; ++m) {
          prod *= model.factors[static_cast<std::size_t>(m)](
              observed.ind(m)[x], k);
        }
        pred += prod;
      }
      const double err = static_cast<double>(observed.vals()[x] - pred);
      acc += err * err;
    }
    partials[static_cast<std::size_t>(tid)] = acc;
  });
  double total = 0.0;
  for (const double p : partials) total += p;
  return std::sqrt(total / static_cast<double>(observed.nnz()));
}

namespace {

/// Observed entries grouped by slice of one mode: a CSR-like view used to
/// walk "all nonzeros whose mode-m coordinate is i" during the row update.
/// The slice schedule — which rows each thread updates — is part of the
/// view: it depends only on the (static) observation pattern, so it is
/// built once here and reused by every iteration's update_mode pass.
struct ModeSlices {
  SparseTensor sorted;            ///< copy sorted with mode m primary
  std::vector<nnz_t> slice_ptr;   ///< per-slice extents (dims[m]+1)
  SliceSchedule schedule;         ///< row distribution over the team
};

ModeSlices build_mode_slices(const SparseTensor& t, int mode,
                             const CompletionOptions& options) {
  ModeSlices ms{t, {}, {}};
  sort_tensor(ms.sorted, mode, options.nthreads);
  const idx_t dim = t.dim(mode);
  ms.slice_ptr = slice_nnz_prefix(ms.sorted.ind(mode), dim);
  // Balance slices by observation count (weighted policy) or row count.
  ms.schedule = SliceSchedule(options.schedule, dim, ms.slice_ptr,
                              options.nthreads);
  return ms;
}

/// One ALS pass over mode m: for every row i, assemble and solve
///   (Σ_{x ∈ slice i} c_x c_x^T + λI) a_i = Σ_{x ∈ slice i} X_x c_x
/// where c_x is the Hadamard product of the other factors' rows at x.
void update_mode(const ModeSlices& ms, int mode,
                 std::vector<la::Matrix>& factors, double regularization,
                 int nthreads) {
  const SparseTensor& t = ms.sorted;
  const int order = t.order();
  const idx_t rank = factors[0].cols();
  la::Matrix& target = factors[static_cast<std::size_t>(mode)];

  ms.schedule.reset();
  parallel_region(nthreads, [&](int tid, int) {
    la::Matrix normal(rank, rank);
    std::vector<val_t> c(rank), b(rank);

    const auto update_row = [&](idx_t i) {
      const nnz_t lo = ms.slice_ptr[i];
      const nnz_t hi = ms.slice_ptr[static_cast<std::size_t>(i) + 1];
      if (lo == hi) {
        return;  // unobserved row keeps its current value
      }
      normal.fill(val_t{0});
      std::fill(b.begin(), b.end(), val_t{0});
      for (nnz_t x = lo; x < hi; ++x) {
        // c = Hadamard of the other factors' rows.
        std::fill(c.begin(), c.end(), val_t{1});
        for (int m = 0; m < order; ++m) {
          if (m == mode) continue;
          const val_t* row =
              factors[static_cast<std::size_t>(m)].row_ptr(t.ind(m)[x]);
          for (idx_t r = 0; r < rank; ++r) {
            c[r] *= row[r];
          }
        }
        const val_t v = t.vals()[x];
        for (idx_t r = 0; r < rank; ++r) {
          b[r] += v * c[r];
          val_t* nrow = normal.row_ptr(r);
          for (idx_t s = r; s < rank; ++s) {
            nrow[s] += c[r] * c[s];
          }
        }
      }
      // Mirror + regularize, then solve via Cholesky.
      for (idx_t r = 0; r < rank; ++r) {
        normal(r, r) += static_cast<val_t>(regularization);
        for (idx_t s = r + 1; s < rank; ++s) {
          normal(s, r) = normal(r, s);
        }
      }
      la::Matrix rhs(1, rank);
      for (idx_t r = 0; r < rank; ++r) {
        rhs(0, r) = b[r];
      }
      la::solve_normal_equations(normal, rhs, 1);
      val_t* out = target.row_ptr(i);
      for (idx_t r = 0; r < rank; ++r) {
        out[r] = rhs(0, r);
      }
    };

    ms.schedule.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
      for (nnz_t i = begin; i < end; ++i) {
        update_row(static_cast<idx_t>(i));
      }
    });
  });
}

}  // namespace

CompletionResult complete_tensor(const SparseTensor& train,
                                 const SparseTensor* validation,
                                 const CompletionOptions& options) {
  SPTD_CHECK(train.nnz() > 0, "complete_tensor: empty training set");
  SPTD_CHECK(options.rank >= 1, "complete_tensor: rank must be >= 1");
  SPTD_CHECK(options.max_iterations >= 1,
             "complete_tensor: need >= 1 iteration");
  SPTD_CHECK(options.nthreads >= 1,
             "complete_tensor: nthreads must be >= 1");
  if (validation != nullptr) {
    SPTD_CHECK(validation->order() == train.order(),
               "complete_tensor: validation order mismatch");
  }
  init_parallel_runtime();

  const int order = train.order();
  const int nthreads = options.nthreads;

  // Per-mode slice views (three sorted copies for a 3rd-order tensor; the
  // memory trade is the same one SPLATT's completion code makes).
  std::vector<ModeSlices> slices;
  slices.reserve(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) {
    slices.push_back(build_mode_slices(train, m, options));
  }

  CompletionResult result;
  KruskalModel& model = result.model;
  model.lambda.assign(options.rank, val_t{1});
  Rng rng(options.seed);
  for (int m = 0; m < order; ++m) {
    // Small random init keeps early predictions near zero, which is the
    // right prior for sparse ratings-style data.
    model.factors.push_back(
        la::Matrix::random(train.dim(m), options.rank, rng));
    for (val_t& v : model.factors.back().values()) {
      v *= val_t{0.5};
    }
  }

  double best_val = std::numeric_limits<double>::infinity();
  for (int it = 0; it < options.max_iterations; ++it) {
    for (int m = 0; m < order; ++m) {
      update_mode(slices[static_cast<std::size_t>(m)], m, model.factors,
                  options.regularization, nthreads);
    }
    result.train_rmse.push_back(rmse(train, model, nthreads));
    result.iterations = it + 1;
    if (validation != nullptr && validation->nnz() > 0) {
      const double v = rmse(*validation, model, nthreads);
      result.val_rmse.push_back(v);
      if (options.tolerance > 0.0 && it > 0 &&
          v > best_val - options.tolerance) {
        break;  // validation error stopped improving
      }
      best_val = std::min(best_val, v);
    }
  }
  return result;
}

std::pair<SparseTensor, SparseTensor> split_train_test(
    const SparseTensor& t, double holdout_fraction, std::uint64_t seed) {
  SPTD_CHECK(holdout_fraction > 0.0 && holdout_fraction < 1.0,
             "split_train_test: fraction must be in (0,1)");
  Rng rng(seed);
  SparseTensor train(t.dims());
  SparseTensor test(t.dims());
  const auto order = static_cast<std::size_t>(t.order());
  std::array<idx_t, kMaxOrder> c{};
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    for (std::size_t m = 0; m < order; ++m) {
      c[m] = t.ind(static_cast<int>(m))[x];
    }
    auto& dst = (rng.next_double() < holdout_fraction) ? test : train;
    dst.push_back({c.data(), order}, t.vals()[x]);
  }
  return {std::move(train), std::move(test)};
}

}  // namespace sptd
