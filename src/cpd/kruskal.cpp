#include "cpd/kruskal.hpp"

#include <cmath>

#include "common/error.hpp"
#include "la/blas.hpp"
#include "parallel/partition.hpp"
#include "parallel/team.hpp"

namespace sptd {

val_t KruskalModel::value_at(std::span<const idx_t> coords) const {
  SPTD_DCHECK(static_cast<int>(coords.size()) == order(),
              "value_at: wrong order");
  val_t sum = 0;
  for (idx_t r = 0; r < rank(); ++r) {
    val_t prod = lambda[r];
    for (int m = 0; m < order(); ++m) {
      prod *= factors[static_cast<std::size_t>(m)](coords[m], r);
    }
    sum += prod;
  }
  return sum;
}

val_t KruskalModel::norm_sq(int nthreads) const {
  const idx_t r = rank();
  la::Matrix had(r, r, val_t{1});
  la::Matrix gram(r, r);
  for (const auto& f : factors) {
    la::ata(f, gram, nthreads);
    la::hadamard_inplace(had, gram);
  }
  val_t acc = 0;
  for (idx_t i = 0; i < r; ++i) {
    for (idx_t j = 0; j < r; ++j) {
      acc += lambda[i] * lambda[j] * had(i, j);
    }
  }
  // Guard tiny negative round-off.
  return acc < val_t{0} ? val_t{0} : acc;
}

val_t kruskal_inner(const SparseTensor& x, const KruskalModel& model,
                    int nthreads) {
  SPTD_CHECK(x.order() == model.order(), "kruskal_inner: order mismatch");
  std::vector<val_t> partials(static_cast<std::size_t>(nthreads), val_t{0});
  const int order = x.order();
  const idx_t rank = model.rank();
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range range = block_partition(x.nnz(), nt, tid);
    val_t acc = 0;
    for (nnz_t n = range.begin; n < range.end; ++n) {
      val_t entry = 0;
      for (idx_t r = 0; r < rank; ++r) {
        val_t prod = model.lambda[r];
        for (int m = 0; m < order; ++m) {
          prod *= model.factors[static_cast<std::size_t>(m)](
              x.ind(m)[n], r);
        }
        entry += prod;
      }
      acc += entry * x.vals()[n];
    }
    partials[static_cast<std::size_t>(tid)] = acc;
  });
  val_t total = 0;
  for (const val_t v : partials) total += v;
  return total;
}

double KruskalModel::fit_to(const SparseTensor& x, int nthreads) const {
  const val_t norm_x = x.norm_sq();
  if (norm_x == val_t{0}) {
    return 0.0;
  }
  const val_t norm_z = norm_sq(nthreads);
  const val_t inner = kruskal_inner(x, *this, nthreads);
  val_t residual_sq = norm_x + norm_z - 2 * inner;
  if (residual_sq < val_t{0}) residual_sq = 0;
  return 1.0 - std::sqrt(static_cast<double>(residual_sq)) /
                   std::sqrt(static_cast<double>(norm_x));
}

}  // namespace sptd
