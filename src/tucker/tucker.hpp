#pragma once
/// \file tucker.hpp
/// \brief Sparse Tucker decomposition via HOOI — the other factorization
///        in SPLATT's toolbox (the paper cites Smith & Karypis's
///        CSF-based Tucker as part of what SPLATT provides).
///
/// Tucker models X ≈ G ×_0 U(0) ×_1 U(1) ... with a small dense core G
/// (dimensions = core_dims) and column-orthonormal factors U(m)
/// (I_m x core_dims[m]). HOOI (higher-order orthogonal iteration)
/// alternates, for each mode:
///   1. TTMc: W = X ×_{n != m} U(n)^T, matricized to I_m x K where
///      K = prod_{n != m} core_dims[n]  (sparse kernel, one pass/nonzero);
///   2. U(m) <- leading core_dims[m] left singular vectors of W, via the
///      eigendecomposition of the small K x K Gram matrix W^T W.
/// The core is G_(last) = U(last)^T W from the final mode's TTMc, and the
/// fit follows from ||X - X̂||² = ||X||² - ||G||² (orthonormal factors).

#include <vector>

#include "common/timer.hpp"
#include "common/types.hpp"
#include "csf/csf.hpp"
#include "la/matrix.hpp"
#include "parallel/backend.hpp"
#include "parallel/schedule.hpp"
#include "resilience/resilience.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// Tucker model: core tensor (dense, linearized last-mode-fastest with
/// respect to core_dims) plus orthonormal factor matrices.
struct TuckerModel {
  dims_t core_dims;
  std::vector<val_t> core;          ///< prod(core_dims) values
  std::vector<la::Matrix> factors;  ///< I_m x core_dims[m]

  [[nodiscard]] int order() const {
    return static_cast<int>(factors.size());
  }

  /// ||G||_F^2 (equals ||X̂||_F^2 when factors are orthonormal).
  [[nodiscard]] val_t core_norm_sq() const;

  /// Model value at one coordinate (O(prod core_dims) per call).
  [[nodiscard]] val_t value_at(std::span<const idx_t> coords) const;
};

/// HOOI options.
struct TuckerOptions {
  dims_t core_dims;        ///< one rank per mode
  int max_iterations = 50;
  double tolerance = 1e-5; ///< fit-improvement stop (0 = run all)
  std::uint64_t seed = 17;
  int nthreads = 1;
  /// Evaluate TTMc over an all-mode CSF set (SPLATT's approach; several
  /// times faster through prefix sharing) instead of flat COO. Both
  /// paths produce identical results; tests exercise both.
  bool use_csf = true;
  /// Slice scheduling for the CSF TTMc kernels (static | weighted |
  /// dynamic | workstealing); one schedule per mode is built before the
  /// HOOI loop and reused across all iterations (reset() per launch
  /// rewinds the dynamic cursor / reseeds the work-stealing deques).
  SchedulePolicy schedule = SchedulePolicy::kWeighted;
  /// Index-stream widths of the all-mode CSF set the TTMc walks
  /// (compressed = per-level narrowest, wide = u32/u64 baseline).
  CsfLayout csf_layout = CsfLayout::kCompressed;
  /// Value-stream precision for the CSF TTMc (common/precision.hpp):
  /// f32/mixed stream fp32 factor shadows + fp32 CSF values with fp64
  /// Kronecker accumulation; f32 additionally rounds each updated factor
  /// through fp32 per HOOI sweep. The COO fallback (use_csf = false) and
  /// all dense linear algebra (Gram, eigen, core) always run fp64.
  Precision precision = Precision::kF64;
  /// Parallel backend (parallel/backend.hpp): omp (default) or pool.
  /// tucker_hooi applies this process-wide via set_parallel_backend()
  /// before building the CSF set; defaults from SPTD_BACKEND.
  ParallelBackendKind backend = default_parallel_backend();

  /// Checkpoint/restart, numeric-health guards, and fault injection
  /// (inert by default). Resume requires at least one HOOI iteration left
  /// to run — the core is regenerated from the final mode's TTMc.
  ResilienceOptions resilience;
};

/// HOOI result.
struct TuckerResult {
  TuckerModel model;
  std::vector<double> fit_history;  ///< fit after each iteration
  int iterations = 0;
  /// Checkpoint/recovery activity observed during the run.
  ResilienceCounters resilience;
};

/// Sparse TTMc with one mode skipped: out(c_m, :) += X(c) *
/// ⊗_{n != m} U(n)(c_n, :), where ⊗ is the Kronecker product of rows
/// taken in *descending* mode order (n = N-1 ... 0), giving out K columns
/// with K = prod_{n != m} cols(U(n)). Parallel over nonzero blocks with
/// per-thread accumulation into privatized buffers (out rows conflict).
void ttmc(const SparseTensor& x, const std::vector<la::Matrix>& factors,
          int mode, la::Matrix& out, int nthreads);

/// Runs HOOI. core_dims.size() must equal x.order(); each core dim must
/// be >= 1 and <= the mode length.
TuckerResult tucker_hooi(const SparseTensor& x,
                         const TuckerOptions& options);

/// CSF-based TTMc for the representation's ROOT mode — the algorithmic
/// contribution of SPLATT's Tucker work (Smith & Karypis, Euro-Par 2017):
/// nonzeros sharing fiber prefixes share the partial Kronecker products
/// computed up the tree, so each distinct fiber multiplies its factor row
/// once instead of once per nonzero. Output columns use the same
/// canonical layout as ttmc() (mode 0 fastest); results are identical.
/// \p factors are indexed by original mode id; out must be
/// dims[root] x prod_{n != root} cols. \p slices, when given, is a
/// prebuilt root-slice schedule (tucker_hooi builds one per mode before
/// the HOOI loop); null re-derives SPLATT's weighted blocking per call.
/// Under f32/mixed \p precision the walk streams fp32 factor shadows and
/// the CSF's fp32 value copy, accumulating Kronecker products in fp64;
/// f64 is the exact pre-precision path.
void ttmc_csf(const CsfTensor& csf,
              const std::vector<la::Matrix>& factors, la::Matrix& out,
              int nthreads, const SliceSchedule* slices = nullptr,
              Precision precision = Precision::kF64);

}  // namespace sptd
