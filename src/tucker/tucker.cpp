#include "tucker/tucker.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "parallel/locks.hpp"
#include "parallel/partition.hpp"
#include "parallel/team.hpp"
#include "resilience/context.hpp"

namespace sptd {

val_t TuckerModel::core_norm_sq() const {
  val_t acc = 0;
  for (const val_t v : core) {
    acc += v * v;
  }
  return acc;
}

val_t TuckerModel::value_at(std::span<const idx_t> coords) const {
  SPTD_DCHECK(static_cast<int>(coords.size()) == order(),
              "value_at: wrong order");
  const int n = order();
  // Walk every core element; multiply by the matching factor entries.
  val_t sum = 0;
  std::vector<idx_t> j(static_cast<std::size_t>(n), 0);
  for (std::size_t off = 0; off < core.size(); ++off) {
    val_t prod = core[off];
    for (int m = 0; m < n; ++m) {
      prod *= factors[static_cast<std::size_t>(m)](
          coords[m], j[static_cast<std::size_t>(m)]);
    }
    sum += prod;
    for (int m = n - 1; m >= 0; --m) {
      auto& jm = j[static_cast<std::size_t>(m)];
      if (++jm < core_dims[static_cast<std::size_t>(m)]) break;
      jm = 0;
    }
  }
  return sum;
}

void ttmc(const SparseTensor& x, const std::vector<la::Matrix>& factors,
          int mode, la::Matrix& out, int nthreads) {
  const int order = x.order();
  SPTD_CHECK(mode >= 0 && mode < order, "ttmc: mode out of range");
  SPTD_CHECK(static_cast<int>(factors.size()) == order,
             "ttmc: factor count mismatch");
  std::size_t k = 1;
  for (int n = 0; n < order; ++n) {
    if (n == mode) continue;
    SPTD_CHECK(factors[static_cast<std::size_t>(n)].rows() == x.dim(n),
               "ttmc: factor rows mismatch");
    k *= factors[static_cast<std::size_t>(n)].cols();
  }
  SPTD_CHECK(out.rows() == x.dim(mode) && out.cols() == k,
             "ttmc: bad output shape");
  SPTD_CHECK(k <= 65536, "ttmc: Kronecker width too large");

  out.zero_parallel(nthreads);
  AnyMutexPool pool(LockKind::kOmp);
  const auto out_ind = x.ind(mode);

  parallel_region(nthreads, [&](int tid, int nt) {
    const Range range = block_partition(x.nnz(), nt, tid);
    // Kronecker row built incrementally: start with [val], then for each
    // mode n != mode (descending) expand by that factor's row.
    std::vector<val_t> kron(k), next(k);
    for (nnz_t xi = range.begin; xi < range.end; ++xi) {
      std::size_t len = 1;
      kron[0] = x.vals()[xi];
      for (int n = order - 1; n >= 0; --n) {
        if (n == mode) continue;
        const la::Matrix& f = factors[static_cast<std::size_t>(n)];
        const val_t* row = f.row_ptr(x.ind(n)[xi]);
        const idx_t r = f.cols();
        // next[l*r + j] = kron[l] * row[j]: the newly-absorbed (lower)
        // mode varies fastest, so after the descending sweep mode 0 is
        // the fastest-varying column index (matches ttmc_column).
        for (std::size_t l = 0; l < len; ++l) {
          const val_t kl = kron[l];
          val_t* dst = next.data() + l * r;
          for (idx_t j = 0; j < r; ++j) {
            dst[j] = kl * row[j];
          }
        }
        len *= r;
        std::swap(kron, next);
      }
      const idx_t row_id = out_ind[xi];
      if (nt > 1) pool.lock(row_id);
      val_t* dst = out.row_ptr(row_id);
      for (std::size_t l = 0; l < k; ++l) {
        dst[l] += kron[l];
      }
      if (nt > 1) pool.unlock(row_id);
    }
  });
}

namespace {
std::size_t ttmc_column(const dims_t& core_dims, int skip,
                        std::span<const idx_t> j);

/// The TTMc tree walk, templated on the streamed value type: StoreT is
/// what the factor rows and tensor values are read as (fp32 shadows under
/// f32/mixed precision, val_t under f64); all Kronecker accumulation and
/// the output stay fp64. The f64 instantiation is the exact
/// pre-precision walk (the casts are no-ops).
template <typename StoreT>
void ttmc_csf_walk(const CsfTensor& csf, std::span<const StoreT> vals,
                   const std::vector<const la::MatrixT<StoreT>*>& factors,
                   la::Matrix& out, const std::vector<std::size_t>& below,
                   const std::vector<std::size_t>& canon, std::size_t k,
                   const SliceSchedule* slices, int nthreads) {
  const int order = csf.order();

  // Width-erased index streams, resolved once for the whole walk: the
  // compressed CSF stores each level at its own width, and the kron work
  // per fiber dwarfs the per-access width switch.
  const CsfStreamRefs refs = csf.stream_refs();
  const std::array<FidStreamRef, kMaxOrder>& fid_at = refs.fids;
  const std::array<PtrStreamRef, kMaxOrder>& ptr_at = refs.fptr;

  parallel_region(nthreads, [&](int tid, int) {
    // Per-level accumulation buffers (tree-order kron of levels > l).
    std::vector<std::vector<val_t>> acc(static_cast<std::size_t>(order));
    for (int l = 0; l < order; ++l) {
      acc[static_cast<std::size_t>(l)].resize(
          below[static_cast<std::size_t>(l)]);
    }

    // Recursive pull-up: fills acc[l-1] contributions for fiber f at
    // level l, i.e. adds kron(U_l row, sum-of-children) into dst.
    struct Puller {
      const CsfTensor& csf;
      std::span<const StoreT> vals;
      const std::vector<const la::MatrixT<StoreT>*>& factors;
      const std::vector<std::size_t>& below;
      std::vector<std::vector<val_t>>& acc;
      const std::array<FidStreamRef, kMaxOrder>& fid_at;
      const std::array<PtrStreamRef, kMaxOrder>& ptr_at;

      void pull(int l, nnz_t f, val_t* dst) const {
        const int order = csf.order();
        const int mode = csf.mode_at_level(l);
        const auto& u = *factors[static_cast<std::size_t>(mode)];
        const idx_t r = u.cols();
        if (l == order - 1) {
          // Leaf: val * U row.
          const val_t v = static_cast<val_t>(vals[f]);
          const StoreT* row =
              u.row_ptr(fid_at[static_cast<std::size_t>(l)][f]);
          for (idx_t j = 0; j < r; ++j) {
            dst[j] += v * static_cast<val_t>(row[j]);
          }
          return;
        }
        // Sum the children's kron vectors once, then expand by this
        // fiber's factor row (the prefix-sharing win).
        val_t* sum = acc[static_cast<std::size_t>(l)].data();
        const std::size_t len = below[static_cast<std::size_t>(l)];
        std::fill(sum, sum + len, val_t{0});
        const auto fptr = ptr_at[static_cast<std::size_t>(l)];
        for (nnz_t c = fptr[f]; c < fptr[f + 1]; ++c) {
          pull(l + 1, c, sum);
        }
        const StoreT* row =
            u.row_ptr(fid_at[static_cast<std::size_t>(l)][f]);
        const std::size_t child_len = len;
        // dst layout: this level slow, children fast.
        for (idx_t j = 0; j < r; ++j) {
          const val_t rj = static_cast<val_t>(row[j]);
          val_t* slot = dst + static_cast<std::size_t>(j) * child_len;
          for (std::size_t s = 0; s < child_len; ++s) {
            slot[s] += rj * sum[s];
          }
        }
      }
    };

    // No aliasing: pull(l, ...) sums children into acc[l] and expands
    // into the caller's destination, which is acc[l-1] (or the root
    // vector) — always a different level's buffer.
    const Puller puller{csf, vals, factors, below, acc, fid_at, ptr_at};
    const auto fids0 = fid_at[0];
    const auto fptr0 = ptr_at[0];
    std::vector<val_t> root_vec(k);
    slices->for_ranges(tid, [&](nnz_t begin, nnz_t end) {
      for (nnz_t s = begin; s < end; ++s) {
        std::fill(root_vec.begin(), root_vec.end(), val_t{0});
        for (nnz_t c = fptr0[s]; c < fptr0[s + 1]; ++c) {
          puller.pull(1, c, root_vec.data());
        }
        val_t* dst = out.row_ptr(fids0[s]);
        for (std::size_t t = 0; t < k; ++t) {
          dst[canon[t]] += root_vec[t];
        }
      }
    });
  });
}

}  // namespace

void ttmc_csf(const CsfTensor& csf,
              const std::vector<la::Matrix>& factors, la::Matrix& out,
              int nthreads, const SliceSchedule* slices,
              Precision precision) {
  const int order = csf.order();
  const int root_mode = csf.mode_at_level(0);
  SPTD_CHECK(static_cast<int>(factors.size()) == order,
             "ttmc_csf: factor count mismatch");

  // Kronecker width of the subtree below each level, in TREE order
  // (level 1 slowest ... leaf fastest).
  std::vector<std::size_t> below(static_cast<std::size_t>(order), 1);
  for (int l = order - 1; l >= 1; --l) {
    const int mode = csf.mode_at_level(l);
    below[static_cast<std::size_t>(l) - 1] =
        below[static_cast<std::size_t>(l)] *
        factors[static_cast<std::size_t>(mode)].cols();
  }
  const std::size_t k = below[0];
  SPTD_CHECK(out.rows() == csf.dims()[static_cast<std::size_t>(root_mode)]
                 && out.cols() == k,
             "ttmc_csf: bad output shape");
  SPTD_CHECK(k <= 65536, "ttmc_csf: Kronecker width too large");

  // Permutation from tree-order kron indices to the canonical ttmc()
  // layout (mode 0 fastest), computed once.
  std::vector<std::size_t> canon(k);
  {
    dims_t core_dims(static_cast<std::size_t>(order), 1);
    for (int n = 0; n < order; ++n) {
      core_dims[static_cast<std::size_t>(n)] =
          factors[static_cast<std::size_t>(n)].cols();
    }
    std::vector<idx_t> j(static_cast<std::size_t>(order), 0);
    for (std::size_t t = 0; t < k; ++t) {
      // Decode tree index: level 1 slowest, leaf fastest.
      std::size_t rem = t;
      for (int l = 1; l < order; ++l) {
        const int mode = csf.mode_at_level(l);
        const std::size_t width = below[static_cast<std::size_t>(l)];
        j[static_cast<std::size_t>(mode)] =
            static_cast<idx_t>(rem / width);
        rem %= width;
      }
      canon[t] = ttmc_column(core_dims, root_mode, j);
    }
  }

  out.zero_parallel(nthreads);
  // Planless callers re-derive the weighted blocking; tucker_hooi passes
  // the schedule it built once per mode.
  SliceSchedule local;
  if (slices == nullptr) {
    local = SliceSchedule(SchedulePolicy::kWeighted, csf.nfibers(0),
                          csf.root_nnz_prefix(), nthreads);
    slices = &local;
  }
  slices->reset();

  if (precision != Precision::kF64) {
    // fp32 value streams: local factor shadows (converted once per call —
    // TTMc reads every mode's factor, including the root's) plus the
    // CSF's fp32 value copy, resolved before the parallel region.
    std::vector<la::MatrixT<float>> shadows(factors.size());
    std::vector<const la::MatrixT<float>*> shadow_ptrs(factors.size());
    for (std::size_t m = 0; m < factors.size(); ++m) {
      shadows[m].assign_converted(factors[m]);
      shadow_ptrs[m] = &shadows[m];
    }
    ttmc_csf_walk<float>(csf, csf.vals_f32(), shadow_ptrs, out, below,
                         canon, k, slices, nthreads);
    return;
  }
  std::vector<const la::Matrix*> factor_ptrs(factors.size());
  for (std::size_t m = 0; m < factors.size(); ++m) {
    factor_ptrs[m] = &factors[m];
  }
  ttmc_csf_walk<val_t>(csf, csf.vals(), factor_ptrs, out, below, canon, k,
                       slices, nthreads);
}

namespace {

/// Column index into a TTMc output for core coordinates \p j, mode \p m
/// skipped: descending-mode mixed radix, mode 0 fastest (matches ttmc's
/// Kronecker expansion order).
std::size_t ttmc_column(const dims_t& core_dims, int skip,
                        std::span<const idx_t> j) {
  std::size_t col = 0;
  for (int n = static_cast<int>(core_dims.size()) - 1; n >= 0; --n) {
    if (n == skip) continue;
    col = col * core_dims[static_cast<std::size_t>(n)] +
          j[static_cast<std::size_t>(n)];
  }
  return col;
}

/// Modified Gram-Schmidt orthonormalization of the columns of \p a.
/// Degenerate columns are replaced with unit basis vectors.
void orthonormalize_columns(la::Matrix& a) {
  const idx_t rows = a.rows();
  const idx_t cols = a.cols();
  for (idx_t j = 0; j < cols; ++j) {
    for (idx_t p = 0; p < j; ++p) {
      val_t dot = 0;
      for (idx_t i = 0; i < rows; ++i) {
        dot += a(i, j) * a(i, p);
      }
      for (idx_t i = 0; i < rows; ++i) {
        a(i, j) -= dot * a(i, p);
      }
    }
    val_t norm = 0;
    for (idx_t i = 0; i < rows; ++i) {
      norm += a(i, j) * a(i, j);
    }
    norm = std::sqrt(norm);
    if (norm < val_t{1e-12}) {
      for (idx_t i = 0; i < rows; ++i) {
        a(i, j) = (i == j % rows) ? val_t{1} : val_t{0};
      }
    } else {
      const val_t inv = val_t{1} / norm;
      for (idx_t i = 0; i < rows; ++i) {
        a(i, j) *= inv;
      }
    }
  }
}

/// c = a * b parallelized over a's rows (a: big x K, b: K x r).
void matmul_rows_parallel(const la::Matrix& a, const la::Matrix& b,
                          la::Matrix& c, int nthreads) {
  SPTD_CHECK(a.cols() == b.rows() && c.rows() == a.rows() &&
                 c.cols() == b.cols(),
             "matmul_rows_parallel: shape mismatch");
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range rows = block_partition(a.rows(), nt, tid);
    for (nnz_t i = rows.begin; i < rows.end; ++i) {
      const val_t* arow = a.row_ptr(static_cast<idx_t>(i));
      val_t* crow = c.row_ptr(static_cast<idx_t>(i));
      for (idx_t j = 0; j < b.cols(); ++j) {
        crow[j] = 0;
      }
      for (idx_t p = 0; p < a.cols(); ++p) {
        const val_t aip = arow[p];
        const val_t* brow = b.row_ptr(p);
        for (idx_t j = 0; j < b.cols(); ++j) {
          crow[j] += aip * brow[j];
        }
      }
    }
  });
}

}  // namespace

TuckerResult tucker_hooi(const SparseTensor& x,
                         const TuckerOptions& options) {
  const int order = x.order();
  SPTD_CHECK(static_cast<int>(options.core_dims.size()) == order,
             "tucker_hooi: core_dims order mismatch");
  for (int m = 0; m < order; ++m) {
    const idx_t r = options.core_dims[static_cast<std::size_t>(m)];
    SPTD_CHECK(r >= 1 && r <= x.dim(m),
               "tucker_hooi: core dim out of range");
  }
  SPTD_CHECK(options.max_iterations >= 1, "tucker_hooi: need iterations");
  SPTD_CHECK(x.nnz() > 0, "tucker_hooi: empty tensor");
  set_parallel_backend(options.backend);
  init_parallel_runtime();

  const int nthreads = options.nthreads;
  const val_t norm_x = x.norm_sq();

  // All-mode CSF set: every mode's TTMc runs as a root kernel with
  // prefix sharing (SPLATT's Tucker formulation). The per-mode slice
  // schedules are the TTMc execution plan — built once here, reused by
  // every HOOI iteration.
  std::unique_ptr<CsfSet> csf_set;
  std::vector<SliceSchedule> ttmc_schedules;
  if (options.use_csf) {
    SparseTensor sorted = x;
    csf_set = std::make_unique<CsfSet>(sorted, CsfPolicy::kAllMode,
                                       nthreads, nullptr,
                                       SortVariant::kAllOpts,
                                       options.csf_layout);
    ttmc_schedules.resize(static_cast<std::size_t>(order));
    for (int m = 0; m < order; ++m) {
      int level = 0;
      const CsfTensor& rep = csf_set->csf_for_mode(m, level);
      ttmc_schedules[static_cast<std::size_t>(m)] =
          SliceSchedule(options.schedule, rep.nfibers(0),
                        rep.root_nnz_prefix(), nthreads);
    }
  }

  TuckerResult result;
  TuckerModel& model = result.model;
  model.core_dims = options.core_dims;
  Rng rng(options.seed);
  for (int m = 0; m < order; ++m) {
    model.factors.push_back(la::Matrix::random(
        x.dim(m), options.core_dims[static_cast<std::size_t>(m)], rng));
    orthonormalize_columns(model.factors.back());
  }

  ResilienceContext rctx(options.resilience, "tucker", options.seed);
  int it = 0;
  double prev_fit = 0.0;
  if (std::optional<Checkpoint> ck = rctx.try_resume()) {
    SPTD_CHECK(ck->factors.size() == static_cast<std::size_t>(order),
               "tucker resume: checkpoint order mismatch");
    for (int m = 0; m < order; ++m) {
      const la::Matrix& f = ck->factors[static_cast<std::size_t>(m)];
      SPTD_CHECK(f.rows() == x.dim(m) &&
                     f.cols() ==
                         options.core_dims[static_cast<std::size_t>(m)],
                 "tucker resume: checkpoint factor shape mismatch");
    }
    // The core comes from the final mode's TTMc of the last iteration, so
    // a resumed run must execute at least one sweep to regenerate it.
    SPTD_CHECK(ck->iteration < options.max_iterations,
               "tucker resume: checkpoint already at max_iterations");
    model.factors = std::move(ck->factors);
    if (const std::vector<double>* fh = ck->find_series("fit_history")) {
      result.fit_history = *fh;
      double best_loss = std::numeric_limits<double>::infinity();
      for (const double f : *fh) {
        best_loss = std::min(best_loss, 1.0 - f);
      }
      rctx.health().seed_trend(best_loss);
    }
    prev_fit = ck->scalar("prev_fit", 0.0);
    it = ck->iteration;
    result.iterations = it;
  }

  la::Matrix last_w;  // final mode's TTMc output, reused for the core
  static const std::vector<val_t> kNoLambda;

  const bool guard = rctx.health().enabled();
  struct GoodState {
    std::vector<la::Matrix> factors;
    std::vector<double> fit_history;
    double prev_fit = 0.0;
    int iteration = 0;
  } good;
  if (guard) {
    good = {model.factors, result.fit_history, prev_fit, it};
  }

  bool stopped = false;
  while (it < options.max_iterations && !stopped) {
    val_t core_norm_sq = 0;
    for (int m = 0; m < order; ++m) {
      const idx_t rm = options.core_dims[static_cast<std::size_t>(m)];
      std::size_t k = 1;
      for (int n = 0; n < order; ++n) {
        if (n != m) {
          k *= options.core_dims[static_cast<std::size_t>(n)];
        }
      }
      la::Matrix w(x.dim(m), static_cast<idx_t>(k));
      if (csf_set) {
        int level = 0;
        const CsfTensor& rep = csf_set->csf_for_mode(m, level);
        SPTD_DCHECK(level == 0, "AllMode set must dispatch a root rep");
        ttmc_csf(rep, model.factors, w, nthreads,
                 &ttmc_schedules[static_cast<std::size_t>(m)],
                 options.precision);
      } else {
        ttmc(x, model.factors, m, w, nthreads);
      }

      // Leading r_m left singular vectors of W via the K x K Gram.
      la::Matrix gram(static_cast<idx_t>(k), static_cast<idx_t>(k));
      la::ata(w, gram, nthreads);
      std::vector<val_t> evals(k);
      la::Matrix evecs(static_cast<idx_t>(k), static_cast<idx_t>(k));
      la::symmetric_eigen(gram, evals, evecs);

      // U(m) = W * V_top * diag(1/sigma); sum of top eigenvalues is the
      // projected core norm for this mode's update.
      la::Matrix v_top(static_cast<idx_t>(k), rm);
      core_norm_sq = 0;
      for (idx_t j = 0; j < rm; ++j) {
        const val_t ev = std::max(evals[j], val_t{0});
        core_norm_sq += ev;
        const val_t inv_sigma =
            ev > val_t{1e-24} ? val_t{1} / std::sqrt(ev) : val_t{0};
        for (idx_t i = 0; i < static_cast<idx_t>(k); ++i) {
          v_top(i, j) = evecs(i, j) * inv_sigma;
        }
      }
      la::Matrix& factor = model.factors[static_cast<std::size_t>(m)];
      matmul_rows_parallel(w, v_top, factor, nthreads);
      // Guard against lost orthonormality from zero singular values.
      orthonormalize_columns(factor);
      // Pure-f32 mode: the factor master carries only fp32 information
      // (the next TTMc's shadow conversion is then exact).
      if (options.precision == Precision::kF32) {
        la::round_through_f32(factor);
      }

      if (m == order - 1) {
        last_w = std::move(w);
      }
    }

    if (FaultInjector* inj = rctx.injector()) {
      inj->corrupt_factors(model.factors, it);
    }

    // Fit from the projection identity: ||X - X̂||² = ||X||² - ||G||².
    val_t residual_sq = norm_x - core_norm_sq;
    if (residual_sq < val_t{0}) residual_sq = 0;
    const double fit =
        1.0 - std::sqrt(static_cast<double>(residual_sq)) /
                  std::sqrt(static_cast<double>(norm_x));

    if (guard) {
      const HealthIssue issue =
          rctx.health().inspect(model.factors, kNoLambda, 1.0 - fit);
      if (issue != HealthIssue::kNone) {
        rctx.fail_or_retry(issue, it);  // throws when retries are exhausted
        model.factors = good.factors;
        result.fit_history = good.fit_history;
        prev_fit = good.prev_fit;
        it = good.iteration;
        perturb_factors(model.factors, rctx.recovery_rng());
        // Jitter breaks column orthonormality, which HOOI's projection
        // identity depends on — restore it before re-entering the sweep.
        for (la::Matrix& f : model.factors) {
          orthonormalize_columns(f);
          if (options.precision == Precision::kF32) {
            la::round_through_f32(f);
          }
        }
        continue;
      }
      rctx.note_healthy();
    }

    result.fit_history.push_back(fit);
    if (options.tolerance > 0.0 && it > 0 &&
        std::abs(fit - prev_fit) < options.tolerance) {
      stopped = true;
    }
    prev_fit = fit;
    ++it;
    result.iterations = it;

    if (guard) {
      good.factors = model.factors;
      good.fit_history = result.fit_history;
      good.prev_fit = prev_fit;
      good.iteration = it;
    }

    if (!stopped && it < options.max_iterations && rctx.checkpoint_due(it)) {
      Checkpoint ck;
      ck.iteration = it;
      ck.factors = model.factors;
      ck.set_series("fit_history", result.fit_history);
      ck.set_scalar("prev_fit", prev_fit);
      rctx.save_checkpoint(std::move(ck));
    }
  }
  rctx.finish(result.resilience);

  // Core: G_(last) = U(last)^T W_last, remapped into the model's
  // last-mode-fastest linearization.
  {
    const int last = order - 1;
    const la::Matrix& u = model.factors[static_cast<std::size_t>(last)];
    const idx_t r_last = u.cols();
    la::Matrix g_last(r_last, last_w.cols());
    la::matmul_at_b(u, last_w, g_last);

    std::size_t core_size = 1;
    for (const idx_t r : model.core_dims) {
      core_size *= r;
    }
    model.core.assign(core_size, val_t{0});
    std::vector<idx_t> j(static_cast<std::size_t>(order), 0);
    for (std::size_t off = 0; off < core_size; ++off) {
      const std::size_t col = ttmc_column(model.core_dims, last, j);
      model.core[off] =
          g_last(j[static_cast<std::size_t>(last)],
                 static_cast<idx_t>(col));
      for (int m = order - 1; m >= 0; --m) {
        auto& jm = j[static_cast<std::size_t>(m)];
        if (++jm < model.core_dims[static_cast<std::size_t>(m)]) break;
        jm = 0;
      }
    }
  }
  return result;
}

}  // namespace sptd
