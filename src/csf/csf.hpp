#pragma once
/// \file csf.hpp
/// \brief Compressed Sparse Fiber (CSF) tensor storage (Smith & Karypis),
///        the data structure SPLATT's MTTKRP is built on.
///
/// A CSF representation is a forest: one tree of coordinates per root-mode
/// slice, with shared prefixes compressed. Level l stores, fiber-by-fiber,
/// the coordinate of each fiber in mode `mode_order[l]` (fids) and the
/// extent of its children at level l+1 (fptr). Leaves align 1:1 with
/// nonzero values.
///
/// Index streams are width-adaptive: MTTKRP is memory-bandwidth-bound, so
/// under the default CsfLayout::kCompressed every level stores its fids in
/// the narrowest of u8/u16/u32 that covers the level's mode length, and
/// its fptr in the narrowest of u16/u32/u64 that covers the child-fiber
/// count (SPLATT ships the same idea as a compile-time IDX_TYPEWIDTH; here
/// it is picked per level at build time). CsfLayout::kWide keeps the
/// fixed u32/u64 streams as the ablation baseline. Hot kernels read the
/// streams through CsfLevelView / the *StreamRef accessors below;
/// mttkrp.cpp instantiates its inner loops per width pair so the hot loop
/// streams exactly the stored bytes.
///
/// SPLATT allocates one, two, or N representations per tensor (trading
/// memory for always-root MTTKRP kernels); `CsfSet` reproduces those
/// policies and the per-mode kernel dispatch.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/precision.hpp"
#include "sort/sort.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// How CSF index streams are stored.
enum class CsfLayout : int {
  kCompressed = 0,  ///< narrowest per-level widths (default)
  kWide,            ///< fixed u32 fids / u64 fptr (ablation baseline)
};

/// Parses "compressed" / "wide".
CsfLayout parse_csf_layout(const std::string& name);

/// Name of a layout.
const char* csf_layout_name(CsfLayout layout);

/// Typed view of one CSF level: the fiber-id stream as FidT and the
/// child-extent stream as PtrT. Obtainable only when the stored widths
/// match (CsfTensor::level_view checks); the MTTKRP dispatch selects the
/// instantiation from fid_width()/ptr_width() once per kernel launch.
template <typename FidT, typename PtrT>
struct CsfLevelView {
  const FidT* fids = nullptr;
  const PtrT* fptr = nullptr;  ///< null at the leaf level
  nnz_t nfibers = 0;
};

/// Width-erased accessor for one fid stream: a raw base pointer plus the
/// stored width. operator[] is a predictable 3-way switch — fine for
/// per-fiber / per-slice reads; per-nonzero loops should run a typed
/// instantiation instead.
struct FidStreamRef {
  const void* base = nullptr;
  std::uint8_t width = sizeof(idx_t);  ///< bytes: 1, 2 or 4

  idx_t operator[](nnz_t i) const {
    switch (width) {
      case 1:
        return static_cast<const std::uint8_t*>(base)[i];
      case 2:
        return static_cast<const std::uint16_t*>(base)[i];
      default:
        return static_cast<const std::uint32_t*>(base)[i];
    }
  }
};

/// Width-erased accessor for one fptr stream (bytes: 2, 4 or 8).
struct PtrStreamRef {
  const void* base = nullptr;
  std::uint8_t width = sizeof(nnz_t);

  nnz_t operator[](nnz_t i) const {
    switch (width) {
      case 2:
        return static_cast<const std::uint16_t*>(base)[i];
      case 4:
        return static_cast<const std::uint32_t*>(base)[i];
      default:
        return static_cast<const std::uint64_t*>(base)[i];
    }
  }
};

/// Every level's width-erased stream refs, resolved in one pass — what
/// the width-generic walks (MTTKRP's erased levels, to_coo, Tucker's
/// TTMc) index instead of re-visiting the variant stores per access.
struct CsfStreamRefs {
  std::array<FidStreamRef, kMaxOrder> fids{};  ///< levels 0..order-1
  std::array<PtrStreamRef, kMaxOrder> fptr{};  ///< levels 0..order-2
};

/// The fid width (bytes) the compressed layout selects for a mode of
/// length \p dim: u8 for dims up to 255, u16 up to 65535, else u32.
int csf_fid_width_for(idx_t dim, CsfLayout layout);

/// The fptr width (bytes) the compressed layout selects for a level whose
/// child-fiber count is \p children (the largest stored value): u16 up to
/// 65535, u32 up to 2^32-1, else u64.
int csf_ptr_width_for(nnz_t children, CsfLayout layout);

/// One CSF representation of a tensor.
class CsfTensor {
 public:
  /// Builds a CSF from \p coo, which MUST already be sorted
  /// lexicographically by \p mode_order (see sort_tensor_perm).
  /// \p mode_order[0] is the root mode; \p mode_order.back() the leaf.
  CsfTensor(const SparseTensor& coo, std::vector<int> mode_order,
            CsfLayout layout = CsfLayout::kCompressed);

  /// Number of modes.
  [[nodiscard]] int order() const {
    return static_cast<int>(mode_order_.size());
  }

  /// Mode lengths of the original tensor (original mode numbering).
  [[nodiscard]] const dims_t& dims() const { return dims_; }

  /// The storage layout the streams were built with.
  [[nodiscard]] CsfLayout layout() const { return layout_; }

  /// The mode stored at tree level \p level.
  [[nodiscard]] int mode_at_level(int level) const {
    return mode_order_[static_cast<std::size_t>(level)];
  }

  /// The tree level where \p mode lives (0 = root).
  [[nodiscard]] int level_of_mode(int mode) const;

  /// Full mode order (root first).
  [[nodiscard]] const std::vector<int>& mode_order() const {
    return mode_order_;
  }

  /// Number of nonzeros (== leaf count).
  [[nodiscard]] nnz_t nnz() const { return vals_.size(); }

  /// Number of fibers at \p level (level order()-1 has nnz() "fibers").
  [[nodiscard]] nnz_t nfibers(int level) const;

  /// Stored width in bytes of the fid stream at \p level (1, 2 or 4).
  [[nodiscard]] int fid_width(int level) const;

  /// Stored width in bytes of the fptr stream at \p level (2, 4 or 8).
  /// Defined for levels 0 .. order()-2.
  [[nodiscard]] int ptr_width(int level) const;

  /// Fiber coordinate of fiber \p f at \p level (width-erased read).
  [[nodiscard]] idx_t fid(int level, nnz_t f) const;

  /// Child-extent entry \p f of \p level (width-erased read): the children
  /// of fiber f at level l are [ptr(l, f), ptr(l, f+1)) at level l+1.
  /// The stream has nfibers(level)+1 entries; levels 0 .. order()-2.
  [[nodiscard]] nnz_t ptr(int level, nnz_t f) const;

  /// Width-erased stream accessors for kernel walking (resolved once,
  /// then indexed without std::visit).
  [[nodiscard]] FidStreamRef fid_stream(int level) const;
  [[nodiscard]] PtrStreamRef ptr_stream(int level) const;

  /// All levels' stream refs in one call.
  [[nodiscard]] CsfStreamRefs stream_refs() const;

  /// Typed view of one level. SPTD_CHECKs that the stored widths are
  /// exactly sizeof(FidT)/sizeof(PtrT); at the leaf the fptr pointer is
  /// null and PtrT is not checked.
  template <typename FidT, typename PtrT>
  [[nodiscard]] CsfLevelView<FidT, PtrT> level_view(int level) const;

  /// Wide-layout convenience span (the seed's accessor): valid only when
  /// the level's fids are stored at sizeof(idx_t) — always true under
  /// CsfLayout::kWide. Throws otherwise.
  [[nodiscard]] std::span<const idx_t> fids(int level) const;

  /// Wide-layout convenience span over fptr; requires u64 storage.
  [[nodiscard]] std::span<const nnz_t> fptr(int level) const;

  /// Leaf values, aligned with the leaf fid stream.
  [[nodiscard]] std::span<const val_t> vals() const { return vals_; }

  /// fp32 copy of the leaf values (the `--precision f32|mixed` stream),
  /// built lazily on first call and cached for the tensor's lifetime.
  /// The first call is NOT thread-safe — the MTTKRP dispatch resolves it
  /// on the orchestrating thread before entering any parallel region.
  [[nodiscard]] std::span<const float> vals_f32() const;

  /// Bytes the value stream occupies under \p p: nnz() times the
  /// precision's stored width. This is the "value_bytes" the stats table
  /// and bench JSON report next to index_bytes()/memory_bytes().
  [[nodiscard]] std::uint64_t value_bytes(Precision p) const {
    return static_cast<std::uint64_t>(nnz()) * precision_value_width(p);
  }

  /// Exclusive prefix of nonzeros under each root slice (length
  /// nfibers(0)+1) — the weights used to balance tree ranges over threads.
  [[nodiscard]] std::span<const nnz_t> root_nnz_prefix() const {
    return root_nnz_prefix_;
  }

  /// Expands back to COO (original mode numbering, sorted order).
  [[nodiscard]] SparseTensor to_coo() const;

  /// Approximate heap footprint in bytes (reflects the stored widths).
  [[nodiscard]] std::uint64_t memory_bytes() const;

  /// Index-stream bytes only (fids + fptr across levels): the part the
  /// compressed layout shrinks; vals and the root prefix are excluded.
  [[nodiscard]] std::uint64_t index_bytes() const;

 private:
  using FidStore = std::variant<std::vector<std::uint8_t>,
                                std::vector<std::uint16_t>,
                                std::vector<std::uint32_t>>;
  using PtrStore = std::variant<std::vector<std::uint16_t>,
                                std::vector<std::uint32_t>,
                                std::vector<std::uint64_t>>;

  dims_t dims_;
  std::vector<int> mode_order_;
  CsfLayout layout_;
  std::vector<PtrStore> fptrs_;  ///< levels 0..order-2
  std::vector<FidStore> fids_;   ///< levels 0..order-1
  aligned_vector<val_t> vals_;
  mutable aligned_vector<float> vals_f32_;  ///< lazy precision!=f64 stream
  std::vector<nnz_t> root_nnz_prefix_;
};

/// How many CSF representations to allocate (SPLATT's ALLOC_* options).
enum class CsfPolicy : int {
  kOneMode = 0,  ///< one CSF, smallest mode as root
  kTwoMode,      ///< + one rooted at the largest mode (SPLATT default)
  kAllMode,      ///< one CSF per mode, every MTTKRP uses a root kernel
};

/// Parses "one" / "two" / "all".
CsfPolicy parse_csf_policy(const std::string& name);

/// Name of a policy.
const char* csf_policy_name(CsfPolicy policy);

/// Root-first mode order for a CSF rooted at \p root: root, then the other
/// modes sorted by ascending mode length (ties by mode id). With
/// root == -1, picks the smallest mode as root (SPLATT's default order).
std::vector<int> csf_mode_order(const dims_t& dims, int root);

/// The set of CSF representations for a tensor under a policy, plus the
/// per-mode dispatch SPLATT performs.
class CsfSet {
 public:
  /// Sorts \p coo in place per representation and builds the set (its
  /// nonzero order on return is that of the last representation built).
  /// \p sort_seconds, if non-null, accumulates time spent sorting (the
  /// paper's "Sort" routine). \p sort_variant selects the paper's sorting
  /// implementation variant (Figure 1). \p layout selects the index
  /// stream widths of every representation.
  CsfSet(SparseTensor& coo, CsfPolicy policy, int nthreads,
         double* sort_seconds = nullptr,
         SortVariant sort_variant = SortVariant::kAllOpts,
         CsfLayout layout = CsfLayout::kCompressed);

  [[nodiscard]] CsfPolicy policy() const { return policy_; }
  [[nodiscard]] CsfLayout layout() const { return layout_; }
  [[nodiscard]] int order() const { return csfs_.front().order(); }
  [[nodiscard]] const std::vector<CsfTensor>& csfs() const { return csfs_; }

  /// The representation SPLATT would use for an MTTKRP producing \p mode,
  /// and (out-param) the tree level of that mode in it: 0 selects the
  /// root kernel; order()-1 the leaf kernel; otherwise internal.
  [[nodiscard]] const CsfTensor& csf_for_mode(int mode, int& level) const;

  /// Total memory across representations.
  [[nodiscard]] std::uint64_t memory_bytes() const;

  /// Value-stream bytes across representations under \p p (what the hot
  /// loops stream; the fp64 masters stay resident regardless).
  [[nodiscard]] std::uint64_t value_bytes(Precision p) const;

 private:
  CsfPolicy policy_;
  CsfLayout layout_;
  std::vector<CsfTensor> csfs_;
};

template <typename FidT, typename PtrT>
CsfLevelView<FidT, PtrT> CsfTensor::level_view(int level) const {
  const auto l = static_cast<std::size_t>(level);
  CsfLevelView<FidT, PtrT> view;
  const auto* fids = std::get_if<std::vector<FidT>>(&fids_[l]);
  SPTD_CHECK(fids != nullptr,
             "CsfTensor::level_view: fid width mismatch at this level");
  view.fids = fids->data();
  view.nfibers = fids->size();
  if (level < order() - 1) {
    const auto* fptr = std::get_if<std::vector<PtrT>>(&fptrs_[l]);
    SPTD_CHECK(fptr != nullptr,
               "CsfTensor::level_view: fptr width mismatch at this level");
    view.fptr = fptr->data();
  }
  return view;
}

}  // namespace sptd
