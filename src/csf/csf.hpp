#pragma once
/// \file csf.hpp
/// \brief Compressed Sparse Fiber (CSF) tensor storage (Smith & Karypis),
///        the data structure SPLATT's MTTKRP is built on.
///
/// A CSF representation is a forest: one tree of coordinates per root-mode
/// slice, with shared prefixes compressed. Level l stores, fiber-by-fiber,
/// the coordinate of each fiber in mode `mode_order[l]` (fids) and the
/// extent of its children at level l+1 (fptr). Leaves align 1:1 with
/// nonzero values.
///
/// SPLATT allocates one, two, or N representations per tensor (trading
/// memory for always-root MTTKRP kernels); `CsfSet` reproduces those
/// policies and the per-mode kernel dispatch.

#include <string>
#include <vector>

#include "sort/sort.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// One CSF representation of a tensor.
class CsfTensor {
 public:
  /// Builds a CSF from \p coo, which MUST already be sorted
  /// lexicographically by \p mode_order (see sort_tensor_perm).
  /// \p mode_order[0] is the root mode; \p mode_order.back() the leaf.
  CsfTensor(const SparseTensor& coo, std::vector<int> mode_order);

  /// Number of modes.
  [[nodiscard]] int order() const {
    return static_cast<int>(mode_order_.size());
  }

  /// Mode lengths of the original tensor (original mode numbering).
  [[nodiscard]] const dims_t& dims() const { return dims_; }

  /// The mode stored at tree level \p level.
  [[nodiscard]] int mode_at_level(int level) const {
    return mode_order_[static_cast<std::size_t>(level)];
  }

  /// The tree level where \p mode lives (0 = root).
  [[nodiscard]] int level_of_mode(int mode) const;

  /// Full mode order (root first).
  [[nodiscard]] const std::vector<int>& mode_order() const {
    return mode_order_;
  }

  /// Number of nonzeros (== leaf count).
  [[nodiscard]] nnz_t nnz() const { return vals_.size(); }

  /// Number of fibers at \p level (level order()-1 has nnz() "fibers").
  [[nodiscard]] nnz_t nfibers(int level) const {
    return fids_[static_cast<std::size_t>(level)].size();
  }

  /// Children extent array for \p level (length nfibers(level)+1); the
  /// children of fiber f at level l are [fptr(l)[f], fptr(l)[f+1]) at
  /// level l+1. Defined for levels 0 .. order()-2.
  [[nodiscard]] std::span<const nnz_t> fptr(int level) const {
    return fptrs_[static_cast<std::size_t>(level)];
  }

  /// Fiber coordinates at \p level, in mode mode_at_level(level).
  [[nodiscard]] std::span<const idx_t> fids(int level) const {
    return fids_[static_cast<std::size_t>(level)];
  }

  /// Leaf values, aligned with fids(order()-1).
  [[nodiscard]] std::span<const val_t> vals() const { return vals_; }

  /// Exclusive prefix of nonzeros under each root slice (length
  /// nfibers(0)+1) — the weights used to balance tree ranges over threads.
  [[nodiscard]] std::span<const nnz_t> root_nnz_prefix() const {
    return root_nnz_prefix_;
  }

  /// Expands back to COO (original mode numbering, sorted order).
  [[nodiscard]] SparseTensor to_coo() const;

  /// Approximate heap footprint in bytes.
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  dims_t dims_;
  std::vector<int> mode_order_;
  std::vector<std::vector<nnz_t>> fptrs_;  ///< levels 0..order-2
  std::vector<std::vector<idx_t>> fids_;   ///< levels 0..order-1
  std::vector<val_t> vals_;
  std::vector<nnz_t> root_nnz_prefix_;
};

/// How many CSF representations to allocate (SPLATT's ALLOC_* options).
enum class CsfPolicy : int {
  kOneMode = 0,  ///< one CSF, smallest mode as root
  kTwoMode,      ///< + one rooted at the largest mode (SPLATT default)
  kAllMode,      ///< one CSF per mode, every MTTKRP uses a root kernel
};

/// Parses "one" / "two" / "all".
CsfPolicy parse_csf_policy(const std::string& name);

/// Name of a policy.
const char* csf_policy_name(CsfPolicy policy);

/// Root-first mode order for a CSF rooted at \p root: root, then the other
/// modes sorted by ascending mode length (ties by mode id). With
/// root == -1, picks the smallest mode as root (SPLATT's default order).
std::vector<int> csf_mode_order(const dims_t& dims, int root);

/// The set of CSF representations for a tensor under a policy, plus the
/// per-mode dispatch SPLATT performs.
class CsfSet {
 public:
  /// Sorts \p coo in place per representation and builds the set (its
  /// nonzero order on return is that of the last representation built).
  /// \p sort_seconds, if non-null, accumulates time spent sorting (the
  /// paper's "Sort" routine). \p sort_variant selects the paper's sorting
  /// implementation variant (Figure 1).
  CsfSet(SparseTensor& coo, CsfPolicy policy, int nthreads,
         double* sort_seconds = nullptr,
         SortVariant sort_variant = SortVariant::kAllOpts);

  [[nodiscard]] CsfPolicy policy() const { return policy_; }
  [[nodiscard]] int order() const { return csfs_.front().order(); }
  [[nodiscard]] const std::vector<CsfTensor>& csfs() const { return csfs_; }

  /// The representation SPLATT would use for an MTTKRP producing \p mode,
  /// and (out-param) the tree level of that mode in it: 0 selects the
  /// root kernel; order()-1 the leaf kernel; otherwise internal.
  [[nodiscard]] const CsfTensor& csf_for_mode(int mode, int& level) const;

  /// Total memory across representations.
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  CsfPolicy policy_;
  std::vector<CsfTensor> csfs_;
};

}  // namespace sptd
