#include "csf/csf.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "sort/sort.hpp"

namespace sptd {

CsfLayout parse_csf_layout(const std::string& name) {
  if (name == "compressed") return CsfLayout::kCompressed;
  if (name == "wide") return CsfLayout::kWide;
  throw Error("unknown CSF layout '" + name +
              "' (expected compressed|wide)");
}

const char* csf_layout_name(CsfLayout layout) {
  switch (layout) {
    case CsfLayout::kCompressed: return "compressed";
    case CsfLayout::kWide:       return "wide";
  }
  return "?";
}

int csf_fid_width_for(idx_t dim, CsfLayout layout) {
  if (layout == CsfLayout::kWide) return sizeof(idx_t);
  if (dim <= 0xFFu) return 1;
  if (dim <= 0xFFFFu) return 2;
  return 4;
}

int csf_ptr_width_for(nnz_t children, CsfLayout layout) {
  if (layout == CsfLayout::kWide) return sizeof(nnz_t);
  if (children <= 0xFFFFull) return 2;
  if (children <= 0xFFFFFFFFull) return 4;
  return 8;
}

namespace {

template <typename Narrow, typename Wide>
std::vector<Narrow> narrow_copy(const std::vector<Wide>& wide) {
  std::vector<Narrow> out(wide.size());
  for (std::size_t i = 0; i < wide.size(); ++i) {
    out[i] = static_cast<Narrow>(wide[i]);
  }
  return out;
}

}  // namespace

CsfTensor::CsfTensor(const SparseTensor& coo, std::vector<int> mode_order,
                     CsfLayout layout)
    : dims_(coo.dims()), mode_order_(std::move(mode_order)),
      layout_(layout) {
  const int order = coo.order();
  SPTD_CHECK(static_cast<int>(mode_order_.size()) == order,
             "CsfTensor: mode order length mismatch");
  SPTD_CHECK(order >= 2, "CsfTensor: order must be >= 2");
  {
    std::vector<int> check = mode_order_;
    std::sort(check.begin(), check.end());
    for (int m = 0; m < order; ++m) {
      SPTD_CHECK(check[static_cast<std::size_t>(m)] == m,
                 "CsfTensor: mode order is not a permutation");
    }
  }
  SPTD_DCHECK(is_sorted_perm(coo, mode_order_),
              "CsfTensor: tensor must be sorted by mode_order");

  const nnz_t nnz = coo.nnz();
  const auto order_sz = static_cast<std::size_t>(order);
  vals_.assign(coo.vals().begin(), coo.vals().end());

  // Build the levels wide first (the construction algorithm is
  // width-oblivious), then narrow each stream to its selected store. The
  // transient wide arrays cost one extra pass; construction is dominated
  // by the sort that precedes it.
  std::vector<std::vector<nnz_t>> wide_fptrs(order_sz - 1);
  std::vector<std::vector<idx_t>> wide_fids(order_sz);

  // Leaf level: one entry per nonzero.
  const auto leaf_mode = mode_order_[order_sz - 1];
  wide_fids[order_sz - 1].assign(coo.ind(leaf_mode).begin(),
                                 coo.ind(leaf_mode).end());

  // Upper levels, leaf-exclusive: a new fiber starts at nonzero x when any
  // coordinate at this level or above differs from nonzero x-1.
  // Build top-down so each level's fptr indexes the level below.
  //
  // First compute, for every nonzero, the shallowest level at which it
  // differs from its predecessor (order = no new fiber anywhere).
  std::vector<int> first_diff(nnz == 0 ? 0 : static_cast<std::size_t>(nnz));
  if (nnz > 0) {
    first_diff[0] = 0;
    for (nnz_t x = 1; x < nnz; ++x) {
      int lvl = order - 1;  // differs only at leaf (or not at all)
      for (int l = 0; l < order - 1; ++l) {
        const auto ind = coo.ind(mode_order_[static_cast<std::size_t>(l)]);
        if (ind[x] != ind[x - 1]) {
          lvl = l;
          break;
        }
      }
      first_diff[x] = lvl;
    }
  }

  // Count fibers per level: a fiber starts at level l whenever
  // first_diff[x] <= l (x = 0 starts a fiber at every level).
  for (int l = 0; l < order - 1; ++l) {
    auto& fid = wide_fids[static_cast<std::size_t>(l)];
    auto& fp = wide_fptrs[static_cast<std::size_t>(l)];
    const auto ind = coo.ind(mode_order_[static_cast<std::size_t>(l)]);
    fid.clear();
    fp.clear();
    fp.push_back(0);
    nnz_t children = 0;  // fibers seen so far at level l+1
    for (nnz_t x = 0; x < nnz; ++x) {
      const bool new_here = first_diff[x] <= l;
      const bool new_child = first_diff[x] <= l + 1;
      if (new_here) {
        if (!fid.empty()) {
          fp.push_back(children);
        }
        fid.push_back(ind[x]);
      }
      if (new_child || l + 1 == order - 1) {
        // At the deepest non-leaf level every nonzero is a child.
        ++children;
      }
    }
    if (!fid.empty()) {
      fp.push_back(children);
    }
  }

  // Root nnz prefix for thread balancing: compose fptr chains down to the
  // leaf level.
  const nnz_t nroots = wide_fids[0].size();
  root_nnz_prefix_.assign(static_cast<std::size_t>(nroots) + 1, 0);
  for (nnz_t s = 0; s <= nroots; ++s) {
    nnz_t f = s;
    for (int l = 0; l < order - 1; ++l) {
      f = wide_fptrs[static_cast<std::size_t>(l)][f];
    }
    root_nnz_prefix_[s] = f;
  }
  SPTD_CHECK(root_nnz_prefix_.back() == nnz,
             "CsfTensor: fiber pointers do not cover all nonzeros");

  // Narrow every stream to the width the layout selects: fids from the
  // level's mode length, fptr from the level's child-fiber count (its
  // largest stored value).
  fids_.reserve(order_sz);
  fptrs_.reserve(order_sz - 1);
  for (int l = 0; l < order; ++l) {
    auto& wide = wide_fids[static_cast<std::size_t>(l)];
    const idx_t dim = dims_[static_cast<std::size_t>(mode_at_level(l))];
    switch (csf_fid_width_for(dim, layout)) {
      case 1:
        fids_.emplace_back(narrow_copy<std::uint8_t>(wide));
        break;
      case 2:
        fids_.emplace_back(narrow_copy<std::uint16_t>(wide));
        break;
      default:
        fids_.emplace_back(std::move(wide));
        break;
    }
    wide = {};
  }
  for (int l = 0; l < order - 1; ++l) {
    auto& wide = wide_fptrs[static_cast<std::size_t>(l)];
    const nnz_t children = wide.empty() ? 0 : wide.back();
    switch (csf_ptr_width_for(children, layout)) {
      case 2:
        fptrs_.emplace_back(narrow_copy<std::uint16_t>(wide));
        break;
      case 4:
        fptrs_.emplace_back(narrow_copy<std::uint32_t>(wide));
        break;
      default:
        fptrs_.emplace_back(std::move(wide));
        break;
    }
    wide = {};
  }
}

nnz_t CsfTensor::nfibers(int level) const {
  return std::visit([](const auto& v) { return static_cast<nnz_t>(v.size()); },
                    fids_[static_cast<std::size_t>(level)]);
}

int CsfTensor::fid_width(int level) const {
  return std::visit(
      [](const auto& v) {
        return static_cast<int>(sizeof(typename std::decay_t<
                                       decltype(v)>::value_type));
      },
      fids_[static_cast<std::size_t>(level)]);
}

int CsfTensor::ptr_width(int level) const {
  return std::visit(
      [](const auto& v) {
        return static_cast<int>(sizeof(typename std::decay_t<
                                       decltype(v)>::value_type));
      },
      fptrs_[static_cast<std::size_t>(level)]);
}

idx_t CsfTensor::fid(int level, nnz_t f) const {
  return std::visit(
      [f](const auto& v) { return static_cast<idx_t>(v[f]); },
      fids_[static_cast<std::size_t>(level)]);
}

nnz_t CsfTensor::ptr(int level, nnz_t f) const {
  return std::visit(
      [f](const auto& v) { return static_cast<nnz_t>(v[f]); },
      fptrs_[static_cast<std::size_t>(level)]);
}

FidStreamRef CsfTensor::fid_stream(int level) const {
  return std::visit(
      [](const auto& v) {
        return FidStreamRef{
            v.data(),
            static_cast<std::uint8_t>(sizeof(typename std::decay_t<
                                             decltype(v)>::value_type))};
      },
      fids_[static_cast<std::size_t>(level)]);
}

CsfStreamRefs CsfTensor::stream_refs() const {
  CsfStreamRefs refs;
  const int n = order();
  for (int l = 0; l < n; ++l) {
    refs.fids[static_cast<std::size_t>(l)] = fid_stream(l);
  }
  for (int l = 0; l < n - 1; ++l) {
    refs.fptr[static_cast<std::size_t>(l)] = ptr_stream(l);
  }
  return refs;
}

PtrStreamRef CsfTensor::ptr_stream(int level) const {
  return std::visit(
      [](const auto& v) {
        return PtrStreamRef{
            v.data(),
            static_cast<std::uint8_t>(sizeof(typename std::decay_t<
                                             decltype(v)>::value_type))};
      },
      fptrs_[static_cast<std::size_t>(level)]);
}

std::span<const idx_t> CsfTensor::fids(int level) const {
  const auto* v = std::get_if<std::vector<idx_t>>(
      &fids_[static_cast<std::size_t>(level)]);
  SPTD_CHECK(v != nullptr,
             "CsfTensor::fids: level not stored at idx_t width (use "
             "fid()/fid_stream() or the wide layout)");
  return *v;
}

std::span<const nnz_t> CsfTensor::fptr(int level) const {
  const auto* v = std::get_if<std::vector<nnz_t>>(
      &fptrs_[static_cast<std::size_t>(level)]);
  SPTD_CHECK(v != nullptr,
             "CsfTensor::fptr: level not stored at nnz_t width (use "
             "ptr()/ptr_stream() or the wide layout)");
  return *v;
}

int CsfTensor::level_of_mode(int mode) const {
  for (int l = 0; l < order(); ++l) {
    if (mode_order_[static_cast<std::size_t>(l)] == mode) {
      return l;
    }
  }
  throw Error("level_of_mode: mode not in CSF");
}

SparseTensor CsfTensor::to_coo() const {
  SparseTensor out(dims_);
  out.reserve(nnz());
  const int n = order();
  std::array<idx_t, kMaxOrder> coords{};

  // DFS over the forest, materializing coordinates.
  // walk[l] is the current fiber index at level l.
  std::vector<nnz_t> walk(static_cast<std::size_t>(n), 0);
  std::array<idx_t, kMaxOrder> by_level{};

  // Width-erased stream handles resolved once for the whole walk.
  const CsfStreamRefs refs = stream_refs();
  const auto& fid_at = refs.fids;
  const auto& ptr_at = refs.fptr;

  // Recursive expansion via explicit iteration over leaf positions:
  // for each leaf x, find its ancestor fiber at each level by advancing
  // walk pointers (leaves arrive in order, so ancestors only move forward).
  for (nnz_t x = 0; x < nnz(); ++x) {
    // Advance ancestors so that x falls inside their child ranges.
    // Level n-2 fiber must satisfy fptr[n-2][f] <= x < fptr[n-2][f+1];
    // walk upward from the leaf.
    nnz_t child = x;
    for (int l = n - 2; l >= 0; --l) {
      auto& f = walk[static_cast<std::size_t>(l)];
      const auto& fp = ptr_at[static_cast<std::size_t>(l)];
      while (fp[f + 1] <= child) {
        ++f;
      }
      by_level[static_cast<std::size_t>(l)] =
          fid_at[static_cast<std::size_t>(l)][f];
      child = f;
    }
    by_level[static_cast<std::size_t>(n - 1)] =
        fid_at[static_cast<std::size_t>(n - 1)][x];
    for (int l = 0; l < n; ++l) {
      coords[static_cast<std::size_t>(mode_order_[
          static_cast<std::size_t>(l)])] =
          by_level[static_cast<std::size_t>(l)];
    }
    out.push_back({coords.data(), static_cast<std::size_t>(n)}, vals_[x]);
  }
  return out;
}

std::uint64_t CsfTensor::index_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& f : fids_) {
    bytes += std::visit(
        [](const auto& v) {
          return static_cast<std::uint64_t>(
              v.size() *
              sizeof(typename std::decay_t<decltype(v)>::value_type));
        },
        f);
  }
  for (const auto& f : fptrs_) {
    bytes += std::visit(
        [](const auto& v) {
          return static_cast<std::uint64_t>(
              v.size() *
              sizeof(typename std::decay_t<decltype(v)>::value_type));
        },
        f);
  }
  return bytes;
}

std::uint64_t CsfTensor::memory_bytes() const {
  std::uint64_t bytes = vals_.size() * sizeof(val_t);
  bytes += index_bytes();
  bytes += root_nnz_prefix_.size() * sizeof(nnz_t);
  return bytes;
}

std::span<const float> CsfTensor::vals_f32() const {
  if (vals_f32_.size() != vals_.size()) {
    vals_f32_.resize(vals_.size());
    for (std::size_t x = 0; x < vals_.size(); ++x) {
      vals_f32_[x] = static_cast<float>(vals_[x]);
    }
  }
  return vals_f32_;
}

CsfPolicy parse_csf_policy(const std::string& name) {
  if (name == "one") return CsfPolicy::kOneMode;
  if (name == "two") return CsfPolicy::kTwoMode;
  if (name == "all") return CsfPolicy::kAllMode;
  throw Error("unknown CSF policy '" + name + "' (expected one|two|all)");
}

const char* csf_policy_name(CsfPolicy policy) {
  switch (policy) {
    case CsfPolicy::kOneMode: return "one";
    case CsfPolicy::kTwoMode: return "two";
    case CsfPolicy::kAllMode: return "all";
  }
  return "?";
}

std::vector<int> csf_mode_order(const dims_t& dims, int root) {
  const int order = static_cast<int>(dims.size());
  std::vector<int> modes(static_cast<std::size_t>(order));
  std::iota(modes.begin(), modes.end(), 0);
  // Ascending mode length, ties by mode id (stable ordering).
  std::stable_sort(modes.begin(), modes.end(), [&](int a, int b) {
    return dims[static_cast<std::size_t>(a)] <
           dims[static_cast<std::size_t>(b)];
  });
  if (root >= 0) {
    const auto it = std::find(modes.begin(), modes.end(), root);
    SPTD_CHECK(it != modes.end(), "csf_mode_order: root mode out of range");
    modes.erase(it);
    modes.insert(modes.begin(), root);
  }
  return modes;
}

CsfSet::CsfSet(SparseTensor& coo, CsfPolicy policy, int nthreads,
               double* sort_seconds, SortVariant sort_variant,
               CsfLayout layout)
    : policy_(policy), layout_(layout) {
  std::vector<std::vector<int>> orders;
  const dims_t& dims = coo.dims();
  switch (policy) {
    case CsfPolicy::kOneMode:
      orders.push_back(csf_mode_order(dims, -1));
      break;
    case CsfPolicy::kTwoMode: {
      orders.push_back(csf_mode_order(dims, -1));
      // Second representation rooted at the *longest* mode.
      const int longest = static_cast<int>(
          std::max_element(dims.begin(), dims.end()) - dims.begin());
      // Skip the duplicate if the tensor has a single distinct length.
      if (orders.front().front() != longest) {
        orders.push_back(csf_mode_order(dims, longest));
      }
      break;
    }
    case CsfPolicy::kAllMode:
      for (int m = 0; m < coo.order(); ++m) {
        orders.push_back(csf_mode_order(dims, m));
      }
      break;
  }

  csfs_.reserve(orders.size());
  for (const auto& ord : orders) {
    WallTimer sort_timer;
    sort_timer.start();
    sort_tensor_perm(coo, ord, nthreads, sort_variant);
    sort_timer.stop();
    if (sort_seconds != nullptr) {
      *sort_seconds += sort_timer.seconds();
    }
    csfs_.emplace_back(coo, ord, layout);
  }
}

const CsfTensor& CsfSet::csf_for_mode(int mode, int& level) const {
  // Prefer a representation where the mode is the root; otherwise fall
  // back to the first (SPLATT dispatch).
  for (const auto& csf : csfs_) {
    if (csf.mode_at_level(0) == mode) {
      level = 0;
      return csf;
    }
  }
  level = csfs_.front().level_of_mode(mode);
  return csfs_.front();
}

std::uint64_t CsfSet::memory_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& csf : csfs_) {
    bytes += csf.memory_bytes();
  }
  return bytes;
}

std::uint64_t CsfSet::value_bytes(Precision p) const {
  std::uint64_t bytes = 0;
  for (const auto& csf : csfs_) {
    bytes += csf.value_bytes(p);
  }
  return bytes;
}

}  // namespace sptd
