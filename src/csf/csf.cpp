#include "csf/csf.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "sort/sort.hpp"

namespace sptd {

CsfTensor::CsfTensor(const SparseTensor& coo, std::vector<int> mode_order)
    : dims_(coo.dims()), mode_order_(std::move(mode_order)) {
  const int order = coo.order();
  SPTD_CHECK(static_cast<int>(mode_order_.size()) == order,
             "CsfTensor: mode order length mismatch");
  SPTD_CHECK(order >= 2, "CsfTensor: order must be >= 2");
  {
    std::vector<int> check = mode_order_;
    std::sort(check.begin(), check.end());
    for (int m = 0; m < order; ++m) {
      SPTD_CHECK(check[static_cast<std::size_t>(m)] == m,
                 "CsfTensor: mode order is not a permutation");
    }
  }
  SPTD_DCHECK(is_sorted_perm(coo, mode_order_),
              "CsfTensor: tensor must be sorted by mode_order");

  const nnz_t nnz = coo.nnz();
  const auto order_sz = static_cast<std::size_t>(order);
  fptrs_.resize(order_sz - 1);
  fids_.resize(order_sz);
  vals_.assign(coo.vals().begin(), coo.vals().end());

  // Leaf level: one entry per nonzero.
  const auto leaf_mode = mode_order_[order_sz - 1];
  fids_[order_sz - 1].assign(coo.ind(leaf_mode).begin(),
                             coo.ind(leaf_mode).end());

  // Upper levels, leaf-exclusive: a new fiber starts at nonzero x when any
  // coordinate at this level or above differs from nonzero x-1.
  // Build top-down so each level's fptr indexes the level below.
  //
  // First compute, for every nonzero, the shallowest level at which it
  // differs from its predecessor (order = no new fiber anywhere).
  std::vector<int> first_diff(nnz == 0 ? 0 : static_cast<std::size_t>(nnz));
  if (nnz > 0) {
    first_diff[0] = 0;
    for (nnz_t x = 1; x < nnz; ++x) {
      int lvl = order - 1;  // differs only at leaf (or not at all)
      for (int l = 0; l < order - 1; ++l) {
        const auto ind = coo.ind(mode_order_[static_cast<std::size_t>(l)]);
        if (ind[x] != ind[x - 1]) {
          lvl = l;
          break;
        }
      }
      first_diff[x] = lvl;
    }
  }

  // Count fibers per level: a fiber starts at level l whenever
  // first_diff[x] <= l (x = 0 starts a fiber at every level).
  for (int l = 0; l < order - 1; ++l) {
    auto& fid = fids_[static_cast<std::size_t>(l)];
    auto& fp = fptrs_[static_cast<std::size_t>(l)];
    const auto ind = coo.ind(mode_order_[static_cast<std::size_t>(l)]);
    fid.clear();
    fp.clear();
    fp.push_back(0);
    nnz_t children = 0;  // fibers seen so far at level l+1
    for (nnz_t x = 0; x < nnz; ++x) {
      const bool new_here = first_diff[x] <= l;
      const bool new_child = first_diff[x] <= l + 1;
      if (new_here) {
        if (!fid.empty()) {
          fp.push_back(children);
        }
        fid.push_back(ind[x]);
      }
      if (new_child || l + 1 == order - 1) {
        // At the deepest non-leaf level every nonzero is a child.
        ++children;
      }
    }
    if (!fid.empty()) {
      fp.push_back(children);
    }
  }

  // Root nnz prefix for thread balancing: compose fptr chains down to the
  // leaf level.
  const nnz_t nroots = nfibers(0);
  root_nnz_prefix_.assign(static_cast<std::size_t>(nroots) + 1, 0);
  for (nnz_t s = 0; s <= nroots; ++s) {
    nnz_t f = s;
    for (int l = 0; l < order - 1; ++l) {
      f = fptrs_[static_cast<std::size_t>(l)][f];
    }
    root_nnz_prefix_[s] = f;
  }
  SPTD_CHECK(root_nnz_prefix_.back() == nnz,
             "CsfTensor: fiber pointers do not cover all nonzeros");
}

int CsfTensor::level_of_mode(int mode) const {
  for (int l = 0; l < order(); ++l) {
    if (mode_order_[static_cast<std::size_t>(l)] == mode) {
      return l;
    }
  }
  throw Error("level_of_mode: mode not in CSF");
}

SparseTensor CsfTensor::to_coo() const {
  SparseTensor out(dims_);
  out.reserve(nnz());
  const int n = order();
  std::array<idx_t, kMaxOrder> coords{};

  // DFS over the forest, materializing coordinates.
  // walk[l] is the current fiber index at level l.
  std::vector<nnz_t> walk(static_cast<std::size_t>(n), 0);
  std::array<idx_t, kMaxOrder> by_level{};

  // Recursive expansion via explicit iteration over leaf positions:
  // for each leaf x, find its ancestor fiber at each level by advancing
  // walk pointers (leaves arrive in order, so ancestors only move forward).
  for (nnz_t x = 0; x < nnz(); ++x) {
    // Advance ancestors so that x falls inside their child ranges.
    // Level n-2 fiber must satisfy fptr[n-2][f] <= x < fptr[n-2][f+1];
    // walk upward from the leaf.
    nnz_t child = x;
    for (int l = n - 2; l >= 0; --l) {
      auto& f = walk[static_cast<std::size_t>(l)];
      const auto& fp = fptrs_[static_cast<std::size_t>(l)];
      while (fp[f + 1] <= child) {
        ++f;
      }
      by_level[static_cast<std::size_t>(l)] =
          fids_[static_cast<std::size_t>(l)][f];
      child = f;
    }
    by_level[static_cast<std::size_t>(n - 1)] =
        fids_[static_cast<std::size_t>(n - 1)][x];
    for (int l = 0; l < n; ++l) {
      coords[static_cast<std::size_t>(mode_order_[
          static_cast<std::size_t>(l)])] =
          by_level[static_cast<std::size_t>(l)];
    }
    out.push_back({coords.data(), static_cast<std::size_t>(n)}, vals_[x]);
  }
  return out;
}

std::uint64_t CsfTensor::memory_bytes() const {
  std::uint64_t bytes = vals_.size() * sizeof(val_t);
  for (const auto& f : fids_) {
    bytes += f.size() * sizeof(idx_t);
  }
  for (const auto& f : fptrs_) {
    bytes += f.size() * sizeof(nnz_t);
  }
  bytes += root_nnz_prefix_.size() * sizeof(nnz_t);
  return bytes;
}

CsfPolicy parse_csf_policy(const std::string& name) {
  if (name == "one") return CsfPolicy::kOneMode;
  if (name == "two") return CsfPolicy::kTwoMode;
  if (name == "all") return CsfPolicy::kAllMode;
  throw Error("unknown CSF policy '" + name + "' (expected one|two|all)");
}

const char* csf_policy_name(CsfPolicy policy) {
  switch (policy) {
    case CsfPolicy::kOneMode: return "one";
    case CsfPolicy::kTwoMode: return "two";
    case CsfPolicy::kAllMode: return "all";
  }
  return "?";
}

std::vector<int> csf_mode_order(const dims_t& dims, int root) {
  const int order = static_cast<int>(dims.size());
  std::vector<int> modes(static_cast<std::size_t>(order));
  std::iota(modes.begin(), modes.end(), 0);
  // Ascending mode length, ties by mode id (stable ordering).
  std::stable_sort(modes.begin(), modes.end(), [&](int a, int b) {
    return dims[static_cast<std::size_t>(a)] <
           dims[static_cast<std::size_t>(b)];
  });
  if (root >= 0) {
    const auto it = std::find(modes.begin(), modes.end(), root);
    SPTD_CHECK(it != modes.end(), "csf_mode_order: root mode out of range");
    modes.erase(it);
    modes.insert(modes.begin(), root);
  }
  return modes;
}

CsfSet::CsfSet(SparseTensor& coo, CsfPolicy policy, int nthreads,
               double* sort_seconds, SortVariant sort_variant)
    : policy_(policy) {
  std::vector<std::vector<int>> orders;
  const dims_t& dims = coo.dims();
  switch (policy) {
    case CsfPolicy::kOneMode:
      orders.push_back(csf_mode_order(dims, -1));
      break;
    case CsfPolicy::kTwoMode: {
      orders.push_back(csf_mode_order(dims, -1));
      // Second representation rooted at the *longest* mode.
      const int longest = static_cast<int>(
          std::max_element(dims.begin(), dims.end()) - dims.begin());
      // Skip the duplicate if the tensor has a single distinct length.
      if (orders.front().front() != longest) {
        orders.push_back(csf_mode_order(dims, longest));
      }
      break;
    }
    case CsfPolicy::kAllMode:
      for (int m = 0; m < coo.order(); ++m) {
        orders.push_back(csf_mode_order(dims, m));
      }
      break;
  }

  csfs_.reserve(orders.size());
  for (const auto& ord : orders) {
    WallTimer sort_timer;
    sort_timer.start();
    sort_tensor_perm(coo, ord, nthreads, sort_variant);
    sort_timer.stop();
    if (sort_seconds != nullptr) {
      *sort_seconds += sort_timer.seconds();
    }
    csfs_.emplace_back(coo, ord);
  }
}

const CsfTensor& CsfSet::csf_for_mode(int mode, int& level) const {
  // Prefer a representation where the mode is the root; otherwise fall
  // back to the first (SPLATT dispatch).
  for (const auto& csf : csfs_) {
    if (csf.mode_at_level(0) == mode) {
      level = 0;
      return csf;
    }
  }
  level = csfs_.front().level_of_mode(mode);
  return csfs_.front();
}

std::uint64_t CsfSet::memory_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& csf : csfs_) {
    bytes += csf.memory_bytes();
  }
  return bytes;
}

}  // namespace sptd
