#include "tensor/dense.hpp"

#include <functional>

namespace sptd {

DenseTensor::DenseTensor(dims_t dims) : dims_(std::move(dims)) {
  SPTD_CHECK(!dims_.empty(), "DenseTensor: order must be >= 1");
  std::size_t total = 1;
  for (const idx_t d : dims_) {
    SPTD_CHECK(d > 0, "DenseTensor: zero-length mode");
    total *= d;
    SPTD_CHECK(total < (std::size_t{1} << 28),
               "DenseTensor: too large to densify");
  }
  data_.assign(total, val_t{0});
}

DenseTensor DenseTensor::from_coo(const SparseTensor& coo) {
  DenseTensor out(coo.dims());
  for (nnz_t x = 0; x < coo.nnz(); ++x) {
    const auto c = coo.coord(x);
    out.data_[out.offset({c.data(), static_cast<std::size_t>(coo.order())})] +=
        coo.vals()[x];
  }
  return out;
}

std::size_t DenseTensor::offset(std::span<const idx_t> coords) const {
  SPTD_DCHECK(coords.size() == dims_.size(), "offset: wrong order");
  std::size_t off = 0;
  for (std::size_t m = 0; m < dims_.size(); ++m) {
    SPTD_DCHECK(coords[m] < dims_[m], "offset: index out of range");
    off = off * dims_[m] + coords[m];
  }
  return off;
}

void DenseTensor::mttkrp(int mode, const std::vector<la::Matrix>& factors,
                         la::Matrix& out) const {
  const int n = order();
  SPTD_CHECK(mode >= 0 && mode < n, "mttkrp: mode out of range");
  SPTD_CHECK(static_cast<int>(factors.size()) == n, "mttkrp: factor count");
  const idx_t rank = factors[0].cols();
  SPTD_CHECK(out.rows() == dims_[static_cast<std::size_t>(mode)] &&
                 out.cols() == rank,
             "mttkrp: bad out shape");
  out.fill(val_t{0});

  std::vector<idx_t> c(static_cast<std::size_t>(n), 0);
  // Odometer walk over all dense positions.
  std::size_t off = 0;
  const std::size_t total = data_.size();
  while (off < total) {
    const val_t v = data_[off];
    if (v != val_t{0}) {
      for (idx_t r = 0; r < rank; ++r) {
        val_t prod = v;
        for (int m = 0; m < n; ++m) {
          if (m == mode) continue;
          prod *= factors[static_cast<std::size_t>(m)](
              c[static_cast<std::size_t>(m)], r);
        }
        out(c[static_cast<std::size_t>(mode)], r) += prod;
      }
    }
    // increment odometer
    ++off;
    for (int m = n - 1; m >= 0; --m) {
      auto& cm = c[static_cast<std::size_t>(m)];
      if (++cm < dims_[static_cast<std::size_t>(m)]) break;
      cm = 0;
    }
  }
}

DenseTensor DenseTensor::from_kruskal(std::span<const val_t> lambda,
                                      const std::vector<la::Matrix>& factors) {
  SPTD_CHECK(!factors.empty(), "from_kruskal: no factors");
  dims_t dims;
  for (const auto& f : factors) {
    dims.push_back(f.rows());
  }
  const idx_t rank = factors[0].cols();
  SPTD_CHECK(lambda.size() == rank, "from_kruskal: lambda size");
  DenseTensor out(dims);
  const int n = out.order();

  std::vector<idx_t> c(static_cast<std::size_t>(n), 0);
  for (std::size_t off = 0; off < out.data_.size(); ++off) {
    val_t sum = 0;
    for (idx_t r = 0; r < rank; ++r) {
      val_t prod = lambda[r];
      for (int m = 0; m < n; ++m) {
        prod *= factors[static_cast<std::size_t>(m)](
            c[static_cast<std::size_t>(m)], r);
      }
      sum += prod;
    }
    out.data_[off] = sum;
    for (int m = n - 1; m >= 0; --m) {
      auto& cm = c[static_cast<std::size_t>(m)];
      if (++cm < dims[static_cast<std::size_t>(m)]) break;
      cm = 0;
    }
  }
  return out;
}

val_t DenseTensor::norm_sq() const {
  val_t acc = 0;
  for (const val_t v : data_) {
    acc += v * v;
  }
  return acc;
}

}  // namespace sptd
