#pragma once
/// \file io.hpp
/// \brief Tensor file I/O: FROSTT `.tns` text format and a compact binary
///        format for fast bench startup.
///
/// `.tns` is the format the paper's datasets (YELP, NELL-2, ...) ship in:
/// one nonzero per line, 1-based indices, value last, `#` comments, no
/// header. Order and mode lengths are inferred. The binary format is a
/// straight dump with a magic/version header and is byte-order-native.

#include <iosfwd>
#include <string>

#include "tensor/coo.hpp"

namespace sptd {

/// Reads a FROSTT-style .tns stream. Throws sptd::Error on malformed input.
SparseTensor read_tns(std::istream& in);

/// Reads a .tns file by path.
SparseTensor read_tns_file(const std::string& path);

/// Writes .tns (1-based indices, full precision values).
void write_tns(const SparseTensor& t, std::ostream& out);

/// Writes .tns to a file path.
void write_tns_file(const SparseTensor& t, const std::string& path);

/// Reads the compact binary format written by write_bin_file.
SparseTensor read_bin_file(const std::string& path);

/// Writes the compact binary format (magic "SPTDBIN1").
void write_bin_file(const SparseTensor& t, const std::string& path);

}  // namespace sptd
