#pragma once
/// \file io.hpp
/// \brief Tensor file I/O: FROSTT `.tns` text format and a compact binary
///        format for fast bench startup.
///
/// `.tns` is the format the paper's datasets (YELP, NELL-2, ...) ship in:
/// one nonzero per line, 1-based indices, value last, `#` comments, no
/// header. Order and mode lengths are inferred. The binary format is a
/// straight dump with a magic/version header and is byte-order-native.

#include <iosfwd>
#include <string>

#include "common/types.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// Loader strictness knobs for read_tns.
struct TnsReadOptions {
  /// false (default): any malformed line — unparseable token, wrong field
  /// count, non-integer / zero / negative / overflowing index, non-finite
  /// value — throws sptd::Error naming the line. true (`--skip-bad-lines`):
  /// malformed lines are dropped and counted instead; the file still fails
  /// if NO valid nonzero survives.
  bool skip_bad_lines = false;
};

/// What a lenient read dropped (all zero/empty on a clean file).
struct TnsReadStats {
  nnz_t dropped = 0;        ///< malformed lines skipped
  std::string first_error;  ///< diagnostic of the first dropped line
};

/// Reads a FROSTT-style .tns stream. Throws sptd::Error on malformed input
/// unless opts.skip_bad_lines; \p stats (optional) reports what a lenient
/// read dropped.
SparseTensor read_tns(std::istream& in, const TnsReadOptions& opts = {},
                      TnsReadStats* stats = nullptr);

/// Reads a .tns file by path.
SparseTensor read_tns_file(const std::string& path,
                           const TnsReadOptions& opts = {},
                           TnsReadStats* stats = nullptr);

/// Writes .tns (1-based indices, full precision values).
void write_tns(const SparseTensor& t, std::ostream& out);

/// Writes .tns to a file path.
void write_tns_file(const SparseTensor& t, const std::string& path);

/// Reads the compact binary format written by write_bin_file.
SparseTensor read_bin_file(const std::string& path);

/// Writes the compact binary format (magic "SPTDBIN1").
void write_bin_file(const SparseTensor& t, const std::string& path);

}  // namespace sptd
