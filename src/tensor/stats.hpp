#pragma once
/// \file stats.hpp
/// \brief Tensor statistics — what Table I of the paper reports per dataset
///        (dimensions, nonzeros, density, size on disk) plus slice-level
///        detail used by the generators' tests and DESIGN ablations.

#include <string>
#include <vector>

#include "tensor/coo.hpp"

namespace sptd {

/// Per-mode slice statistics.
struct ModeStats {
  idx_t dim = 0;           ///< mode length
  idx_t nonempty = 0;      ///< slices containing at least one nonzero
  nnz_t max_slice_nnz = 0; ///< heaviest slice
  double avg_slice_nnz = 0.0;  ///< nnz / dim
};

/// Whole-tensor statistics.
struct TensorStats {
  dims_t dims;
  nnz_t nnz = 0;
  double density = 0.0;           ///< nnz / prod(dims)
  std::uint64_t tns_bytes = 0;    ///< estimated .tns size on disk
  std::vector<ModeStats> modes;
};

/// Computes statistics in one pass over the tensor.
TensorStats compute_stats(const SparseTensor& t);

/// "41k x 11k x 75k"-style dimension string as in Table I.
std::string format_dims(const dims_t& dims);

/// "240 MB"-style human-readable byte count.
std::string format_bytes(std::uint64_t bytes);

}  // namespace sptd
