#pragma once
/// \file stats.hpp
/// \brief Tensor statistics — what Table I of the paper reports per dataset
///        (dimensions, nonzeros, density, size on disk) plus slice-level
///        detail used by the generators' tests and DESIGN ablations.

#include <string>
#include <vector>

#include "csf/csf.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// Per-mode slice statistics.
struct ModeStats {
  idx_t dim = 0;           ///< mode length
  idx_t nonempty = 0;      ///< slices containing at least one nonzero
  nnz_t max_slice_nnz = 0; ///< heaviest slice
  double avg_slice_nnz = 0.0;  ///< nnz / dim
};

/// Whole-tensor statistics.
struct TensorStats {
  dims_t dims;
  nnz_t nnz = 0;
  double density = 0.0;           ///< nnz / prod(dims)
  std::uint64_t tns_bytes = 0;    ///< estimated .tns size on disk
  std::vector<ModeStats> modes;
};

/// Computes statistics in one pass over the tensor.
TensorStats compute_stats(const SparseTensor& t);

/// Per-level CSF storage detail: which widths the layout selected and how
/// many bytes each stream occupies.
struct CsfLevelStats {
  int level = 0;
  int mode = 0;                  ///< original mode id at this level
  nnz_t nfibers = 0;
  int fid_width = 0;             ///< bytes per fiber id (1/2/4)
  int ptr_width = 0;             ///< bytes per fiber pointer (2/4/8); 0 at leaf
  std::uint64_t fid_bytes = 0;
  std::uint64_t ptr_bytes = 0;
};

/// One representation's storage breakdown.
struct CsfRepStats {
  int root_mode = 0;
  std::vector<CsfLevelStats> levels;
  std::uint64_t index_bytes = 0;   ///< fids + fptr across levels
  std::uint64_t total_bytes = 0;   ///< + vals + root prefix
};

/// Whole-set storage breakdown (what `sptd stats` prints and the benches
/// report as csf_bytes).
struct CsfSetStats {
  CsfLayout layout = CsfLayout::kCompressed;
  std::vector<CsfRepStats> reps;
  std::uint64_t index_bytes = 0;
  std::uint64_t total_bytes = 0;
};

/// Walks a built CSF set and reports per-level widths and byte counts.
CsfSetStats compute_csf_stats(const CsfSet& set);

/// "41k x 11k x 75k"-style dimension string as in Table I.
std::string format_dims(const dims_t& dims);

/// "240 MB"-style human-readable byte count.
std::string format_bytes(std::uint64_t bytes);

}  // namespace sptd
