#include "tensor/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace sptd {

SparseTensor permute_modes(const SparseTensor& t,
                           std::span<const int> perm) {
  const int order = t.order();
  SPTD_CHECK(static_cast<int>(perm.size()) == order,
             "permute_modes: permutation length mismatch");
  {
    std::vector<int> check(perm.begin(), perm.end());
    std::sort(check.begin(), check.end());
    for (int m = 0; m < order; ++m) {
      SPTD_CHECK(check[static_cast<std::size_t>(m)] == m,
                 "permute_modes: not a permutation");
    }
  }
  dims_t new_dims(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) {
    new_dims[static_cast<std::size_t>(m)] =
        t.dim(perm[static_cast<std::size_t>(m)]);
  }
  SparseTensor out(new_dims);
  out.resize_nnz(t.nnz());
  for (int m = 0; m < order; ++m) {
    const auto src = t.ind(perm[static_cast<std::size_t>(m)]);
    auto dst = out.ind(m);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  std::copy(t.vals().begin(), t.vals().end(), out.vals().begin());
  return out;
}

void relabel(SparseTensor& t,
             const std::vector<std::vector<idx_t>>& maps) {
  SPTD_CHECK(static_cast<int>(maps.size()) == t.order(),
             "relabel: need one map per mode");
  for (int m = 0; m < t.order(); ++m) {
    const auto& map = maps[static_cast<std::size_t>(m)];
    SPTD_CHECK(map.size() == t.dim(m), "relabel: map length mismatch");
    // Verify the map is a permutation (each target hit exactly once).
    std::vector<char> seen(map.size(), 0);
    for (const idx_t v : map) {
      SPTD_CHECK(v < map.size() && !seen[v],
                 "relabel: map is not a permutation");
      seen[v] = 1;
    }
    for (idx_t& i : t.ind(m)) {
      i = map[i];
    }
  }
}

std::vector<idx_t> random_permutation(idx_t n, std::uint64_t seed) {
  std::vector<idx_t> perm(n);
  std::iota(perm.begin(), perm.end(), idx_t{0});
  Rng rng(seed);
  for (idx_t i = n; i > 1; --i) {
    const idx_t j = rng.next_index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<idx_t> frequency_order(const SparseTensor& t, int mode) {
  SPTD_CHECK(mode >= 0 && mode < t.order(), "frequency_order: bad mode");
  const idx_t dim = t.dim(mode);
  std::vector<nnz_t> counts(dim, 0);
  for (const idx_t i : t.ind(mode)) {
    ++counts[i];
  }
  // Slice ids sorted by descending count (stable for determinism).
  std::vector<idx_t> by_count(dim);
  std::iota(by_count.begin(), by_count.end(), idx_t{0});
  std::stable_sort(by_count.begin(), by_count.end(),
                   [&](idx_t a, idx_t b) { return counts[a] > counts[b]; });
  // Invert: old id -> rank.
  std::vector<idx_t> map(dim);
  for (idx_t rank = 0; rank < dim; ++rank) {
    map[by_count[rank]] = rank;
  }
  return map;
}

void shuffle_all_modes(SparseTensor& t, std::uint64_t seed) {
  std::vector<std::vector<idx_t>> maps;
  maps.reserve(static_cast<std::size_t>(t.order()));
  Rng rng(seed);
  for (int m = 0; m < t.order(); ++m) {
    maps.push_back(random_permutation(t.dim(m), rng.next_u64()));
  }
  relabel(t, maps);
}

}  // namespace sptd
