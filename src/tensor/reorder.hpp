#pragma once
/// \file reorder.hpp
/// \brief Tensor reordering utilities: mode permutation and slice
///        relabeling.
///
/// SPLATT ships graph/hypergraph-based reorderings that renumber slices to
/// improve MTTKRP locality; this module provides the mechanism (arbitrary
/// per-mode relabelings applied consistently) plus two useful policies:
/// random relabeling (destroys locality — the adversarial baseline for the
/// locality ablation) and frequency ordering (hot slices first, a cheap
/// locality heuristic).

#include <vector>

#include "tensor/coo.hpp"

namespace sptd {

/// Returns a tensor whose modes are permuted: new mode m is old mode
/// \p perm[m]. Nonzero order is unchanged.
SparseTensor permute_modes(const SparseTensor& t, std::span<const int> perm);

/// Applies per-mode relabelings in place: new index = maps[m][old index].
/// Every map must be a permutation of [0, dim(m)).
void relabel(SparseTensor& t,
             const std::vector<std::vector<idx_t>>& maps);

/// Random permutation of [0, n) (Fisher-Yates, deterministic in seed).
std::vector<idx_t> random_permutation(idx_t n, std::uint64_t seed);

/// Relabeling that sorts slices of mode \p m by descending nonzero count
/// (hot slices get small ids, packing them together in the factor
/// matrices). Returns old->new map.
std::vector<idx_t> frequency_order(const SparseTensor& t, int mode);

/// Convenience: relabels every mode randomly (locality-adversarial).
void shuffle_all_modes(SparseTensor& t, std::uint64_t seed);

}  // namespace sptd
