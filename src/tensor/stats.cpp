#include "tensor/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sptd {

TensorStats compute_stats(const SparseTensor& t) {
  TensorStats s;
  s.dims = t.dims();
  s.nnz = t.nnz();

  double volume = 1.0;
  for (const idx_t d : s.dims) {
    volume *= static_cast<double>(d);
  }
  s.density = (volume > 0.0) ? static_cast<double>(s.nnz) / volume : 0.0;

  // A .tns line is one ~6-char token per mode plus a value: estimate
  // 7 bytes per index token and 18 per value (digits + separators).
  s.tns_bytes = s.nnz * (7ULL * static_cast<std::uint64_t>(t.order()) + 18ULL);

  for (int m = 0; m < t.order(); ++m) {
    ModeStats ms;
    ms.dim = t.dim(m);
    std::vector<nnz_t> counts(ms.dim, 0);
    for (const idx_t i : t.ind(m)) {
      ++counts[i];
    }
    for (const nnz_t c : counts) {
      if (c > 0) ++ms.nonempty;
      ms.max_slice_nnz = std::max(ms.max_slice_nnz, c);
    }
    ms.avg_slice_nnz =
        static_cast<double>(s.nnz) / static_cast<double>(ms.dim);
    s.modes.push_back(ms);
  }
  return s;
}

CsfSetStats compute_csf_stats(const CsfSet& set) {
  CsfSetStats out;
  out.layout = set.layout();
  for (const CsfTensor& csf : set.csfs()) {
    CsfRepStats rep;
    rep.root_mode = csf.mode_at_level(0);
    const int order = csf.order();
    for (int l = 0; l < order; ++l) {
      CsfLevelStats ls;
      ls.level = l;
      ls.mode = csf.mode_at_level(l);
      ls.nfibers = csf.nfibers(l);
      ls.fid_width = csf.fid_width(l);
      ls.fid_bytes = ls.nfibers * static_cast<std::uint64_t>(ls.fid_width);
      if (l < order - 1) {
        ls.ptr_width = csf.ptr_width(l);
        ls.ptr_bytes = (ls.nfibers + 1) *
                       static_cast<std::uint64_t>(ls.ptr_width);
      }
      rep.levels.push_back(ls);
    }
    rep.index_bytes = csf.index_bytes();
    rep.total_bytes = csf.memory_bytes();
    out.index_bytes += rep.index_bytes;
    out.total_bytes += rep.total_bytes;
    out.reps.push_back(std::move(rep));
  }
  return out;
}

std::string format_dims(const dims_t& dims) {
  auto compact = [](idx_t d) -> std::string {
    char buf[32];
    if (d >= 1000000 && d % 100000 == 0) {
      std::snprintf(buf, sizeof(buf), "%.1fM",
                    static_cast<double>(d) / 1e6);
    } else if (d >= 1000) {
      std::snprintf(buf, sizeof(buf), "%uk",
                    static_cast<unsigned>(d / 1000));
    } else {
      std::snprintf(buf, sizeof(buf), "%u", static_cast<unsigned>(d));
    }
    return buf;
  };
  std::ostringstream os;
  for (std::size_t m = 0; m < dims.size(); ++m) {
    if (m) os << " x ";
    os << compact(dims[m]);
  }
  return os.str();
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.0f MB", b / (1ULL << 20));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.0f KB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace sptd
