#pragma once
/// \file synthetic.hpp
/// \brief Deterministic synthetic tensor generators and the paper's dataset
///        presets (Table I).
///
/// The paper evaluates on proprietary-ish public datasets (YELP, NELL-2,
/// ...) that are hundreds of MB to GB. We substitute generators that
/// reproduce the properties the paper's experiments actually depend on:
///
///  * mode lengths and nonzero count (scalable with one knob, preserving
///    the dims[m]*threads / nnz ratios that drive SPLATT's
///    lock-vs-privatization decision — the YELP vs NELL-2 distinction),
///  * skewed slice popularity (Zipf-like, as in real review/NLP data),
///  * unique coordinates (real tensors deduplicate repeated entries).
///
/// Real FROSTT files drop in through tensor/io.hpp at any time.

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// Configuration for the synthetic generator.
struct SyntheticConfig {
  dims_t dims;                 ///< mode lengths
  nnz_t nnz = 0;               ///< number of unique nonzeros to generate
  std::uint64_t seed = 42;     ///< RNG seed (same seed => same tensor)
  double zipf_exponent = 0.0;  ///< 0 = uniform slices; >0 = skewed
  double value_lo = 1.0;       ///< uniform value range low
  double value_hi = 5.0;       ///< uniform value range high (review scores)
};

/// Generates a tensor with unique coordinates per the config.
/// Throws if nnz exceeds 50% of the dense volume (rejection would stall).
SparseTensor generate_synthetic(const SyntheticConfig& config);

/// Generates a noisy rank-\p rank Kruskal tensor on unique random
/// coordinates: X(c) = sum_r prod_m A(m)[c_m, r] + noise * N(0,1).
/// Factors are U[0,1). Note: the *sampled* tensor is not itself low rank
/// (its unsampled entries are zero); use generate_full_low_rank for exact
/// CP recovery tests.
SparseTensor generate_low_rank(const dims_t& dims, idx_t rank, nnz_t nnz,
                               double noise, std::uint64_t seed);

/// Generates a rank-\p rank Kruskal tensor with EVERY coordinate stored
/// (dense content in sparse format): exactly representable by a rank-R CP
/// model, so CP-ALS must drive the fit to ~1. Volume must be modest.
SparseTensor generate_full_low_rank(const dims_t& dims, idx_t rank,
                                    double noise, std::uint64_t seed);

/// One of the paper's Table I datasets.
struct DatasetPreset {
  std::string name;
  dims_t dims;
  nnz_t nnz;
  double zipf_exponent;  ///< skew used when synthesizing this dataset

  /// Returns a config scaled by \p scale: mode lengths and nnz both scale
  /// linearly (floored at 64 slices / 10k nonzeros), preserving the
  /// dims[m]*threads <= privThresh*nnz lock-decision ratios at any size.
  [[nodiscard]] SyntheticConfig scaled(double scale,
                                       std::uint64_t seed = 42) const;

  /// Density of the full-size dataset (nnz / volume).
  [[nodiscard]] double density() const;
};

/// Table I presets: "yelp", "rate-beer", "beer-advocate", "nell-2",
/// "netflix".
const std::vector<DatasetPreset>& table1_presets();

/// Looks up a preset by name. Throws sptd::Error if unknown.
const DatasetPreset& find_preset(const std::string& name);

}  // namespace sptd
