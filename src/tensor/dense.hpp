#pragma once
/// \file dense.hpp
/// \brief Tiny dense tensor, used by tests as the ground-truth oracle for
///        MTTKRP and CP reconstruction (only sensible for small dims).

#include <numeric>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "la/matrix.hpp"
#include "tensor/coo.hpp"

namespace sptd {

/// Dense tensor with row-major ("last mode fastest") linearization.
class DenseTensor {
 public:
  explicit DenseTensor(dims_t dims);

  /// Densifies a COO tensor (duplicate coordinates accumulate).
  static DenseTensor from_coo(const SparseTensor& coo);

  [[nodiscard]] int order() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] const dims_t& dims() const { return dims_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Linear offset of a coordinate.
  [[nodiscard]] std::size_t offset(std::span<const idx_t> coords) const;

  val_t& at(std::span<const idx_t> coords) { return data_[offset(coords)]; }
  [[nodiscard]] val_t at(std::span<const idx_t> coords) const {
    return data_[offset(coords)];
  }

  [[nodiscard]] std::span<val_t> values() { return data_; }
  [[nodiscard]] std::span<const val_t> values() const { return data_; }

  /// Dense reference MTTKRP for mode \p mode: for every nonzero position p,
  /// out(p[mode], r) += X(p) * prod_{m != mode} factors[m](p[m], r).
  /// The oracle every sparse kernel is tested against.
  void mttkrp(int mode, const std::vector<la::Matrix>& factors,
              la::Matrix& out) const;

  /// Reconstructs a dense tensor from a rank-R Kruskal model
  /// (lambda, factors).
  static DenseTensor from_kruskal(std::span<const val_t> lambda,
                                  const std::vector<la::Matrix>& factors);

  /// Frobenius norm squared.
  [[nodiscard]] val_t norm_sq() const;

 private:
  dims_t dims_;
  std::vector<val_t> data_;
};

}  // namespace sptd
