#include "tensor/coo.hpp"

#include <cmath>
#include <utility>

namespace sptd {

SparseTensor::SparseTensor(dims_t dims) : dims_(std::move(dims)) {
  SPTD_CHECK(!dims_.empty(), "SparseTensor: order must be >= 1");
  SPTD_CHECK(static_cast<int>(dims_.size()) <= kMaxOrder,
             "SparseTensor: order exceeds kMaxOrder");
  for (const idx_t d : dims_) {
    SPTD_CHECK(d > 0, "SparseTensor: zero-length mode");
  }
  inds_.resize(dims_.size());
}

void SparseTensor::push_back(std::span<const idx_t> coords, val_t v) {
  SPTD_DCHECK(coords.size() == dims_.size(), "push_back: wrong order");
  for (std::size_t m = 0; m < dims_.size(); ++m) {
    SPTD_DCHECK(coords[m] < dims_[m], "push_back: index out of range");
    inds_[m].push_back(coords[m]);
  }
  vals_.push_back(v);
}

void SparseTensor::reserve(nnz_t n) {
  for (auto& v : inds_) {
    v.reserve(n);
  }
  vals_.reserve(n);
}

void SparseTensor::resize_nnz(nnz_t n) {
  for (auto& v : inds_) {
    v.resize(n, idx_t{0});
  }
  vals_.resize(n, val_t{0});
}

std::array<idx_t, kMaxOrder> SparseTensor::coord(nnz_t x) const {
  SPTD_DCHECK(x < nnz(), "coord: nonzero index out of range");
  std::array<idx_t, kMaxOrder> c{};
  for (std::size_t m = 0; m < dims_.size(); ++m) {
    c[m] = inds_[m][x];
  }
  return c;
}

void SparseTensor::validate() const {
  for (std::size_t m = 0; m < dims_.size(); ++m) {
    SPTD_CHECK(inds_[m].size() == vals_.size(),
               "validate: index/value length mismatch");
    for (const idx_t i : inds_[m]) {
      SPTD_CHECK(i < dims_[m], "validate: index out of mode range");
    }
  }
  for (const val_t v : vals_) {
    SPTD_CHECK(std::isfinite(v), "validate: non-finite value");
  }
}

val_t SparseTensor::norm_sq() const {
  val_t acc = 0;
  for (const val_t v : vals_) {
    acc += v * v;
  }
  return acc;
}

std::vector<std::vector<idx_t>> SparseTensor::remove_empty_slices() {
  const auto order_sz = dims_.size();
  std::vector<std::vector<idx_t>> maps(order_sz);
  for (std::size_t m = 0; m < order_sz; ++m) {
    std::vector<char> seen(dims_[m], 0);
    for (const idx_t i : inds_[m]) {
      seen[i] = 1;
    }
    std::vector<idx_t>& map = maps[m];
    map.assign(dims_[m], kIdxMax);
    idx_t next = 0;
    for (idx_t i = 0; i < dims_[m]; ++i) {
      if (seen[i]) {
        map[i] = next++;
      }
    }
    if (next != dims_[m]) {
      for (idx_t& i : inds_[m]) {
        i = map[i];
      }
      dims_[m] = (next == 0) ? 1 : next;
    }
  }
  return maps;
}

bool SparseTensor::coord_less(nnz_t a, nnz_t b,
                              std::span<const int> perm) const {
  for (const int m : perm) {
    const idx_t ia = inds_[static_cast<std::size_t>(m)][a];
    const idx_t ib = inds_[static_cast<std::size_t>(m)][b];
    if (ia != ib) {
      return ia < ib;
    }
  }
  return false;
}

void SparseTensor::swap_storage(std::vector<std::vector<idx_t>>& inds,
                                std::vector<val_t>& vals) {
  SPTD_CHECK(inds.size() == inds_.size(), "swap_storage: order mismatch");
  for (const auto& mode : inds) {
    SPTD_CHECK(mode.size() == vals.size(),
               "swap_storage: buffer length mismatch");
  }
  inds_.swap(inds);
  vals_.swap(vals);
}

void SparseTensor::swap_nonzeros(nnz_t a, nnz_t b) {
  for (auto& mode : inds_) {
    std::swap(mode[a], mode[b]);
  }
  std::swap(vals_[a], vals_[b]);
}

}  // namespace sptd
