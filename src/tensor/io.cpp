#include "tensor/io.hpp"

#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace sptd {

namespace {
constexpr char kBinMagic[8] = {'S', 'P', 'T', 'D', 'B', 'I', 'N', '1'};
}  // namespace

SparseTensor read_tns(std::istream& in, const TnsReadOptions& opts,
                      TnsReadStats* stats) {
  std::vector<std::vector<idx_t>> inds;
  std::vector<val_t> vals;
  dims_t dims;
  int order = -1;
  TnsReadStats local_stats;
  TnsReadStats& st = stats != nullptr ? *stats : local_stats;
  st = TnsReadStats{};

  // Strict mode throws at the offending line; lenient mode counts the line
  // as dropped (remembering the first diagnostic) and keeps reading.
  const auto bad = [&](const std::string& msg) {
    if (!opts.skip_bad_lines) {
      throw Error(msg);
    }
    if (st.dropped == 0) {
      st.first_error = msg;
    }
    ++st.dropped;
  };

  std::string line;
  nnz_t lineno = 0;
  std::vector<double> fields;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string at = " at line " + std::to_string(lineno);
    // strip comments
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    // tokenize
    fields.clear();
    const char* p = line.c_str();
    char* end = nullptr;
    bool tokens_ok = true;
    while (true) {
      while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
      if (*p == '\0') break;
      const double v = std::strtod(p, &end);
      if (end == p) {
        tokens_ok = false;
        break;
      }
      fields.push_back(v);
      p = end;
    }
    if (!tokens_ok) {
      bad("read_tns: bad token" + at);
      continue;
    }
    if (fields.empty()) continue;

    if (order < 0) {
      // Order is inferred from the first line that survives tokenization
      // (in lenient mode, the first line that parses at all).
      const int inferred = static_cast<int>(fields.size()) - 1;
      if (inferred < 1 || inferred > kMaxOrder) {
        bad("read_tns: unsupported order" + at);
        continue;
      }
      order = inferred;
      inds.resize(static_cast<std::size_t>(order));
      dims.assign(static_cast<std::size_t>(order), 0);
    }
    if (static_cast<int>(fields.size()) != order + 1) {
      bad("read_tns: expected " + std::to_string(order + 1) +
          " fields, got " + std::to_string(fields.size()) + at);
      continue;
    }
    bool line_ok = true;
    for (int m = 0; m < order && line_ok; ++m) {
      const double f = fields[static_cast<std::size_t>(m)];
      // NaN fails every comparison, so it lands in the out-of-range arm.
      if (!(f >= 1.0)) {
        bad("read_tns: index must be a positive integer (mode " +
            std::to_string(m + 1) + ")" + at);
        line_ok = false;
      } else if (f > static_cast<double>(kIdxMax)) {
        bad("read_tns: index overflows the index type (mode " +
            std::to_string(m + 1) + ")" + at);
        line_ok = false;
      } else if (f != std::floor(f)) {
        bad("read_tns: non-integer index (mode " + std::to_string(m + 1) +
            ")" + at);
        line_ok = false;
      }
    }
    if (line_ok && !std::isfinite(fields.back())) {
      bad("read_tns: non-finite value" + at);
      line_ok = false;
    }
    if (!line_ok) continue;
    for (int m = 0; m < order; ++m) {
      const double f = fields[static_cast<std::size_t>(m)];
      const auto i = static_cast<idx_t>(f) - 1;  // to 0-based
      inds[static_cast<std::size_t>(m)].push_back(i);
      auto& d = dims[static_cast<std::size_t>(m)];
      if (i + 1 > d) d = i + 1;
    }
    vals.push_back(static_cast<val_t>(fields.back()));
  }
  SPTD_CHECK(order > 0 && !vals.empty(),
             st.dropped > 0
                 ? "read_tns: no valid nonzeros (" +
                       std::to_string(st.dropped) +
                       " lines dropped; first: " + st.first_error + ")"
                 : "read_tns: no nonzeros found");

  SparseTensor t(dims);
  t.reserve(vals.size());
  std::array<idx_t, kMaxOrder> c{};
  for (nnz_t x = 0; x < vals.size(); ++x) {
    for (int m = 0; m < order; ++m) {
      c[static_cast<std::size_t>(m)] = inds[static_cast<std::size_t>(m)][x];
    }
    t.push_back({c.data(), static_cast<std::size_t>(order)}, vals[x]);
  }
  return t;
}

SparseTensor read_tns_file(const std::string& path,
                           const TnsReadOptions& opts, TnsReadStats* stats) {
  std::ifstream in(path);
  SPTD_CHECK(in.good(), "read_tns_file: cannot open " + path);
  return read_tns(in, opts, stats);
}

void write_tns(const SparseTensor& t, std::ostream& out) {
  std::ostringstream os;
  os.precision(std::numeric_limits<val_t>::max_digits10);
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    for (int m = 0; m < t.order(); ++m) {
      os << (t.ind(m)[x] + 1) << ' ';
    }
    os << t.vals()[x] << '\n';
  }
  out << os.str();
}

void write_tns_file(const SparseTensor& t, const std::string& path) {
  std::ofstream out(path);
  SPTD_CHECK(out.good(), "write_tns_file: cannot open " + path);
  write_tns(t, out);
  SPTD_CHECK(out.good(), "write_tns_file: write failed for " + path);
}

void write_bin_file(const SparseTensor& t, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SPTD_CHECK(out.good(), "write_bin_file: cannot open " + path);
  out.write(kBinMagic, sizeof(kBinMagic));
  const auto order = static_cast<std::uint32_t>(t.order());
  const std::uint64_t nnz = t.nnz();
  out.write(reinterpret_cast<const char*>(&order), sizeof(order));
  out.write(reinterpret_cast<const char*>(&nnz), sizeof(nnz));
  for (int m = 0; m < t.order(); ++m) {
    const idx_t d = t.dim(m);
    out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  for (int m = 0; m < t.order(); ++m) {
    out.write(reinterpret_cast<const char*>(t.ind(m).data()),
              static_cast<std::streamsize>(nnz * sizeof(idx_t)));
  }
  out.write(reinterpret_cast<const char*>(t.vals().data()),
            static_cast<std::streamsize>(nnz * sizeof(val_t)));
  SPTD_CHECK(out.good(), "write_bin_file: write failed for " + path);
}

SparseTensor read_bin_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SPTD_CHECK(in.good(), "read_bin_file: cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  SPTD_CHECK(in.good() && std::memcmp(magic, kBinMagic, sizeof(magic)) == 0,
             "read_bin_file: bad magic in " + path);
  std::uint32_t order = 0;
  std::uint64_t nnz = 0;
  in.read(reinterpret_cast<char*>(&order), sizeof(order));
  in.read(reinterpret_cast<char*>(&nnz), sizeof(nnz));
  SPTD_CHECK(in.good() && order >= 1 && order <= kMaxOrder,
             "read_bin_file: bad header in " + path);
  dims_t dims(order);
  for (auto& d : dims) {
    in.read(reinterpret_cast<char*>(&d), sizeof(d));
  }
  SparseTensor t(dims);
  t.resize_nnz(nnz);
  for (std::uint32_t m = 0; m < order; ++m) {
    in.read(reinterpret_cast<char*>(t.ind(static_cast<int>(m)).data()),
            static_cast<std::streamsize>(nnz * sizeof(idx_t)));
  }
  in.read(reinterpret_cast<char*>(t.vals().data()),
          static_cast<std::streamsize>(nnz * sizeof(val_t)));
  SPTD_CHECK(in.good(), "read_bin_file: truncated file " + path);
  t.validate();
  return t;
}

}  // namespace sptd
