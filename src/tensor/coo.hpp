#pragma once
/// \file coo.hpp
/// \brief Coordinate-format sparse tensor, the interchange format every
///        other subsystem consumes (file I/O produces it, sort permutes it,
///        CSF construction compresses it).
///
/// Layout matches SPLATT's `sptensor_t`: one index array per mode
/// (ind[m][x] is the mode-m coordinate of nonzero x) plus a value array.
/// The struct-of-arrays layout is what makes the paper's sorting
/// optimizations (Section V-C) meaningful: reassigning "sub-arrays" of the
/// index set is pointer swapping in C but a deep copy in naive Chapel.

#include <array>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sptd {

/// Sparse tensor in coordinate (COO) format.
class SparseTensor {
 public:
  /// Empty tensor of the given mode lengths. Order is dims.size().
  explicit SparseTensor(dims_t dims);

  /// Empty 0-order tensor (placeholder; fill via move assignment).
  SparseTensor() = default;

  /// Number of modes.
  [[nodiscard]] int order() const { return static_cast<int>(dims_.size()); }

  /// Mode lengths.
  [[nodiscard]] const dims_t& dims() const { return dims_; }

  /// Length of mode \p m.
  [[nodiscard]] idx_t dim(int m) const {
    SPTD_DCHECK(m >= 0 && m < order(), "dim: mode out of range");
    return dims_[static_cast<std::size_t>(m)];
  }

  /// Number of stored nonzeros.
  [[nodiscard]] nnz_t nnz() const { return vals_.size(); }

  /// Mode-\p m index array (length nnz).
  [[nodiscard]] std::span<idx_t> ind(int m) {
    SPTD_DCHECK(m >= 0 && m < order(), "ind: mode out of range");
    return inds_[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] std::span<const idx_t> ind(int m) const {
    SPTD_DCHECK(m >= 0 && m < order(), "ind: mode out of range");
    return inds_[static_cast<std::size_t>(m)];
  }

  /// Value array (length nnz).
  [[nodiscard]] std::span<val_t> vals() { return vals_; }
  [[nodiscard]] std::span<const val_t> vals() const { return vals_; }

  /// Appends one nonzero. \p coords must have order() entries in range.
  void push_back(std::span<const idx_t> coords, val_t v);

  /// Pre-allocates capacity for \p n nonzeros.
  void reserve(nnz_t n);

  /// Resizes the nonzero arrays (new entries zero); used by builders that
  /// fill in parallel.
  void resize_nnz(nnz_t n);

  /// Coordinates of nonzero \p x as a fixed buffer (first order() valid).
  [[nodiscard]] std::array<idx_t, kMaxOrder> coord(nnz_t x) const;

  /// Throws sptd::Error if any index is out of its mode's range or any
  /// value is non-finite.
  void validate() const;

  /// Sum of squared values — the tensor Frobenius norm squared, needed by
  /// the CPD fit.
  [[nodiscard]] val_t norm_sq() const;

  /// Relabels each mode so that empty slices disappear (SPLATT's
  /// tt_remove_empty). Returns per-mode old-index -> new-index maps and
  /// shrinks dims() accordingly.
  std::vector<std::vector<idx_t>> remove_empty_slices();

  /// True if nonzero \p a sorts lexicographically before \p b under the
  /// mode permutation \p perm (perm[0] is the most significant mode).
  [[nodiscard]] bool coord_less(nnz_t a, nnz_t b,
                                std::span<const int> perm) const;

  /// Swaps nonzeros \p a and \p b across all index arrays and values.
  void swap_nonzeros(nnz_t a, nnz_t b);

  /// O(1) exchange of the internal index/value buffers with externally
  /// built ones — the C pointer-swap reassignment idiom the paper's
  /// Slices-opt restores (Section V-C). \p inds must have order() arrays,
  /// all lengths equal to vals.size().
  void swap_storage(std::vector<std::vector<idx_t>>& inds,
                    std::vector<val_t>& vals);

 private:
  dims_t dims_;
  std::vector<std::vector<idx_t>> inds_;
  std::vector<val_t> vals_;
};

}  // namespace sptd
