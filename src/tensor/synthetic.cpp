#include "tensor/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"
#include "la/matrix.hpp"

namespace sptd {

namespace {

/// Per-mode slice sampler: uniform, or inverse-CDF Zipf(s) over the mode.
class SliceSampler {
 public:
  SliceSampler(idx_t dim, double zipf_exponent) : dim_(dim) {
    if (zipf_exponent > 0.0) {
      cdf_.resize(dim);
      double acc = 0.0;
      for (idx_t i = 0; i < dim; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i) + 1.0, zipf_exponent);
        cdf_[i] = acc;
      }
      const double inv = 1.0 / acc;
      for (auto& c : cdf_) {
        c *= inv;
      }
    }
  }

  idx_t sample(Rng& rng) const {
    if (cdf_.empty()) {
      return rng.next_index(dim_);
    }
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto i = static_cast<idx_t>(it - cdf_.begin());
    return (i < dim_) ? i : dim_ - 1;
  }

 private:
  idx_t dim_;
  std::vector<double> cdf_;  // empty => uniform
};

/// Mixes a coordinate into a 64-bit dedup key. When the dense volume fits
/// in 64 bits this is the exact linear offset; otherwise it is a strong
/// hash (collision probability ~ nnz^2 / 2^64, negligible at any size we
/// can hold in memory).
struct CoordKeyer {
  explicit CoordKeyer(const dims_t& dims) {
    __uint128_t vol = 1;
    for (const idx_t d : dims) {
      vol *= d;
    }
    exact = vol <= static_cast<__uint128_t>(UINT64_MAX);
  }

  std::uint64_t key(std::span<const idx_t> c, const dims_t& dims) const {
    if (exact) {
      std::uint64_t off = 0;
      for (std::size_t m = 0; m < dims.size(); ++m) {
        off = off * dims[m] + c[m];
      }
      return off;
    }
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::size_t m = 0; m < dims.size(); ++m) {
      std::uint64_t z = h ^ (static_cast<std::uint64_t>(c[m]) + m);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      h = z ^ (z >> 31);
    }
    return h;
  }

  bool exact;
};

/// Draws \p nnz unique coordinates into \p t, sampling each mode with its
/// sampler and rejecting duplicates.
template <typename ValueFn>
void fill_unique(SparseTensor& t, nnz_t nnz,
                 const std::vector<SliceSampler>& samplers, Rng& rng,
                 ValueFn&& value_of) {
  const dims_t& dims = t.dims();
  const auto order = static_cast<std::size_t>(t.order());

  __uint128_t volume = 1;
  for (const idx_t d : dims) {
    volume *= d;
  }
  SPTD_CHECK(static_cast<__uint128_t>(nnz) * 2 <= volume,
             "generator: requested nnz exceeds half the dense volume");

  CoordKeyer keyer(dims);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(nnz) * 2);
  t.reserve(nnz);

  std::array<idx_t, kMaxOrder> c{};
  while (t.nnz() < nnz) {
    for (std::size_t m = 0; m < order; ++m) {
      c[m] = samplers[m].sample(rng);
    }
    const std::span<const idx_t> coords{c.data(), order};
    if (seen.insert(keyer.key(coords, dims)).second) {
      t.push_back(coords, value_of(coords, rng));
    }
  }
}

}  // namespace

SparseTensor generate_synthetic(const SyntheticConfig& config) {
  SPTD_CHECK(config.nnz > 0, "generate_synthetic: nnz must be > 0");
  SparseTensor t(config.dims);
  Rng rng(config.seed);
  std::vector<SliceSampler> samplers;
  samplers.reserve(config.dims.size());
  for (const idx_t d : config.dims) {
    samplers.emplace_back(d, config.zipf_exponent);
  }
  const double lo = config.value_lo;
  const double hi = config.value_hi;
  fill_unique(t, config.nnz, samplers, rng,
              [lo, hi](std::span<const idx_t>, Rng& r) {
                return static_cast<val_t>(r.next_double(lo, hi));
              });
  return t;
}

SparseTensor generate_low_rank(const dims_t& dims, idx_t rank, nnz_t nnz,
                               double noise, std::uint64_t seed) {
  SPTD_CHECK(rank >= 1, "generate_low_rank: rank must be >= 1");
  Rng rng(seed);
  std::vector<la::Matrix> factors;
  factors.reserve(dims.size());
  for (const idx_t d : dims) {
    factors.push_back(la::Matrix::random(d, rank, rng));
  }

  SparseTensor t(dims);
  std::vector<SliceSampler> samplers;
  samplers.reserve(dims.size());
  for (const idx_t d : dims) {
    samplers.emplace_back(d, /*zipf_exponent=*/0.0);
  }
  fill_unique(t, nnz, samplers, rng,
              [&](std::span<const idx_t> c, Rng& r) {
                val_t sum = 0;
                for (idx_t k = 0; k < rank; ++k) {
                  val_t prod = 1;
                  for (std::size_t m = 0; m < dims.size(); ++m) {
                    prod *= factors[m](c[m], k);
                  }
                  sum += prod;
                }
                if (noise > 0.0) {
                  sum += static_cast<val_t>(noise * r.next_gaussian());
                }
                return sum;
              });
  return t;
}

SparseTensor generate_full_low_rank(const dims_t& dims, idx_t rank,
                                    double noise, std::uint64_t seed) {
  SPTD_CHECK(rank >= 1, "generate_full_low_rank: rank must be >= 1");
  std::uint64_t volume = 1;
  for (const idx_t d : dims) {
    volume *= d;
    SPTD_CHECK(volume <= (1ULL << 24),
               "generate_full_low_rank: volume too large to enumerate");
  }
  Rng rng(seed);
  std::vector<la::Matrix> factors;
  factors.reserve(dims.size());
  for (const idx_t d : dims) {
    factors.push_back(la::Matrix::random(d, rank, rng));
  }

  SparseTensor t(dims);
  t.reserve(volume);
  const auto order = static_cast<std::size_t>(dims.size());
  std::array<idx_t, kMaxOrder> c{};
  for (std::uint64_t off = 0; off < volume; ++off) {
    val_t sum = 0;
    for (idx_t k = 0; k < rank; ++k) {
      val_t prod = 1;
      for (std::size_t m = 0; m < order; ++m) {
        prod *= factors[m](c[m], k);
      }
      sum += prod;
    }
    if (noise > 0.0) {
      sum += static_cast<val_t>(noise * rng.next_gaussian());
    }
    t.push_back({c.data(), order}, sum);
    for (std::size_t m = order; m-- > 0;) {
      if (++c[m] < dims[m]) break;
      c[m] = 0;
    }
  }
  return t;
}

SyntheticConfig DatasetPreset::scaled(double scale, std::uint64_t seed) const {
  SPTD_CHECK(scale > 0.0 && scale <= 1.0,
             "DatasetPreset::scaled: scale must be in (0, 1]");
  SyntheticConfig cfg;
  for (const idx_t d : dims) {
    const double scaled_dim = static_cast<double>(d) * scale;
    cfg.dims.push_back(static_cast<idx_t>(std::max(64.0, scaled_dim)));
  }
  const double scaled_nnz = static_cast<double>(nnz) * scale;
  cfg.nnz = static_cast<nnz_t>(std::max(10000.0, scaled_nnz));
  // The dimension floors can shrink the volume below what the scaled nnz
  // assumes; keep the generator's rejection sampling feasible.
  __uint128_t volume = 1;
  for (const idx_t d : cfg.dims) {
    volume *= d;
  }
  const auto max_nnz = static_cast<nnz_t>(volume / 4);
  if (cfg.nnz > max_nnz) {
    cfg.nnz = std::max<nnz_t>(max_nnz, 1);
  }
  cfg.seed = seed;
  cfg.zipf_exponent = zipf_exponent;
  return cfg;
}

double DatasetPreset::density() const {
  double volume = 1.0;
  for (const idx_t d : dims) {
    volume *= static_cast<double>(d);
  }
  return static_cast<double>(nnz) / volume;
}

const std::vector<DatasetPreset>& table1_presets() {
  // Dims/nnz are Table I of the paper. Zipf exponents are chosen to give
  // review-style slice skew; they do not affect the lock-decision ratios.
  static const std::vector<DatasetPreset> presets = {
      {"yelp", {41000, 11000, 75000}, 8000000, 0.6},
      {"rate-beer", {27000, 105000, 262000}, 62000000, 0.6},
      {"beer-advocate", {31000, 61000, 182000}, 63000000, 0.6},
      {"nell-2", {12000, 9000, 29000}, 77000000, 0.4},
      {"netflix", {480000, 18000, 2000}, 100000000, 0.5},
  };
  return presets;
}

const DatasetPreset& find_preset(const std::string& name) {
  for (const auto& p : table1_presets()) {
    if (p.name == name) {
      return p;
    }
  }
  throw Error("unknown dataset preset '" + name +
              "' (expected yelp|rate-beer|beer-advocate|nell-2|netflix)");
}

}  // namespace sptd
