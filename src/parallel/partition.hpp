#pragma once
/// \file partition.hpp
/// \brief Static work partitioning used by the MTTKRP/sort kernels.
///
/// The paper notes (Section IV-B) that Chapel lacks a direct analogue of
/// `omp for` nested inside `omp parallel`, so the port computes loop bounds
/// per task manually. These helpers are that manual computation, shared by
/// both the reference path and the ported path.

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sptd {

/// Half-open range [begin, end).
struct Range {
  nnz_t begin = 0;
  nnz_t end = 0;
  [[nodiscard]] nnz_t size() const { return end - begin; }
  bool operator==(const Range&) const = default;
};

/// Contiguous block partition of [0, total) into \p nparts pieces whose
/// sizes differ by at most one (the first `total % nparts` parts get the
/// extra element). Exactly OpenMP's `schedule(static)` blocking.
Range block_partition(nnz_t total, int nparts, int part);

/// Partitions [0, n_items) so every part has approximately equal total
/// weight, where \p weight_prefix is the exclusive prefix sum of item
/// weights (length n_items + 1, weight_prefix[0] == 0). Returns nparts+1
/// boundaries. Used to balance MTTKRP trees by nonzero count, like
/// SPLATT's csf partitioning.
std::vector<nnz_t> weighted_partition(std::span<const nnz_t> weight_prefix,
                                      int nparts);

/// Process-wide count of weighted_partition() calls (monotonic, relaxed).
/// Partitioning is plan-construction work: tests assert hot loops perform
/// none of it after their execution plan is built.
std::uint64_t weighted_partition_calls();

/// Per-slice occurrence prefix of an index array: out[i] = number of
/// entries of \p ids with value < i, length \p dim + 1. This is the
/// weight_prefix every slice-balanced partition (tiling, completion row
/// updates, distributed blocks) feeds to weighted_partition.
std::vector<nnz_t> slice_nnz_prefix(std::span<const idx_t> ids, idx_t dim);

/// Same, over a generic index stream (ids[i] -> slice id for i < count):
/// the form the width-adaptive CSF streams feed it in.
template <typename Ids>
std::vector<nnz_t> slice_nnz_prefix(Ids ids, nnz_t count, idx_t dim) {
  std::vector<nnz_t> prefix(static_cast<std::size_t>(dim) + 1, 0);
  for (nnz_t x = 0; x < count; ++x) {
    const idx_t id = ids[x];
    SPTD_DCHECK(id < dim, "slice_nnz_prefix: id out of range");
    ++prefix[static_cast<std::size_t>(id) + 1];
  }
  for (idx_t i = 0; i < dim; ++i) {
    prefix[static_cast<std::size_t>(i) + 1] +=
        prefix[static_cast<std::size_t>(i)];
  }
  return prefix;
}

/// Exclusive prefix sum computed in parallel with \p nthreads workers.
/// out[0] = 0, out[i] = sum of in[0..i). out may not alias in.
void parallel_prefix_sum(std::span<const nnz_t> in, std::span<nnz_t> out,
                         int nthreads);

}  // namespace sptd
