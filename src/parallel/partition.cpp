#include "parallel/partition.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"
#include "parallel/team.hpp"

namespace sptd {

namespace {
std::atomic<std::uint64_t> g_weighted_partition_calls{0};
}  // namespace

std::uint64_t weighted_partition_calls() {
  return g_weighted_partition_calls.load(std::memory_order_relaxed);
}

Range block_partition(nnz_t total, int nparts, int part) {
  SPTD_CHECK(nparts >= 1, "block_partition: nparts must be >= 1");
  SPTD_CHECK(part >= 0 && part < nparts, "block_partition: part out of range");
  const nnz_t base = total / static_cast<nnz_t>(nparts);
  const nnz_t extra = total % static_cast<nnz_t>(nparts);
  const auto p = static_cast<nnz_t>(part);
  const nnz_t begin = p * base + std::min(p, extra);
  const nnz_t size = base + (p < extra ? 1 : 0);
  return Range{begin, begin + size};
}

std::vector<nnz_t> weighted_partition(std::span<const nnz_t> weight_prefix,
                                      int nparts) {
  g_weighted_partition_calls.fetch_add(1, std::memory_order_relaxed);
  SPTD_CHECK(nparts >= 1, "weighted_partition: nparts must be >= 1");
  SPTD_CHECK(!weight_prefix.empty(), "weighted_partition: empty prefix");
  const std::size_t n_items = weight_prefix.size() - 1;
  const nnz_t total = weight_prefix.back();
  std::vector<nnz_t> bounds(static_cast<std::size_t>(nparts) + 1);
  bounds[0] = 0;
  for (int p = 1; p < nparts; ++p) {
    // Target cumulative weight for the end of part p-1; round-robin the
    // remainder so parts stay within one item of ideal.
    const nnz_t target =
        (total * static_cast<nnz_t>(p)) / static_cast<nnz_t>(nparts);
    const auto it = std::lower_bound(weight_prefix.begin(),
                                     weight_prefix.end(), target);
    auto idx = static_cast<nnz_t>(it - weight_prefix.begin());
    if (idx > n_items) idx = n_items;
    // Keep boundaries monotone even with zero-weight runs.
    bounds[static_cast<std::size_t>(p)] =
        std::max(idx, bounds[static_cast<std::size_t>(p) - 1]);
  }
  bounds[static_cast<std::size_t>(nparts)] = n_items;
  return bounds;
}

std::vector<nnz_t> slice_nnz_prefix(std::span<const idx_t> ids, idx_t dim) {
  std::vector<nnz_t> prefix(static_cast<std::size_t>(dim) + 1, 0);
  for (const idx_t id : ids) {
    SPTD_DCHECK(id < dim, "slice_nnz_prefix: id out of range");
    ++prefix[static_cast<std::size_t>(id) + 1];
  }
  for (idx_t i = 0; i < dim; ++i) {
    prefix[static_cast<std::size_t>(i) + 1] +=
        prefix[static_cast<std::size_t>(i)];
  }
  return prefix;
}

void parallel_prefix_sum(std::span<const nnz_t> in, std::span<nnz_t> out,
                         int nthreads) {
  SPTD_CHECK(out.size() == in.size(), "prefix sum: size mismatch");
  const nnz_t n = in.size();
  if (n == 0) return;
  if (nthreads <= 1 || n < 4096) {
    nnz_t acc = 0;
    for (nnz_t i = 0; i < n; ++i) {
      out[i] = acc;
      acc += in[i];
    }
    return;
  }
  std::vector<nnz_t> part_sums(static_cast<std::size_t>(nthreads) + 1, 0);
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range r = block_partition(n, nt, tid);
    nnz_t acc = 0;
    for (nnz_t i = r.begin; i < r.end; ++i) {
      out[i] = acc;
      acc += in[i];
    }
    part_sums[static_cast<std::size_t>(tid) + 1] = acc;
  });
  for (int t = 1; t <= nthreads; ++t) {
    part_sums[static_cast<std::size_t>(t)] +=
        part_sums[static_cast<std::size_t>(t) - 1];
  }
  parallel_region(nthreads, [&](int tid, int nt) {
    const Range r = block_partition(n, nt, tid);
    const nnz_t offset = part_sums[static_cast<std::size_t>(tid)];
    for (nnz_t i = r.begin; i < r.end; ++i) {
      out[i] += offset;
    }
  });
}

}  // namespace sptd
