#include "parallel/team.hpp"

#include <cstdlib>

#include <omp.h>

#include "common/error.hpp"
#include "parallel/backend.hpp"

namespace sptd {

int hardware_threads() {
  // Routed through the active backend. Both backends answer with
  // omp_get_max_threads() (so OMP_NUM_THREADS means the same thing
  // everywhere) and both call init_parallel_runtime() first: querying
  // OpenMP initializes libgomp, which latches OMP_WAIT_POLICY forever —
  // the runtime setup (which sets that env var) must win the race.
  // Before this ordering existed, every CLI path that sized its team
  // from hardware_threads() silently lost the passive-wait mitigation.
  return active_parallel_backend().max_threads();
}

void init_parallel_runtime() {
  // Idle OpenMP workers spin-wait by default (libgomp spins ~300k
  // iterations before sleeping). On oversubscribed machines the spinning
  // workers of a finished phase steal cycles from the next one — exactly
  // the Qthreads/OpenMP interference the paper diagnoses in Section V-E
  // and mitigates with QT_SPINCOUNT=300. Prefer parked idle workers; a
  // user-set OMP_WAIT_POLICY wins (overwrite=0). Only effective when the
  // setenv happens before the OpenMP runtime initializes, so this runs
  // once, before the first omp_* call of the process (hardware_threads()
  // and every other entry point funnel through here first). The pool
  // backend preserves the same ordering: its max_threads() query and the
  // omp backend's team launch both pass through here first.
  static const bool once = [] {
    setenv("OMP_WAIT_POLICY", "passive", /*overwrite=*/0);
    omp_set_dynamic(0);
    // Nested parallelism is never used by the kernels; benches sweep team
    // sizes explicitly. Keeping nesting off avoids accidental explosion
    // when a parallel_region is entered from a parallel caller. The pool
    // backend mirrors this: nested regions run serialized as body(0, 1).
    omp_set_max_active_levels(1);
    return true;
  }();
  (void)once;
}

void parallel_region(
    int nthreads,
    // sptd-lint: allow(std-function-hot-path) cold-path overload by design
    const std::function<void(int, int)>& body) {
  detail::parallel_region_ref(nthreads, detail::TeamBodyRef(body));
}

namespace detail {

void parallel_region_ref(int nthreads, TeamBodyRef body) {
  SPTD_CHECK(nthreads >= 1, "parallel_region requires nthreads >= 1");
  if (nthreads == 1) {
    // Inline shortcut shared by every backend: a team of one is not a
    // region (matches OpenMP, where num_threads(1) still forks a team
    // but our pre-backend code already inlined it; keeping the inline
    // here keeps both backends bitwise-identical to that behavior).
    body(0, 1);
    return;
  }
  active_parallel_backend().run_team(nthreads, body);
}

}  // namespace detail

int current_thread_id() { return active_parallel_backend().team_rank(); }

}  // namespace sptd
