#pragma once
/// \file locks.hpp
/// \brief The mutex-pool implementations studied in the paper (Section IV-A,
///        Section V-D, Figure 4).
///
/// SPLATT guards conflicting MTTKRP row updates with a pool of locks indexed
/// by row id. The paper's Chapel port tried three implementations whose cost
/// profiles differ sharply for short critical sections:
///
///  * `SyncVarLock` — Chapel `sync` variables under the Qthreads tasking
///    layer: a contended acquire *parks* the task. We reproduce the
///    mechanism with a full/empty state protected by std::mutex +
///    std::condition_variable (OS-parked waiters). Correct, but each
///    handoff pays a futex round-trip — the paper's pathological case.
///  * `AtomicSpinLock` — Chapel `atomic bool` with testAndSet() +
///    chpl_task_yield() (Listing 6). Implemented verbatim with
///    std::atomic_flag + std::this_thread::yield().
///  * `FifoSyncLock` — Chapel `sync` under the *fifo* (pthreads) tasking
///    layer, where sync vars spin rather than sleep; FIFO order is the
///    distinguishing observable. Implemented as a ticket spin lock.
///  * `OmpLock` — omp_lock_t, what the reference C SPLATT uses.
///
/// Since the backend split (parallel/backend.hpp) the `omp` legend entry
/// maps to `BackendLock`: the backend-provided lock flavor. Under the omp
/// backend it is omp_lock_t exactly as before; under the pool backend —
/// where depending on libgomp for the hottest lock would be absurd — it
/// is `FutexLock`, a spin-then-park mutex on a std::atomic word (the
/// std::thread analogue of omp_lock_t: brief spin, then a futex sleep,
/// matching the passive-wait contract). The flavor is captured when the
/// pool is constructed, which is why drivers apply `--backend` before
/// building workspaces.
///
/// All locks satisfy the same Lockable concept (`lock()`/`unlock()`), are
/// default-constructible, and are cache-line padded inside MutexPool.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include <omp.h>

#include "common/aligned.hpp"
#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "parallel/backend.hpp"

namespace sptd {

/// Which mutex-pool implementation a kernel should use. String forms match
/// the paper's figure legends: "sync", "atomic", "fifo-sync", "omp".
enum class LockKind : int { kSync = 0, kAtomic, kFifoSync, kOmp };

/// Parses a LockKind from its legend name. Throws sptd::Error on others.
LockKind parse_lock_kind(const std::string& name);

/// Legend name for a LockKind.
const char* lock_kind_name(LockKind kind);

/// Chapel `sync` variable semantics under Qthreads: a bool with full/empty
/// state; reading requires full (and empties it), writing requires empty
/// (and fills it). Contended acquires park on a condition variable.
class SyncVarLock {
 public:
  SyncVarLock() = default;

  /// Acquire: read the sync var (wait for full, leave empty).
  void lock() {
    std::unique_lock<std::mutex> guard(m_);
    cv_.wait(guard, [this] { return full_; });
    full_ = false;
  }

  /// Release: write the sync var (requires empty, leaves full).
  void unlock() {
    {
      std::lock_guard<std::mutex> guard(m_);
      full_ = true;
    }
    cv_.notify_one();
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  bool full_ = true;  // pool initializes sync vars to true / "full"
};

/// Chapel `atomic bool` spin lock, exactly Listing 6 of the paper:
/// testAndSet() in a loop with a task yield between attempts.
class AtomicSpinLock {
 public:
  AtomicSpinLock() = default;

  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      std::this_thread::yield();  // chpl_task_yield()
    }
  }

  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// Sync variables under the fifo tasking layer: spin-wait with FIFO handoff.
/// Implemented as a classic ticket lock.
class FifoSyncLock {
 public:
  FifoSyncLock() = default;

  void lock() {
    const std::uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
    int spins = 0;
    while (serving_.load(std::memory_order_acquire) != my) {
      // Mostly spin (the fifo layer's behaviour), but yield occasionally so
      // oversubscribed teams on small machines cannot livelock waiting for
      // a descheduled ticket holder.
      if ((++spins & 63) == 0) {
        std::this_thread::yield();
      } else {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  void unlock() {
    serving_.fetch_add(1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> next_{0};
  std::atomic<std::uint32_t> serving_{0};
};

/// The reference implementation's lock: omp_lock_t.
///
/// TSan contract: omp_set/unset_lock synchronize through libgomp
/// internals the instrumented build cannot see, so data correctly
/// guarded by this lock would still be reported as racing. The annotate
/// macros declare the acquire/release edge the lock really provides
/// (lock() is an acquire of everything published by the previous
/// unlock(); no-ops outside SPTD_SANITIZE=thread builds).
class OmpLock {
 public:
  OmpLock() { omp_init_lock(&lock_); }
  ~OmpLock() { omp_destroy_lock(&lock_); }
  OmpLock(const OmpLock&) = delete;
  OmpLock& operator=(const OmpLock&) = delete;

  void lock() {
    omp_set_lock(&lock_);
    SPTD_TSAN_ACQUIRE(&lock_);
  }
  void unlock() {
    SPTD_TSAN_RELEASE(&lock_);
    omp_unset_lock(&lock_);
  }

 private:
  omp_lock_t lock_;
};

/// Spin-then-park mutex on one atomic word: 0 = free, 1 = locked,
/// 2 = locked with (possible) sleepers. A contended acquire spins briefly,
/// then parks on the word itself (std::atomic wait/notify — a futex on
/// Linux). This is the pool backend's stand-in for omp_lock_t: same cost
/// profile (user-space fast path, OS-parked waiters under contention),
/// zero libgomp involvement. All synchronization is plain C++ atomics, so
/// TSan models it natively — no SPTD_TSAN_* annotations needed, unlike
/// OmpLock above (contracts.hpp documents the split).
class FutexLock {
 public:
  FutexLock() = default;
  FutexLock(const FutexLock&) = delete;
  FutexLock& operator=(const FutexLock&) = delete;

  void lock() {
    std::uint32_t expected = 0;
    if (state_.compare_exchange_strong(expected, 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return;  // uncontended fast path
    }
    // Brief spin while the lock looks about to free up.
    for (int i = 0; i < 64; ++i) {
      expected = 0;
      if (state_.compare_exchange_weak(expected, 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
    // Contended slow path, Drepper's "mutex3": from here on this thread
    // only ever acquires by installing 2, never 1. An exchange that finds
    // 0 takes the lock while conservatively keeping the sleeper encoding
    // (worst case one spurious notify at unlock); anything else re-marks
    // the word contended and parks. The invariant matters: a parked
    // waiter that is not the one notify_one picked must find state 2 on
    // the next unlock, or that unlock skips the wake and strands it.
    while (state_.exchange(2, std::memory_order_acquire) != 0) {
      state_.wait(2, std::memory_order_relaxed);
    }
  }

  void unlock() {
    if (state_.exchange(0, std::memory_order_release) == 2) {
      state_.notify_one();
    }
  }

 private:
  std::atomic<std::uint32_t> state_{0};
};

/// The lock the `omp` LockKind resolves to: the active backend's native
/// flavor, captured at construction (workspaces build their pools after
/// drivers apply `--backend`, so the capture point is right). Under the
/// omp backend this is omp_lock_t exactly as before the backend split —
/// numerics and timing of every existing `--locks omp` run are unchanged.
class BackendLock {
 public:
  BackendLock() : omp_backed_(parallel_backend() == ParallelBackendKind::kOmp) {}

  void lock() {
    if (omp_backed_) {
      omp_.lock();
    } else {
      futex_.lock();
    }
  }

  void unlock() {
    if (omp_backed_) {
      omp_.unlock();
    } else {
      futex_.unlock();
    }
  }

 private:
  bool omp_backed_;
  OmpLock omp_;
  FutexLock futex_;
};

/// Number of locks in a pool. SPLATT uses a fixed pool and hashes row ids
/// into it; 1024 keeps the pool L2-resident while making collisions rare.
inline constexpr std::size_t kMutexPoolSize = 1024;

/// Pool of \p kMutexPoolSize cache-padded locks indexed by row id.
template <typename LockT>
class MutexPool {
 public:
  MutexPool() : locks_(kMutexPoolSize) {}

  /// Acquires the lock guarding row \p id (ids hash by masking).
  void lock(idx_t id) { locks_[slot(id)].value.lock(); }

  /// Releases the lock guarding row \p id.
  void unlock(idx_t id) { locks_[slot(id)].value.unlock(); }

  static std::size_t slot(idx_t id) {
    return static_cast<std::size_t>(id) & (kMutexPoolSize - 1);
  }

 private:
  std::vector<CachePadded<LockT>> locks_;
};

/// Runtime-selected mutex pool. Kernels that need a pool take one of these
/// and pay a non-virtual branch only at lock/unlock; the paper's lock study
/// (Figure 4) flips `kind` between runs.
class AnyMutexPool {
 public:
  explicit AnyMutexPool(LockKind kind);

  void lock(idx_t id);
  void unlock(idx_t id);

  [[nodiscard]] LockKind kind() const { return kind_; }

 private:
  LockKind kind_;
  MutexPool<SyncVarLock> sync_;
  MutexPool<AtomicSpinLock> atomic_;
  MutexPool<FifoSyncLock> fifo_;
  MutexPool<BackendLock> omp_;  // backend-provided flavor (see BackendLock)
};

/// RAII guard over a pool slot.
template <typename PoolT>
class PoolGuard {
 public:
  PoolGuard(PoolT& pool, idx_t id) : pool_(pool), id_(id) { pool_.lock(id_); }
  ~PoolGuard() { pool_.unlock(id_); }
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;

 private:
  PoolT& pool_;
  idx_t id_;
};

}  // namespace sptd
