#pragma once
/// \file reduce.hpp
/// \brief Per-thread privatized accumulation buffers with parallel reduction.
///
/// SPLATT avoids locks in the MTTKRP when the output matrix is small enough
/// to replicate per thread: each worker accumulates into a private copy and
/// the copies are summed afterwards. This is the "no-lock" path the paper's
/// NELL-2 runs always take (Section V-D2). The privatize-or-lock decision
/// itself lives in mttkrp/ (see mttkrp::should_privatize).
///
/// Backend note: clear() and reduce_into() launch their strided passes
/// through parallel_region, so they route through whichever backend
/// (parallel/backend.hpp) is active — no backend-specific code here. The
/// reduction itself is order-deterministic regardless of backend: each
/// destination element sums its per-thread contributions t = 0..n-1 in
/// fixed index order, which is what makes privatized runs bitwise
/// comparable across omp and pool at a fixed team size.

#include <cstring>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "parallel/partition.hpp"
#include "parallel/team.hpp"

namespace sptd {

/// A bank of per-thread scratch buffers of uniform length, plus a parallel
/// tree-free strided reduction into a destination buffer.
class PrivateBuffers {
 public:
  /// Allocates \p nthreads buffers of \p length values each, zeroed.
  PrivateBuffers(int nthreads, nnz_t length)
      : nthreads_(nthreads), length_(length),
        storage_(static_cast<std::size_t>(nthreads) * length, val_t{0}) {
    SPTD_CHECK(nthreads >= 1, "PrivateBuffers: nthreads must be >= 1");
  }

  /// Thread \p tid's private buffer.
  [[nodiscard]] std::span<val_t> buffer(int tid) {
    SPTD_DCHECK(tid >= 0 && tid < nthreads_, "buffer: tid out of range");
    return {storage_.data() + static_cast<std::size_t>(tid) * length_,
            static_cast<std::size_t>(length_)};
  }

  [[nodiscard]] std::span<const val_t> buffer(int tid) const {
    SPTD_DCHECK(tid >= 0 && tid < nthreads_, "buffer: tid out of range");
    return {storage_.data() + static_cast<std::size_t>(tid) * length_,
            static_cast<std::size_t>(length_)};
  }

  /// Zeroes every buffer (parallel).
  void clear(int nthreads) {
    parallel_region(nthreads, [&](int tid, int nt) {
      const Range r = block_partition(storage_.size(), nt, tid);
      std::memset(storage_.data() + r.begin, 0,
                  static_cast<std::size_t>(r.size()) * sizeof(val_t));
    });
  }

  /// dst[i] += sum over threads of buffer(t)[i] for i < dst.size(),
  /// parallelized by blocking the index space. \p dst may be a prefix of
  /// the buffer length (callers reuse one bank for differently-sized
  /// outputs).
  void reduce_into(std::span<val_t> dst, int nthreads) const {
    SPTD_CHECK(dst.size() <= length_, "reduce_into: dst longer than buffers");
    parallel_region(nthreads, [&](int tid, int nt) {
      const Range r = block_partition(dst.size(), nt, tid);
      for (int t = 0; t < nthreads_; ++t) {
        const val_t* src =
            storage_.data() + static_cast<std::size_t>(t) * length_;
        for (nnz_t i = r.begin; i < r.end; ++i) {
          dst[i] += src[i];
        }
      }
    });
  }

  [[nodiscard]] int nthreads() const { return nthreads_; }
  [[nodiscard]] nnz_t length() const { return length_; }

 private:
  int nthreads_;
  nnz_t length_;
  // Cache-line aligned so per-thread MTTKRP replicas laid out at the
  // padded rank stride keep 64-byte-aligned rows (la/kernels.hpp).
  aligned_vector<val_t> storage_;
};

}  // namespace sptd
