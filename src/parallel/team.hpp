#pragma once
/// \file team.hpp
/// \brief Thin thread-team abstraction over OpenMP.
///
/// The paper contrasts Chapel's `coforall tid in 0..numTasks-1` with
/// OpenMP's `#pragma omp parallel`. Both map onto this helper: a parallel
/// region of an explicit number of workers, each invoked with (tid, nthreads).
/// Kernels never touch OpenMP pragmas directly, which keeps the
/// "tasking layer" swappable and testable.

#include <functional>

namespace sptd {

/// Returns the number of hardware threads OpenMP reports available.
int hardware_threads();

/// One-time runtime initialization: disables dynamic thread adjustment so
/// that requested team sizes are honored exactly (needed for the paper's
/// thread sweeps, which oversubscribe small machines). Safe to call often.
void init_parallel_runtime();

/// Runs \p body on a team of exactly \p nthreads workers.
/// body(tid, nthreads) with tid in [0, nthreads). Equivalent to the paper's
/// `coforall` / `omp parallel num_threads(n)` pair (Listings 1-2).
void parallel_region(int nthreads,
                     const std::function<void(int tid, int nthreads)>& body);

/// Current thread id inside a parallel_region (0 outside).
int current_thread_id();

}  // namespace sptd
