#pragma once
/// \file team.hpp
/// \brief Thin thread-team abstraction over pluggable parallel backends.
///
/// The paper contrasts Chapel's `coforall tid in 0..numTasks-1` with
/// OpenMP's `#pragma omp parallel`. Both map onto this helper: a parallel
/// region of an explicit number of workers, each invoked with (tid, nthreads).
/// Kernels never touch OpenMP pragmas directly, which keeps the
/// "tasking layer" swappable and testable — and since the backend split
/// (parallel/backend.hpp) the layer underneath is swappable too: the same
/// region runs on libgomp (`--backend omp`, the default) or on the
/// persistent std::thread pool (`--backend pool`).

#include <concepts>
#include <functional>

namespace sptd {

/// Returns the number of hardware threads OpenMP reports available.
/// Calls init_parallel_runtime() first: querying OpenMP initializes its
/// runtime, which latches OMP_WAIT_POLICY, so the passive-wait setup must
/// win the race. Callers may treat this as a plain query.
int hardware_threads();

/// One-time runtime initialization: sets OMP_WAIT_POLICY=passive (unless
/// the user already set it) and disables dynamic thread adjustment so that
/// requested team sizes are honored exactly (needed for the paper's thread
/// sweeps, which oversubscribe small machines). The wait-policy half is
/// only effective if this runs before any other OpenMP call initializes
/// the runtime — hardware_threads() guarantees that ordering. Safe to call
/// often; only the first call does work.
void init_parallel_runtime();

/// Runs \p body on a team of exactly \p nthreads workers.
/// body(tid, nthreads) with tid in [0, nthreads). Equivalent to the paper's
/// `coforall` / `omp parallel num_threads(n)` pair (Listings 1-2).
///
/// Cold-path form: type-erases through an owning function wrapper (one
/// allocation per call for capturing lambdas). Hot loops use the template
/// overload below, which dispatches through a non-owning reference instead.
void parallel_region(
    int nthreads,
    // sptd-lint: allow(std-function-hot-path) cold-path overload by design
    const std::function<void(int tid, int nthreads)>& body);

namespace detail {

/// Non-owning reference to a (tid, nthreads) callable: a raw pointer plus
/// an invoke thunk, so dispatching a capturing lambda into the team never
/// allocates. The referenced callable must outlive the region (trivially
/// true — parallel_region blocks until every worker returns).
class TeamBodyRef {
 public:
  template <typename F>
    requires(!std::same_as<std::remove_cvref_t<F>, TeamBodyRef>)
  TeamBodyRef(F& body)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&body))),
        invoke_([](void* obj, int tid, int nthreads) {
          (*static_cast<F*>(obj))(tid, nthreads);
        }) {}

  void operator()(int tid, int nthreads) const {
    invoke_(obj_, tid, nthreads);
  }

 private:
  void* obj_;
  void (*invoke_)(void*, int, int);
};

/// Out-of-line launcher: inlines the single-thread case, then dispatches
/// to the active ParallelBackend (backend.cpp owns the OpenMP pragma and
/// the std::thread pool).
void parallel_region_ref(int nthreads, TeamBodyRef body);

}  // namespace detail

/// Hot-path overload: any callable, dispatched without owning type erasure.
/// Exact-match owning-wrapper arguments still select the overload above.
template <typename F>
void parallel_region(int nthreads, F&& body) {
  detail::TeamBodyRef ref(body);
  detail::parallel_region_ref(nthreads, ref);
}

/// Current thread id inside a parallel_region (0 outside).
int current_thread_id();

}  // namespace sptd
