#pragma once
/// \file backend.hpp
/// \brief Pluggable parallel backends behind the parallel_region seam.
///
/// The paper's premise is that the tasking layer (Chapel `coforall` vs
/// OpenMP `parallel`) is swappable above the same MTTKRP kernels. The
/// repo's seam for that is parallel_region/TeamBodyRef (team.hpp); this
/// module makes the layer *underneath* the seam swappable too:
///
///  * omp  — the reference implementation: one
///           `#pragma omp parallel num_threads(n)` per region, libgomp's
///           persistent worker pool, OMP_WAIT_POLICY=passive latched by
///           init_parallel_runtime() before the first OpenMP call
///           (team.cpp owns that ordering contract). The default, and
///           behavior-identical to the pre-backend tree.
///  * pool — a persistent std::thread worker pool owned by this module.
///           A region of n "team slots" (tids) is published to the pool;
///           the submitting thread and any idle workers claim tids from a
///           shared cursor until all n have run. Workers spin briefly
///           between regions, then park on a per-worker cache-line-padded
///           futex word (std::atomic wait/notify) — the same
///           passive-wait contract the omp backend gets from
///           OMP_WAIT_POLICY=passive. Exact team sizes are honored:
///           body(tid, n) runs once for every tid in [0, n), with tids
///           multiplexed onto however many runners are actually free.
///
/// That multiplexing is the composability story. Two decompositions in
/// one process under the omp backend build two full OpenMP teams —
/// 2 x n threads contending for n cores, the nested-oversubscription
/// collapse bench_ablation_oversubscribe measures. Under the pool
/// backend both submitters share one fixed-width worker set: team slots
/// queue instead of threads, so the machine never runs more compute
/// threads than it has cores. No team body in this repo synchronizes
/// across tids inside a region (the SGD Latin schedule launches one
/// region per sub-epoch precisely to keep that true), which is what
/// makes sequential tid multiplexing safe.
///
/// Selection is process-wide: `SPTD_BACKEND=omp|pool` seeds the default,
/// `--backend` flags (CLI/bench) call set_parallel_backend(). Nested
/// parallel_region calls behave identically on both backends: the inner
/// region runs body(0, 1) (the omp backend via
/// omp_set_max_active_levels(1), the pool backend explicitly).

#include <string>

#include "parallel/team.hpp"

namespace sptd {

/// Which parallel backend executes parallel_region teams.
enum class ParallelBackendKind : int { kOmp = 0, kPool };

/// Parses "omp" / "pool"; throws sptd::Error otherwise.
ParallelBackendKind parse_parallel_backend(const std::string& name);

/// Flag/log name of a backend ("omp" / "pool").
const char* parallel_backend_name(ParallelBackendKind kind);

/// The process default: the SPTD_BACKEND environment variable parsed
/// once (first call), kOmp when unset or empty. Options structs default
/// their `backend` field from this, which is how `SPTD_BACKEND=pool
/// ctest` runs the whole suite on the pool backend.
ParallelBackendKind default_parallel_backend();

/// The currently selected process-wide backend.
ParallelBackendKind parallel_backend();

/// Selects the backend every subsequent parallel_region dispatches to.
/// Process-wide and idempotent; drivers (cp_als, tucker_hooi, the
/// completion/dist drivers, MttkrpPlan) apply their options' `backend`
/// field through here before building workspaces, so lock pools capture
/// the right lock flavor. Not safe to call concurrently with a different
/// kind while regions are in flight — concurrent runs must agree on the
/// backend (they share it by design).
void set_parallel_backend(ParallelBackendKind kind);

/// The backend interface: everything team.cpp needs to launch a region.
class ParallelBackend {
 public:
  virtual ~ParallelBackend() = default;

  /// Runs body(tid, nthreads) once for every tid in [0, nthreads) and
  /// returns when all of them have finished. Called with nthreads >= 2:
  /// parallel_region_ref inlines the single-thread case before
  /// dispatching (identically on every backend).
  virtual void run_team(int nthreads, detail::TeamBodyRef body) = 0;

  /// The tid this thread is currently executing (0 outside a region).
  [[nodiscard]] virtual int team_rank() const = 0;

  /// Team-size default for "use all threads" (hardware_threads()). Both
  /// backends honor OMP_NUM_THREADS so thread sweeps mean the same thing
  /// regardless of backend; querying runs init_parallel_runtime() first,
  /// preserving the wait-policy-before-first-OpenMP-call ordering.
  virtual int max_threads() = 0;
};

/// The backend parallel_backend() currently names. Backends are
/// process-lifetime singletons; the pool backend's workers start lazily
/// on its first region and join at exit.
ParallelBackend& active_parallel_backend();

}  // namespace sptd
