#pragma once
/// \file schedule.hpp
/// \brief Pluggable slice-scheduling policies and the parallel context.
///
/// The paper's central finding is that the *tasking layer* — how loop
/// iterations map onto workers — dominates sparse MTTKRP performance. The
/// seed re-derived that mapping (a `weighted_partition` over the CSF root
/// prefix) inside every kernel call. This module separates the decision
/// from the execution: a `SchedulePolicy` names the mapping, a
/// `SliceSchedule` is the mapping computed once, and kernels merely walk
/// the ranges it hands them. `MttkrpPlan` (mttkrp/plan.hpp) caches one
/// `SliceSchedule` per mode so the CP-ALS hot loop performs zero
/// partitioning work.
///
/// Policies:
///  * static   — contiguous blocks of equal slice *count* (OpenMP
///               `schedule(static)`; Chapel's default `forall` split).
///  * weighted — contiguous blocks of equal *nonzero* weight, SPLATT's
///               balancing (the seed's only behaviour, still the default).
///  * dynamic  — fixed-size chunks claimed from a shared cursor at run
///               time (OpenMP `schedule(dynamic)`); the only policy whose
///               thread→slice assignment is decided per call.

#include <atomic>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "parallel/partition.hpp"
#include "parallel/team.hpp"

namespace sptd {

/// How a kernel's outer slice loop is distributed over the team.
enum class SchedulePolicy : int {
  kStatic = 0,  ///< equal slice counts per thread
  kWeighted,    ///< equal nonzero weight per thread (SPLATT)
  kDynamic,     ///< chunks claimed from a shared cursor
};

/// Parses "static" / "weighted" / "dynamic"; throws sptd::Error otherwise.
SchedulePolicy parse_schedule_policy(const std::string& name);

/// Flag/log name of a policy.
const char* schedule_policy_name(SchedulePolicy policy);

/// One precomputed distribution of [0, total) slices over a fixed team.
///
/// Static and weighted schedules are nthreads+1 boundaries fixed at
/// construction; dynamic schedules carry a chunk size and an atomic cursor
/// that must be reset() before each parallel region that consumes them.
/// Construction is the only place partitioning work happens — for_ranges()
/// on the hot path is a bounds lookup or a fetch_add.
class SliceSchedule {
 public:
  SliceSchedule() = default;

  /// Builds the schedule for \p total slices on \p nthreads workers.
  /// \p weight_prefix (exclusive prefix sum, length total+1) is consulted
  /// only by the weighted policy; passing an empty span degrades weighted
  /// to static. \p chunk_target is consulted only by the dynamic policy:
  /// chunks are sized for ~chunk_target cursor claims per thread
  /// (MttkrpOptions::chunk_target / the --chunk flag).
  SliceSchedule(SchedulePolicy policy, nnz_t total,
                std::span<const nnz_t> weight_prefix, int nthreads,
                nnz_t chunk_target = kDefaultChunkTarget);

  /// Default dynamic-schedule claims-per-thread target.
  static constexpr nnz_t kDefaultChunkTarget = 16;

  // The atomic cursor is not copyable; schedules move.
  SliceSchedule(SliceSchedule&& other) noexcept { *this = std::move(other); }
  SliceSchedule& operator=(SliceSchedule&& other) noexcept {
    policy_ = other.policy_;
    total_ = other.total_;
    chunk_ = other.chunk_;
    bounds_ = std::move(other.bounds_);
    cursor_.store(other.cursor_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] SchedulePolicy policy() const { return policy_; }
  [[nodiscard]] nnz_t total() const { return total_; }
  [[nodiscard]] nnz_t chunk() const { return chunk_; }

  /// Per-thread boundaries (nthreads+1) for static/weighted; empty for
  /// dynamic.
  [[nodiscard]] std::span<const nnz_t> bounds() const { return bounds_; }

  /// Rewinds the dynamic cursor. Must be called (from serial code) before
  /// every parallel region that consumes a dynamic schedule; a no-op for
  /// the precomputed policies.
  void reset() const {
    cursor_.store(0, std::memory_order_relaxed);
  }

  /// Invokes fn(begin, end) for every contiguous slice range assigned to
  /// \p tid. Static/weighted: exactly one range. Dynamic: repeated chunk
  /// claims until the cursor runs dry.
  template <typename Fn>
  void for_ranges(int tid, Fn&& fn) const {
    if (policy_ != SchedulePolicy::kDynamic) {
      const nnz_t begin = bounds_[static_cast<std::size_t>(tid)];
      const nnz_t end = bounds_[static_cast<std::size_t>(tid) + 1];
      if (begin < end) {
        fn(begin, end);
      }
      return;
    }
    for (;;) {
      const nnz_t begin = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
      if (begin >= total_) {
        return;
      }
      fn(begin, begin + chunk_ < total_ ? begin + chunk_ : total_);
    }
  }

 private:
  SchedulePolicy policy_ = SchedulePolicy::kStatic;
  nnz_t total_ = 0;
  nnz_t chunk_ = 1;
  std::vector<nnz_t> bounds_;
  mutable std::atomic<nnz_t> cursor_{0};
};

/// The execution side of the plan layer: a fixed team size plus the
/// scheduling policy its schedules are built with.
///
/// OpenMP keeps its worker pool alive between regions, so "owning" the
/// team means pinning its size and runtime settings once (dynamic-threads
/// off, nesting off, passive idle) instead of re-negotiating them per
/// kernel call; every region this context launches reuses those workers.
class ParallelContext {
 public:
  explicit ParallelContext(int nthreads,
                           SchedulePolicy policy = SchedulePolicy::kWeighted);

  [[nodiscard]] int nthreads() const { return nthreads_; }
  [[nodiscard]] SchedulePolicy policy() const { return policy_; }

  /// Builds a schedule of [0, total) under this context's policy.
  [[nodiscard]] SliceSchedule make_schedule(
      nnz_t total, std::span<const nnz_t> weight_prefix = {}) const {
    return SliceSchedule(policy_, total, weight_prefix, nthreads_);
  }

  /// Runs \p body(tid, nthreads) on the team (non-owning dispatch).
  template <typename F>
  void run(F&& body) const {
    parallel_region(nthreads_, body);
  }

  /// Runs \p fn(begin, end, tid) over every range of \p schedule.
  template <typename Fn>
  void run_scheduled(const SliceSchedule& schedule, Fn&& fn) const {
    schedule.reset();
    parallel_region(nthreads_, [&](int tid, int) {
      schedule.for_ranges(
          tid, [&](nnz_t begin, nnz_t end) { fn(begin, end, tid); });
    });
  }

 private:
  int nthreads_;
  SchedulePolicy policy_;
};

}  // namespace sptd
