#pragma once
/// \file schedule.hpp
/// \brief Pluggable slice-scheduling policies and the parallel context.
///
/// The paper's central finding is that the *tasking layer* — how loop
/// iterations map onto workers — dominates sparse MTTKRP performance. The
/// seed re-derived that mapping (a `weighted_partition` over the CSF root
/// prefix) inside every kernel call. This module separates the decision
/// from the execution: a `SchedulePolicy` names the mapping, a
/// `SliceSchedule` is the mapping computed once, and kernels merely walk
/// the ranges it hands them. `MttkrpPlan` (mttkrp/plan.hpp) caches one
/// `SliceSchedule` per mode so the CP-ALS hot loop performs zero
/// partitioning work.
///
/// Policies:
///  * static       — contiguous blocks of equal slice *count* (OpenMP
///                   `schedule(static)`; Chapel's default `forall` split).
///  * weighted     — contiguous blocks of equal *nonzero* weight, SPLATT's
///                   balancing (the seed's only behaviour, still the
///                   default).
///  * dynamic      — fixed-size chunks claimed from a shared cursor at run
///                   time (OpenMP `schedule(dynamic)`); every claim hits
///                   one global atomic.
///  * workstealing — per-thread chunk deques seeded from the weighted
///                   partition; owners drain their own deque front-to-back
///                   and idle threads steal chunks from the far end of a
///                   victim's deque. The paper's load-imbalance discussion
///                   (Section V-E) motivates this: the nnz-weighted seed
///                   is the best *static* prediction, stealing absorbs
///                   whatever the prediction misses (hypersparse slice
///                   skew, cache effects, OS noise, oversubscription).

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "parallel/partition.hpp"
#include "parallel/team.hpp"

namespace sptd {

/// How a kernel's outer slice loop is distributed over the team.
enum class SchedulePolicy : int {
  kStatic = 0,    ///< equal slice counts per thread
  kWeighted,      ///< equal nonzero weight per thread (SPLATT)
  kDynamic,       ///< chunks claimed from a shared cursor
  kWorkStealing,  ///< weighted seed + per-thread deques, idle threads steal
};

/// Parses "static" / "weighted" / "dynamic" / "workstealing"; throws
/// sptd::Error otherwise.
SchedulePolicy parse_schedule_policy(const std::string& name);

/// Flag/log name of a policy.
const char* schedule_policy_name(SchedulePolicy policy);

/// Process-wide count of successful work-steal chunk claims (monotonic,
/// relaxed). Exposed like weighted_partition_calls(): benches record the
/// delta per measurement (the `steals` JSON field) and tests assert that
/// stealing actually happens under imbalance.
std::uint64_t work_steal_count();

/// One precomputed distribution of [0, total) slices over a fixed team.
///
/// Static and weighted schedules are nthreads+1 boundaries fixed at
/// construction; dynamic schedules carry a chunk size and an atomic cursor;
/// work-stealing schedules carry per-thread chunk deques. The two runtime
/// policies must be reset() before each parallel region that consumes them
/// (the dynamic cursor rewinds, the deques reseed). Construction is the
/// only place partitioning work happens — for_ranges() on the hot path is
/// a bounds lookup, a fetch_add, or an (almost always uncontended) CAS on
/// the caller's own deque.
class SliceSchedule {
 public:
  SliceSchedule() = default;

  /// Builds the schedule for \p total slices on \p nthreads workers.
  /// \p weight_prefix (exclusive prefix sum, length total+1) is consulted
  /// by the weighted and work-stealing policies; passing an empty span
  /// degrades weighted to static and seeds work-stealing deques with equal
  /// slice counts. \p chunk_target is consulted by the dynamic and
  /// work-stealing policies: chunks are sized for ~chunk_target claims per
  /// thread (MttkrpOptions::chunk_target / the --chunk flag).
  SliceSchedule(SchedulePolicy policy, nnz_t total,
                std::span<const nnz_t> weight_prefix, int nthreads,
                nnz_t chunk_target = kDefaultChunkTarget);

  /// Default dynamic/work-stealing claims-per-thread target.
  static constexpr nnz_t kDefaultChunkTarget = 16;

  // The atomic cursor and deques are not copyable; schedules move.
  SliceSchedule(SliceSchedule&& other) noexcept { *this = std::move(other); }
  SliceSchedule& operator=(SliceSchedule&& other) noexcept {
    policy_ = other.policy_;
    total_ = other.total_;
    chunk_ = other.chunk_;
    nthreads_ = other.nthreads_;
    bounds_ = std::move(other.bounds_);
    chunks_ = std::move(other.chunks_);
    owner_first_ = std::move(other.owner_first_);
    owner_last_ = std::move(other.owner_last_);
    deques_ = std::move(other.deques_);
    cursor_.store(other.cursor_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    steals_.store(other.steals_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    generation_.store(other.generation_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    entries_.store(other.entries_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] SchedulePolicy policy() const { return policy_; }
  [[nodiscard]] nnz_t total() const { return total_; }
  [[nodiscard]] nnz_t chunk() const { return chunk_; }
  [[nodiscard]] int nthreads() const { return nthreads_; }

  /// Per-thread boundaries (nthreads+1) for static/weighted, and the
  /// deque *seed* boundaries for workstealing (what each thread owns
  /// before any steal); empty for dynamic.
  [[nodiscard]] std::span<const nnz_t> bounds() const { return bounds_; }

  /// Work-stealing steal granularity: slice boundaries of the chunk list
  /// (chunk_count()+1 entries); empty for the other policies.
  [[nodiscard]] std::span<const nnz_t> chunk_bounds() const {
    return chunks_;
  }
  [[nodiscard]] nnz_t chunk_count() const {
    return chunks_.empty() ? 0 : static_cast<nnz_t>(chunks_.size()) - 1;
  }

  /// Successful steals through this schedule, cumulative across launches
  /// (reset() reseeds the deques but keeps the counter, so callers can
  /// difference it around a run).
  [[nodiscard]] std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Rewinds the runtime policies: the dynamic cursor restarts at zero and
  /// every work-stealing deque is reseeded with its owner's chunks. Must
  /// be called (from serial code) before every parallel region that
  /// consumes a dynamic or work-stealing schedule; a no-op for the
  /// precomputed policies. Each call opens a new launch *generation* —
  /// at most nthreads() workers may enter for_ranges() per generation,
  /// which is how reuse-without-reset is caught (see generation()).
  void reset() const {
    if (policy_ == SchedulePolicy::kDynamic) {
      generation_.fetch_add(1, std::memory_order_relaxed);
      entries_.store(0, std::memory_order_relaxed);
      cursor_.store(0, std::memory_order_relaxed);
    } else if (policy_ == SchedulePolicy::kWorkStealing) {
      generation_.fetch_add(1, std::memory_order_relaxed);
      entries_.store(0, std::memory_order_relaxed);
      for (int t = 0; t < nthreads_; ++t) {
        deques_[static_cast<std::size_t>(t)].cur.store(
            pack(owner_first_[static_cast<std::size_t>(t)],
                 owner_last_[static_cast<std::size_t>(t)]),
            std::memory_order_relaxed);
      }
    }
  }

  /// Number of reset() calls this schedule has seen (runtime policies
  /// only; the precomputed policies have no generations). Diagnostic
  /// counterpart of the launch-entry contract below.
  [[nodiscard]] std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  /// Invokes fn(begin, end) for every contiguous slice range assigned to
  /// \p tid. Static/weighted: exactly one range. Dynamic: repeated chunk
  /// claims until the cursor runs dry. Workstealing: the thread drains its
  /// own deque front-to-back (ascending slices, cache-friendly), then
  /// cycles over the other deques stealing one chunk at a time from the
  /// far end until a full pass finds every deque empty.
  template <typename Fn>
  void for_ranges(int tid, Fn&& fn) const {
    if (policy_ == SchedulePolicy::kStatic ||
        policy_ == SchedulePolicy::kWeighted) {
      const nnz_t begin = bounds_[static_cast<std::size_t>(tid)];
      const nnz_t end = bounds_[static_cast<std::size_t>(tid) + 1];
      if (begin < end) {
        fn(begin, end);
      }
      return;
    }
    enforce_reset_contract();
    if (policy_ == SchedulePolicy::kDynamic) {
      for (;;) {
        const nnz_t begin =
            cursor_.fetch_add(chunk_, std::memory_order_relaxed);
        if (begin >= total_) {
          return;
        }
        fn(begin, begin + chunk_ < total_ ? begin + chunk_ : total_);
      }
    }
    // Workstealing. Deques only shrink between reset() calls, so once a
    // steal pass observes every other deque empty the work is fully
    // claimed and the thread may leave.
    std::uint32_t c = 0;
    while (claim_own(tid, &c)) {
      fn(chunks_[c], chunks_[c + 1]);
    }
    for (bool progress = true; progress;) {
      progress = false;
      for (int d = 1; d < nthreads_; ++d) {
        const int victim = (tid + d) % nthreads_;
        if (claim_steal(victim, &c)) {
          fn(chunks_[c], chunks_[c + 1]);
          progress = true;
        }
      }
    }
  }

 private:
  /// The runtime-policy reuse guard: at most nthreads_ workers may enter
  /// for_ranges() between reset() calls. A second launch that forgot to
  /// reset() pushes the entry count past the team size and fails here —
  /// loudly, instead of silently executing zero iterations against an
  /// exhausted cursor / drained deques (the historical failure mode of
  /// cached MttkrpPlan schedules). The check is one relaxed fetch_add per
  /// worker per launch — noise next to the per-chunk atomics these
  /// policies already pay — so it stays on in release builds; inside a
  /// parallel region the throw escalates to std::terminate, i.e. the
  /// contract violation aborts rather than corrupts.
  void enforce_reset_contract() const {
    const std::uint32_t n = entries_.fetch_add(1, std::memory_order_relaxed);
    SPTD_CHECK(n < static_cast<std::uint32_t>(nthreads_),
               "SliceSchedule consumed by more workers than the team size: "
               "dynamic/work-stealing schedules must be reset() before "
               "every parallel region (generation " +
                   std::to_string(generation()) + ", see ROADMAP contracts)");
  }

  /// One thread's deque: the unclaimed chunk-index window [lo, hi), both
  /// cursors packed into a single word so a claim is one CAS and the
  /// lo/hi race at the last chunk cannot double-issue it. Padded so
  /// owners polling their own deque never false-share with a neighbour.
  struct alignas(kCacheLineBytes) Deque {
    std::atomic<std::uint64_t> cur{0};
  };

  static constexpr std::uint64_t pack(std::uint32_t lo, std::uint32_t hi) {
    return static_cast<std::uint64_t>(hi) << 32 | lo;
  }

  /// Owner claim: pops the front chunk (ascending order). Returns false
  /// once the deque is empty. O(1); touches only the caller's own line.
  bool claim_own(int tid, std::uint32_t* chunk) const;

  /// Thief claim: pops the *back* chunk of \p victim's deque and bumps the
  /// steal counters. Returns false when the victim has nothing left. O(1).
  bool claim_steal(int victim, std::uint32_t* chunk) const;

  SchedulePolicy policy_ = SchedulePolicy::kStatic;
  nnz_t total_ = 0;
  nnz_t chunk_ = 1;
  int nthreads_ = 1;
  std::vector<nnz_t> bounds_;
  // Workstealing state: global chunk boundaries plus each owner's
  // [first, last) chunk-index window, used by reset() to reseed.
  std::vector<nnz_t> chunks_;
  std::vector<std::uint32_t> owner_first_;
  std::vector<std::uint32_t> owner_last_;
  std::unique_ptr<Deque[]> deques_;
  mutable std::atomic<nnz_t> cursor_{0};
  mutable std::atomic<std::uint64_t> steals_{0};
  // Launch-generation contract state (see enforce_reset_contract()).
  mutable std::atomic<std::uint64_t> generation_{0};
  mutable std::atomic<std::uint32_t> entries_{0};
};

/// The execution side of the plan layer: a fixed team size plus the
/// scheduling policy its schedules are built with.
///
/// Both backends (parallel/backend.hpp) keep their worker pool alive
/// between regions — libgomp's team under `omp`, the persistent
/// std::thread pool under `pool` — so "owning" the team means pinning
/// its size and runtime settings once (dynamic-threads off, nesting off,
/// passive idle) instead of re-negotiating them per kernel call; every
/// region this context launches reuses those workers.
class ParallelContext {
 public:
  explicit ParallelContext(int nthreads,
                           SchedulePolicy policy = SchedulePolicy::kWeighted);

  [[nodiscard]] int nthreads() const { return nthreads_; }
  [[nodiscard]] SchedulePolicy policy() const { return policy_; }

  /// Builds a schedule of [0, total) under this context's policy.
  [[nodiscard]] SliceSchedule make_schedule(
      nnz_t total, std::span<const nnz_t> weight_prefix = {}) const {
    return SliceSchedule(policy_, total, weight_prefix, nthreads_);
  }

  /// Runs \p body(tid, nthreads) on the team (non-owning dispatch).
  /// Forwards through TeamBodyRef explicitly: routing via the owning
  /// cold-path parallel_region overload would allocate a type-erased
  /// wrapper on every cached-plan iteration, exactly the regression the
  /// std-function-hot-path lint rule (which covers src/parallel) exists
  /// to catch.
  template <typename F>
  void run(F&& body) const {
    detail::TeamBodyRef ref(body);
    detail::parallel_region_ref(nthreads_, ref);
  }

  /// Runs \p fn(begin, end, tid) over every range of \p schedule.
  template <typename Fn>
  void run_scheduled(const SliceSchedule& schedule, Fn&& fn) const {
    schedule.reset();
    parallel_region(nthreads_, [&](int tid, int) {
      schedule.for_ranges(
          tid, [&](nnz_t begin, nnz_t end) { fn(begin, end, tid); });
    });
  }

 private:
  int nthreads_;
  SchedulePolicy policy_;
};

}  // namespace sptd
