#include "parallel/backend.hpp"

#include <omp.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"

namespace sptd {
namespace {

// ---------------------------------------------------------------------------
// Backend selection state.
// ---------------------------------------------------------------------------

// -1 = unset (fall back to default_parallel_backend()). Atomic so that
// concurrent drivers agreeing on the same backend can both "set" it.
std::atomic<int> g_backend_kind{-1};

// ---------------------------------------------------------------------------
// OpenMP backend: the pre-backend behavior, verbatim. One
// `#pragma omp parallel` per region; libgomp owns the worker pool.
// ---------------------------------------------------------------------------

class OmpBackend final : public ParallelBackend {
 public:
  void run_team(int nthreads, detail::TeamBodyRef body) override {
    // Idempotent; guarantees OMP_WAIT_POLICY=passive is latched before
    // libgomp spins up its pool even if the caller skipped
    // hardware_threads() (every CLI/bench path already funnels through
    // it, so this is belt-and-braces, not a behavior change).
    init_parallel_runtime();
#pragma omp parallel num_threads(nthreads)
    { body(omp_get_thread_num(), omp_get_num_threads()); }
  }

  [[nodiscard]] int team_rank() const override { return omp_get_thread_num(); }

  int max_threads() override {
    init_parallel_runtime();
    return omp_get_max_threads();
  }
};

// ---------------------------------------------------------------------------
// Pool backend: a persistent std::thread worker pool. A region publishes a
// stack-allocated TeamTask; the submitter and idle workers claim tids from
// task.next until all nthreads slots have run. Workers spin briefly between
// regions, then park on a per-worker cache-line-padded futex word
// (std::atomic<uint32_t>::wait == futex on Linux). All synchronization is
// plain C++ atomics + std::mutex, so TSan models it natively — no
// SPTD_TSAN_* annotations needed (contracts.hpp documents this split).
// ---------------------------------------------------------------------------

// Team rank of the pool tid this thread is currently running, and whether
// it is inside a multi-thread pool region at all (nested regions
// serialize, matching omp_set_max_active_levels(1)).
thread_local int tls_pool_tid = 0;
thread_local bool tls_pool_in_team = false;

// Brief spin before parking / before the submitter falls back to the
// condvar. Tuned short: on a fork/join cadence the next region usually
// arrives within this window, and the passive-wait contract demands we
// yield the core quickly when it does not.
constexpr int kSpinIters = 4096;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

// One in-flight parallel region. Lives on the submitter's stack; the refs
// counter keeps workers from touching it after the submitter returns (a
// worker increments refs while holding the pool mutex and the task is
// still listed, and the submitter does not return until refs drains).
struct TeamTask {
  detail::TeamBodyRef body;
  int nthreads;
  std::atomic<int> next{0};  // tid claim cursor
  std::atomic<int> done{0};  // tids finished
  std::atomic<int> refs{0};  // workers holding a pointer to this task

  TeamTask(detail::TeamBodyRef b, int n) : body(b), nthreads(n) {}
};

// Per-worker parking slot, cache-line padded so one worker's futex word
// never false-shares with its neighbor's.
struct alignas(kCacheLineBytes) WorkerSlot {
  std::atomic<std::uint32_t> signal{0};
  std::atomic<bool> parked{false};
};

class PoolBackend final : public ParallelBackend {
 public:
  PoolBackend() = default;

  ~PoolBackend() override {
    stop_.store(true, std::memory_order_seq_cst);
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    for (int w = 0; w < nworkers_; ++w) {
      slots_[w].signal.fetch_add(1, std::memory_order_seq_cst);
      slots_[w].signal.notify_one();
    }
    for (auto& t : workers_) {
      if (t.joinable()) t.join();
    }
  }

  void run_team(int nthreads, detail::TeamBodyRef body) override {
    if (tls_pool_in_team) {
      // Nested region: serialize, exactly like the omp backend under
      // omp_set_max_active_levels(1). The body observes tid 0 of a team
      // of 1 (current_thread_id() included).
      const int outer_tid = tls_pool_tid;
      tls_pool_tid = 0;
      body(0, 1);
      tls_pool_tid = outer_tid;
      return;
    }
    ensure_workers();

    TeamTask task(body, nthreads);
    {
      std::lock_guard<std::mutex> lk(mu_);
      active_.push_back(&task);
    }
    // Publish-order contract with worker_loop: the task is listed before
    // the epoch bump, and workers read the epoch before scanning, so a
    // worker that misses the task in its scan must see the bump and
    // rescan instead of parking.
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    wake_workers(nthreads - 1);

    // The submitter is a team member too: claim tids until the cursor
    // drains. With zero free workers this degrades to running the whole
    // team sequentially on the calling thread — which is exactly the
    // composability story (team slots queue; threads don't multiply).
    int tid;
    while ((tid = task.next.fetch_add(1, std::memory_order_relaxed)) <
           nthreads) {
      run_tid(task, tid);
    }

    const auto settled = [&task, nthreads] {
      return task.done.load(std::memory_order_acquire) == nthreads &&
             task.refs.load(std::memory_order_acquire) == 0;
    };
    // The lock-free spin is only a hint: a worker inside claim_task can
    // still find the task listed (its relaxed read of the cursor may lag)
    // and bump refs under mu_ after settled() read refs==0 here. The
    // authoritative check happens under mu_ — refs only ever rises inside
    // claim_task's critical section, so a settled() that holds while we
    // hold mu_ cannot be invalidated once the erase in the same critical
    // section hides the task from every later scan.
    for (int i = 0; i < kSpinIters && !settled(); ++i) cpu_relax();
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, settled);
      for (std::size_t i = 0; i < active_.size(); ++i) {
        if (active_[i] == &task) {
          active_.erase(active_.begin() +
                        static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
  }

  [[nodiscard]] int team_rank() const override { return tls_pool_tid; }

  int max_threads() override {
    // Same query as the omp backend (honors OMP_NUM_THREADS), and the
    // same ordering contract: init_parallel_runtime() latches the wait
    // policy before this first OpenMP call.
    init_parallel_runtime();
    return omp_get_max_threads();
  }

 private:
  static void run_tid(TeamTask& task, int tid) {
    const int outer_tid = tls_pool_tid;
    const bool outer_in_team = tls_pool_in_team;
    tls_pool_tid = tid;
    tls_pool_in_team = true;
    task.body(tid, task.nthreads);
    tls_pool_tid = outer_tid;
    tls_pool_in_team = outer_in_team;
    task.done.fetch_add(1, std::memory_order_release);
  }

  void ensure_workers() {
    std::lock_guard<std::mutex> lk(mu_);
    if (nworkers_ > 0) return;
    int width = max_threads();
    if (width < 1) width = 1;
    nworkers_ = width;
    slots_ = std::make_unique<WorkerSlot[]>(static_cast<std::size_t>(width));
    workers_.reserve(static_cast<std::size_t>(width));
    for (int w = 0; w < width; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  // Picks an unfinished task (refs bumped under the lock, so the task
  // cannot be reclaimed while we hold the pointer) or nullptr.
  TeamTask* claim_task() {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < active_.size();) {
      TeamTask* t = active_[i];
      if (t->next.load(std::memory_order_relaxed) < t->nthreads) {
        t->refs.fetch_add(1, std::memory_order_relaxed);
        return t;
      }
      // Cursor drained: drop it from the scan list so later scans stay
      // short. The submitter's own erase tolerates the absence.
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    return nullptr;
  }

  // Last touch of the task from this worker; after the refs drop the
  // submitter may free it, so the empty lock/notify below must not
  // dereference it. The empty critical section pairs with the
  // submitter's cv_done_ wait: the predicate flips via atomics, and
  // passing through mu_ before notifying closes the decide-then-sleep
  // window.
  void finish_task(TeamTask* task) {
    task->refs.fetch_sub(1, std::memory_order_release);
    { std::lock_guard<std::mutex> lk(mu_); }
    cv_done_.notify_all();
  }

  void wake_workers(int want) {
    for (int w = 0; w < nworkers_ && want > 0; ++w) {
      WorkerSlot& slot = slots_[w];
      if (slot.parked.load(std::memory_order_seq_cst)) {
        slot.signal.fetch_add(1, std::memory_order_seq_cst);
        slot.signal.notify_one();
        --want;
      }
      // Unparked workers are still in their spin phase and will observe
      // the epoch bump without a futex wake.
    }
  }

  void worker_loop(int w) {
    WorkerSlot& slot = slots_[w];
    for (;;) {
      // Read the epoch BEFORE scanning: if a submit lands after the scan
      // missed it, the bump lands after this read and the spin/park
      // checks below notice it. (Submit order is push-then-bump.)
      const std::uint64_t e0 = epoch_.load(std::memory_order_seq_cst);
      TeamTask* task = claim_task();
      if (task != nullptr) {
        const int n = task->nthreads;
        int tid;
        while ((tid = task->next.fetch_add(1, std::memory_order_relaxed)) <
               n) {
          run_tid(*task, tid);
        }
        finish_task(task);
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) return;

      // Brief spin: fork/join cadences usually submit the next region
      // within this window, and a futex round-trip per region would
      // dominate short regions.
      bool bumped = false;
      for (int i = 0; i < kSpinIters; ++i) {
        if (epoch_.load(std::memory_order_seq_cst) != e0 ||
            stop_.load(std::memory_order_acquire)) {
          bumped = true;
          break;
        }
        cpu_relax();
      }
      if (bumped) continue;

      // Park. parked must be visible before the final epoch recheck:
      // wake_workers bumps the epoch first (seq_cst) and then scans
      // parked flags, so either we see the bump here and skip the wait,
      // or the submitter sees parked==true and sends a signal.
      slot.parked.store(true, std::memory_order_seq_cst);
      const std::uint32_t seen = slot.signal.load(std::memory_order_seq_cst);
      if (epoch_.load(std::memory_order_seq_cst) != e0 ||
          stop_.load(std::memory_order_seq_cst)) {
        slot.parked.store(false, std::memory_order_relaxed);
        continue;
      }
      slot.signal.wait(seen, std::memory_order_acquire);
      slot.parked.store(false, std::memory_order_relaxed);
    }
  }

  std::mutex mu_;
  std::condition_variable cv_done_;
  std::vector<TeamTask*> active_;     // guarded by mu_
  std::vector<std::thread> workers_;  // created once under mu_
  std::unique_ptr<WorkerSlot[]> slots_;
  int nworkers_ = 0;                  // 0 until ensure_workers
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};
};

OmpBackend& omp_backend_instance() {
  static OmpBackend backend;
  return backend;
}

PoolBackend& pool_backend_instance() {
  static PoolBackend backend;
  return backend;
}

}  // namespace

ParallelBackendKind parse_parallel_backend(const std::string& name) {
  if (name == "omp") return ParallelBackendKind::kOmp;
  if (name == "pool") return ParallelBackendKind::kPool;
  throw Error("unknown parallel backend '" + name + "' (want omp|pool)");
}

const char* parallel_backend_name(ParallelBackendKind kind) {
  switch (kind) {
    case ParallelBackendKind::kOmp:
      return "omp";
    case ParallelBackendKind::kPool:
      return "pool";
  }
  return "omp";
}

ParallelBackendKind default_parallel_backend() {
  static const ParallelBackendKind kind = [] {
    const char* env = std::getenv("SPTD_BACKEND");
    if (env == nullptr || *env == '\0') return ParallelBackendKind::kOmp;
    return parse_parallel_backend(env);
  }();
  return kind;
}

ParallelBackendKind parallel_backend() {
  const int raw = g_backend_kind.load(std::memory_order_acquire);
  if (raw < 0) return default_parallel_backend();
  return static_cast<ParallelBackendKind>(raw);
}

void set_parallel_backend(ParallelBackendKind kind) {
  g_backend_kind.store(static_cast<int>(kind), std::memory_order_release);
}

ParallelBackend& active_parallel_backend() {
  switch (parallel_backend()) {
    case ParallelBackendKind::kOmp:
      return omp_backend_instance();
    case ParallelBackendKind::kPool:
      return pool_backend_instance();
  }
  return omp_backend_instance();
}

}  // namespace sptd
