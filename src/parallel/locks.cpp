#include "parallel/locks.hpp"

namespace sptd {

LockKind parse_lock_kind(const std::string& name) {
  if (name == "sync") return LockKind::kSync;
  if (name == "atomic") return LockKind::kAtomic;
  if (name == "fifo-sync" || name == "fifo") return LockKind::kFifoSync;
  if (name == "omp") return LockKind::kOmp;
  throw Error("unknown lock kind '" + name +
              "' (expected sync|atomic|fifo-sync|omp)");
}

const char* lock_kind_name(LockKind kind) {
  switch (kind) {
    case LockKind::kSync:     return "sync";
    case LockKind::kAtomic:   return "atomic";
    case LockKind::kFifoSync: return "fifo-sync";
    case LockKind::kOmp:      return "omp";
  }
  return "?";
}

AnyMutexPool::AnyMutexPool(LockKind kind) : kind_(kind) {}

void AnyMutexPool::lock(idx_t id) {
  switch (kind_) {
    case LockKind::kSync:     sync_.lock(id); break;
    case LockKind::kAtomic:   atomic_.lock(id); break;
    case LockKind::kFifoSync: fifo_.lock(id); break;
    case LockKind::kOmp:      omp_.lock(id); break;
  }
}

void AnyMutexPool::unlock(idx_t id) {
  switch (kind_) {
    case LockKind::kSync:     sync_.unlock(id); break;
    case LockKind::kAtomic:   atomic_.unlock(id); break;
    case LockKind::kFifoSync: fifo_.unlock(id); break;
    case LockKind::kOmp:      omp_.unlock(id); break;
  }
}

}  // namespace sptd
