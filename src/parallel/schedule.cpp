#include "parallel/schedule.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sptd {

SchedulePolicy parse_schedule_policy(const std::string& name) {
  if (name == "static") return SchedulePolicy::kStatic;
  if (name == "weighted") return SchedulePolicy::kWeighted;
  if (name == "dynamic") return SchedulePolicy::kDynamic;
  throw Error("unknown schedule policy '" + name +
              "' (expected static|weighted|dynamic)");
}

const char* schedule_policy_name(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kStatic:   return "static";
    case SchedulePolicy::kWeighted: return "weighted";
    case SchedulePolicy::kDynamic:  return "dynamic";
  }
  return "?";
}

SliceSchedule::SliceSchedule(SchedulePolicy policy, nnz_t total,
                             std::span<const nnz_t> weight_prefix,
                             int nthreads, nnz_t chunk_target)
    : policy_(policy), total_(total) {
  SPTD_CHECK(nthreads >= 1, "SliceSchedule: nthreads must be >= 1");
  SPTD_CHECK(chunk_target >= 1, "SliceSchedule: chunk target must be >= 1");
  if (policy_ == SchedulePolicy::kWeighted && weight_prefix.empty()) {
    policy_ = SchedulePolicy::kStatic;  // no weights to balance by
  }
  switch (policy_) {
    case SchedulePolicy::kStatic: {
      bounds_.resize(static_cast<std::size_t>(nthreads) + 1);
      for (int t = 0; t < nthreads; ++t) {
        bounds_[static_cast<std::size_t>(t)] =
            block_partition(total, nthreads, t).begin;
      }
      bounds_[static_cast<std::size_t>(nthreads)] = total;
      break;
    }
    case SchedulePolicy::kWeighted: {
      SPTD_CHECK(weight_prefix.size() == total + 1,
                 "SliceSchedule: weight prefix length != total + 1");
      bounds_ = weighted_partition(weight_prefix, nthreads);
      break;
    }
    case SchedulePolicy::kDynamic: {
      // Chunks sized for ~chunk_target claims per thread: coarse enough
      // that the shared cursor stays off the critical path, fine enough
      // to smooth slice-weight skew. The target is tunable (--chunk)
      // because the right trade depends on core count and slice skew.
      chunk_ = std::max<nnz_t>(
          1, total / (static_cast<nnz_t>(nthreads) * chunk_target));
      break;
    }
  }
}

ParallelContext::ParallelContext(int nthreads, SchedulePolicy policy)
    : nthreads_(nthreads), policy_(policy) {
  SPTD_CHECK(nthreads >= 1, "ParallelContext: nthreads must be >= 1");
  init_parallel_runtime();
}

}  // namespace sptd
