#include "parallel/schedule.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sptd {

namespace {

std::atomic<std::uint64_t> g_work_steals{0};

/// Equal-slice-count boundaries (OpenMP schedule(static)): the kStatic
/// partition, also the work-stealing seed when no weights exist.
std::vector<nnz_t> equal_count_bounds(nnz_t total, int nthreads) {
  std::vector<nnz_t> bounds(static_cast<std::size_t>(nthreads) + 1);
  for (int t = 0; t < nthreads; ++t) {
    bounds[static_cast<std::size_t>(t)] =
        block_partition(total, nthreads, t).begin;
  }
  bounds[static_cast<std::size_t>(nthreads)] = total;
  return bounds;
}

}  // namespace

std::uint64_t work_steal_count() {
  return g_work_steals.load(std::memory_order_relaxed);
}

SchedulePolicy parse_schedule_policy(const std::string& name) {
  if (name == "static") return SchedulePolicy::kStatic;
  if (name == "weighted") return SchedulePolicy::kWeighted;
  if (name == "dynamic") return SchedulePolicy::kDynamic;
  if (name == "workstealing" || name == "work-stealing") {
    return SchedulePolicy::kWorkStealing;
  }
  throw Error("unknown schedule policy '" + name +
              "' (expected static|weighted|dynamic|workstealing)");
}

const char* schedule_policy_name(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kStatic:       return "static";
    case SchedulePolicy::kWeighted:     return "weighted";
    case SchedulePolicy::kDynamic:      return "dynamic";
    case SchedulePolicy::kWorkStealing: return "workstealing";
  }
  return "?";
}

SliceSchedule::SliceSchedule(SchedulePolicy policy, nnz_t total,
                             std::span<const nnz_t> weight_prefix,
                             int nthreads, nnz_t chunk_target)
    : policy_(policy), total_(total), nthreads_(nthreads) {
  SPTD_CHECK(nthreads >= 1, "SliceSchedule: nthreads must be >= 1");
  SPTD_CHECK(chunk_target >= 1, "SliceSchedule: chunk target must be >= 1");
  if (policy_ == SchedulePolicy::kWeighted && weight_prefix.empty()) {
    policy_ = SchedulePolicy::kStatic;  // no weights to balance by
  }
  if (!weight_prefix.empty()) {
    SPTD_CHECK(weight_prefix.size() == total + 1,
               "SliceSchedule: weight prefix length != total + 1");
  }
  switch (policy_) {
    case SchedulePolicy::kStatic: {
      bounds_ = equal_count_bounds(total, nthreads);
      break;
    }
    case SchedulePolicy::kWeighted: {
      bounds_ = weighted_partition(weight_prefix, nthreads);
      break;
    }
    case SchedulePolicy::kDynamic: {
      // Chunks sized for ~chunk_target claims per thread: coarse enough
      // that the shared cursor stays off the critical path, fine enough
      // to smooth slice-weight skew. The target is tunable (--chunk)
      // because the right trade depends on core count and slice skew.
      chunk_ = std::max<nnz_t>(
          1, total / (static_cast<nnz_t>(nthreads) * chunk_target));
      break;
    }
    case SchedulePolicy::kWorkStealing: {
      // Seed each thread's deque from the weighted (nnz-prefix) partition
      // — the same first assignment SPLATT's balancing would make — or
      // from equal slice counts when no weights exist.
      bounds_ = weight_prefix.empty()
                    ? equal_count_bounds(total, nthreads)
                    : weighted_partition(weight_prefix, nthreads);
      // Subdivide every owner's block into <= chunk_target chunks (weight-
      // balanced when weights exist) — the steal granularity. Claims carry
      // 32-bit chunk indices packed two to a word, which bounds the chunk
      // count, never the slice count.
      // Exact bound: each thread contributes min(chunk_target, its block
      // size) chunks, so at most min(total, nthreads * chunk_target)
      // overall — clamped so an absurd --chunk value cannot reserve
      // absurd memory (min before the multiply also keeps it overflow-
      // free).
      const nnz_t per_thread = std::min<nnz_t>(chunk_target, total);
      chunks_.reserve(static_cast<std::size_t>(std::min<nnz_t>(
                          total,
                          static_cast<nnz_t>(nthreads) * per_thread)) + 1);
      chunks_.push_back(0);
      owner_first_.resize(static_cast<std::size_t>(nthreads));
      owner_last_.resize(static_cast<std::size_t>(nthreads));
      for (int t = 0; t < nthreads; ++t) {
        const nnz_t begin = bounds_[static_cast<std::size_t>(t)];
        const nnz_t end = bounds_[static_cast<std::size_t>(t) + 1];
        owner_first_[static_cast<std::size_t>(t)] =
            static_cast<std::uint32_t>(chunks_.size() - 1);
        const nnz_t n = end - begin;
        const nnz_t parts = std::min<nnz_t>(chunk_target, n);
        for (nnz_t p = 1; p <= parts; ++p) {
          nnz_t cut;
          if (p == parts) {
            cut = end;
          } else if (!weight_prefix.empty()) {
            const nnz_t w0 = weight_prefix[static_cast<std::size_t>(begin)];
            const nnz_t target =
                w0 + (weight_prefix[static_cast<std::size_t>(end)] - w0) *
                         p / parts;
            const auto it = std::lower_bound(
                weight_prefix.begin() + static_cast<std::ptrdiff_t>(begin),
                weight_prefix.begin() + static_cast<std::ptrdiff_t>(end),
                target);
            cut = static_cast<nnz_t>(it - weight_prefix.begin());
          } else {
            cut = begin + n * p / parts;
          }
          cut = std::clamp(cut, chunks_.back(), end);
          if (cut > chunks_.back()) {
            chunks_.push_back(cut);  // zero-weight runs collapse chunks
          }
        }
        owner_last_[static_cast<std::size_t>(t)] =
            static_cast<std::uint32_t>(chunks_.size() - 1);
      }
      SPTD_CHECK(chunks_.size() - 1 <= 0xffffffffULL,
                 "SliceSchedule: too many work-stealing chunks");
      deques_ = std::make_unique<Deque[]>(static_cast<std::size_t>(nthreads));
      reset();
      break;
    }
  }
}

// The claim protocol needs no ordering stronger than relaxed: the chunk
// list is immutable after construction and published by the fork of the
// parallel region, and the single-word CAS alone guarantees every chunk
// index is issued exactly once between reset() calls.

bool SliceSchedule::claim_own(int tid, std::uint32_t* chunk) const {
  auto& q = deques_[static_cast<std::size_t>(tid)].cur;
  std::uint64_t v = q.load(std::memory_order_relaxed);
  for (;;) {
    const auto lo = static_cast<std::uint32_t>(v);
    const auto hi = static_cast<std::uint32_t>(v >> 32);
    if (lo >= hi) {
      return false;
    }
    if (q.compare_exchange_weak(v, pack(lo + 1, hi),
                                std::memory_order_relaxed)) {
      *chunk = lo;
      return true;
    }
  }
}

bool SliceSchedule::claim_steal(int victim, std::uint32_t* chunk) const {
  auto& q = deques_[static_cast<std::size_t>(victim)].cur;
  std::uint64_t v = q.load(std::memory_order_relaxed);
  for (;;) {
    const auto lo = static_cast<std::uint32_t>(v);
    const auto hi = static_cast<std::uint32_t>(v >> 32);
    if (lo >= hi) {
      return false;
    }
    if (q.compare_exchange_weak(v, pack(lo, hi - 1),
                                std::memory_order_relaxed)) {
      *chunk = hi - 1;
      steals_.fetch_add(1, std::memory_order_relaxed);
      g_work_steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

ParallelContext::ParallelContext(int nthreads, SchedulePolicy policy)
    : nthreads_(nthreads), policy_(policy) {
  SPTD_CHECK(nthreads >= 1, "ParallelContext: nthreads must be >= 1");
  init_parallel_runtime();
}

}  // namespace sptd
