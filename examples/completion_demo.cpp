/// \file completion_demo.cpp
/// \brief Tensor completion on a ratings-style tensor: hold out a fraction
///        of the observed entries, fit the rest, and predict the holdout.
///
///   $ ./completion_demo --rank 8 --holdout 0.2
///
/// This is SPLATT's "CP with missing values" use case: unlike plain
/// CP-ALS — which treats unobserved cells as zeros — completion fits only
/// the observed entries and can therefore *predict* the held-out ones.
/// The demo prints both models' holdout RMSE to make the difference
/// concrete.

#include <cstdio>

#include "sptd.hpp"

int main(int argc, char** argv) {
  using namespace sptd;

  Options cli("completion_demo", "tensor completion vs plain CP-ALS");
  cli.add("rank", "8", "model rank");
  cli.add("holdout", "0.2", "fraction of entries held out for testing");
  cli.add("iters", "30", "max ALS iterations");
  cli.add("reg", "1e-3", "Tikhonov regularization");
  cli.add("threads", "0", "worker threads (0 = all)");
  cli.add("seed", "42", "seed");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  int nthreads = static_cast<int>(cli.get_int("threads"));
  if (nthreads <= 0) nthreads = hardware_threads();

  // "Ratings" data: a rank-4 user x item x context tensor observed at a
  // random 4% of cells, plus noise.
  std::printf("generating a noisy rank-4 ratings tensor ...\n");
  SparseTensor observed = generate_low_rank({400, 300, 50}, 4,
                                            /*nnz=*/240000, /*noise=*/0.05,
                                            seed);
  auto [train, test] = split_train_test(
      observed, cli.get_double("holdout"), seed + 1);
  std::printf("observed %llu entries -> train %llu, holdout %llu\n",
              static_cast<unsigned long long>(observed.nnz()),
              static_cast<unsigned long long>(train.nnz()),
              static_cast<unsigned long long>(test.nnz()));

  // --- Tensor completion (fits observed entries only). ---
  CompletionOptions copts;
  copts.rank = static_cast<idx_t>(cli.get_int("rank"));
  copts.max_iterations = static_cast<int>(cli.get_int("iters"));
  copts.regularization = cli.get_double("reg");
  copts.nthreads = nthreads;
  copts.seed = seed + 2;
  const CompletionResult completion = complete_tensor(train, &test, copts);
  std::printf("\ncompletion: %d iterations\n", completion.iterations);
  std::printf("  train RMSE %.4f | holdout RMSE %.4f\n",
              completion.train_rmse.back(), completion.val_rmse.back());

  // --- Plain CP-ALS on the zero-filled tensor, for contrast. ---
  CpalsOptions aopts;
  aopts.rank = copts.rank;
  aopts.max_iterations = copts.max_iterations;
  aopts.nthreads = nthreads;
  aopts.seed = seed + 2;
  SparseTensor train_copy = train;
  const CpalsResult cpals = cp_als(train_copy, aopts);
  const double cpals_holdout = rmse(test, cpals.model, nthreads);
  std::printf("plain CP-ALS (zeros assumed): holdout RMSE %.4f\n",
              cpals_holdout);

  std::printf("\ncompletion beats zero-filled CP on held-out entries by "
              "%.1fx\n", cpals_holdout /
                  std::max(1e-12, completion.val_rmse.back()));
  return 0;
}
