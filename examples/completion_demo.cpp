/// \file completion_demo.cpp
/// \brief Tensor completion on a ratings-style tensor: hold out a fraction
///        of the observed entries, fit the rest with each of the three
///        solvers (ALS / SGD / CCD++), and predict the holdout.
///
///   $ ./completion_demo --rank 8 --holdout 0.2
///
/// This is SPLATT's "CP with missing values" use case: unlike plain
/// CP-ALS — which treats unobserved cells as zeros — completion fits only
/// the observed entries and can therefore *predict* the held-out ones.
/// The demo runs every solver of the completion subsystem on the same
/// split, then a plain CP-ALS for contrast, to make both differences
/// concrete: solver vs solver, and completion vs zero-filling.

#include <cstdio>

#include "sptd.hpp"

int main(int argc, char** argv) {
  using namespace sptd;

  Options cli("completion_demo",
              "tensor completion (als|sgd|ccd) vs plain CP-ALS");
  cli.add("rank", "8", "model rank");
  cli.add("holdout", "0.2", "fraction of entries held out for testing");
  cli.add("iters", "30", "max iterations per solver");
  cli.add("reg", "1e-3", "Tikhonov regularization");
  cli.add("lr", "0.02", "SGD learning rate");
  cli.add("decay", "0.01", "SGD learning-rate decay");
  cli.add("schedule", "weighted",
          "slice scheduling policy static|weighted|dynamic|workstealing");
  cli.add("threads", "0", "worker threads (0 = all)");
  cli.add("seed", "42", "seed");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  int nthreads = static_cast<int>(cli.get_int("threads"));
  if (nthreads <= 0) nthreads = hardware_threads();

  // "Ratings" data: a rank-4 user x item x context tensor observed at a
  // random 4% of cells, plus noise.
  std::printf("generating a noisy rank-4 ratings tensor ...\n");
  SparseTensor observed = generate_low_rank({400, 300, 50}, 4,
                                            /*nnz=*/240000, /*noise=*/0.05,
                                            seed);
  auto [train, test] = split_train_test(
      observed, cli.get_double("holdout"), seed + 1);
  std::printf("observed %llu entries -> train %llu, holdout %llu\n",
              static_cast<unsigned long long>(observed.nnz()),
              static_cast<unsigned long long>(train.nnz()),
              static_cast<unsigned long long>(test.nnz()));

  // --- The completion solvers (each fits observed entries only). ---
  CompletionOptions copts;
  copts.rank = static_cast<idx_t>(cli.get_int("rank"));
  copts.max_iterations = static_cast<int>(cli.get_int("iters"));
  copts.regularization = cli.get_double("reg");
  copts.learn_rate = cli.get_double("lr");
  copts.decay = cli.get_double("decay");
  copts.schedule = parse_schedule_policy(cli.get_string("schedule"));
  copts.nthreads = nthreads;
  copts.seed = seed + 2;

  double best_holdout = 1e30;
  std::printf("\n%-6s %10s %12s %12s %6s %6s\n", "alg", "iterations",
              "train RMSE", "holdout RMSE", "best", "sec");
  for (const auto alg :
       {CompletionAlgorithm::kAls, CompletionAlgorithm::kSgd,
        CompletionAlgorithm::kCcd}) {
    CompletionOptions opts = copts;
    opts.algorithm = alg;
    // SGD epochs are cheaper than ALS/CCD sweeps; give it more of them.
    if (alg == CompletionAlgorithm::kSgd) {
      opts.max_iterations *= 4;
    }
    WallTimer timer;
    timer.start();
    const CompletionResult r = complete_tensor(train, &test, opts);
    timer.stop();
    std::printf("%-6s %10d %12.4f %12.4f %6d %6.2f\n",
                completion_algorithm_name(alg), r.iterations,
                r.train_rmse.back(),
                r.val_rmse.empty() ? 0.0 : r.val_rmse.back(),
                r.best_iteration, timer.seconds());
    best_holdout = std::min(best_holdout, rmse(test, r.model, nthreads));
  }

  // --- Plain CP-ALS on the zero-filled tensor, for contrast. ---
  CpalsOptions aopts;
  aopts.rank = copts.rank;
  aopts.max_iterations = copts.max_iterations;
  aopts.nthreads = nthreads;
  aopts.seed = seed + 2;
  SparseTensor train_copy = train;
  const CpalsResult cpals = cp_als(train_copy, aopts);
  const double cpals_holdout = rmse(test, cpals.model, nthreads);
  std::printf("\nplain CP-ALS (zeros assumed): holdout RMSE %.4f\n",
              cpals_holdout);

  std::printf("completion beats zero-filled CP on held-out entries by "
              "%.1fx\n", cpals_holdout / std::max(1e-12, best_holdout));
  return 0;
}
