/// \file quickstart.cpp
/// \brief Smallest possible end-to-end use of the sptd public API:
///        synthesize a sparse tensor, run CP-ALS, inspect the result.
///
///   $ ./quickstart
///
/// The workflow mirrors `splatt cpd` on a FROSTT file: load (or here,
/// generate) a tensor, decompose at a chosen rank, read off the fit and
/// the per-routine runtimes the paper reports.

#include <cstdio>

#include "sptd.hpp"

int main() {
  using namespace sptd;

  // 1. A sparse tensor. Real data would come from read_tns_file(path);
  //    here we synthesize a noisy rank-5 tensor (every coordinate stored,
  //    so the decomposition has exact structure to find).
  SparseTensor x = generate_full_low_rank(/*dims=*/{40, 35, 30},
                                          /*rank=*/5, /*noise=*/0.02,
                                          /*seed=*/42);
  const TensorStats stats = compute_stats(x);
  std::printf("tensor: %s, %llu nonzeros, density %.2e\n",
              format_dims(stats.dims).c_str(),
              static_cast<unsigned long long>(stats.nnz), stats.density);

  // 2. Decompose.
  CpalsOptions opts;
  opts.rank = 8;
  opts.max_iterations = 20;
  opts.tolerance = 1e-5;
  opts.nthreads = hardware_threads();
  const CpalsResult result = cp_als(x, opts);

  // 3. Inspect.
  std::printf("CP-ALS converged after %d iterations, fit %.4f\n",
              result.iterations, result.fit_history.back());
  std::printf("per-routine runtimes (seconds):\n");
  for (int r = 0; r < kNumRoutines; ++r) {
    const auto routine = static_cast<Routine>(r);
    std::printf("  %-9s %8.4f\n", routine_name(routine),
                result.timers.seconds(routine));
  }
  std::printf("leading component weights:");
  for (idx_t r = 0; r < 5 && r < result.model.rank(); ++r) {
    std::printf(" %.3f", result.model.lambda[r]);
  }
  std::printf("\nCSF memory: %s\n",
              format_bytes(result.csf_bytes).c_str());
  return 0;
}
