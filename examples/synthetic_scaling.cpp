/// \file synthetic_scaling.cpp
/// \brief Thread-scaling study of the MTTKRP on a paper dataset preset —
///        a runnable miniature of the paper's Figures 9/10 workflow.
///
///   $ ./synthetic_scaling --preset nell-2 --scale 0.01 --threads-list 1,2,4
///
/// For each thread count, times `--reps` full mode sweeps of the MTTKRP
/// under the reference configuration and prints the runtime and speedup
/// over one thread, plus which synchronization strategy SPLATT's
/// heuristic chose per mode (the YELP-vs-NELL-2 story of Section V-D2).

#include <cstdio>

#include "sptd.hpp"

int main(int argc, char** argv) {
  using namespace sptd;

  Options cli("synthetic_scaling", "MTTKRP thread-scaling study");
  cli.add("preset", "yelp", "dataset preset");
  cli.add("scale", "0.01", "preset scale factor");
  cli.add("rank", "35", "decomposition rank");
  cli.add("reps", "5", "mode sweeps per measurement");
  cli.add("threads-list", "1,2,4,8", "thread counts to test");
  cli.add("seed", "42", "generator seed");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  const auto preset = find_preset(cli.get_string("preset"));
  const auto cfg = preset.scaled(cli.get_double("scale"),
                                 static_cast<std::uint64_t>(
                                     cli.get_int("seed")));
  std::printf("generating %s at scale %g: %s, %llu nnz ...\n",
              preset.name.c_str(), cli.get_double("scale"),
              format_dims(cfg.dims).c_str(),
              static_cast<unsigned long long>(cfg.nnz));
  SparseTensor x = generate_synthetic(cfg);

  const auto rank = static_cast<idx_t>(cli.get_int("rank"));
  const int reps = static_cast<int>(cli.get_int("reps"));
  const int order = x.order();

  // Deterministic factors shared by all runs.
  Rng rng(7);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < order; ++m) {
    factors.push_back(la::Matrix::random(x.dim(m), rank, rng));
  }

  const CsfSet set(x, CsfPolicy::kTwoMode, hardware_threads());

  std::printf("\n%8s %12s %8s  strategies per mode\n", "threads",
              "seconds", "speedup");
  double base_seconds = 0.0;
  for (const int nthreads : cli.get_int_list("threads-list")) {
    MttkrpOptions mo;
    mo.nthreads = nthreads;
    MttkrpWorkspace ws(mo, rank, order);
    std::string strategies;

    WallTimer timer;
    timer.start();
    for (int rep = 0; rep < reps; ++rep) {
      for (int mode = 0; mode < order; ++mode) {
        la::Matrix out(x.dim(mode), rank);
        mttkrp(set, factors, mode, out, ws);
        if (rep == 0) {
          if (!strategies.empty()) strategies += ", ";
          strategies += sync_strategy_name(ws.last_strategy);
        }
      }
    }
    timer.stop();

    if (base_seconds == 0.0) {
      base_seconds = timer.seconds();
    }
    std::printf("%8d %12.4f %7.2fx  [%s]\n", nthreads, timer.seconds(),
                base_seconds / timer.seconds(), strategies.c_str());
  }
  return 0;
}
