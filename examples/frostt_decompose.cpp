/// \file frostt_decompose.cpp
/// \brief Command-line CP decomposition of a FROSTT `.tns` file — the
///        `splatt cpd` workflow both codes in the paper implement.
///
///   $ ./frostt_decompose mytensor.tns --rank 35 --iters 20 --threads 8
///
/// Without a file argument, a sample tensor is generated from one of the
/// paper's dataset presets (--preset, --scale) so the example is runnable
/// offline; the code path from file parsing onward is identical.
///
/// --impl selects the paper's implementation variants: "c" (the reference
/// C/OpenMP code paths), "chapel-initial" (slice row access, sync-variable
/// locks, unoptimized sort) or "chapel-optimize" (pointer access, atomic
/// locks, optimized sort).

#include <cstdio>

#include "sptd.hpp"

int main(int argc, char** argv) {
  using namespace sptd;

  Options cli("frostt_decompose",
              "CP-ALS decomposition of a FROSTT .tns tensor");
  cli.add("rank", "35", "decomposition rank R");
  cli.add("iters", "20", "maximum CP-ALS iterations");
  cli.add("tolerance", "1e-5", "fit-improvement stopping tolerance");
  cli.add("threads", "0", "worker threads (0 = all hardware threads)");
  cli.add("impl", "c", "implementation variant: c|chapel-initial|chapel-optimize");
  cli.add("csf", "two", "CSF allocation policy: one|two|all");
  cli.add("preset", "yelp", "dataset preset when no file is given");
  cli.add("scale", "0.01", "preset scale factor (dims and nnz)");
  cli.add("seed", "42", "generator/initialization seed");
  cli.add_flag("remove-empty", "compact empty slices after loading");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  SparseTensor x = [&] {
    if (!cli.positional().empty()) {
      const std::string& path = cli.positional().front();
      std::printf("loading %s ...\n", path.c_str());
      return read_tns_file(path);
    }
    const auto cfg = find_preset(cli.get_string("preset"))
                         .scaled(cli.get_double("scale"),
                                 static_cast<std::uint64_t>(
                                     cli.get_int("seed")));
    std::printf("no file given; generating '%s' preset at scale %g ...\n",
                cli.get_string("preset").c_str(), cli.get_double("scale"));
    return generate_synthetic(cfg);
  }();

  if (cli.get_bool("remove-empty")) {
    x.remove_empty_slices();
  }
  const TensorStats stats = compute_stats(x);
  std::printf("tensor: %s | nnz %llu | density %.2e | ~%s as .tns\n",
              format_dims(stats.dims).c_str(),
              static_cast<unsigned long long>(stats.nnz), stats.density,
              format_bytes(stats.tns_bytes).c_str());

  CpalsOptions opts;
  opts.rank = static_cast<idx_t>(cli.get_int("rank"));
  opts.max_iterations = static_cast<int>(cli.get_int("iters"));
  opts.tolerance = cli.get_double("tolerance");
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  opts.nthreads = static_cast<int>(cli.get_int("threads"));
  if (opts.nthreads <= 0) {
    opts.nthreads = hardware_threads();
  }
  opts.csf_policy = parse_csf_policy(cli.get_string("csf"));
  apply_impl_variant(find_impl_variant(cli.get_string("impl")), opts);

  std::printf("running CP-ALS: rank %u, %d threads, impl '%s' ...\n",
              static_cast<unsigned>(opts.rank), opts.nthreads,
              cli.get_string("impl").c_str());
  const CpalsResult result = cp_als(x, opts);

  std::printf("\niter  fit\n");
  for (std::size_t i = 0; i < result.fit_history.size(); ++i) {
    std::printf("%4zu  %.6f\n", i + 1, result.fit_history[i]);
  }
  std::printf("\nper-routine runtimes (seconds):\n");
  for (int r = 0; r < kNumRoutines; ++r) {
    const auto routine = static_cast<Routine>(r);
    std::printf("  %-9s %8.4f\n", routine_name(routine),
                result.timers.seconds(routine));
  }
  std::printf("total %.4f s | CSF memory %s\n",
              result.timers.total_seconds(),
              format_bytes(result.csf_bytes).c_str());
  return 0;
}
