/// \file tucker_demo.cpp
/// \brief Sparse Tucker decomposition (HOOI) next to CP-ALS on the same
///        tensor — the "related kernels" side of the SPLATT toolbox.
///
///   $ ./tucker_demo --core 8x8x8 --cp-rank 16
///
/// Tucker's dense core captures inter-component interactions that CP's
/// diagonal-only model cannot; on tensors without exact CP structure it
/// typically reaches a given fit with a smaller factor footprint.

#include <cstdio>

#include "sptd.hpp"

namespace {

sptd::dims_t parse_core(const std::string& s) {
  sptd::dims_t core;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t x = s.find('x', pos);
    if (x == std::string::npos) x = s.size();
    core.push_back(static_cast<sptd::idx_t>(
        std::stoul(s.substr(pos, x - pos))));
    pos = x + 1;
  }
  return core;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sptd;

  Options cli("tucker_demo", "Tucker (HOOI) vs CP-ALS");
  cli.add("core", "8x8x8", "Tucker core dimensions");
  cli.add("cp-rank", "16", "CP rank for the comparison");
  cli.add("iters", "20", "max iterations for both");
  cli.add("preset", "yelp", "dataset preset");
  cli.add("scale", "0.005", "preset scale");
  cli.add("threads", "0", "worker threads (0 = all)");
  cli.add("seed", "42", "seed");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  int nthreads = static_cast<int>(cli.get_int("threads"));
  if (nthreads <= 0) nthreads = hardware_threads();
  const auto cfg = find_preset(cli.get_string("preset"))
                       .scaled(cli.get_double("scale"),
                               static_cast<std::uint64_t>(
                                   cli.get_int("seed")));
  std::printf("generating %s at scale %g: %s, %llu nnz\n",
              cli.get_string("preset").c_str(), cli.get_double("scale"),
              format_dims(cfg.dims).c_str(),
              static_cast<unsigned long long>(cfg.nnz));
  SparseTensor x = generate_synthetic(cfg);

  // --- Tucker / HOOI. ---
  TuckerOptions topts;
  topts.core_dims = parse_core(cli.get_string("core"));
  topts.max_iterations = static_cast<int>(cli.get_int("iters"));
  topts.nthreads = nthreads;
  WallTimer ttimer;
  ttimer.start();
  const TuckerResult tucker = tucker_hooi(x, topts);
  ttimer.stop();
  std::uint64_t tucker_params = tucker.model.core.size();
  for (const auto& f : tucker.model.factors) {
    tucker_params += f.size();
  }
  std::printf("\nTucker core %s: fit %.4f after %d iterations "
              "(%.2fs, %llu parameters)\n",
              cli.get_string("core").c_str(), tucker.fit_history.back(),
              tucker.iterations, ttimer.seconds(),
              static_cast<unsigned long long>(tucker_params));

  // --- CP-ALS. ---
  CpalsOptions copts;
  copts.rank = static_cast<idx_t>(cli.get_int("cp-rank"));
  copts.max_iterations = static_cast<int>(cli.get_int("iters"));
  copts.nthreads = nthreads;
  WallTimer ctimer;
  ctimer.start();
  const CpalsResult cp = cp_als(x, copts);
  ctimer.stop();
  std::uint64_t cp_params = cp.model.lambda.size();
  for (const auto& f : cp.model.factors) {
    cp_params += f.size();
  }
  std::printf("CP rank %lld:      fit %.4f after %d iterations "
              "(%.2fs, %llu parameters)\n",
              static_cast<long long>(cli.get_int("cp-rank")),
              cp.fit_history.back(), cp.iterations, ctimer.seconds(),
              static_cast<unsigned long long>(cp_params));
  return 0;
}
