/// \file dist_simulation.cpp
/// \brief Simulated distributed (multi-locale) CP-ALS — the paper's
///        stated future work, runnable on one machine.
///
///   $ ./dist_simulation --grid 2x2x2 --rank 8
///
/// Partitions a tensor over a locale grid exactly as SPLATT's
/// medium-grained distributed algorithm does, runs CP-ALS with every
/// inter-locale transfer accounted, and reports: fit (identical to
/// shared-memory up to reduction order), per-locale nonzero balance, and
/// per-mode communication volume — the quantities a real multi-locale
/// Chapel port would optimize.

#include <cstdio>

#include "sptd.hpp"

namespace {

sptd::dims_t parse_grid(const std::string& s) {
  sptd::dims_t grid;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t x = s.find('x', pos);
    if (x == std::string::npos) x = s.size();
    grid.push_back(static_cast<sptd::idx_t>(
        std::stoul(s.substr(pos, x - pos))));
    pos = x + 1;
  }
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sptd;

  Options cli("dist_simulation", "simulated multi-locale CP-ALS");
  cli.add("grid", "2x2x2", "locale grid, e.g. 4x1x1 or 2x2x2");
  cli.add("preset", "yelp", "dataset preset");
  cli.add("scale", "0.005", "preset scale");
  cli.add("rank", "8", "decomposition rank");
  cli.add("iters", "10", "CP-ALS iterations");
  cli.add("seed", "42", "seed");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  const auto cfg = find_preset(cli.get_string("preset"))
                       .scaled(cli.get_double("scale"),
                               static_cast<std::uint64_t>(
                                   cli.get_int("seed")));
  std::printf("generating %s at scale %g: %s, %llu nnz\n",
              cli.get_string("preset").c_str(), cli.get_double("scale"),
              format_dims(cfg.dims).c_str(),
              static_cast<unsigned long long>(cfg.nnz));
  SparseTensor x = generate_synthetic(cfg);

  DistOptions opts;
  opts.grid = parse_grid(cli.get_string("grid"));
  opts.rank = static_cast<idx_t>(cli.get_int("rank"));
  opts.max_iterations = static_cast<int>(cli.get_int("iters"));
  const DistResult r = dist_cp_als(x, opts);

  std::printf("\nlocale grid %s -> %zu locales\n",
              cli.get_string("grid").c_str(), r.locale_nnz.size());
  nnz_t min_nnz = r.locale_nnz.front(), max_nnz = 0;
  for (const nnz_t n : r.locale_nnz) {
    min_nnz = std::min(min_nnz, n);
    max_nnz = std::max(max_nnz, n);
  }
  std::printf("per-locale nonzeros: min %llu, max %llu (imbalance %.2fx)\n",
              static_cast<unsigned long long>(min_nnz),
              static_cast<unsigned long long>(max_nnz),
              static_cast<double>(max_nnz) * r.locale_nnz.size() /
                  static_cast<double>(x.nnz()));
  std::printf("final fit after %d iterations: %.4f\n", r.iterations,
              r.fit_history.back());

  std::printf("\ncommunication volume (total over %d iterations):\n",
              r.iterations);
  std::printf("%6s %14s %14s\n", "mode", "reduce", "broadcast");
  for (std::size_t m = 0; m < r.comm.reduce_bytes.size(); ++m) {
    std::printf("%6zu %14s %14s\n", m,
                format_bytes(r.comm.reduce_bytes[m]).c_str(),
                format_bytes(r.comm.broadcast_bytes[m]).c_str());
  }
  std::printf("total: %s\n", format_bytes(r.comm.total()).c_str());
  return 0;
}
