/// \file nonneg_cp_demo.cpp
/// \brief Non-negative CP (SPLATT's constrained CP): decompose a
///        non-negative tensor with and without the non-negativity
///        projection and compare interpretability and fit.
///
///   $ ./nonneg_cp_demo --rank 6

#include <cstdio>

#include "sptd.hpp"

namespace {

/// Fraction of strictly negative entries across all factors.
double negative_fraction(const sptd::KruskalModel& model) {
  std::size_t total = 0;
  std::size_t negative = 0;
  for (const auto& f : model.factors) {
    for (const sptd::val_t v : f.values()) {
      ++total;
      if (v < 0.0) ++negative;
    }
  }
  return total ? static_cast<double>(negative) / total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sptd;

  Options cli("nonneg_cp_demo", "non-negative vs unconstrained CP");
  cli.add("rank", "6", "decomposition rank");
  cli.add("iters", "30", "max iterations");
  cli.add("threads", "0", "worker threads (0 = all)");
  cli.add("seed", "42", "seed");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  int nthreads = static_cast<int>(cli.get_int("threads"));
  if (nthreads <= 0) nthreads = hardware_threads();
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // Review-score-style data: all values positive.
  std::printf("generating a positive-valued sparse tensor ...\n");
  SparseTensor x = generate_synthetic({.dims = {500, 400, 100},
                                       .nnz = 200000,
                                       .seed = seed,
                                       .zipf_exponent = 0.7,
                                       .value_lo = 1.0,
                                       .value_hi = 5.0});

  for (const bool nonneg : {false, true}) {
    SparseTensor work = x;
    CpalsOptions opts;
    opts.rank = static_cast<idx_t>(cli.get_int("rank"));
    opts.max_iterations = static_cast<int>(cli.get_int("iters"));
    opts.nthreads = nthreads;
    opts.seed = seed + 1;
    opts.nonnegative = nonneg;
    const CpalsResult r = cp_als(work, opts);
    std::printf("%-14s fit %.4f after %2d iterations, %.1f%% negative "
                "factor entries\n",
                nonneg ? "nonnegative:" : "unconstrained:",
                r.fit_history.back(), r.iterations,
                100.0 * negative_fraction(r.model));
  }
  std::printf("\nnon-negative factors trade a little fit for parts-based, "
              "directly interpretable components.\n");
  return 0;
}
