// Tests for the adaptive-width compressed CSF layer: per-level width
// selection (including the u8/u16 and u16/u32 boundary dims), typed level
// views, byte accounting, and compressed-vs-wide equivalence of MTTKRP,
// CP-ALS, and Tucker across ranks, schedules, and sync strategies.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "cpd/cpals.hpp"
#include "csf/csf.hpp"
#include "mttkrp/mttkrp.hpp"
#include "sort/sort.hpp"
#include "tensor/stats.hpp"
#include "tensor/synthetic.hpp"
#include "tucker/tucker.hpp"

namespace sptd {
namespace {

constexpr double kTol = 1e-12;

void expect_matrix_near(const la::Matrix& a, const la::Matrix& b,
                        double tol, const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  // Relative 1e-12: locked multi-thread deposits land in nondeterministic
  // order, so entries that accumulate many contributions differ by
  // round-off at their own magnitude even between two runs of the SAME
  // layout.
  double worst = 0.0;
  for (idx_t i = 0; i < a.rows(); ++i) {
    for (idx_t j = 0; j < a.cols(); ++j) {
      const double denom =
          std::max(1.0, std::max(std::abs(a(i, j)), std::abs(b(i, j))));
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)) / denom);
    }
  }
  EXPECT_LE(worst, tol) << what;
}

SparseTensor make_tensor(dims_t dims, nnz_t nnz, std::uint64_t seed,
                         double zipf = 0.5) {
  return generate_synthetic(
      {.dims = dims, .nnz = nnz, .seed = seed, .zipf_exponent = zipf});
}

// ------------------------------------------------------- width selection

TEST(CsfLayoutParse, RoundTrips) {
  for (const auto l : {CsfLayout::kCompressed, CsfLayout::kWide}) {
    EXPECT_EQ(parse_csf_layout(csf_layout_name(l)), l);
  }
  EXPECT_THROW(parse_csf_layout("narrow"), Error);
}

TEST(CsfWidthRule, FidBoundaries) {
  const auto c = CsfLayout::kCompressed;
  EXPECT_EQ(csf_fid_width_for(1, c), 1);
  EXPECT_EQ(csf_fid_width_for(255, c), 1);
  EXPECT_EQ(csf_fid_width_for(256, c), 2);
  EXPECT_EQ(csf_fid_width_for(65535, c), 2);
  EXPECT_EQ(csf_fid_width_for(65536, c), 4);
  EXPECT_EQ(csf_fid_width_for(255, CsfLayout::kWide),
            static_cast<int>(sizeof(idx_t)));
}

TEST(CsfWidthRule, PtrBoundaries) {
  const auto c = CsfLayout::kCompressed;
  EXPECT_EQ(csf_ptr_width_for(0, c), 2);
  EXPECT_EQ(csf_ptr_width_for(65535, c), 2);
  EXPECT_EQ(csf_ptr_width_for(65536, c), 4);
  EXPECT_EQ(csf_ptr_width_for((1ull << 32) - 1, c), 4);
  EXPECT_EQ(csf_ptr_width_for(1ull << 32, c), 8);
  EXPECT_EQ(csf_ptr_width_for(100, CsfLayout::kWide),
            static_cast<int>(sizeof(nnz_t)));
}

TEST(CsfCompressed, PerLevelWidthsFollowModeDims) {
  // Dims straddle both fid cutoffs: 255 -> u8, 256 -> u16, 65536 -> u32.
  SparseTensor t = make_tensor({255, 256, 65536}, 3000, 11);
  const auto order = csf_mode_order(t.dims(), -1);  // {0, 1, 2}
  sort_tensor_perm(t, order, 1);
  const CsfTensor csf(t, order);
  EXPECT_EQ(csf.layout(), CsfLayout::kCompressed);
  EXPECT_EQ(csf.fid_width(0), 1);
  EXPECT_EQ(csf.fid_width(1), 2);
  EXPECT_EQ(csf.fid_width(2), 4);
  // 3000 nonzeros: every child count fits u16.
  EXPECT_EQ(csf.ptr_width(0), 2);
  EXPECT_EQ(csf.ptr_width(1), 2);

  SparseTensor tw = t;
  const CsfTensor wide(tw, order, CsfLayout::kWide);
  for (int l = 0; l < 3; ++l) {
    EXPECT_EQ(wide.fid_width(l), static_cast<int>(sizeof(idx_t)));
  }
  EXPECT_EQ(wide.ptr_width(0), static_cast<int>(sizeof(nnz_t)));
  EXPECT_LT(csf.memory_bytes(), wide.memory_bytes());
  EXPECT_LT(csf.index_bytes(), wide.index_bytes());
}

TEST(CsfCompressed, Dim65535StaysU16) {
  SparseTensor t = make_tensor({50, 60, 65535}, 1000, 12);
  const auto order = csf_mode_order(t.dims(), -1);
  sort_tensor_perm(t, order, 1);
  const CsfTensor csf(t, order);
  EXPECT_EQ(csf.fid_width(csf.order() - 1), 2);
}

TEST(CsfCompressed, PtrWidthCrossesU16AtLargeNnz) {
  // 70000 nonzeros: the deepest fptr must index past 65535.
  SparseTensor t = make_tensor({30, 100, 500}, 70000, 13);
  const auto order = csf_mode_order(t.dims(), -1);
  sort_tensor_perm(t, order, 1);
  const CsfTensor csf(t, order);
  EXPECT_EQ(csf.ptr_width(csf.order() - 2), 4);
}

TEST(CsfCompressed, ToCooRoundTripsAcrossBoundaryDims) {
  SparseTensor t = make_tensor({255, 256, 65536}, 2500, 14);
  const auto order = csf_mode_order(t.dims(), -1);
  sort_tensor_perm(t, order, 1);
  const CsfTensor csf(t, order);
  const SparseTensor back = csf.to_coo();
  ASSERT_EQ(back.nnz(), t.nnz());
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    for (int m = 0; m < t.order(); ++m) {
      EXPECT_EQ(back.ind(m)[x], t.ind(m)[x]);
    }
    EXPECT_DOUBLE_EQ(back.vals()[x], t.vals()[x]);
  }
}

TEST(CsfCompressed, TypedLevelViewMatchesErasedAccessors) {
  SparseTensor t = make_tensor({100, 300, 50000}, 2000, 15);
  const auto order = csf_mode_order(t.dims(), -1);  // {0, 1, 2}
  sort_tensor_perm(t, order, 1);
  const CsfTensor csf(t, order);
  ASSERT_EQ(csf.fid_width(0), 1);
  ASSERT_EQ(csf.ptr_width(0), 2);
  const auto view = csf.level_view<std::uint8_t, std::uint16_t>(0);
  ASSERT_EQ(view.nfibers, csf.nfibers(0));
  for (nnz_t f = 0; f < view.nfibers; ++f) {
    EXPECT_EQ(static_cast<idx_t>(view.fids[f]), csf.fid(0, f));
    EXPECT_EQ(static_cast<nnz_t>(view.fptr[f]), csf.ptr(0, f));
  }
  // Width mismatch is an error, not a garbage view.
  EXPECT_THROW((csf.level_view<std::uint32_t, std::uint16_t>(0)), Error);
}

TEST(CsfCompressed, SetReportsLayoutAndShrinks) {
  SparseTensor tc = make_tensor({80, 200, 900}, 6000, 16);
  SparseTensor tw = tc;
  const CsfSet comp(tc, CsfPolicy::kTwoMode, 2, nullptr,
                    SortVariant::kAllOpts, CsfLayout::kCompressed);
  const CsfSet wide(tw, CsfPolicy::kTwoMode, 2, nullptr,
                    SortVariant::kAllOpts, CsfLayout::kWide);
  EXPECT_EQ(comp.layout(), CsfLayout::kCompressed);
  EXPECT_EQ(wide.layout(), CsfLayout::kWide);
  EXPECT_LT(comp.memory_bytes(), wide.memory_bytes());
}

TEST(CsfCompressed, StatsReportPerLevelWidthsAndBytes) {
  SparseTensor t = make_tensor({255, 256, 65536}, 3000, 17);
  const CsfSet set(t, CsfPolicy::kOneMode, 1);
  const CsfSetStats stats = compute_csf_stats(set);
  EXPECT_EQ(stats.layout, CsfLayout::kCompressed);
  ASSERT_EQ(stats.reps.size(), 1u);
  const CsfRepStats& rep = stats.reps.front();
  ASSERT_EQ(rep.levels.size(), 3u);
  EXPECT_EQ(rep.levels[0].fid_width, 1);
  EXPECT_EQ(rep.levels[1].fid_width, 2);
  EXPECT_EQ(rep.levels[2].fid_width, 4);
  EXPECT_EQ(rep.levels[2].ptr_width, 0);  // leaf has no fptr
  EXPECT_EQ(stats.total_bytes, set.memory_bytes());
  std::uint64_t level_bytes = 0;
  for (const auto& ls : rep.levels) {
    level_bytes += ls.fid_bytes + ls.ptr_bytes;
  }
  EXPECT_EQ(level_bytes, rep.index_bytes);
}

// --------------------------------------------- MTTKRP equivalence sweeps

/// Runs the mode-m MTTKRP over both layouts of the same tensor and
/// expects agreement within kTol.
void expect_layout_equivalence(const SparseTensor& base, idx_t rank,
                               const MttkrpOptions& opts,
                               const std::string& what,
                               CsfPolicy policy = CsfPolicy::kOneMode) {
  // One-mode policy by default so the sweep exercises all three kernel
  // levels (root, internal, leaf — the tiling strategy needs a leaf).
  SparseTensor tc = base;
  SparseTensor tw = base;
  const CsfSet comp(tc, policy, opts.nthreads, nullptr,
                    SortVariant::kAllOpts, CsfLayout::kCompressed);
  const CsfSet wide(tw, policy, opts.nthreads, nullptr,
                    SortVariant::kAllOpts, CsfLayout::kWide);
  Rng rng(99);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < base.order(); ++m) {
    factors.push_back(la::Matrix::random(base.dim(m), rank, rng));
  }
  MttkrpWorkspace ws_c(opts, rank, base.order());
  MttkrpWorkspace ws_w(opts, rank, base.order());
  for (int m = 0; m < base.order(); ++m) {
    la::Matrix out_c(base.dim(m), rank);
    la::Matrix out_w(base.dim(m), rank);
    mttkrp(comp, factors, m, out_c, ws_c);
    mttkrp(wide, factors, m, out_w, ws_w);
    EXPECT_EQ(ws_c.last_strategy, ws_w.last_strategy) << what;
    expect_matrix_near(out_c, out_w, kTol,
                       what + " mode " + std::to_string(m));
  }
}

struct SyncConfig {
  const char* name;
  void (*apply)(MttkrpOptions&);
};

const SyncConfig kSyncConfigs[] = {
    {"default", [](MttkrpOptions&) {}},
    {"locks", [](MttkrpOptions& o) { o.force_locks = true; }},
    {"privatize",
     [](MttkrpOptions& o) { o.privatization_threshold = 1e18; }},
    {"tiling", [](MttkrpOptions& o) { o.use_tiling = true; }},
};

TEST(CsfCompressedMttkrp, MatchesWideAcrossRanksSchedulesSyncs) {
  // Ranks cover the kernel-dispatch tiers: 3 = generic runtime-rank
  // loops, 8/16 = exact fixed-width instantiations, 35 = the paper's
  // default riding its padded width (40).
  const SparseTensor base = make_tensor({40, 300, 500}, 4000, 21, 0.7);
  for (const idx_t rank : {3u, 8u, 16u, 35u}) {
    for (const auto schedule :
         {SchedulePolicy::kStatic, SchedulePolicy::kWeighted,
          SchedulePolicy::kDynamic, SchedulePolicy::kWorkStealing}) {
      for (const SyncConfig& sync : kSyncConfigs) {
        MttkrpOptions opts;
        opts.nthreads = 3;
        opts.schedule = schedule;
        sync.apply(opts);
        expect_layout_equivalence(
            base, rank, opts,
            std::string("rank ") + std::to_string(rank) + " " +
                schedule_policy_name(schedule) + " " + sync.name);
      }
    }
  }
}

TEST(CsfCompressedMttkrp, MatchesWideUnderGenericRowAccess) {
  // The slice/2d ablation bundles run the width-erased view on
  // compressed tensors; they must still agree with wide exactly.
  const SparseTensor base = make_tensor({40, 300, 500}, 4000, 22, 0.7);
  for (const auto ra :
       {RowAccess::kSlice, RowAccess::kIndex2D, RowAccess::kPointer}) {
    MttkrpOptions opts;
    opts.nthreads = 2;
    opts.row_access = ra;
    opts.use_fixed_kernels = false;
    expect_layout_equivalence(base, 8, opts,
                              std::string("row access ") +
                                  row_access_name(ra));
  }
}

TEST(CsfCompressedMttkrp, MatchesWideOnBoundaryWidthTensors) {
  // Straddles every fid cutoff; small nnz keeps the deepest fptr at u16,
  // so the erased-view fallback is what executes for compressed.
  const SparseTensor boundary = make_tensor({255, 256, 65536}, 3000, 23);
  // Large-nnz tensor: leaf fids u16, deepest fptr u32 — the typed
  // (u16, u32) fast path.
  const SparseTensor tall = make_tensor({30, 100, 500}, 70000, 24);
  // Large-dim + large-nnz: leaf fids u32, deepest fptr u32 — the typed
  // (u32, u32) fast path.
  const SparseTensor huge = make_tensor({20, 50, 70000}, 70000, 25);
  for (const SparseTensor* t : {&boundary, &tall, &huge}) {
    for (const idx_t rank : {8u, 16u}) {
      MttkrpOptions opts;
      opts.nthreads = 3;
      opts.schedule = SchedulePolicy::kWeighted;
      expect_layout_equivalence(*t, rank, opts, "boundary tensor");
    }
  }
}

TEST(CsfCompressedMttkrp, MatchesWideUnderTwoAndAllModePolicies) {
  const SparseTensor base = make_tensor({40, 300, 500}, 4000, 27, 0.7);
  for (const auto policy : {CsfPolicy::kTwoMode, CsfPolicy::kAllMode}) {
    MttkrpOptions opts;
    opts.nthreads = 3;
    expect_layout_equivalence(base, 16, opts, "policy sweep", policy);
  }
}

TEST(CsfCompressedMttkrp, MatchesWideOnOrder2And4) {
  for (const auto& dims : {dims_t{300, 500}, dims_t{20, 30, 40, 50}}) {
    MttkrpOptions opts;
    opts.nthreads = 2;
    expect_layout_equivalence(make_tensor(dims, 2500, 26), 8, opts,
                              "order " + std::to_string(dims.size()));
  }
}

// ----------------------------------------------- CP-ALS / Tucker parity

TEST(CsfCompressedCpals, FitAndFactorsMatchWide) {
  const SparseTensor base = make_tensor({60, 150, 220}, 5000, 31, 0.6);
  CpalsOptions opts;
  opts.rank = 8;
  opts.max_iterations = 5;
  opts.tolerance = 0.0;
  opts.nthreads = 2;
  SparseTensor tc = base;
  SparseTensor tw = base;
  opts.csf_layout = CsfLayout::kCompressed;
  const CpalsResult rc = cp_als(tc, opts);
  opts.csf_layout = CsfLayout::kWide;
  const CpalsResult rw = cp_als(tw, opts);
  ASSERT_EQ(rc.fit_history.size(), rw.fit_history.size());
  for (std::size_t i = 0; i < rc.fit_history.size(); ++i) {
    EXPECT_NEAR(rc.fit_history[i], rw.fit_history[i], kTol);
  }
  for (int m = 0; m < base.order(); ++m) {
    expect_matrix_near(rc.model.factors[static_cast<std::size_t>(m)],
                       rw.model.factors[static_cast<std::size_t>(m)], kTol,
                       "cpals factor " + std::to_string(m));
  }
  EXPECT_LT(rc.csf_bytes, rw.csf_bytes);
}

TEST(CsfCompressedTucker, FitMatchesWide) {
  const SparseTensor base = make_tensor({40, 60, 90}, 3000, 32, 0.4);
  TuckerOptions opts;
  opts.core_dims = {3, 3, 3};
  opts.max_iterations = 4;
  opts.tolerance = 0.0;
  opts.nthreads = 2;
  opts.csf_layout = CsfLayout::kCompressed;
  const TuckerResult rc = tucker_hooi(base, opts);
  opts.csf_layout = CsfLayout::kWide;
  const TuckerResult rw = tucker_hooi(base, opts);
  ASSERT_EQ(rc.fit_history.size(), rw.fit_history.size());
  for (std::size_t i = 0; i < rc.fit_history.size(); ++i) {
    EXPECT_NEAR(rc.fit_history[i], rw.fit_history[i], kTol);
  }
  for (std::size_t i = 0; i < rc.model.core.size(); ++i) {
    EXPECT_NEAR(rc.model.core[i], rw.model.core[i], 1e-9);
  }
}

}  // namespace
}  // namespace sptd
