// Tests for src/tucker (+ la/eigen): symmetric eigensolver, sparse TTMc
// vs a dense oracle, HOOI convergence and model invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/error.hpp"
#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "tensor/dense.hpp"
#include "tensor/synthetic.hpp"
#include "tucker/tucker.hpp"

namespace sptd {
namespace {

// ----------------------------------------------------------------- eigen

TEST(Eigen, DiagonalMatrix) {
  la::Matrix a(3, 3);
  a(0, 0) = 1;
  a(1, 1) = 5;
  a(2, 2) = 3;
  std::vector<val_t> evals(3);
  la::Matrix evecs(3, 3);
  la::symmetric_eigen(a, evals, evecs);
  EXPECT_DOUBLE_EQ(evals[0], 5.0);
  EXPECT_DOUBLE_EQ(evals[1], 3.0);
  EXPECT_DOUBLE_EQ(evals[2], 1.0);
  // Eigenvector of the top eigenvalue is +-e_1.
  EXPECT_NEAR(std::abs(evecs(1, 0)), 1.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2, 1], [1, 2]]: eigenvalues 3 and 1.
  la::Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  std::vector<val_t> evals(2);
  la::Matrix evecs(2, 2);
  la::symmetric_eigen(a, evals, evecs);
  EXPECT_NEAR(evals[0], 3.0, 1e-12);
  EXPECT_NEAR(evals[1], 1.0, 1e-12);
}

TEST(Eigen, ReconstructsRandomSymmetric) {
  Rng rng(70);
  const la::Matrix b = la::Matrix::random(12, 8, rng);
  la::Matrix a(8, 8);
  la::ata(b, a, 1);
  std::vector<val_t> evals(8);
  la::Matrix evecs(8, 8);
  la::symmetric_eigen(a, evals, evecs);
  // V diag(evals) V^T must reproduce a.
  la::Matrix rebuilt(8, 8);
  for (idx_t i = 0; i < 8; ++i) {
    for (idx_t j = 0; j < 8; ++j) {
      val_t sum = 0;
      for (idx_t r = 0; r < 8; ++r) {
        sum += evecs(i, r) * evals[r] * evecs(j, r);
      }
      rebuilt(i, j) = sum;
    }
  }
  EXPECT_LT(rebuilt.max_abs_diff(a), 1e-8);
}

TEST(Eigen, EigenvectorsAreOrthonormal) {
  Rng rng(71);
  const la::Matrix b = la::Matrix::random(10, 6, rng);
  la::Matrix a(6, 6);
  la::ata(b, a, 1);
  std::vector<val_t> evals(6);
  la::Matrix evecs(6, 6);
  la::symmetric_eigen(a, evals, evecs);
  for (idx_t p = 0; p < 6; ++p) {
    for (idx_t q = 0; q < 6; ++q) {
      val_t dot = 0;
      for (idx_t i = 0; i < 6; ++i) {
        dot += evecs(i, p) * evecs(i, q);
      }
      EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Eigen, PsdEigenvaluesNonnegativeAndSorted) {
  Rng rng(72);
  const la::Matrix b = la::Matrix::random(9, 9, rng);
  la::Matrix a(9, 9);
  la::ata(b, a, 1);
  std::vector<val_t> evals(9);
  la::Matrix evecs(9, 9);
  la::symmetric_eigen(a, evals, evecs);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_GE(evals[i], -1e-10);
    if (i > 0) {
      EXPECT_LE(evals[i], evals[i - 1] + 1e-12);
    }
  }
}

// ------------------------------------------------------------------ ttmc

/// Dense TTMc oracle matching ttmc()'s column convention (mode 0
/// fastest among the non-skipped modes, descending construction).
la::Matrix dense_ttmc(const SparseTensor& x,
                      const std::vector<la::Matrix>& factors, int mode) {
  const int order = x.order();
  std::size_t k = 1;
  for (int n = 0; n < order; ++n) {
    if (n != mode) {
      k *= factors[static_cast<std::size_t>(n)].cols();
    }
  }
  la::Matrix out(x.dim(mode), static_cast<idx_t>(k));
  // Enumerate core coordinates for the non-skipped modes.
  for (nnz_t xi = 0; xi < x.nnz(); ++xi) {
    std::vector<idx_t> j(static_cast<std::size_t>(order), 0);
    for (std::size_t col = 0; col < k; ++col) {
      // Decode col: mode 0 fastest among non-skipped.
      std::size_t rem = col;
      for (int n = 0; n < order; ++n) {
        if (n == mode) continue;
        const idx_t r = factors[static_cast<std::size_t>(n)].cols();
        j[static_cast<std::size_t>(n)] = static_cast<idx_t>(rem % r);
        rem /= r;
      }
      val_t prod = x.vals()[xi];
      for (int n = 0; n < order; ++n) {
        if (n == mode) continue;
        prod *= factors[static_cast<std::size_t>(n)](
            x.ind(n)[xi], j[static_cast<std::size_t>(n)]);
      }
      out(x.ind(mode)[xi], static_cast<idx_t>(col)) += prod;
    }
  }
  return out;
}

class TtmcTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TtmcTest, MatchesDenseOracle) {
  const auto [mode, nthreads] = GetParam();
  const SparseTensor x = generate_synthetic(
      {.dims = {12, 10, 8}, .nnz = 300, .seed = 7000});
  Rng rng(73);
  std::vector<la::Matrix> factors;
  const idx_t ranks[] = {3, 4, 2};
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(x.dim(m), ranks[m], rng));
  }
  std::size_t k = 1;
  for (int n = 0; n < 3; ++n) {
    if (n != mode) k *= ranks[n];
  }
  la::Matrix out(x.dim(mode), static_cast<idx_t>(k));
  ttmc(x, factors, mode, out, nthreads);
  const la::Matrix expected = dense_ttmc(x, factors, mode);
  EXPECT_LT(out.max_abs_diff(expected), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(ModesThreads, TtmcTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 4)));

TEST(Ttmc, HigherOrder) {
  const SparseTensor x = generate_synthetic(
      {.dims = {8, 7, 6, 5}, .nnz = 250, .seed = 7001});
  Rng rng(74);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 4; ++m) {
    factors.push_back(la::Matrix::random(x.dim(m), 2, rng));
  }
  la::Matrix out(x.dim(1), 8);  // 2*2*2 columns
  ttmc(x, factors, 1, out, 2);
  const la::Matrix expected = dense_ttmc(x, factors, 1);
  EXPECT_LT(out.max_abs_diff(expected), 1e-10);
}

TEST(Ttmc, RejectsBadShapes) {
  const SparseTensor x = generate_synthetic(
      {.dims = {6, 6, 6}, .nnz = 50, .seed = 7002});
  Rng rng(75);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(6, 2, rng));
  }
  la::Matrix bad(6, 3);  // should be 4 columns
  EXPECT_THROW(ttmc(x, factors, 0, bad, 1), Error);
}

// -------------------------------------------------------------- ttmc_csf

class TtmcCsfTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(TtmcCsfTest, MatchesCooTtmc) {
  const auto [root, nthreads] = GetParam();
  const SparseTensor x = generate_synthetic(
      {.dims = {18, 14, 10}, .nnz = 500, .seed = 7100,
       .zipf_exponent = 0.5});
  Rng rng(77);
  std::vector<la::Matrix> factors;
  const idx_t ranks[] = {3, 4, 2};
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(x.dim(m), ranks[m], rng));
  }
  SparseTensor sorted = x;
  const auto mode_order = csf_mode_order(x.dims(), root);
  sort_tensor_perm(sorted, mode_order, 1);
  const CsfTensor csf(sorted, mode_order);

  std::size_t k = 1;
  for (int n = 0; n < 3; ++n) {
    if (n != root) k *= ranks[n];
  }
  la::Matrix via_csf(x.dim(root), static_cast<idx_t>(k));
  ttmc_csf(csf, factors, via_csf, nthreads);
  la::Matrix via_coo(x.dim(root), static_cast<idx_t>(k));
  ttmc(x, factors, root, via_coo, 1);
  EXPECT_LT(via_csf.max_abs_diff(via_coo), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RootsThreads, TtmcCsfTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 4)));

TEST(TtmcCsf, HigherOrder) {
  const SparseTensor x = generate_synthetic(
      {.dims = {9, 8, 7, 6}, .nnz = 300, .seed = 7101});
  Rng rng(78);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 4; ++m) {
    factors.push_back(la::Matrix::random(x.dim(m), 2, rng));
  }
  SparseTensor sorted = x;
  const auto mode_order = csf_mode_order(x.dims(), 2);
  sort_tensor_perm(sorted, mode_order, 1);
  const CsfTensor csf(sorted, mode_order);
  la::Matrix via_csf(x.dim(2), 8);
  ttmc_csf(csf, factors, via_csf, 2);
  la::Matrix via_coo(x.dim(2), 8);
  ttmc(x, factors, 2, via_coo, 1);
  EXPECT_LT(via_csf.max_abs_diff(via_coo), 1e-10);
}

TEST(TtmcCsf, RejectsBadOutputShape) {
  const SparseTensor x = generate_synthetic(
      {.dims = {8, 8, 8}, .nnz = 60, .seed = 7102});
  Rng rng(79);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(8, 2, rng));
  }
  SparseTensor sorted = x;
  const auto mode_order = csf_mode_order(x.dims(), 0);
  sort_tensor_perm(sorted, mode_order, 1);
  const CsfTensor csf(sorted, mode_order);
  la::Matrix bad(8, 3);
  EXPECT_THROW(ttmc_csf(csf, factors, bad, 1), Error);
}

// ------------------------------------------------------------------ hooi

TEST(Hooi, FactorsAreOrthonormal) {
  const SparseTensor x = generate_synthetic(
      {.dims = {20, 18, 16}, .nnz = 800, .seed = 7003});
  TuckerOptions opts;
  opts.core_dims = {4, 3, 5};
  opts.max_iterations = 5;
  opts.tolerance = 0.0;
  opts.nthreads = 2;
  const TuckerResult r = tucker_hooi(x, opts);
  for (int m = 0; m < 3; ++m) {
    const la::Matrix& u = r.model.factors[static_cast<std::size_t>(m)];
    for (idx_t p = 0; p < u.cols(); ++p) {
      for (idx_t q = 0; q < u.cols(); ++q) {
        val_t dot = 0;
        for (idx_t i = 0; i < u.rows(); ++i) {
          dot += u(i, p) * u(i, q);
        }
        EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-8)
            << "mode " << m << " columns " << p << "," << q;
      }
    }
  }
}

TEST(Hooi, FitImprovesAndIsBounded) {
  const SparseTensor x = generate_synthetic(
      {.dims = {25, 20, 15}, .nnz = 1500, .seed = 7004,
       .zipf_exponent = 0.4});
  TuckerOptions opts;
  opts.core_dims = {5, 5, 5};
  opts.max_iterations = 10;
  opts.tolerance = 0.0;
  const TuckerResult r = tucker_hooi(x, opts);
  ASSERT_EQ(r.fit_history.size(), 10u);
  for (std::size_t i = 0; i < r.fit_history.size(); ++i) {
    EXPECT_GE(r.fit_history[i], -1e-9);
    EXPECT_LE(r.fit_history[i], 1.0);
    if (i > 0) {
      EXPECT_GE(r.fit_history[i], r.fit_history[i - 1] - 1e-8);
    }
  }
}

TEST(Hooi, ExactRecoveryOfLowMultilinearRankTensor) {
  // Build X = G x U0 x U1 x U2 exactly (dense content in sparse form);
  // HOOI with the true core dims must reach fit ~1.
  Rng rng(76);
  const dims_t dims = {12, 10, 8};
  const dims_t core_dims = {3, 2, 2};
  std::vector<la::Matrix> gen;
  for (int m = 0; m < 3; ++m) {
    gen.push_back(la::Matrix::random(dims[static_cast<std::size_t>(m)],
                                     core_dims[static_cast<std::size_t>(m)],
                                     rng));
  }
  std::vector<val_t> core(3 * 2 * 2);
  for (auto& v : core) {
    v = rng.next_double(-1.0, 1.0);
  }
  SparseTensor x(dims);
  std::array<idx_t, kMaxOrder> c{};
  for (idx_t i = 0; i < dims[0]; ++i) {
    for (idx_t j = 0; j < dims[1]; ++j) {
      for (idx_t k = 0; k < dims[2]; ++k) {
        val_t sum = 0;
        std::size_t off = 0;
        for (idx_t a = 0; a < core_dims[0]; ++a) {
          for (idx_t b = 0; b < core_dims[1]; ++b) {
            for (idx_t d = 0; d < core_dims[2]; ++d, ++off) {
              sum += core[off] * gen[0](i, a) * gen[1](j, b) *
                     gen[2](k, d);
            }
          }
        }
        c[0] = i;
        c[1] = j;
        c[2] = k;
        x.push_back({c.data(), 3}, sum);
      }
    }
  }

  TuckerOptions opts;
  opts.core_dims = core_dims;
  opts.max_iterations = 40;
  opts.tolerance = 0.0;
  opts.nthreads = 2;
  const TuckerResult r = tucker_hooi(x, opts);
  EXPECT_GT(r.fit_history.back(), 0.9999);

  // The returned model must reconstruct X pointwise.
  val_t worst = 0;
  for (nnz_t n = 0; n < x.nnz(); ++n) {
    const auto coord = x.coord(n);
    worst = std::max(worst, std::abs(x.vals()[n] -
                                     r.model.value_at({coord.data(), 3})));
  }
  EXPECT_LT(worst, 1e-6);
}

TEST(Hooi, CoreNormMatchesFitIdentity) {
  const SparseTensor x = generate_synthetic(
      {.dims = {15, 12, 10}, .nnz = 600, .seed = 7005});
  TuckerOptions opts;
  opts.core_dims = {4, 4, 4};
  opts.max_iterations = 8;
  opts.tolerance = 0.0;
  const TuckerResult r = tucker_hooi(x, opts);
  const double fit_from_core =
      1.0 - std::sqrt(std::max(0.0, static_cast<double>(
                                        x.norm_sq() -
                                        r.model.core_norm_sq()))) /
                std::sqrt(static_cast<double>(x.norm_sq()));
  EXPECT_NEAR(r.fit_history.back(), fit_from_core, 1e-6);
}

TEST(Hooi, EarlyStopHonorsTolerance) {
  const SparseTensor x = generate_synthetic(
      {.dims = {15, 15, 15}, .nnz = 700, .seed = 7006});
  TuckerOptions opts;
  opts.core_dims = {3, 3, 3};
  opts.max_iterations = 100;
  opts.tolerance = 1e-4;
  const TuckerResult r = tucker_hooi(x, opts);
  EXPECT_LT(r.iterations, 100);
}

TEST(Hooi, CsfAndCooPathsAgree) {
  const SparseTensor x = generate_synthetic(
      {.dims = {16, 13, 11}, .nnz = 500, .seed = 7200,
       .zipf_exponent = 0.5});
  TuckerOptions opts;
  opts.core_dims = {3, 3, 3};
  opts.max_iterations = 4;
  opts.tolerance = 0.0;
  opts.use_csf = true;
  const TuckerResult with_csf = tucker_hooi(x, opts);
  opts.use_csf = false;
  const TuckerResult with_coo = tucker_hooi(x, opts);
  ASSERT_EQ(with_csf.fit_history.size(), with_coo.fit_history.size());
  for (std::size_t i = 0; i < with_csf.fit_history.size(); ++i) {
    EXPECT_NEAR(with_csf.fit_history[i], with_coo.fit_history[i], 1e-10);
  }
}

TEST(Hooi, DeterministicInSeed) {
  const SparseTensor x = generate_synthetic(
      {.dims = {14, 12, 10}, .nnz = 500, .seed = 7007});
  TuckerOptions opts;
  opts.core_dims = {3, 3, 3};
  opts.max_iterations = 4;
  opts.tolerance = 0.0;
  const TuckerResult a = tucker_hooi(x, opts);
  const TuckerResult b = tucker_hooi(x, opts);
  ASSERT_EQ(a.fit_history.size(), b.fit_history.size());
  for (std::size_t i = 0; i < a.fit_history.size(); ++i) {
    EXPECT_EQ(a.fit_history[i], b.fit_history[i]);
  }
}

TEST(Hooi, RejectsBadArguments) {
  const SparseTensor x = generate_synthetic(
      {.dims = {10, 10, 10}, .nnz = 100, .seed = 7008});
  TuckerOptions opts;
  opts.core_dims = {3, 3};  // wrong order
  EXPECT_THROW(tucker_hooi(x, opts), Error);
  opts.core_dims = {3, 3, 100};  // core dim > mode length
  EXPECT_THROW(tucker_hooi(x, opts), Error);
  opts.core_dims = {3, 3, 0};
  EXPECT_THROW(tucker_hooi(x, opts), Error);
}

}  // namespace
}  // namespace sptd
