// Tests for src/sort: all four paper variants must produce identical,
// correctly sorted permutations of the nonzeros.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "csf/csf.hpp"
#include "sort/sort.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

/// Multiset of (coords, value) for permutation-invariance checks.
using Entry = std::pair<std::array<idx_t, kMaxOrder>, val_t>;

std::vector<Entry> entries_of(const SparseTensor& t) {
  std::vector<Entry> out;
  out.reserve(t.nnz());
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    out.emplace_back(t.coord(x), t.vals()[x]);
  }
  return out;
}

std::vector<Entry> sorted_entries(const SparseTensor& t) {
  auto e = entries_of(t);
  std::sort(e.begin(), e.end());
  return e;
}

TEST(SortVariantParse, RoundTrips) {
  for (const auto v : {SortVariant::kInitial, SortVariant::kArrayOpt,
                       SortVariant::kSlicesOpt, SortVariant::kAllOpts}) {
    EXPECT_EQ(parse_sort_variant(sort_variant_name(v)), v);
  }
  EXPECT_THROW(parse_sort_variant("bogus"), Error);
}

TEST(SortModeOrder, CyclicConvention) {
  EXPECT_EQ(sort_mode_order(3, 0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sort_mode_order(3, 1), (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(sort_mode_order(3, 2), (std::vector<int>{2, 0, 1}));
  EXPECT_EQ(sort_mode_order(4, 2), (std::vector<int>{2, 3, 0, 1}));
}

// Sweep: every variant x primary mode x thread count sorts correctly and
// preserves the multiset of nonzeros.
class SortSweepTest
    : public ::testing::TestWithParam<std::tuple<SortVariant, int, int>> {};

TEST_P(SortSweepTest, SortsAndPreservesEntries) {
  const auto [variant, mode, nthreads] = GetParam();
  SparseTensor t = generate_synthetic(
      {.dims = {60, 40, 50}, .nnz = 8000, .seed = 77, .zipf_exponent = 0.7});
  const auto before = sorted_entries(t);
  sort_tensor(t, mode, nthreads, variant);
  EXPECT_TRUE(is_sorted(t, mode));
  EXPECT_EQ(sorted_entries(t), before);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsModesThreads, SortSweepTest,
    ::testing::Combine(
        ::testing::Values(SortVariant::kInitial, SortVariant::kArrayOpt,
                          SortVariant::kSlicesOpt, SortVariant::kAllOpts),
        ::testing::Values(0, 1, 2), ::testing::Values(1, 4)));

TEST(Sort, VariantsProduceIdenticalOrder) {
  // All four variants implement the same sort; the resulting nonzero
  // sequences must be identical element-for-element.
  const SparseTensor base = generate_synthetic(
      {.dims = {30, 30, 30}, .nnz = 5000, .seed = 78});
  std::vector<std::vector<Entry>> results;
  for (const auto variant :
       {SortVariant::kInitial, SortVariant::kArrayOpt,
        SortVariant::kSlicesOpt, SortVariant::kAllOpts}) {
    SparseTensor t = base;
    sort_tensor(t, 1, 2, variant);
    results.push_back(entries_of(t));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]);
  }
}

TEST(Sort, ArbitraryPermutation) {
  SparseTensor t = generate_synthetic(
      {.dims = {20, 25, 30, 15}, .nnz = 3000, .seed = 79});
  const std::vector<int> perm = {2, 0, 3, 1};
  const auto before = sorted_entries(t);
  sort_tensor_perm(t, perm, 3);
  EXPECT_TRUE(is_sorted_perm(t, perm));
  EXPECT_EQ(sorted_entries(t), before);
}

TEST(Sort, AlreadySortedIsStableNoop) {
  SparseTensor t = generate_synthetic(
      {.dims = {40, 40, 40}, .nnz = 2000, .seed = 80});
  sort_tensor(t, 0, 2);
  const auto once = entries_of(t);
  sort_tensor(t, 0, 2);
  EXPECT_EQ(entries_of(t), once);
}

TEST(Sort, SecondaryKeysFullyOrdered) {
  // Within a primary slice, entries must be ordered by the cyclic
  // secondary modes — verify explicitly rather than via is_sorted.
  SparseTensor t = generate_synthetic(
      {.dims = {5, 100, 100}, .nnz = 5000, .seed = 81});
  sort_tensor(t, 0, 2);
  for (nnz_t x = 1; x < t.nnz(); ++x) {
    if (t.ind(0)[x] == t.ind(0)[x - 1]) {
      const auto a1 = t.ind(1)[x - 1], b1 = t.ind(1)[x];
      EXPECT_LE(a1, b1);
      if (a1 == b1) {
        EXPECT_LE(t.ind(2)[x - 1], t.ind(2)[x]);
      }
    }
  }
}

TEST(Sort, EmptyAndSingletonTensors) {
  SparseTensor empty({4, 4, 4});
  sort_tensor(empty, 0, 2);  // no-op, must not crash
  EXPECT_EQ(empty.nnz(), 0u);

  SparseTensor one({4, 4, 4});
  const idx_t c[] = {3, 1, 2};
  one.push_back(c, 5.0);
  sort_tensor(one, 2, 2);
  EXPECT_EQ(one.nnz(), 1u);
  EXPECT_EQ(one.coord(0)[0], 3u);
}

TEST(Sort, DuplicateCoordinatesSurvive) {
  SparseTensor t({8, 8});
  const idx_t c[] = {3, 3};
  t.push_back(c, 1.0);
  t.push_back(c, 2.0);
  const idx_t c2[] = {1, 5};
  t.push_back(c2, 3.0);
  sort_tensor(t, 0, 1);
  EXPECT_EQ(t.nnz(), 3u);
  EXPECT_TRUE(is_sorted(t, 0));
  // Both duplicates present with summed multiset of values.
  val_t dup_sum = 0;
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    if (t.ind(0)[x] == 3) dup_sum += t.vals()[x];
  }
  EXPECT_DOUBLE_EQ(dup_sum, 3.0);
}

TEST(Sort, HeavilySkewedSlices) {
  // One giant slice stresses the per-slice quicksort and the weighted
  // thread partition.
  SparseTensor t({4, 2000, 2000});
  Rng rng(123);
  for (int i = 0; i < 20000; ++i) {
    const idx_t c[] = {0, rng.next_index(2000), rng.next_index(2000)};
    t.push_back(c, 1.0);
  }
  const idx_t c[] = {2, 7, 9};
  t.push_back(c, 2.0);
  sort_tensor(t, 0, 4);
  EXPECT_TRUE(is_sorted(t, 0));
}

TEST(Sort, OrderTwoTensor) {
  SparseTensor t = generate_synthetic({.dims = {50, 60}, .nnz = 1000,
                                       .seed = 82});
  sort_tensor(t, 1, 2);
  EXPECT_TRUE(is_sorted(t, 1));
}

TEST(Sort, AlreadySortedFastPathSkipsResort) {
  SparseTensor t = generate_synthetic({.dims = {60, 70, 80}, .nnz = 3000,
                                       .seed = 84});
  const std::vector<int> perm = {1, 0, 2};
  sort_tensor_perm(t, perm, 2);
  ASSERT_TRUE(is_sorted_perm(t, perm));
  const SparseTensor before = t;
  const std::uint64_t hits = sort_fastpath_hits();
  // Re-sorting an already-ordered tensor must take the pre-scan exit and
  // leave the nonzeros byte-identical (no duplicate reshuffling).
  sort_tensor_perm(t, perm, 2);
  EXPECT_EQ(sort_fastpath_hits(), hits + 1);
  for (int m = 0; m < t.order(); ++m) {
    for (nnz_t x = 0; x < t.nnz(); ++x) {
      ASSERT_EQ(t.ind(m)[x], before.ind(m)[x]);
    }
  }
  // A different order is NOT sorted: the fast path must not fire.
  const std::vector<int> other = {2, 1, 0};
  sort_tensor_perm(t, other, 2);
  EXPECT_EQ(sort_fastpath_hits(), hits + 1);
  EXPECT_TRUE(is_sorted_perm(t, other));
}

TEST(Sort, CsfSetRebuildHitsFastPath) {
  SparseTensor t = generate_synthetic({.dims = {40, 50, 60}, .nnz = 2000,
                                       .seed = 85});
  const CsfSet first(t, CsfPolicy::kOneMode, 2);
  const std::uint64_t hits = sort_fastpath_hits();
  // The tensor is now ordered by the one-mode representation's order; a
  // second build over the same COO skips its sort entirely.
  const CsfSet second(t, CsfPolicy::kOneMode, 2);
  EXPECT_EQ(sort_fastpath_hits(), hits + 1);
  EXPECT_EQ(second.memory_bytes(), first.memory_bytes());
}

TEST(Sort, InvalidArgumentsThrow) {
  SparseTensor t = generate_synthetic({.dims = {10, 10}, .nnz = 20,
                                       .seed = 83});
  EXPECT_THROW(sort_tensor(t, 5, 1), Error);
  EXPECT_THROW(sort_tensor(t, 0, 0), Error);
  const std::vector<int> bad_perm = {0};
  EXPECT_THROW(sort_tensor_perm(t, bad_perm, 1), Error);
}

}  // namespace
}  // namespace sptd
