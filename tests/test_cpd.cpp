// Tests for src/cpd: Kruskal model invariants and CP-ALS behaviour
// (fit improvement, low-rank recovery, determinism, timer coverage).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/error.hpp"
#include "cpd/cpals.hpp"
#include "cpd/kruskal.hpp"
#include "tensor/dense.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

/// Exactly rank-4 tensor (every coordinate stored): CP-ALS must fit ~1.
SparseTensor low_rank_tensor(std::uint64_t seed = 1000) {
  return generate_full_low_rank({18, 15, 12}, /*rank=*/4, /*noise=*/0.0,
                                seed);
}

// --------------------------------------------------------------- kruskal

TEST(Kruskal, ValueAtMatchesDenseReconstruction) {
  Rng rng(55);
  KruskalModel model;
  model.lambda = {2.0, 0.5, 1.5};
  model.factors.push_back(la::Matrix::random(6, 3, rng));
  model.factors.push_back(la::Matrix::random(5, 3, rng));
  model.factors.push_back(la::Matrix::random(4, 3, rng));
  const DenseTensor dense =
      DenseTensor::from_kruskal(model.lambda, model.factors);
  for (idx_t i = 0; i < 6; ++i) {
    for (idx_t j = 0; j < 5; ++j) {
      for (idx_t k = 0; k < 4; ++k) {
        const idx_t c[] = {i, j, k};
        EXPECT_NEAR(model.value_at(c), dense.at(c), 1e-12);
      }
    }
  }
}

TEST(Kruskal, NormSqMatchesDense) {
  Rng rng(56);
  KruskalModel model;
  model.lambda = {1.0, 2.0};
  model.factors.push_back(la::Matrix::random(7, 2, rng));
  model.factors.push_back(la::Matrix::random(8, 2, rng));
  model.factors.push_back(la::Matrix::random(9, 2, rng));
  const DenseTensor dense =
      DenseTensor::from_kruskal(model.lambda, model.factors);
  EXPECT_NEAR(model.norm_sq(2), dense.norm_sq(),
              1e-9 * std::max(1.0, dense.norm_sq()));
}

TEST(Kruskal, InnerMatchesExplicitSum) {
  Rng rng(57);
  KruskalModel model;
  model.lambda = {1.5};
  model.factors.push_back(la::Matrix::random(5, 1, rng));
  model.factors.push_back(la::Matrix::random(5, 1, rng));
  SparseTensor x({5, 5});
  const idx_t c0[] = {1, 2};
  const idx_t c1[] = {4, 0};
  x.push_back(c0, 2.0);
  x.push_back(c1, -1.0);
  const val_t expected = 2.0 * model.value_at(c0) - 1.0 * model.value_at(c1);
  EXPECT_NEAR(kruskal_inner(x, model, 2), expected, 1e-12);
}

TEST(Kruskal, PerfectModelHasFitOne) {
  // Build a sparse tensor exactly from a model; its fit must be ~1.
  Rng rng(58);
  KruskalModel model;
  model.lambda = {1.0, 1.0};
  model.factors.push_back(la::Matrix::random(6, 2, rng));
  model.factors.push_back(la::Matrix::random(6, 2, rng));
  SparseTensor x({6, 6});
  for (idx_t i = 0; i < 6; ++i) {
    for (idx_t j = 0; j < 6; ++j) {
      const idx_t c[] = {i, j};
      x.push_back(c, model.value_at(c));
    }
  }
  // The fit identity cancels ||X||^2 + ||Z||^2 - 2<X,Z> at ~1e4 scale;
  // a few 1e-8 of slack covers rounding across optimization levels.
  EXPECT_NEAR(model.fit_to(x, 2), 1.0, 1e-7);
}

// ----------------------------------------------------------------- cpals

TEST(CpAls, FitReachesOneOnNoiselessLowRank) {
  SparseTensor x = low_rank_tensor();
  CpalsOptions opts;
  opts.rank = 4;  // the generating rank
  opts.max_iterations = 150;
  opts.tolerance = 0.0;
  opts.nthreads = 2;
  const CpalsResult r = cp_als(x, opts);
  ASSERT_FALSE(r.fit_history.empty());
  EXPECT_GT(r.fit_history.back(), 0.999);
}

TEST(CpAls, FitImprovesMonotonically) {
  // ALS is monotone in the exact objective; the fit may wiggle at round-off
  // scale, so allow a tiny epsilon.
  SparseTensor x = generate_synthetic(
      {.dims = {40, 30, 20}, .nnz = 4000, .seed = 1001,
       .zipf_exponent = 0.4});
  CpalsOptions opts;
  opts.rank = 6;
  opts.max_iterations = 15;
  opts.tolerance = 0.0;
  opts.nthreads = 2;
  const CpalsResult r = cp_als(x, opts);
  ASSERT_EQ(static_cast<int>(r.fit_history.size()), 15);
  for (std::size_t i = 1; i < r.fit_history.size(); ++i) {
    EXPECT_GE(r.fit_history[i], r.fit_history[i - 1] - 1e-8)
        << "iteration " << i;
  }
}

TEST(CpAls, DeterministicForSeed) {
  SparseTensor x1 = low_rank_tensor(1002);
  SparseTensor x2 = low_rank_tensor(1002);
  CpalsOptions opts;
  opts.rank = 5;
  opts.max_iterations = 5;
  opts.tolerance = 0.0;
  const CpalsResult a = cp_als(x1, opts);
  const CpalsResult b = cp_als(x2, opts);
  ASSERT_EQ(a.fit_history.size(), b.fit_history.size());
  for (std::size_t i = 0; i < a.fit_history.size(); ++i) {
    EXPECT_EQ(a.fit_history[i], b.fit_history[i]);
  }
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(a.model.factors[static_cast<std::size_t>(m)].max_abs_diff(
                  b.model.factors[static_cast<std::size_t>(m)]),
              0.0);
  }
}

TEST(CpAls, EarlyStopHonorsTolerance) {
  SparseTensor x = low_rank_tensor(1003);
  CpalsOptions opts;
  opts.rank = 6;
  opts.max_iterations = 100;
  opts.tolerance = 1e-4;
  const CpalsResult r = cp_als(x, opts);
  EXPECT_LT(r.iterations, 100);
  EXPECT_EQ(static_cast<int>(r.fit_history.size()), r.iterations);
}

TEST(CpAls, TimersCoverAllRoutines) {
  SparseTensor x = generate_synthetic(
      {.dims = {50, 40, 30}, .nnz = 8000, .seed = 1004});
  CpalsOptions opts;
  opts.rank = 8;
  opts.max_iterations = 3;
  opts.tolerance = 0.0;
  opts.nthreads = 2;
  const CpalsResult r = cp_als(x, opts);
  EXPECT_GT(r.timers.seconds(Routine::kMttkrp), 0.0);
  EXPECT_GT(r.timers.seconds(Routine::kInverse), 0.0);
  EXPECT_GT(r.timers.seconds(Routine::kMatAtA), 0.0);
  EXPECT_GT(r.timers.seconds(Routine::kMatNorm), 0.0);
  EXPECT_GT(r.timers.seconds(Routine::kFit), 0.0);
  EXPECT_GT(r.timers.seconds(Routine::kSort), 0.0);
  EXPECT_GT(r.csf_bytes, 0u);
}

TEST(CpAls, LambdaStaysPositiveAndFactorsFinite) {
  SparseTensor x = generate_synthetic(
      {.dims = {25, 25, 25}, .nnz = 2000, .seed = 1005});
  CpalsOptions opts;
  opts.rank = 4;
  opts.max_iterations = 10;
  opts.tolerance = 0.0;
  const CpalsResult r = cp_als(x, opts);
  for (const val_t l : r.model.lambda) {
    EXPECT_GT(l, 0.0);
    EXPECT_TRUE(std::isfinite(l));
  }
  for (const auto& f : r.model.factors) {
    for (const val_t v : f.values()) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(CpAls, RankOneExactTensorRecovered) {
  // Rank-1 tensor from known vectors; CP-ALS with rank 1 must recover the
  // model up to scaling (fit -> 1).
  SparseTensor x = generate_full_low_rank({15, 15, 15}, 1, 0.0, 1006);
  CpalsOptions opts;
  opts.rank = 1;
  opts.max_iterations = 30;
  opts.tolerance = 0.0;
  const CpalsResult r = cp_als(x, opts);
  EXPECT_GT(r.fit_history.back(), 0.9999);
}

TEST(CpAls, HigherOrderTensor) {
  SparseTensor x = generate_full_low_rank({12, 10, 8, 9}, 3, 0.0, 1007);
  CpalsOptions opts;
  opts.rank = 5;
  opts.max_iterations = 40;
  opts.tolerance = 0.0;
  opts.nthreads = 2;
  const CpalsResult r = cp_als(x, opts);
  EXPECT_GT(r.fit_history.back(), 0.99);
}

TEST(CpAls, NoisyLowRankReachesPlausibleFit) {
  SparseTensor x = generate_full_low_rank({16, 16, 16}, 3, 0.05, 1008);
  CpalsOptions opts;
  opts.rank = 3;
  opts.max_iterations = 30;
  opts.tolerance = 0.0;
  const CpalsResult r = cp_als(x, opts);
  // Values are O(rank * 0.25); 5% noise leaves a high but sub-unit fit.
  EXPECT_GT(r.fit_history.back(), 0.8);
  EXPECT_LT(r.fit_history.back(), 1.0);
}

TEST(CpAls, RejectsBadOptions) {
  SparseTensor x = low_rank_tensor(1009);
  CpalsOptions opts;
  opts.rank = 0;
  EXPECT_THROW(cp_als(x, opts), Error);
  opts.rank = 2;
  opts.max_iterations = 0;
  EXPECT_THROW(cp_als(x, opts), Error);
  SparseTensor empty({3, 3, 3});
  CpalsOptions ok;
  EXPECT_THROW(cp_als(empty, ok), Error);
}

// -------------------------------------- implementation-variant equivalence

class VariantEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(VariantEquivalenceTest, SameFitAsReference) {
  const auto [name, nthreads] = GetParam();
  // The Chapel-initial / Chapel-optimized variants are *implementation*
  // variants — the mathematics is identical, so fits must agree closely
  // (bitwise at 1 thread, fp-reduction tolerance beyond).
  SparseTensor x1 = generate_synthetic(
      {.dims = {30, 24, 36}, .nnz = 3000, .seed = 1010});
  SparseTensor x2 = x1;
  CpalsOptions ref;
  ref.rank = 5;
  ref.max_iterations = 5;
  ref.tolerance = 0.0;
  ref.nthreads = nthreads;
  apply_impl_variant(find_impl_variant("c"), ref);
  CpalsOptions other = ref;
  apply_impl_variant(find_impl_variant(name), other);
  const CpalsResult a = cp_als(x1, ref);
  const CpalsResult b = cp_als(x2, other);
  ASSERT_EQ(a.fit_history.size(), b.fit_history.size());
  if (nthreads == 1) {
    EXPECT_EQ(a.fit_history.back(), b.fit_history.back());
  } else {
    EXPECT_NEAR(a.fit_history.back(), b.fit_history.back(), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, VariantEquivalenceTest,
    ::testing::Combine(::testing::Values("chapel-initial",
                                         "chapel-optimize"),
                       ::testing::Values(1, 4)));

TEST(ImplVariants, TableMatchesPaperLegend) {
  const auto& c = find_impl_variant("c");
  EXPECT_EQ(c.row_access, RowAccess::kPointer);
  EXPECT_EQ(c.lock_kind, LockKind::kOmp);
  const auto& init = find_impl_variant("chapel-initial");
  EXPECT_EQ(init.row_access, RowAccess::kSlice);
  EXPECT_EQ(init.lock_kind, LockKind::kSync);
  EXPECT_EQ(init.sort_variant, SortVariant::kInitial);
  const auto& opt = find_impl_variant("chapel-optimize");
  EXPECT_EQ(opt.row_access, RowAccess::kPointer);
  EXPECT_EQ(opt.lock_kind, LockKind::kAtomic);
  EXPECT_THROW(find_impl_variant("bogus"), Error);
}

}  // namespace
}  // namespace sptd
