// Tests for the pluggable completion-solver subsystem: ALS / SGD / CCD++
// cross-equivalence on a noiseless low-rank tensor, across schedule
// policies and thread counts, plus the fixed-vs-generic kernel-path
// equivalence the kernel routing contract requires.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "completion/completion.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

// A noiseless rank-2 tensor: every solver must drive the training RMSE
// essentially to zero (values are O(1), so these are relative errors).
SparseTensor solver_fixture() {
  return generate_low_rank({16, 14, 12}, 2, 1100, 0.0, 4001);
}

CompletionOptions solver_options(CompletionAlgorithm alg) {
  CompletionOptions opts;
  opts.algorithm = alg;
  opts.rank = 2;
  opts.tolerance = 0.0;
  opts.seed = 77;
  switch (alg) {
    case CompletionAlgorithm::kAls:
      opts.max_iterations = 30;
      opts.regularization = 1e-6;
      break;
    case CompletionAlgorithm::kSgd:
      opts.max_iterations = 250;
      opts.regularization = 1e-5;
      opts.learn_rate = 0.05;
      opts.decay = 0.002;
      break;
    case CompletionAlgorithm::kCcd:
      opts.max_iterations = 60;
      opts.regularization = 1e-6;
      break;
  }
  return opts;
}

double converged_rmse_bound(CompletionAlgorithm alg) {
  // Values are O(1), so these are relative errors: two orders of
  // magnitude under the data scale demonstrates real completion (ALS and
  // CCD++ plateau at a small regularization-bias floor; SGD is
  // first-order stochastic, so its bound is looser).
  return alg == CompletionAlgorithm::kSgd ? 5e-2 : 1e-2;
}

// ------------------------------------------------------- alg parsing

TEST(CompletionAlg, ParsesAndNames) {
  EXPECT_EQ(parse_completion_algorithm("als"), CompletionAlgorithm::kAls);
  EXPECT_EQ(parse_completion_algorithm("sgd"), CompletionAlgorithm::kSgd);
  EXPECT_EQ(parse_completion_algorithm("ccd"), CompletionAlgorithm::kCcd);
  EXPECT_EQ(parse_completion_algorithm("ccd++"), CompletionAlgorithm::kCcd);
  EXPECT_THROW(parse_completion_algorithm("lbfgs"), Error);
  for (const auto alg :
       {CompletionAlgorithm::kAls, CompletionAlgorithm::kSgd,
        CompletionAlgorithm::kCcd}) {
    EXPECT_EQ(parse_completion_algorithm(completion_algorithm_name(alg)),
              alg);
  }
}

// -------------------------------------------------- cross-equivalence

TEST(CompletionSolvers, AllConvergeAcrossSchedulesAndThreads) {
  const SparseTensor train = solver_fixture();
  const SchedulePolicy policies[] = {
      SchedulePolicy::kStatic, SchedulePolicy::kWeighted,
      SchedulePolicy::kDynamic, SchedulePolicy::kWorkStealing};
  for (const auto alg :
       {CompletionAlgorithm::kAls, CompletionAlgorithm::kSgd,
        CompletionAlgorithm::kCcd}) {
    for (const auto policy : policies) {
      for (const int nthreads : {1, 2, 4}) {
        CompletionOptions opts = solver_options(alg);
        opts.schedule = policy;
        opts.nthreads = nthreads;
        const CompletionResult r = complete_tensor(train, nullptr, opts);
        ASSERT_FALSE(r.train_rmse.empty());
        EXPECT_LT(r.train_rmse.back(), converged_rmse_bound(alg))
            << completion_algorithm_name(alg) << " schedule "
            << schedule_policy_name(policy) << " threads " << nthreads;
      }
    }
  }
}

TEST(CompletionSolvers, SgdIsBitwiseDeterministicAtFixedThreadCount) {
  const SparseTensor train = solver_fixture();
  for (const int nthreads : {1, 3}) {
    CompletionOptions opts = solver_options(CompletionAlgorithm::kSgd);
    opts.max_iterations = 15;
    opts.nthreads = nthreads;
    const CompletionResult a = complete_tensor(train, nullptr, opts);
    const CompletionResult b = complete_tensor(train, nullptr, opts);
    ASSERT_EQ(a.train_rmse.size(), b.train_rmse.size());
    for (std::size_t i = 0; i < a.train_rmse.size(); ++i) {
      EXPECT_EQ(a.train_rmse[i], b.train_rmse[i]);
    }
    for (int m = 0; m < train.order(); ++m) {
      const auto& fa = a.model.factors[static_cast<std::size_t>(m)];
      const auto& fb = b.model.factors[static_cast<std::size_t>(m)];
      ASSERT_EQ(fa.values().size(), fb.values().size());
      for (std::size_t i = 0; i < fa.values().size(); ++i) {
        EXPECT_EQ(fa.values()[i], fb.values()[i]) << "mode " << m;
      }
    }
  }
}

TEST(CompletionSolvers, AlsAndCcdThreadCountInvariant) {
  // ALS rows and CCD++ (row, column) coordinates are updated from inputs
  // no other concurrent update writes, so the arithmetic is identical at
  // any thread count (SGD intentionally is not: its strata depend on the
  // team size).
  const SparseTensor train = solver_fixture();
  for (const auto alg :
       {CompletionAlgorithm::kAls, CompletionAlgorithm::kCcd}) {
    CompletionOptions opts = solver_options(alg);
    opts.max_iterations = 6;
    opts.nthreads = 1;
    const CompletionResult serial = complete_tensor(train, nullptr, opts);
    opts.nthreads = 4;
    opts.schedule = SchedulePolicy::kWorkStealing;
    const CompletionResult parallel = complete_tensor(train, nullptr, opts);
    EXPECT_NEAR(serial.train_rmse.back(), parallel.train_rmse.back(), 1e-10)
        << completion_algorithm_name(alg);
  }
}

// ------------------------------------------- kernel-path equivalence

TEST(CompletionSolvers, FixedKernelsMatchGenericReferenceAt1e12) {
  // The solvers' inner loops run through RowOps<W>: W > 0 selects the
  // rank-specialized SIMD primitives, W = 0 the scalar reference loops.
  // Both paths must agree to 1e-12 on every factor entry. rank 4 has an
  // exact fixed-width instantiation; rank 3 exercises the padded-width
  // promotion (3 -> 8 over zero padding lanes).
  const SparseTensor train = solver_fixture();
  for (const idx_t rank : {idx_t{3}, idx_t{4}}) {
    for (const auto alg :
         {CompletionAlgorithm::kAls, CompletionAlgorithm::kSgd,
          CompletionAlgorithm::kCcd}) {
      CompletionOptions opts = solver_options(alg);
      opts.rank = rank;
      opts.max_iterations = 5;
      opts.nthreads = 2;
      opts.use_fixed_kernels = true;
      const CompletionResult fixed = complete_tensor(train, nullptr, opts);
      opts.use_fixed_kernels = false;
      const CompletionResult generic =
          complete_tensor(train, nullptr, opts);
      for (int m = 0; m < train.order(); ++m) {
        const auto& ff = fixed.model.factors[static_cast<std::size_t>(m)];
        const auto& fg =
            generic.model.factors[static_cast<std::size_t>(m)];
        for (idx_t i = 0; i < ff.rows(); ++i) {
          for (idx_t j = 0; j < ff.cols(); ++j) {
            EXPECT_NEAR(ff(i, j), fg(i, j), 1e-12)
                << completion_algorithm_name(alg) << " rank " << rank
                << " mode " << m;
          }
        }
      }
    }
  }
}

// ----------------------------------------------------- SGD specifics

TEST(CompletionSolvers, SgdLearningRateDecayIsApplied) {
  // With a huge decay the step collapses after the first epochs and the
  // model barely moves; with zero decay it keeps training. Distinguishes
  // the two to prove the knob reaches the update.
  const SparseTensor train = solver_fixture();
  CompletionOptions opts = solver_options(CompletionAlgorithm::kSgd);
  opts.max_iterations = 60;
  opts.decay = 0.0;
  const CompletionResult no_decay = complete_tensor(train, nullptr, opts);
  opts.decay = 1e4;
  const CompletionResult frozen = complete_tensor(train, nullptr, opts);
  EXPECT_LT(no_decay.train_rmse.back(), 0.5 * frozen.train_rmse.back());
}

TEST(CompletionSolvers, SgdRejectsBadHyperparameters) {
  const SparseTensor train = solver_fixture();
  CompletionOptions opts = solver_options(CompletionAlgorithm::kSgd);
  opts.learn_rate = 0.0;
  EXPECT_THROW(complete_tensor(train, nullptr, opts), Error);
  opts = solver_options(CompletionAlgorithm::kSgd);
  opts.decay = -1.0;
  EXPECT_THROW(complete_tensor(train, nullptr, opts), Error);
}

// ------------------------------------------------------ higher order

TEST(CompletionSolvers, AllSolversHandleFourthOrderTensors) {
  const SparseTensor train = generate_low_rank({9, 8, 7, 6}, 2, 900, 0.0, 4002);
  for (const auto alg :
       {CompletionAlgorithm::kAls, CompletionAlgorithm::kSgd,
        CompletionAlgorithm::kCcd}) {
    CompletionOptions opts = solver_options(alg);
    opts.nthreads = 2;
    const CompletionResult r = complete_tensor(train, nullptr, opts);
    EXPECT_LT(r.train_rmse.back(), converged_rmse_bound(alg))
        << completion_algorithm_name(alg);
  }
}

}  // namespace
}  // namespace sptd
