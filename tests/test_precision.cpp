// Tests for the value-stream precision axis (--precision f64|f32|mixed):
// equivalence ladders for MTTKRP, CP-ALS, Tucker, and completion, the
// value-byte accounting, and the degenerate-conditioning fixture where
// mixed's fp64 accumulation and masters must beat pure f32.
//
// Per-precision accuracy contracts (documented in common/precision.hpp,
// next to the standing 1e-12 fixed-vs-generic kernel contract): mixed
// tracks the f64 CP-ALS fit within 1e-6, f32 within 1e-3.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "completion/completion.hpp"
#include "cpd/cpals.hpp"
#include "cpd/kruskal.hpp"
#include "csf/csf.hpp"
#include "la/matrix.hpp"
#include "mttkrp/plan.hpp"
#include "tensor/synthetic.hpp"
#include "tucker/tucker.hpp"

namespace sptd {
namespace {

constexpr double kMixedFitTol = 1e-6;
constexpr double kF32FitTol = 1e-3;

double final_fit(SparseTensor x, const CpalsOptions& opts) {
  const CpalsResult r = cp_als(x, opts);
  return r.fit_history.back();
}

// ------------------------------------------------------ MTTKRP outputs

TEST(PrecisionMttkrp, MixedTracksF64PerModeAcrossRanks) {
  SparseTensor x = generate_synthetic(
      {.dims = {30, 26, 22}, .nnz = 4000, .seed = 91});
  CsfSet set(x, CsfPolicy::kTwoMode, 2, nullptr, SortVariant::kAllOpts,
             CsfLayout::kCompressed);
  for (const int rank_i : {3, 8, 16, 35}) {
    const auto rank = static_cast<idx_t>(rank_i);
    Rng rng(7);
    std::vector<la::Matrix> factors;
    for (int m = 0; m < x.order(); ++m) {
      factors.push_back(la::Matrix::random(x.dim(m), rank, rng));
    }
    MttkrpOptions mo;
    mo.nthreads = 2;
    mo.precision = Precision::kF64;
    MttkrpPlan plan64(set, rank, mo);
    mo.precision = Precision::kMixed;
    MttkrpPlan planmx(set, rank, mo);
    for (int m = 0; m < x.order(); ++m) {
      la::Matrix out64(x.dim(m), rank);
      la::Matrix outmx(x.dim(m), rank);
      plan64.execute(factors, m, out64);
      planmx.execute(factors, m, outmx);
      double scale = 0.0;
      for (const val_t v : out64.values()) {
        scale = std::max(scale, std::abs(static_cast<double>(v)));
      }
      // Each deposited product carries two fp32 input roundings (~1e-7
      // relative each) but accumulates in fp64; a 1e-5 relative band is
      // loose against that while still catching a broken stream.
      EXPECT_LE(out64.max_abs_diff(outmx), 1e-5 * std::max(1.0, scale))
          << "rank " << rank << " mode " << m;
    }
  }
}

// ---------------------------------- CP-ALS fit ladder across the matrix

class PrecisionLadderTest
    : public ::testing::TestWithParam<std::tuple<int, SchedulePolicy, bool>> {
};

TEST_P(PrecisionLadderTest, CpalsFitTracksF64) {
  const auto [rank, schedule, force_locks] = GetParam();
  const SparseTensor x = generate_synthetic(
      {.dims = {40, 32, 24}, .nnz = 5000, .seed = 77});
  CpalsOptions opts;
  opts.rank = static_cast<idx_t>(rank);
  opts.max_iterations = 8;
  opts.tolerance = 0.0;
  opts.nthreads = 2;
  opts.schedule = schedule;
  opts.force_locks = force_locks;

  opts.precision = Precision::kF64;
  const double f64 = final_fit(x, opts);
  opts.precision = Precision::kMixed;
  const double mixed = final_fit(x, opts);
  opts.precision = Precision::kF32;
  const double f32 = final_fit(x, opts);

  EXPECT_NEAR(mixed, f64, kMixedFitTol);
  EXPECT_NEAR(f32, f64, kF32FitTol);
}

INSTANTIATE_TEST_SUITE_P(
    Precision, PrecisionLadderTest,
    ::testing::Combine(
        ::testing::Values(3, 8, 16, 35),
        ::testing::Values(SchedulePolicy::kStatic, SchedulePolicy::kWeighted,
                          SchedulePolicy::kDynamic,
                          SchedulePolicy::kWorkStealing),
        ::testing::Bool()));

// ---------------------------------------------------------------- Tucker

TEST(PrecisionTucker, HooiFitLadder) {
  const SparseTensor x = generate_synthetic(
      {.dims = {25, 20, 15}, .nnz = 3000, .seed = 33});
  TuckerOptions opts;
  opts.core_dims = {4, 4, 4};
  opts.max_iterations = 10;
  opts.tolerance = 0.0;
  opts.nthreads = 2;

  opts.precision = Precision::kF64;
  const double f64 = tucker_hooi(x, opts).fit_history.back();
  opts.precision = Precision::kMixed;
  const double mixed = tucker_hooi(x, opts).fit_history.back();
  opts.precision = Precision::kF32;
  const double f32 = tucker_hooi(x, opts).fit_history.back();

  EXPECT_NEAR(mixed, f64, kMixedFitTol);
  EXPECT_NEAR(f32, f64, kF32FitTol);
}

// ------------------------------------------------------------ completion

class PrecisionCompletionTest
    : public ::testing::TestWithParam<CompletionAlgorithm> {};

TEST_P(PrecisionCompletionTest, TrainRmseTracksF64) {
  const SparseTensor x = generate_synthetic(
      {.dims = {30, 30, 30}, .nnz = 6000, .seed = 55});
  CompletionOptions opts;
  opts.algorithm = GetParam();
  opts.rank = 8;
  opts.max_iterations = 8;
  opts.tolerance = 0.0;
  opts.nthreads = 2;

  opts.precision = Precision::kF64;
  const double f64 =
      complete_tensor(x, nullptr, opts).train_rmse.back();
  opts.precision = Precision::kMixed;
  const double mixed =
      complete_tensor(x, nullptr, opts).train_rmse.back();
  opts.precision = Precision::kF32;
  const double f32 =
      complete_tensor(x, nullptr, opts).train_rmse.back();

  EXPECT_NEAR(mixed, f64, kMixedFitTol);
  EXPECT_NEAR(f32, f64, kF32FitTol);
}

INSTANTIATE_TEST_SUITE_P(Precision, PrecisionCompletionTest,
                         ::testing::Values(CompletionAlgorithm::kAls,
                                           CompletionAlgorithm::kSgd,
                                           CompletionAlgorithm::kCcd));

// ------------------------------------------------------- byte accounting

TEST(PrecisionBytes, NarrowStreamsHalveValueBytes) {
  SparseTensor x = generate_synthetic(
      {.dims = {20, 20, 20}, .nnz = 2000, .seed = 9});
  SparseTensor work = x;
  const CsfSet set(work, CsfPolicy::kTwoMode, 1, nullptr,
                   SortVariant::kAllOpts, CsfLayout::kCompressed);
  EXPECT_GT(set.value_bytes(Precision::kF64), 0u);
  EXPECT_EQ(set.value_bytes(Precision::kF32),
            set.value_bytes(Precision::kMixed));
  EXPECT_EQ(set.value_bytes(Precision::kF64),
            2 * set.value_bytes(Precision::kMixed));

  CpalsOptions opts;
  opts.rank = 5;
  opts.max_iterations = 2;
  opts.tolerance = 0.0;
  opts.precision = Precision::kMixed;
  SparseTensor trial = x;
  const CpalsResult r = cp_als(trial, opts);
  EXPECT_EQ(r.value_bytes, set.value_bytes(Precision::kMixed));
  EXPECT_GT(r.csf_bytes, 0u);
}

// ------------------------------------------- degenerate conditioning

/// Degenerate-conditioning fixture: a fully dense all-positive low-rank
/// tensor with one long mode. The short modes' MTTKRP rows each reduce
/// 2048·8 = 16384 same-sign products, and the fit identity
/// residual² = |X|² + |X̂|² − 2⟨X,X̂⟩ consumes the last mode's MTTKRP
/// output directly — so pure f32's fp32 accumulation error lands in the
/// residual first-order, on top of rounding the factor masters through
/// fp32 every iteration. Mixed streams the same fp32 values but
/// accumulates and keeps masters in fp64, so it must land orders of
/// magnitude closer to the f64 fit (empirically ~1e-7 vs ~1e-5 here;
/// the gap holds across seeds with ≥ 10x margin). The asserted contract
/// is that margin plus a loose absolute bound — NOT the standard
/// kMixedFitTol ladder: on this adversarial fixture the absolute error
/// tracks the compiler's reduction order (an -O1 sanitizer build sums
/// serially instead of with vectorized multi-accumulators and lands
/// ~2x past 1e-6), while the realistic-tensor ladder tests above hold
/// 1e-6 at every optimization level.
TEST(PrecisionDegenerate, MixedBeatsF32OnLongSameSignAccumulation) {
  const SparseTensor x =
      generate_full_low_rank({2048, 8, 8}, /*rank=*/3, /*noise=*/1e-4,
                             /*seed=*/99);
  CpalsOptions opts;
  opts.rank = 3;
  opts.max_iterations = 25;
  opts.tolerance = 0.0;
  opts.nthreads = 2;

  opts.precision = Precision::kF64;
  const double f64 = final_fit(x, opts);
  opts.precision = Precision::kMixed;
  const double err_mixed = std::abs(final_fit(x, opts) - f64);
  opts.precision = Precision::kF32;
  const double err_f32 = std::abs(final_fit(x, opts) - f64);

  EXPECT_LT(err_mixed * 10.0, err_f32);
  EXPECT_LT(err_mixed, 1e-5);
}

}  // namespace
}  // namespace sptd
