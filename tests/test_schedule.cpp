// Tests for the execution-plan layer: SchedulePolicy / SliceSchedule
// partition invariants, ParallelContext dispatch, MttkrpPlan vs the
// planless path, and the "hot loop does zero planning" guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "cpd/cpals.hpp"
#include "csf/csf.hpp"
#include "mttkrp/mttkrp.hpp"
#include "mttkrp/plan.hpp"
#include "parallel/partition.hpp"
#include "parallel/schedule.hpp"
#include "parallel/team.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

constexpr SchedulePolicy kAllPolicies[] = {
    SchedulePolicy::kStatic, SchedulePolicy::kWeighted,
    SchedulePolicy::kDynamic, SchedulePolicy::kWorkStealing};

std::vector<nnz_t> uniform_prefix(nnz_t total) {
  std::vector<nnz_t> prefix(static_cast<std::size_t>(total) + 1);
  std::iota(prefix.begin(), prefix.end(), nnz_t{0});
  return prefix;
}

/// Skewed weights: item i weighs 1 + (i % 17 == 0 ? 50 : 0).
std::vector<nnz_t> skewed_prefix(nnz_t total) {
  std::vector<nnz_t> prefix(static_cast<std::size_t>(total) + 1, 0);
  for (nnz_t i = 0; i < total; ++i) {
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + 1 + (i % 17 == 0 ? 50 : 0);
  }
  return prefix;
}

/// Runs the schedule on a real team and records how often each slice was
/// visited; every policy must cover [0, total) exactly once.
void expect_exact_coverage(const SliceSchedule& sched, nnz_t total,
                           int nthreads) {
  std::vector<std::atomic<int>> visits(static_cast<std::size_t>(total));
  sched.reset();
  parallel_region(nthreads, [&](int tid, int) {
    sched.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
      ASSERT_LE(begin, end);
      ASSERT_LE(end, total);
      for (nnz_t s = begin; s < end; ++s) {
        visits[static_cast<std::size_t>(s)].fetch_add(1);
      }
    });
  });
  for (nnz_t s = 0; s < total; ++s) {
    EXPECT_EQ(visits[static_cast<std::size_t>(s)].load(), 1)
        << "slice " << s;
  }
}

// ------------------------------------------------------------ parse/name

TEST(SchedulePolicy, ParseRoundTrips) {
  for (const SchedulePolicy p : kAllPolicies) {
    EXPECT_EQ(parse_schedule_policy(schedule_policy_name(p)), p);
  }
  EXPECT_THROW(parse_schedule_policy("guided"), Error);
}

// ----------------------------------------------------- partition shapes

TEST(SliceSchedule, StaticBoundsCoverDisjointly) {
  for (const nnz_t total : {0ULL, 1ULL, 7ULL, 100ULL, 10007ULL}) {
    for (const int threads : {1, 2, 3, 8, 32}) {
      const SliceSchedule sched(SchedulePolicy::kStatic, total, {}, threads);
      const auto bounds = sched.bounds();
      ASSERT_EQ(bounds.size(), static_cast<std::size_t>(threads) + 1);
      EXPECT_EQ(bounds.front(), 0u);
      EXPECT_EQ(bounds.back(), total);
      for (int t = 0; t < threads; ++t) {
        EXPECT_LE(bounds[static_cast<std::size_t>(t)],
                  bounds[static_cast<std::size_t>(t) + 1]);
        // Equal split: sizes differ by at most one.
        const nnz_t size = bounds[static_cast<std::size_t>(t) + 1] -
                           bounds[static_cast<std::size_t>(t)];
        EXPECT_LE(size, total / static_cast<nnz_t>(threads) + 1);
      }
    }
  }
}

TEST(SliceSchedule, WeightedBoundsBalanceSkewedWeights) {
  const nnz_t total = 500;
  const auto prefix = skewed_prefix(total);
  const nnz_t weight_total = prefix.back();
  for (const int threads : {2, 4, 8}) {
    const SliceSchedule sched(SchedulePolicy::kWeighted, total, prefix,
                              threads);
    const auto bounds = sched.bounds();
    ASSERT_EQ(bounds.size(), static_cast<std::size_t>(threads) + 1);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), total);
    // Every part's weight stays within one max item of the ideal share.
    const nnz_t ideal = weight_total / static_cast<nnz_t>(threads);
    for (int t = 0; t < threads; ++t) {
      const nnz_t w = prefix[static_cast<std::size_t>(
                          bounds[static_cast<std::size_t>(t) + 1])] -
                      prefix[static_cast<std::size_t>(
                          bounds[static_cast<std::size_t>(t)])];
      EXPECT_LE(w, ideal + 51) << "part " << t;
    }
  }
}

TEST(SliceSchedule, WeightedWithoutWeightsDegradesToStatic) {
  const SliceSchedule sched(SchedulePolicy::kWeighted, 10, {}, 4);
  EXPECT_EQ(sched.policy(), SchedulePolicy::kStatic);
  EXPECT_EQ(sched.bounds().size(), 5u);
}

// ------------------------------------------------------------- coverage

TEST(SliceSchedule, EveryPolicyCoversEachSliceExactlyOnce) {
  init_parallel_runtime();
  for (const SchedulePolicy policy : kAllPolicies) {
    for (const nnz_t total : {0ULL, 1ULL, 5ULL, 1000ULL}) {
      for (const int threads : {1, 4, 16}) {  // 16 oversubscribes this box
        const auto prefix = uniform_prefix(total);
        const SliceSchedule sched(policy, total, prefix, threads);
        expect_exact_coverage(sched, total, threads);
      }
    }
  }
}

TEST(SliceSchedule, DynamicReusableAfterReset) {
  const nnz_t total = 64;
  const SliceSchedule sched(SchedulePolicy::kDynamic, total, {}, 4);
  // Two consecutive consumptions must each see the whole range.
  expect_exact_coverage(sched, total, 4);
  expect_exact_coverage(sched, total, 4);
}

TEST(SliceSchedule, WorkStealingReusableAfterReset) {
  // The reset() contract that cached MTTKRP plans rely on: each launch
  // must reseed every deque, or the second iteration sees nothing.
  const nnz_t total = 64;
  const auto prefix = skewed_prefix(total);
  const SliceSchedule sched(SchedulePolicy::kWorkStealing, total, prefix, 4);
  expect_exact_coverage(sched, total, 4);
  expect_exact_coverage(sched, total, 4);
}

TEST(SliceSchedule, ReuseWithoutResetThrowsForRuntimePolicies) {
  // The launch-generation guard behind the reset() contract: a
  // dynamic/work-stealing schedule admits at most nthreads workers per
  // generation, so forgetting reset() before the next parallel region
  // throws instead of silently iterating nothing (or double-issuing).
  const nnz_t total = 64;
  const auto prefix = uniform_prefix(total);
  for (const SchedulePolicy policy :
       {SchedulePolicy::kDynamic, SchedulePolicy::kWorkStealing}) {
    const SliceSchedule sched(policy, total, prefix, 4);
    sched.reset();
    for (int tid = 0; tid < 4; ++tid) {
      sched.for_ranges(tid, [](nnz_t, nnz_t) {});
    }
    EXPECT_THROW(sched.for_ranges(0, [](nnz_t, nnz_t) {}), Error)
        << schedule_policy_name(policy);
    // reset() opens a fresh generation and the schedule works again.
    expect_exact_coverage(sched, total, 4);
  }
}

TEST(SliceSchedule, ResetAdvancesLaunchGeneration) {
  const SliceSchedule sched(SchedulePolicy::kDynamic, 16, {}, 2);
  const std::uint64_t g0 = sched.generation();
  sched.reset();
  sched.reset();
  EXPECT_EQ(sched.generation(), g0 + 2);
}

TEST(SliceSchedule, PrecomputedPoliciesHaveNoEntryBudget) {
  // Static/weighted bounds are pure functions of tid: re-entering
  // without reset() is harmless and must stay legal (kernels re-read
  // bounds freely), so the generation guard applies only to the
  // stateful runtime policies.
  const nnz_t total = 64;
  const auto prefix = uniform_prefix(total);
  for (const SchedulePolicy policy :
       {SchedulePolicy::kStatic, SchedulePolicy::kWeighted}) {
    const SliceSchedule sched(policy, total, prefix, 4);
    for (int round = 0; round < 3; ++round) {
      for (int tid = 0; tid < 4; ++tid) {
        EXPECT_NO_THROW(sched.for_ranges(tid, [](nnz_t, nnz_t) {}))
            << schedule_policy_name(policy);
      }
    }
  }
}

// --------------------------------------------------------- work stealing

TEST(SliceSchedule, WorkStealingSeedsFromWeightedPartition) {
  const nnz_t total = 500;
  const auto prefix = skewed_prefix(total);
  for (const int threads : {2, 4, 8}) {
    const SliceSchedule ws(SchedulePolicy::kWorkStealing, total, prefix,
                           threads);
    const SliceSchedule weighted(SchedulePolicy::kWeighted, total, prefix,
                                 threads);
    // Same first assignment as SPLATT's nnz balancing...
    ASSERT_EQ(ws.bounds().size(), weighted.bounds().size());
    for (std::size_t i = 0; i < ws.bounds().size(); ++i) {
      EXPECT_EQ(ws.bounds()[i], weighted.bounds()[i]) << "bound " << i;
    }
    // ...subdivided into a monotone chunk list covering [0, total).
    const auto chunks = ws.chunk_bounds();
    ASSERT_GE(chunks.size(), 2u);
    EXPECT_EQ(chunks.front(), 0u);
    EXPECT_EQ(chunks.back(), total);
    for (std::size_t i = 1; i < chunks.size(); ++i) {
      EXPECT_LT(chunks[i - 1], chunks[i]);
    }
    EXPECT_LE(ws.chunk_count(),
              static_cast<nnz_t>(threads) *
                  SliceSchedule::kDefaultChunkTarget);
  }
}

TEST(SliceSchedule, WorkStealingSerialThiefDrainsEveryVictim) {
  // Deterministic steal mechanics, no timing: drive for_ranges from
  // serial code. Thread 3 runs first — the limiting case of imbalance
  // where the other workers never arrive — so after draining its own
  // deque it must steal every other thread's chunks.
  const nnz_t total = 96;
  const SliceSchedule sched(SchedulePolicy::kWorkStealing, total, {}, 4,
                            /*chunk_target=*/4);
  sched.reset();
  const std::uint64_t sched_before = sched.steals();
  const std::uint64_t global_before = work_steal_count();
  std::vector<int> visits(static_cast<std::size_t>(total), 0);
  sched.for_ranges(3, [&](nnz_t begin, nnz_t end) {
    for (nnz_t s = begin; s < end; ++s) {
      ++visits[static_cast<std::size_t>(s)];
    }
  });
  for (nnz_t s = 0; s < total; ++s) {
    EXPECT_EQ(visits[static_cast<std::size_t>(s)], 1) << "slice " << s;
  }
  // Everything outside thread 3's own seed (3 victims x 4 chunks) was
  // stolen; the per-schedule and process-wide counters both saw it.
  EXPECT_EQ(sched.steals() - sched_before, 12u);
  EXPECT_EQ(work_steal_count() - global_before, 12u);
  // The other workers then find every deque (including their own) empty.
  sched.for_ranges(0, [](nnz_t, nnz_t) { FAIL() << "deques not drained"; });
}

TEST(SliceSchedule, WorkStealingOwnerAloneNeverSteals) {
  // One thread, one deque: the no-steal path must leave the counters
  // untouched.
  const nnz_t total = 64;
  const SliceSchedule sched(SchedulePolicy::kWorkStealing, total, {}, 1);
  const std::uint64_t before = sched.steals();
  expect_exact_coverage(sched, total, 1);
  EXPECT_EQ(sched.steals(), before);
}

TEST(SliceSchedule, WorkStealingStealsUnderRuntimeImbalance) {
  // A real team with artificial slice-cost skew: thread 0's seeded slices
  // spin, everyone else's are free, so the idle workers must steal. The
  // schedule is count-seeded (empty prefix) to make the imbalance
  // invisible to the seed. Oversubscribed single-core boxes still steal
  // across launches (preemption mid-chunk), so accumulate over a few.
  const nnz_t total = 256;
  const int threads = 4;
  const SliceSchedule sched(SchedulePolicy::kWorkStealing, total, {},
                            threads);
  const nnz_t heavy_end = sched.bounds()[1];  // thread 0's seed block
  const std::uint64_t before = sched.steals();
  for (int launch = 0; launch < 50 && sched.steals() == before; ++launch) {
    sched.reset();
    parallel_region(threads, [&](int tid, int) {
      sched.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
        for (nnz_t s = begin; s < end; ++s) {
          if (s < heavy_end) {
            // ~50us of spinning per heavy slice.
            volatile double sink = 0.0;
            for (int i = 0; i < 20000; ++i) {
              sink = sink + static_cast<double>(i) * 1e-9;
            }
          }
        }
      });
    });
  }
  EXPECT_GT(sched.steals(), before)
      << "no steal in 50 launches under 64:1 slice-cost skew";
}

TEST(SliceSchedule, MoreThreadsThanSlices) {
  for (const SchedulePolicy policy : kAllPolicies) {
    const SliceSchedule sched(policy, 3, uniform_prefix(3), 8);
    expect_exact_coverage(sched, 3, 8);
  }
}

// ----------------------------------------------------- parallel context

TEST(ParallelContext, RunScheduledVisitsEveryIndex) {
  const ParallelContext ctx(4, SchedulePolicy::kDynamic);
  const SliceSchedule sched = ctx.make_schedule(257);
  std::vector<std::atomic<int>> visits(257);
  ctx.run_scheduled(sched, [&](nnz_t begin, nnz_t end, int tid) {
    ASSERT_GE(tid, 0);
    ASSERT_LT(tid, 4);
    for (nnz_t s = begin; s < end; ++s) {
      visits[static_cast<std::size_t>(s)].fetch_add(1);
    }
  });
  for (const auto& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

TEST(Team, TemplateOverloadRunsWithoutFunctionWrapper) {
  // The hot-path overload dispatches a mutable capturing lambda through a
  // non-owning reference; the captured state must be visible afterwards.
  std::atomic<int> sum{0};
  int witnessed_threads = 0;
  auto body = [&](int tid, int nt) {
    witnessed_threads = nt;
    sum.fetch_add(tid + 1);
  };
  parallel_region(3, body);
  EXPECT_EQ(witnessed_threads, 3);
  EXPECT_EQ(sum.load(), 1 + 2 + 3);
}

// ------------------------------------------------------- plan numerics

SparseTensor plan_tensor(std::uint64_t seed = 7100) {
  return generate_synthetic({.dims = {10, 30, 40}, .nnz = 2000,
                             .seed = seed, .zipf_exponent = 0.8});
}

std::vector<la::Matrix> plan_factors(const SparseTensor& t, idx_t rank) {
  Rng rng(901);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < t.order(); ++m) {
    factors.push_back(la::Matrix::random(t.dim(m), rank, rng));
  }
  return factors;
}

/// Compares the planned MTTKRP against the planless path for every mode.
/// Strategies with a fixed thread->output assignment (none, privatize,
/// tile under static/weighted schedules) must match BITWISE; the lock
/// strategy and the runtime schedules (dynamic, workstealing) only fix
/// the per-row term sets, not their accumulation order, so those match
/// to round-off.
void expect_plan_matches_planless(const CsfSet& set,
                                  const MttkrpOptions& opts, idx_t rank) {
  const SparseTensor probe = plan_tensor();
  const auto factors = plan_factors(probe, rank);
  MttkrpPlan plan(set, rank, opts);
  MttkrpWorkspace ws(opts, rank, set.order());
  for (int m = 0; m < set.order(); ++m) {
    const idx_t dim = set.csfs().front().dims()[static_cast<std::size_t>(m)];
    la::Matrix planned(dim, rank);
    la::Matrix planless(dim, rank);
    plan.execute(factors, m, planned);
    mttkrp(set, factors, m, planless, ws);
    EXPECT_EQ(plan.mode_plan(m).strategy, ws.last_strategy) << "mode " << m;

    const bool deterministic =
        plan.mode_plan(m).strategy != SyncStrategy::kLock &&
        opts.schedule != SchedulePolicy::kDynamic &&
        opts.schedule != SchedulePolicy::kWorkStealing;
    const auto a = planned.values();
    const auto b = planless.values();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (deterministic) {
        ASSERT_EQ(a[i], b[i]) << "mode " << m << " element " << i;
      } else {
        ASSERT_NEAR(a[i], b[i], 1e-9 * (1.0 + std::abs(b[i])))
            << "mode " << m << " element " << i;
      }
    }
  }
}

TEST(MttkrpPlan, MatchesPlanlessAcrossStrategiesAndPolicies) {
  init_parallel_runtime();
  SparseTensor x = plan_tensor();
  CsfSet set(x, CsfPolicy::kTwoMode, 2);
  const idx_t rank = 5;

  for (const SchedulePolicy policy : kAllPolicies) {
    for (const int threads : {1, 4}) {
      // Default heuristic (locks on this shape), forced locks, forced
      // privatization, and disabled privatization.
      MttkrpOptions base;
      base.nthreads = threads;
      base.schedule = policy;
      expect_plan_matches_planless(set, base, rank);

      MttkrpOptions locks = base;
      locks.force_locks = true;
      expect_plan_matches_planless(set, locks, rank);

      MttkrpOptions priv = base;
      priv.privatization_threshold = 1e9;  // privatize every non-root mode
      expect_plan_matches_planless(set, priv, rank);

      MttkrpOptions nopriv = base;
      nopriv.allow_privatization = false;
      expect_plan_matches_planless(set, nopriv, rank);
    }
  }
}

TEST(MttkrpPlan, MatchesPlanlessWithTiling) {
  init_parallel_runtime();
  SparseTensor x = plan_tensor();
  // One-mode policy: the non-root modes dispatch to internal/leaf kernels
  // of the single representation, so use_tiling reaches the leaf path.
  CsfSet set(x, CsfPolicy::kOneMode, 2);
  MttkrpOptions opts;
  opts.nthreads = 4;
  opts.use_tiling = true;
  expect_plan_matches_planless(set, opts, 5);
  bool tiled = false;
  MttkrpPlan plan(set, 5, opts);
  for (int m = 0; m < set.order(); ++m) {
    tiled |= plan.mode_plan(m).strategy == SyncStrategy::kTile;
  }
  EXPECT_TRUE(tiled) << "tiling never engaged; test shape is wrong";
}

// ------------------------------------------------- zero planning in loop

TEST(MttkrpPlan, HotLoopPerformsZeroPlanningCalls) {
  init_parallel_runtime();
  SparseTensor x = plan_tensor();
  CsfSet set(x, CsfPolicy::kTwoMode, 2);
  MttkrpOptions opts;
  opts.nthreads = 4;
  const idx_t rank = 5;
  const auto factors = plan_factors(x, rank);
  MttkrpPlan plan(set, rank, opts);

  const std::uint64_t partitions_before = weighted_partition_calls();
  const std::uint64_t choices_before = choose_sync_strategy_calls();
  la::Matrix out;
  for (int it = 0; it < 3; ++it) {
    for (int m = 0; m < set.order(); ++m) {
      out = la::Matrix(set.csfs().front().dims()[static_cast<std::size_t>(m)],
                       rank);
      plan.execute(factors, m, out);
    }
  }
  EXPECT_EQ(weighted_partition_calls(), partitions_before);
  EXPECT_EQ(choose_sync_strategy_calls(), choices_before);
}

TEST(CpalsPlan, PlanningCostIndependentOfIterationCount) {
  // End-to-end: the CP-ALS driver plans once up front, so the number of
  // planning calls must not grow with the iteration count.
  init_parallel_runtime();
  const auto planning_delta = [](int iterations) {
    SparseTensor x = plan_tensor();
    const val_t norm_sq = x.norm_sq();
    CsfSet set(x, CsfPolicy::kTwoMode, 2);
    CpalsOptions opts;
    opts.rank = 4;
    opts.nthreads = 2;
    opts.max_iterations = iterations;
    opts.tolerance = 0.0;
    const std::uint64_t p0 = weighted_partition_calls();
    const std::uint64_t c0 = choose_sync_strategy_calls();
    (void)cp_als_csf(set, norm_sq, opts);
    return std::pair{weighted_partition_calls() - p0,
                     choose_sync_strategy_calls() - c0};
  };
  const auto [p1, c1] = planning_delta(1);
  const auto [p8, c8] = planning_delta(8);
  EXPECT_EQ(p1, p8);
  EXPECT_EQ(c1, c8);
}

// --------------------------------------------------- end-to-end numerics

TEST(CpalsPlan, SchedulePoliciesAgreeOnFit) {
  init_parallel_runtime();
  std::vector<double> fits;
  for (const SchedulePolicy policy : kAllPolicies) {
    SparseTensor x = plan_tensor();
    CpalsOptions opts;
    opts.rank = 4;
    opts.nthreads = 4;
    opts.max_iterations = 5;
    opts.tolerance = 0.0;
    opts.schedule = policy;
    const CpalsResult r = cp_als(x, opts);
    ASSERT_EQ(r.fit_history.size(), 5u);
    fits.push_back(r.fit_history.back());
  }
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_NEAR(fits[0], fits[i], 1e-8)
        << schedule_policy_name(kAllPolicies[i]);
  }
}

}  // namespace
}  // namespace sptd
