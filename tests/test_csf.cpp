// Tests for src/csf: construction, structure invariants, COO round trips,
// allocation policies, dispatch.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "common/error.hpp"
#include "csf/csf.hpp"
#include "sort/sort.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

using Entry = std::pair<std::array<idx_t, kMaxOrder>, val_t>;

std::vector<Entry> sorted_entries(const SparseTensor& t) {
  std::vector<Entry> out;
  out.reserve(t.nnz());
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    out.emplace_back(t.coord(x), t.vals()[x]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Small hand-checkable tensor:
///   (0,0,0)=1  (0,0,1)=2  (0,2,1)=3  (1,1,0)=4
SparseTensor hand_tensor() {
  SparseTensor t({2, 3, 2});
  const idx_t c0[] = {0, 0, 0};
  const idx_t c1[] = {0, 0, 1};
  const idx_t c2[] = {0, 2, 1};
  const idx_t c3[] = {1, 1, 0};
  t.push_back(c0, 1.0);
  t.push_back(c1, 2.0);
  t.push_back(c2, 3.0);
  t.push_back(c3, 4.0);
  return t;
}

TEST(CsfModeOrder, AscendingDimsWithRootFirst) {
  const dims_t dims = {100, 10, 50};
  EXPECT_EQ(csf_mode_order(dims, -1), (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(csf_mode_order(dims, 0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(csf_mode_order(dims, 2), (std::vector<int>{2, 1, 0}));
}

TEST(CsfModeOrder, TiesBrokenByModeId) {
  const dims_t dims = {10, 10, 10};
  EXPECT_EQ(csf_mode_order(dims, -1), (std::vector<int>{0, 1, 2}));
}

TEST(CsfPolicyParse, RoundTrips) {
  for (const auto p :
       {CsfPolicy::kOneMode, CsfPolicy::kTwoMode, CsfPolicy::kAllMode}) {
    EXPECT_EQ(parse_csf_policy(csf_policy_name(p)), p);
  }
  EXPECT_THROW(parse_csf_policy("none"), Error);
}

TEST(Csf, HandExampleStructure) {
  SparseTensor t = hand_tensor();
  const std::vector<int> order = {0, 1, 2};  // natural order
  sort_tensor_perm(t, order, 1);
  // Wide layout: the seed's span accessors stay valid for this
  // hand-checkable structure walk (compressed coverage lives in
  // test_csf_compressed.cpp).
  const CsfTensor csf(t, order, CsfLayout::kWide);

  // Root level: slices 0 and 1.
  ASSERT_EQ(csf.nfibers(0), 2u);
  EXPECT_EQ(csf.fids(0)[0], 0u);
  EXPECT_EQ(csf.fids(0)[1], 1u);

  // Level 1 fibers: (0,0), (0,2), (1,1).
  ASSERT_EQ(csf.nfibers(1), 3u);
  EXPECT_EQ(csf.fids(1)[0], 0u);
  EXPECT_EQ(csf.fids(1)[1], 2u);
  EXPECT_EQ(csf.fids(1)[2], 1u);
  EXPECT_EQ(csf.fptr(0)[0], 0u);
  EXPECT_EQ(csf.fptr(0)[1], 2u);  // slice 0 owns fibers 0,1
  EXPECT_EQ(csf.fptr(0)[2], 3u);

  // Leaves: 4 nonzeros; fiber (0,0) holds leaves {0,1}.
  ASSERT_EQ(csf.nnz(), 4u);
  EXPECT_EQ(csf.fptr(1)[0], 0u);
  EXPECT_EQ(csf.fptr(1)[1], 2u);
  EXPECT_EQ(csf.fptr(1)[2], 3u);
  EXPECT_EQ(csf.fptr(1)[3], 4u);
  EXPECT_EQ(csf.fids(2)[0], 0u);
  EXPECT_EQ(csf.fids(2)[1], 1u);
  EXPECT_DOUBLE_EQ(csf.vals()[3], 4.0);

  // Root nnz prefix: slice 0 has 3 nonzeros, slice 1 has 1.
  EXPECT_EQ(csf.root_nnz_prefix()[0], 0u);
  EXPECT_EQ(csf.root_nnz_prefix()[1], 3u);
  EXPECT_EQ(csf.root_nnz_prefix()[2], 4u);
}

TEST(Csf, LevelOfModeInverse) {
  SparseTensor t = hand_tensor();
  const std::vector<int> order = {2, 0, 1};
  sort_tensor_perm(t, order, 1);
  const CsfTensor csf(t, order);
  EXPECT_EQ(csf.mode_at_level(0), 2);
  EXPECT_EQ(csf.level_of_mode(2), 0);
  EXPECT_EQ(csf.level_of_mode(0), 1);
  EXPECT_EQ(csf.level_of_mode(1), 2);
}

TEST(Csf, RejectsBadModeOrder) {
  SparseTensor t = hand_tensor();
  sort_tensor(t, 0, 1);
  EXPECT_THROW(CsfTensor(t, {0, 1}), Error);     // wrong length
  EXPECT_THROW(CsfTensor(t, {0, 0, 2}), Error);  // not a permutation
}

// Round-trip sweep over orders, roots, and skew.
class CsfRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(CsfRoundTripTest, ToCooRecoversTensor) {
  const auto [order, root, zipf] = GetParam();
  dims_t dims;
  std::uint64_t volume = 1;
  for (int m = 0; m < order; ++m) {
    dims.push_back(static_cast<idx_t>(20 + 10 * m));
    volume *= dims.back();
  }
  const nnz_t nnz = std::min<nnz_t>(3000, volume / 4);
  SparseTensor t = generate_synthetic(
      {.dims = dims, .nnz = nnz, .seed = 90, .zipf_exponent = zipf});
  const auto expected = sorted_entries(t);

  const auto mode_order = csf_mode_order(dims, root % order);
  sort_tensor_perm(t, mode_order, 2);
  const CsfTensor csf(t, mode_order);
  EXPECT_EQ(csf.nnz(), nnz);
  const SparseTensor back = csf.to_coo();
  EXPECT_EQ(sorted_entries(back), expected);
}

INSTANTIATE_TEST_SUITE_P(
    OrdersRootsSkew, CsfRoundTripTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values(0, 1),
                       ::testing::Values(0.0, 0.9)));

TEST(Csf, FiberPointersAreMonotoneAndCover) {
  SparseTensor t = generate_synthetic(
      {.dims = {40, 30, 20}, .nnz = 2500, .seed = 91});
  const auto order = csf_mode_order(t.dims(), -1);
  sort_tensor_perm(t, order, 1);
  const CsfTensor csf(t, order, CsfLayout::kWide);
  for (int l = 0; l < csf.order() - 1; ++l) {
    const auto fp = csf.fptr(l);
    ASSERT_EQ(fp.size(), csf.nfibers(l) + 1);
    EXPECT_EQ(fp.front(), 0u);
    for (std::size_t i = 1; i < fp.size(); ++i) {
      EXPECT_LT(fp[i - 1], fp[i]);  // strictly increasing: no empty fibers
    }
    EXPECT_EQ(fp.back(), csf.nfibers(l + 1));
  }
}

TEST(Csf, RootFidsAreStrictlyIncreasing) {
  SparseTensor t = generate_synthetic(
      {.dims = {50, 20, 20}, .nnz = 1500, .seed = 92});
  const auto order = csf_mode_order(t.dims(), 0);
  sort_tensor_perm(t, order, 1);
  const CsfTensor csf(t, order, CsfLayout::kWide);
  const auto fids = csf.fids(0);
  for (std::size_t i = 1; i < fids.size(); ++i) {
    EXPECT_LT(fids[i - 1], fids[i]);
  }
}

TEST(Csf, MemoryBytesBounded) {
  SparseTensor t = generate_synthetic(
      {.dims = {30, 30, 30}, .nnz = 2000, .seed = 93});
  const auto order = csf_mode_order(t.dims(), -1);
  sort_tensor_perm(t, order, 1);
  const CsfTensor csf(t, order, CsfLayout::kWide);
  // At least the leaves (vals + fids), at most the fully uncompressed COO
  // plus pointer overhead.
  const std::uint64_t lower = 2000 * (sizeof(val_t) + sizeof(idx_t));
  const std::uint64_t upper =
      2000 * (sizeof(val_t) + 3 * sizeof(idx_t) + 3 * sizeof(nnz_t)) +
      (2000 + 64) * sizeof(nnz_t);
  EXPECT_GE(csf.memory_bytes(), lower);
  EXPECT_LE(csf.memory_bytes(), upper);
}

TEST(Csf, CompressionBeatsCooOnDuplicatePrefixes) {
  // A tensor with few distinct (mode0, mode1) pairs compresses well.
  SparseTensor t({4, 4, 10000});
  Rng rng(7);
  std::set<idx_t> used;
  for (int k = 0; k < 5000; ++k) {
    const idx_t c[] = {rng.next_index(4), rng.next_index(4),
                       rng.next_index(10000)};
    t.push_back(c, 1.0);
  }
  const auto order = csf_mode_order(t.dims(), 0);
  sort_tensor_perm(t, order, 1);
  const CsfTensor csf(t, order);
  const std::uint64_t coo_bytes =
      t.nnz() * (3 * sizeof(idx_t) + sizeof(val_t));
  EXPECT_LT(csf.memory_bytes(), coo_bytes);
}

// ---------------------------------------------------------------- CsfSet

TEST(CsfSet, OneModePolicyBuildsOneRep) {
  SparseTensor t = generate_synthetic(
      {.dims = {50, 10, 30}, .nnz = 1000, .seed = 94});
  const CsfSet set(t, CsfPolicy::kOneMode, 2);
  EXPECT_EQ(set.csfs().size(), 1u);
  EXPECT_EQ(set.csfs()[0].mode_at_level(0), 1);  // smallest mode roots
}

TEST(CsfSet, TwoModePolicyRootsSmallestAndLargest) {
  SparseTensor t = generate_synthetic(
      {.dims = {50, 10, 30}, .nnz = 1000, .seed = 95});
  const CsfSet set(t, CsfPolicy::kTwoMode, 2);
  ASSERT_EQ(set.csfs().size(), 2u);
  EXPECT_EQ(set.csfs()[0].mode_at_level(0), 1);  // smallest
  EXPECT_EQ(set.csfs()[1].mode_at_level(0), 0);  // largest
}

TEST(CsfSet, AllModePolicyRootsEveryMode) {
  SparseTensor t = generate_synthetic(
      {.dims = {50, 10, 30}, .nnz = 1000, .seed = 96});
  const CsfSet set(t, CsfPolicy::kAllMode, 2);
  ASSERT_EQ(set.csfs().size(), 3u);
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(set.csfs()[static_cast<std::size_t>(m)].mode_at_level(0), m);
  }
}

TEST(CsfSet, DispatchPrefersRootRepresentation) {
  SparseTensor t = generate_synthetic(
      {.dims = {50, 10, 30}, .nnz = 1000, .seed = 97});
  const CsfSet set(t, CsfPolicy::kTwoMode, 2);
  int level = -1;
  const CsfTensor& for_smallest = set.csf_for_mode(1, level);
  EXPECT_EQ(level, 0);
  EXPECT_EQ(for_smallest.mode_at_level(0), 1);
  const CsfTensor& for_largest = set.csf_for_mode(0, level);
  EXPECT_EQ(level, 0);
  EXPECT_EQ(for_largest.mode_at_level(0), 0);
  // Mode 2 is root of neither: falls back to rep 0 at its level there.
  const CsfTensor& for_middle = set.csf_for_mode(2, level);
  EXPECT_EQ(&for_middle, &set.csfs()[0]);
  EXPECT_GT(level, 0);
}

TEST(CsfSet, AllModeDispatchAlwaysRoot) {
  SparseTensor t = generate_synthetic(
      {.dims = {20, 30, 40}, .nnz = 800, .seed = 98});
  const CsfSet set(t, CsfPolicy::kAllMode, 1);
  for (int m = 0; m < 3; ++m) {
    int level = -1;
    (void)set.csf_for_mode(m, level);
    EXPECT_EQ(level, 0) << "mode " << m;
  }
}

TEST(CsfSet, EqualDimsTwoModeDedupes) {
  SparseTensor t = generate_synthetic(
      {.dims = {25, 25, 25}, .nnz = 700, .seed = 99});
  const CsfSet set(t, CsfPolicy::kTwoMode, 1);
  // Smallest and largest coincide: only one representation.
  EXPECT_EQ(set.csfs().size(), 1u);
}

TEST(CsfSet, SortTimeReported) {
  SparseTensor t = generate_synthetic(
      {.dims = {80, 80, 80}, .nnz = 20000, .seed = 100});
  double sort_seconds = 0.0;
  const CsfSet set(t, CsfPolicy::kAllMode, 2, &sort_seconds);
  EXPECT_GT(sort_seconds, 0.0);
}

TEST(CsfSet, MemoryBytesSumAcrossReps) {
  SparseTensor t = generate_synthetic(
      {.dims = {30, 40, 50}, .nnz = 1200, .seed = 101});
  SparseTensor t2 = t;
  const CsfSet one(t, CsfPolicy::kOneMode, 1);
  const CsfSet all(t2, CsfPolicy::kAllMode, 1);
  EXPECT_GT(all.memory_bytes(), one.memory_bytes());
}

}  // namespace
}  // namespace sptd
