// Tests for src/la: matrix, BLAS-like kernels, Cholesky, normalization.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/matrix.hpp"
#include "la/norms.hpp"

namespace sptd::la {
namespace {

constexpr val_t kTol = 1e-10;

Matrix random_matrix(idx_t rows, idx_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::random(rows, cols, rng);
}

/// Dense SPD matrix A^T A + n*I built from a random A.
Matrix random_spd(idx_t n, std::uint64_t seed) {
  const Matrix a = random_matrix(n + 3, n, seed);
  Matrix spd(n, n);
  ata(a, spd, 1);
  for (idx_t i = 0; i < n; ++i) {
    spd(i, i) += static_cast<val_t>(n);
  }
  return spd;
}

// ---------------------------------------------------------------- matrix

TEST(Matrix, ConstructionFillsInitialValue) {
  Matrix m(3, 4, 2.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (idx_t i = 0; i < 3; ++i) {
    for (idx_t j = 0; j < 4; ++j) {
      EXPECT_EQ(m(i, j), 2.5);
    }
  }
}

TEST(Matrix, RowMajorLayout) {
  Matrix m(2, 3);
  m(1, 2) = 9.0;
  // Rows are row-major at the padded leading dimension.
  EXPECT_GE(m.ld(), m.cols());
  EXPECT_EQ(m.ld() % (sptd::kCacheLineBytes / sizeof(val_t)), 0u);
  EXPECT_EQ(m.data()[1 * m.ld() + 2], 9.0);
  EXPECT_EQ(m.row_ptr(1)[2], 9.0);
  EXPECT_EQ(m.row(1)[2], 9.0);
}

TEST(Matrix, RowsAreCacheLineAligned) {
  const Matrix m(5, 3);
  for (idx_t i = 0; i < 5; ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.row_ptr(i)) %
                  sptd::kCacheLineBytes,
              0u);
  }
}

TEST(Matrix, PaddingLanesStayZero) {
  Matrix m(3, 5, 2.0);
  m.fill(7.0);
  for (idx_t i = 0; i < 3; ++i) {
    const val_t* row = m.row_ptr(i);
    for (idx_t j = 0; j < m.ld(); ++j) {
      EXPECT_EQ(row[j], j < 5 ? 7.0 : 0.0);
    }
  }
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix eye = Matrix::identity(4);
  for (idx_t i = 0; i < 4; ++i) {
    for (idx_t j = 0; j < 4; ++j) {
      EXPECT_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, RandomIsDeterministicInSeed) {
  EXPECT_EQ(random_matrix(5, 5, 42), random_matrix(5, 5, 42));
}

TEST(Matrix, RandomEntriesInUnitInterval) {
  const Matrix m = random_matrix(20, 20, 1);
  for (const val_t v : m.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Matrix, ZeroParallelClearsAllEntries) {
  Matrix m(100, 7, 3.0);
  m.zero_parallel(4);
  for (const val_t v : m.values()) {
    EXPECT_EQ(v, 0.0);
  }
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 1.0);
  b(1, 0) = 4.0;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 3.0);
}

TEST(Matrix, FroNormSq) {
  Matrix m(2, 2);
  m(0, 0) = 3.0;
  m(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.fro_norm_sq(), 25.0);
}

// ------------------------------------------------------------------ blas

TEST(Blas, AtaMatchesMatmulAtB) {
  const Matrix a = random_matrix(50, 8, 3);
  Matrix via_ata(8, 8);
  ata(a, via_ata, 1);
  Matrix via_mm(8, 8);
  matmul_at_b(a, a, via_mm);
  EXPECT_LT(via_ata.max_abs_diff(via_mm), kTol);
}

TEST(Blas, AtaIsSymmetric) {
  const Matrix a = random_matrix(30, 6, 4);
  Matrix g(6, 6);
  ata(a, g, 2);
  for (idx_t i = 0; i < 6; ++i) {
    for (idx_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    }
  }
}

class AtaThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(AtaThreadsTest, ThreadCountDoesNotChangeResult) {
  const Matrix a = random_matrix(1000, 12, 5);
  Matrix serial(12, 12), parallel(12, 12);
  ata(a, serial, 1);
  ata(a, parallel, GetParam());
  EXPECT_LT(serial.max_abs_diff(parallel), kTol);
}

INSTANTIATE_TEST_SUITE_P(Threads, AtaThreadsTest,
                         ::testing::Values(2, 3, 4, 8));

TEST(Blas, HadamardMultipliesElementwise) {
  Matrix a(2, 2, 3.0);
  Matrix b(2, 2, 0.5);
  b(0, 1) = 2.0;
  hadamard_inplace(a, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a(0, 1), 6.0);
}

TEST(Blas, GramHadamardSkipsRequestedMode) {
  std::vector<Matrix> grams;
  grams.emplace_back(2, 2, 2.0);
  grams.emplace_back(2, 2, 3.0);
  grams.emplace_back(2, 2, 5.0);
  Matrix out(2, 2);
  gram_hadamard(grams, 1, out);
  EXPECT_DOUBLE_EQ(out(0, 0), 10.0);  // 2 * 5, skipping the 3
  gram_hadamard(grams, -1, out);
  EXPECT_DOUBLE_EQ(out(1, 1), 30.0);  // all three
}

TEST(Blas, MatmulIdentityIsNoop) {
  const Matrix a = random_matrix(4, 4, 6);
  Matrix c(4, 4);
  matmul(a, Matrix::identity(4), c);
  EXPECT_LT(a.max_abs_diff(c), kTol);
}

TEST(Blas, MatmulKnownProduct) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  val_t av[] = {1, 2, 3, 4, 5, 6};
  val_t bv[] = {7, 8, 9, 10, 11, 12};
  for (idx_t i = 0; i < a.rows(); ++i) {
    for (idx_t j = 0; j < a.cols(); ++j) {
      a(i, j) = av[i * a.cols() + j];
    }
  }
  for (idx_t i = 0; i < b.rows(); ++i) {
    for (idx_t j = 0; j < b.cols(); ++j) {
      b(i, j) = bv[i * b.cols() + j];
    }
  }
  Matrix c(2, 2);
  matmul(a, b, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Blas, FroInnerMatchesSerialSum) {
  const Matrix a = random_matrix(37, 5, 7);
  const Matrix b = random_matrix(37, 5, 8);
  val_t expected = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expected += a.data()[i] * b.data()[i];
  }
  EXPECT_NEAR(fro_inner(a, b, 4), expected, 1e-9);
}

// -------------------------------------------------------------- cholesky

TEST(Cholesky, FactorsKnownMatrix) {
  // [[4, 2], [2, 3]] = L L^T with L = [[2, 0], [1, sqrt(2)]].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  ASSERT_TRUE(potrf(a));
  EXPECT_NEAR(a(0, 0), 2.0, kTol);
  EXPECT_NEAR(a(1, 0), 1.0, kTol);
  EXPECT_NEAR(a(1, 1), std::sqrt(2.0), kTol);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_FALSE(potrf(a));
}

TEST(Cholesky, ReconstructsSpdMatrix) {
  const Matrix spd = random_spd(10, 11);
  Matrix f = spd;
  ASSERT_TRUE(potrf(f));
  // L L^T must reproduce spd.
  Matrix l(10, 10);
  for (idx_t i = 0; i < 10; ++i) {
    for (idx_t j = 0; j <= i; ++j) {
      l(i, j) = f(i, j);
    }
  }
  Matrix lt(10, 10);
  for (idx_t i = 0; i < 10; ++i) {
    for (idx_t j = 0; j < 10; ++j) {
      lt(i, j) = l(j, i);
    }
  }
  Matrix rebuilt(10, 10);
  matmul(l, lt, rebuilt);
  EXPECT_LT(rebuilt.max_abs_diff(spd), 1e-8);
}

class PotrsThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(PotrsThreadsTest, SolvesRandomSystems) {
  const idx_t n = 8;
  const Matrix spd = random_spd(n, 13);
  const Matrix x_true = random_matrix(40, n, 14);
  // b = x_true * spd (rows are right-hand sides of V x = b).
  Matrix b(40, n);
  matmul(x_true, spd, b);
  Matrix f = spd;
  ASSERT_TRUE(potrf(f));
  potrs(f, b, GetParam());
  EXPECT_LT(b.max_abs_diff(x_true), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Threads, PotrsThreadsTest,
                         ::testing::Values(1, 2, 4));

TEST(Cholesky, SolveNormalEquationsMatchesDirectSolve) {
  const idx_t n = 6;
  const Matrix spd = random_spd(n, 15);
  const Matrix x_true = random_matrix(20, n, 16);
  Matrix b(20, n);
  matmul(x_true, spd, b);
  solve_normal_equations(spd, b, 2);
  EXPECT_LT(b.max_abs_diff(x_true), 1e-7);
}

TEST(Cholesky, SolveNormalEquationsRegularizesSingular) {
  // Rank-deficient V (all-ones outer product); must not throw and must
  // produce finite output.
  const idx_t n = 4;
  Matrix v(n, n, 1.0);
  Matrix m = random_matrix(10, n, 17);
  solve_normal_equations(v, m, 1);
  for (const val_t x : m.values()) {
    EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(Cholesky, SolveNormalEquationsZeroMatrixRegularizes) {
  Matrix v(3, 3, 0.0);
  Matrix m = random_matrix(5, 3, 18);
  solve_normal_equations(v, m, 1);
  for (const val_t x : m.values()) {
    EXPECT_TRUE(std::isfinite(x));
  }
}

// ----------------------------------------------------------------- norms

TEST(Norms, TwoNormNormalizesColumnsToUnitLength) {
  Matrix a = random_matrix(50, 6, 19);
  std::vector<val_t> lambda(6);
  normalize_columns(a, lambda, MatNorm::kTwo, 2);
  std::vector<val_t> norms(6);
  column_two_norms(a, norms);
  for (idx_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(norms[j], 1.0, 1e-10);
    EXPECT_GT(lambda[j], 0.0);
  }
}

TEST(Norms, TwoNormLambdaTimesColumnRestoresOriginal) {
  Matrix orig = random_matrix(30, 4, 20);
  Matrix a = orig;
  std::vector<val_t> lambda(4);
  normalize_columns(a, lambda, MatNorm::kTwo, 1);
  for (idx_t i = 0; i < 30; ++i) {
    for (idx_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(a(i, j) * lambda[j], orig(i, j), 1e-10);
    }
  }
}

TEST(Norms, MaxNormUsesLargestAbsEntryClampedAtOne) {
  Matrix a(3, 2, 0.0);
  a(0, 0) = -4.0;  // column 0 max-abs 4
  a(1, 0) = 2.0;
  a(2, 1) = 0.5;   // column 1 max-abs 0.5 -> clamped to 1
  std::vector<val_t> lambda(2);
  normalize_columns(a, lambda, MatNorm::kMax, 1);
  EXPECT_DOUBLE_EQ(lambda[0], 4.0);
  EXPECT_DOUBLE_EQ(lambda[1], 1.0);
  EXPECT_DOUBLE_EQ(a(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(a(2, 1), 0.5);  // unchanged by clamped lambda
}

TEST(Norms, ZeroColumnGetsUnitLambdaAndStaysZero) {
  Matrix a(4, 2, 0.0);
  a(0, 0) = 3.0;
  std::vector<val_t> lambda(2);
  normalize_columns(a, lambda, MatNorm::kTwo, 1);
  EXPECT_DOUBLE_EQ(lambda[1], 1.0);
  for (idx_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a(i, 1), 0.0);
  }
}

class NormThreadsTest
    : public ::testing::TestWithParam<std::tuple<int, MatNorm>> {};

TEST_P(NormThreadsTest, ThreadCountDoesNotChangeResult) {
  const auto [nthreads, which] = GetParam();
  Matrix serial = random_matrix(500, 9, 21);
  Matrix parallel = serial;
  std::vector<val_t> lambda_s(9), lambda_p(9);
  normalize_columns(serial, lambda_s, which, 1);
  normalize_columns(parallel, lambda_p, which, nthreads);
  EXPECT_LT(serial.max_abs_diff(parallel), 1e-12);
  for (idx_t j = 0; j < 9; ++j) {
    EXPECT_NEAR(lambda_s[j], lambda_p[j], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndNorms, NormThreadsTest,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(MatNorm::kTwo, MatNorm::kMax)));

}  // namespace
}  // namespace sptd::la
