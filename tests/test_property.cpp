// Cross-module property tests: identities that must hold between
// independent implementations, swept over random seeds and tensor shapes.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cpd/cpals.hpp"
#include "cpd/kruskal.hpp"
#include "csf/csf.hpp"
#include "mttkrp/mttkrp.hpp"
#include "mttkrp/tiled.hpp"
#include "sort/sort.hpp"
#include "tensor/dense.hpp"
#include "tensor/reorder.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

// Sweep seeds x skew: CSF MTTKRP == COO MTTKRP == tiled MTTKRP on the
// same random tensor, for every mode.
class MttkrpConsistencyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MttkrpConsistencyTest, ThreeKernelsAgree) {
  const auto [seed, zipf] = GetParam();
  const SparseTensor t = generate_synthetic(
      {.dims = {40, 26, 33}, .nnz = 2500,
       .seed = static_cast<std::uint64_t>(seed), .zipf_exponent = zipf});
  Rng rng(static_cast<std::uint64_t>(seed) + 1);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(t.dim(m), 7, rng));
  }
  SparseTensor sorted = t;
  const CsfSet set(sorted, CsfPolicy::kTwoMode, 2);
  MttkrpOptions mo;
  mo.nthreads = 2;
  MttkrpWorkspace ws(mo, 7, 3);
  for (int mode = 0; mode < 3; ++mode) {
    la::Matrix via_csf(t.dim(mode), 7);
    mttkrp(set, factors, mode, via_csf, ws);
    la::Matrix via_coo(t.dim(mode), 7);
    mttkrp_coo(t, factors, mode, via_coo, mo);
    const TiledTensor tiled(t, mode, 3);
    la::Matrix via_tiled(t.dim(mode), 7);
    mttkrp_tiled(tiled, factors, via_tiled);
    EXPECT_LT(via_csf.max_abs_diff(via_coo), 1e-9)
        << "csf vs coo, mode " << mode;
    EXPECT_LT(via_tiled.max_abs_diff(via_coo), 1e-9)
        << "tiled vs coo, mode " << mode;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsSkew, MttkrpConsistencyTest,
    ::testing::Combine(::testing::Values(11, 22, 33, 44, 55),
                       ::testing::Values(0.0, 0.8)));

// The fit CP-ALS reports through its incremental identity must equal the
// fit recomputed from scratch on the returned model.
class FitIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(FitIdentityTest, ReportedFitMatchesRecomputed) {
  SparseTensor x = generate_synthetic(
      {.dims = {30, 22, 26}, .nnz = 2000,
       .seed = static_cast<std::uint64_t>(GetParam()),
       .zipf_exponent = 0.5});
  const SparseTensor original = x;
  CpalsOptions opts;
  opts.rank = 5;
  opts.max_iterations = 6;
  opts.tolerance = 0.0;
  opts.nthreads = 2;
  const CpalsResult r = cp_als(x, opts);
  const double recomputed = r.model.fit_to(original, 2);
  EXPECT_NEAR(r.fit_history.back(), recomputed, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FitIdentityTest,
                         ::testing::Values(101, 202, 303, 404));

// Relabeling slices permutes factor rows but cannot change the
// achievable fit (same seed, same iteration count: the math commutes
// with relabeling only in exact arithmetic at iteration 0, so compare
// final fits loosely).
TEST(Invariance, RelabelingPreservesDecomposability) {
  SparseTensor a = generate_synthetic(
      {.dims = {25, 25, 25}, .nnz = 1800, .seed = 500,
       .zipf_exponent = 0.6});
  SparseTensor b = a;
  shuffle_all_modes(b, 77);

  CpalsOptions opts;
  opts.rank = 4;
  opts.max_iterations = 15;
  opts.tolerance = 0.0;
  const double fit_a = cp_als(a, opts).fit_history.back();
  const double fit_b = cp_als(b, opts).fit_history.back();
  // Different random init interacts with different labelings; fits agree
  // to a loose tolerance on this easy problem.
  EXPECT_NEAR(fit_a, fit_b, 0.05);
}

// Sorting by any mode never changes the dense tensor.
class SortDenseInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(SortDenseInvarianceTest, DenseContentUnchanged) {
  SparseTensor t = generate_synthetic(
      {.dims = {12, 14, 16}, .nnz = 400,
       .seed = static_cast<std::uint64_t>(GetParam())});
  const DenseTensor before = DenseTensor::from_coo(t);
  for (int mode = 0; mode < 3; ++mode) {
    sort_tensor(t, mode, 2);
    const DenseTensor after = DenseTensor::from_coo(t);
    for (std::size_t i = 0; i < before.values().size(); ++i) {
      ASSERT_EQ(before.values()[i], after.values()[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortDenseInvarianceTest,
                         ::testing::Values(1, 2, 3));

// MTTKRP linearity: MTTKRP(alpha * X) == alpha * MTTKRP(X).
TEST(MttkrpAlgebra, LinearInTensorValues) {
  SparseTensor t = generate_synthetic(
      {.dims = {20, 20, 20}, .nnz = 900, .seed = 600});
  Rng rng(601);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(t.dim(m), 5, rng));
  }
  MttkrpOptions mo;
  la::Matrix base(t.dim(0), 5);
  mttkrp_coo(t, factors, 0, base, mo);

  SparseTensor scaled = t;
  for (val_t& v : scaled.vals()) {
    v *= val_t{2.5};
  }
  la::Matrix scaled_out(t.dim(0), 5);
  mttkrp_coo(scaled, factors, 0, scaled_out, mo);
  for (idx_t i = 0; i < base.rows(); ++i) {
    for (idx_t j = 0; j < base.cols(); ++j) {
      EXPECT_NEAR(scaled_out(i, j), 2.5 * base(i, j), 1e-9);
    }
  }
}

// MTTKRP additivity in factors: using (B + C) for one input mode equals
// the sum of running with B and with C.
TEST(MttkrpAlgebra, AdditiveInFactorMatrices) {
  SparseTensor t = generate_synthetic(
      {.dims = {15, 18, 21}, .nnz = 600, .seed = 700});
  Rng rng(701);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(t.dim(m), 4, rng));
  }
  const la::Matrix extra = la::Matrix::random(t.dim(1), 4, rng);

  MttkrpOptions mo;
  la::Matrix with_b(t.dim(0), 4);
  mttkrp_coo(t, factors, 0, with_b, mo);

  auto factors_c = factors;
  factors_c[1] = extra;
  la::Matrix with_c(t.dim(0), 4);
  mttkrp_coo(t, factors_c, 0, with_c, mo);

  auto factors_sum = factors;
  for (idx_t i = 0; i < t.dim(1); ++i) {
    for (idx_t j = 0; j < 4; ++j) {
      factors_sum[1](i, j) += extra(i, j);
    }
  }
  la::Matrix with_sum(t.dim(0), 4);
  mttkrp_coo(t, factors_sum, 0, with_sum, mo);

  for (idx_t i = 0; i < with_sum.rows(); ++i) {
    for (idx_t j = 0; j < with_sum.cols(); ++j) {
      EXPECT_NEAR(with_sum(i, j), with_b(i, j) + with_c(i, j), 1e-9);
    }
  }
}

// Gram-matrix identity: lambda^T (⊙ grams) lambda equals the dense
// reconstruction's norm for random Kruskal models.
class KruskalNormTest : public ::testing::TestWithParam<int> {};

TEST_P(KruskalNormTest, GramIdentityHolds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  KruskalModel model;
  const idx_t rank = 3;
  model.lambda.clear();
  for (idx_t r = 0; r < rank; ++r) {
    model.lambda.push_back(static_cast<val_t>(rng.next_double(0.5, 2.0)));
  }
  for (const idx_t d : {idx_t{7}, idx_t{6}, idx_t{5}}) {
    model.factors.push_back(la::Matrix::random(d, rank, rng));
  }
  const DenseTensor dense =
      DenseTensor::from_kruskal(model.lambda, model.factors);
  EXPECT_NEAR(model.norm_sq(1), dense.norm_sq(),
              1e-9 * std::max(1.0, dense.norm_sq()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KruskalNormTest,
                         ::testing::Values(800, 801, 802, 803, 804));

}  // namespace
}  // namespace sptd
