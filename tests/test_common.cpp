// Tests for src/common: timers, RNG, options parser, logging, alignment.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace sptd {
namespace {

// ---------------------------------------------------------------- timers

TEST(WallTimer, StartsAtZero) {
  WallTimer t;
  EXPECT_EQ(t.seconds(), 0.0);
}

TEST(WallTimer, AccumulatesAcrossIntervals) {
  WallTimer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.stop();
  const double first = t.seconds();
  EXPECT_GT(first, 0.0);
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.stop();
  EXPECT_GT(t.seconds(), first);
}

TEST(WallTimer, AddSecondsAccumulates) {
  WallTimer t;
  t.add_seconds(1.5);
  t.add_seconds(0.5);
  EXPECT_DOUBLE_EQ(t.seconds(), 2.0);
}

TEST(WallTimer, ResetClears) {
  WallTimer t;
  t.add_seconds(3.0);
  t.reset();
  EXPECT_EQ(t.seconds(), 0.0);
}

TEST(WallTimer, StopWithoutStartIsNoop) {
  WallTimer t;
  t.stop();
  EXPECT_EQ(t.seconds(), 0.0);
}

TEST(RoutineTimers, NamesMatchPaperColumns) {
  EXPECT_STREQ(routine_name(Routine::kMttkrp), "MTTKRP");
  EXPECT_STREQ(routine_name(Routine::kInverse), "INVERSE");
  EXPECT_STREQ(routine_name(Routine::kMatAtA), "MAT A^TA");
  EXPECT_STREQ(routine_name(Routine::kMatNorm), "MAT NORM");
  EXPECT_STREQ(routine_name(Routine::kFit), "CPD FIT");
  EXPECT_STREQ(routine_name(Routine::kSort), "SORT");
}

TEST(RoutineTimers, AccumulateSumsTables) {
  RoutineTimers a, b;
  a.add_seconds(Routine::kMttkrp, 2.0);
  b.add_seconds(Routine::kMttkrp, 3.0);
  b.add_seconds(Routine::kSort, 1.0);
  a.accumulate(b);
  EXPECT_DOUBLE_EQ(a.seconds(Routine::kMttkrp), 5.0);
  EXPECT_DOUBLE_EQ(a.seconds(Routine::kSort), 1.0);
}

TEST(RoutineTimers, ScaleDividesEveryRoutine) {
  RoutineTimers t;
  t.add_seconds(Routine::kMttkrp, 10.0);
  t.add_seconds(Routine::kFit, 4.0);
  t.scale(0.5);
  EXPECT_DOUBLE_EQ(t.seconds(Routine::kMttkrp), 5.0);
  EXPECT_DOUBLE_EQ(t.seconds(Routine::kFit), 2.0);
}

TEST(RoutineTimers, TotalIsSumOfRoutines) {
  RoutineTimers t;
  t.add_seconds(Routine::kMttkrp, 1.0);
  t.add_seconds(Routine::kInverse, 2.0);
  t.add_seconds(Routine::kSort, 3.0);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 6.0);
}

TEST(RoutineTimers, ScopedTimerRecords) {
  RoutineTimers t;
  {
    ScopedRoutineTimer guard(t, Routine::kFit);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(t.seconds(Routine::kFit), 0.0);
  EXPECT_EQ(t.seconds(Routine::kMttkrp), 0.0);
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, DoubleRangeRespected) {
  Rng r(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(37), 37u);
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng r(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(r.next_below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowApproximatelyUniform) {
  Rng r(11);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[r.next_below(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng r(12);
  constexpr int kDraws = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng child = parent.split();
  // Child stream should not trivially replay the parent stream.
  Rng parent_copy(99);
  parent_copy.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, KnownFirstOutputs) {
  // Reference values from the SplitMix64 reference implementation with
  // seed 0: first output is 0xe220a8397b1dcdaf.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
}

// --------------------------------------------------------------- options

TEST(Options, DefaultsApplyWhenAbsent) {
  Options o("prog", "test");
  o.add("rank", "35", "rank");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(o.parse(1, argv));
  EXPECT_EQ(o.get_int("rank"), 35);
  EXPECT_FALSE(o.given("rank"));
}

TEST(Options, SpaceSeparatedValue) {
  Options o("prog", "test");
  o.add("rank", "35", "rank");
  const char* argv[] = {"prog", "--rank", "17"};
  ASSERT_TRUE(o.parse(3, argv));
  EXPECT_EQ(o.get_int("rank"), 17);
  EXPECT_TRUE(o.given("rank"));
}

TEST(Options, EqualsSeparatedValue) {
  Options o("prog", "test");
  o.add("scale", "1.0", "scale");
  const char* argv[] = {"prog", "--scale=0.25"};
  ASSERT_TRUE(o.parse(2, argv));
  EXPECT_DOUBLE_EQ(o.get_double("scale"), 0.25);
}

TEST(Options, FlagDefaultsFalseAndSetsTrue) {
  Options o("prog", "test");
  o.add_flag("verbose", "verbosity");
  const char* argv0[] = {"prog"};
  Options o2 = o;
  ASSERT_TRUE(o2.parse(1, argv0));
  EXPECT_FALSE(o2.get_bool("verbose"));
  const char* argv1[] = {"prog", "--verbose"};
  ASSERT_TRUE(o.parse(2, argv1));
  EXPECT_TRUE(o.get_bool("verbose"));
}

TEST(Options, IntListParses) {
  Options o("prog", "test");
  o.add("threads", "1,2,4", "thread list");
  const char* argv[] = {"prog", "--threads", "1,2,4,8,16,32"};
  ASSERT_TRUE(o.parse(3, argv));
  EXPECT_EQ(o.get_int_list("threads"),
            (std::vector<int>{1, 2, 4, 8, 16, 32}));
}

TEST(Options, UnknownOptionThrows) {
  Options o("prog", "test");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(o.parse(3, argv), Error);
}

TEST(Options, MissingValueThrows) {
  Options o("prog", "test");
  o.add("rank", "35", "rank");
  const char* argv[] = {"prog", "--rank"};
  EXPECT_THROW(o.parse(2, argv), Error);
}

TEST(Options, BadIntThrows) {
  Options o("prog", "test");
  o.add("rank", "35", "rank");
  const char* argv[] = {"prog", "--rank", "abc"};
  ASSERT_TRUE(o.parse(3, argv));
  EXPECT_THROW((void)o.get_int("rank"), Error);
}

TEST(Options, BadBoolThrows) {
  Options o("prog", "test");
  o.add("flaky", "maybe", "bad default");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(o.parse(1, argv));
  EXPECT_THROW((void)o.get_bool("flaky"), Error);
}

TEST(Options, PositionalArgumentsCollected) {
  Options o("prog", "test");
  o.add("rank", "35", "rank");
  const char* argv[] = {"prog", "file1.tns", "--rank", "5", "file2.tns"};
  ASSERT_TRUE(o.parse(5, argv));
  EXPECT_EQ(o.positional(),
            (std::vector<std::string>{"file1.tns", "file2.tns"}));
}

TEST(Options, DuplicateRegistrationThrows) {
  Options o("prog", "test");
  o.add("rank", "35", "rank");
  EXPECT_THROW(o.add("rank", "36", "again"), Error);
}

TEST(Options, HelpMentionsOptionsAndDefaults) {
  Options o("prog", "summary line");
  o.add("rank", "35", "decomposition rank");
  const std::string h = o.help();
  EXPECT_NE(h.find("--rank"), std::string::npos);
  EXPECT_NE(h.find("35"), std::string::npos);
  EXPECT_NE(h.find("summary line"), std::string::npos);
}

// ------------------------------------------------------------------ misc

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    SPTD_CHECK(1 == 2, "custom context");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

TEST(Aligned, VectorBufferIsCacheLineAligned) {
  aligned_vector<double> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes,
            0u);
}

TEST(Aligned, CachePaddedElementsDoNotShareLines) {
  std::vector<CachePadded<int>> padded(4);
  const auto a = reinterpret_cast<std::uintptr_t>(&padded[0]);
  const auto b = reinterpret_cast<std::uintptr_t>(&padded[1]);
  EXPECT_GE(b - a, kCacheLineBytes);
}

TEST(Log, LevelFilterApplies) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_info("should be filtered (not asserted, just exercising the path)");
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

}  // namespace
}  // namespace sptd
