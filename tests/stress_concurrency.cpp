// Concurrency stress harness for the lock-free and locked primitives the
// parallel MTTKRP variants are built on. The primitive tests drive the
// code with raw std::thread — never an omp-backed parallel_region —
// because this binary is what the SPTD_SANITIZE=thread CI job runs, and
// ThreadSanitizer cannot model libgomp's barriers and team handshakes
// (tools/tsan.supp documents that policy). The PoolBackendStress section
// at the bottom is the exception that proves the rule: the pool backend
// synchronizes through std primitives TSan models natively, so its
// parallel_region teams run fully instrumented. The assertions are written so that a protocol
// bug surfaces twice: as a failed count/bitwise check here, and as a data
// race under TSan — double-issued work-stealing chunks, for example, make
// two threads write the same plain (unsynchronized) array slot.
//
// The harness also runs as a regular ctest in uninstrumented builds,
// where the same checks catch lost updates and double claims the slow way.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <numeric>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "la/matrix.hpp"
#include "parallel/backend.hpp"
#include "parallel/locks.hpp"
#include "parallel/team.hpp"
#include "dist/shm_ring.hpp"
#include "dist/transport_shm.hpp"
#include "parallel/reduce.hpp"
#include "parallel/schedule.hpp"
#include "resilience/checkpoint.hpp"

namespace sptd {
namespace {

// Thread/iteration budgets. TSan serializes aggressively (and CI also runs
// this box oversubscribed), so the counts are sized for seconds, not
// minutes, while still forcing thousands of contended claims per test.
constexpr int kThreads = 4;
constexpr int kRounds = 25;

/// Launches \p nthreads std::threads that all start work at the same
/// instant (a barrier inside), each running body(tid), and joins them.
template <typename Body>
void run_threads(int nthreads, Body&& body) {
  std::barrier gate(nthreads);
  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    team.emplace_back([&, t] {
      gate.arrive_and_wait();
      body(t);
    });
  }
  for (std::thread& th : team) {
    th.join();
  }
}

/// Back-loaded prefix: every slice weighs 1 except the last
/// (kThreads - 1), which each weigh \p heavy. The weighted partition
/// hands threads 1.. one heavy tail slice apiece and thread 0 the whole
/// light prefix — so by slice *count* thread 0 owns nearly everything and
/// the other workers are forced onto the steal path against its deque.
std::vector<nnz_t> back_loaded_prefix(nnz_t total, nnz_t heavy) {
  std::vector<nnz_t> prefix(static_cast<std::size_t>(total) + 1, 0);
  for (nnz_t i = 0; i < total; ++i) {
    const bool tail = i + (kThreads - 1) >= total;
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + (tail ? heavy : 1);
  }
  return prefix;
}

// --------------------------------------------------- work-stealing deques

// Exactly-once chunk issuance under full contention: every slice is
// written to a PLAIN int array by whichever thread claimed it. A protocol
// bug that double-issues a chunk (the owner-pop vs thief-CAS race at the
// last chunk of a deque) turns into two unsynchronized writes to the same
// slot — a TSan report — and a visit count != 1 here.
TEST(WorkStealingStress, ExactlyOnceUnderContention) {
  const nnz_t total = 4096;
  // High chunk_target -> many small chunks -> many CAS claims per launch.
  const SliceSchedule sched(SchedulePolicy::kWorkStealing, total, {},
                            kThreads, /*chunk_target=*/64);
  std::vector<int> visits(static_cast<std::size_t>(total), 0);
  for (int round = 0; round < kRounds; ++round) {
    std::fill(visits.begin(), visits.end(), 0);
    sched.reset();
    run_threads(kThreads, [&](int tid) {
      sched.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
        for (nnz_t s = begin; s < end; ++s) {
          ++visits[static_cast<std::size_t>(s)];
        }
      });
    });
    for (nnz_t s = 0; s < total; ++s) {
      ASSERT_EQ(visits[static_cast<std::size_t>(s)], 1)
          << "slice " << s << " round " << round;
    }
  }
}

// Owner pops the front while thieves CAS the back of the SAME deque:
// a front-loaded weighted seed hands thread 0 nearly all chunks, so the
// other workers must live on the steal path, colliding with the owner on
// its packed (lo, hi) cursor word every claim.
TEST(WorkStealingStress, OwnerPopVsThiefCasOnOneDeque) {
  const nnz_t total = 2048;
  const auto prefix = back_loaded_prefix(total, total);
  const SliceSchedule sched(SchedulePolicy::kWorkStealing, total, prefix,
                            kThreads, /*chunk_target=*/64);
  // The seed must actually concentrate ownership for the test to mean
  // anything: thread 0's block covers at least half the range.
  ASSERT_GE(sched.bounds()[1], total / 2)
      << "front-loaded prefix failed to concentrate the seed";
  std::vector<int> visits(static_cast<std::size_t>(total), 0);
  const std::uint64_t steals_before = sched.steals();
  for (int round = 0; round < kRounds; ++round) {
    std::fill(visits.begin(), visits.end(), 0);
    sched.reset();
    run_threads(kThreads, [&](int tid) {
      sched.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
        for (nnz_t s = begin; s < end; ++s) {
          ++visits[static_cast<std::size_t>(s)];
        }
      });
    });
    for (nnz_t s = 0; s < total; ++s) {
      ASSERT_EQ(visits[static_cast<std::size_t>(s)], 1)
          << "slice " << s << " round " << round;
    }
  }
  // Workers 1..3 own almost nothing, so across kRounds launches the
  // steal counter must have moved (they either stole or starved — and
  // starving would have failed the coverage check above).
  EXPECT_GT(sched.steals(), steals_before) << "thieves never engaged";
}

// Launch-generation contract under threads: a drained schedule consumed
// again without reset() must abort the claim loudly. (Thrown serially
// here; inside a real parallel region the same throw terminates.)
TEST(WorkStealingStress, ReuseWithoutResetIsCaught) {
  const nnz_t total = 256;
  const SliceSchedule sched(SchedulePolicy::kWorkStealing, total, {},
                            kThreads);
  sched.reset();
  run_threads(kThreads, [&](int tid) {
    sched.for_ranges(tid, [](nnz_t, nnz_t) {});
  });
  EXPECT_THROW(sched.for_ranges(0, [](nnz_t, nnz_t) {}), Error);
  // reset() reopens the schedule.
  sched.reset();
  EXPECT_NO_THROW(sched.for_ranges(0, [](nnz_t, nnz_t) {}));
}

// ------------------------------------------------------------ mutex pools

// Plain (unsynchronized) counters guarded by a pool: ids hash onto few
// slots so contention is constant. Lost updates fail the sum; a lock
// implementation whose acquire/release edge is broken — or invisible to
// TSan, like OmpLock without its SPTD_TSAN_ACQUIRE/RELEASE annotations —
// fails as a data race on the counter.
template <typename PoolT>
void stress_pool(PoolT& pool) {
  constexpr int kIters = 3000;
  constexpr idx_t kSlots = 8;  // all threads collide on 8 lock slots
  std::vector<std::uint64_t> counters(kSlots, 0);
  run_threads(kThreads, [&](int tid) {
    for (int i = 0; i < kIters; ++i) {
      // Deterministic per-thread id walk; every thread visits every slot.
      const idx_t id = static_cast<idx_t>((i + tid * 7) % kSlots);
      PoolGuard guard(pool, id);
      ++counters[id];
    }
  });
  const std::uint64_t sum =
      std::accumulate(counters.begin(), counters.end(), std::uint64_t{0});
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MutexPoolStress, SyncVarLock) {
  MutexPool<SyncVarLock> pool;
  stress_pool(pool);
}

TEST(MutexPoolStress, AtomicSpinLock) {
  MutexPool<AtomicSpinLock> pool;
  stress_pool(pool);
}

TEST(MutexPoolStress, FifoSyncLock) {
  MutexPool<FifoSyncLock> pool;
  stress_pool(pool);
}

TEST(MutexPoolStress, OmpLock) {
  MutexPool<OmpLock> pool;
  stress_pool(pool);
}

TEST(MutexPoolStress, RuntimeDispatchedPool) {
  // The kernels' runtime-selected pool: same protocol through the
  // non-virtual dispatch layer.
  for (const LockKind kind : {LockKind::kSync, LockKind::kAtomic,
                              LockKind::kFifoSync, LockKind::kOmp}) {
    AnyMutexPool pool(kind);
    stress_pool(pool);
  }
}

// ------------------------------------------------- privatized reduction

// The no-lock MTTKRP path: every thread accumulates into its own
// PrivateBuffers replica (plain disjoint storage), and the replicas are
// summed after the join. Bit-identical to the serial sum because both
// sides add per-thread subtotals in the same (thread-index) order.
TEST(ReduceStress, PrivatizedAccumulationMatchesSerialBitwise) {
  const nnz_t length = 512;
  constexpr int kItems = 20000;
  PrivateBuffers bufs(kThreads, length);
  run_threads(kThreads, [&](int tid) {
    std::span<val_t> mine = bufs.buffer(tid);
    for (int i = 0; i < kItems; ++i) {
      const auto slot = static_cast<std::size_t>(
          (static_cast<nnz_t>(i) * 31 + static_cast<nnz_t>(tid)) % length);
      mine[slot] += 1.0 / (1.0 + static_cast<val_t>(i % 97));
    }
  });
  std::vector<val_t> parallel_out(static_cast<std::size_t>(length), 0.0);
  // Serial reduction (nthreads=1 keeps OpenMP out of the TSan binary).
  bufs.reduce_into(parallel_out, 1);

  // Serial reference: same deposits, same reduction order.
  PrivateBuffers ref(kThreads, length);
  for (int tid = 0; tid < kThreads; ++tid) {
    std::span<val_t> mine = ref.buffer(tid);
    for (int i = 0; i < kItems; ++i) {
      const auto slot = static_cast<std::size_t>(
          (static_cast<nnz_t>(i) * 31 + static_cast<nnz_t>(tid)) % length);
      mine[slot] += 1.0 / (1.0 + static_cast<val_t>(i % 97));
    }
  }
  std::vector<val_t> serial_out(static_cast<std::size_t>(length), 0.0);
  ref.reduce_into(serial_out, 1);

  for (nnz_t i = 0; i < length; ++i) {
    ASSERT_EQ(parallel_out[static_cast<std::size_t>(i)],
              serial_out[static_cast<std::size_t>(i)])
        << "element " << i << " not bitwise equal";
  }
}

// --------------------------------------------- CCD's lock-free residuals

// CCD++'s residual contract (solver_ccd.cpp): a row update folds deltas
// into res[canon[x]] for x in its OWN slice only, and no two rows of a
// pass share a slice — so the pass needs no locks. Reproduced here with
// slices distributed by a contended work-stealing schedule and a shuffled
// canon permutation: exactly-once slice issuance implies disjoint plain
// writes (TSan-verified), and the result must be bitwise equal to a
// serial pass, because each residual entry is owned by exactly one slice.
TEST(CcdResidualStress, LockFreeSliceUpdatesAreDisjointAndBitwise) {
  const nnz_t nslices = 512;
  const nnz_t per_slice = 8;
  const nnz_t nnz = nslices * per_slice;
  // canon: entry x of the mode-grouped order lands at a shuffled
  // canonical position. An odd multiplier modulo the power-of-two nnz is
  // a bijection on [0, nnz), verified below — a canon with duplicates
  // would alias two slices onto one residual entry and void the test.
  std::vector<nnz_t> canon(static_cast<std::size_t>(nnz));
  std::vector<bool> seen(static_cast<std::size_t>(nnz), false);
  for (nnz_t x = 0; x < nnz; ++x) {
    const nnz_t c = (x * 2654435761ULL + 17) % nnz;
    canon[static_cast<std::size_t>(x)] = c;
    ASSERT_FALSE(seen[static_cast<std::size_t>(c)]) << "canon not bijective";
    seen[static_cast<std::size_t>(c)] = true;
  }

  const auto delta_for = [](nnz_t slice, nnz_t x) {
    return 1e-3 * static_cast<val_t>(slice % 13) +
           1e-6 * static_cast<val_t>(x % 101);
  };

  const SliceSchedule sched(SchedulePolicy::kWorkStealing, nslices, {},
                            kThreads, /*chunk_target=*/32);
  std::vector<val_t> res(static_cast<std::size_t>(nnz), 1.0);
  for (int round = 0; round < 8; ++round) {
    sched.reset();
    run_threads(kThreads, [&](int tid) {
      sched.for_ranges(tid, [&](nnz_t begin, nnz_t end) {
        for (nnz_t i = begin; i < end; ++i) {
          const nnz_t lo = i * per_slice;
          for (nnz_t x = lo; x < lo + per_slice; ++x) {
            res[static_cast<std::size_t>(canon[static_cast<std::size_t>(x)])]
                -= delta_for(i, x);
          }
        }
      });
    });
  }

  std::vector<val_t> serial(static_cast<std::size_t>(nnz), 1.0);
  for (int round = 0; round < 8; ++round) {
    for (nnz_t i = 0; i < nslices; ++i) {
      const nnz_t lo = i * per_slice;
      for (nnz_t x = lo; x < lo + per_slice; ++x) {
        serial[static_cast<std::size_t>(canon[static_cast<std::size_t>(x)])]
            -= delta_for(i, x);
      }
    }
  }
  for (nnz_t x = 0; x < nnz; ++x) {
    ASSERT_EQ(res[static_cast<std::size_t>(x)],
              serial[static_cast<std::size_t>(x)])
        << "residual " << x << " not bitwise equal to the serial pass";
  }
}

// ----------------------------------------- checkpoint vs compute overlap

// The resilience layer's intended overlap: the driver hands a *snapshot*
// (taken between iterations) to a writer, and computation continues on
// the live state while the writer serializes and fsyncs. The handoff is a
// mutex+cv staging slot; the live factors are never shared. A TSan race
// here would mean the snapshot aliases live state — the bug class that
// turns checkpoints into torn garbage.
TEST(CheckpointStress, WriterOverlapsComputeOnSnapshots) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "sptd_stress_ckpt";
  fs::remove_all(dir);

  constexpr int kIterations = 12;
  const idx_t rows = 32, cols = 8;

  std::mutex m;
  std::condition_variable cv;
  std::optional<Checkpoint> staged;  // guarded by m
  bool done = false;                 // guarded by m

  CheckpointManager manager(dir.string(), "stress", /*every=*/1);
  ResilienceCounters counters;
  int saved = 0;

  std::thread writer([&] {
    for (;;) {
      Checkpoint ck;
      {
        std::unique_lock<std::mutex> guard(m);
        cv.wait(guard, [&] { return staged.has_value() || done; });
        if (!staged.has_value()) {
          return;  // done and drained
        }
        ck = std::move(*staged);
        staged.reset();
      }
      cv.notify_all();  // compute may stage the next snapshot
      ASSERT_TRUE(manager.save(ck, nullptr, counters));
      ++saved;
    }
  });

  // Compute thread (this thread): mutate live factors every iteration;
  // each element is a deterministic function of the iteration so the
  // recovered checkpoint is verifiable below.
  la::Matrix live(rows, cols);
  for (int it = 1; it <= kIterations; ++it) {
    for (idx_t r = 0; r < rows; ++r) {
      for (idx_t c = 0; c < cols; ++c) {
        live.row_ptr(r)[c] = static_cast<val_t>(it * 1000 + r * cols + c);
      }
    }
    Checkpoint snap;  // deep copy taken between "iterations"
    snap.kind = "stress";
    snap.iteration = it;
    snap.factors.push_back(live);
    {
      std::unique_lock<std::mutex> guard(m);
      cv.wait(guard, [&] { return !staged.has_value(); });
      staged = std::move(snap);
    }
    cv.notify_all();
    // ... compute continues on `live` while the writer serializes `snap`.
  }
  {
    std::lock_guard<std::mutex> guard(m);
    done = true;
  }
  cv.notify_all();
  writer.join();
  EXPECT_EQ(saved, kIterations);

  // The newest surviving checkpoint must be internally consistent: its
  // factors are exactly the deterministic fill of its iteration stamp.
  const auto loaded = CheckpointManager::load_latest(dir.string(), "stress");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->iteration, kIterations);
  ASSERT_EQ(loaded->factors.size(), 1u);
  for (idx_t r = 0; r < rows; ++r) {
    for (idx_t c = 0; c < cols; ++c) {
      ASSERT_EQ(loaded->factors[0].row_ptr(r)[c],
                static_cast<val_t>(loaded->iteration * 1000 + r * cols + c));
    }
  }
  fs::remove_all(dir);
}

// ------------------------------------------------- counters under threads

// The process-wide diagnostic counters are relaxed atomics, read by
// differencing from serial code around a run (never inside one): the
// stress here proves concurrent bumps are not lost and the serial
// difference observes every claim.
TEST(CounterStress, StealCountersAreExactUnderContention) {
  const nnz_t total = 1024;
  const auto prefix = back_loaded_prefix(total, total);
  const SliceSchedule sched(SchedulePolicy::kWorkStealing, total, prefix,
                            kThreads, /*chunk_target=*/32);
  const std::uint64_t sched_before = sched.steals();
  const std::uint64_t global_before = work_steal_count();
  for (int round = 0; round < kRounds; ++round) {
    sched.reset();
    run_threads(kThreads, [&](int tid) {
      sched.for_ranges(tid, [](nnz_t, nnz_t) {});
    });
  }
  // Per-schedule and process-wide counters moved in lockstep: every
  // successful steal bumped both exactly once.
  EXPECT_EQ(sched.steals() - sched_before,
            work_steal_count() - global_before);
  EXPECT_GT(sched.steals(), sched_before);
}

// ------------------------------------------------------ pool backend

// Unlike the omp backend, the pool backend (parallel/backend.cpp) and its
// FutexLock synchronize entirely through std::atomic wait/notify,
// std::mutex, and std::condition_variable — primitives TSan models
// natively — so this section drives real parallel_region teams under the
// instrumented build with no annotations and no suppressions. A protocol
// bug in the task hand-off (a tid issued twice, a submitter returning
// before every worker dereferenced the stack-allocated task) surfaces as
// a plain-array race under TSan and as a count mismatch here.

/// Scoped pool-backend selection; restores the prior backend so the rest
/// of the binary (and ctest ordering) stays on its default.
class PoolBackendSection {
 public:
  PoolBackendSection() : prior_(parallel_backend()) {
    set_parallel_backend(ParallelBackendKind::kPool);
  }
  ~PoolBackendSection() { set_parallel_backend(prior_); }
  PoolBackendSection(const PoolBackendSection&) = delete;
  PoolBackendSection& operator=(const PoolBackendSection&) = delete;

 private:
  ParallelBackendKind prior_;
};

// Every tid of every region runs exactly once, and the region's writes
// are visible to the submitter after the join: each team member writes a
// PLAIN slot keyed by (round, tid); a double-issued tid is a TSan race
// on that slot, a lost tid a zero in the count check.
TEST(PoolBackendStress, TeamTidsExactlyOnceAcrossRepeatedRegions) {
  PoolBackendSection section;
  constexpr int kTeam = 8;
  std::vector<int> hits(static_cast<std::size_t>(kRounds) * kTeam, 0);
  for (int round = 0; round < kRounds; ++round) {
    parallel_region(kTeam, [&, round](int tid, int nt) {
      ASSERT_EQ(nt, kTeam);
      hits[static_cast<std::size_t>(round) * kTeam +
           static_cast<std::size_t>(tid)] += 1;
    });
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "slot " << i;
  }
}

// Concurrent submitters: raw threads each push their own team through the
// one shared pool — the composability mechanism (two decompositions in
// one process share workers instead of oversubscribing). Per-submitter
// plain arrays catch cross-task tid leakage as both a race and a count.
TEST(PoolBackendStress, ConcurrentSubmittersShareOnePool) {
  PoolBackendSection section;
  constexpr int kSubmitters = 3;
  constexpr int kTeam = 4;
  std::vector<std::vector<int>> hits(
      kSubmitters, std::vector<int>(static_cast<std::size_t>(kRounds) * kTeam,
                                    0));
  run_threads(kSubmitters, [&](int s) {
    for (int round = 0; round < kRounds; ++round) {
      parallel_region(kTeam, [&, s, round](int tid, int) {
        hits[static_cast<std::size_t>(s)]
            [static_cast<std::size_t>(round) * kTeam +
             static_cast<std::size_t>(tid)] += 1;
      });
    }
  });
  for (int s = 0; s < kSubmitters; ++s) {
    for (std::size_t i = 0; i < hits[static_cast<std::size_t>(s)].size();
         ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(s)][i], 1)
          << "submitter " << s << " slot " << i;
    }
  }
}

// FutexLock under real pool teams: plain counters survive contended
// lock/unlock cycles from a multiplexed team. Mirrors MutexPoolStress
// but through parallel_region, so the lock is exercised with the exact
// parking interleavings the pool produces.
TEST(PoolBackendStress, FutexLockExcludesUnderPoolTeams) {
  PoolBackendSection section;
  FutexLock lock;
  long counter = 0;
  for (int round = 0; round < kRounds; ++round) {
    parallel_region(kThreads, [&](int, int) {
      for (int i = 0; i < 500; ++i) {
        lock.lock();
        counter += 1;
        lock.unlock();
      }
    });
  }
  EXPECT_EQ(counter, static_cast<long>(kRounds) * kThreads * 500);
}

// Regression for a lost-wakeup in FutexLock's park path: with two
// waiters parked on state 2, unlock zeroes the word and wakes one; if a
// newcomer (or the woken waiter retrying its spin phase) then acquires
// via CAS 0->1, the sleeper encoding is erased and every later unlock
// skips the notify — the second sleeper stays parked forever. The fix is
// Drepper's mutex3 shape: once contended, acquire only by installing 2.
// Raw oversubscribed threads plus a dwell longer than the spin window
// force real parking with multiple sleepers; under the old code this
// test can hang on multi-core machines (caught by the ctest timeout),
// under the fix it terminates with exact counts.
TEST(PoolBackendStress, FutexLockNoLostWakeupWithParkedSleepers) {
  FutexLock lock;
  constexpr int kHammer = 8;   // > cores: waiters genuinely park
  constexpr int kIters = 400;
  long counter = 0;
  run_threads(kHammer, [&](int tid) {
    for (int i = 0; i < kIters; ++i) {
      lock.lock();
      counter += 1;
      // Periodically dwell past the 64-iteration spin window so the
      // other threads fall through to the futex wait and pile up as
      // sleepers before this unlock starts the wake chain.
      if ((i & 31) == tid) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      lock.unlock();
    }
  });
  EXPECT_EQ(counter, static_cast<long>(kHammer) * kIters);
}

// BackendLock resolves to the futex flavor under the pool backend; the
// AnyMutexPool(kOmp) path is what MTTKRP workspaces actually build, so
// stress that resolution end to end.
TEST(PoolBackendStress, BackendLockPoolFlavorExcludes) {
  PoolBackendSection section;
  AnyMutexPool pool(LockKind::kOmp);
  std::vector<long> counters(8, 0);
  parallel_region(kThreads, [&](int tid, int) {
    for (int i = 0; i < 2000; ++i) {
      const idx_t slot = static_cast<idx_t>((i + tid) % 8);
      pool.lock(slot);
      counters[static_cast<std::size_t>(slot)] += 1;
      pool.unlock(slot);
    }
  });
  const long total = std::accumulate(counters.begin(), counters.end(), 0L);
  EXPECT_EQ(total, static_cast<long>(kThreads) * 2000);
}

// The privatize-and-reduce path through real pool teams: per-thread
// replicas written inside parallel_region, reduced after the join, must
// match the serial sum bitwise (fixed t-order reduction).
TEST(PoolBackendStress, PrivatizedReductionBitwiseUnderPoolTeams) {
  PoolBackendSection section;
  const nnz_t length = 512;
  PrivateBuffers bufs(kThreads, length);
  bufs.clear(kThreads);
  parallel_region(kThreads, [&](int tid, int) {
    std::span<val_t> mine = bufs.buffer(tid);
    for (nnz_t i = 0; i < length; ++i) {
      mine[i] += static_cast<val_t>(tid + 1) / static_cast<val_t>(i + 1);
    }
  });
  aligned_vector<val_t> out(static_cast<std::size_t>(length), 0.0);
  bufs.reduce_into({out.data(), out.size()}, kThreads);

  aligned_vector<val_t> expected(static_cast<std::size_t>(length), 0.0);
  for (int t = 0; t < kThreads; ++t) {
    for (nnz_t i = 0; i < length; ++i) {
      expected[static_cast<std::size_t>(i)] +=
          static_cast<val_t>(t + 1) / static_cast<val_t>(i + 1);
    }
  }
  for (nnz_t i = 0; i < length; ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)],
              expected[static_cast<std::size_t>(i)])
        << "lane " << i;
  }
}

// Nested regions from inside a pool team serialize (matching
// omp_set_max_active_levels(1)); the inner bodies run on the enclosing
// worker with tid 0 and must not deadlock against the shared pool.
TEST(PoolBackendStress, NestedRegionsSerializeWithoutDeadlock) {
  PoolBackendSection section;
  std::atomic<int> inner_runs{0};
  std::atomic<int> bad{0};
  for (int round = 0; round < kRounds; ++round) {
    parallel_region(kThreads, [&](int, int) {
      parallel_region(kThreads, [&](int tid, int nt) {
        inner_runs.fetch_add(1, std::memory_order_relaxed);
        if (tid != 0 || nt != 1) bad.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  EXPECT_EQ(inner_runs.load(), kRounds * kThreads);
  EXPECT_EQ(bad.load(), 0);
}

// The dist shm ring's release/acquire tag protocol, driven by one
// transport per "rank" on plain threads (the production shape is one per
// forked process; TSan can only watch the in-process shape). Every op must
// produce the identical locale-order sum on every rank, bitwise.
TEST(ShmRingStress, ConcurrentLayerReducesAreBitwiseAndClean) {
  const std::size_t nranks = static_cast<std::size_t>(kThreads);
  const idx_t rows = 12;
  const idx_t rank = 5;
  const la::Matrix probe(1, rank);
  const std::size_t slot_doubles =
      static_cast<std::size_t>(rows) * probe.ld();
  const int ops = 3 * kRounds;
  const std::uint64_t finish_op = static_cast<std::uint64_t>(ops);

  const std::size_t bytes = ShmRing::bytes_needed(nranks, slot_doubles);
  void* mem = ::operator new(bytes, std::align_val_t{64});
  ShmRing ring(mem, nranks, slot_doubles, /*init=*/true);

  const auto fill_partial = [&](std::size_t r, int op, la::Matrix& m) {
    for (idx_t i = 0; i < rows; ++i) {
      for (idx_t j = 0; j < rank; ++j) {
        m(i, j) = static_cast<double>(r + 1) * 0.25 +
                  static_cast<double>(op) * 0.125 +
                  static_cast<double>(i * rank + j) * 0.0625;
      }
    }
  };

  // outputs[r][op] = rank r's view of the reduced matrix after op.
  std::vector<std::vector<la::Matrix>> outputs(nranks);
  const std::vector<nnz_t> locale_nnz(nranks, 1);  // no empty locales
  run_threads(kThreads, [&](int tid) {
    const std::size_t r = static_cast<std::size_t>(tid);
    dist::ShmTransport tr(ring, r, locale_nnz, finish_op,
                          /*deadline_s=*/30.0, /*bells=*/nullptr);
    la::Matrix partial(rows, rank);
    std::vector<const la::Matrix*> partials(nranks, nullptr);
    for (int op = 0; op < ops; ++op) {
      fill_partial(r, op, partial);
      partials[r] = &partial;
      la::Matrix out(rows, rank);
      tr.allreduce(static_cast<std::uint64_t>(op), 0, partials, out);
      outputs[r].push_back(std::move(out));
    }
    tr.finalize();
  });

  // Serial reference: locale-order sum over physical buffers.
  la::Matrix expect(rows, rank);
  la::Matrix part(rows, rank);
  for (int op = 0; op < ops; ++op) {
    expect.fill(0);
    for (std::size_t r = 0; r < nranks; ++r) {
      fill_partial(r, op, part);
      double* dst = expect.data();
      const double* src = part.data();
      for (std::size_t i = 0; i < expect.size(); ++i) dst[i] += src[i];
    }
    for (std::size_t r = 0; r < nranks; ++r) {
      ASSERT_EQ(outputs[r][static_cast<std::size_t>(op)].max_abs_diff(
                    expect),
                0.0)
          << "rank " << r << " op " << op;
    }
  }
  ::operator delete(mem, std::align_val_t{64});
}

// Empty locales still publish their sequence tags (that publication is
// what keeps rank 0 from overwriting a broadcast they haven't consumed);
// their payload must be ignored in the sum.
TEST(ShmRingStress, EmptyLocalesPublishTagsButAddNothing) {
  const std::size_t nranks = static_cast<std::size_t>(kThreads);
  const idx_t rows = 6;
  const idx_t rank = 3;
  const la::Matrix probe(1, rank);
  const std::size_t slot_doubles =
      static_cast<std::size_t>(rows) * probe.ld();
  const int ops = kRounds;
  const std::uint64_t finish_op = static_cast<std::uint64_t>(ops);

  const std::size_t bytes = ShmRing::bytes_needed(nranks, slot_doubles);
  void* mem = ::operator new(bytes, std::align_val_t{64});
  ShmRing ring(mem, nranks, slot_doubles, /*init=*/true);

  std::vector<nnz_t> locale_nnz(nranks, 1);
  for (std::size_t r = 1; r < nranks; r += 2) locale_nnz[r] = 0;

  std::vector<std::vector<la::Matrix>> outputs(nranks);
  run_threads(kThreads, [&](int tid) {
    const std::size_t r = static_cast<std::size_t>(tid);
    dist::ShmTransport tr(ring, r, locale_nnz, finish_op,
                          /*deadline_s=*/30.0, /*bells=*/nullptr);
    la::Matrix partial(rows, rank);
    partial.fill(static_cast<double>(r + 1));
    std::vector<const la::Matrix*> partials(nranks, nullptr);
    if (locale_nnz[r] != 0) partials[r] = &partial;
    for (int op = 0; op < ops; ++op) {
      la::Matrix out(rows, rank);
      tr.allreduce(static_cast<std::uint64_t>(op), 0, partials, out);
      outputs[r].push_back(std::move(out));
    }
    tr.finalize();
  });

  double contributing = 0;
  for (std::size_t r = 0; r < nranks; ++r) {
    if (locale_nnz[r] != 0) contributing += static_cast<double>(r + 1);
  }
  for (std::size_t r = 0; r < nranks; ++r) {
    for (int op = 0; op < ops; ++op) {
      EXPECT_EQ(outputs[r][static_cast<std::size_t>(op)](0, 0),
                contributing)
          << "rank " << r << " op " << op;
    }
  }
  ::operator delete(mem, std::align_val_t{64});
}

}  // namespace
}  // namespace sptd
