// Tests for src/tensor/reorder: mode permutation and slice relabeling.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "tensor/dense.hpp"
#include "tensor/reorder.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

TEST(PermuteModes, SwapsDimsAndIndices) {
  SparseTensor t({4, 6, 8});
  const idx_t c[] = {1, 3, 5};
  t.push_back(c, 2.0);
  const int perm[] = {2, 0, 1};
  const SparseTensor p = permute_modes(t, perm);
  EXPECT_EQ(p.dims(), (dims_t{8, 4, 6}));
  EXPECT_EQ(p.ind(0)[0], 5u);
  EXPECT_EQ(p.ind(1)[0], 1u);
  EXPECT_EQ(p.ind(2)[0], 3u);
  EXPECT_EQ(p.vals()[0], 2.0);
}

TEST(PermuteModes, IdentityIsNoop) {
  const SparseTensor t = generate_synthetic(
      {.dims = {10, 12, 14}, .nnz = 200, .seed = 5000});
  const int perm[] = {0, 1, 2};
  const SparseTensor p = permute_modes(t, perm);
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    EXPECT_EQ(p.coord(x), t.coord(x));
  }
}

TEST(PermuteModes, DoublePermutationRoundTrips) {
  const SparseTensor t = generate_synthetic(
      {.dims = {10, 12, 14, 16}, .nnz = 300, .seed = 5001});
  const int fwd[] = {3, 1, 0, 2};
  // inverse of fwd: position of m in fwd
  int inv[4];
  for (int m = 0; m < 4; ++m) {
    for (int j = 0; j < 4; ++j) {
      if (fwd[j] == m) inv[m] = j;
    }
  }
  const SparseTensor back = permute_modes(permute_modes(t, fwd), inv);
  ASSERT_EQ(back.dims(), t.dims());
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    EXPECT_EQ(back.coord(x), t.coord(x));
  }
}

TEST(PermuteModes, RejectsNonPermutation) {
  const SparseTensor t = generate_synthetic(
      {.dims = {5, 5}, .nnz = 8, .seed = 5002});
  const int bad[] = {0, 0};
  EXPECT_THROW(permute_modes(t, bad), Error);
}

TEST(RandomPermutation, IsAPermutation) {
  const auto p = random_permutation(100, 7);
  std::set<idx_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RandomPermutation, DeterministicAndSeedSensitive) {
  EXPECT_EQ(random_permutation(50, 1), random_permutation(50, 1));
  EXPECT_NE(random_permutation(50, 1), random_permutation(50, 2));
}

TEST(Relabel, AppliesMapsPerMode) {
  SparseTensor t({3, 3});
  const idx_t c[] = {0, 2};
  t.push_back(c, 1.0);
  std::vector<std::vector<idx_t>> maps = {{2, 1, 0}, {1, 2, 0}};
  relabel(t, maps);
  EXPECT_EQ(t.ind(0)[0], 2u);
  EXPECT_EQ(t.ind(1)[0], 0u);
}

TEST(Relabel, RejectsNonPermutationMap) {
  SparseTensor t({3, 3});
  const idx_t c[] = {0, 0};
  t.push_back(c, 1.0);
  std::vector<std::vector<idx_t>> maps = {{0, 0, 1}, {0, 1, 2}};
  EXPECT_THROW(relabel(t, maps), Error);
}

TEST(Relabel, PreservesValuesAndCounts) {
  SparseTensor t = generate_synthetic(
      {.dims = {20, 30, 40}, .nnz = 500, .seed = 5003});
  const val_t norm_before = t.norm_sq();
  shuffle_all_modes(t, 99);
  EXPECT_EQ(t.nnz(), 500u);
  EXPECT_EQ(t.norm_sq(), norm_before);
  t.validate();
}

TEST(FrequencyOrder, HotSlicesGetSmallIds) {
  SparseTensor t({5, 10});
  // Slice 3 of mode 0 has 4 nonzeros, slice 1 has 2, slice 0 has 1.
  for (int k = 0; k < 4; ++k) {
    const idx_t c[] = {3, static_cast<idx_t>(k)};
    t.push_back(c, 1.0);
  }
  for (int k = 0; k < 2; ++k) {
    const idx_t c[] = {1, static_cast<idx_t>(k)};
    t.push_back(c, 1.0);
  }
  const idx_t c0[] = {0, 0};
  t.push_back(c0, 1.0);
  const auto map = frequency_order(t, 0);
  EXPECT_EQ(map[3], 0u);  // hottest
  EXPECT_EQ(map[1], 1u);
  EXPECT_EQ(map[0], 2u);
}

TEST(FrequencyOrder, ProducesValidRelabeling) {
  SparseTensor t = generate_synthetic(
      {.dims = {50, 60, 70}, .nnz = 2000, .seed = 5004,
       .zipf_exponent = 0.9});
  std::vector<std::vector<idx_t>> maps;
  for (int m = 0; m < 3; ++m) {
    maps.push_back(frequency_order(t, m));
  }
  const val_t norm_before = t.norm_sq();
  relabel(t, maps);  // throws if any map is not a permutation
  EXPECT_EQ(t.norm_sq(), norm_before);
  // After frequency ordering, slice 0 of each mode is the heaviest.
  for (int m = 0; m < 3; ++m) {
    std::vector<nnz_t> counts(t.dim(m), 0);
    for (const idx_t i : t.ind(m)) {
      ++counts[i];
    }
    EXPECT_EQ(*std::max_element(counts.begin(), counts.end()), counts[0]);
  }
}

TEST(Reorder, RelabelingDoesNotChangeTensorContent) {
  // Relabeled tensor densified with inverse maps equals the original.
  SparseTensor t = generate_synthetic(
      {.dims = {8, 9, 10}, .nnz = 150, .seed = 5005});
  const DenseTensor before = DenseTensor::from_coo(t);
  std::vector<std::vector<idx_t>> maps;
  Rng rng(6);
  for (int m = 0; m < 3; ++m) {
    maps.push_back(random_permutation(t.dim(m), rng.next_u64()));
  }
  SparseTensor shuffled = t;
  relabel(shuffled, maps);
  // Undo via inverse maps.
  std::vector<std::vector<idx_t>> inv(3);
  for (int m = 0; m < 3; ++m) {
    inv[static_cast<std::size_t>(m)].resize(t.dim(m));
    for (idx_t i = 0; i < t.dim(m); ++i) {
      inv[static_cast<std::size_t>(m)]
         [maps[static_cast<std::size_t>(m)][i]] = i;
    }
  }
  relabel(shuffled, inv);
  const DenseTensor after = DenseTensor::from_coo(shuffled);
  for (std::size_t i = 0; i < before.values().size(); ++i) {
    EXPECT_EQ(before.values()[i], after.values()[i]);
  }
}

}  // namespace
}  // namespace sptd
