// Tests for src/resilience: checksums, atomic writes, checkpoint
// round-trips and rotation, bitwise kill-and-resume equivalence for every
// iterative driver, health-monitor semantics, and the rank-deficient
// Tikhonov-retry path.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/fileio.hpp"
#include "common/rng.hpp"
#include "completion/completion.hpp"
#include "cpd/cpals.hpp"
#include "dist/dist_cpals.hpp"
#include "la/cholesky.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/health.hpp"
#include "tensor/synthetic.hpp"
#include "tucker/tucker.hpp"

namespace sptd {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const char* tag) {
    path_ = (fs::temp_directory_path() /
             (std::string("sptd_resilience_") + tag + "_" +
              std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SparseTensor test_tensor(std::uint64_t seed = 900) {
  return generate_synthetic({.dims = {18, 22, 14}, .nnz = 1500,
                             .seed = seed, .zipf_exponent = 0.5});
}

// ---------------------------------------------------------------- checksum

TEST(Checksum, Fnv1a64KnownVectors) {
  // Published FNV-1a 64 vectors: empty input is the offset basis, and "a".
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  // Sensitivity: one flipped bit changes the digest.
  EXPECT_NE(fnv1a64("ab", 2), fnv1a64("ac", 2));
}

// ----------------------------------------------------------------- file IO

TEST(FileIo, AtomicWriteRoundTrips) {
  ScratchDir dir("fileio");
  const std::string path = dir.path() + "/out.txt";
  atomic_write_file(path, "hello\nworld\n");
  const auto back = read_file_to_string(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "hello\nworld\n");
  // No temp file left behind.
  int entries = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1);
}

TEST(FileIo, AtomicWriteToMissingDirectoryThrows) {
  EXPECT_THROW(atomic_write_file("/nonexistent_sptd_dir/x", "y"), Error);
}

TEST(FileIo, ReadMissingFileReturnsNullopt) {
  EXPECT_FALSE(read_file_to_string("/nonexistent_sptd_file").has_value());
}

// -------------------------------------------------------------- checkpoint

Checkpoint sample_checkpoint() {
  Rng rng(11);
  Checkpoint ck;
  ck.kind = "cpals";
  ck.iteration = 7;
  ck.rng_state = {1, 2, 3, 0xffffffffffffffffULL};
  ck.set_scalar("prev_fit", 0.123456789012345678);
  ck.set_scalar("best_val", std::numeric_limits<double>::infinity());
  ck.set_series("fit_history", {0.1, 0.2, 0.30000000000000004});
  ck.factors.push_back(la::Matrix::random(5, 3, rng));
  ck.factors.push_back(la::Matrix::random(4, 3, rng));
  ck.aux_factors.push_back(la::Matrix::random(5, 3, rng));
  return ck;
}

TEST(Checkpoint, SerializeRoundTripsBitwise) {
  const Checkpoint ck = sample_checkpoint();
  const Checkpoint back = Checkpoint::deserialize(ck.serialize());
  EXPECT_EQ(back.kind, ck.kind);
  EXPECT_EQ(back.iteration, ck.iteration);
  EXPECT_EQ(back.rng_state, ck.rng_state);
  EXPECT_EQ(back.scalar("prev_fit", 0.0), ck.scalar("prev_fit", 1.0));
  EXPECT_TRUE(std::isinf(back.scalar("best_val", 0.0)));
  const std::vector<double>* fh = back.find_series("fit_history");
  ASSERT_NE(fh, nullptr);
  EXPECT_EQ((*fh)[2], 0.30000000000000004);  // exact, not approximate
  ASSERT_EQ(back.factors.size(), 2u);
  EXPECT_EQ(back.factors[0].max_abs_diff(ck.factors[0]), 0.0);
  EXPECT_EQ(back.factors[1].max_abs_diff(ck.factors[1]), 0.0);
  ASSERT_EQ(back.aux_factors.size(), 1u);
  EXPECT_EQ(back.aux_factors[0].max_abs_diff(ck.aux_factors[0]), 0.0);
}

TEST(Checkpoint, DeserializeRejectsCorruptPayload) {
  std::string text = sample_checkpoint().serialize();
  const std::size_t pos = text.find("iteration");
  ASSERT_NE(pos, std::string::npos);
  text[pos + std::string("iteration ").size()] = '9';
  EXPECT_THROW(Checkpoint::deserialize(text), Error);
}

TEST(Checkpoint, DeserializeRejectsTruncation) {
  std::string text = sample_checkpoint().serialize();
  text.resize(text.size() / 2);
  EXPECT_THROW(Checkpoint::deserialize(text), Error);
}

TEST(CheckpointManager, RotatesAndLoadsNewest) {
  ScratchDir dir("rotate");
  CheckpointManager mgr(dir.path(), "cpals", 1, /*keep=*/2);
  ResilienceCounters counters;
  for (int it = 1; it <= 5; ++it) {
    Checkpoint ck = sample_checkpoint();
    ck.iteration = it;
    EXPECT_TRUE(mgr.save(ck, nullptr, counters));
  }
  EXPECT_EQ(counters.checkpoints, 5);
  // Only the last `keep` files survive rotation.
  int files = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 2);
  const auto latest = CheckpointManager::load_latest(dir.path(), "cpals");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iteration, 5);
}

TEST(CheckpointManager, SkipsCorruptNewestFallsBackToOlder) {
  ScratchDir dir("fallback");
  CheckpointManager mgr(dir.path(), "cpals", 1, /*keep=*/3);
  ResilienceCounters counters;
  for (int it = 1; it <= 2; ++it) {
    Checkpoint ck = sample_checkpoint();
    ck.iteration = it;
    EXPECT_TRUE(mgr.save(ck, nullptr, counters));
  }
  // Tear the newest file in half — a simulated mid-write crash without the
  // atomic rename. load_latest must reject it by checksum and fall back.
  const std::string newest = dir.path() + "/cpals-00000002.ckpt";
  const auto full = read_file_to_string(newest);
  ASSERT_TRUE(full.has_value());
  atomic_write_file(newest, full->substr(0, full->size() / 2));
  const auto latest = CheckpointManager::load_latest(dir.path(), "cpals");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iteration, 1);
}

TEST(CheckpointManager, AllSnapshotsCorruptIsAStructuredError) {
  // When every rotation snapshot fails validation the caller must get a
  // loud CheckpointCorruptError — saved state exists but is unrecoverable,
  // which is not the same thing as a fresh start.
  ScratchDir dir("allbad");
  CheckpointManager mgr(dir.path(), "cpals", 1, /*keep=*/2);
  ResilienceCounters counters;
  for (int it = 1; it <= 2; ++it) {
    Checkpoint ck = sample_checkpoint();
    ck.iteration = it;
    EXPECT_TRUE(mgr.save(ck, nullptr, counters));
  }
  for (const auto& e : fs::directory_iterator(dir.path())) {
    const auto full = read_file_to_string(e.path().string());
    ASSERT_TRUE(full.has_value());
    atomic_write_file(e.path().string(), full->substr(0, full->size() / 2));
  }
  try {
    (void)CheckpointManager::load_latest(dir.path(), "cpals");
    FAIL() << "expected CheckpointCorruptError";
  } catch (const CheckpointCorruptError& e) {
    EXPECT_EQ(e.files_rejected(), 2);
  }
}

TEST(CheckpointManager, LoadCheckpointFileByPath) {
  ScratchDir dir("bypath");
  Checkpoint ck = sample_checkpoint();
  ck.iteration = 7;
  const std::string path = dir.path() + "/one.ckpt";
  atomic_write_file(path, ck.serialize());
  const auto loaded = load_checkpoint_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->iteration, 7);
  // Missing file: nullopt. Corrupt file: throws.
  EXPECT_FALSE(load_checkpoint_file(dir.path() + "/nope.ckpt").has_value());
  atomic_write_file(path, ck.serialize().substr(0, 40));
  EXPECT_THROW((void)load_checkpoint_file(path), Error);
}

TEST(CheckpointManager, IgnoresOtherKinds) {
  ScratchDir dir("kinds");
  CheckpointManager mgr(dir.path(), "tucker", 1);
  ResilienceCounters counters;
  Checkpoint ck = sample_checkpoint();
  ck.kind = "tucker";
  ck.iteration = 3;
  EXPECT_TRUE(mgr.save(ck, nullptr, counters));
  EXPECT_FALSE(
      CheckpointManager::load_latest(dir.path(), "cpals").has_value());
  EXPECT_TRUE(
      CheckpointManager::load_latest(dir.path(), "tucker").has_value());
}

// ---------------------------------------------------------- health monitor

la::Matrix small_matrix(double fill) {
  la::Matrix m(2, 2);
  m.fill(static_cast<val_t>(fill));
  return m;
}

TEST(HealthMonitor, FlagsNonFiniteFactor) {
  HealthMonitor hm(true, 3);
  std::vector<la::Matrix> factors;
  factors.push_back(small_matrix(1.0));
  factors[0](1, 1) = std::numeric_limits<val_t>::quiet_NaN();
  const std::vector<val_t> lambda = {1.0, 1.0};
  EXPECT_EQ(hm.inspect(factors, lambda, 0.5),
            HealthIssue::kNonFiniteFactor);
}

TEST(HealthMonitor, FlagsNonFiniteLambdaAndLoss) {
  HealthMonitor hm(true, 3);
  std::vector<la::Matrix> factors;
  factors.push_back(small_matrix(1.0));
  std::vector<val_t> lambda = {1.0,
                               std::numeric_limits<val_t>::infinity()};
  EXPECT_EQ(hm.inspect(factors, lambda, 0.5),
            HealthIssue::kNonFiniteFactor);
  lambda[1] = 1.0;
  EXPECT_EQ(hm.inspect(factors, lambda,
                       std::numeric_limits<double>::quiet_NaN()),
            HealthIssue::kNonFiniteLoss);
}

TEST(HealthMonitor, DivergenceNeedsPatienceConsecutiveRegressions) {
  HealthMonitor hm(true, 2);
  std::vector<la::Matrix> factors;
  factors.push_back(small_matrix(1.0));
  const std::vector<val_t> lambda = {1.0, 1.0};
  EXPECT_EQ(hm.inspect(factors, lambda, 0.10), HealthIssue::kNone);
  // Clearly regressing (> best * 1.5): first strike.
  EXPECT_EQ(hm.inspect(factors, lambda, 0.40), HealthIssue::kNone);
  // A healthy iteration resets the streak.
  EXPECT_EQ(hm.inspect(factors, lambda, 0.11), HealthIssue::kNone);
  EXPECT_EQ(hm.inspect(factors, lambda, 0.40), HealthIssue::kNone);
  // Second consecutive strike trips the patience=2 budget.
  EXPECT_EQ(hm.inspect(factors, lambda, 0.41), HealthIssue::kDivergence);
}

TEST(HealthMonitor, MildRegressionNeverFlags) {
  // ALS fit wobble within the 1.5x margin must never trip the guard —
  // that is the contract that keeps guards on by default without touching
  // bit-identical f64 runs.
  HealthMonitor hm(true, 1);
  std::vector<la::Matrix> factors;
  factors.push_back(small_matrix(1.0));
  const std::vector<val_t> lambda = {1.0, 1.0};
  EXPECT_EQ(hm.inspect(factors, lambda, 0.10), HealthIssue::kNone);
  EXPECT_EQ(hm.inspect(factors, lambda, 0.149), HealthIssue::kNone);
  EXPECT_EQ(hm.inspect(factors, lambda, 0.12), HealthIssue::kNone);
}

TEST(HealthMonitor, DisabledMonitorSeesNothing) {
  HealthMonitor hm(false, 1);
  std::vector<la::Matrix> factors;
  factors.push_back(small_matrix(
      std::numeric_limits<double>::quiet_NaN()));
  const std::vector<val_t> lambda = {1.0, 1.0};
  EXPECT_EQ(hm.inspect(factors, lambda, 0.5), HealthIssue::kNone);
}

TEST(HealthMonitor, PerturbFactorsIsSmallAndFinite) {
  Rng rng(5);
  std::vector<la::Matrix> factors;
  factors.push_back(small_matrix(2.0));
  perturb_factors(factors, rng, 1e-3);
  for (idx_t i = 0; i < 2; ++i) {
    for (idx_t j = 0; j < 2; ++j) {
      const double v = factors[0](i, j);
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_NEAR(v, 2.0, 2.0 * 1e-3);
      EXPECT_NE(v, 2.0);  // jitter actually moved the entry
    }
  }
}

// -------------------------------------------------- bitwise resume: cpals

CpalsOptions cpals_base() {
  CpalsOptions o;
  o.rank = 5;
  o.max_iterations = 8;
  o.tolerance = 0.0;
  o.seed = 23;
  o.nthreads = 1;
  return o;
}

TEST(Resume, CpalsKillAndResumeIsBitwise) {
  ScratchDir dir("cpals");
  // Reference: uninterrupted run.
  SparseTensor x1 = test_tensor();
  const CpalsResult ref = cp_als(x1, cpals_base());

  // "Killed" run: stop after 5 iterations with a checkpoint at 4...
  SparseTensor x2 = test_tensor();
  CpalsOptions part = cpals_base();
  part.max_iterations = 5;
  part.resilience.checkpoint_dir = dir.path();
  part.resilience.checkpoint_every = 4;
  (void)cp_als(x2, part);

  // ...then resume to completion from iteration 4.
  SparseTensor x3 = test_tensor();
  CpalsOptions rest = cpals_base();
  rest.resilience.checkpoint_dir = dir.path();
  rest.resilience.resume = true;
  const CpalsResult res = cp_als(x3, rest);

  EXPECT_EQ(res.resilience.resumed_from, 4);
  ASSERT_EQ(res.iterations, ref.iterations);
  ASSERT_EQ(res.fit_history.size(), ref.fit_history.size());
  for (std::size_t i = 0; i < ref.fit_history.size(); ++i) {
    EXPECT_EQ(res.fit_history[i], ref.fit_history[i]) << "iteration " << i;
  }
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(res.model.factors[static_cast<std::size_t>(m)].max_abs_diff(
                  ref.model.factors[static_cast<std::size_t>(m)]),
              0.0)
        << "mode " << m;
  }
  for (idx_t r = 0; r < 5; ++r) {
    EXPECT_EQ(res.model.lambda[r], ref.model.lambda[r]);
  }
}

TEST(Resume, EmptyDirIsFreshStartNotError) {
  ScratchDir dir("fresh");
  SparseTensor x = test_tensor();
  CpalsOptions o = cpals_base();
  o.resilience.checkpoint_dir = dir.path();
  o.resilience.resume = true;
  const CpalsResult r = cp_als(x, o);
  EXPECT_EQ(r.resilience.resumed_from, -1);
  EXPECT_EQ(r.iterations, 8);
}

TEST(Resume, ResumeWithoutDirThrows) {
  SparseTensor x = test_tensor();
  CpalsOptions o = cpals_base();
  o.resilience.resume = true;  // no checkpoint_dir
  EXPECT_THROW(cp_als(x, o), Error);
}

TEST(Resume, ShapeMismatchIsRejected) {
  ScratchDir dir("shape");
  SparseTensor x = test_tensor();
  CpalsOptions o = cpals_base();
  o.resilience.checkpoint_dir = dir.path();
  o.resilience.checkpoint_every = 4;
  (void)cp_als(x, o);

  SparseTensor x2 = test_tensor();
  CpalsOptions wrong = cpals_base();
  wrong.rank = 6;  // checkpoint factors carry rank 5
  wrong.resilience.checkpoint_dir = dir.path();
  wrong.resilience.resume = true;
  EXPECT_THROW(cp_als(x2, wrong), Error);
}

// -------------------------------------------------- bitwise resume: tucker

TEST(Resume, TuckerKillAndResumeIsBitwise) {
  ScratchDir dir("tucker");
  TuckerOptions base;
  base.core_dims = {3, 3, 3};
  base.max_iterations = 6;
  base.tolerance = 0.0;
  base.seed = 17;
  base.nthreads = 1;

  SparseTensor x1 = test_tensor();
  const TuckerResult ref = tucker_hooi(x1, base);

  SparseTensor x2 = test_tensor();
  TuckerOptions part = base;
  part.max_iterations = 4;
  part.resilience.checkpoint_dir = dir.path();
  part.resilience.checkpoint_every = 3;
  (void)tucker_hooi(x2, part);

  SparseTensor x3 = test_tensor();
  TuckerOptions rest = base;
  rest.resilience.checkpoint_dir = dir.path();
  rest.resilience.resume = true;
  const TuckerResult res = tucker_hooi(x3, rest);

  EXPECT_EQ(res.resilience.resumed_from, 3);
  ASSERT_EQ(res.fit_history.size(), ref.fit_history.size());
  for (std::size_t i = 0; i < ref.fit_history.size(); ++i) {
    EXPECT_EQ(res.fit_history[i], ref.fit_history[i]) << "iteration " << i;
  }
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(res.model.factors[static_cast<std::size_t>(m)].max_abs_diff(
                  ref.model.factors[static_cast<std::size_t>(m)]),
              0.0)
        << "mode " << m;
  }
  ASSERT_EQ(res.model.core.size(), ref.model.core.size());
  for (std::size_t i = 0; i < ref.model.core.size(); ++i) {
    EXPECT_EQ(res.model.core[i], ref.model.core[i]) << "core entry " << i;
  }
}

// ---------------------------------------------- bitwise resume: completion

class CompletionResumeTest
    : public ::testing::TestWithParam<CompletionAlgorithm> {};

TEST_P(CompletionResumeTest, KillAndResumeIsBitwise) {
  ScratchDir dir("completion");
  SparseTensor t = test_tensor(901);
  const auto [train, val] = split_train_test(t, 0.2, 7);

  CompletionOptions base;
  base.algorithm = GetParam();
  base.rank = 4;
  base.max_iterations = 8;
  base.tolerance = 0.0;  // fixed-length runs keep the comparison simple
  base.nthreads = 1;
  base.seed = 31;

  const CompletionResult ref = complete_tensor(train, &val, base);

  CompletionOptions part = base;
  part.max_iterations = 5;
  part.resilience.checkpoint_dir = dir.path();
  part.resilience.checkpoint_every = 4;
  (void)complete_tensor(train, &val, part);

  CompletionOptions rest = base;
  rest.resilience.checkpoint_dir = dir.path();
  rest.resilience.resume = true;
  const CompletionResult res = complete_tensor(train, &val, rest);

  EXPECT_EQ(res.resilience.resumed_from, 4);
  ASSERT_EQ(res.train_rmse.size(), ref.train_rmse.size());
  for (std::size_t i = 0; i < ref.train_rmse.size(); ++i) {
    EXPECT_EQ(res.train_rmse[i], ref.train_rmse[i]) << "epoch " << i;
  }
  ASSERT_EQ(res.val_rmse.size(), ref.val_rmse.size());
  for (std::size_t i = 0; i < ref.val_rmse.size(); ++i) {
    EXPECT_EQ(res.val_rmse[i], ref.val_rmse[i]) << "epoch " << i;
  }
  EXPECT_EQ(res.best_iteration, ref.best_iteration);
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(res.model.factors[static_cast<std::size_t>(m)].max_abs_diff(
                  ref.model.factors[static_cast<std::size_t>(m)]),
              0.0)
        << "mode " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, CompletionResumeTest,
                         ::testing::Values(CompletionAlgorithm::kAls,
                                           CompletionAlgorithm::kSgd,
                                           CompletionAlgorithm::kCcd),
                         [](const auto& info) {
                           return std::string(
                               completion_algorithm_name(info.param));
                         });

// ---------------------------------------------------- bitwise resume: dist

TEST(Resume, DistKillAndResumeIsBitwise) {
  ScratchDir dir("dist");
  DistOptions base;
  base.grid = {2, 2, 1};
  base.rank = 4;
  base.max_iterations = 6;
  base.seed = 23;

  SparseTensor x1 = test_tensor();
  const DistResult ref = dist_cp_als(x1, base);

  SparseTensor x2 = test_tensor();
  DistOptions part = base;
  part.max_iterations = 4;
  part.resilience.checkpoint_dir = dir.path();
  part.resilience.checkpoint_every = 3;
  (void)dist_cp_als(x2, part);

  SparseTensor x3 = test_tensor();
  DistOptions rest = base;
  rest.resilience.checkpoint_dir = dir.path();
  rest.resilience.resume = true;
  const DistResult res = dist_cp_als(x3, rest);

  EXPECT_EQ(res.resilience.resumed_from, 3);
  ASSERT_EQ(res.fit_history.size(), ref.fit_history.size());
  for (std::size_t i = 0; i < ref.fit_history.size(); ++i) {
    EXPECT_EQ(res.fit_history[i], ref.fit_history[i]) << "iteration " << i;
  }
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(res.model.factors[static_cast<std::size_t>(m)].max_abs_diff(
                  ref.model.factors[static_cast<std::size_t>(m)]),
              0.0)
        << "mode " << m;
  }
  // Comm accounting is an invariant of the iteration count, so the
  // resumed totals equal the clean run's.
  EXPECT_EQ(res.comm.total(), ref.comm.total());
}

// ------------------------------------------- rank-deficient Tikhonov path

TEST(RankDeficient, SingularGramConvergesViaTikhonovBump) {
  // Two modes of extent 1 make those factors single rows a and b, so the
  // mode-2 normal equations use (a a^T) ∘ (b b^T) = (a∘b)(a∘b)^T — rank
  // one, singular for any rank >= 2. The solve must detect the failed
  // Cholesky and retry with a Tikhonov bump, and the run must still
  // produce finite factors.
  SparseTensor x = generate_synthetic({.dims = {1, 1, 20}, .nnz = 8,
                                       .seed = 42, .zipf_exponent = 0.3});
  CpalsOptions o;
  o.rank = 3;
  o.max_iterations = 5;
  o.tolerance = 0.0;
  o.seed = 23;
  o.nthreads = 1;
  const std::uint64_t bumps_before = la::tikhonov_bump_count();
  const CpalsResult r = cp_als(x, o);
  EXPECT_GT(la::tikhonov_bump_count(), bumps_before)
      << "singular Gram never triggered the Tikhonov retry";
  EXPECT_GT(r.resilience.gram_bumps, 0u);
  for (const double f : r.fit_history) {
    EXPECT_TRUE(std::isfinite(f));
  }
  for (const auto& factor : r.model.factors) {
    for (idx_t i = 0; i < factor.rows(); ++i) {
      for (idx_t j = 0; j < factor.cols(); ++j) {
        EXPECT_TRUE(std::isfinite(static_cast<double>(factor(i, j))));
      }
    }
  }
}

TEST(RankDeficient, PotrfReportsFailureOnSingularMatrix) {
  // Direct unit check of the detection layer under the solver: a singular
  // SPD candidate must make potrf report failure rather than emit NaNs.
  la::Matrix v(3, 3);
  v.fill(val_t{1});  // rank-one: 3x3 of all ones
  la::Matrix chol = v;
  EXPECT_FALSE(la::potrf(chol));
}

// ---------------------------------------- checkpoint overhead sanity check

TEST(CheckpointOverhead, CountersTrackBytesAndTime) {
  ScratchDir dir("overhead");
  SparseTensor x = test_tensor();
  CpalsOptions o = cpals_base();
  o.resilience.checkpoint_dir = dir.path();
  o.resilience.checkpoint_every = 2;
  const CpalsResult r = cp_als(x, o);
  // 8 iterations, every 2, mid-run only: snapshots at 2, 4, 6.
  EXPECT_EQ(r.resilience.checkpoints, 3);
  EXPECT_GT(r.resilience.checkpoint_bytes, 0u);
  EXPECT_GE(r.resilience.checkpoint_seconds, 0.0);
}

}  // namespace
}  // namespace sptd
