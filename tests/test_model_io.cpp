// Tests for src/cpd/model_io: Kruskal model persistence.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "cpd/cpals.hpp"
#include "cpd/model_io.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

KruskalModel sample_model(std::uint64_t seed = 1) {
  Rng rng(seed);
  KruskalModel m;
  m.lambda = {1.5, 0.25, 3.75};
  m.factors.push_back(la::Matrix::random(7, 3, rng));
  m.factors.push_back(la::Matrix::random(5, 3, rng));
  m.factors.push_back(la::Matrix::random(9, 3, rng));
  return m;
}

TEST(ModelIo, RoundTripPreservesEverything) {
  const KruskalModel m = sample_model();
  std::ostringstream out;
  write_model(m, out);
  std::istringstream in(out.str());
  const KruskalModel back = read_model(in);
  ASSERT_EQ(back.order(), m.order());
  ASSERT_EQ(back.rank(), m.rank());
  for (idx_t r = 0; r < m.rank(); ++r) {
    EXPECT_DOUBLE_EQ(back.lambda[r], m.lambda[r]);
  }
  for (int mode = 0; mode < m.order(); ++mode) {
    EXPECT_EQ(back.factors[static_cast<std::size_t>(mode)].max_abs_diff(
                  m.factors[static_cast<std::size_t>(mode)]),
              0.0);
  }
}

TEST(ModelIo, FileRoundTrip) {
  const KruskalModel m = sample_model(2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "sptd_model.txt").string();
  write_model_file(m, path);
  const KruskalModel back = read_model_file(path);
  std::remove(path.c_str());
  const idx_t c[] = {3, 2, 4};
  EXPECT_DOUBLE_EQ(back.value_at(c), m.value_at(c));
}

TEST(ModelIo, LoadedModelPredictsLikeOriginal) {
  // Decompose, save, load, and verify the loaded model reproduces the fit.
  SparseTensor x = generate_synthetic(
      {.dims = {20, 18, 16}, .nnz = 800, .seed = 3});
  const SparseTensor original = x;
  CpalsOptions opts;
  opts.rank = 4;
  opts.max_iterations = 5;
  opts.tolerance = 0.0;
  const CpalsResult r = cp_als(x, opts);

  std::ostringstream out;
  write_model(r.model, out);
  std::istringstream in(out.str());
  const KruskalModel loaded = read_model(in);
  EXPECT_NEAR(loaded.fit_to(original, 1), r.model.fit_to(original, 1),
              1e-12);
}

TEST(ModelIo, RejectsBadHeader) {
  std::istringstream in("not-a-model 1\n");
  EXPECT_THROW(read_model(in), Error);
}

TEST(ModelIo, RejectsWrongVersion) {
  std::istringstream in("sptd-kruskal 99\norder 2 rank 1\n");
  EXPECT_THROW(read_model(in), Error);
}

TEST(ModelIo, RejectsTruncatedFactors) {
  const KruskalModel m = sample_model(4);
  std::ostringstream out;
  write_model(m, out);
  std::string text = out.str();
  text.resize(text.size() / 2);  // cut mid-factor
  std::istringstream in(text);
  EXPECT_THROW(read_model(in), Error);
}

TEST(ModelIo, RejectsRankMismatchInFactor) {
  std::istringstream in(
      "sptd-kruskal 1\n"
      "order 1 rank 2\n"
      "lambda\n1 1\n"
      "factor 0 2 3\n"  // cols != rank
      "1 2 3\n4 5 6\n");
  EXPECT_THROW(read_model(in), Error);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(read_model_file("/nonexistent/model.txt"), Error);
}

TEST(ModelIo, V1LegacyFormatStillReadable) {
  // Models written before the checksummed v2 header must keep loading.
  std::istringstream in(
      "sptd-kruskal 1\n"
      "order 2 rank 2\n"
      "lambda\n1.5 0.5\n"
      "factor 0 2 2\n1 2\n3 4\n"
      "factor 1 3 2\n5 6\n7 8\n9 10\n");
  const KruskalModel m = read_model(in);
  ASSERT_EQ(m.order(), 2);
  ASSERT_EQ(m.rank(), 2);
  EXPECT_DOUBLE_EQ(m.lambda[0], 1.5);
  EXPECT_DOUBLE_EQ(m.factors[1](2, 1), 10.0);
}

TEST(ModelIo, WritesVersionedChecksummedHeader) {
  const KruskalModel m = sample_model(5);
  const std::string text = serialize_model(m);
  EXPECT_EQ(text.rfind("sptd-kruskal 2\nchecksum ", 0), 0u);
}

TEST(ModelIo, RejectsChecksumMismatch) {
  const KruskalModel m = sample_model(6);
  std::string text = serialize_model(m);
  // Corrupt one payload digit after the header lines.
  const std::size_t pos = text.find('\n', text.find("checksum")) + 10;
  ASSERT_LT(pos, text.size());
  text[pos] = (text[pos] == '7') ? '8' : '7';
  std::istringstream in(text);
  try {
    (void)read_model(in);
    FAIL() << "corrupt model was accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos);
  }
}

TEST(ModelIo, RejectsTruncatedV2Payload) {
  const KruskalModel m = sample_model(7);
  std::string text = serialize_model(m);
  text.resize(text.size() - text.size() / 4);  // drop the tail
  std::istringstream in(text);
  EXPECT_THROW(read_model(in), Error);
}

}  // namespace
}  // namespace sptd
