// End-to-end integration tests: file I/O -> sort -> CSF -> CP-ALS across
// module boundaries, plus cross-implementation numerical equivalence.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "cpd/cpals.hpp"
#include "csf/csf.hpp"
#include "mttkrp/mttkrp.hpp"
#include "tensor/io.hpp"
#include "tensor/stats.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Integration, DecomposeFromTnsFile) {
  // generate -> write .tns -> read -> decompose; the fit must match a
  // decomposition of the in-memory tensor exactly (same seed).
  SparseTensor original = generate_low_rank({25, 20, 15}, 3, 2000, 0.01,
                                            2000);
  const std::string path = temp_path("sptd_integration.tns");
  write_tns_file(original, path);
  SparseTensor loaded = read_tns_file(path);
  std::remove(path.c_str());

  CpalsOptions opts;
  opts.rank = 4;
  opts.max_iterations = 8;
  opts.tolerance = 0.0;
  opts.nthreads = 2;
  const CpalsResult from_memory = cp_als(original, opts);
  const CpalsResult from_file = cp_als(loaded, opts);
  ASSERT_EQ(from_memory.fit_history.size(), from_file.fit_history.size());
  // Text round-trip preserves full double precision.
  EXPECT_EQ(from_memory.fit_history.back(), from_file.fit_history.back());
}

TEST(Integration, BinaryAndTextPathsAgree) {
  SparseTensor t = generate_synthetic(
      {.dims = {30, 30, 30}, .nnz = 3000, .seed = 2001});
  const std::string tns = temp_path("sptd_integration2.tns");
  const std::string bin = temp_path("sptd_integration2.bin");
  write_tns_file(t, tns);
  write_bin_file(t, bin);
  SparseTensor from_tns = read_tns_file(tns);
  SparseTensor from_bin = read_bin_file(bin);
  std::remove(tns.c_str());
  std::remove(bin.c_str());

  CpalsOptions opts;
  opts.rank = 3;
  opts.max_iterations = 4;
  opts.tolerance = 0.0;
  const CpalsResult a = cp_als(from_tns, opts);
  const CpalsResult b = cp_als(from_bin, opts);
  EXPECT_EQ(a.fit_history.back(), b.fit_history.back());
}

TEST(Integration, CsfPoliciesGiveSameDecomposition) {
  // One-mode, two-mode and all-mode storage must not change the math.
  const SparseTensor base = generate_synthetic(
      {.dims = {35, 18, 27}, .nnz = 2500, .seed = 2002});
  std::vector<double> fits;
  for (const auto policy : {CsfPolicy::kOneMode, CsfPolicy::kTwoMode,
                            CsfPolicy::kAllMode}) {
    SparseTensor t = base;
    CpalsOptions opts;
    opts.rank = 4;
    opts.max_iterations = 5;
    opts.tolerance = 0.0;
    opts.csf_policy = policy;
    fits.push_back(cp_als(t, opts).fit_history.back());
  }
  // Different storage policies traverse nonzeros in different orders, so
  // agreement is only up to floating-point reassociation.
  EXPECT_NEAR(fits[0], fits[1], 1e-9);
  EXPECT_NEAR(fits[0], fits[2], 1e-9);
}

TEST(Integration, ThreadCountDoesNotChangeConvergence) {
  const SparseTensor base = generate_full_low_rank({16, 14, 15}, 4, 0.0,
                                                   2003);
  std::vector<double> fits;
  for (const int nthreads : {1, 2, 4, 8}) {
    SparseTensor t = base;
    CpalsOptions opts;
    opts.rank = 4;
    opts.max_iterations = 20;
    opts.tolerance = 0.0;
    opts.nthreads = nthreads;
    fits.push_back(cp_als(t, opts).fit_history.back());
  }
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_NEAR(fits[i], fits[0], 1e-6);
  }
  // Thread invariance is the point here; 20 iterations lands short of
  // full convergence but must already fit well.
  EXPECT_GT(fits[0], 0.95);
}

TEST(Integration, PresetPipelineSmallScale) {
  // The bench pipeline end-to-end at a tiny scale: preset -> synthesize ->
  // stats -> decompose with each implementation variant.
  const auto cfg = find_preset("yelp").scaled(0.002);
  SparseTensor t = generate_synthetic(cfg);
  const TensorStats stats = compute_stats(t);
  EXPECT_EQ(stats.nnz, cfg.nnz);

  for (const auto& variant : impl_variants()) {
    SparseTensor work = t;
    CpalsOptions opts;
    opts.rank = 4;
    opts.max_iterations = 2;
    opts.tolerance = 0.0;
    opts.nthreads = 2;
    apply_impl_variant(variant, opts);
    const CpalsResult r = cp_als(work, opts);
    EXPECT_EQ(r.iterations, 2) << variant.name;
    EXPECT_TRUE(std::isfinite(r.fit_history.back())) << variant.name;
  }
}

TEST(Integration, RemoveEmptySlicesThenDecompose) {
  // Sparse generation at tiny nnz leaves empty slices; compaction must
  // produce a decomposable tensor.
  SparseTensor t = generate_synthetic(
      {.dims = {500, 400, 300}, .nnz = 1000, .seed = 2004,
       .zipf_exponent = 0.8});
  t.remove_empty_slices();
  for (int m = 0; m < 3; ++m) {
    EXPECT_LE(t.dim(m), 500u);
  }
  CpalsOptions opts;
  opts.rank = 3;
  opts.max_iterations = 3;
  opts.tolerance = 0.0;
  const CpalsResult r = cp_als(t, opts);
  EXPECT_TRUE(std::isfinite(r.fit_history.back()));
}

TEST(Integration, MttkrpAgreesBetweenCooAndCsf) {
  SparseTensor t = generate_synthetic(
      {.dims = {40, 32, 24}, .nnz = 5000, .seed = 2005,
       .zipf_exponent = 0.6});
  Rng rng(77);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(t.dim(m), 6, rng));
  }
  SparseTensor sorted = t;
  const CsfSet set(sorted, CsfPolicy::kTwoMode, 2);
  MttkrpOptions mo;
  mo.nthreads = 2;
  MttkrpWorkspace ws(mo, 6, 3);
  for (int mode = 0; mode < 3; ++mode) {
    la::Matrix via_csf(t.dim(mode), 6);
    mttkrp(set, factors, mode, via_csf, ws);
    la::Matrix via_coo(t.dim(mode), 6);
    mttkrp_coo(t, factors, mode, via_coo, mo);
    EXPECT_LT(via_csf.max_abs_diff(via_coo), 1e-9) << "mode " << mode;
  }
}

}  // namespace
}  // namespace sptd
