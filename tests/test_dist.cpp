// Tests for src/dist: simulated medium-grained distributed CP-ALS —
// numerics vs the shared-memory driver, block partitioning invariants,
// communication-volume accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <numeric>
#include <string>
#include <tuple>

#include <unistd.h>

#include "common/error.hpp"
#include "cpd/cpals.hpp"
#include "dist/dist_cpals.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

namespace fs = std::filesystem;

SparseTensor test_tensor(std::uint64_t seed = 6000) {
  return generate_synthetic({.dims = {24, 30, 18}, .nnz = 2000,
                             .seed = seed, .zipf_exponent = 0.5});
}

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const char* tag) {
    path_ = (fs::temp_directory_path() /
             (std::string("sptd_dist_") + tag + "_" +
              std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Bitwise model + fit-history comparison: the cross-transport contract.
void expect_bitwise_equal(const DistResult& a, const DistResult& b) {
  ASSERT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.fit_history.size(), b.fit_history.size());
  for (std::size_t i = 0; i < a.fit_history.size(); ++i) {
    EXPECT_EQ(a.fit_history[i], b.fit_history[i]) << "iteration " << i;
  }
  ASSERT_EQ(a.model.factors.size(), b.model.factors.size());
  for (std::size_t m = 0; m < a.model.factors.size(); ++m) {
    EXPECT_EQ(a.model.factors[m].max_abs_diff(b.model.factors[m]), 0.0)
        << "mode " << m;
  }
  ASSERT_EQ(a.model.lambda.size(), b.model.lambda.size());
  for (std::size_t r = 0; r < a.model.lambda.size(); ++r) {
    EXPECT_EQ(a.model.lambda[r], b.model.lambda[r]) << "component " << r;
  }
}

TEST(DistGrid, SingleLocaleMatchesSharedMemoryExactly) {
  // 1x1x1 grid: no partitioning at all; the fit trajectory must be
  // bitwise identical to the shared-memory driver (same seed, same
  // accumulation order with one thread).
  SparseTensor x = test_tensor();
  DistOptions dopts;
  dopts.grid = {1, 1, 1};
  dopts.rank = 4;
  dopts.max_iterations = 5;
  dopts.seed = 23;
  const DistResult dist = dist_cp_als(x, dopts);

  SparseTensor x2 = test_tensor();
  CpalsOptions sopts;
  sopts.rank = 4;
  sopts.max_iterations = 5;
  sopts.tolerance = 0.0;
  sopts.seed = 23;
  sopts.nthreads = 1;
  const CpalsResult shared = cp_als(x2, sopts);

  ASSERT_EQ(dist.fit_history.size(), shared.fit_history.size());
  for (std::size_t i = 0; i < dist.fit_history.size(); ++i) {
    EXPECT_NEAR(dist.fit_history[i], shared.fit_history[i], 1e-12)
        << "iteration " << i;
  }
}

class DistGridShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DistGridShapeTest, NumericsMatchSharedMemory) {
  const auto [g0, g1, g2] = GetParam();
  SparseTensor x = test_tensor();
  DistOptions dopts;
  dopts.grid = {static_cast<idx_t>(g0), static_cast<idx_t>(g1),
                static_cast<idx_t>(g2)};
  dopts.rank = 4;
  dopts.max_iterations = 5;
  const DistResult dist = dist_cp_als(x, dopts);

  SparseTensor x2 = test_tensor();
  CpalsOptions sopts;
  sopts.rank = 4;
  sopts.max_iterations = 5;
  sopts.tolerance = 0.0;
  sopts.seed = dopts.seed;
  const CpalsResult shared = cp_als(x2, sopts);

  // Partitioning only changes summation order: fits agree to round-off.
  ASSERT_EQ(dist.fit_history.size(), shared.fit_history.size());
  EXPECT_NEAR(dist.fit_history.back(), shared.fit_history.back(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistGridShapeTest,
    ::testing::Values(std::make_tuple(2, 1, 1), std::make_tuple(1, 3, 1),
                      std::make_tuple(2, 2, 2), std::make_tuple(4, 1, 2),
                      std::make_tuple(3, 2, 1)));

TEST(Dist, LocaleNnzSumsToTotal) {
  SparseTensor x = test_tensor();
  DistOptions opts;
  opts.grid = {2, 3, 2};
  opts.rank = 3;
  opts.max_iterations = 1;
  const DistResult r = dist_cp_als(x, opts);
  ASSERT_EQ(r.locale_nnz.size(), 12u);
  const nnz_t total =
      std::accumulate(r.locale_nnz.begin(), r.locale_nnz.end(), nnz_t{0});
  EXPECT_EQ(total, x.nnz());
}

TEST(Dist, WeightedBlocksBalanceSkewedTensors) {
  SparseTensor x = generate_synthetic(
      {.dims = {200, 40, 40}, .nnz = 8000, .seed = 6001,
       .zipf_exponent = 1.2});
  DistOptions opts;
  opts.grid = {4, 1, 1};
  opts.rank = 2;
  opts.max_iterations = 1;
  opts.weighted_blocks = false;
  const DistResult uniform = dist_cp_als(x, opts);
  opts.weighted_blocks = true;
  const DistResult weighted = dist_cp_als(x, opts);

  const auto imbalance = [](const std::vector<nnz_t>& v) {
    nnz_t mx = 0, total = 0;
    for (const nnz_t n : v) {
      mx = std::max(mx, n);
      total += n;
    }
    return static_cast<double>(mx) /
           (static_cast<double>(total) / static_cast<double>(v.size()));
  };
  EXPECT_LT(imbalance(weighted.locale_nnz),
            imbalance(uniform.locale_nnz));
}

TEST(Dist, CommVolumeMatchesPrediction) {
  SparseTensor x = test_tensor();
  DistOptions opts;
  opts.grid = {2, 2, 1};
  opts.rank = 5;
  opts.max_iterations = 3;
  const DistResult r = dist_cp_als(x, opts);
  const CommVolume predicted =
      predict_comm_volume(x.dims(), opts.grid, opts.rank);
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(r.comm.reduce_bytes[static_cast<std::size_t>(m)],
              predicted.reduce_bytes[static_cast<std::size_t>(m)] * 3);
    EXPECT_EQ(r.comm.broadcast_bytes[static_cast<std::size_t>(m)],
              predicted.broadcast_bytes[static_cast<std::size_t>(m)] * 3);
  }
}

TEST(Dist, SingleLocaleMovesNoBytes) {
  SparseTensor x = test_tensor();
  DistOptions opts;
  opts.grid = {1, 1, 1};
  opts.rank = 3;
  opts.max_iterations = 2;
  const DistResult r = dist_cp_als(x, opts);
  EXPECT_EQ(r.comm.total(), 0u);
}

TEST(Dist, BalancedGridMovesFewerBytesThanFlat) {
  // The medium-grained paper's central claim: an N-D grid communicates
  // less than a 1-D decomposition with the same locale count.
  const dims_t dims = {64, 64, 64};
  const idx_t rank = 8;
  const auto flat = predict_comm_volume(dims, {8, 1, 1}, rank);
  const auto cube = predict_comm_volume(dims, {2, 2, 2}, rank);
  EXPECT_LT(cube.total(), flat.total());
}

TEST(Dist, PredictionFormula) {
  // Hand check: dims {10, 20}, grid {2, 1}, rank 3.
  // Mode 0: layers of P/p0 = 1 locale -> 0 bytes.
  // Mode 1: layers of P/p1 = 2 locales -> (2-1)*20*3*8 = 480 bytes each
  // direction.
  const auto comm = predict_comm_volume({10, 20}, {2, 1}, 3);
  EXPECT_EQ(comm.reduce_bytes[0], 0u);
  EXPECT_EQ(comm.broadcast_bytes[0], 0u);
  EXPECT_EQ(comm.reduce_bytes[1], 480u);
  EXPECT_EQ(comm.broadcast_bytes[1], 480u);
}

TEST(Dist, RejectsBadArguments) {
  SparseTensor x = test_tensor();
  DistOptions opts;
  opts.grid = {2, 2};  // wrong order
  EXPECT_THROW(dist_cp_als(x, opts), Error);
  opts.grid = {0, 1, 1};
  EXPECT_THROW(dist_cp_als(x, opts), Error);
  opts.grid = {100000, 1, 1};  // more parts than slices
  EXPECT_THROW(dist_cp_als(x, opts), Error);
}

TEST(Dist, FitImprovesOverIterations) {
  SparseTensor x = generate_full_low_rank({12, 12, 12}, 3, 0.0, 6002);
  DistOptions opts;
  opts.grid = {2, 2, 2};
  opts.rank = 3;
  opts.max_iterations = 30;
  const DistResult r = dist_cp_als(x, opts);
  EXPECT_GT(r.fit_history.back(), r.fit_history.front());
  EXPECT_GT(r.fit_history.back(), 0.95);
}

// ------------------------------------------------------------ transports

TEST(Transport, ParseAndNames) {
  EXPECT_EQ(parse_transport("sim"), TransportKind::kSim);
  EXPECT_EQ(parse_transport("shm"), TransportKind::kShm);
  EXPECT_EQ(parse_transport("mpi"), TransportKind::kMpi);
  EXPECT_STREQ(transport_name(TransportKind::kSim), "sim");
  EXPECT_STREQ(transport_name(TransportKind::kShm), "shm");
  EXPECT_STREQ(transport_name(TransportKind::kMpi), "mpi");
  EXPECT_THROW(parse_transport("tcp"), Error);
  EXPECT_THROW(parse_transport(""), Error);
}

TEST(Transport, MpiRejectedWhenNotBuilt) {
  if (mpi_transport_available()) GTEST_SKIP() << "MPI build";
  SparseTensor x = test_tensor();
  DistOptions opts;
  opts.grid = {1, 1, 1};
  opts.transport = TransportKind::kMpi;
  EXPECT_THROW(dist_cp_als(x, opts), Error);
}

DistOptions transport_base() {
  DistOptions opts;
  opts.grid = {2, 2, 1};
  opts.rank = 4;
  opts.max_iterations = 5;
  opts.seed = 23;
  return opts;
}

TEST(Transport, ShmSingleLocaleMatchesSimBitwise) {
  SparseTensor x = test_tensor();
  DistOptions opts = transport_base();
  opts.grid = {1, 1, 1};
  const DistResult sim = dist_cp_als(x, opts);
  opts.transport = TransportKind::kShm;
  const DistResult shm = dist_cp_als(x, opts);
  expect_bitwise_equal(sim, shm);
  EXPECT_EQ(sim.comm_measured.total_bytes(), 0u);  // nothing real moves
}

TEST(Transport, ShmMatchesSimOnGridBitwise) {
  // Real forked processes over the shared-memory ring must reproduce the
  // in-process simulation exactly: both sum partials in locale order.
  SparseTensor x = test_tensor();
  DistOptions opts = transport_base();
  const DistResult sim = dist_cp_als(x, opts);
  opts.transport = TransportKind::kShm;
  const DistResult shm = dist_cp_als(x, opts);
  expect_bitwise_equal(sim, shm);
  // The ring actually moved bytes, and at least the modeled reduce
  // volume's worth (physical rows are padded, replay only adds).
  EXPECT_GT(shm.comm_measured.total_bytes(), 0u);
  EXPECT_GE(shm.comm_measured.total_bytes(), shm.comm.total());
}

TEST(Transport, ShmRankKillRecoversBitwise) {
  // The tentpole acceptance path: SIGKILL a real child rank mid-run,
  // launcher respawns it from the newest per-rank checkpoint, survivors
  // quiesce and rejoin — and the final model is bitwise identical to the
  // uninjected run.
  ScratchDir dir("rankkill");
  SparseTensor x = test_tensor();
  DistOptions opts = transport_base();
  opts.transport = TransportKind::kShm;
  opts.max_iterations = 6;
  const DistResult clean = dist_cp_als(x, opts);

  opts.resilience.checkpoint_dir = dir.path();
  opts.resilience.checkpoint_every = 2;
  opts.resilience.inject = "rank-kill:1@3";
  const DistResult recovered = dist_cp_als(x, opts);

  EXPECT_GE(recovered.resilience.locale_restarts, 1);
  EXPECT_GE(recovered.resilience.faults_injected, 1u);
  EXPECT_EQ(recovered.resilience.resumed_from, 2);  // checkpoint at 2
  expect_bitwise_equal(clean, recovered);
}

TEST(Transport, ShmRankKillWithoutCheckpointsReplaysBitwise) {
  // No checkpoint dir: recovery degrades to a deterministic full replay
  // (even when the dead rank is rank 0, the result collector).
  SparseTensor x = test_tensor();
  DistOptions opts = transport_base();
  opts.grid = {2, 1, 1};
  opts.transport = TransportKind::kShm;
  const DistResult clean = dist_cp_als(x, opts);

  opts.resilience.inject = "rank-kill:0@2";
  const DistResult recovered = dist_cp_als(x, opts);
  EXPECT_GE(recovered.resilience.locale_restarts, 1);
  EXPECT_EQ(recovered.resilience.resumed_from, -1);  // scratch replay
  expect_bitwise_equal(clean, recovered);
}

TEST(Transport, SimRankKillAliasRebuildsInProcess) {
  // Under sim, rank-kill:k@it is the locale-fail alias: the locale's CSF
  // set and plan are dropped and rebuilt at the given iteration.
  SparseTensor x = test_tensor();
  DistOptions opts = transport_base();
  const DistResult clean = dist_cp_als(x, opts);
  opts.resilience.inject = "rank-kill:2@1";
  const DistResult recovered = dist_cp_als(x, opts);
  EXPECT_EQ(recovered.resilience.locale_restarts, 1);
  expect_bitwise_equal(clean, recovered);
}

}  // namespace
}  // namespace sptd
