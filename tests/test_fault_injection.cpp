// Tests for the deterministic fault-injection harness: the --inject
// grammar, the injector's firing rules, and — for every fault class —
// that the drivers detect the fault and recover (or fail with a
// structured ResilienceError once the retry budget is gone).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fileio.hpp"
#include "completion/completion.hpp"
#include "cpd/cpals.hpp"
#include "dist/dist_cpals.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault.hpp"
#include "tensor/synthetic.hpp"
#include "tucker/tucker.hpp"

namespace sptd {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const char* tag) {
    path_ = (fs::temp_directory_path() /
             (std::string("sptd_fault_") + tag + "_" +
              std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SparseTensor test_tensor(std::uint64_t seed = 910) {
  return generate_synthetic({.dims = {18, 22, 14}, .nnz = 1500,
                             .seed = seed, .zipf_exponent = 0.5});
}

CpalsOptions cpals_base() {
  CpalsOptions o;
  o.rank = 5;
  o.max_iterations = 8;
  o.tolerance = 0.0;
  o.seed = 23;
  o.nthreads = 1;
  return o;
}

// ------------------------------------------------------------ plan grammar

TEST(FaultPlan, ParsesEveryClause) {
  const FaultPlan p = FaultPlan::parse(
      "nan-values:0.25,corrupt-factor:3,io-fail:2,locale-fail:1");
  EXPECT_DOUBLE_EQ(p.nan_values_p, 0.25);
  EXPECT_EQ(p.corrupt_factor_iter, 3);
  EXPECT_EQ(p.io_fail_count, 2);
  EXPECT_EQ(p.locale_fail, 1);
  EXPECT_FALSE(p.empty());
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  const FaultPlan p = FaultPlan::parse("");
  EXPECT_TRUE(p.empty());
  EXPECT_DOUBLE_EQ(p.nan_values_p, 0.0);
  EXPECT_EQ(p.corrupt_factor_iter, 0);
  EXPECT_EQ(p.io_fail_count, 0);
  EXPECT_EQ(p.locale_fail, -1);
}

TEST(FaultPlan, SingleClauseLeavesOthersOff) {
  const FaultPlan p = FaultPlan::parse("corrupt-factor:2");
  EXPECT_EQ(p.corrupt_factor_iter, 2);
  EXPECT_DOUBLE_EQ(p.nan_values_p, 0.0);
  EXPECT_EQ(p.io_fail_count, 0);
  EXPECT_EQ(p.locale_fail, -1);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("nan-values"), Error);       // no colon
  EXPECT_THROW(FaultPlan::parse("warp-core:1"), Error);      // unknown
  EXPECT_THROW(FaultPlan::parse("nan-values:lots"), Error);  // not a number
  EXPECT_THROW(FaultPlan::parse("nan-values:1.5"), Error);   // p > 1
  EXPECT_THROW(FaultPlan::parse("corrupt-factor:-1"), Error);
  EXPECT_THROW(FaultPlan::parse("io-fail:x"), Error);
}

TEST(FaultPlan, ParsesIterationQualifiedKills) {
  const FaultPlan p = FaultPlan::parse("locale-fail:2@5");
  EXPECT_EQ(p.locale_fail, 2);
  EXPECT_EQ(p.locale_fail_iter, 5);
  // rank-kill is the same clause (the transport decides whether the kill
  // is an in-process rebuild or a real SIGKILL).
  const FaultPlan q = FaultPlan::parse("rank-kill:1@3");
  EXPECT_EQ(q.locale_fail, 1);
  EXPECT_EQ(q.locale_fail_iter, 3);
  // No @iter keeps the halfway default.
  const FaultPlan r = FaultPlan::parse("rank-kill:0");
  EXPECT_EQ(r.locale_fail, 0);
  EXPECT_EQ(r.locale_fail_iter, -1);
}

TEST(FaultPlan, RejectsMalformedKillIterations) {
  EXPECT_THROW(FaultPlan::parse("rank-kill:1@"), Error);
  EXPECT_THROW(FaultPlan::parse("rank-kill:1@x"), Error);
  EXPECT_THROW(FaultPlan::parse("rank-kill:1@-2"), Error);
  EXPECT_THROW(FaultPlan::parse("rank-kill:@3"), Error);
}

TEST(FaultInjector, RankKillDueIsAPurePredicate) {
  // The due-check must not mutate (no one-shot latch, no fault counting):
  // a respawned victim replaying the kill iteration re-evaluates it and
  // relies on the shared-memory token for one-shot semantics.
  FaultInjector inj(FaultPlan::parse("rank-kill:1@3"), 1);
  EXPECT_FALSE(inj.rank_kill_due(1, 4, 2, 8));
  EXPECT_TRUE(inj.rank_kill_due(1, 4, 3, 8));
  EXPECT_TRUE(inj.rank_kill_due(1, 4, 3, 8));  // still true: no latch
  EXPECT_FALSE(inj.rank_kill_due(0, 4, 3, 8));
  EXPECT_EQ(inj.faults_injected(), 0u);
}

TEST(FaultInjector, KillLocaleHonorsExplicitIteration) {
  FaultInjector inj(FaultPlan::parse("locale-fail:2@1"), 1);
  EXPECT_FALSE(inj.kill_locale(2, 4, 0, 8));
  EXPECT_TRUE(inj.kill_locale(2, 4, 1, 8));
  EXPECT_FALSE(inj.kill_locale(2, 4, 1, 8));  // one-shot in-process
  EXPECT_EQ(inj.faults_injected(), 1u);
}

// --------------------------------------------------------- injector firing

TEST(FaultInjector, CorruptFactorFiresExactlyOnce) {
  FaultInjector inj(FaultPlan::parse("corrupt-factor:3"), 1337);
  Rng rng(1);
  std::vector<la::Matrix> factors;
  factors.push_back(la::Matrix::random(4, 3, rng));
  // corrupt-factor:N fires during the Nth sweep, i.e. 0-based it == N-1.
  EXPECT_EQ(inj.corrupt_factors(factors, 0), 0);
  EXPECT_EQ(inj.corrupt_factors(factors, 1), 0);
  const int hit = inj.corrupt_factors(factors, 2);
  EXPECT_GT(hit, 0);
  bool saw_nonfinite = false;
  for (idx_t i = 0; i < factors[0].rows(); ++i) {
    for (idx_t j = 0; j < factors[0].cols(); ++j) {
      if (!std::isfinite(static_cast<double>(factors[0](i, j)))) {
        saw_nonfinite = true;
      }
    }
  }
  EXPECT_TRUE(saw_nonfinite);
  // One-shot: the same iteration number seen again does not re-fire.
  EXPECT_EQ(inj.corrupt_factors(factors, 2), 0);
  EXPECT_EQ(inj.faults_injected(), static_cast<std::uint64_t>(hit));
}

TEST(FaultInjector, IsDeterministicInSeed) {
  // Same plan + same seed must corrupt identical entries — that is the
  // property that makes fault runs reproducible in CI.
  auto run = [](std::uint64_t seed) {
    FaultInjector inj(FaultPlan::parse("corrupt-factor:1"), seed);
    Rng rng(9);
    std::vector<la::Matrix> factors;
    factors.push_back(la::Matrix::random(6, 4, rng));
    inj.corrupt_factors(factors, 0);
    std::vector<int> nan_at;
    for (idx_t i = 0; i < factors[0].rows(); ++i) {
      for (idx_t j = 0; j < factors[0].cols(); ++j) {
        if (!std::isfinite(static_cast<double>(factors[0](i, j)))) {
          nan_at.push_back(static_cast<int>(i * 4 + j));
        }
      }
    }
    return nan_at;
  };
  EXPECT_EQ(run(1337), run(1337));
}

TEST(FaultInjector, IoFailBudgetDrains) {
  FaultInjector inj(FaultPlan::parse("io-fail:2"), 1);
  EXPECT_TRUE(inj.fail_checkpoint_write());
  EXPECT_TRUE(inj.fail_checkpoint_write());
  EXPECT_FALSE(inj.fail_checkpoint_write());  // budget exhausted
  EXPECT_EQ(inj.faults_injected(), 2u);
}

TEST(FaultInjector, KillLocaleFiresOnceAtHalfway) {
  FaultInjector inj(FaultPlan::parse("locale-fail:5"), 1);
  const int nlocales = 4;  // 5 % 4 == locale 1 dies
  bool killed = false;
  for (int it = 1; it <= 8; ++it) {
    for (int l = 0; l < nlocales; ++l) {
      if (inj.kill_locale(l, nlocales, it, 8)) {
        EXPECT_FALSE(killed) << "locale killed twice";
        EXPECT_EQ(l, 1);
        EXPECT_EQ(it, 4);  // max_iterations / 2
        killed = true;
      }
    }
  }
  EXPECT_TRUE(killed);
}

// --------------------------------------------- recovery: corrupt-factor

TEST(FaultRecovery, CpalsRollsBackFromCorruptFactor) {
  SparseTensor x = test_tensor();
  CpalsOptions o = cpals_base();
  o.resilience.inject = "corrupt-factor:3";
  const CpalsResult r = cp_als(x, o);
  EXPECT_EQ(r.resilience.rollbacks, 1);
  EXPECT_EQ(r.resilience.retries, 1);
  EXPECT_GT(r.resilience.faults_injected, 0u);
  EXPECT_EQ(r.iterations, 8);  // the run still completes
  for (const double f : r.fit_history) {
    EXPECT_TRUE(std::isfinite(f));
  }
  // The perturbed restart trajectory still converges to a sane model.
  EXPECT_GT(r.fit_history.back(), 0.0);
}

TEST(FaultRecovery, TuckerRollsBackFromCorruptFactor) {
  SparseTensor x = test_tensor();
  TuckerOptions o;
  o.core_dims = {3, 3, 3};
  o.max_iterations = 6;
  o.tolerance = 0.0;
  o.seed = 17;
  o.nthreads = 1;
  o.resilience.inject = "corrupt-factor:2";
  const TuckerResult r = tucker_hooi(x, o);
  EXPECT_EQ(r.resilience.rollbacks, 1);
  EXPECT_GT(r.resilience.faults_injected, 0u);
  for (const double f : r.fit_history) {
    EXPECT_TRUE(std::isfinite(f));
  }
}

TEST(FaultRecovery, CompletionRollsBackFromCorruptFactor) {
  SparseTensor t = test_tensor(911);
  const auto [train, val] = split_train_test(t, 0.2, 7);
  CompletionOptions o;
  o.rank = 4;
  o.max_iterations = 6;
  o.tolerance = 0.0;
  o.nthreads = 1;
  o.resilience.inject = "corrupt-factor:2";
  const CompletionResult r = complete_tensor(train, &val, o);
  EXPECT_EQ(r.resilience.rollbacks, 1);
  EXPECT_GT(r.resilience.faults_injected, 0u);
  for (const double e : r.train_rmse) {
    EXPECT_TRUE(std::isfinite(e));
  }
}

TEST(FaultRecovery, CcdCompletionRecoversWithResidualRebuild) {
  // CCD++ keeps a running residual; a rollback must rebuild it from the
  // restored factors or every later sweep is silently wrong.
  SparseTensor t = test_tensor(912);
  const auto [train, val] = split_train_test(t, 0.2, 7);
  CompletionOptions o;
  o.algorithm = CompletionAlgorithm::kCcd;
  o.rank = 4;
  o.max_iterations = 6;
  o.tolerance = 0.0;
  o.nthreads = 1;
  o.resilience.inject = "corrupt-factor:2";
  const CompletionResult r = complete_tensor(train, &val, o);
  EXPECT_EQ(r.resilience.rollbacks, 1);
  for (const double e : r.train_rmse) {
    EXPECT_TRUE(std::isfinite(e));
  }
  // RMSE after recovery keeps descending rather than blowing up.
  EXPECT_LT(r.train_rmse.back(), r.train_rmse.front());
}

// ------------------------------------------------- recovery: nan-values

TEST(FaultRecovery, ProbabilisticNanValuesRecovers) {
  SparseTensor x = test_tensor();
  CpalsOptions o = cpals_base();
  o.resilience.inject = "nan-values:0.4";
  o.resilience.inject_seed = 7;
  o.resilience.max_retries = 50;  // plenty; p=0.4 re-fires often
  const CpalsResult r = cp_als(x, o);
  EXPECT_GT(r.resilience.rollbacks, 0);
  EXPECT_EQ(r.iterations, 8);
  for (const double f : r.fit_history) {
    EXPECT_TRUE(std::isfinite(f));
  }
}

TEST(FaultRecovery, ExhaustedRetriesThrowStructuredError) {
  SparseTensor x = test_tensor();
  CpalsOptions o = cpals_base();
  o.resilience.inject = "nan-values:1";  // every iteration is poisoned
  o.resilience.max_retries = 2;
  try {
    (void)cp_als(x, o);
    FAIL() << "retry exhaustion did not throw";
  } catch (const ResilienceError& e) {
    EXPECT_NE(std::string(e.what()).find("cpals"), std::string::npos);
    EXPECT_EQ(e.issue(), HealthIssue::kNonFiniteFactor);
    EXPECT_EQ(e.retries(), 2);
    EXPECT_NE(std::string(e.what()).find("non-finite"),
              std::string::npos);
  }
}

TEST(FaultRecovery, GuardsOffMeansNoRecovery) {
  // With health checks disabled nothing rolls back: the poisoned factors
  // reach the next sweep's Gram, which cannot be regularized, and the run
  // dies with a hard error instead of a structured recovery — proving
  // detection comes from the monitor, not solver accident.
  SparseTensor x = test_tensor();
  CpalsOptions o = cpals_base();
  o.max_iterations = 4;
  o.resilience.inject = "corrupt-factor:2";
  o.resilience.health_checks = false;
  EXPECT_THROW((void)cp_als(x, o), Error);
}

// ---------------------------------------------------- recovery: io-fail

TEST(FaultRecovery, IoFailTearsOneCheckpointThenRecovers) {
  ScratchDir dir("iofail");
  SparseTensor x = test_tensor();
  CpalsOptions o = cpals_base();
  o.resilience.checkpoint_dir = dir.path();
  o.resilience.checkpoint_every = 2;
  o.resilience.inject = "io-fail:1";
  const CpalsResult r = cp_als(x, o);
  // First write (iteration 2) fails torn; iterations 4 and 6 succeed.
  EXPECT_EQ(r.resilience.checkpoint_failures, 1);
  EXPECT_EQ(r.resilience.checkpoints, 2);
  // The torn file must not be loadable; load_latest lands on a good one.
  const auto latest = CheckpointManager::load_latest(dir.path(), "cpals");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iteration, 6);

  // And a resume from the surviving checkpoints matches a clean run.
  SparseTensor x2 = test_tensor();
  const CpalsResult ref = cp_als(x2, cpals_base());
  SparseTensor x3 = test_tensor();
  CpalsOptions rest = cpals_base();
  rest.resilience.checkpoint_dir = dir.path();
  rest.resilience.resume = true;
  const CpalsResult res = cp_als(x3, rest);
  EXPECT_EQ(res.resilience.resumed_from, 6);
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(res.model.factors[static_cast<std::size_t>(m)].max_abs_diff(
                  ref.model.factors[static_cast<std::size_t>(m)]),
              0.0)
        << "mode " << m;
  }
}

// ------------------------------------------------ recovery: locale-fail

TEST(FaultRecovery, DistLocaleKillRebuildsBitwise) {
  DistOptions base;
  base.grid = {2, 2, 1};
  base.rank = 4;
  base.max_iterations = 6;
  base.seed = 23;

  SparseTensor x1 = test_tensor();
  const DistResult clean = dist_cp_als(x1, base);

  SparseTensor x2 = test_tensor();
  DistOptions faulty = base;
  faulty.resilience.inject = "locale-fail:2";
  const DistResult r = dist_cp_als(x2, faulty);

  EXPECT_EQ(r.resilience.locale_restarts, 1);
  EXPECT_GT(r.resilience.faults_injected, 0u);
  // The rebuilt locale's CSF + plan are deterministic, so the run's
  // numbers are bitwise those of the clean run.
  ASSERT_EQ(r.fit_history.size(), clean.fit_history.size());
  for (std::size_t i = 0; i < clean.fit_history.size(); ++i) {
    EXPECT_EQ(r.fit_history[i], clean.fit_history[i]) << "iteration " << i;
  }
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(r.model.factors[static_cast<std::size_t>(m)].max_abs_diff(
                  clean.model.factors[static_cast<std::size_t>(m)]),
              0.0)
        << "mode " << m;
  }
}

}  // namespace
}  // namespace sptd
