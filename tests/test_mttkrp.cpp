// Tests for src/mttkrp: every kernel level x row-access policy x sync
// strategy must match the dense oracle exactly (up to fp round-off).

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/error.hpp"
#include "csf/csf.hpp"
#include "mttkrp/mttkrp.hpp"
#include "mttkrp/plan.hpp"
#include "sort/sort.hpp"
#include "tensor/dense.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

constexpr double kTol = 1e-9;

struct Fixture {
  SparseTensor coo;
  DenseTensor dense;
  std::vector<la::Matrix> factors;
  idx_t rank;

  Fixture(dims_t dims, nnz_t nnz, idx_t rank_, std::uint64_t seed)
      : coo(generate_synthetic(
            {.dims = dims, .nnz = nnz, .seed = seed, .zipf_exponent = 0.5})),
        dense(DenseTensor::from_coo(coo)),
        rank(rank_) {
    Rng rng(seed + 1);
    for (const idx_t d : dims) {
      factors.push_back(la::Matrix::random(d, rank, rng));
    }
  }

  la::Matrix oracle(int mode) const {
    la::Matrix out(coo.dim(mode), rank);
    dense.mttkrp(mode, factors, out);
    return out;
  }
};

// ------------------------------------------------------------ parse/misc

TEST(RowAccessParse, RoundTrips) {
  for (const auto ra :
       {RowAccess::kSlice, RowAccess::kIndex2D, RowAccess::kPointer}) {
    EXPECT_EQ(parse_row_access(row_access_name(ra)), ra);
  }
  EXPECT_EQ(parse_row_access("index2d"), RowAccess::kIndex2D);
  EXPECT_THROW(parse_row_access("bogus"), Error);
}

TEST(SyncStrategyNames, AreStable) {
  EXPECT_STREQ(sync_strategy_name(SyncStrategy::kNone), "none");
  EXPECT_STREQ(sync_strategy_name(SyncStrategy::kLock), "lock");
  EXPECT_STREQ(sync_strategy_name(SyncStrategy::kPrivatize), "privatize");
}

// -------------------------------------------- privatization heuristic

TEST(ChooseSync, RootLevelNeverSynchronizes) {
  MttkrpOptions opts;
  opts.nthreads = 32;
  EXPECT_EQ(choose_sync_strategy({100, 100, 100}, 0, /*level=*/0, 1000, opts),
            SyncStrategy::kNone);
}

TEST(ChooseSync, SingleThreadNeverSynchronizes) {
  MttkrpOptions opts;
  opts.nthreads = 1;
  EXPECT_EQ(choose_sync_strategy({100, 100, 100}, 1, /*level=*/1, 1000, opts),
            SyncStrategy::kNone);
}

TEST(ChooseSync, YelpShapeLocksBeyondTwoThreads) {
  // The paper's YELP behaviour (Section V-D2): privatized at <= 2 threads,
  // locks beyond. Mode 0 (41k) is the non-root mode of the TwoMode set.
  const dims_t yelp = {41000, 11000, 75000};
  const nnz_t nnz = 8000000;
  MttkrpOptions opts;
  opts.nthreads = 2;
  EXPECT_EQ(choose_sync_strategy(yelp, 0, 1, nnz, opts),
            SyncStrategy::kPrivatize);
  opts.nthreads = 4;
  EXPECT_EQ(choose_sync_strategy(yelp, 0, 1, nnz, opts),
            SyncStrategy::kLock);
  opts.nthreads = 32;
  EXPECT_EQ(choose_sync_strategy(yelp, 0, 1, nnz, opts),
            SyncStrategy::kLock);
}

TEST(ChooseSync, Nell2ShapeNeverLocks) {
  // NELL-2 privatizes at every thread count the paper tested (1-32).
  const dims_t nell2 = {12000, 9000, 29000};
  const nnz_t nnz = 77000000;
  MttkrpOptions opts;
  for (const int t : {2, 4, 8, 16, 32}) {
    opts.nthreads = t;
    EXPECT_EQ(choose_sync_strategy(nell2, 0, 1, nnz, opts),
              SyncStrategy::kPrivatize)
        << t << " threads";
  }
}

TEST(ChooseSync, ForceLocksOverridesPrivatization) {
  MttkrpOptions opts;
  opts.nthreads = 4;
  opts.force_locks = true;
  EXPECT_EQ(choose_sync_strategy({10, 10, 10}, 0, 1, 1000000, opts),
            SyncStrategy::kLock);
}

TEST(ChooseSync, DisallowedPrivatizationFallsBackToLocks) {
  MttkrpOptions opts;
  opts.nthreads = 4;
  opts.allow_privatization = false;
  EXPECT_EQ(choose_sync_strategy({10, 10, 10}, 0, 1, 1000000, opts),
            SyncStrategy::kLock);
}

// --------------------------------------------------------- COO baseline

class CooMttkrpTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(CooMttkrpTest, MatchesDenseOracle) {
  const auto [mode, nthreads] = GetParam();
  const Fixture fx({12, 9, 14}, 300, 7, 200);
  la::Matrix out(fx.coo.dim(mode), fx.rank);
  MttkrpOptions opts;
  opts.nthreads = nthreads;
  mttkrp_coo(fx.coo, fx.factors, mode, out, opts);
  EXPECT_LT(out.max_abs_diff(fx.oracle(mode)), kTol);
}

INSTANTIATE_TEST_SUITE_P(ModesThreads, CooMttkrpTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 4)));

// --------------------------------------------------- CSF kernel sweep

struct CsfCase {
  int root;        ///< which mode roots the CSF (fixes the kernel level)
  int out_mode;    ///< MTTKRP output mode
  RowAccess ra;
  int nthreads;
  bool force_locks;
  LockKind lock;
};

std::string case_name(const ::testing::TestParamInfo<CsfCase>& info) {
  const CsfCase& c = info.param;
  std::string n = "root" + std::to_string(c.root) + "_out" +
                  std::to_string(c.out_mode) + "_" +
                  row_access_name(c.ra) + "_t" + std::to_string(c.nthreads) +
                  (c.force_locks ? "_lock_" : "_auto_") +
                  lock_kind_name(c.lock);
  for (auto& ch : n) {
    if (ch == '-') ch = '_';
  }
  return n;
}

class CsfMttkrpTest : public ::testing::TestWithParam<CsfCase> {};

TEST_P(CsfMttkrpTest, MatchesDenseOracle) {
  const CsfCase& c = GetParam();
  Fixture fx({13, 9, 11}, 350, 6, 300);

  const auto mode_order = csf_mode_order(fx.coo.dims(), c.root);
  SparseTensor sorted = fx.coo;
  sort_tensor_perm(sorted, mode_order, 2);
  const CsfTensor csf(sorted, mode_order);

  MttkrpOptions opts;
  opts.nthreads = c.nthreads;
  opts.row_access = c.ra;
  opts.force_locks = c.force_locks;
  opts.lock_kind = c.lock;
  MttkrpWorkspace ws(opts, fx.rank, 3);

  la::Matrix out(fx.coo.dim(c.out_mode), fx.rank);
  mttkrp_csf(csf, fx.factors, c.out_mode, out, ws);
  EXPECT_LT(out.max_abs_diff(fx.oracle(c.out_mode)), kTol)
      << "strategy " << sync_strategy_name(ws.last_strategy);
}

std::vector<CsfCase> csf_cases() {
  std::vector<CsfCase> cases;
  for (int root = 0; root < 3; ++root) {
    for (int out_mode = 0; out_mode < 3; ++out_mode) {
      for (const auto ra :
           {RowAccess::kSlice, RowAccess::kIndex2D, RowAccess::kPointer}) {
        // 1-thread direct + 4-thread auto (privatize) + 4-thread locked.
        cases.push_back({root, out_mode, ra, 1, false, LockKind::kOmp});
        cases.push_back({root, out_mode, ra, 4, false, LockKind::kOmp});
        cases.push_back({root, out_mode, ra, 4, true, LockKind::kAtomic});
      }
    }
  }
  // Lock-kind coverage on a conflicting (non-root) kernel.
  for (const auto lk : {LockKind::kSync, LockKind::kFifoSync}) {
    cases.push_back({0, 2, RowAccess::kPointer, 4, true, lk});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(KernelSweep, CsfMttkrpTest,
                         ::testing::ValuesIn(csf_cases()), case_name);

// ------------------------------------------------- higher-order kernels

class HigherOrderTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HigherOrderTest, MatchesDenseOracle) {
  const auto [order, out_mode, nthreads] = GetParam();
  dims_t dims;
  std::uint64_t volume = 1;
  for (int m = 0; m < order; ++m) {
    dims.push_back(static_cast<idx_t>(8 + 2 * m));
    volume *= dims.back();
  }
  const nnz_t nnz = std::min<nnz_t>(200, volume / 4);
  Fixture fx(dims, nnz, 4, 400 + static_cast<std::uint64_t>(order));
  const int mode = out_mode % order;

  // Root the CSF at a mode that puts the output mode at an internal level
  // when possible (root at (mode+1) % order).
  const auto mode_order = csf_mode_order(dims, (mode + 1) % order);
  SparseTensor sorted = fx.coo;
  sort_tensor_perm(sorted, mode_order, 1);
  const CsfTensor csf(sorted, mode_order);

  MttkrpOptions opts;
  opts.nthreads = nthreads;
  MttkrpWorkspace ws(opts, fx.rank, order);
  la::Matrix out(fx.coo.dim(mode), fx.rank);
  mttkrp_csf(csf, fx.factors, mode, out, ws);
  EXPECT_LT(out.max_abs_diff(fx.oracle(mode)), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    OrdersModes, HigherOrderTest,
    ::testing::Combine(::testing::Values(2, 4, 5, 6),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(1, 4)));

// ------------------------------------------------------------- CsfSet

class CsfSetMttkrpTest
    : public ::testing::TestWithParam<std::tuple<CsfPolicy, int>> {};

TEST_P(CsfSetMttkrpTest, EveryModeMatchesOracle) {
  const auto [policy, nthreads] = GetParam();
  Fixture fx({16, 8, 12}, 400, 5, 500);
  SparseTensor work = fx.coo;
  const CsfSet set(work, policy, nthreads);

  MttkrpOptions opts;
  opts.nthreads = nthreads;
  MttkrpWorkspace ws(opts, fx.rank, 3);
  for (int mode = 0; mode < 3; ++mode) {
    la::Matrix out(fx.coo.dim(mode), fx.rank);
    mttkrp(set, fx.factors, mode, out, ws);
    EXPECT_LT(out.max_abs_diff(fx.oracle(mode)), kTol)
        << "policy " << csf_policy_name(policy) << " mode " << mode;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesThreads, CsfSetMttkrpTest,
    ::testing::Combine(::testing::Values(CsfPolicy::kOneMode,
                                         CsfPolicy::kTwoMode,
                                         CsfPolicy::kAllMode),
                       ::testing::Values(1, 4)));

// --------------------------------------------------------- workspace

TEST(Workspace, ReusedAcrossModesAndSizes) {
  Fixture fx({30, 6, 18}, 500, 4, 600);
  SparseTensor work = fx.coo;
  const CsfSet set(work, CsfPolicy::kOneMode, 2);
  MttkrpOptions opts;
  opts.nthreads = 2;
  // Force the privatized path for non-root modes: generous threshold.
  opts.privatization_threshold = 1e9;
  MttkrpWorkspace ws(opts, fx.rank, 3);
  // Run modes in both directions so the privatized buffer shrinks and
  // grows; results must stay correct.
  for (const int mode : {0, 1, 2, 2, 1, 0}) {
    la::Matrix out(fx.coo.dim(mode), fx.rank);
    mttkrp(set, fx.factors, mode, out, ws);
    EXPECT_LT(out.max_abs_diff(fx.oracle(mode)), kTol) << "mode " << mode;
  }
}

TEST(Workspace, LastStrategyReportsDecision) {
  Fixture fx({10, 11, 12}, 300, 4, 700);
  SparseTensor work = fx.coo;
  const CsfSet set(work, CsfPolicy::kOneMode, 4);
  MttkrpOptions opts;
  opts.nthreads = 4;
  opts.force_locks = true;
  MttkrpWorkspace ws(opts, fx.rank, 3);
  // Mode 2 (largest) sits at the leaf of the smallest-root OneMode rep.
  la::Matrix out(fx.coo.dim(2), fx.rank);
  int level = 0;
  const CsfTensor& csf = set.csf_for_mode(2, level);
  ASSERT_GT(level, 0);
  mttkrp_csf(csf, fx.factors, 2, out, ws);
  EXPECT_EQ(ws.last_strategy, SyncStrategy::kLock);
}

TEST(Mttkrp, RejectsWrongShapes) {
  Fixture fx({8, 8, 8}, 100, 3, 800);
  SparseTensor work = fx.coo;
  const CsfSet set(work, CsfPolicy::kOneMode, 1);
  MttkrpOptions opts;
  MttkrpWorkspace ws(opts, fx.rank, 3);
  la::Matrix bad_rows(7, fx.rank);
  EXPECT_THROW(mttkrp(set, fx.factors, 0, bad_rows, ws), Error);
  la::Matrix bad_cols(8, fx.rank + 1);
  EXPECT_THROW(mttkrp(set, fx.factors, 0, bad_cols, ws), Error);
}

class CsfTiledLeafTest
    : public ::testing::TestWithParam<std::tuple<RowAccess, int>> {};

TEST_P(CsfTiledLeafTest, MatchesDenseOracle) {
  const auto [ra, nthreads] = GetParam();
  Fixture fx({13, 9, 24}, 400, 6, 1000);

  // Root the CSF so the largest mode sits at the leaf.
  const auto mode_order = csf_mode_order(fx.coo.dims(), -1);
  const int leaf_mode = mode_order.back();
  SparseTensor sorted = fx.coo;
  sort_tensor_perm(sorted, mode_order, 2);
  const CsfTensor csf(sorted, mode_order);
  ASSERT_EQ(csf.level_of_mode(leaf_mode), 2);

  MttkrpOptions opts;
  opts.nthreads = nthreads;
  opts.row_access = ra;
  opts.use_tiling = true;
  MttkrpWorkspace ws(opts, fx.rank, 3);
  la::Matrix out(fx.coo.dim(leaf_mode), fx.rank);
  mttkrp_csf(csf, fx.factors, leaf_mode, out, ws);
  if (nthreads > 1) {
    EXPECT_EQ(ws.last_strategy, SyncStrategy::kTile);
  }
  EXPECT_LT(out.max_abs_diff(fx.oracle(leaf_mode)), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesThreads, CsfTiledLeafTest,
    ::testing::Combine(::testing::Values(RowAccess::kPointer,
                                         RowAccess::kSlice),
                       ::testing::Values(1, 2, 4, 16)));

TEST(CsfTiledLeaf, TilingIgnoredOnInternalLevels) {
  Fixture fx({10, 14, 12}, 300, 4, 1100);
  SparseTensor sorted = fx.coo;
  // Root at mode 2 puts mode 1 at an internal level.
  const auto mode_order = csf_mode_order(fx.coo.dims(), 2);
  sort_tensor_perm(sorted, mode_order, 1);
  const CsfTensor csf(sorted, mode_order);
  const int internal_mode = csf.mode_at_level(1);

  MttkrpOptions opts;
  opts.nthreads = 4;
  opts.use_tiling = true;
  MttkrpWorkspace ws(opts, fx.rank, 3);
  la::Matrix out(fx.coo.dim(internal_mode), fx.rank);
  mttkrp_csf(csf, fx.factors, internal_mode, out, ws);
  EXPECT_NE(ws.last_strategy, SyncStrategy::kTile);
  EXPECT_LT(out.max_abs_diff(fx.oracle(internal_mode)), kTol);
}

TEST(CsfTiledLeaf, HigherOrderTensor) {
  Fixture fx({8, 7, 9, 11}, 250, 4, 1200);
  const auto mode_order = csf_mode_order(fx.coo.dims(), -1);
  const int leaf_mode = mode_order.back();
  SparseTensor sorted = fx.coo;
  sort_tensor_perm(sorted, mode_order, 1);
  const CsfTensor csf(sorted, mode_order);

  MttkrpOptions opts;
  opts.nthreads = 3;
  opts.use_tiling = true;
  MttkrpWorkspace ws(opts, fx.rank, 4);
  la::Matrix out(fx.coo.dim(leaf_mode), fx.rank);
  mttkrp_csf(csf, fx.factors, leaf_mode, out, ws);
  EXPECT_EQ(ws.last_strategy, SyncStrategy::kTile);
  EXPECT_LT(out.max_abs_diff(fx.oracle(leaf_mode)), kTol);
}

// ------------------------------------------------------- work stealing

/// Runs a mode-\p mode MTTKRP over \p csf through the pure-execution
/// entry point with an explicit schedule policy.
la::Matrix run_scheduled_exec(const CsfTensor& csf,
                              const std::vector<la::Matrix>& factors,
                              int mode, idx_t rank, SchedulePolicy policy,
                              SyncStrategy strategy, int nthreads) {
  MttkrpOptions opts;
  opts.nthreads = nthreads;
  opts.schedule = policy;
  MttkrpWorkspace ws(opts, rank, csf.order());
  const int level = csf.level_of_mode(mode);
  const SliceSchedule slices(policy, csf.nfibers(0), csf.root_nnz_prefix(),
                             nthreads);
  std::vector<nnz_t> tiles;
  if (strategy == SyncStrategy::kTile) {
    tiles = leaf_tile_bounds(csf, nthreads);
  }
  la::Matrix out(csf.dims()[static_cast<std::size_t>(mode)], rank);
  mttkrp_csf_exec(csf, factors, mode, level, strategy, slices, tiles,
                  selected_kernel_width(rank, opts), out, ws);
  return out;
}

TEST(WorkStealingMttkrp, MatchesEveryOtherScheduleEverywhere) {
  // The equivalence suite: workstealing vs static/weighted/dynamic across
  // roots x output modes x sync strategies x thread counts, within 1e-12.
  // A skewed fixture so the weighted seed and the chunk subdivision are
  // both non-trivial.
  const Fixture fx({13, 9, 11}, 350, 6, 300);

  for (int root = 0; root < 3; ++root) {
    const auto mode_order = csf_mode_order(fx.coo.dims(), root);
    SparseTensor sorted = fx.coo;
    sort_tensor_perm(sorted, mode_order, 2);
    const CsfTensor csf(sorted, mode_order);

    for (int mode = 0; mode < 3; ++mode) {
      const int level = csf.level_of_mode(mode);
      for (const int nthreads : {1, 2, 4}) {
        std::vector<SyncStrategy> strategies;
        if (nthreads == 1 || level == 0) {
          strategies.push_back(SyncStrategy::kNone);  // conflict-free
        }
        if (nthreads > 1 && level > 0) {
          strategies.push_back(SyncStrategy::kLock);
          strategies.push_back(SyncStrategy::kPrivatize);
          if (level == csf.order() - 1) {
            strategies.push_back(SyncStrategy::kTile);
          }
        }
        for (const SyncStrategy strategy : strategies) {
          const la::Matrix ws_out = run_scheduled_exec(
              csf, fx.factors, mode, fx.rank,
              SchedulePolicy::kWorkStealing, strategy, nthreads);
          for (const SchedulePolicy ref :
               {SchedulePolicy::kStatic, SchedulePolicy::kWeighted,
                SchedulePolicy::kDynamic}) {
            const la::Matrix ref_out = run_scheduled_exec(
                csf, fx.factors, mode, fx.rank, ref, strategy, nthreads);
            EXPECT_LT(ws_out.max_abs_diff(ref_out), 1e-12)
                << "root " << root << " mode " << mode << " vs "
                << schedule_policy_name(ref) << " strategy "
                << sync_strategy_name(strategy) << " threads " << nthreads;
          }
        }
      }
    }
  }
}

TEST(WorkStealingMttkrp, SkewedFixtureStealsAndMatchesStatic) {
  // A hypersparse-style skew (zipf 1.2 concentrates nonzeros in few
  // slices). The schedule is sized for a 2-worker team but driven by a
  // 1-worker region — the limiting case of imbalance, where the second
  // worker never arrives — so the lone thread must steal deterministically
  // on any box, and the output must still match the static schedule.
  SparseTensor coo = generate_synthetic(
      {.dims = {40, 20, 25}, .nnz = 3000, .seed = 41, .zipf_exponent = 1.2});
  const idx_t rank = 5;
  Rng rng(77);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < coo.order(); ++m) {
    factors.push_back(la::Matrix::random(coo.dim(m), rank, rng));
  }
  const auto mode_order = csf_mode_order(coo.dims(), 0);
  SparseTensor sorted = coo;
  sort_tensor_perm(sorted, mode_order, 2);
  const CsfTensor csf(sorted, mode_order);
  const int mode = csf.mode_at_level(0);

  MttkrpOptions opts;  // nthreads = 1: only worker 0 shows up
  const SliceSchedule slices(SchedulePolicy::kWorkStealing, csf.nfibers(0),
                             csf.root_nnz_prefix(), /*nthreads=*/2);
  MttkrpWorkspace ws(opts, rank, 3);
  la::Matrix out(coo.dim(mode), rank);
  const std::uint64_t steals_before = slices.steals();
  mttkrp_csf_exec(csf, factors, mode, 0, SyncStrategy::kNone, slices, {},
                  selected_kernel_width(rank, opts), out, ws);
  EXPECT_GT(slices.steals(), steals_before) << "no steal under imbalance";

  MttkrpOptions sopts;
  sopts.schedule = SchedulePolicy::kStatic;
  MttkrpWorkspace sws(sopts, rank, 3);
  const SliceSchedule static_slices(SchedulePolicy::kStatic,
                                    csf.nfibers(0), {}, 1);
  la::Matrix expected(coo.dim(mode), rank);
  mttkrp_csf_exec(csf, factors, mode, 0, SyncStrategy::kNone, static_slices,
                  {}, selected_kernel_width(rank, sopts), expected, sws);
  EXPECT_LT(out.max_abs_diff(expected), 1e-12);
}

TEST(WorkStealingMttkrp, CachedPlanSecondIterationVisitsAllSlices) {
  // Regression for the reset()/deque-reseed contract: a cached plan's
  // *second* execute must cover every slice again. If reset() failed to
  // reseed, the second pass would claim nothing and return a zero (or
  // partial) output.
  Fixture fx({16, 8, 12}, 400, 5, 500);
  SparseTensor work = fx.coo;
  const CsfSet set(work, CsfPolicy::kTwoMode, 4);
  MttkrpOptions opts;
  opts.nthreads = 4;
  opts.schedule = SchedulePolicy::kWorkStealing;
  MttkrpPlan plan(set, fx.rank, opts);
  for (int mode = 0; mode < 3; ++mode) {
    const la::Matrix expected = fx.oracle(mode);
    la::Matrix out(fx.coo.dim(mode), fx.rank);
    for (int iteration = 0; iteration < 3; ++iteration) {
      plan.execute(fx.factors, mode, out);
      EXPECT_LT(out.max_abs_diff(expected), kTol)
          << "mode " << mode << " iteration " << iteration;
    }
  }
}

TEST(Mttkrp, PoliciesProduceBitwiseIdenticalResults) {
  // The three row-access policies perform the same arithmetic in the same
  // order; single-threaded results must be bitwise identical.
  Fixture fx({14, 10, 12}, 350, 6, 900);
  SparseTensor work = fx.coo;
  const CsfSet set(work, CsfPolicy::kTwoMode, 1);
  std::vector<la::Matrix> results;
  for (const auto ra :
       {RowAccess::kPointer, RowAccess::kIndex2D, RowAccess::kSlice}) {
    MttkrpOptions opts;
    opts.nthreads = 1;
    opts.row_access = ra;
    MttkrpWorkspace ws(opts, fx.rank, 3);
    la::Matrix out(fx.coo.dim(1), fx.rank);
    mttkrp(set, fx.factors, 1, out, ws);
    results.push_back(std::move(out));
  }
  EXPECT_EQ(results[0].max_abs_diff(results[1]), 0.0);
  EXPECT_EQ(results[0].max_abs_diff(results[2]), 0.0);
}

}  // namespace
}  // namespace sptd
