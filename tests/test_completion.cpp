// Tests for src/completion: tensor completion with missing values (the
// ALS default path of the solver subsystem; cross-solver coverage lives
// in test_completion_solvers.cpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "completion/completion.hpp"
#include "cpd/cpals.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

// ------------------------------------------------------------------ rmse

TEST(Rmse, ZeroForPerfectModel) {
  Rng rng(1);
  KruskalModel model;
  model.lambda = {1.0, 1.0};
  model.factors.push_back(la::Matrix::random(6, 2, rng));
  model.factors.push_back(la::Matrix::random(7, 2, rng));
  SparseTensor x({6, 7});
  for (idx_t i = 0; i < 6; ++i) {
    for (idx_t j = 0; j < 7; j += 2) {
      const idx_t c[] = {i, j};
      x.push_back(c, model.value_at(c));
    }
  }
  EXPECT_NEAR(rmse(x, model, 2), 0.0, 1e-12);
}

TEST(Rmse, KnownErrorValue) {
  KruskalModel model;
  model.lambda = {1.0};
  model.factors.emplace_back(2, 1, 1.0);
  model.factors.emplace_back(2, 1, 1.0);
  // Model predicts 1.0 everywhere; observations are 1 and 4 -> errors 0,3.
  SparseTensor x({2, 2});
  const idx_t c0[] = {0, 0};
  const idx_t c1[] = {1, 1};
  x.push_back(c0, 1.0);
  x.push_back(c1, 4.0);
  EXPECT_NEAR(rmse(x, model, 1), std::sqrt((0.0 + 9.0) / 2.0), 1e-12);
}

TEST(Rmse, EmptySetIsZero) {
  KruskalModel model;
  model.lambda = {1.0};
  model.factors.emplace_back(2, 1, 1.0);
  model.factors.emplace_back(2, 1, 1.0);
  SparseTensor empty({2, 2});
  EXPECT_EQ(rmse(empty, model, 1), 0.0);
}

// ----------------------------------------------------------------- split

TEST(Split, PartitionsAllNonzeros) {
  const SparseTensor t = generate_synthetic(
      {.dims = {40, 40, 40}, .nnz = 5000, .seed = 3000});
  const auto [train, test] = split_train_test(t, 0.2, 9);
  EXPECT_EQ(train.nnz() + test.nnz(), t.nnz());
  EXPECT_EQ(train.dims(), t.dims());
  EXPECT_EQ(test.dims(), t.dims());
  // Roughly the requested fraction held out.
  EXPECT_NEAR(static_cast<double>(test.nnz()) / t.nnz(), 0.2, 0.05);
}

TEST(Split, DeterministicInSeed) {
  const SparseTensor t = generate_synthetic(
      {.dims = {30, 30, 30}, .nnz = 1000, .seed = 3001});
  const auto [train_a, test_a] = split_train_test(t, 0.3, 7);
  const auto [train_b, test_b] = split_train_test(t, 0.3, 7);
  EXPECT_EQ(train_a.nnz(), train_b.nnz());
  for (nnz_t x = 0; x < test_a.nnz(); ++x) {
    EXPECT_EQ(test_a.coord(x), test_b.coord(x));
  }
}

TEST(Split, InvalidFractionThrows) {
  const SparseTensor t = generate_synthetic(
      {.dims = {10, 10}, .nnz = 20, .seed = 3002});
  EXPECT_THROW(split_train_test(t, 0.0, 1), Error);
  EXPECT_THROW(split_train_test(t, 1.0, 1), Error);
}

TEST(Split, EveryNonemptySliceKeepsATrainingEntry) {
  // Adversarial fixture: a pure diagonal — every slice of every mode has
  // exactly ONE nonzero — plus a dense corner block so the holdout side
  // stays nonempty. At 90% holdout an unrepaired split would orphan most
  // diagonal slices, leaving their factor rows determined purely by
  // regularization.
  SparseTensor t({24, 24, 24});
  for (idx_t i = 4; i < 24; ++i) {
    const idx_t c[] = {i, i, i};
    t.push_back(c, 1.0 + 0.1 * static_cast<double>(i));
  }
  for (idx_t i = 0; i < 4; ++i) {
    for (idx_t j = 0; j < 4; ++j) {
      for (idx_t k = 0; k < 4; ++k) {
        const idx_t c[] = {i, j, k};
        t.push_back(c, 2.0);
      }
    }
  }
  const auto [train, test] = split_train_test(t, 0.9, 5);
  EXPECT_EQ(train.nnz() + test.nnz(), t.nnz());
  EXPECT_GT(test.nnz(), 0u);
  for (int m = 0; m < t.order(); ++m) {
    std::vector<nnz_t> total(t.dim(m), 0);
    std::vector<nnz_t> in_train(t.dim(m), 0);
    for (nnz_t x = 0; x < t.nnz(); ++x) {
      ++total[t.ind(m)[x]];
    }
    for (nnz_t x = 0; x < train.nnz(); ++x) {
      ++in_train[train.ind(m)[x]];
    }
    for (idx_t i = 0; i < t.dim(m); ++i) {
      if (total[i] > 0) {
        EXPECT_GE(in_train[i], 1u) << "mode " << m << " slice " << i;
      }
    }
  }
}

// ------------------------------------------------------------ completion

TEST(Completion, RecoversHeldOutEntriesOfLowRankTensor) {
  // The central property: fitting only 80% of a low-rank tensor's entries
  // must predict the held-out 20% accurately — this is what CP-ALS on the
  // zero-filled tensor cannot do.
  const SparseTensor full =
      generate_low_rank({25, 20, 15}, 3, 3000, 0.0, 3003);
  const auto [train, test] = split_train_test(full, 0.2, 11);

  CompletionOptions opts;
  opts.rank = 3;
  opts.max_iterations = 25;
  opts.regularization = 1e-3;
  opts.tolerance = 0.0;
  opts.nthreads = 2;
  const CompletionResult r = complete_tensor(train, &test, opts);

  ASSERT_FALSE(r.train_rmse.empty());
  ASSERT_FALSE(r.val_rmse.empty());
  // Values are O(1); recovering the held-out set to <5% of that scale
  // demonstrates real completion.
  EXPECT_LT(r.train_rmse.back(), 0.02);
  EXPECT_LT(r.val_rmse.back(), 0.05);
}

TEST(Completion, TrainRmseDecreases) {
  const SparseTensor full =
      generate_low_rank({20, 20, 20}, 2, 2500, 0.05, 3004);
  const auto [train, test] = split_train_test(full, 0.25, 13);
  CompletionOptions opts;
  opts.rank = 4;
  opts.max_iterations = 10;
  opts.tolerance = 0.0;
  const CompletionResult r = complete_tensor(train, nullptr, opts);
  ASSERT_EQ(r.train_rmse.size(), 10u);
  EXPECT_LT(r.train_rmse.back(), r.train_rmse.front());
}

TEST(Completion, EarlyStoppingOnValidation) {
  const SparseTensor full =
      generate_low_rank({18, 18, 18}, 2, 2000, 0.2, 3005);
  const auto [train, test] = split_train_test(full, 0.3, 17);
  CompletionOptions opts;
  opts.rank = 6;  // overfit-prone: validation should stop early
  opts.max_iterations = 200;
  opts.tolerance = 1e-4;
  const CompletionResult r = complete_tensor(train, &test, opts);
  EXPECT_LT(r.iterations, 200);
}

TEST(Completion, ReturnsBestValidationModelNotLast) {
  // Overfit-prone setup with early stopping disabled: training runs past
  // the validation minimum, so the last iteration's factors are strictly
  // worse on the holdout than the best iteration's. The result must carry
  // the best-iteration factors (SPLATT's best-model behavior), and
  // best_iteration must point at the argmin of val_rmse.
  const SparseTensor full =
      generate_low_rank({18, 18, 18}, 2, 1800, 0.25, 3105);
  const auto [train, test] = split_train_test(full, 0.3, 21);
  CompletionOptions opts;
  opts.rank = 8;
  opts.max_iterations = 60;
  opts.regularization = 1e-4;
  opts.tolerance = 0.0;  // no early stop: force the run past the minimum
  opts.nthreads = 2;
  const CompletionResult r = complete_tensor(train, &test, opts);
  ASSERT_EQ(r.val_rmse.size(), static_cast<std::size_t>(r.iterations));

  const auto best_it = std::min_element(r.val_rmse.begin(), r.val_rmse.end());
  const int argmin = static_cast<int>(best_it - r.val_rmse.begin()) + 1;
  EXPECT_EQ(r.best_iteration, argmin);
  // The fixture must actually regress (otherwise it proves nothing).
  ASSERT_LT(r.best_iteration, r.iterations);
  ASSERT_GT(r.val_rmse.back(), *best_it);
  // The returned factors score exactly the recorded best, not the last.
  EXPECT_NEAR(rmse(test, r.model, opts.nthreads), *best_it, 1e-12);
}

TEST(Completion, EmptyHoldoutFromSliceAwareSplitIsHandled) {
  // A strictly diagonal tensor: every slice of every mode has exactly one
  // nonzero, so the slice-aware repair returns EVERY held-out entry to
  // the train side and the holdout comes back empty at any fraction.
  // complete_tensor must treat that like "no validation": empty val_rmse,
  // best_iteration = last, no crash.
  SparseTensor t({16, 16, 16});
  for (idx_t i = 0; i < 16; ++i) {
    const idx_t c[] = {i, i, i};
    t.push_back(c, 1.0 + 0.25 * static_cast<double>(i));
  }
  const auto [train, test] = split_train_test(t, 0.9, 3);
  EXPECT_EQ(train.nnz(), t.nnz());
  EXPECT_EQ(test.nnz(), 0u);
  CompletionOptions opts;
  opts.rank = 2;
  opts.max_iterations = 3;
  const CompletionResult r = complete_tensor(train, &test, opts);
  EXPECT_TRUE(r.val_rmse.empty());
  EXPECT_EQ(r.best_iteration, r.iterations);
  EXPECT_EQ(r.train_rmse.size(), 3u);
}

TEST(Completion, BestIterationIsLastWithoutValidation) {
  const SparseTensor full =
      generate_low_rank({12, 12, 12}, 2, 800, 0.0, 3106);
  CompletionOptions opts;
  opts.rank = 2;
  opts.max_iterations = 5;
  opts.tolerance = 0.0;
  const CompletionResult r = complete_tensor(full, nullptr, opts);
  EXPECT_EQ(r.best_iteration, r.iterations);
}

TEST(Completion, DeterministicInSeed) {
  const SparseTensor full =
      generate_low_rank({15, 15, 15}, 2, 1200, 0.0, 3006);
  const auto [train, test] = split_train_test(full, 0.2, 19);
  CompletionOptions opts;
  opts.rank = 2;
  opts.max_iterations = 5;
  opts.tolerance = 0.0;
  const CompletionResult a = complete_tensor(train, nullptr, opts);
  const CompletionResult b = complete_tensor(train, nullptr, opts);
  ASSERT_EQ(a.train_rmse.size(), b.train_rmse.size());
  for (std::size_t i = 0; i < a.train_rmse.size(); ++i) {
    EXPECT_EQ(a.train_rmse[i], b.train_rmse[i]);
  }
}

TEST(Completion, ThreadCountDoesNotChangeResultMuch) {
  const SparseTensor full =
      generate_low_rank({20, 16, 12}, 2, 1500, 0.0, 3007);
  const auto [train, test] = split_train_test(full, 0.2, 23);
  CompletionOptions opts;
  opts.rank = 2;
  opts.max_iterations = 8;
  opts.tolerance = 0.0;
  opts.nthreads = 1;
  const CompletionResult serial = complete_tensor(train, nullptr, opts);
  opts.nthreads = 4;
  const CompletionResult parallel = complete_tensor(train, nullptr, opts);
  EXPECT_NEAR(serial.train_rmse.back(), parallel.train_rmse.back(), 1e-8);
}

TEST(Completion, UnobservedRowsKeepFiniteValues) {
  // A tensor where several slices have no observations at all.
  SparseTensor train({10, 10, 10});
  Rng rng(29);
  for (int k = 0; k < 50; ++k) {
    const idx_t c[] = {rng.next_index(5), rng.next_index(5),
                       rng.next_index(5)};  // only the first half of rows
    train.push_back(c, 1.0 + rng.next_double());
  }
  CompletionOptions opts;
  opts.rank = 2;
  opts.max_iterations = 5;
  const CompletionResult r = complete_tensor(train, nullptr, opts);
  for (const auto& f : r.model.factors) {
    for (const val_t v : f.values()) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(Completion, RejectsBadInputs) {
  SparseTensor empty({5, 5});
  CompletionOptions opts;
  EXPECT_THROW(complete_tensor(empty, nullptr, opts), Error);

  SparseTensor ok({5, 5});
  const idx_t c[] = {0, 0};
  ok.push_back(c, 1.0);
  opts.rank = 0;
  EXPECT_THROW(complete_tensor(ok, nullptr, opts), Error);
  opts.rank = 2;
  opts.max_iterations = 0;
  EXPECT_THROW(complete_tensor(ok, nullptr, opts), Error);
}

// --------------------------------------------------------- nonnegative CP

TEST(NonnegativeCp, FactorsAreNonnegative) {
  SparseTensor x = generate_synthetic(
      {.dims = {30, 25, 20}, .nnz = 3000, .seed = 3008});
  CpalsOptions opts;
  opts.rank = 5;
  opts.max_iterations = 8;
  opts.tolerance = 0.0;
  opts.nonnegative = true;
  opts.nthreads = 2;
  const CpalsResult r = cp_als(x, opts);
  for (const auto& f : r.model.factors) {
    for (const val_t v : f.values()) {
      EXPECT_GE(v, 0.0);
    }
  }
  EXPECT_TRUE(std::isfinite(r.fit_history.back()));
}

TEST(NonnegativeCp, FitsNonnegativeLowRankData) {
  // U[0,1) factors generate strictly non-negative data, so the projection
  // should not prevent a good fit.
  SparseTensor x = generate_full_low_rank({14, 12, 10}, 3, 0.0, 3009);
  CpalsOptions opts;
  opts.rank = 5;
  opts.max_iterations = 60;
  opts.tolerance = 0.0;
  opts.nonnegative = true;
  const CpalsResult r = cp_als(x, opts);
  EXPECT_GT(r.fit_history.back(), 0.98);
}

}  // namespace
}  // namespace sptd
