// Tests for src/parallel: team, partitioning, prefix sums, locks,
// privatized buffers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "parallel/locks.hpp"
#include "parallel/partition.hpp"
#include "parallel/reduce.hpp"
#include "parallel/team.hpp"

namespace sptd {
namespace {

// ------------------------------------------------------------------ team

TEST(Team, HardwareThreadsAppliesWaitPolicyFirst) {
  // hardware_threads() queries OpenMP, which latches OMP_WAIT_POLICY at
  // runtime initialization — so it must run init_parallel_runtime()
  // (which installs "passive") first. This is the paper's Section V-E
  // idle-interference mitigation; before the ordering fix, every CLI
  // path that sized its team from hardware_threads() silently lost it.
  if (std::getenv("OMP_WAIT_POLICY") != nullptr &&
      std::string(std::getenv("OMP_WAIT_POLICY")) != "passive") {
    GTEST_SKIP() << "user-set OMP_WAIT_POLICY wins by design";
  }
  EXPECT_GE(hardware_threads(), 1);
  const char* policy = std::getenv("OMP_WAIT_POLICY");
  ASSERT_NE(policy, nullptr);
  EXPECT_STREQ(policy, "passive");
}

TEST(Team, SingleThreadRunsInline) {
  int calls = 0;
  parallel_region(1, [&](int tid, int nt) {
    EXPECT_EQ(tid, 0);
    EXPECT_EQ(nt, 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Team, EveryTidAppearsExactlyOnce) {
  init_parallel_runtime();
  constexpr int kThreads = 8;
  std::vector<std::atomic<int>> hits(kThreads);
  parallel_region(kThreads, [&](int tid, int nt) {
    ASSERT_EQ(nt, kThreads);
    ASSERT_GE(tid, 0);
    ASSERT_LT(tid, kThreads);
    hits[static_cast<std::size_t>(tid)].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(Team, RejectsZeroThreads) {
  EXPECT_THROW(parallel_region(0, [](int, int) {}), Error);
}

// ------------------------------------------------------------- partition

TEST(BlockPartition, CoversRangeDisjointly) {
  for (const nnz_t total : {0ULL, 1ULL, 7ULL, 100ULL, 1000003ULL}) {
    for (const int parts : {1, 2, 3, 7, 32}) {
      nnz_t expect_begin = 0;
      for (int p = 0; p < parts; ++p) {
        const Range r = block_partition(total, parts, p);
        EXPECT_EQ(r.begin, expect_begin);
        expect_begin = r.end;
      }
      EXPECT_EQ(expect_begin, total);
    }
  }
}

TEST(BlockPartition, SizesDifferByAtMostOne) {
  const Range r0 = block_partition(10, 3, 0);
  const Range r1 = block_partition(10, 3, 1);
  const Range r2 = block_partition(10, 3, 2);
  EXPECT_EQ(r0.size(), 4u);
  EXPECT_EQ(r1.size(), 3u);
  EXPECT_EQ(r2.size(), 3u);
}

TEST(BlockPartition, MorePartsThanItems) {
  int nonempty = 0;
  for (int p = 0; p < 8; ++p) {
    if (block_partition(3, 8, p).size() > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 3);
}

TEST(BlockPartition, InvalidArgsThrow) {
  EXPECT_THROW(block_partition(10, 0, 0), Error);
  EXPECT_THROW(block_partition(10, 2, 2), Error);
  EXPECT_THROW(block_partition(10, 2, -1), Error);
}

TEST(WeightedPartition, BoundariesMonotoneAndCover) {
  // Items with very skewed weights.
  std::vector<nnz_t> weights = {100, 1, 1, 1, 1, 1, 1, 95};
  std::vector<nnz_t> prefix(weights.size() + 1, 0);
  std::partial_sum(weights.begin(), weights.end(), prefix.begin() + 1);
  const auto bounds = weighted_partition(prefix, 4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), weights.size());
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LE(bounds[i - 1], bounds[i]);
  }
}

TEST(WeightedPartition, BalancedWeightsSplitEvenly) {
  std::vector<nnz_t> prefix(101);
  for (std::size_t i = 0; i <= 100; ++i) {
    prefix[i] = i;  // 100 items of weight 1
  }
  const auto bounds = weighted_partition(prefix, 4);
  EXPECT_EQ(bounds, (std::vector<nnz_t>{0, 25, 50, 75, 100}));
}

TEST(WeightedPartition, HandlesZeroWeightRuns) {
  // Many empty items between two heavy ones.
  std::vector<nnz_t> prefix = {0, 50, 50, 50, 50, 100};
  const auto bounds = weighted_partition(prefix, 2);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 5u);
  // Split lands between the heavy items.
  EXPECT_GE(bounds[1], 1u);
  EXPECT_LE(bounds[1], 4u);
}

TEST(WeightedPartition, SinglePartTakesAll) {
  std::vector<nnz_t> prefix = {0, 3, 9};
  const auto bounds = weighted_partition(prefix, 1);
  EXPECT_EQ(bounds, (std::vector<nnz_t>{0, 2}));
}

class PrefixSumTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(PrefixSumTest, MatchesSerialScan) {
  const auto [n, nthreads] = GetParam();
  std::vector<nnz_t> in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    in[static_cast<std::size_t>(i)] = static_cast<nnz_t>((i * 7 + 3) % 11);
  }
  std::vector<nnz_t> expected(in.size());
  nnz_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    expected[i] = acc;
    acc += in[i];
  }
  std::vector<nnz_t> out(in.size());
  parallel_prefix_sum(in, out, nthreads);
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndThreads, PrefixSumTest,
    ::testing::Combine(::testing::Values(0, 1, 100, 5000, 100000),
                       ::testing::Values(1, 2, 4, 8)));

// ----------------------------------------------------------------- locks

TEST(LockKind, ParseRoundTrips) {
  for (const auto kind : {LockKind::kSync, LockKind::kAtomic,
                          LockKind::kFifoSync, LockKind::kOmp}) {
    EXPECT_EQ(parse_lock_kind(lock_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_lock_kind("bogus"), Error);
}

class LockStressTest : public ::testing::TestWithParam<LockKind> {};

TEST_P(LockStressTest, MutualExclusionUnderContention) {
  init_parallel_runtime();
  AnyMutexPool pool(GetParam());
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  // All threads hammer the same two pool slots; the protected counters
  // must see every increment.
  long counter_a = 0;
  long counter_b = 0;
  parallel_region(kThreads, [&](int, int) {
    for (int i = 0; i < kIters; ++i) {
      pool.lock(0);
      ++counter_a;
      pool.unlock(0);
      pool.lock(1);
      ++counter_b;
      pool.unlock(1);
    }
  });
  EXPECT_EQ(counter_a, static_cast<long>(kThreads) * kIters);
  EXPECT_EQ(counter_b, static_cast<long>(kThreads) * kIters);
}

TEST_P(LockStressTest, DistinctRowsUseDistinctSlots) {
  AnyMutexPool pool(GetParam());
  // Locking different slots from the same thread must not deadlock.
  pool.lock(3);
  pool.lock(4);
  pool.unlock(4);
  pool.unlock(3);
  SUCCEED();
}

TEST_P(LockStressTest, SlotHashingWrapsPoolSize) {
  AnyMutexPool pool(GetParam());
  // Row ids that collide modulo the pool size share a lock; acquiring the
  // colliding id after releasing must succeed.
  const idx_t id = 7;
  const idx_t colliding = static_cast<idx_t>(7 + kMutexPoolSize);
  pool.lock(id);
  pool.unlock(id);
  pool.lock(colliding);
  pool.unlock(colliding);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LockStressTest,
                         ::testing::Values(LockKind::kSync, LockKind::kAtomic,
                                           LockKind::kFifoSync,
                                           LockKind::kOmp),
                         [](const auto& info) {
                           std::string n = lock_kind_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(MutexPool, SlotMaskMatchesPoolSize) {
  EXPECT_EQ(MutexPool<AtomicSpinLock>::slot(0), 0u);
  EXPECT_EQ(MutexPool<AtomicSpinLock>::slot(kMutexPoolSize), 0u);
  EXPECT_EQ(MutexPool<AtomicSpinLock>::slot(kMutexPoolSize + 5), 5u);
}

// --------------------------------------------------------------- buffers

TEST(PrivateBuffers, BuffersAreZeroInitialized) {
  PrivateBuffers pb(3, 16);
  for (int t = 0; t < 3; ++t) {
    for (const val_t v : pb.buffer(t)) {
      EXPECT_EQ(v, 0.0);
    }
  }
}

TEST(PrivateBuffers, ReduceSumsAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr nnz_t kLen = 100;
  PrivateBuffers pb(kThreads, kLen);
  for (int t = 0; t < kThreads; ++t) {
    auto buf = pb.buffer(t);
    for (nnz_t i = 0; i < kLen; ++i) {
      buf[i] = static_cast<val_t>(t + 1);
    }
  }
  std::vector<val_t> dst(kLen, 1.0);  // reduce adds into dst
  pb.reduce_into(dst, 2);
  for (const val_t v : dst) {
    EXPECT_DOUBLE_EQ(v, 1.0 + 1 + 2 + 3 + 4);
  }
}

TEST(PrivateBuffers, ReduceIntoPrefixOfBuffers) {
  PrivateBuffers pb(2, 50);
  pb.buffer(0)[0] = 2.0;
  pb.buffer(1)[0] = 3.0;
  std::vector<val_t> dst(10, 0.0);  // shorter than buffer length
  pb.reduce_into(dst, 1);
  EXPECT_DOUBLE_EQ(dst[0], 5.0);
}

TEST(PrivateBuffers, ClearZeroesEverything) {
  PrivateBuffers pb(2, 8);
  pb.buffer(0)[3] = 7.0;
  pb.buffer(1)[5] = 9.0;
  pb.clear(2);
  for (int t = 0; t < 2; ++t) {
    for (const val_t v : pb.buffer(t)) {
      EXPECT_EQ(v, 0.0);
    }
  }
}

TEST(PrivateBuffers, ReduceLongerThanBuffersThrows) {
  PrivateBuffers pb(2, 4);
  std::vector<val_t> dst(8, 0.0);
  EXPECT_THROW(pb.reduce_into(dst, 1), Error);
}

}  // namespace
}  // namespace sptd
