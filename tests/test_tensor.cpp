// Tests for src/tensor: COO storage, dense oracle, .tns/.bin I/O,
// synthetic generators, dataset presets, statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "tensor/coo.hpp"
#include "tensor/dense.hpp"
#include "tensor/io.hpp"
#include "tensor/stats.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

SparseTensor tiny_tensor() {
  // 3x4x2 tensor with 4 nonzeros.
  SparseTensor t({3, 4, 2});
  const idx_t c0[] = {0, 0, 0};
  const idx_t c1[] = {1, 2, 1};
  const idx_t c2[] = {2, 3, 0};
  const idx_t c3[] = {1, 0, 1};
  t.push_back(c0, 1.5);
  t.push_back(c1, -2.0);
  t.push_back(c2, 3.25);
  t.push_back(c3, 0.5);
  return t;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ------------------------------------------------------------------- coo

TEST(Coo, BasicProperties) {
  const SparseTensor t = tiny_tensor();
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.nnz(), 4u);
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.dim(1), 4u);
  EXPECT_EQ(t.dim(2), 2u);
}

TEST(Coo, CoordReturnsPushedCoordinates) {
  const SparseTensor t = tiny_tensor();
  const auto c = t.coord(1);
  EXPECT_EQ(c[0], 1u);
  EXPECT_EQ(c[1], 2u);
  EXPECT_EQ(c[2], 1u);
}

TEST(Coo, ValidateAcceptsGoodTensor) {
  EXPECT_NO_THROW(tiny_tensor().validate());
}

TEST(Coo, ValidateRejectsNonFinite) {
  SparseTensor t({2, 2});
  const idx_t c[] = {0, 0};
  t.push_back(c, std::numeric_limits<val_t>::infinity());
  EXPECT_THROW(t.validate(), Error);
}

TEST(Coo, ZeroLengthModeRejected) {
  EXPECT_THROW(SparseTensor({3, 0, 2}), Error);
}

TEST(Coo, NormSq) {
  SparseTensor t({2, 2});
  const idx_t c0[] = {0, 0};
  const idx_t c1[] = {1, 1};
  t.push_back(c0, 3.0);
  t.push_back(c1, 4.0);
  EXPECT_DOUBLE_EQ(t.norm_sq(), 25.0);
}

TEST(Coo, SwapNonzerosSwapsAllArrays) {
  SparseTensor t = tiny_tensor();
  const auto a = t.coord(0);
  const auto b = t.coord(2);
  const val_t va = t.vals()[0];
  const val_t vb = t.vals()[2];
  t.swap_nonzeros(0, 2);
  EXPECT_EQ(t.coord(0), b);
  EXPECT_EQ(t.coord(2), a);
  EXPECT_EQ(t.vals()[0], vb);
  EXPECT_EQ(t.vals()[2], va);
}

TEST(Coo, CoordLessRespectsPermutation) {
  SparseTensor t({4, 4});
  const idx_t c0[] = {1, 3};
  const idx_t c1[] = {2, 0};
  t.push_back(c0, 1.0);
  t.push_back(c1, 1.0);
  const int fwd[] = {0, 1};
  const int rev[] = {1, 0};
  EXPECT_TRUE(t.coord_less(0, 1, fwd));   // 1 < 2 on mode 0
  EXPECT_FALSE(t.coord_less(0, 1, rev));  // 3 > 0 on mode 1
}

TEST(Coo, RemoveEmptySlicesCompactsDims) {
  SparseTensor t({10, 5});
  const idx_t c0[] = {2, 0};
  const idx_t c1[] = {7, 4};
  t.push_back(c0, 1.0);
  t.push_back(c1, 2.0);
  const auto maps = t.remove_empty_slices();
  EXPECT_EQ(t.dim(0), 2u);  // slices 2 and 7 remain
  EXPECT_EQ(t.dim(1), 2u);  // slices 0 and 4 remain
  EXPECT_EQ(t.ind(0)[0], 0u);
  EXPECT_EQ(t.ind(0)[1], 1u);
  EXPECT_EQ(maps[0][2], 0u);
  EXPECT_EQ(maps[0][7], 1u);
  EXPECT_EQ(maps[0][0], kIdxMax);  // empty slice has no mapping
}

TEST(Coo, RemoveEmptySlicesNoopWhenDense) {
  SparseTensor t({2, 2});
  for (idx_t i = 0; i < 2; ++i) {
    for (idx_t j = 0; j < 2; ++j) {
      const idx_t c[] = {i, j};
      t.push_back(c, 1.0);
    }
  }
  t.remove_empty_slices();
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 2u);
}

TEST(Coo, SwapStorageExchangesBuffers) {
  SparseTensor t = tiny_tensor();
  std::vector<std::vector<idx_t>> inds(3, std::vector<idx_t>(4, 0));
  std::vector<val_t> vals(4, 9.0);
  t.swap_storage(inds, vals);
  EXPECT_EQ(t.vals()[0], 9.0);
  EXPECT_EQ(vals[0], 1.5);  // old storage handed back
}

TEST(Coo, SwapStorageRejectsMismatchedLengths) {
  SparseTensor t = tiny_tensor();
  std::vector<std::vector<idx_t>> inds(3, std::vector<idx_t>(5, 0));
  std::vector<val_t> vals(4, 0.0);
  EXPECT_THROW(t.swap_storage(inds, vals), Error);
}

// ----------------------------------------------------------------- dense

TEST(Dense, FromCooPlacesValues) {
  const DenseTensor d = DenseTensor::from_coo(tiny_tensor());
  const idx_t c1[] = {1, 2, 1};
  EXPECT_DOUBLE_EQ(d.at(c1), -2.0);
  const idx_t zero[] = {0, 1, 0};
  EXPECT_DOUBLE_EQ(d.at(zero), 0.0);
}

TEST(Dense, DuplicateCoordinatesAccumulate) {
  SparseTensor t({2, 2});
  const idx_t c[] = {1, 1};
  t.push_back(c, 2.0);
  t.push_back(c, 3.0);
  const DenseTensor d = DenseTensor::from_coo(t);
  EXPECT_DOUBLE_EQ(d.at(c), 5.0);
}

TEST(Dense, NormSqMatchesCoo) {
  const SparseTensor t = tiny_tensor();
  const DenseTensor d = DenseTensor::from_coo(t);
  EXPECT_DOUBLE_EQ(d.norm_sq(), t.norm_sq());
}

TEST(Dense, MttkrpHandComputedExample) {
  // 2x2 matrix (order-2 tensor): MTTKRP mode 0 is X * A(1).
  SparseTensor t({2, 2});
  const idx_t c00[] = {0, 0};
  const idx_t c01[] = {0, 1};
  const idx_t c11[] = {1, 1};
  t.push_back(c00, 1.0);
  t.push_back(c01, 2.0);
  t.push_back(c11, 3.0);
  const DenseTensor d = DenseTensor::from_coo(t);
  std::vector<la::Matrix> factors;
  factors.emplace_back(2, 1, 1.0);
  factors.emplace_back(2, 1, 1.0);
  factors[1](1, 0) = 2.0;
  la::Matrix out(2, 1);
  d.mttkrp(0, factors, out);
  EXPECT_DOUBLE_EQ(out(0, 0), 1.0 * 1 + 2.0 * 2);  // 5
  EXPECT_DOUBLE_EQ(out(1, 0), 3.0 * 2);            // 6
}

TEST(Dense, FromKruskalRankOneOuterProduct) {
  std::vector<la::Matrix> factors;
  factors.emplace_back(2, 1);
  factors.emplace_back(3, 1);
  factors[0](0, 0) = 1.0;
  factors[0](1, 0) = 2.0;
  factors[1](0, 0) = 3.0;
  factors[1](1, 0) = 4.0;
  factors[1](2, 0) = 5.0;
  const val_t lambda[] = {2.0};
  const DenseTensor d = DenseTensor::from_kruskal(lambda, factors);
  const idx_t c[] = {1, 2};
  EXPECT_DOUBLE_EQ(d.at(c), 2.0 * 2.0 * 5.0);
}

TEST(Dense, RejectsHugeDensification) {
  EXPECT_THROW(DenseTensor({100000, 100000, 100000}), Error);
}

// -------------------------------------------------------------------- io

TEST(Io, ReadTnsParsesOneBasedIndices) {
  std::istringstream in(
      "# a comment line\n"
      "1 1 1 1.5\n"
      "2 3 2 -2.0\n"
      "\n"
      "3 4 1 3.25  # trailing comment\n");
  const SparseTensor t = read_tns(in);
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.nnz(), 3u);
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.dim(1), 4u);
  EXPECT_EQ(t.dim(2), 2u);
  EXPECT_EQ(t.ind(0)[1], 1u);  // 0-based internally
  EXPECT_DOUBLE_EQ(t.vals()[2], 3.25);
}

TEST(Io, ReadTnsRejectsInconsistentFieldCount) {
  std::istringstream in("1 1 1 1.0\n1 1 2.0\n");
  EXPECT_THROW(read_tns(in), Error);
}

TEST(Io, ReadTnsRejectsZeroIndex) {
  std::istringstream in("0 1 1 1.0\n");
  EXPECT_THROW(read_tns(in), Error);
}

TEST(Io, ReadTnsRejectsEmptyStream) {
  std::istringstream in("# only comments\n");
  EXPECT_THROW(read_tns(in), Error);
}

TEST(Io, TnsRoundTripPreservesEverything) {
  const SparseTensor t = tiny_tensor();
  std::ostringstream out;
  write_tns(t, out);
  std::istringstream in(out.str());
  const SparseTensor back = read_tns(in);
  ASSERT_EQ(back.nnz(), t.nnz());
  ASSERT_EQ(back.order(), t.order());
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    EXPECT_EQ(back.coord(x), t.coord(x));
    EXPECT_DOUBLE_EQ(back.vals()[x], t.vals()[x]);
  }
}

TEST(Io, ReadTnsStrictErrorsNameTheLine) {
  // Every strict-mode diagnostic pinpoints the offending 1-based line.
  const auto error_for = [](const char* text) {
    std::istringstream in(text);
    try {
      (void)read_tns(in);
      return std::string("<no error>");
    } catch (const Error& e) {
      return std::string(e.what());
    }
  };
  EXPECT_NE(error_for("1 1 1 1.0\n-2 1 1 1.0\n")
                .find("positive integer (mode 1) at line 2"),
            std::string::npos);
  EXPECT_NE(error_for("1 1 1 1.0\n1 2.5 1 1.0\n")
                .find("non-integer index (mode 2) at line 2"),
            std::string::npos);
  EXPECT_NE(error_for("1 1 1 1.0\n1 1 99999999999999999999 1.0\n")
                .find("overflows the index type (mode 3) at line 2"),
            std::string::npos);
  EXPECT_NE(error_for("1 1 1 1.0\n1 1 1 nan\n")
                .find("non-finite value at line 2"),
            std::string::npos);
  EXPECT_NE(error_for("1 1 1 1.0\n1 1 1 inf\n")
                .find("non-finite value at line 2"),
            std::string::npos);
  EXPECT_NE(error_for("1 1 1 1.0\n1 1 1.0\n")
                .find("expected 4 fields, got 3 at line 2"),
            std::string::npos);
  EXPECT_NE(error_for("1 1 1 1.0\n1 1 one 1.0\n").find("at line 2"),
            std::string::npos);
}

TEST(Io, ReadTnsLenientDropsAndCounts) {
  std::istringstream in(
      "1 1 1 1.5\n"
      "0 1 1 9.0\n"     // zero index: dropped
      "2 2 2 nan\n"     // non-finite value: dropped
      "2 2 2 2.5\n"
      "1 2 3.0\n"       // short line: dropped
      "3 1 2 -0.5\n");
  TnsReadStats stats;
  const SparseTensor t = read_tns(in, {.skip_bad_lines = true}, &stats);
  EXPECT_EQ(t.nnz(), 3u);
  EXPECT_EQ(stats.dropped, 3u);
  // first_error remembers the *first* diagnostic for the warning banner.
  EXPECT_NE(stats.first_error.find("positive integer (mode 1) at line 2"),
            std::string::npos);
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_DOUBLE_EQ(t.vals()[2], -0.5);
}

TEST(Io, ReadTnsLenientAllBadStillThrows) {
  // Dropping every line is a hard failure even in lenient mode, and the
  // message carries the drop count + first diagnostic for debugging.
  std::istringstream in("0 1 1 1.0\n1 1 1 nan\n");
  TnsReadStats stats;
  try {
    (void)read_tns(in, {.skip_bad_lines = true}, &stats);
    FAIL() << "empty lenient parse was accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no valid nonzeros"), std::string::npos);
    EXPECT_NE(what.find("2 lines dropped"), std::string::npos);
  }
}

TEST(Io, ReadTnsLenientWithoutStatsPointerWorks) {
  std::istringstream in("1 1 2.0\nbad line\n2 2 4.0\n");
  const SparseTensor t = read_tns(in, {.skip_bad_lines = true});
  EXPECT_EQ(t.order(), 2);
  EXPECT_EQ(t.nnz(), 2u);
}

TEST(Io, TnsRoundTripLargeSynthetic) {
  const SparseTensor t = generate_synthetic(
      {.dims = {50, 40, 30}, .nnz = 2000, .seed = 5});
  const std::string path = temp_path("sptd_test_roundtrip.tns");
  write_tns_file(t, path);
  const SparseTensor back = read_tns_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.nnz(), t.nnz());
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    EXPECT_EQ(back.coord(x), t.coord(x));
    EXPECT_DOUBLE_EQ(back.vals()[x], t.vals()[x]);
  }
}

TEST(Io, BinRoundTripPreservesEverything) {
  const SparseTensor t = generate_synthetic(
      {.dims = {20, 30, 40, 10}, .nnz = 500, .seed = 6});
  const std::string path = temp_path("sptd_test_roundtrip.bin");
  write_bin_file(t, path);
  const SparseTensor back = read_bin_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.order(), 4);
  ASSERT_EQ(back.nnz(), t.nnz());
  ASSERT_EQ(back.dims(), t.dims());
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    EXPECT_EQ(back.coord(x), t.coord(x));
    EXPECT_EQ(back.vals()[x], t.vals()[x]);  // binary: bit-exact
  }
}

TEST(Io, BinRejectsBadMagic) {
  const std::string path = temp_path("sptd_test_bad.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTMAGIC and some junk";
  }
  EXPECT_THROW(read_bin_file(path), Error);
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_tns_file("/nonexistent/path/file.tns"), Error);
  EXPECT_THROW(read_bin_file("/nonexistent/path/file.bin"), Error);
}

// -------------------------------------------------------------- synthetic

TEST(Synthetic, ExactNnzAndDims) {
  const SparseTensor t = generate_synthetic(
      {.dims = {100, 80, 60}, .nnz = 5000, .seed = 7});
  EXPECT_EQ(t.nnz(), 5000u);
  EXPECT_EQ(t.dims(), (dims_t{100, 80, 60}));
  t.validate();
}

TEST(Synthetic, CoordinatesAreUnique) {
  const SparseTensor t = generate_synthetic(
      {.dims = {30, 30, 30}, .nnz = 4000, .seed = 8});
  std::set<std::array<idx_t, kMaxOrder>> seen;
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    EXPECT_TRUE(seen.insert(t.coord(x)).second) << "duplicate at " << x;
  }
}

TEST(Synthetic, DeterministicInSeed) {
  const SyntheticConfig cfg{.dims = {50, 50, 50}, .nnz = 1000, .seed = 9};
  const SparseTensor a = generate_synthetic(cfg);
  const SparseTensor b = generate_synthetic(cfg);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (nnz_t x = 0; x < a.nnz(); ++x) {
    EXPECT_EQ(a.coord(x), b.coord(x));
    EXPECT_EQ(a.vals()[x], b.vals()[x]);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const SparseTensor a = generate_synthetic(
      {.dims = {50, 50, 50}, .nnz = 500, .seed = 1});
  const SparseTensor b = generate_synthetic(
      {.dims = {50, 50, 50}, .nnz = 500, .seed = 2});
  int same = 0;
  for (nnz_t x = 0; x < a.nnz(); ++x) {
    if (a.coord(x) == b.coord(x)) ++same;
  }
  EXPECT_LT(same, 50);
}

TEST(Synthetic, ValuesInConfiguredRange) {
  const SparseTensor t = generate_synthetic({.dims = {40, 40},
                                             .nnz = 800,
                                             .seed = 10,
                                             .value_lo = 2.0,
                                             .value_hi = 3.0});
  for (const val_t v : t.vals()) {
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Synthetic, ZipfSkewConcentratesMass) {
  // With heavy skew, the most popular slice must hold far more nonzeros
  // than the uniform expectation.
  const SparseTensor t = generate_synthetic(
      {.dims = {1000, 1000, 1000}, .nnz = 20000, .seed = 11,
       .zipf_exponent = 1.1});
  std::vector<nnz_t> counts(1000, 0);
  for (const idx_t i : t.ind(0)) {
    ++counts[i];
  }
  const nnz_t top = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(top, 20u * 20000u / 1000u);  // >20x uniform share
}

TEST(Synthetic, RejectsOverfullRequest) {
  EXPECT_THROW(
      generate_synthetic({.dims = {4, 4}, .nnz = 12, .seed = 1}), Error);
}

TEST(Synthetic, LowRankIsExactlyRepresentable) {
  // Noise-free low-rank tensor must match its generating model when
  // densified (checked indirectly: nnz/dims and determinism here; CP
  // recovery is asserted in test_cpd).
  const SparseTensor t = generate_low_rank({20, 20, 20}, 3, 500, 0.0, 12);
  EXPECT_EQ(t.nnz(), 500u);
  t.validate();
  const SparseTensor t2 = generate_low_rank({20, 20, 20}, 3, 500, 0.0, 12);
  for (nnz_t x = 0; x < t.nnz(); ++x) {
    EXPECT_EQ(t.vals()[x], t2.vals()[x]);
  }
}

TEST(Synthetic, HigherOrderGeneration) {
  const SparseTensor t = generate_synthetic(
      {.dims = {10, 12, 14, 16, 18}, .nnz = 2000, .seed = 13});
  EXPECT_EQ(t.order(), 5);
  EXPECT_EQ(t.nnz(), 2000u);
  t.validate();
}

// --------------------------------------------------------------- presets

TEST(Presets, TableOneHasFiveDatasets) {
  EXPECT_EQ(table1_presets().size(), 5u);
}

TEST(Presets, LookupByName) {
  const DatasetPreset& yelp = find_preset("yelp");
  EXPECT_EQ(yelp.dims, (dims_t{41000, 11000, 75000}));
  EXPECT_EQ(yelp.nnz, 8000000u);
  EXPECT_THROW(find_preset("unknown"), Error);
}

TEST(Presets, DensityMatchesTableOneOrderOfMagnitude) {
  // Table I: YELP 1.97e-7, NELL-2 2.4e-5 (with rounded dims we land close).
  EXPECT_NEAR(find_preset("yelp").density(), 2e-7, 1.5e-7);
  EXPECT_NEAR(find_preset("nell-2").density(), 2.4e-5, 1e-5);
}

TEST(Presets, ScaledPreservesLockDecisionRatio) {
  // dims[m]*T / nnz decides lock-vs-privatize; linear scaling of dims and
  // nnz preserves it (up to the floor clamps).
  const DatasetPreset& yelp = find_preset("yelp");
  const auto full = yelp.scaled(1.0);
  const auto small = yelp.scaled(0.05);
  const double ratio_full =
      static_cast<double>(full.dims[0]) / static_cast<double>(full.nnz);
  const double ratio_small =
      static_cast<double>(small.dims[0]) / static_cast<double>(small.nnz);
  EXPECT_NEAR(ratio_full, ratio_small, ratio_full * 0.05);
}

TEST(Presets, ScaledAppliesFloors) {
  const auto tiny = find_preset("yelp").scaled(1e-6);
  for (const idx_t d : tiny.dims) {
    EXPECT_GE(d, 64u);
  }
  EXPECT_GE(tiny.nnz, 10000u);
}

TEST(Presets, ScaleOutOfRangeThrows) {
  EXPECT_THROW(find_preset("yelp").scaled(0.0), Error);
  EXPECT_THROW(find_preset("yelp").scaled(1.5), Error);
}

// ----------------------------------------------------------------- stats

TEST(Stats, ComputesDensityAndSliceCounts) {
  const SparseTensor t = tiny_tensor();
  const TensorStats s = compute_stats(t);
  EXPECT_EQ(s.nnz, 4u);
  EXPECT_DOUBLE_EQ(s.density, 4.0 / (3 * 4 * 2));
  ASSERT_EQ(s.modes.size(), 3u);
  EXPECT_EQ(s.modes[0].nonempty, 3u);
  EXPECT_EQ(s.modes[0].max_slice_nnz, 2u);  // slice 1 has two nonzeros
  EXPECT_GT(s.tns_bytes, 0u);
}

TEST(Stats, FormatDims) {
  EXPECT_EQ(format_dims({41000, 11000, 75000}), "41k x 11k x 75k");
  EXPECT_EQ(format_dims({480000, 18000, 2000}), "480k x 18k x 2k");
  EXPECT_EQ(format_dims({12, 9}), "12 x 9");
}

TEST(Stats, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(10 * 1024), "10 KB");
  EXPECT_EQ(format_bytes(240ULL << 20), "240 MB");
  EXPECT_EQ(format_bytes(3ULL << 30), "3.00 GB");
}

}  // namespace
}  // namespace sptd
